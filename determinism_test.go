// Parallel-execution acceptance tests: a campaign's observable outputs —
// the rendered report, the deterministic metrics tables, and the run-
// history snapshot — must be byte-identical whether the campaign ran
// serially, on 8 workers, or as two shard processes merged afterwards.
package dcelens

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// campaignArtifacts runs one campaign variant and renders every
// deterministic artifact.
type campaignArtifacts struct {
	report   string
	metrics  string
	snapshot string
}

func artifactsOf(t *testing.T, c *Campaign, reg *MetricsRegistry) campaignArtifacts {
	t.Helper()
	snap, err := NewRunSnapshot("dce-campaign", c, reg).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return campaignArtifacts{
		report:   Report(c),
		metrics:  ReportMetrics(reg),
		snapshot: string(snap),
	}
}

// TestParallelCampaignByteIdentity: serial vs 8 workers vs two merged
// shard halves.
func TestParallelCampaignByteIdentity(t *testing.T) {
	const programs, baseSeed = 5, 900
	run := func(workers int, shard CampaignShard, cp *Checkpoint) (campaignArtifacts, *MetricsRegistry) {
		t.Helper()
		reg := NewDeterministicMetrics()
		c, err := RunCampaign(CampaignOptions{
			Programs: programs, BaseSeed: baseSeed,
			Workers: workers, Shard: shard,
			Metrics: reg, Checkpoint: cp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return artifactsOf(t, c, reg), reg
	}

	serial, _ := run(1, CampaignShard{}, nil)
	parallel, _ := run(8, CampaignShard{}, nil)
	if parallel != serial {
		t.Errorf("8-worker artifacts differ from serial:\n--- serial\n%s%s%s\n--- parallel\n%s%s%s",
			serial.report, serial.metrics, serial.snapshot,
			parallel.report, parallel.metrics, parallel.snapshot)
	}

	// Two shard processes, each with its own checkpoint, registry, and
	// history snapshot.
	dir := t.TempDir()
	var paths []string
	var shardRegs []*MetricsRegistry
	var shardSnaps []*RunSnapshot
	for i := 0; i < 2; i++ {
		shard := CampaignShard{Index: i, Count: 2}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		reg := NewDeterministicMetrics()
		c, err := RunCampaign(CampaignOptions{
			Programs: programs, BaseSeed: baseSeed,
			Workers: 4, Shard: shard,
			Metrics: reg, Checkpoint: NewCheckpoint(path),
		})
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
		shardRegs = append(shardRegs, reg)
		shardSnaps = append(shardSnaps, NewRunSnapshot("dce-campaign", c, reg))
	}

	merged, err := MergeCheckpoints(paths)
	if err != nil {
		t.Fatal(err)
	}
	if got := Report(merged); got != serial.report {
		t.Errorf("merged-shard report differs from serial:\n--- serial\n%s\n--- merged\n%s", serial.report, got)
	}

	mergedReg := NewDeterministicMetrics()
	for _, reg := range shardRegs {
		mergedReg.Absorb(reg.Snapshot())
	}
	if got := ReportMetrics(mergedReg); got != serial.metrics {
		t.Errorf("absorbed shard metrics differ from serial:\n--- serial\n%s\n--- merged\n%s", serial.metrics, got)
	}

	mergedSnap, err := MergeRunSnapshots(shardSnaps)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mergedSnap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != serial.snapshot {
		t.Errorf("merged shard snapshot differs from serial:\n--- serial\n%s\n--- merged\n%s", serial.snapshot, b)
	}
}

// TestRemarksByteIdentity: a remark-collecting campaign's artifacts — the
// report (whose remark tables aggregate every seed), the per-finding
// nearest-miss narratives, and the chains themselves — must be
// byte-identical across worker counts and across a halt/resume, and every
// finding must carry a non-empty chain (dce's side-effects anchor at
// minimum).
func TestRemarksByteIdentity(t *testing.T) {
	const programs, baseSeed = 6, 1
	run := func(workers int, cp *Checkpoint, stop func() bool) *Campaign {
		t.Helper()
		c, err := RunCampaign(CampaignOptions{
			Programs: programs, BaseSeed: baseSeed, Workers: workers,
			Remarks: true, Checkpoint: cp, Stop: stop,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	serial := run(1, nil, nil)
	if len(serial.Findings) == 0 {
		t.Fatal("campaign found nothing; the remark fixture needs a finding-bearing seed range")
	}
	for _, f := range serial.Findings {
		if len(f.Chain) == 0 {
			t.Errorf("finding %s (seed %d) has an empty nearest-miss chain", f.Marker, f.Seed)
		}
	}
	wantReport, wantNarrative := Report(serial), ExplainFindings(serial.Findings)

	parallel := run(8, nil, nil)
	if got := Report(parallel); got != wantReport {
		t.Errorf("8-worker remark report differs from serial:\n--- serial\n%s\n--- parallel\n%s", wantReport, got)
	}
	if got := ExplainFindings(parallel.Findings); got != wantNarrative {
		t.Errorf("8-worker narratives differ from serial:\n--- serial\n%s\n--- parallel\n%s", wantNarrative, got)
	}

	// Halt after two seeds, then resume on 8 workers: the chains ride the
	// checkpoint, so the merged view must reproduce the serial bytes.
	path := filepath.Join(t.TempDir(), "remarks-drain.json")
	var polls atomic.Int32
	interrupted := run(1, NewCheckpoint(path), func() bool { return polls.Add(1) > 2 })
	if interrupted.Skipped == 0 || interrupted.Skipped == programs {
		t.Fatalf("Skipped = %d, want a partial drain of %d seeds", interrupted.Skipped, programs)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed := run(8, cp, nil)
	if got := Report(resumed); got != wantReport {
		t.Errorf("halt+resume remark report differs from serial:\n--- serial\n%s\n--- resumed\n%s", wantReport, got)
	}
	if got := ExplainFindings(resumed.Findings); got != wantNarrative {
		t.Errorf("halt+resume narratives differ from serial:\n--- serial\n%s\n--- resumed\n%s", wantNarrative, got)
	}
}

// TestDrainResumeByteIdentity: a campaign stopped cooperatively mid-run
// — the service drain path (CampaignOptions.Stop) — and then resumed
// from its checkpoint reports byte-identically to a campaign that was
// never interrupted.
func TestDrainResumeByteIdentity(t *testing.T) {
	const programs, baseSeed = 6, 400
	serial, err := RunCampaign(CampaignOptions{
		Programs: programs, BaseSeed: baseSeed, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drain after two seeds: Stop is polled once per seed, the rest skip
	// and the checkpoint keeps only the completed ones.
	path := filepath.Join(t.TempDir(), "drain.json")
	var polls atomic.Int32
	interrupted, err := RunCampaign(CampaignOptions{
		Programs: programs, BaseSeed: baseSeed, Workers: 1,
		Checkpoint: NewCheckpoint(path),
		Stop:       func() bool { return polls.Add(1) > 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if interrupted.Skipped == 0 || interrupted.Skipped == programs {
		t.Fatalf("Skipped = %d, want a partial drain of %d seeds", interrupted.Skipped, programs)
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RunCampaign(CampaignOptions{
		Programs: programs, BaseSeed: baseSeed, Workers: 8,
		Checkpoint: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Skipped != 0 {
		t.Fatalf("resumed run skipped %d seeds, want none", resumed.Skipped)
	}
	if got, want := Report(resumed), Report(serial); got != want {
		t.Errorf("drain+resume report differs from uninterrupted run:\n--- resumed\n%s\n--- serial\n%s", got, want)
	}
}
