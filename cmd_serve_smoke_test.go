// Service-mode smoke tests: cmd/dce-serve over real TCP. The drain test
// is the acceptance check for graceful shutdown — SIGTERM mid-campaign
// checkpoints the running job, /healthz passes through "draining", the
// process exits 0, and resuming from the checkpoint reports
// byte-identically to an uninterrupted run.
package dcelens

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// serveStderr accumulates a dce-serve process's stderr after the
// announce line; done closes once the pipe hits EOF (process exiting),
// which must happen before cmd.Wait.
type serveStderr struct {
	mu    sync.Mutex
	lines []string
	done  chan struct{}
}

func (s *serveStderr) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return strings.Join(s.lines, "\n")
}

// startServe launches dce-serve on an ephemeral port with the given
// extra flags and returns the process, its resolved address, and the
// rest of its stderr.
func startServe(t *testing.T, args ...string) (*exec.Cmd, string, *serveStderr) {
	t.Helper()
	bin := filepath.Join(buildCommands(t), "dce-serve")
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "serving on http://"); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatalf("no serving address announced (scan err %v)", sc.Err())
	}
	tail := &serveStderr{done: make(chan struct{})}
	go func() {
		defer close(tail.done)
		for sc.Scan() {
			tail.mu.Lock()
			tail.lines = append(tail.lines, sc.Text())
			tail.mu.Unlock()
		}
	}()
	return cmd, addr, tail
}

func serveGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func servePost(t *testing.T, addr, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post("http://"+addr+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// serveStatus mirrors the fields of service.Status the smoke tests read.
type serveStatus struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Attempt    int    `json:"attempt"`
	SeedsTotal int    `json:"seeds_total"`
	SeedsDone  int    `json:"seeds_done"`
	Findings   int    `json:"findings"`
	Skipped    int    `json:"skipped"`
	Error      string `json:"error"`
	Checkpoint string `json:"checkpoint"`
	Snapshot   string `json:"snapshot"`
}

// pollJob polls GET /jobs/{id} until pred holds.
func pollJob(t *testing.T, addr, id string, what string, pred func(serveStatus) bool) serveStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		code, body := serveGet(t, addr, "/jobs/"+id)
		if code != 200 {
			t.Fatalf("GET /jobs/%s = %d %q", id, code, body)
		}
		var st serveStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("job status %q: %v", body, err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s: %+v", id, what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCmdServeLifecycle: submit over real TCP, run to done, fetch the
// report (byte-identical to an in-process campaign), and find the run's
// history snapshot where dce-trend expects it.
func TestCmdServeLifecycle(t *testing.T) {
	hist := t.TempDir()
	cmd, addr, _ := startServe(t, "-history", hist)
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	if code, body := serveGet(t, addr, "/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Errorf("/healthz = %d %q, want ok", code, body)
	}

	code, body := servePost(t, addr, "/jobs", `{"programs": 3, "base_seed": 1}`)
	if code != 202 {
		t.Fatalf("submit = %d %q, want 202", code, body)
	}
	var st serveStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.ID != "job-1" {
		t.Fatalf("submit body %q (err %v), want job-1", body, err)
	}

	st = pollJob(t, addr, "job-1", "a terminal state", func(st serveStatus) bool {
		return st.State == "done" || st.State == "failed" || st.State == "cancelled"
	})
	if st.State != "done" || st.SeedsDone != 3 {
		t.Fatalf("terminal status = %+v, want done with 3 seeds", st)
	}

	code, got := serveGet(t, addr, "/jobs/job-1/report")
	if code != 200 {
		t.Fatalf("report = %d %q", code, got)
	}
	c, err := RunCampaign(CampaignOptions{Programs: 3, BaseSeed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := Report(c); got != want {
		t.Errorf("served report differs from in-process campaign:\n--- served\n%s\n--- in-process\n%s", got, want)
	}

	// The finished job's snapshot landed in the history dir for dce-trend.
	if st.Snapshot == "" {
		t.Fatal("done job has no snapshot path")
	}
	if _, err := os.Stat(st.Snapshot); err != nil {
		t.Errorf("snapshot file: %v", err)
	}
	entries, err := os.ReadDir(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasPrefix(entries[0].Name(), "run-") {
		t.Errorf("history dir = %v, want one run-*.json snapshot", entries)
	}
}

// TestCmdServeSIGTERMDrainResume: SIGTERM mid-campaign drains gracefully
// — /healthz reports "draining", the running job checkpoints, the
// process exits 0 — and a fresh server resuming from the checkpoint
// finishes the job with a report byte-identical to an uninterrupted run.
func TestCmdServeSIGTERMDrainResume(t *testing.T) {
	work := t.TempDir()
	const spec = `{"programs": 40, "base_seed": 7, "workers": 1}`

	cmd, addr, tail := startServe(t, "-workdir", work, "-executors", "1")
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	if code, body := servePost(t, addr, "/jobs", spec); code != 202 {
		t.Fatalf("submit = %d %q, want 202", code, body)
	}
	// Let the campaign get properly underway so the drain interrupts it.
	pollJob(t, addr, "job-1", "running with progress", func(st serveStatus) bool {
		return st.State == "running" && st.SeedsDone >= 1
	})

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The HTTP server stays up while the engine drains: /healthz must pass
	// through "draining" before the listener closes.
	sawDraining := false
	hammer := time.Now().Add(60 * time.Second)
	for time.Now().Before(hammer) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			break // listener closed: drain finished
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(b), `"draining"`) {
			sawDraining = true
		}
	}
	if !sawDraining {
		t.Error("/healthz never reported draining during shutdown")
	}

	<-tail.done
	if err := cmd.Wait(); err != nil {
		t.Fatalf("exit after SIGTERM = %v, want success (stderr:\n%s)", err, tail.String())
	}
	if out := tail.String(); !strings.Contains(out, "draining") || !strings.Contains(out, "drained cleanly") {
		t.Errorf("drain stderr missing announcements:\n%s", out)
	}

	ckpt := filepath.Join(work, "job-1.checkpoint.json")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drained job left no checkpoint: %v", err)
	}

	// Resume: a fresh server, the same spec pointed at the drained
	// checkpoint, must finish only the unrun seeds and report identically.
	cmd2, addr2, _ := startServe(t, "-workdir", work)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	resumeSpec := fmt.Sprintf(`{"programs": 40, "base_seed": 7, "workers": 1, "checkpoint": %q}`, ckpt)
	if code, body := servePost(t, addr2, "/jobs", resumeSpec); code != 202 {
		t.Fatalf("resume submit = %d %q, want 202", code, body)
	}
	st := pollJob(t, addr2, "job-1", "a terminal state", func(st serveStatus) bool {
		return st.State == "done" || st.State == "failed" || st.State == "cancelled"
	})
	if st.State != "done" || st.SeedsDone != 40 {
		t.Fatalf("resumed status = %+v, want done with all 40 seeds", st)
	}

	code, got := serveGet(t, addr2, "/jobs/job-1/report")
	if code != 200 {
		t.Fatalf("resumed report = %d %q", code, got)
	}
	c, err := RunCampaign(CampaignOptions{Programs: 40, BaseSeed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := Report(c); got != want {
		t.Errorf("resumed report differs from uninterrupted run:\n--- resumed\n%s\n--- uninterrupted\n%s", got, want)
	}
}
