// dce-campaign runs a fault-tolerant corpus campaign: every per-(seed,
// config) compilation is isolated by internal/harness (panics become
// bucketed crash findings with reproducers, runaway fixpoints hit the
// step-budget deadline), a JSON checkpoint makes interrupted campaigns
// resumable, and a deterministic fault-injection hook exercises all of it.
//
// Usage:
//
//	dce-campaign -n 50 -seed 1                      # plain campaign
//	dce-campaign -n 50 -checkpoint cp.json          # checkpoint as seeds finish
//	dce-campaign -n 50 -checkpoint cp.json -resume  # skip completed seeds
//	dce-campaign -n 20 -inject panic:gvn:5,stall:licm:7
//	dce-campaign -n 20 -halt-after 10 -checkpoint cp.json  # simulate a kill
//	dce-campaign -n 50 -serve 127.0.0.1:8080        # live monitoring HTTP
//	dce-campaign -n 50 -history runs/               # run-history snapshot
//	dce-campaign -n 50 -j 8                         # 8 in-process workers
//	dce-campaign -n 50 -j 8 -trace out.json         # span timeline (Perfetto, dce-prof)
//	dce-campaign -n 50 -shard 0/2 -checkpoint a.json  # half the corpus...
//	dce-campaign -n 50 -shard 1/2 -checkpoint b.json  # ...the other half
//	dce-report -merge a.json,b.json                 # ...merged losslessly
//
// The report (stdout) is deterministic for a given configuration: a
// resumed campaign prints byte-identical output to an uninterrupted one.
// Crash reproducers can be persisted with -repro-dir for dce-reduce.
// -serve exposes /healthz, /metrics, /progress, /findings,
// /events?since=N, /timeline?since=N, and (with -remarks) /remarks?since=N
// while the campaign runs; -history leaves a fingerprinted snapshot behind
// for dce-trend's cross-run diffing.
//
// -remarks collects optimization remarks (internal/remark): the report
// gains a per-pass applied/missed table with the top miss reasons, every
// finding carries its nearest-miss chain (render them with dce-explain),
// and seed-outcome summaries ride the checkpoint.
//
// -trace FILE records a hierarchical span timeline (seed → unit → phase →
// pass, plus scheduler occupancy) as Chrome trace_event JSON: load it in
// Perfetto (ui.perfetto.dev), or run dce-prof on it for the critical-path
// and worker-occupancy tables. Under -metrics deterministic the trace is
// redacted to its logical skeleton and is byte-identical for a given
// campaign configuration, whatever -j or resume history produced it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dcelens"
	"dcelens/internal/cli"
	"dcelens/internal/harness"
	"dcelens/internal/history"
	"dcelens/internal/metrics"
	"dcelens/internal/monitor"
	"dcelens/internal/report"
	"dcelens/internal/span"
)

const tool = "dce-campaign"

func main() {
	n := flag.Int("n", 30, "corpus size")
	seed := flag.Int64("seed", 1, "base seed")
	provenance := flag.Bool("provenance", false, "record per-pass profiles and marker provenance")
	remarks := flag.Bool("remarks", false, "collect optimization remarks (nearest-miss chains for dce-explain, remark tables in the report)")
	tracePath := flag.String("trace", "", "write a span timeline (Chrome trace_event JSON; Perfetto/dce-prof) to this file")
	verify := flag.Bool("verify", false, "execute every compiled module against ground truth (miscompile detection; slower)")
	budget := flag.Int("budget", 0, "per-compilation pass-step budget (0: harness default)")
	checkpoint := flag.String("checkpoint", "", "JSON checkpoint file; outcomes are persisted as seeds complete")
	resume := flag.Bool("resume", false, "skip seeds already completed in -checkpoint")
	inject := flag.String("inject", "", "fault-injection spec: kind:pass:seed[:config],... (kind: panic, stall, corrupt)")
	haltAfter := flag.Int("halt-after", 0, "stop after this many seeds (testing aid: simulates a killed campaign; requires -checkpoint)")
	reproDir := flag.String("repro-dir", "", "write each failure's MiniC reproducer into this directory")
	metricsMode := flag.String("metrics", "off", "telemetry report: off, wall, or deterministic (redact wall-clock values)")
	eventsPath := flag.String("events", "", "write a JSONL campaign event log to this file")
	quiet := flag.Bool("quiet", false, "suppress the live progress heartbeat")
	hbInterval := flag.Duration("heartbeat", 2*time.Second, "heartbeat render interval (heartbeat shows only on an interactive stderr)")
	par := cli.Parallelism()
	prof := cli.Profiling()
	mon := cli.Monitoring()
	flag.Parse()
	defer prof.Start(tool)()

	opts := dcelens.CampaignOptions{
		Programs:        *n,
		BaseSeed:        *seed,
		Workers:         par.Workers(tool),
		Shard:           par.Shard(tool),
		Trace:           *provenance,
		Remarks:         *remarks,
		VerifySemantics: *verify,
		StepBudget:      *budget,
	}
	if *inject != "" {
		faults, err := harness.ParseFaults(*inject)
		if err != nil {
			cli.Usagef(tool, "%v", err)
		}
		opts.Faults = faults
	}
	if *resume && *checkpoint == "" {
		cli.Usagef(tool, "-resume requires -checkpoint")
	}
	if *haltAfter > 0 && *checkpoint == "" {
		cli.Usagef(tool, "-halt-after requires -checkpoint")
	}
	if *checkpoint != "" {
		cp, err := harness.LoadCheckpoint(*checkpoint)
		if err != nil {
			cli.Fail(tool, err)
		}
		if !*resume && cp.Len() > 0 {
			cli.Usagef(tool, "checkpoint %s already has %d completed seeds; pass -resume to continue it", *checkpoint, cp.Len())
		}
		opts.Checkpoint = cp
	}
	halted := false
	if *haltAfter > 0 && *haltAfter < opts.Programs {
		opts.Programs = *haltAfter
		halted = true
	}

	var reg *dcelens.MetricsRegistry
	switch *metricsMode {
	case "off":
	case "wall":
		reg = dcelens.NewMetrics()
	case "deterministic":
		reg = dcelens.NewDeterministicMetrics()
	default:
		cli.Usagef(tool, "unknown -metrics mode %q (want off, wall, or deterministic)", *metricsMode)
	}
	showHeartbeat := !*quiet && metrics.StderrIsTerminal()
	if (showHeartbeat || mon.Serving()) && reg == nil {
		// The heartbeat and the monitor read progress counters, so they
		// need a registry even when the report section stays off.
		reg = dcelens.NewMetrics()
	}
	opts.Metrics = reg

	var events *dcelens.EventLog
	if *eventsPath != "" {
		var err error
		events, err = metrics.OpenEventLog(*eventsPath, *resume)
		if err != nil {
			cli.Fail(tool, err)
		}
		opts.Events = events
	} else if mon.Serving() {
		// /events needs a log even when none is persisted to disk.
		events = dcelens.NewEventLog(io.Discard)
		opts.Events = events
	}
	if mon.Serving() {
		events.KeepTail(4096)
	}

	var spans *span.Recorder
	if *tracePath != "" {
		var err error
		spans, err = span.Open(*tracePath, *resume, *metricsMode == "deterministic")
		if err != nil {
			cli.Fail(tool, err)
		}
		opts.Spans = spans
	} else if mon.Serving() {
		// /timeline needs a recorder even when no trace file is kept.
		spans = span.New(io.Discard)
		opts.Spans = spans
	}
	if mon.Serving() {
		spans.KeepTail(4096)
	}

	var remarkLog *dcelens.EventLog
	if *remarks && mon.Serving() {
		// /remarks serves the per-seed remark summaries; nothing is
		// persisted to disk, only the tail ring matters.
		remarkLog = dcelens.NewEventLog(io.Discard)
		remarkLog.KeepTail(4096)
		opts.RemarkLog = remarkLog
	}

	// The live surfaces (heartbeat, /progress, ETA) count the seeds this
	// process will actually run: a shard's total is its slice of the corpus.
	liveTotal := opts.Shard.Size(opts.Programs)
	var prog *harness.Progress
	if showHeartbeat || mon.Serving() {
		prog = harness.NewProgress(liveTotal, opts.Workers, reg)
		opts.Progress = prog
	}
	msrv := monitor.New(tool, reg, prog, events)
	msrv.Spans = spans
	msrv.Remarks = remarkLog
	defer mon.Serve(tool, msrv)()

	stopHeartbeat := func() {}
	if showHeartbeat {
		hb := &metrics.Heartbeat{Reg: reg, Total: liveTotal, Out: os.Stderr, Interval: *hbInterval, Tool: tool, Progress: prog}
		stopHeartbeat = hb.Start()
	}

	if opts.Shard.Sharded() {
		fmt.Fprintf(os.Stderr, "%s: running shard %s of a %d-program campaign (%d seeds here, base seed %d)...\n",
			tool, opts.Shard, opts.Programs, liveTotal, opts.BaseSeed)
	} else {
		fmt.Fprintf(os.Stderr, "%s: running a %d-program campaign (base seed %d)...\n", tool, opts.Programs, opts.BaseSeed)
	}
	c, err := dcelens.RunCampaign(opts)
	stopHeartbeat()
	if err != nil {
		cli.Fail(tool, err)
	}
	if cerr := events.Close(); cerr != nil {
		cli.Fail(tool, cerr)
	}
	if cerr := spans.Close(); cerr != nil {
		cli.Fail(tool, cerr)
	}
	if *reproDir != "" {
		if err := writeRepros(*reproDir, c.Stats.Failures); err != nil {
			cli.Fail(tool, err)
		}
	}
	if halted {
		fmt.Fprintf(os.Stderr, "%s: halted after %d seeds; resume with -resume -checkpoint %s\n",
			tool, opts.Programs, *checkpoint)
		fmt.Printf("campaign halted after %d seeds (checkpointed)\n", opts.Programs)
		return
	}
	// A halted campaign never snapshots: its partial finding set would diff
	// as a wave of spurious fixes against the full runs around it.
	mon.WriteSnapshot(tool, history.NewSnapshot(tool, c, reg))
	fmt.Print(dcelens.Report(c))
	if len(c.Stats.Failures) == 0 {
		// Summary includes the failure section only when something failed;
		// always state the verdict here so operators see it was checked.
		fmt.Print("\n" + report.Failures(c.Stats))
	}
	if *metricsMode != "off" {
		fmt.Print("\n" + dcelens.ReportMetrics(reg))
	}
}

// writeRepros persists each failure's reproducer as a dce-reduce-ready
// MiniC file named after its seed and config.
func writeRepros(dir string, failures []harness.Failure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range failures {
		if f.Source == "" {
			continue
		}
		cfg := strings.NewReplacer(" ", "_", "-", "").Replace(f.Config)
		name := fmt.Sprintf("%s_seed%d_%s.c", f.Kind, f.Seed, cfg)
		header := fmt.Sprintf("// %s\n// reproduce: dce-find -file %s\n", f.String(), name)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(header+f.Source), 0o644); err != nil {
			return err
		}
	}
	return nil
}
