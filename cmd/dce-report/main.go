// dce-report regenerates the paper's evaluation tables from a fresh
// campaign: dead-block prevalence (§4.1), Tables 1 and 2, the §4.2
// differential counts, the Table 3/4 component categorizations (via
// bisection of level regressions), and the Table 5 triage model (via
// reduction, deduplication, and the future-fix check).
//
// Usage:
//
//	dce-report [-n programs] [-seed base] [-triage] [-bisect]
//	dce-report -merge a.json,b.json
//
// Without flags it prints prevalence + Tables 1/2 + differential counts;
// -bisect adds Tables 3/4; -triage adds Table 5 (slow: it reduces cases).
// -merge skips the campaign and instead recombines the checkpoints of a
// sharded campaign (dce-campaign -shard) into the whole-corpus report,
// byte-identical to the report of an unsharded run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dcelens"
	"dcelens/internal/bisect"
	"dcelens/internal/cli"
	"dcelens/internal/corpus"
	"dcelens/internal/pipeline"
	"dcelens/internal/reduce"
	"dcelens/internal/report"
)

func main() {
	n := flag.Int("n", 30, "corpus size")
	seed := flag.Int64("seed", 1, "base seed")
	merge := flag.String("merge", "", "comma-separated shard checkpoint files to merge into one report (skips the campaign)")
	doTriage := flag.Bool("triage", false, "reduce + deduplicate + triage findings (Table 5; slow)")
	doBisect := flag.Bool("bisect", false, "bisect level regressions (Tables 3/4)")
	maxBisect := flag.Int("max-bisect", 60, "bisection budget per compiler")
	maxReduce := flag.Int("max-reduce", 12, "reduction budget per compiler for triage")
	par := cli.Parallelism()
	prof := cli.Profiling()
	flag.Parse()
	defer prof.Start("dce-report")()

	var c *dcelens.Campaign
	var err error
	if *merge != "" {
		// Bisection and triage need the in-memory programs a merge cannot
		// reconstruct from outcomes alone.
		if *doBisect || *doTriage {
			cli.Usagef("dce-report", "-merge is incompatible with -bisect and -triage (merged campaigns carry outcomes, not programs)")
		}
		paths := strings.Split(*merge, ",")
		fmt.Fprintf(os.Stderr, "merging %d shard checkpoints...\n", len(paths))
		c, err = dcelens.MergeCheckpoints(paths)
	} else {
		fmt.Fprintf(os.Stderr, "running a %d-program campaign...\n", *n)
		c, err = dcelens.RunCampaign(dcelens.CampaignOptions{
			Programs: *n, BaseSeed: *seed,
			Workers: par.Workers("dce-report"), Shard: par.Shard("dce-report"),
		})
	}
	if err != nil {
		fail(err)
	}
	if len(c.Stats.Errors) > 0 {
		fmt.Fprintf(os.Stderr, "campaign errors: %v\n", c.Stats.Errors)
	}
	fmt.Print(dcelens.Report(c))

	if *doBisect {
		fmt.Println()
		for _, p := range []pipeline.Personality{pipeline.LLVM, pipeline.GCC} {
			outs, attempted, err := c.BisectRegressions(p, false, *maxBisect)
			if err != nil {
				fail(err)
			}
			title := fmt.Sprintf("Table 4 analogue (%s): offending components", p)
			if p == pipeline.LLVM {
				title = fmt.Sprintf("Table 3 analogue (%s): offending components", p)
			}
			fmt.Printf("%s\n(bisected %d level-diff candidates, %d confirmed regressions, %d unique commits)\n",
				"", attempted, len(outs), bisect.UniqueCommits(outs))
			fmt.Print(report.ComponentTable(title, bisect.Categorize(outs)))
			fmt.Println()
		}
	}

	if *doTriage {
		fmt.Fprintln(os.Stderr, "reducing findings for triage (this is the slow part)...")
		triage := map[pipeline.Personality]*corpus.Triage{}
		for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
			var cases []*corpus.ReducedCase
			budget := *maxReduce
			for _, kind := range []corpus.FindingKind{corpus.KindCompilerDiff, corpus.KindLevelDiff} {
				for _, f := range c.FindingsOf(kind, p, true /* primary */) {
					if budget == 0 {
						break
					}
					budget--
					rc, err := c.ReduceFinding(f, reduce.Options{MaxChecks: 500, MaxRounds: 4})
					if err != nil {
						fail(err)
					}
					cases = append(cases, rc)
				}
			}
			tr, err := corpus.TriageCases(p, cases)
			if err != nil {
				fail(err)
			}
			triage[p] = tr
		}
		fmt.Println()
		fmt.Print(report.Table5(triage[pipeline.GCC], triage[pipeline.LLVM]))
	}
}

func fail(err error) { cli.Fail("dce-report", err) }
