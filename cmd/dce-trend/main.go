// dce-trend diffs run-history snapshots (dce-campaign -history) across a
// campaign sequence: which fingerprinted findings appeared, which were
// fixed, which persist, and which metrics regressed. This is the
// longitudinal workflow of the paper — campaigns run continuously across
// compiler versions, and the trajectory of findings (not any single run) is
// what gets reported.
//
// Usage:
//
//	dce-trend runs/run-a.json runs/run-b.json           # one delta
//	dce-trend runs/run-a.json runs/run-b.json runs/run-c.json
//	dce-trend -rate-drop 0.01 -time-grow 1.0 old.json new.json
//	dce-trend old.json shard0.json,shard1.json          # merge a shard group
//
// Snapshots are given oldest first; each consecutive pair renders one trend
// section. A comma-separated group of per-shard snapshots (dce-campaign
// -shard -history) is merged into one whole-corpus snapshot before
// diffing; a shard snapshot outside a complete group is refused, since a
// corpus slice would diff as a wave of spurious fixes. Exit status 0
// regardless of findings (the diff is a report, not a gate).
package main

import (
	"flag"
	"fmt"
	"strings"

	"dcelens/internal/cli"
	"dcelens/internal/history"
	"dcelens/internal/report"
)

const tool = "dce-trend"

func main() {
	rateDrop := flag.Float64("rate-drop", 0, "elimination-rate drop flagged as a regression (0: default 0.005)")
	timeGrow := flag.Float64("time-grow", 0, "fractional pass-time growth flagged as a regression (0: default 0.5)")
	prof := cli.Profiling()
	flag.Parse()
	defer prof.Start(tool)()

	paths := flag.Args()
	if len(paths) < 2 {
		cli.Usagef(tool, "need at least two snapshot files (oldest first); got %d", len(paths))
	}
	snaps := make([]*history.Snapshot, len(paths))
	for i, p := range paths {
		s, err := loadGroup(p)
		if err != nil {
			cli.Fail(tool, err)
		}
		snaps[i] = s
	}
	opts := history.DiffOptions{RateDrop: *rateDrop, TimeGrow: *timeGrow}
	for i := 1; i < len(snaps); i++ {
		if i > 1 {
			fmt.Println()
		}
		d := history.Diff(snaps[i-1], snaps[i], opts)
		d.OldLabel, d.NewLabel = paths[i-1], paths[i]
		fmt.Print(report.Trend(d))
	}
}

// loadGroup loads one argument: a single snapshot file, or a
// comma-separated group of per-shard snapshots merged into the
// whole-corpus snapshot. A lone shard snapshot is refused — diffing a
// corpus slice against whole runs would report every missing finding as
// fixed.
func loadGroup(arg string) (*history.Snapshot, error) {
	parts := strings.Split(arg, ",")
	if len(parts) == 1 {
		s, err := history.Load(arg)
		if err != nil {
			return nil, err
		}
		if s.Shard != "" {
			return nil, fmt.Errorf("%s covers only shard %s; list its whole shard group comma-separated (a.json,b.json)", arg, s.Shard)
		}
		return s, nil
	}
	snaps := make([]*history.Snapshot, len(parts))
	for i, p := range parts {
		s, err := history.Load(p)
		if err != nil {
			return nil, err
		}
		snaps[i] = s
	}
	return history.MergeShards(snaps)
}
