// dce-prof analyzes a span timeline recorded by dce-campaign -trace: it
// parses the Chrome trace_event JSON, walks the critical path through the
// campaign's wall clock, and prints where the time went — the chain of
// (seed, config) work spans that bounded the run, per-worker occupancy,
// scheduler queue-wait and sequencer-stall totals, and the slowest units.
//
// Usage:
//
//	dce-campaign -n 50 -j 8 -trace out.json
//	dce-prof out.json                # full analysis
//	dce-prof -top 10 out.json        # bound the slowest-units table
//
// A trace recorded under -metrics deterministic carries no wall-clock
// information; dce-prof then prints the logical unit inventory with every
// duration redacted to "-", byte-identically for a given campaign
// configuration.
package main

import (
	"flag"
	"fmt"

	"dcelens/internal/cli"
	"dcelens/internal/report"
	"dcelens/internal/span"
)

const tool = "dce-prof"

func main() {
	top := flag.Int("top", 20, "bound the slowest-units table to this many rows (<= 0: all)")
	prof := cli.Profiling()
	flag.Parse()
	defer prof.Start(tool)()

	if flag.NArg() != 1 {
		cli.Usagef(tool, "usage: %s [-top K] trace.json", tool)
	}
	t, err := span.ParseFile(flag.Arg(0))
	if err != nil {
		cli.Fail(tool, err)
	}
	fmt.Print(report.Timeline(span.Analyze(t, *top)))
}
