// dce-bisect locates the version-history commit that made a compiler stop
// eliminating a dead marker (paper §4.2, "Missed optimization diversity").
//
// Usage:
//
//	dce-bisect -seed 42 -marker DCEMarker7 -compiler gcc -level O3
//	dce-bisect -file case.c -marker DCEMarker0 -compiler llvm
//	dce-bisect -history gcc        # just print the synthetic history
package main

import (
	"flag"
	"fmt"
	"os"

	"dcelens"
	"dcelens/internal/cli"
	"dcelens/internal/pipeline"
)

func main() {
	seed := flag.Int64("seed", -1, "generator seed")
	file := flag.String("file", "", "already-instrumented MiniC source file")
	marker := flag.String("marker", "", "marker that is missed at the latest version")
	compiler := flag.String("compiler", "gcc", "gcc or llvm")
	level := flag.String("level", "O3", "optimization level")
	history := flag.String("history", "", "print the commit history of gcc or llvm and exit")
	prof := cli.Profiling()
	flag.Parse()
	defer prof.Start("dce-bisect")()

	if *history != "" {
		p := personality(*history)
		for i, c := range pipeline.History(p) {
			reg := "   "
			if c.Regression {
				reg = "[R]"
			}
			fmt.Printf("%2d %s %s %-32s %s\n", i+1, reg, c.ID, c.Component, c.Desc)
		}
		return
	}
	if *marker == "" {
		cli.Usagef("dce-bisect", "-marker is required")
	}

	var ins *dcelens.Instrumented
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		prog, err := dcelens.Parse(string(data))
		if err != nil {
			fail(err)
		}
		ins = adopt(prog)
	case *seed >= 0:
		prog := dcelens.Generate(*seed)
		var err error
		ins, err = dcelens.Instrument(prog)
		if err != nil {
			fail(err)
		}
	default:
		cli.Usagef("dce-bisect", "need -seed or -file")
	}

	out, err := dcelens.BisectRegression(ins, personality(*compiler), parseLevel(*level), *marker)
	if err != nil {
		fail(err)
	}
	c := out.Commit
	fmt.Printf("first bad commit: %s (#%d in %s history)\n", c.ID, out.CommitIndex, *compiler)
	fmt.Printf("  component: %s\n", c.Component)
	fmt.Printf("  files:     %v\n", c.Files)
	fmt.Printf("  subject:   %s\n", c.Desc)
}

// adopt treats explicit DCEMarker declarations in a hand-written file as
// the marker table.
func adopt(p *dcelens.Program) *dcelens.Instrumented {
	ins := &dcelens.Instrumented{Prog: p}
	for _, f := range p.Funcs() {
		if f.Body == nil && dcelens.IsMarker(f.Name) {
			ins.Markers = append(ins.Markers, dcelens.Marker{ID: len(ins.Markers), Name: f.Name})
		}
	}
	return ins
}

func personality(name string) pipeline.Personality { return cli.Personality("dce-bisect", name) }

func parseLevel(s string) dcelens.Level { return cli.Level("dce-bisect", s) }

func fail(err error) { cli.Fail("dce-bisect", err) }
