// dce-find runs the end-to-end missed-optimization search on one program:
// instrument, compute ground truth, compile with both personalities at the
// requested levels, and report per-compiler missed markers plus the
// differential results (paper Figure 1).
//
// Usage:
//
//	dce-find -seed 42            # generated program
//	dce-find -file prog.c        # hand-written MiniC (markers optional)
//	dce-find -seed 42 -asm       # also dump the -O3 assembly
package main

import (
	"flag"
	"fmt"
	"os"

	"dcelens"
	"dcelens/internal/cli"
)

func main() {
	seed := flag.Int64("seed", 42, "generator seed (ignored with -file)")
	file := flag.String("file", "", "MiniC source file to analyze instead of generating")
	showAsm := flag.Bool("asm", false, "dump -O3 assembly of both compilers")
	prof := cli.Profiling()
	flag.Parse()
	defer prof.Start("dce-find")()

	var prog *dcelens.Program
	var err error
	if *file != "" {
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			fail(rerr)
		}
		prog, err = dcelens.Parse(string(data))
	} else {
		prog = dcelens.Generate(*seed)
	}
	if err != nil {
		fail(err)
	}

	// A file that already declares markers (e.g. produced by
	// `dce-gen -instrument` or a reduced case) is adopted as-is;
	// otherwise instrument it now.
	ins := adoptExisting(prog)
	if len(ins.Markers) == 0 {
		var err error
		ins, err = dcelens.Instrument(prog)
		if err != nil {
			fail(err)
		}
	}
	truth, err := dcelens.GroundTruth(ins)
	if err != nil {
		fail(err)
	}
	graph, err := dcelens.BuildMarkerCFG(ins)
	if err != nil {
		fail(err)
	}
	fmt.Printf("markers: %d total, %d dead, %d alive\n",
		len(ins.Markers), len(truth.Dead), len(truth.Alive))

	type result struct {
		name string
		c    *dcelens.Compilation
	}
	var results []result
	for _, lvl := range []dcelens.Level{dcelens.O1, dcelens.O3} {
		for _, mk := range []struct {
			name string
			c    *dcelens.Compiler
		}{{"gcc-sim", dcelens.GCC(lvl)}, {"llvm-sim", dcelens.LLVM(lvl)}} {
			comp, err := dcelens.Compile(ins, mk.c)
			if err != nil {
				fail(err)
			}
			missed := comp.Missed(truth)
			primary := graph.Primary(truth, missed)
			fmt.Printf("%-9s %s: %3d missed (%d primary)\n", mk.name, lvl, len(missed), len(primary))
			if lvl == dcelens.O3 {
				results = append(results, result{mk.name, comp})
			}
		}
	}

	a, b := results[0], results[1]
	for _, d := range []struct {
		t, r result
	}{{a, b}, {b, a}} {
		missed := dcelens.DiffMissed(d.t.c, d.r.c, truth)
		primary := graph.Primary(truth, missed)
		fmt.Printf("feasible missed in %s at -O3 (other compiler succeeds): %d", d.t.name, len(missed))
		if len(primary) > 0 {
			fmt.Printf("  primary: %v", primary)
		}
		fmt.Println()
	}

	if *showAsm {
		for _, r := range results {
			fmt.Printf("\n===== %s -O3 assembly =====\n%s", r.name, r.c.Asm)
		}
	}
}

// adoptExisting collects marker declarations already present in a program.
func adoptExisting(p *dcelens.Program) *dcelens.Instrumented {
	ins := &dcelens.Instrumented{Prog: p}
	for _, f := range p.Funcs() {
		if f.Body == nil && dcelens.IsMarker(f.Name) {
			ins.Markers = append(ins.Markers, dcelens.Marker{ID: len(ins.Markers), Name: f.Name})
		}
	}
	return ins
}

func fail(err error) { cli.Fail("dce-find", err) }
