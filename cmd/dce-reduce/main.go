// dce-reduce shrinks a missed-optimization test case while it keeps
// reproducing (the C-Reduce role, paper §4.3): the named marker must stay
// dead in ground truth, the target compiler must keep missing it, and the
// reference compiler must keep eliminating it.
//
// Usage:
//
//	dce-reduce -seed 42 -marker DCEMarker7 -target gcc -reference llvm
//	dce-reduce -file case.c -marker DCEMarker0 -target llvm -level O3 -reflevel O2
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"dcelens"
	"dcelens/internal/cli"
)

func main() {
	seed := flag.Int64("seed", -1, "generator seed (program is generated and instrumented)")
	file := flag.String("file", "", "already-instrumented MiniC source file")
	marker := flag.String("marker", "", "marker to preserve (required)")
	target := flag.String("target", "gcc", "compiler that misses the marker: gcc or llvm")
	reference := flag.String("reference", "", "compiler that eliminates it: gcc, llvm, or empty for same-compiler level diff")
	level := flag.String("level", "O3", "target optimization level")
	refLevel := flag.String("reflevel", "O1", "reference level for same-compiler reduction")
	checks := flag.Int("checks", 3000, "interestingness-test budget")
	prof := cli.Profiling()
	flag.Parse()
	defer prof.Start("dce-reduce")()

	if *marker == "" {
		cli.Usagef("dce-reduce", "-marker is required")
	}

	var prog *dcelens.Program
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		p, err := dcelens.Parse(string(data))
		if err != nil {
			fail(err)
		}
		prog = p
	case *seed >= 0:
		ins, err := dcelens.Instrument(dcelens.Generate(*seed))
		if err != nil {
			fail(err)
		}
		prog = ins.Prog
	default:
		cli.Usagef("dce-reduce", "need -seed or -file")
	}

	targetCfg := mkCompiler(*target, parseLevel(*level))
	var refCfg *dcelens.Compiler
	if *reference != "" {
		refCfg = mkCompiler(*reference, dcelens.O3)
	} else {
		refCfg = mkCompiler(*target, parseLevel(*refLevel))
	}

	test := dcelens.MissedInterestingness(*marker, targetCfg, refCfg)
	if !test(prog) {
		cli.Fail("dce-reduce", errors.New("the input does not exhibit the requested miss"))
	}
	res := dcelens.Reduce(prog, test, dcelens.ReduceOptions{MaxChecks: *checks})
	fmt.Fprintf(os.Stderr, "reduced %d -> %d AST nodes in %d rounds (%d checks)\n",
		res.NodesBefore, res.NodesAfter, res.Rounds, res.Checks)
	fmt.Println(dcelens.Print(res.Program))
}

func mkCompiler(name string, lvl dcelens.Level) *dcelens.Compiler {
	return cli.Compiler("dce-reduce", name, lvl)
}

func parseLevel(s string) dcelens.Level { return cli.Level("dce-reduce", s) }

func fail(err error) { cli.Fail("dce-reduce", err) }
