// dce-reduce shrinks a missed-optimization test case while it keeps
// reproducing (the C-Reduce role, paper §4.3): the named marker must stay
// dead in ground truth, the target compiler must keep missing it, and the
// reference compiler must keep eliminating it.
//
// Usage:
//
//	dce-reduce -seed 42 -marker DCEMarker7 -target gcc -reference llvm
//	dce-reduce -file case.c -marker DCEMarker0 -target llvm -level O3 -reflevel O2
package main

import (
	"flag"
	"fmt"
	"os"

	"dcelens"
)

func main() {
	seed := flag.Int64("seed", -1, "generator seed (program is generated and instrumented)")
	file := flag.String("file", "", "already-instrumented MiniC source file")
	marker := flag.String("marker", "", "marker to preserve (required)")
	target := flag.String("target", "gcc", "compiler that misses the marker: gcc or llvm")
	reference := flag.String("reference", "", "compiler that eliminates it: gcc, llvm, or empty for same-compiler level diff")
	level := flag.String("level", "O3", "target optimization level")
	refLevel := flag.String("reflevel", "O1", "reference level for same-compiler reduction")
	checks := flag.Int("checks", 3000, "interestingness-test budget")
	flag.Parse()

	if *marker == "" {
		fmt.Fprintln(os.Stderr, "dce-reduce: -marker is required")
		os.Exit(2)
	}

	var prog *dcelens.Program
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		p, err := dcelens.Parse(string(data))
		if err != nil {
			fail(err)
		}
		prog = p
	case *seed >= 0:
		ins, err := dcelens.Instrument(dcelens.Generate(*seed))
		if err != nil {
			fail(err)
		}
		prog = ins.Prog
	default:
		fmt.Fprintln(os.Stderr, "dce-reduce: need -seed or -file")
		os.Exit(2)
	}

	targetCfg := mkCompiler(*target, parseLevel(*level))
	var refCfg *dcelens.Compiler
	if *reference != "" {
		refCfg = mkCompiler(*reference, dcelens.O3)
	} else {
		refCfg = mkCompiler(*target, parseLevel(*refLevel))
	}

	test := dcelens.MissedInterestingness(*marker, targetCfg, refCfg)
	if !test(prog) {
		fmt.Fprintln(os.Stderr, "dce-reduce: the input does not exhibit the requested miss")
		os.Exit(1)
	}
	res := dcelens.Reduce(prog, test, dcelens.ReduceOptions{MaxChecks: *checks})
	fmt.Fprintf(os.Stderr, "reduced %d -> %d AST nodes in %d rounds (%d checks)\n",
		res.NodesBefore, res.NodesAfter, res.Rounds, res.Checks)
	fmt.Println(dcelens.Print(res.Program))
}

func mkCompiler(name string, lvl dcelens.Level) *dcelens.Compiler {
	switch name {
	case "gcc":
		return dcelens.GCC(lvl)
	case "llvm":
		return dcelens.LLVM(lvl)
	}
	fmt.Fprintf(os.Stderr, "dce-reduce: unknown compiler %q\n", name)
	os.Exit(2)
	return nil
}

func parseLevel(s string) dcelens.Level {
	switch s {
	case "O0":
		return dcelens.O0
	case "O1":
		return dcelens.O1
	case "Os":
		return dcelens.Os
	case "O2":
		return dcelens.O2
	case "O3":
		return dcelens.O3
	}
	fmt.Fprintf(os.Stderr, "dce-reduce: unknown level %q\n", s)
	os.Exit(2)
	return dcelens.O0
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dce-reduce:", err)
	os.Exit(1)
}
