// dce-serve runs campaigns as a service: a resilient job engine behind an
// HTTP API. Campaign specs are POSTed to /jobs and admitted into a bounded
// queue — a full queue answers 429 with Retry-After instead of buffering
// without bound — then executed by a fixed pool with per-job budgets
// (wall-clock deadline, seed cap, worker cap), automatic
// retry-with-backoff from the job's JSON checkpoint after a crash, and
// per-job observability (/jobs/{id}, /jobs/{id}/events, .../findings,
// .../report). Finished jobs land in the run-history directory so
// dce-trend diffs across them.
//
// Usage:
//
//	dce-serve -addr 127.0.0.1:8080 -history runs/ -workdir state/
//	curl -XPOST localhost:8080/jobs -d '{"programs": 30, "base_seed": 1}'
//	curl localhost:8080/jobs/job-1
//	curl localhost:8080/jobs/job-1/report
//
// On SIGTERM (or SIGINT) the service drains gracefully: admission stops
// (/healthz reports "draining", new submissions get 503), running jobs
// stop at the next seed boundary with every in-flight seed checkpointed,
// queued jobs are cancelled, and the process exits 0. Nothing is lost:
// resubmitting a drained job's spec with its checkpoint path resumes
// exactly the unrun seeds and reports byte-identically to an
// uninterrupted run.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dcelens/internal/cli"
	"dcelens/internal/service"
)

const tool = "dce-serve"

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address (port 0 picks one)")
	queue := flag.Int("queue", 8, "admission queue depth (full queue answers 429)")
	executors := flag.Int("executors", 2, "jobs run concurrently")
	maxSeeds := flag.Int("max-seeds", 1000, "per-job seed cap (larger specs are rejected)")
	maxWorkers := flag.Int("max-workers", 0, "per-job worker cap (0: GOMAXPROCS)")
	maxAttempts := flag.Int("max-attempts", 3, "per-job run attempts (first run + retries)")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "first retry delay (doubles per attempt)")
	workDir := flag.String("workdir", "", "directory for per-job checkpoint files (empty: in-memory)")
	historyDir := flag.String("history", "", "directory for finished jobs' run-history snapshots (see dce-trend)")
	flag.Parse()

	if *workDir != "" {
		if err := os.MkdirAll(*workDir, 0o755); err != nil {
			cli.Fail(tool, err)
		}
	}
	eng := service.New(tool, service.Limits{
		QueueDepth:  *queue,
		Executors:   *executors,
		MaxSeeds:    *maxSeeds,
		MaxWorkers:  *maxWorkers,
		MaxAttempts: *maxAttempts,
		Backoff:     *backoff,
		WorkDir:     *workDir,
		HistoryDir:  *historyDir,
	})
	eng.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fail(tool, err)
	}
	srv := &http.Server{Handler: service.NewServer(eng).Handler()}
	go func() {
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			cli.Fail(tool, serr)
		}
	}()
	fmt.Fprintf(os.Stderr, "%s: serving on http://%s\n", tool, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	got := <-sig
	fmt.Fprintf(os.Stderr, "%s: %s received, draining...\n", tool, got)
	// Drain with the HTTP server still up: /healthz reports "draining" and
	// job status stays queryable while running jobs checkpoint and park.
	eng.Drain()
	if err := srv.Close(); err != nil {
		cli.Fail(tool, err)
	}
	fmt.Fprintf(os.Stderr, "%s: drained cleanly\n", tool)
}
