// dce-explain turns findings into missed-optimization narratives: for each
// marker a compiler failed to eliminate, it prints the nearest-miss chain —
// the ordered pass decisions ("gvn: alias-unknown on load p", "licm:
// loop-carried on x") recorded while the marker's code stayed alive. It is
// the human-facing end of the internal/remark engine: dce-attrib says which
// pass *did* eliminate a marker elsewhere; dce-explain says why the passes
// here *did not*.
//
// Usage:
//
//	dce-explain -n 20                        # campaign: remark tables +
//	                                         # per-finding narratives
//	dce-explain -n 50 -findings 5            # cap the narratives printed
//	dce-explain -seed 42 -compiler gcc       # one program: pass remark
//	                                         # counts, miss reasons, chains
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dcelens"
	"dcelens/internal/cli"
)

const tool = "dce-explain"

func main() {
	n := flag.Int("n", 20, "campaign corpus size")
	seed := flag.Int64("seed", 1, "base seed (campaign) or program seed (-single)")
	findings := flag.Int("findings", 12, "max finding narratives to print in campaign mode")
	single := flag.Bool("single", false, "explain one generated program instead of running a campaign")
	compiler := flag.String("compiler", "llvm", "gcc or llvm (single-program mode)")
	level := flag.String("level", "O3", "optimization level (single-program mode)")
	prof := cli.Profiling()
	flag.Parse()
	defer prof.Start(tool)()

	if *single {
		singleProgram(*seed, *compiler, *level)
		return
	}
	campaign(*n, *seed, *findings)
}

// campaign runs a remark-collecting campaign and prints the aggregate
// remark tables followed by per-finding narratives.
func campaign(n int, seed int64, maxFindings int) {
	fmt.Fprintf(os.Stderr, "%s: running a %d-program campaign with remarks...\n", tool, n)
	c, err := dcelens.RunCampaign(dcelens.CampaignOptions{Programs: n, BaseSeed: seed, Remarks: true})
	if err != nil {
		cli.Fail(tool, err)
	}
	if len(c.Stats.Errors) > 0 {
		fmt.Fprintf(os.Stderr, "campaign errors: %v\n", c.Stats.Errors)
	}
	if r := dcelens.ReportRemarks(c.Stats); r != "" {
		fmt.Print(r)
	}
	if len(c.Findings) == 0 {
		fmt.Println("\nno findings to explain")
		return
	}
	fs := c.Findings
	if maxFindings > 0 && len(fs) > maxFindings {
		fs = fs[:maxFindings]
	}
	fmt.Printf("\nFinding narratives (%d findings, explaining %d):\n\n", len(c.Findings), len(fs))
	fmt.Println(dcelens.ExplainFindings(fs))
}

// singleProgram compiles one generated program with the remark collector
// attached and prints its pass counts, miss reasons, and per-marker chains.
func singleProgram(seed int64, compiler, level string) {
	ins, err := dcelens.Instrument(dcelens.Generate(seed))
	if err != nil {
		cli.Fail(tool, err)
	}
	truth, err := dcelens.GroundTruth(ins)
	if err != nil {
		cli.Fail(tool, err)
	}
	cfg := cli.Compiler(tool, compiler, cli.Level(tool, level))
	comp, prof, err := dcelens.CompileRemarked(ins, cfg)
	if err != nil {
		cli.Fail(tool, err)
	}
	missed := comp.Missed(truth)
	fmt.Printf("%s on seed %d: %d markers, %d dead, %d missed, %d remarks\n",
		cfg.Name(), seed, len(ins.Markers), len(truth.Dead), len(missed), prof.Total)

	if len(prof.Passes) > 0 {
		fmt.Printf("\n%-14s %8s %8s %8s\n", "pass", "applied", "missed", "analysis")
		for _, pc := range prof.Passes {
			fmt.Printf("%-14s %8d %8d %8d\n", pc.Pass, pc.Applied, pc.Missed, pc.Analysis)
		}
	}
	if rows := dcelens.TopMissReasons(prof.Reasons, 0); len(rows) > 0 {
		fmt.Println("\nmiss reasons:")
		for _, r := range rows {
			fmt.Printf("  %-16s %d\n", r.Reason, r.Count)
		}
	}
	markers := make([]string, 0, len(prof.Chains))
	for m := range prof.Chains {
		markers = append(markers, m)
	}
	sort.Strings(markers)
	for _, m := range markers {
		fmt.Printf("\n%s stayed alive because:\n", m)
		for i, st := range prof.Chains[m] {
			line := fmt.Sprintf("  %d. %s: %s on %s", i+1, st.Pass, st.Reason, st.Subject)
			fmt.Println(line)
			if st.Detail != "" {
				fmt.Printf("     %s\n", st.Detail)
			}
		}
	}
}
