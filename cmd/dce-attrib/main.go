// dce-attrib attributes marker eliminations to the pass instances that
// perform them — the trace-based root-cause analysis that complements
// dce-bisect: bisection explains regressions by history commit, provenance
// explains any finding by the pass in the succeeding configuration.
//
// Usage:
//
//	dce-attrib -n 20                        # campaign: eliminations-per-pass
//	                                        # tables + per-finding attribution
//	dce-attrib -seed 42 -compiler llvm -profile   # one-program pass profile
//	dce-attrib -seed 42 -compiler gcc -provenance # one-program marker→killer
package main

import (
	"flag"
	"fmt"
	"os"

	"dcelens"
	"dcelens/internal/cli"
	"dcelens/internal/pipeline"
)

func main() {
	n := flag.Int("n", 20, "campaign corpus size")
	seed := flag.Int64("seed", 1, "base seed (campaign) or program seed (-profile/-provenance)")
	findings := flag.Int("findings", 12, "max findings to attribute in campaign mode")
	profile := flag.Bool("profile", false, "trace one program: per-pass profile with timings")
	provenance := flag.Bool("provenance", false, "trace one program: marker→killer table")
	compiler := flag.String("compiler", "llvm", "gcc or llvm (single-program modes)")
	level := flag.String("level", "O3", "optimization level (single-program modes)")
	prof := cli.Profiling()
	flag.Parse()
	defer prof.Start("dce-attrib")()

	if *profile || *provenance {
		singleProgram(*seed, *compiler, *level, *profile, *provenance)
		return
	}
	campaign(*n, *seed, *findings)
}

// singleProgram traces one generated program under one configuration.
func singleProgram(seed int64, compiler, level string, profile, provenance bool) {
	ins, err := dcelens.Instrument(dcelens.Generate(seed))
	if err != nil {
		fail(err)
	}
	truth, err := dcelens.GroundTruth(ins)
	if err != nil {
		fail(err)
	}
	cfg := mkCompiler(compiler, parseLevel(level))
	comp, prof, err := dcelens.CompileTraced(ins, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s on seed %d: %d markers, %d dead, %d surviving\n",
		cfg.Name(), seed, len(ins.Markers), len(truth.Dead), len(comp.Missed(truth))+len(truth.Alive))
	if profile {
		fmt.Print(dcelens.ReportPassProfile(prof, true))
	}
	if provenance {
		fmt.Print(dcelens.ReportProvenance(prof.Provenance()))
	}
}

// campaign runs a traced campaign and prints the eliminations-per-pass
// tables plus attribution of the discovered findings.
func campaign(n int, seed int64, maxFindings int) {
	fmt.Fprintf(os.Stderr, "running a traced %d-program campaign...\n", n)
	c, err := dcelens.RunCampaign(dcelens.CampaignOptions{Programs: n, BaseSeed: seed, Trace: true})
	if err != nil {
		fail(err)
	}
	if len(c.Stats.Errors) > 0 {
		fmt.Fprintf(os.Stderr, "campaign errors: %v\n", c.Stats.Errors)
	}
	for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
		rows := dcelens.EliminationsPerPass(c, p, dcelens.O3)
		title := fmt.Sprintf("Eliminations per pass: %s -O3 (Tables 3/4 analogue, trace side)", p)
		fmt.Println(dcelens.ReportAttributionTable(title, rows))
	}
	if maxFindings <= 0 || len(c.Findings) == 0 {
		return
	}
	fmt.Printf("Finding attribution (%d findings, attributing up to %d):\n", len(c.Findings), maxFindings)
	attributed := 0
	for _, f := range c.Findings {
		if attributed >= maxFindings {
			break
		}
		a, err := dcelens.AttributeFinding(c, f)
		if err != nil {
			fmt.Printf("  %-16s (%s, missed by %s): %v\n", f.Marker, f.Kind, f.Personality, err)
			continue
		}
		attributed++
		fmt.Printf("  %-16s missed by %-9s %-13s eliminated by %-24s via %-18s (%s)\n",
			f.Marker, f.Personality, "("+f.Kind.String()+")", a.Eliminator, a.Killer, a.Component)
	}
}

func mkCompiler(name string, lvl dcelens.Level) *dcelens.Compiler {
	return cli.Compiler("dce-attrib", name, lvl)
}

func parseLevel(s string) dcelens.Level { return cli.Level("dce-attrib", s) }

func fail(err error) { cli.Fail("dce-attrib", err) }
