// dce-gen generates random MiniC programs (the Csmith role) and writes
// them — optionally instrumented — to stdout or a directory.
//
// Usage:
//
//	dce-gen [-n count] [-seed base] [-instrument] [-dir out/]
//
// With -dir, programs are written as seed_<N>.c files; otherwise a single
// program is printed to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dcelens"
	"dcelens/internal/cli"
)

func main() {
	n := flag.Int("n", 1, "number of programs to generate")
	seed := flag.Int64("seed", 1, "base seed (program i uses seed+i)")
	instr := flag.Bool("instrument", false, "insert DCE markers")
	dir := flag.String("dir", "", "output directory (default: stdout, single program)")
	prof := cli.Profiling()
	flag.Parse()
	defer prof.Start("dce-gen")()

	if *dir == "" && *n != 1 {
		cli.Usagef("dce-gen", "-n > 1 requires -dir")
	}
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		prog := dcelens.Generate(s)
		src := dcelens.Print(prog)
		if *instr {
			ins, err := dcelens.Instrument(prog)
			if err != nil {
				cli.Fail("dce-gen", err)
			}
			src = dcelens.Print(ins.Prog)
		}
		if *dir == "" {
			fmt.Println(src)
			return
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			cli.Fail("dce-gen", err)
		}
		path := filepath.Join(*dir, fmt.Sprintf("seed_%d.c", s))
		if err := os.WriteFile(path, []byte(src+"\n"), 0o644); err != nil {
			cli.Fail("dce-gen", err)
		}
	}
	if *dir != "" {
		fmt.Printf("wrote %d programs to %s\n", *n, *dir)
	}
}
