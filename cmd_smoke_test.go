// Smoke tests for the cmd/* binaries: build each one, run its main path on
// a tiny corpus, and require a clean exit with non-empty output. These keep
// the CLIs wired to the library as the facade evolves.
package dcelens

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
)

var (
	cmdBinOnce sync.Once
	cmdBinDir  string
	cmdBinErr  error
)

// buildCommands compiles every cmd/* binary once into a shared temp dir.
func buildCommands(t *testing.T) string {
	t.Helper()
	cmdBinOnce.Do(func() {
		cmdBinDir, cmdBinErr = os.MkdirTemp("", "dcelens-cmd")
		if cmdBinErr != nil {
			return
		}
		entries, err := os.ReadDir("cmd")
		if err != nil {
			cmdBinErr = err
			return
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			bin := filepath.Join(cmdBinDir, e.Name())
			if runtime.GOOS == "windows" {
				bin += ".exe"
			}
			out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+e.Name()).CombinedOutput()
			if err != nil {
				cmdBinErr = &buildError{cmd: e.Name(), out: string(out), err: err}
				return
			}
		}
	})
	if cmdBinErr != nil {
		t.Fatal(cmdBinErr)
	}
	return cmdBinDir
}

type buildError struct {
	cmd string
	out string
	err error
}

func (e *buildError) Error() string {
	return "go build ./cmd/" + e.cmd + ": " + e.err.Error() + "\n" + e.out
}

// runCmd executes a built binary and returns its combined output, failing
// the test on a non-zero exit.
func runCmd(t *testing.T, name string, args ...string) string {
	t.Helper()
	bin := filepath.Join(buildCommands(t), name)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", name, strings.Join(args, " "), err, out)
	}
	if len(strings.TrimSpace(string(out))) == 0 {
		t.Fatalf("%s %s: empty output", name, strings.Join(args, " "))
	}
	return string(out)
}

// runCmdStdout executes a built binary and returns stdout only (stderr
// carries progress chatter that is not part of the deterministic report).
func runCmdStdout(t *testing.T, name string, args ...string) string {
	t.Helper()
	bin := filepath.Join(buildCommands(t), name)
	var stdout, stderr strings.Builder
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %s: %v\nstderr: %s", name, strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String()
}

// exitCode runs a built binary expecting failure and returns its exit code.
func exitCode(t *testing.T, name string, args ...string) int {
	t.Helper()
	bin := filepath.Join(buildCommands(t), name)
	err := exec.Command(bin, args...).Run()
	if err == nil {
		t.Fatalf("%s %s: expected a non-zero exit", name, strings.Join(args, " "))
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %s: %v", name, strings.Join(args, " "), err)
	}
	return ee.ExitCode()
}

func TestCmdGenSmoke(t *testing.T) {
	dir := t.TempDir()
	out := runCmd(t, "dce-gen", "-n", "2", "-seed", "1", "-instrument", "-dir", dir)
	files, err := filepath.Glob(filepath.Join(dir, "*.c"))
	if err != nil || len(files) != 2 {
		t.Fatalf("want 2 generated files, got %v (%v)\noutput: %s", files, err, out)
	}
	src, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "DCEMarker") {
		t.Errorf("generated file has no markers:\n%s", src)
	}
}

func TestCmdFindSmoke(t *testing.T) {
	out := runCmd(t, "dce-find", "-seed", "3")
	if !strings.Contains(out, "marker") {
		t.Errorf("dce-find output mentions no markers:\n%s", out)
	}
}

func TestCmdReduceSmoke(t *testing.T) {
	// listing3.c: gcc-sim eliminates DCEMarker0, llvm-sim misses it.
	out := runCmd(t, "dce-reduce",
		"-file", filepath.Join("internal", "core", "testdata", "listing3.c"),
		"-marker", "DCEMarker0", "-target", "llvm", "-reference", "gcc",
		"-checks", "200")
	if !strings.Contains(out, "DCEMarker0") {
		t.Errorf("reduced program lost the marker:\n%s", out)
	}
}

func TestCmdBisectSmoke(t *testing.T) {
	out := runCmd(t, "dce-bisect", "-history", "llvm")
	if !strings.Contains(out, "Value Propagation") {
		t.Errorf("llvm-sim history missing expected component:\n%s", out)
	}
	// listing6a.c models the paper's Listing 6a regression.
	out = runCmd(t, "dce-bisect",
		"-file", filepath.Join("internal", "core", "testdata", "listing6a.c"),
		"-marker", "DCEMarker0", "-compiler", "llvm")
	if !strings.Contains(out, "commit") {
		t.Errorf("bisection reported no commit:\n%s", out)
	}
}

func TestCmdReportSmoke(t *testing.T) {
	out := runCmd(t, "dce-report", "-n", "3")
	if !strings.Contains(out, "markers") {
		t.Errorf("report missing marker statistics:\n%s", out)
	}
}

func TestCmdCampaignSmoke(t *testing.T) {
	out := runCmdStdout(t, "dce-campaign", "-n", "3", "-seed", "100")
	if !strings.Contains(out, "Failures: none") {
		t.Errorf("clean campaign does not state its failure verdict:\n%s", out)
	}
	if !strings.Contains(out, "markers") {
		t.Errorf("campaign report missing statistics:\n%s", out)
	}
}

func TestCmdCampaignInject(t *testing.T) {
	dir := t.TempDir()
	out := runCmdStdout(t, "dce-campaign", "-n", "3", "-seed", "100",
		"-inject", "panic:gvn:101:gcc-sim -O3", "-repro-dir", dir)
	if !strings.Contains(out, "1 crashes") {
		t.Errorf("injected crash not reported:\n%s", out)
	}
	repros, err := filepath.Glob(filepath.Join(dir, "crash_seed101_*.c"))
	if err != nil || len(repros) != 1 {
		t.Fatalf("want 1 reproducer, got %v (%v)", repros, err)
	}
	src, err := os.ReadFile(repros[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "// reproduce:") || !strings.Contains(string(src), "DCEMarker") {
		t.Errorf("reproducer missing its reproduce header or markers:\n%s", src)
	}
}

// TestCmdCampaignResumeRoundTrip: a campaign halted partway, then resumed
// from its checkpoint, prints byte-identical stdout to an uninterrupted run.
func TestCmdCampaignResumeRoundTrip(t *testing.T) {
	uninterrupted := runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "300")

	cp := filepath.Join(t.TempDir(), "cp.json")
	halted := runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "300",
		"-halt-after", "2", "-checkpoint", cp)
	if !strings.Contains(halted, "halted after 2 seeds") {
		t.Fatalf("halt not reported:\n%s", halted)
	}
	resumed := runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "300",
		"-resume", "-checkpoint", cp)
	if resumed != uninterrupted {
		t.Errorf("resumed output differs from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s",
			uninterrupted, resumed)
	}
}

// TestCmdCampaignEvents: -events writes a parseable JSONL stream whose
// sequence numbers are strictly monotonic from 1 and whose vocabulary
// brackets the campaign.
func TestCmdCampaignEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	runCmdStdout(t, "dce-campaign", "-n", "2", "-seed", "100", "-events", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 4 {
		t.Fatalf("event log suspiciously short (%d lines):\n%s", len(lines), data)
	}
	seen := map[string]bool{}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		seq, ok := obj["seq"].(float64)
		if !ok || int64(seq) != int64(i+1) {
			t.Fatalf("line %d seq = %v, want %d (strictly monotonic)", i+1, obj["seq"], i+1)
		}
		event, ok := obj["event"].(string)
		if !ok {
			t.Fatalf("line %d has no event field: %s", i+1, line)
		}
		seen[event] = true
	}
	for _, want := range []string{"campaign_begin", "seed_begin", "unit_begin", "unit_end", "seed_end", "campaign_end"} {
		if !seen[want] {
			t.Errorf("event log missing %q events", want)
		}
	}
	if lines[0] == "" || !strings.Contains(lines[0], "campaign_begin") {
		t.Errorf("first event is not campaign_begin: %s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], "campaign_end") {
		t.Errorf("last event is not campaign_end: %s", lines[len(lines)-1])
	}
}

// TestCmdCampaignQuietAndMetrics: -quiet runs cleanly, -metrics=wall
// appends the telemetry section, and -metrics=deterministic makes the whole
// stdout byte-identical across two identical runs.
func TestCmdCampaignQuietAndMetrics(t *testing.T) {
	out := runCmdStdout(t, "dce-campaign", "-n", "2", "-seed", "100", "-quiet", "-metrics", "wall")
	for _, want := range []string{"Phase breakdown", "Pass timing", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("wall metrics report missing %q:\n%s", want, out)
		}
	}

	det1 := runCmdStdout(t, "dce-campaign", "-n", "2", "-seed", "100", "-metrics", "deterministic")
	det2 := runCmdStdout(t, "dce-campaign", "-n", "2", "-seed", "100", "-metrics", "deterministic")
	if det1 != det2 {
		t.Errorf("deterministic metrics runs differ:\n--- run 1\n%s\n--- run 2\n%s", det1, det2)
	}
	if !strings.Contains(det1, "Pass timing") {
		t.Errorf("deterministic report missing the pass table:\n%s", det1)
	}
}

// TestCmdCampaignCPUProfile: the shared -cpuprofile flag produces a
// non-empty pprof file on a normal exit.
func TestCmdCampaignCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	runCmdStdout(t, "dce-campaign", "-n", "2", "-seed", "100", "-cpuprofile", path)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("cpu profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Error("cpu profile is empty")
	}
}

// TestCmdExitCodes: usage errors exit 2 across the CLIs (internal/cli
// convention), runtime failures exit 1.
func TestCmdExitCodes(t *testing.T) {
	if code := exitCode(t, "dce-campaign", "-resume"); code != 2 {
		t.Errorf("dce-campaign -resume without -checkpoint: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-campaign", "-metrics", "sometimes"); code != 2 {
		t.Errorf("dce-campaign bad -metrics mode: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-campaign", "-inject", "explode:gvn:1"); code != 2 {
		t.Errorf("dce-campaign bad -inject: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-reduce"); code != 2 {
		t.Errorf("dce-reduce without -marker: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-bisect", "-marker", "DCEMarker0", "-compiler", "frontier"); code != 2 {
		t.Errorf("dce-bisect unknown compiler: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-find", "-file", filepath.Join(t.TempDir(), "absent.c")); code != 1 {
		t.Errorf("dce-find missing file: exit %d, want 1", code)
	}
}

func TestCmdAttribSmoke(t *testing.T) {
	out := runCmd(t, "dce-attrib", "-n", "3", "-findings", "3")
	if !strings.Contains(out, "Eliminations per pass") {
		t.Errorf("attrib output missing eliminations-per-pass table:\n%s", out)
	}
	out = runCmd(t, "dce-attrib", "-seed", "7", "-compiler", "gcc", "-provenance")
	if !strings.Contains(out, "killed by") {
		t.Errorf("provenance output missing attribution lines:\n%s", out)
	}
}
