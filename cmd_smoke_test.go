// Smoke tests for the cmd/* binaries: build each one, run its main path on
// a tiny corpus, and require a clean exit with non-empty output. These keep
// the CLIs wired to the library as the facade evolves.
package dcelens

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	cmdBinOnce sync.Once
	cmdBinDir  string
	cmdBinErr  error
)

// buildCommands compiles every cmd/* binary once into a shared temp dir.
func buildCommands(t *testing.T) string {
	t.Helper()
	cmdBinOnce.Do(func() {
		cmdBinDir, cmdBinErr = os.MkdirTemp("", "dcelens-cmd")
		if cmdBinErr != nil {
			return
		}
		entries, err := os.ReadDir("cmd")
		if err != nil {
			cmdBinErr = err
			return
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			bin := filepath.Join(cmdBinDir, e.Name())
			if runtime.GOOS == "windows" {
				bin += ".exe"
			}
			out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+e.Name()).CombinedOutput()
			if err != nil {
				cmdBinErr = &buildError{cmd: e.Name(), out: string(out), err: err}
				return
			}
		}
	})
	if cmdBinErr != nil {
		t.Fatal(cmdBinErr)
	}
	return cmdBinDir
}

type buildError struct {
	cmd string
	out string
	err error
}

func (e *buildError) Error() string {
	return "go build ./cmd/" + e.cmd + ": " + e.err.Error() + "\n" + e.out
}

// runCmd executes a built binary and returns its combined output, failing
// the test on a non-zero exit.
func runCmd(t *testing.T, name string, args ...string) string {
	t.Helper()
	bin := filepath.Join(buildCommands(t), name)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", name, strings.Join(args, " "), err, out)
	}
	if len(strings.TrimSpace(string(out))) == 0 {
		t.Fatalf("%s %s: empty output", name, strings.Join(args, " "))
	}
	return string(out)
}

// runCmdStdout executes a built binary and returns stdout only (stderr
// carries progress chatter that is not part of the deterministic report).
func runCmdStdout(t *testing.T, name string, args ...string) string {
	t.Helper()
	bin := filepath.Join(buildCommands(t), name)
	var stdout, stderr strings.Builder
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %s: %v\nstderr: %s", name, strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String()
}

// exitCode runs a built binary expecting failure and returns its exit code.
func exitCode(t *testing.T, name string, args ...string) int {
	t.Helper()
	bin := filepath.Join(buildCommands(t), name)
	err := exec.Command(bin, args...).Run()
	if err == nil {
		t.Fatalf("%s %s: expected a non-zero exit", name, strings.Join(args, " "))
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %s: %v", name, strings.Join(args, " "), err)
	}
	return ee.ExitCode()
}

func TestCmdGenSmoke(t *testing.T) {
	dir := t.TempDir()
	out := runCmd(t, "dce-gen", "-n", "2", "-seed", "1", "-instrument", "-dir", dir)
	files, err := filepath.Glob(filepath.Join(dir, "*.c"))
	if err != nil || len(files) != 2 {
		t.Fatalf("want 2 generated files, got %v (%v)\noutput: %s", files, err, out)
	}
	src, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "DCEMarker") {
		t.Errorf("generated file has no markers:\n%s", src)
	}
}

func TestCmdFindSmoke(t *testing.T) {
	out := runCmd(t, "dce-find", "-seed", "3")
	if !strings.Contains(out, "marker") {
		t.Errorf("dce-find output mentions no markers:\n%s", out)
	}
}

func TestCmdReduceSmoke(t *testing.T) {
	// listing3.c: gcc-sim eliminates DCEMarker0, llvm-sim misses it.
	out := runCmd(t, "dce-reduce",
		"-file", filepath.Join("internal", "core", "testdata", "listing3.c"),
		"-marker", "DCEMarker0", "-target", "llvm", "-reference", "gcc",
		"-checks", "200")
	if !strings.Contains(out, "DCEMarker0") {
		t.Errorf("reduced program lost the marker:\n%s", out)
	}
}

func TestCmdBisectSmoke(t *testing.T) {
	out := runCmd(t, "dce-bisect", "-history", "llvm")
	if !strings.Contains(out, "Value Propagation") {
		t.Errorf("llvm-sim history missing expected component:\n%s", out)
	}
	// listing6a.c models the paper's Listing 6a regression.
	out = runCmd(t, "dce-bisect",
		"-file", filepath.Join("internal", "core", "testdata", "listing6a.c"),
		"-marker", "DCEMarker0", "-compiler", "llvm")
	if !strings.Contains(out, "commit") {
		t.Errorf("bisection reported no commit:\n%s", out)
	}
}

func TestCmdReportSmoke(t *testing.T) {
	out := runCmd(t, "dce-report", "-n", "3")
	if !strings.Contains(out, "markers") {
		t.Errorf("report missing marker statistics:\n%s", out)
	}
}

func TestCmdCampaignSmoke(t *testing.T) {
	out := runCmdStdout(t, "dce-campaign", "-n", "3", "-seed", "100")
	if !strings.Contains(out, "Failures: none") {
		t.Errorf("clean campaign does not state its failure verdict:\n%s", out)
	}
	if !strings.Contains(out, "markers") {
		t.Errorf("campaign report missing statistics:\n%s", out)
	}
}

func TestCmdCampaignInject(t *testing.T) {
	dir := t.TempDir()
	out := runCmdStdout(t, "dce-campaign", "-n", "3", "-seed", "100",
		"-inject", "panic:gvn:101:gcc-sim -O3", "-repro-dir", dir)
	if !strings.Contains(out, "1 crashes") {
		t.Errorf("injected crash not reported:\n%s", out)
	}
	repros, err := filepath.Glob(filepath.Join(dir, "crash_seed101_*.c"))
	if err != nil || len(repros) != 1 {
		t.Fatalf("want 1 reproducer, got %v (%v)", repros, err)
	}
	src, err := os.ReadFile(repros[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "// reproduce:") || !strings.Contains(string(src), "DCEMarker") {
		t.Errorf("reproducer missing its reproduce header or markers:\n%s", src)
	}
}

// TestCmdCampaignResumeRoundTrip: a campaign halted partway, then resumed
// from its checkpoint, prints byte-identical stdout to an uninterrupted run.
func TestCmdCampaignResumeRoundTrip(t *testing.T) {
	uninterrupted := runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "300")

	cp := filepath.Join(t.TempDir(), "cp.json")
	halted := runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "300",
		"-halt-after", "2", "-checkpoint", cp)
	if !strings.Contains(halted, "halted after 2 seeds") {
		t.Fatalf("halt not reported:\n%s", halted)
	}
	resumed := runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "300",
		"-resume", "-checkpoint", cp)
	if resumed != uninterrupted {
		t.Errorf("resumed output differs from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s",
			uninterrupted, resumed)
	}
}

// TestCmdCampaignEvents: -events writes a parseable JSONL stream whose
// sequence numbers are strictly monotonic from 1 and whose vocabulary
// brackets the campaign.
func TestCmdCampaignEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	runCmdStdout(t, "dce-campaign", "-n", "2", "-seed", "100", "-events", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 4 {
		t.Fatalf("event log suspiciously short (%d lines):\n%s", len(lines), data)
	}
	seen := map[string]bool{}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		seq, ok := obj["seq"].(float64)
		if !ok || int64(seq) != int64(i+1) {
			t.Fatalf("line %d seq = %v, want %d (strictly monotonic)", i+1, obj["seq"], i+1)
		}
		event, ok := obj["event"].(string)
		if !ok {
			t.Fatalf("line %d has no event field: %s", i+1, line)
		}
		seen[event] = true
	}
	for _, want := range []string{"campaign_begin", "seed_begin", "unit_begin", "unit_end", "seed_end", "campaign_end"} {
		if !seen[want] {
			t.Errorf("event log missing %q events", want)
		}
	}
	if lines[0] == "" || !strings.Contains(lines[0], "campaign_begin") {
		t.Errorf("first event is not campaign_begin: %s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], "campaign_end") {
		t.Errorf("last event is not campaign_end: %s", lines[len(lines)-1])
	}
}

// TestCmdCampaignEventsResumeSeq: resuming a halted campaign with the same
// -events file appends to it and continues the monotonic sequence, so the
// combined log reads as one totally-ordered stream (the resume-continuity
// regression test).
func TestCmdCampaignEventsResumeSeq(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.jsonl")
	cp := filepath.Join(dir, "cp.json")
	runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "300",
		"-halt-after", "2", "-checkpoint", cp, "-events", events)
	runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "300",
		"-resume", "-checkpoint", cp, "-events", events)

	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	begins := 0
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		seq, ok := obj["seq"].(float64)
		if !ok || int64(seq) != int64(i+1) {
			t.Fatalf("line %d seq = %v, want %d (monotonic across -resume, no restart)",
				i+1, obj["seq"], i+1)
		}
		if obj["event"] == "campaign_begin" {
			begins++
		}
	}
	if begins != 2 {
		t.Errorf("combined log has %d campaign_begin events, want 2 (one per process)", begins)
	}
	if !strings.Contains(lines[len(lines)-1], "campaign_end") {
		t.Errorf("last event is not campaign_end: %s", lines[len(lines)-1])
	}
}

// TestCmdCampaignServe: a campaign started with -serve answers every
// monitoring endpoint over real TCP while seeds are still executing.
func TestCmdCampaignServe(t *testing.T) {
	bin := filepath.Join(buildCommands(t), "dce-campaign")
	// A long single-worker campaign so the endpoints are queried mid-run.
	cmd := exec.Command(bin, "-n", "500", "-seed", "100", "-j", "1",
		"-quiet", "-serve", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// The server announces its resolved ephemeral address on stderr.
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "monitoring on http://"); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		t.Fatalf("no monitoring address announced (scan err %v)", sc.Err())
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	// Wait for the first seed to land (registry names appear on first use),
	// then require the campaign to still be mid-run.
	var prog struct {
		SeedsTotal int `json:"seeds_total"`
		SeedsDone  int `json:"seeds_done"`
		Workers    int `json:"workers"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := get("/progress")
		if code != 200 {
			t.Fatalf("/progress = %d %q", code, body)
		}
		if err := json.Unmarshal([]byte(body), &prog); err != nil {
			t.Fatalf("/progress body %q: %v", body, err)
		}
		if prog.SeedsDone >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no seed completed within 30s (%d/%d)", prog.SeedsDone, prog.SeedsTotal)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if prog.SeedsTotal != 500 {
		t.Errorf("/progress seeds_total = %d, want 500", prog.SeedsTotal)
	}
	if prog.Workers != 1 {
		t.Errorf("/progress workers = %d, want the campaign's -j 1", prog.Workers)
	}
	if prog.SeedsDone >= prog.SeedsTotal {
		t.Errorf("/progress queried after completion (%d/%d); campaign too short for a live check",
			prog.SeedsDone, prog.SeedsTotal)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "dcelens_campaign_seeds_analyzed") {
		t.Errorf("/metrics = %d, missing seed counter:\n%s", code, body)
	}
	if code, body := get("/findings"); code != 200 || !strings.Contains(body, `"count"`) {
		t.Errorf("/findings = %d %q", code, body)
	}

	// /events?since=N resumes the tail without duplicates.
	code, body := get("/events?since=0")
	if code != 200 || len(strings.TrimSpace(body)) == 0 {
		t.Fatalf("/events = %d, empty tail (campaign is mid-run)", code)
	}
	first := strings.Split(strings.TrimSpace(body), "\n")
	var last struct {
		Seq int64 `json:"seq"`
	}
	if err := json.Unmarshal([]byte(first[len(first)-1]), &last); err != nil {
		t.Fatalf("last event line %q: %v", first[len(first)-1], err)
	}
	if code, body := get(fmt.Sprintf("/events?since=%d", last.Seq)); code != 200 {
		t.Errorf("/events resume = %d %q", code, body)
	} else {
		for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
			if line == "" {
				continue
			}
			var e struct {
				Seq int64 `json:"seq"`
			}
			if err := json.Unmarshal([]byte(line), &e); err != nil || e.Seq <= last.Seq {
				t.Fatalf("resumed event %q (err %v): seq not beyond %d", line, err, last.Seq)
			}
		}
	}
	if code, _ := get("/events?since=bogus"); code != 400 {
		t.Errorf("/events?since=bogus = %d, want 400", code)
	}
}

// TestCmdCampaignHistoryDeterminism: -metrics=deterministic -history
// snapshots are byte-identical across identical runs, landing under the
// same content-addressed name.
func TestCmdCampaignHistoryDeterminism(t *testing.T) {
	dirs := [2]string{t.TempDir(), t.TempDir()}
	var paths [2]string
	var bodies [2][]byte
	for i, dir := range dirs {
		runCmdStdout(t, "dce-campaign", "-n", "2", "-seed", "300",
			"-quiet", "-metrics", "deterministic", "-history", dir)
		files, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
		if err != nil || len(files) != 1 {
			t.Fatalf("run %d wrote %v (%v), want one snapshot", i+1, files, err)
		}
		paths[i] = filepath.Base(files[0])
		if bodies[i], err = os.ReadFile(files[0]); err != nil {
			t.Fatal(err)
		}
	}
	if paths[0] != paths[1] {
		t.Errorf("content-addressed names differ: %s vs %s", paths[0], paths[1])
	}
	if string(bodies[0]) != string(bodies[1]) {
		t.Errorf("deterministic snapshots differ:\n--- run 1\n%s\n--- run 2\n%s", bodies[0], bodies[1])
	}
}

// TestCmdTrendNewAndFixed is the longitudinal acceptance path: a finding
// present only in the middle run of three must classify as new in the
// second snapshot and fixed in the third.
func TestCmdTrendNewAndFixed(t *testing.T) {
	// Seeds 300-301 yield two findings; adding seed 302 (-n 3) contributes
	// two more, which disappear again when the third run drops back to -n 2.
	snapshot := func(n string) string {
		t.Helper()
		dir := t.TempDir()
		runCmdStdout(t, "dce-campaign", "-n", n, "-seed", "300",
			"-quiet", "-metrics", "deterministic", "-history", dir)
		files, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
		if err != nil || len(files) != 1 {
			t.Fatalf("campaign -n %s wrote %v (%v)", n, files, err)
		}
		return files[0]
	}
	run1, run2, run3 := snapshot("2"), snapshot("3"), snapshot("2")

	out := runCmdStdout(t, "dce-trend", run1, run2, run3)
	sections := strings.Split(out, "\n\n")
	if len(sections) != 2 {
		t.Fatalf("trend over 3 snapshots rendered %d sections, want 2:\n%s", len(sections), out)
	}
	if !strings.Contains(sections[0], "2 new, 0 fixed, 2 persistent") {
		t.Errorf("run1->run2 classification wrong:\n%s", sections[0])
	}
	if !strings.Contains(sections[0], "New findings") {
		t.Errorf("run1->run2 missing the new-findings table:\n%s", sections[0])
	}
	if !strings.Contains(sections[1], "0 new, 2 fixed, 2 persistent") {
		t.Errorf("run2->run3 classification wrong:\n%s", sections[1])
	}
	if !strings.Contains(sections[1], "Fixed findings") {
		t.Errorf("run2->run3 missing the fixed-findings table:\n%s", sections[1])
	}
	// The corpora differ in size, so the differ must flag comparability.
	if !strings.Contains(out, "corpus size differs") {
		t.Errorf("trend output missing the config-mismatch note:\n%s", out)
	}
	// The same fingerprints must appear in both classifications: what was
	// new in run 2 is exactly what is fixed in run 3.
	var newFP, fixedFP []string
	for _, sec := range []struct {
		text  string
		title string
		out   *[]string
	}{{sections[0], "New findings", &newFP}, {sections[1], "Fixed findings", &fixedFP}} {
		in := false
		for _, line := range strings.Split(sec.text, "\n") {
			switch {
			case strings.HasPrefix(line, sec.title):
				in = true
			case in && strings.HasPrefix(line, "  ") && !strings.Contains(line, "Fingerprint"):
				*sec.out = append(*sec.out, strings.Fields(line)[0])
			case in && !strings.HasPrefix(line, "  "):
				in = false
			}
		}
	}
	if len(newFP) != 2 || len(fixedFP) != 2 || newFP[0] != fixedFP[0] || newFP[1] != fixedFP[1] {
		t.Errorf("new fingerprints %v != fixed fingerprints %v", newFP, fixedFP)
	}

	// Identical snapshots: everything persistent, nothing flagged.
	same := runCmdStdout(t, "dce-trend", run1, run3)
	if !strings.Contains(same, "0 new, 0 fixed, 2 persistent") ||
		!strings.Contains(same, "Metric regressions: none") {
		t.Errorf("identical-run trend:\n%s", same)
	}
}

// TestCmdCampaignQuietAndMetrics: -quiet runs cleanly, -metrics=wall
// appends the telemetry section, and -metrics=deterministic makes the whole
// stdout byte-identical across two identical runs.
func TestCmdCampaignQuietAndMetrics(t *testing.T) {
	out := runCmdStdout(t, "dce-campaign", "-n", "2", "-seed", "100", "-quiet", "-metrics", "wall")
	for _, want := range []string{"Phase breakdown", "Pass timing", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("wall metrics report missing %q:\n%s", want, out)
		}
	}

	det1 := runCmdStdout(t, "dce-campaign", "-n", "2", "-seed", "100", "-metrics", "deterministic")
	det2 := runCmdStdout(t, "dce-campaign", "-n", "2", "-seed", "100", "-metrics", "deterministic")
	if det1 != det2 {
		t.Errorf("deterministic metrics runs differ:\n--- run 1\n%s\n--- run 2\n%s", det1, det2)
	}
	if !strings.Contains(det1, "Pass timing") {
		t.Errorf("deterministic report missing the pass table:\n%s", det1)
	}
}

// TestCmdCampaignCPUProfile: the shared -cpuprofile flag produces a
// non-empty pprof file on a normal exit.
func TestCmdCampaignCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	runCmdStdout(t, "dce-campaign", "-n", "2", "-seed", "100", "-cpuprofile", path)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("cpu profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Error("cpu profile is empty")
	}
}

// TestCmdExitCodes: usage errors exit 2 across the CLIs (internal/cli
// convention), runtime failures exit 1.
func TestCmdExitCodes(t *testing.T) {
	if code := exitCode(t, "dce-campaign", "-resume"); code != 2 {
		t.Errorf("dce-campaign -resume without -checkpoint: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-campaign", "-metrics", "sometimes"); code != 2 {
		t.Errorf("dce-campaign bad -metrics mode: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-campaign", "-inject", "explode:gvn:1"); code != 2 {
		t.Errorf("dce-campaign bad -inject: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-reduce"); code != 2 {
		t.Errorf("dce-reduce without -marker: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-bisect", "-marker", "DCEMarker0", "-compiler", "frontier"); code != 2 {
		t.Errorf("dce-bisect unknown compiler: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-find", "-file", filepath.Join(t.TempDir(), "absent.c")); code != 1 {
		t.Errorf("dce-find missing file: exit %d, want 1", code)
	}
	if code := exitCode(t, "dce-trend"); code != 2 {
		t.Errorf("dce-trend without snapshots: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-trend", filepath.Join(t.TempDir(), "a.json"), filepath.Join(t.TempDir(), "b.json")); code != 1 {
		t.Errorf("dce-trend missing snapshot files: exit %d, want 1", code)
	}
}

func TestCmdAttribSmoke(t *testing.T) {
	out := runCmd(t, "dce-attrib", "-n", "3", "-findings", "3")
	if !strings.Contains(out, "Eliminations per pass") {
		t.Errorf("attrib output missing eliminations-per-pass table:\n%s", out)
	}
	out = runCmd(t, "dce-attrib", "-seed", "7", "-compiler", "gcc", "-provenance")
	if !strings.Contains(out, "killed by") {
		t.Errorf("provenance output missing attribution lines:\n%s", out)
	}
}

// TestCmdCampaignTraceAndProf: -trace writes a loadable trace_event
// timeline and dce-prof renders its profile tables; a usage error in
// dce-prof exits 2, a missing trace exits 1.
func TestCmdCampaignTraceAndProf(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	runCmdStdout(t, "dce-campaign", "-n", "3", "-seed", "100", "-j", "2",
		"-quiet", "-trace", trace)
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "[\n") || !strings.Contains(string(data), `"ph":"M"`) {
		t.Fatalf("trace missing array header or metadata record:\n%.200s", data)
	}

	out := runCmdStdout(t, "dce-prof", trace)
	for _, want := range []string{"Timeline profile", "Critical path", "Worker occupancy", "Slowest units"} {
		if !strings.Contains(out, want) {
			t.Errorf("dce-prof output missing %q:\n%s", want, out)
		}
	}

	// Deterministic traces profile without wall tables but keep the units.
	det := filepath.Join(t.TempDir(), "det.json")
	runCmdStdout(t, "dce-campaign", "-n", "3", "-seed", "100",
		"-quiet", "-metrics", "deterministic", "-trace", det)
	out = runCmdStdout(t, "dce-prof", det)
	if !strings.Contains(out, "deterministic") || !strings.Contains(out, "Units (trace order)") {
		t.Errorf("dce-prof deterministic output:\n%s", out)
	}

	// -top bounds the slowest-units table without touching the other
	// sections; <= 0 keeps every unit.
	out = runCmdStdout(t, "dce-prof", "-top", "2", trace)
	if !strings.Contains(out, "Slowest units (2)") {
		t.Errorf("dce-prof -top 2 did not bound the units table:\n%s", out)
	}
	out = runCmdStdout(t, "dce-prof", "-top", "0", trace)
	if !strings.Contains(out, "Slowest units (30)") {
		t.Errorf("dce-prof -top 0 should keep all 30 units (3 seeds x 10 configs):\n%s", out)
	}

	if code := exitCode(t, "dce-prof"); code != 2 {
		t.Errorf("dce-prof without a trace argument: exit %d, want 2", code)
	}
	if code := exitCode(t, "dce-prof", filepath.Join(t.TempDir(), "absent.json")); code != 1 {
		t.Errorf("dce-prof missing trace file: exit %d, want 1", code)
	}
}

// TestCmdCampaignRemarks: -remarks adds the aggregate remark tables to the
// campaign report.
func TestCmdCampaignRemarks(t *testing.T) {
	out := runCmdStdout(t, "dce-campaign", "-n", "3", "-seed", "100", "-quiet", "-remarks")
	for _, want := range []string{"Optimization remarks", "Top miss reasons", "side-effects"} {
		if !strings.Contains(out, want) {
			t.Errorf("-remarks report missing %q:\n%s", want, out)
		}
	}
	// Without the flag the section stays out (remarks are strictly opt-in).
	out = runCmdStdout(t, "dce-campaign", "-n", "3", "-seed", "100", "-quiet")
	if strings.Contains(out, "Optimization remarks") {
		t.Errorf("remark tables leaked into a remarks-off campaign:\n%s", out)
	}
}

// TestCmdExplainSmoke: campaign mode renders the remark tables plus
// per-finding nearest-miss narratives; single-program mode renders one
// compilation's pass counts, miss reasons, and chains.
func TestCmdExplainSmoke(t *testing.T) {
	out := runCmdStdout(t, "dce-explain", "-n", "6", "-seed", "1", "-findings", "2")
	for _, want := range []string{"Optimization remarks", "Finding narratives", "why the code stayed alive:"} {
		if !strings.Contains(out, want) {
			t.Errorf("dce-explain campaign output missing %q:\n%s", want, out)
		}
	}

	out = runCmd(t, "dce-explain", "-single", "-seed", "42", "-compiler", "gcc")
	for _, want := range []string{"miss reasons:", "stayed alive because:", "side-effects"} {
		if !strings.Contains(out, want) {
			t.Errorf("dce-explain single-program output missing %q:\n%s", want, out)
		}
	}

	if code := exitCode(t, "dce-explain", "-single", "-compiler", "frontier"); code != 2 {
		t.Errorf("dce-explain unknown compiler: exit %d, want 2", code)
	}
}
