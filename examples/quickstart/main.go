// Quickstart: the paper's pipeline end to end on one random program.
//
//	go run ./examples/quickstart [seed]
//
// Generates a random MiniC program, instruments every basic block with a
// DCE marker, executes it to learn which markers are actually dead, then
// compiles it with both simulated compilers at -O3 and reports which dead
// markers each failed to eliminate — and which of those are *feasible*
// missed optimizations because the other compiler managed.
package main

import (
	"fmt"
	"os"
	"strconv"

	"dcelens"
)

func main() {
	seed := int64(2022)
	if len(os.Args) > 1 {
		if v, err := strconv.ParseInt(os.Args[1], 10, 64); err == nil {
			seed = v
		}
	}

	// ① Generate and instrument.
	prog := dcelens.Generate(seed)
	ins, err := dcelens.Instrument(prog)
	check(err)
	fmt.Printf("seed %d: %d markers inserted\n", seed, len(ins.Markers))

	// ② Ground truth by execution: the program is deterministic and
	// closed, so one run decides every marker.
	truth, err := dcelens.GroundTruth(ins)
	check(err)
	fmt.Printf("ground truth: %d dead, %d alive (%.1f%% dead)\n",
		len(truth.Dead), len(truth.Alive),
		100*float64(len(truth.Dead))/float64(len(ins.Markers)))

	// ③ Compile with both personalities at -O3.
	gcc, err := dcelens.Compile(ins, dcelens.GCC(dcelens.O3))
	check(err)
	llvm, err := dcelens.Compile(ins, dcelens.LLVM(dcelens.O3))
	check(err)

	gccMissed := gcc.Missed(truth)
	llvmMissed := llvm.Missed(truth)
	fmt.Printf("gcc-sim  -O3: %d dead markers missed\n", len(gccMissed))
	fmt.Printf("llvm-sim -O3: %d dead markers missed\n", len(llvmMissed))

	// ④ Differential testing: a miss is *feasible* when the other
	// compiler eliminates the same marker.
	graph, err := dcelens.BuildMarkerCFG(ins)
	check(err)
	for _, d := range []struct {
		name   string
		missed []string
	}{
		{"gcc-sim (llvm-sim succeeds)", dcelens.DiffMissed(gcc, llvm, truth)},
		{"llvm-sim (gcc-sim succeeds)", dcelens.DiffMissed(llvm, gcc, truth)},
	} {
		primary := graph.Primary(truth, d.missed)
		fmt.Printf("feasible missed optimizations in %s: %d (%d primary)\n",
			d.name, len(d.missed), len(primary))
		for _, m := range primary {
			fmt.Printf("  primary: %s\n", m)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
