// Regression hunt: the §4.2 "Between optimization levels" experiment —
// find markers eliminated at -O1/-O2 but missed at -O3, bisect each
// regression to the offending commit, and print the Table 3/4 style
// component categorization.
//
//	go run ./examples/regressionhunt [programs]
package main

import (
	"fmt"
	"os"
	"strconv"

	"dcelens"
	"dcelens/internal/bisect"
	"dcelens/internal/pipeline"
	"dcelens/internal/report"
)

func main() {
	n := 20
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil {
			n = v
		}
	}
	fmt.Printf("hunting level regressions over %d programs...\n\n", n)
	c, err := dcelens.RunCampaign(dcelens.CampaignOptions{Programs: n, BaseSeed: 5000})
	check(err)

	for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
		missed := c.Stats.LevelMissed[p]
		primary := c.Stats.LevelPrimary[p]
		fmt.Printf("%s: %d markers eliminated at -O1/-O2 but missed at -O3 (%d primary)\n",
			p, missed, primary)
		if missed == 0 {
			continue
		}
		outcomes, attempted, err := c.BisectRegressions(p, false /* all, not just primary */, 40)
		check(err)
		fmt.Printf("  bisected %d candidates: %d are regressions, %d unique offending commits\n",
			attempted, len(outcomes), bisect.UniqueCommits(outcomes))
		for _, o := range dedupeByCommit(outcomes) {
			fmt.Printf("    %s %-28s %s\n", o.Commit.ID, o.Commit.Component, o.Commit.Desc)
		}
		title := "Table 4 analogue: offending GCC components"
		if p == pipeline.LLVM {
			title = "Table 3 analogue: offending LLVM components"
		}
		fmt.Println()
		fmt.Print(report.ComponentTable(title, bisect.Categorize(outcomes)))
		fmt.Println()
	}
}

func dedupeByCommit(outs []*bisect.Outcome) []*bisect.Outcome {
	seen := map[string]bool{}
	var uniq []*bisect.Outcome
	for _, o := range outs {
		if !seen[o.Commit.ID] {
			seen[o.Commit.ID] = true
			uniq = append(uniq, o)
		}
	}
	return uniq
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
