// Compare compilers: the §4.2 "Between GCC and LLVM" experiment on a small
// corpus, with primary-marker filtering and automatic reduction of one
// finding per direction.
//
//	go run ./examples/comparecompilers [programs]
package main

import (
	"fmt"
	"os"
	"strconv"

	"dcelens"
	"dcelens/internal/corpus"
	"dcelens/internal/pipeline"
)

func main() {
	n := 15
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil {
			n = v
		}
	}
	fmt.Printf("running a %d-program campaign (both compilers, all levels)...\n", n)
	c, err := dcelens.RunCampaign(dcelens.CampaignOptions{Programs: n, BaseSeed: 1000})
	check(err)
	fmt.Println()
	fmt.Print(dcelens.Report(c))

	// Reduce one primary compiler-diff finding per personality, like the
	// paper reduces before reporting.
	fmt.Println("\nreducing one primary finding per compiler:")
	for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
		findings := c.FindingsOf(corpus.KindCompilerDiff, p, true /* primary only */)
		if len(findings) == 0 {
			fmt.Printf("  %s: no primary compiler-diff findings in this corpus\n", p)
			continue
		}
		f := findings[0]
		rc, err := c.ReduceFinding(f, dcelens.ReduceOptions{MaxChecks: 1500, MaxRounds: 6})
		check(err)
		fmt.Printf("\n--- reduced case for %s (marker %s, seed %d), %d AST nodes ---\n%s\n",
			f.Personality, f.Marker, f.Seed, rc.Nodes, rc.Source)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
