// Paper listings: the reduced test cases from the paper's §2 and §4.3,
// ported to MiniC and run through both compiler personalities, reproducing
// each root cause qualitatively.
//
//	go run ./examples/paperlistings
//
// For every listing the program prints which personality eliminates the
// dead marker and which misses it, alongside the paper's finding.
package main

import (
	"fmt"
	"os"

	"dcelens"
)

// A listing is a MiniC program containing explicit DCEMarker calls in its
// dead regions, plus the expectation derived from the paper.
type listing struct {
	name    string
	paper   string // the paper's observation
	source  string
	markers []string // markers of interest (all should be dead)
	// Expected elimination per personality at -O3: true = eliminated.
	gccEliminates  bool
	llvmEliminates bool
	// Optional: compare levels within one personality instead.
	levelRegression *levelCheck
}

type levelCheck struct {
	personality string // "gcc" or "llvm"
	// eliminated at lower level, missed at O3
	lower dcelens.Level
}

var listings = []listing{
	{
		name:  "Listing 3 (LLVM PR49434): &a == &b[1] with nonzero offset",
		paper: "LLVM's EarlyCSE cannot simplify &a == &b[1] to false; GCC can",
		source: `
void DCEMarker0(void);
char a;
char b[2];
int main(void) {
  char *c = &a;
  char *d = &b[1];
  if (c == d) {
    DCEMarker0();
  }
  return 0;
}`,
		markers:        []string{"DCEMarker0"},
		gccEliminates:  true,
		llvmEliminates: false,
	},
	{
		name:  "Listing 3 variant: zero offset folds everywhere",
		paper: "changing b[1] to b[0] lets EarlyCSE simplify and the block dies",
		source: `
void DCEMarker0(void);
char a;
char b[2];
int main(void) {
  char *c = &a;
  char *d = &b[0];
  if (c == d) {
    DCEMarker0();
  }
  return 0;
}`,
		markers:        []string{"DCEMarker0"},
		gccEliminates:  true,
		llvmEliminates: true,
	},
	{
		name:  "Listing 4a (GCC PR99357): flow-insensitive global analysis",
		paper: "GCC cannot deduce a == 0 at the check because a store exists; LLVM can (store writes the initial value)",
		source: `
void DCEMarker0(void);
static int a = 0;
int main(void) {
  if (a) {
    DCEMarker0();
  }
  a = 0;
  return 0;
}`,
		markers:        []string{"DCEMarker0"},
		gccEliminates:  false,
		llvmEliminates: true,
	},
	{
		name:  "Listing 6a (LLVM regression since 3.8): store of a different constant",
		paper: "with a = 1 after the check, LLVM >= 3.8 also misses (3.7 eliminated); GCC misses as before",
		source: `
void DCEMarker0(void);
static int a = 0;
int main(void) {
  if (a) {
    DCEMarker0();
  }
  a = 1;
  return 0;
}`,
		markers:        []string{"DCEMarker0"},
		gccEliminates:  false,
		llvmEliminates: false,
	},
	{
		name:  "Listing 9f (GCC PR99419, rediscovered bug): constant array load",
		paper: "GCC cannot see that b[a] loads 0 for every index; LLVM folds it",
		source: `
void DCEMarker0(void);
int a;
static int b[2] = {0, 0};
int main(void) {
  if (b[a]) {
    DCEMarker0();
  }
  return 0;
}`,
		markers:        []string{"DCEMarker0"},
		gccEliminates:  false,
		llvmEliminates: true,
	},
	{
		name:  "Listing 9e (GCC PR99776): vectorized pointer stores lose their type",
		paper: "GCC -O3 vectorizes the loop with unsigned long as the pointer data type, blocking constant folding; -O1 eliminated the call",
		source: `
void DCEMarker0(void);
static int a[2];
static int *c[2];
int main(void) {
  for (int i = 0; i < 2; i++) {
    c[i] = &a[1];
  }
  if (!c[0]) {
    DCEMarker0();
  }
  return 0;
}`,
		markers:        []string{"DCEMarker0"},
		gccEliminates:  false,
		llvmEliminates: true,
	},
	{
		name:  "Listing 7 / 8a (LLVM PR49773): unswitching blocks propagation at -O3",
		paper: "LLVM eliminated the dead call at -O2 but the new loop unswitching (freeze) blocks it at -O3",
		source: `
void DCEMarker0(void);
static int b = 0;
static int g;
int main(void) {
  int bb = b;
  for (int i = 0; i < 4; i++) {
    if (bb) {
      DCEMarker0();
    }
    g += i;
  }
  b = 0;
  return 0;
}`,
		markers: []string{"DCEMarker0"},
		// The paper reports only LLVM's behaviour for this listing; in this
		// reproduction gcc-sim also misses it (its flow-insensitive global
		// analysis is defeated by the b = 0 store, as in Listing 4a).
		gccEliminates:   false,
		llvmEliminates:  false,
		levelRegression: &levelCheck{personality: "llvm", lower: dcelens.O2},
	},
	{
		name:  "Listing 9b shape (GCC PR100034): leftover interprocedural SRA copy",
		paper: "GCC -O3 optimizes main but fails to eliminate an unused interprocedural SRA copy of the callee; its dead call stays in the binary (-O1 does not have this issue)",
		source: `
void DCEMarker0(void);
static int g;
static int h;
static void touch(int *p) {
  DCEMarker0();
  *p = 1;
}
int main(void) {
  h = 5;
  if (h != 5) {
    touch(&g);
  }
  return 0;
}`,
		markers:         []string{"DCEMarker0"},
		gccEliminates:   false,
		llvmEliminates:  true,
		levelRegression: &levelCheck{personality: "gcc", lower: dcelens.O1},
	},
}

func main() {
	failures := 0
	for _, l := range listings {
		fmt.Printf("== %s\n   paper: %s\n", l.name, l.paper)
		prog, err := dcelens.Parse(l.source)
		check(err)
		ins := wrap(prog)
		truth, err := dcelens.GroundTruth(ins)
		check(err)

		gcc, err := dcelens.Compile(ins, dcelens.GCC(dcelens.O3))
		check(err)
		llvm, err := dcelens.Compile(ins, dcelens.LLVM(dcelens.O3))
		check(err)

		for _, m := range l.markers {
			if truth.Alive[m] {
				fmt.Printf("   UNEXPECTED: %s is alive in ground truth\n", m)
				failures++
				continue
			}
			ok1 := report("gcc-sim ", !gcc.Alive[m], l.gccEliminates)
			ok2 := report("llvm-sim", !llvm.Alive[m], l.llvmEliminates)
			if !ok1 || !ok2 {
				failures++
			}
			if lr := l.levelRegression; lr != nil {
				cfg := dcelens.GCC(lr.lower)
				name := "gcc-sim"
				if lr.personality == "llvm" {
					cfg = dcelens.LLVM(lr.lower)
					name = "llvm-sim"
				}
				low, err := dcelens.Compile(ins, cfg)
				check(err)
				if low.Alive[m] {
					fmt.Printf("   UNEXPECTED: %s misses the marker at %v too (no level regression)\n", name, lr.lower)
					failures++
				} else {
					fmt.Printf("   %s %v eliminates it: the -O3 miss is a level regression, as in the paper\n", name, lr.lower)
				}
			}
		}
		fmt.Println()
	}
	if failures > 0 {
		fmt.Printf("%d listings diverged from the paper's observations\n", failures)
		os.Exit(1)
	}
	fmt.Println("all listings reproduce the paper's qualitative findings")
}

// report prints one personality's behaviour and whether it matches.
func report(name string, eliminated, want bool) bool {
	verdict := "MISSES the dead marker"
	if eliminated {
		verdict = "eliminates the dead marker"
	}
	match := "as in the paper"
	if eliminated != want {
		match = "UNEXPECTED (paper observed the opposite)"
	}
	fmt.Printf("   %s %s — %s\n", name, verdict, match)
	return eliminated == want
}

// wrap adopts the explicit DCEMarker declarations of a hand-written
// listing as its marker table.
func wrap(p *dcelens.Program) *dcelens.Instrumented {
	ins := &dcelens.Instrumented{Prog: p}
	for _, f := range p.Funcs() {
		if f.Body == nil && dcelens.IsMarker(f.Name) {
			ins.Markers = append(ins.Markers, dcelens.Marker{ID: len(ins.Markers), Name: f.Name})
		}
	}
	return ins
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
