// Integration tests for the internal/trace subsystem: provenance coverage
// on a campaign (the paper-scale acceptance bar), byte-level determinism of
// every trace rendering, and the cross-validation of trace attribution
// against history bisection (the Tables 3/4 ground truth).
package dcelens

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"dcelens/internal/bisect"
	"dcelens/internal/corpus"
	"dcelens/internal/pipeline"
	"dcelens/internal/report"
	"dcelens/internal/trace"
)

var (
	traceCampOnce sync.Once
	traceCamp     *corpus.Campaign
	traceCampErr  error
)

// tracedCampaign lazily runs the shared 20-program traced campaign.
func tracedCampaign(t *testing.T) *corpus.Campaign {
	t.Helper()
	traceCampOnce.Do(func() {
		traceCamp, traceCampErr = corpus.Run(corpus.Options{
			Programs: 20,
			BaseSeed: 1,
			Trace:    true,
		})
	})
	if traceCampErr != nil {
		t.Fatal(traceCampErr)
	}
	if len(traceCamp.Stats.Errors) > 0 {
		t.Fatalf("campaign errors: %v", traceCamp.Stats.Errors)
	}
	return traceCamp
}

// TestTraceAttributionRate pins the subsystem's acceptance bar: on a
// 20-program campaign, every eliminated dead marker is attributed, and at
// least 95% are attributed to a concrete pipeline pass instance (the rest
// belong to the frontend pseudo pass).
func TestTraceAttributionRate(t *testing.T) {
	c := tracedCampaign(t)
	for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
		eliminated, attributed, pipelineAttributed := 0, 0, 0
		for _, r := range c.Programs {
			an := r.PerCfg[corpus.ConfigKey{Personality: p, Level: pipeline.O3}]
			if an.Trace == nil {
				t.Fatalf("%s seed %d: campaign ran with Trace but Analysis.Trace is nil", p, r.Seed)
			}
			prov := an.Trace.Provenance()
			for _, m := range an.Compilation.Eliminated(r.Truth) {
				eliminated++
				ref, ok := prov.KillerOf(m)
				if !ok {
					t.Errorf("%s seed %d: eliminated dead marker %s has no provenance", p, r.Seed, m)
					continue
				}
				attributed++
				if !ref.IsFrontend() {
					pipelineAttributed++
				}
			}
		}
		if eliminated == 0 {
			t.Fatalf("%s: campaign eliminated no dead markers", p)
		}
		if attributed != eliminated {
			t.Errorf("%s: %d of %d eliminated dead markers attributed, want all", p, attributed, eliminated)
		}
		rate := float64(pipelineAttributed) / float64(eliminated)
		if rate < 0.95 {
			t.Errorf("%s: %.1f%% of eliminations attributed to a concrete pass instance, want >= 95%%",
				p, 100*rate)
		}
		t.Logf("%s -O3: %d eliminated, %d attributed (%.1f%% to pipeline passes)",
			p, eliminated, attributed, 100*float64(pipelineAttributed)/float64(eliminated))
	}
}

// TestTraceDeterminism: two runs of the same seed produce byte-identical
// provenance tables, structural pass profiles, and campaign-wide
// attribution tables (all iteration is slice-ordered, never over maps).
func TestTraceDeterminism(t *testing.T) {
	run := func() (*corpus.Campaign, string) {
		c, err := corpus.Run(corpus.Options{Programs: 6, BaseSeed: 101, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Stats.Errors) > 0 {
			t.Fatalf("campaign errors: %v", c.Stats.Errors)
		}
		var sb strings.Builder
		for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
			rows := c.EliminationsPerPass(corpus.ConfigKey{Personality: p, Level: pipeline.O3})
			sb.WriteString(report.AttributionTable(string(p), rows))
			for _, r := range c.Programs {
				an := r.PerCfg[corpus.ConfigKey{Personality: p, Level: pipeline.O3}]
				sb.WriteString(report.ProvenanceTable(an.Trace.Provenance()))
				sb.WriteString(report.PassProfileTable(an.Trace, false))
			}
		}
		return c, sb.String()
	}
	c1, out1 := run()
	c2, out2 := run()
	if out1 != out2 {
		t.Fatalf("trace output differs between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out1, out2)
	}
	// Finding attribution is deterministic too.
	for i, f := range c1.Findings {
		a1, err1 := c1.AttributeFinding(f)
		a2, err2 := c2.AttributeFinding(c2.Findings[i])
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("finding %d: attribution errors differ: %v vs %v", i, err1, err2)
		}
		if err1 == nil && *a1 != *a2 {
			t.Fatalf("finding %d: attribution differs: %+v vs %+v", i, a1, a2)
		}
	}
}

// TestTraceCrossValidatesBisection ties the new subsystem to the paper's
// Tables 3/4 ground truth: for level-diff regressions that bisection
// resolves to an offending commit, the trace attribution of the same
// finding must name a pass whose component is compatible with the commit's
// component category.
func TestTraceCrossValidatesBisection(t *testing.T) {
	c := tracedCampaign(t)
	validated := 0
	for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
		budget := 6
		seen := map[string]bool{}
		for _, f := range c.FindingsOf(corpus.KindLevelDiff, p, false) {
			key := fmt.Sprintf("%s@%d", f.Marker, f.Seed)
			if seen[key] || budget == 0 {
				continue
			}
			seen[key] = true
			r := c.Result(f.Seed)
			out, err := bisect.Regression(r.Ins, p, pipeline.O3, f.Marker)
			if err != nil {
				continue // long-standing miss, not a regression
			}
			budget--
			a, err := c.AttributeFinding(f)
			if err != nil {
				t.Errorf("%s seed %d %s: bisected to %s but attribution failed: %v",
					p, f.Seed, f.Marker, out.Commit.ID, err)
				continue
			}
			if !trace.Compatible(out.Commit.Component, a.Component) {
				t.Errorf("%s seed %d %s: bisected to component %q but trace names %s (component %q) — incompatible",
					p, f.Seed, f.Marker, out.Commit.Component, a.Killer, a.Component)
				continue
			}
			validated++
			t.Logf("%s seed %d %s: commit %s (%s) ~ killer %s (%s)",
				p, f.Seed, f.Marker, out.Commit.ID, out.Commit.Component, a.Killer, a.Component)
		}
	}
	if validated == 0 {
		t.Fatal("no level-diff regression could be cross-validated on this corpus slice")
	}
}

// TestTraceCompilationConsistency: the traced compilation must produce the
// same surviving-marker verdicts as the untraced one (tracing observes,
// never perturbs).
func TestTraceCompilationConsistency(t *testing.T) {
	ins, err := Instrument(Generate(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []*Compiler{GCC(O3), LLVM(O3), GCC(O1), LLVM(O1)} {
		plain, err := Compile(ins, cfg)
		if err != nil {
			t.Fatal(err)
		}
		traced, prof, err := CompileTraced(ins, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.Alive) != len(traced.Alive) {
			t.Fatalf("%s: alive sets differ: %d vs %d", cfg.Name(), len(plain.Alive), len(traced.Alive))
		}
		for m := range plain.Alive {
			if !traced.Alive[m] {
				t.Fatalf("%s: %s alive untraced but eliminated traced", cfg.Name(), m)
			}
		}
		if len(prof.Passes) == 0 {
			t.Fatalf("%s: traced compilation recorded no passes", cfg.Name())
		}
	}
}
