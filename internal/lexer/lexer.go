// Package lexer implements the MiniC scanner.
//
// The scanner is a straightforward hand-written lexer over a byte slice.
// It supports line (//) and block (/* */) comments, decimal and hexadecimal
// integer literals with optional U/L suffixes, and the full MiniC operator
// set defined in internal/token.
package lexer

import (
	"fmt"

	"dcelens/internal/token"
)

// Error describes a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MiniC source text into tokens.
type Lexer struct {
	src  []byte
	off  int
	line int
	col  int
	errs []*Error
}

// New returns a Lexer over src.
func New(src []byte) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool { return '0' <= c && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipTrivia consumes whitespace and comments.
func (l *Lexer) skipTrivia() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns an EOF token and
// keeps returning it on subsequent calls.
func (l *Lexer) Next() token.Token {
	l.skipTrivia()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()

	switch {
	case isIdentStart(c):
		start := l.off - 1
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := string(l.src[start:l.off])
		if kw, ok := token.Keywords[text]; ok {
			return token.Token{Kind: kw, Pos: pos, Text: text}
		}
		return token.Token{Kind: token.Ident, Pos: pos, Text: text}

	case isDigit(c):
		start := l.off - 1
		if c == '0' && (l.peek() == 'x' || l.peek() == 'X') {
			l.advance()
			if !isHexDigit(l.peek()) {
				l.errorf(pos, "malformed hexadecimal literal")
			}
			for l.off < len(l.src) && isHexDigit(l.peek()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		// Optional integer suffixes (any order, at most one U, up to two L).
		for l.off < len(l.src) {
			switch l.peek() {
			case 'u', 'U', 'l', 'L':
				l.advance()
				continue
			}
			break
		}
		return token.Token{Kind: token.IntLit, Pos: pos, Text: string(l.src[start:l.off])}
	}

	// two- and three-character operators
	mk := func(k token.Kind) token.Token { return token.Token{Kind: k, Pos: pos} }
	switch c {
	case '(':
		return mk(token.LParen)
	case ')':
		return mk(token.RParen)
	case '{':
		return mk(token.LBrace)
	case '}':
		return mk(token.RBrace)
	case '[':
		return mk(token.LBracket)
	case ']':
		return mk(token.RBracket)
	case ',':
		return mk(token.Comma)
	case ';':
		return mk(token.Semicolon)
	case ':':
		return mk(token.Colon)
	case '?':
		return mk(token.Question)
	case '~':
		return mk(token.Tilde)
	case '+':
		if l.peek() == '+' {
			l.advance()
			return mk(token.PlusPlus)
		}
		if l.peek() == '=' {
			l.advance()
			return mk(token.PlusAssign)
		}
		return mk(token.Plus)
	case '-':
		if l.peek() == '-' {
			l.advance()
			return mk(token.MinusMinus)
		}
		if l.peek() == '=' {
			l.advance()
			return mk(token.MinusAssign)
		}
		return mk(token.Minus)
	case '*':
		if l.peek() == '=' {
			l.advance()
			return mk(token.StarAssign)
		}
		return mk(token.Star)
	case '/':
		if l.peek() == '=' {
			l.advance()
			return mk(token.SlashAssign)
		}
		return mk(token.Slash)
	case '%':
		if l.peek() == '=' {
			l.advance()
			return mk(token.PercentAssign)
		}
		return mk(token.Percent)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return mk(token.AndAnd)
		}
		if l.peek() == '=' {
			l.advance()
			return mk(token.AmpAssign)
		}
		return mk(token.Amp)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return mk(token.OrOr)
		}
		if l.peek() == '=' {
			l.advance()
			return mk(token.PipeAssign)
		}
		return mk(token.Pipe)
	case '^':
		if l.peek() == '=' {
			l.advance()
			return mk(token.CaretAssign)
		}
		return mk(token.Caret)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(token.NotEq)
		}
		return mk(token.Not)
	case '=':
		if l.peek() == '=' {
			l.advance()
			return mk(token.EqEq)
		}
		return mk(token.Assign)
	case '<':
		if l.peek() == '<' {
			l.advance()
			if l.peek() == '=' {
				l.advance()
				return mk(token.ShlAssign)
			}
			return mk(token.Shl)
		}
		if l.peek() == '=' {
			l.advance()
			return mk(token.Le)
		}
		return mk(token.Lt)
	case '>':
		if l.peek() == '>' {
			l.advance()
			if l.peek() == '=' {
				l.advance()
				return mk(token.ShrAssign)
			}
			return mk(token.Shr)
		}
		if l.peek() == '=' {
			l.advance()
			return mk(token.Ge)
		}
		return mk(token.Gt)
	}

	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.Invalid, Pos: pos, Text: string(c)}
}

// Scan tokenizes src completely and returns all tokens including the final
// EOF token, together with any lexical errors.
func Scan(src []byte) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	return toks, l.Errors()
}
