package lexer

import (
	"testing"

	"dcelens/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := Scan([]byte(src))
	if len(errs) > 0 {
		t.Fatalf("lex %q: %v", src, errs[0])
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "static int main while0 unsigned")
	want := []token.Kind{token.KwStatic, token.KwInt, token.Ident, token.Ident, token.KwUnsigned, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"+":   token.Plus,
		"++":  token.PlusPlus,
		"+=":  token.PlusAssign,
		"-":   token.Minus,
		"--":  token.MinusMinus,
		"-=":  token.MinusAssign,
		"<<":  token.Shl,
		"<<=": token.ShlAssign,
		">>":  token.Shr,
		">>=": token.ShrAssign,
		"<=":  token.Le,
		">=":  token.Ge,
		"==":  token.EqEq,
		"!=":  token.NotEq,
		"&&":  token.AndAnd,
		"||":  token.OrOr,
		"&":   token.Amp,
		"&=":  token.AmpAssign,
		"|":   token.Pipe,
		"^=":  token.CaretAssign,
		"%":   token.Percent,
		"%=":  token.PercentAssign,
		"~":   token.Tilde,
		"!":   token.Not,
		"?":   token.Question,
		":":   token.Colon,
	}
	for src, want := range cases {
		got := kinds(t, src)
		if got[0] != want {
			t.Errorf("%q: got %v want %v", src, got[0], want)
		}
	}
}

func TestOperatorSequences(t *testing.T) {
	// Ensure maximal munch: a+++b lexes as a ++ + b (like C).
	got := kinds(t, "a+++b")
	want := []token.Kind{token.Ident, token.PlusPlus, token.Plus, token.Ident, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("a+++b: got %v want %v", got, want)
		}
	}
}

func TestIntLiterals(t *testing.T) {
	for _, src := range []string{"0", "42", "0x7fffffff", "123u", "77UL", "5L", "9223372036854775807L"} {
		toks, errs := Scan([]byte(src))
		if len(errs) > 0 {
			t.Fatalf("lex %q: %v", src, errs[0])
		}
		if toks[0].Kind != token.IntLit || toks[0].Text != src {
			t.Errorf("%q: got %v %q", src, toks[0].Kind, toks[0].Text)
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // comment\n b /* block\n comment */ c")
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := Scan([]byte("a /* never closed"))
	if len(errs) == 0 {
		t.Fatal("expected an error for unterminated comment")
	}
}

func TestPositions(t *testing.T) {
	toks, _ := Scan([]byte("a\n  b"))
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestUnexpectedChar(t *testing.T) {
	_, errs := Scan([]byte("a @ b"))
	if len(errs) == 0 {
		t.Fatal("expected an error for @")
	}
}
