package ir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dcelens/internal/types"
)

// buildCFG constructs a function with the given edges (block 0 is entry).
// Blocks with no listed successors get a ret; one successor a br; two a
// condbr on a parameter-derived value.
func buildCFG(nblocks int, edges [][2]int) *Func {
	f := &Func{Name: "t", Ret: types.I32Type}
	blocks := make([]*Block, nblocks)
	for i := 0; i < nblocks; i++ {
		blocks[i] = f.NewBlock()
	}
	succs := make([][]int, nblocks)
	for _, e := range edges {
		succs[e[0]] = append(succs[e[0]], e[1])
	}
	// One shared condition value in the entry block.
	cond := blocks[0].Append(OpParam, types.I32Type)
	for i, b := range blocks {
		switch len(succs[i]) {
		case 0:
			z := b.Append(OpConst, types.I32Type)
			b.Append(OpRet, nil, z)
		case 1:
			br := b.Append(OpBr, nil)
			br.Targets = []*Block{blocks[succs[i][0]]}
		default:
			cb := b.Append(OpCondBr, nil, cond)
			cb.Targets = []*Block{blocks[succs[i][0]], blocks[succs[i][1]]}
		}
	}
	f.RecomputePreds()
	return f
}

// naiveDominators computes dominators by the textbook dataflow definition,
// as an oracle for the Cooper-Harvey-Kennedy implementation.
func naiveDominators(f *Func) map[*Block]map[*Block]bool {
	reach := f.Reachable()
	var blocks []*Block
	for _, b := range f.Blocks {
		if reach[b.ID] {
			blocks = append(blocks, b)
		}
	}
	dom := map[*Block]map[*Block]bool{}
	all := map[*Block]bool{}
	for _, b := range blocks {
		all[b] = true
	}
	for _, b := range blocks {
		if b == f.Entry() {
			dom[b] = map[*Block]bool{b: true}
		} else {
			cp := map[*Block]bool{}
			for k := range all {
				cp[k] = true
			}
			dom[b] = cp
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			if b == f.Entry() {
				continue
			}
			var inter map[*Block]bool
			for _, p := range b.Preds {
				if !reach[p.ID] {
					continue
				}
				if inter == nil {
					inter = map[*Block]bool{}
					for k := range dom[p] {
						inter[k] = true
					}
				} else {
					for k := range inter {
						if !dom[p][k] {
							delete(inter, k)
						}
					}
				}
			}
			if inter == nil {
				inter = map[*Block]bool{}
			}
			inter[b] = true
			if len(inter) != len(dom[b]) {
				dom[b] = inter
				changed = true
				continue
			}
			for k := range inter {
				if !dom[b][k] {
					dom[b] = inter
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// TestDominatorsAgainstNaive compares the fast dominator tree with the
// naive fixpoint on random CFGs.
func TestDominatorsAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		var edges [][2]int
		for i := 0; i < n; i++ {
			// 0-2 successors per block, anywhere (cycles allowed).
			for k := 0; k < r.Intn(3); k++ {
				edges = append(edges, [2]int{i, r.Intn(n)})
			}
		}
		fn := buildCFG(n, edges)
		dt := Dominators(fn)
		naive := naiveDominators(fn)
		reach := fn.Reachable()
		for _, a := range fn.Blocks {
			for _, b := range fn.Blocks {
				if !reach[a.ID] || !reach[b.ID] {
					continue
				}
				want := naive[b][a] // a dominates b
				if got := dt.Dominates(a, b); got != want {
					t.Logf("seed %d: Dominates(b%d, b%d) = %v, want %v", seed, a.ID, b.ID, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReversePostorder(t *testing.T) {
	// Diamond: 0 -> 1,2 -> 3.
	f := buildCFG(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	rpo := f.ReversePostorder()
	pos := map[*Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	if rpo[0] != f.Entry() {
		t.Error("entry must come first")
	}
	if pos[f.Blocks[3]] != 3 {
		t.Error("join must come last in a diamond")
	}
}

func TestNaturalLoops(t *testing.T) {
	// 0 -> 1; 1 -> 2; 2 -> 1 (loop); 1 -> 3 (exit).
	f := buildCFG(4, [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 1}})
	dt := Dominators(f)
	loops := NaturalLoops(f, dt)
	if len(loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(loops))
	}
	l := loops[0]
	if l.Header != f.Blocks[1] {
		t.Errorf("header b%d, want b1", l.Header.ID)
	}
	if !l.Blocks[f.Blocks[2]] || l.Blocks[f.Blocks[3]] {
		t.Errorf("loop body wrong: %v", l.Blocks)
	}
	if len(l.Latches) != 1 || l.Latches[0] != f.Blocks[2] {
		t.Errorf("latches wrong")
	}
	exits := l.Exits()
	if len(exits) != 1 || exits[0][1] != f.Blocks[3] {
		t.Errorf("exits wrong: %v", exits)
	}
}

func TestVerifyCatchesBrokenSSA(t *testing.T) {
	f := &Func{Name: "bad", Ret: types.I32Type}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	cond := b0.Append(OpParam, types.I32Type)
	cb := b0.Append(OpCondBr, nil, cond)
	cb.Targets = []*Block{b1, b2}
	// v defined only on the b1 path...
	v := b1.Append(OpConst, types.I32Type)
	br := b1.Append(OpBr, nil)
	br.Targets = []*Block{b2}
	// ...but used in b2, which is also reachable via b0 directly.
	b2.Append(OpRet, nil, v)
	f.RecomputePreds()

	m := &Module{Funcs: []*Func{f}}
	if err := Verify(m); err == nil {
		t.Fatal("verifier accepted a dominance violation")
	}
}

func TestVerifyCatchesPhiMismatch(t *testing.T) {
	f := &Func{Name: "bad", Ret: types.I32Type}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	c := b0.Append(OpConst, types.I32Type)
	br := b0.Append(OpBr, nil)
	br.Targets = []*Block{b1}
	phi := b1.Append(OpPhi, types.I32Type, c, c) // two entries, one pred
	phi.PhiPreds = []*Block{b0, b0}
	b1.Append(OpRet, nil, phi)
	f.RecomputePreds()
	if err := Verify(&Module{Funcs: []*Func{f}}); err == nil {
		t.Fatal("verifier accepted a phi/pred mismatch")
	}
}

func TestEdgeEditing(t *testing.T) {
	f := buildCFG(3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	b0, b1, b2 := f.Blocks[0], f.Blocks[1], f.Blocks[2]
	// Add a phi in b2 over its two preds.
	v0 := b0.Instrs[0] // the param
	phi := b2.NewInstr(OpPhi, types.I32Type)
	phi.Args = []*Instr{v0, v0}
	phi.PhiPreds = []*Block{b0, b1}
	b2.Instrs = append([]*Instr{phi}, b2.Instrs...)
	if err := VerifyFunc(f); err != nil {
		t.Fatalf("setup invalid: %v", err)
	}
	// Remove the edge b1 -> b2: the phi must shrink.
	t1 := b1.Term()
	t1.Op = OpRet
	t1.Targets = nil
	RemoveEdge(b1, b2)
	if len(phi.Args) != 1 || phi.PhiPreds[0] != b0 {
		t.Fatalf("RemoveEdge did not trim the phi: %v", phi.PhiPreds)
	}
	if err := VerifyFunc(f); err != nil {
		t.Fatalf("after RemoveEdge: %v", err)
	}
}

func TestReplaceAllUsesAndCount(t *testing.T) {
	f := &Func{Name: "t", Ret: types.I32Type}
	b := f.NewBlock()
	a := b.Append(OpConst, types.I32Type)
	c := b.Append(OpConst, types.I32Type)
	add := b.Append(OpBin, types.I32Type, a, a)
	b.Append(OpRet, nil, add)
	if CountUses(a) != 2 {
		t.Fatalf("CountUses = %d, want 2", CountUses(a))
	}
	ReplaceAllUses(a, c)
	if CountUses(a) != 0 || CountUses(c) != 2 {
		t.Fatal("ReplaceAllUses failed")
	}
}
