// Package ir defines the SSA intermediate representation shared by both
// compiler personalities, together with CFG utilities (dominators, loops),
// a verifier, a printer, and an independent executor used to validate that
// optimization pipelines preserve semantics.
//
// The IR is a conventional SSA: functions hold basic blocks, blocks hold
// instructions, the last instruction of each block is its terminator. Memory
// is modelled with Alloca/GlobalAddr/GEP/Load/Store; scalars are promoted to
// SSA registers by the mem2reg pass. There are no unary operations: the
// lowering normalizes -x to 0-x and ~x to x^-1, and !x to x==0, which keeps
// every optimization pass's case analysis small.
package ir

import (
	"fmt"

	"dcelens/internal/token"
	"dcelens/internal/types"
)

// Op enumerates instruction kinds.
type Op int

const (
	OpInvalid Op = iota

	// Pure value producers.
	OpConst      // integer constant (IntVal, Typ)
	OpNull       // null pointer constant (Typ is the pointer type)
	OpGlobalAddr // address of Global (Typ = *elem)
	OpParam      // function parameter ParamIdx
	OpPhi        // SSA phi; Args parallel to PhiPreds
	OpBin        // binary operation BinOp on Args[0], Args[1]
	OpCast       // integer conversion to Typ of Args[0]
	OpGEP        // pointer arithmetic: Args[0] (pointer) + Args[1] (i64 elements)
	OpSelect     // Args[0] ? Args[1] : Args[2]
	OpFreeze     // identity on Args[0], opaque to every analysis (LLVM's freeze)

	// Memory.
	OpAlloca // stack slot of Count elements of Typ.Elem; Typ = *elem
	OpLoad   // load Typ from address Args[0]
	OpStore  // store Args[1] to address Args[0]; no result

	// Calls.
	OpCall // call Callee with Args

	// Terminators.
	OpRet    // return Args[0] (optional)
	OpBr     // jump to Targets[0]
	OpCondBr // if Args[0] != 0 goto Targets[0] else Targets[1]
)

var opNames = map[Op]string{
	OpConst: "const", OpNull: "null", OpGlobalAddr: "addr", OpParam: "param",
	OpPhi: "phi", OpBin: "bin", OpCast: "cast", OpGEP: "gep", OpSelect: "select",
	OpFreeze: "freeze",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpCall: "call",
	OpRet: "ret", OpBr: "br", OpCondBr: "condbr",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == OpRet || o == OpBr || o == OpCondBr }

// Const is a compile-time constant used in global initializers: either an
// integer or the address of a global plus an element offset.
type Const struct {
	Int    int64
	Global *Global
	Off    int64
	IsAddr bool
}

// Global is a module-level variable.
type Global struct {
	Name     string
	Elem     *types.Type // element type (variable type for scalars)
	Len      int         // 1 for scalars
	Init     []Const     // missing trailing entries are zero
	Internal bool        // static storage class (internal linkage)

	// Escapes is computed by opt.ComputeEscapes: true when external code
	// could observe or modify the global (external linkage, or its address
	// escapes). Opaque calls clobber exactly the escaping globals.
	Escapes bool

	// AddrExposed is computed alongside Escapes: true when the global's
	// address flows anywhere other than directly into loads, stores, and
	// comparisons (stored to memory, passed to calls, mixed into phis or
	// selects, or taken in another global's initializer). A pointer of
	// unknown provenance can only point to address-exposed objects.
	AddrExposed bool
}

// Module is a compilation unit.
type Module struct {
	Globals []*Global
	Funcs   []*Func
}

// LookupFunc returns the function named name, or nil.
func (m *Module) LookupFunc(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// LookupGlobal returns the global named name, or nil.
func (m *Module) LookupGlobal(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Func is a function definition (or declaration when External).
type Func struct {
	Name     string
	Ret      *types.Type
	ParamTys []*types.Type
	Internal bool // static
	External bool // declaration only: body unavailable to the optimizer
	Blocks   []*Block

	// WasInlined records that the inliner substituted this function's body
	// at one or more call sites. GlobalDCE's KeepSRAClones knob retains
	// dead pointer-parameter functions only when they were inlined away —
	// the shape of GCC's leftover interprocedural-SRA copies (paper
	// Listing 9b) — rather than every never-called helper.
	WasInlined bool

	nextBlockID int
	nextValueID int

	// gen counts observable mutations of the body. The pass manager bumps
	// it whenever a pass reports changing the function and uses it to skip
	// re-running passes over functions nothing changed; passes that mutate
	// a body without reporting it through their changed flag (cleanup
	// helpers whose result is discarded) call MarkMutated directly.
	gen uint64
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Gen returns the function's mutation generation.
func (f *Func) Gen() uint64 { return f.gen }

// MarkMutated records an observable mutation of the function body.
func (f *Func) MarkMutated() { f.gen++ }

// NewBlock appends a fresh empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlockID, Func: f}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NumValues returns an upper bound on instruction IDs (for dense maps).
func (f *Func) NumValues() int { return f.nextValueID }

// NumBlocks returns an upper bound on block IDs (for dense maps).
func (f *Func) NumBlocks() int { return f.nextBlockID }

// Block is a basic block. Preds is maintained eagerly by the edge-editing
// helpers below; Succs is derived from the terminator.
type Block struct {
	ID     int
	Func   *Func
	Instrs []*Instr
	Preds  []*Block
}

// Term returns the block's terminator, or nil if the block is unterminated
// (only during construction).
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor blocks in terminator order.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Targets
}

// Instr is an SSA instruction; it doubles as the SSA value it produces.
type Instr struct {
	Op    Op
	ID    int
	Typ   *types.Type // result type; nil for void (store, br, ret)
	Args  []*Instr
	Block *Block

	// Op-specific payload.
	IntVal   int64      // OpConst
	Global   *Global    // OpGlobalAddr
	Callee   *Func      // OpCall
	ParamIdx int        // OpParam
	Count    int        // OpAlloca element count
	BinOp    token.Kind // OpBin
	Targets  []*Block   // OpBr, OpCondBr
	PhiPreds []*Block   // OpPhi: incoming edge for each Arg

	// Widened marks a store whose value was re-typed by the store-widening
	// ("vectorization") pass; widened stores defeat store-to-load
	// forwarding because the forwarded type no longer matches.
	Widened bool
}

// NewInstr creates an instruction owned by b's function (not yet inserted).
func (b *Block) NewInstr(op Op, typ *types.Type, args ...*Instr) *Instr {
	f := b.Func
	in := &Instr{Op: op, ID: f.nextValueID, Typ: typ, Args: args, Block: b}
	f.nextValueID++
	return in
}

// Append creates the instruction and appends it to b.
func (b *Block) Append(op Op, typ *types.Type, args ...*Instr) *Instr {
	in := b.NewInstr(op, typ, args...)
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertBefore inserts in ahead of pos within b. The insertion grows the
// slice by one and shifts the tail with a single copy; the old
// append(append(...)) idiom allocated and copied the tail twice.
func (b *Block) InsertBefore(in *Instr, pos *Instr) {
	for i, x := range b.Instrs {
		if x == pos {
			b.Instrs = append(b.Instrs, nil)
			copy(b.Instrs[i+1:], b.Instrs[i:])
			b.Instrs[i] = in
			in.Block = b
			return
		}
	}
	panic("ir: InsertBefore: position not in block")
}

// Remove deletes in from its block. The instruction must be unused.
// (Unlike the historical InsertBefore, this append already shifts the tail
// in place with a single copy and no allocation.)
func (in *Instr) Remove() {
	b := in.Block
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			return
		}
	}
	panic("ir: Remove: instruction not in its block")
}

// HasSideEffects reports whether the instruction cannot be deleted even if
// its result is unused. Loads are pure in MiniC (no traps are modelled at
// the IR level; the source guarantees in-bounds accesses).
func (in *Instr) HasSideEffects() bool {
	switch in.Op {
	case OpStore, OpCall, OpRet, OpBr, OpCondBr:
		return true
	}
	return false
}

// IsPure reports the opposite of HasSideEffects for value-producing ops,
// and additionally excludes loads (whose value depends on memory state).
// OpFreeze is deliberately excluded: it is side-effect free (DCE may drop
// an unused freeze) but must remain opaque to value-based reasoning, so it
// never participates in CSE or folding.
func (in *Instr) IsPure() bool {
	switch in.Op {
	case OpConst, OpNull, OpGlobalAddr, OpParam, OpPhi, OpBin, OpCast, OpGEP, OpSelect, OpAlloca:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Edge editing. These helpers keep Preds, terminators, and phi nodes
// consistent; passes must use them rather than mutating edges by hand.

// AddEdge records an edge from p to s (terminator Targets must already
// include s, or be added by the caller).
func AddEdge(p, s *Block) {
	s.Preds = append(s.Preds, p)
}

// RemoveEdge removes one edge p->s, dropping the corresponding phi inputs
// in s. If p occurs multiple times (a condbr with both targets equal), only
// one occurrence is removed.
func RemoveEdge(p, s *Block) {
	for i, q := range s.Preds {
		if q == p {
			s.Preds = append(s.Preds[:i], s.Preds[i+1:]...)
			for _, in := range s.Instrs {
				if in.Op != OpPhi {
					break
				}
				for j, pb := range in.PhiPreds {
					if pb == p {
						in.PhiPreds = append(in.PhiPreds[:j], in.PhiPreds[j+1:]...)
						in.Args = append(in.Args[:j], in.Args[j+1:]...)
						break
					}
				}
			}
			return
		}
	}
	panic("ir: RemoveEdge: edge not present")
}

// RedirectEdge changes an edge p->from into p->to, updating p's terminator,
// from's preds/phis, and to's preds. Phi nodes in to gain no entry; the
// caller must add them if needed.
func RedirectEdge(p, from, to *Block) {
	t := p.Term()
	done := false
	for i, tgt := range t.Targets {
		if tgt == from && !done {
			t.Targets[i] = to
			done = true
		}
	}
	if !done {
		panic("ir: RedirectEdge: target not found")
	}
	RemoveEdge(p, from)
	AddEdge(p, to)
}

// ReplaceAllUses rewrites every use of old to new within old's function.
func ReplaceAllUses(old, new *Instr) {
	f := old.Block.Func
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}

// Relocator batches use replacements. ReplaceAllUses costs a full function
// scan per call, which made replacement the single hottest operation in the
// middle end; a pass that performs many replacements instead records each
// one with Add, reads operands through Resolve while it works, and rewrites
// every argument slot with one Apply sweep at the end — O(function) total
// instead of O(function) per replacement.
type Relocator struct {
	m map[*Instr]*Instr
}

// Add records that every use of old should become new. Chains (old→a, a→b)
// are permitted; Resolve and Apply follow them to the final target. A
// self-mapping (new resolving back to old) is ignored rather than recorded —
// it could only arise from degenerate IR (a self-referential phi) and would
// otherwise make Resolve cycle forever.
func (r *Relocator) Add(old, new *Instr) {
	if r.m == nil {
		r.m = make(map[*Instr]*Instr, 16)
	}
	if n := r.Resolve(new); n != old {
		r.m[old] = n
	}
}

// Resolve returns the current replacement target for v (v itself when it
// has none), following chains with path compression.
func (r *Relocator) Resolve(v *Instr) *Instr {
	n, ok := r.m[v]
	if !ok {
		return v
	}
	for {
		n2, ok := r.m[n]
		if !ok {
			break
		}
		n = n2
	}
	r.m[v] = n
	return n
}

// Empty reports whether no replacements are pending.
func (r *Relocator) Empty() bool { return len(r.m) == 0 }

// Apply rewrites every argument slot in f through the pending replacements.
func (r *Relocator) Apply(f *Func) {
	if len(r.m) == 0 {
		return
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if n := r.Resolve(a); n != a {
					in.Args[i] = n
				}
			}
		}
	}
}

// Reset clears pending replacements, retaining the map for reuse.
func (r *Relocator) Reset() { clear(r.m) }

// CountUses returns the number of operand slots referencing in.
func CountUses(in *Instr) int {
	n := 0
	f := in.Block.Func
	for _, b := range f.Blocks {
		for _, i2 := range b.Instrs {
			for _, a := range i2.Args {
				if a == in {
					n++
				}
			}
		}
	}
	return n
}

// RecomputePreds rebuilds all Preds lists from the terminators. Phi nodes
// must already be consistent with the new edge set (callers that restructure
// the CFG wholesale, like the lowerer, use this once at the end).
func (f *Func) RecomputePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}
