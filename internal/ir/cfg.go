package ir

// ReversePostorder returns the blocks reachable from entry in reverse
// postorder of a depth-first search.
func (f *Func) ReversePostorder() []*Block {
	seen := make([]bool, f.nextBlockID)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs() {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reachable returns the set of blocks reachable from entry, dense by
// Block.ID.
func (f *Func) Reachable() []bool {
	r := make([]bool, f.nextBlockID)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if r[b.ID] {
			return
		}
		r[b.ID] = true
		for _, s := range b.Succs() {
			dfs(s)
		}
	}
	dfs(f.Entry())
	return r
}

// DomTree is the dominator tree of a function. All internal tables are
// dense by Block.ID — the tree is rebuilt by every dominance-consuming pass
// instance, so its construction cost (formerly dominated by map churn) is
// squarely on the campaign hot path.
type DomTree struct {
	fn    *Func
	idom  []*Block   // immediate dominator; entry and unreachable → nil
	kids  [][]*Block // dominator-tree children, in RPO
	order []int32    // reverse postorder index; -1 = unreachable
	rpo   []*Block
}

// Dominators computes the dominator tree with the Cooper-Harvey-Kennedy
// iterative algorithm over reverse postorder.
func Dominators(f *Func) *DomTree {
	n := f.nextBlockID
	t := &DomTree{
		fn:    f,
		idom:  make([]*Block, n),
		kids:  make([][]*Block, n),
		order: make([]int32, n),
	}
	for i := range t.order {
		t.order[i] = -1
	}
	t.rpo = f.ReversePostorder()
	for i, b := range t.rpo {
		t.order[b.ID] = int32(i)
	}
	entry := f.Entry()
	t.idom[entry.ID] = entry // sentinel during iteration
	changed := true
	for changed {
		changed = false
		for _, b := range t.rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if t.idom[p.ID] == nil {
					continue // not processed yet
				}
				if t.order[p.ID] < 0 {
					continue // unreachable predecessor
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom == nil {
				continue
			}
			if t.idom[b.ID] != newIdom {
				t.idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	t.idom[entry.ID] = nil
	// Children in RPO: deterministic regardless of map iteration order.
	for _, b := range t.rpo {
		if d := t.idom[b.ID]; d != nil {
			t.kids[d.ID] = append(t.kids[d.ID], b)
		}
	}
	return t
}

func (t *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for t.order[a.ID] > t.order[b.ID] {
			a = t.idom[a.ID]
			if a == nil {
				return b
			}
		}
		for t.order[b.ID] > t.order[a.ID] {
			b = t.idom[b.ID]
			if b == nil {
				return a
			}
		}
	}
	return a
}

// Idom returns b's immediate dominator (nil for the entry block and
// unreachable blocks).
func (t *DomTree) Idom(b *Block) *Block { return t.idom[b.ID] }

// Children returns the dominator-tree children of b, in reverse postorder.
func (t *DomTree) Children(b *Block) []*Block { return t.kids[b.ID] }

// RPO returns the reachable blocks in reverse postorder.
func (t *DomTree) RPO() []*Block { return t.rpo }

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = t.idom[b.ID]
	}
	return false
}

// Frontiers computes the dominance frontier of every reachable block
// (Cytron et al.), dense by Block.ID; used by mem2reg's phi placement.
func (t *DomTree) Frontiers() [][]*Block {
	df := make([][]*Block, len(t.idom))
	for _, b := range t.rpo {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if t.order[p.ID] < 0 {
				continue
			}
			runner := p
			for runner != nil && runner != t.idom[b.ID] {
				if !contains(df[runner.ID], b) {
					df[runner.ID] = append(df[runner.ID], b)
				}
				runner = t.idom[runner.ID]
			}
		}
	}
	return df
}

func contains(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// Loop describes one natural loop.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
	// Latches are the in-loop predecessors of the header.
	Latches []*Block
}

// Exits returns the out-of-loop successor edges as (from, to) pairs.
func (l *Loop) Exits() [][2]*Block {
	var out [][2]*Block
	for b := range l.Blocks {
		for _, s := range b.Succs() {
			if !l.Blocks[s] {
				out = append(out, [2]*Block{b, s})
			}
		}
	}
	return out
}

// NaturalLoops finds all natural loops via back edges (an edge u->h where h
// dominates u). Loops sharing a header are merged, as is conventional.
func NaturalLoops(f *Func, t *DomTree) []*Loop {
	byHeader := map[*Block]*Loop{}
	for _, b := range t.rpo {
		for _, s := range b.Succs() {
			if t.Dominates(s, b) {
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
					byHeader[s] = l
				}
				l.Latches = append(l.Latches, b)
				// Collect the loop body: blocks that reach the latch
				// without passing through the header.
				var stack []*Block
				if !l.Blocks[b] {
					l.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range x.Preds {
						if t.order[p.ID] < 0 {
							continue
						}
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	var loops []*Loop
	for _, b := range t.rpo { // deterministic order
		if l, ok := byHeader[b]; ok {
			loops = append(loops, l)
		}
	}
	return loops
}
