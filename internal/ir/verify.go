package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural SSA invariants of every function in the module:
// blocks end in exactly one terminator, edges and Preds agree, phi inputs
// match predecessor sets, definitions dominate uses, and operand/owner
// bookkeeping is intact. Passes run the verifier after themselves in tests;
// the pipeline can run it after every pass in a debug mode.
func Verify(m *Module) error {
	var errs []error
	for _, f := range m.Funcs {
		if f.External {
			if len(f.Blocks) != 0 {
				errs = append(errs, fmt.Errorf("%s: external function has blocks", f.Name))
			}
			continue
		}
		if err := verifyFunc(f); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", f.Name, err))
		}
	}
	return errors.Join(errs...)
}

// VerifyFunc checks one function.
func VerifyFunc(f *Func) error { return verifyFunc(f) }

func verifyFunc(f *Func) error {
	var errs []error
	bail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}

	inFunc := map[*Block]bool{}
	for _, b := range f.Blocks {
		inFunc[b] = true
	}

	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			bail("b%d: empty block", b.ID)
			continue
		}
		for i, in := range b.Instrs {
			if in.Block != b {
				bail("b%d: instruction v%d has wrong owner", b.ID, in.ID)
			}
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				bail("b%d: terminator placement wrong at v%d (%v)", b.ID, in.ID, in.Op)
			}
			if in.Op == OpPhi {
				if len(in.Args) != len(in.PhiPreds) {
					bail("b%d: phi v%d has %d args, %d preds", b.ID, in.ID, len(in.Args), len(in.PhiPreds))
					continue
				}
				// Phis must be grouped at the top of the block.
				if i > 0 && b.Instrs[i-1].Op != OpPhi {
					bail("b%d: phi v%d not at block head", b.ID, in.ID)
				}
				if len(in.Args) != len(b.Preds) {
					bail("b%d: phi v%d has %d entries for %d preds", b.ID, in.ID, len(in.Args), len(b.Preds))
				}
				for _, pb := range in.PhiPreds {
					if !blockListContains(b.Preds, pb) {
						bail("b%d: phi v%d references non-pred b%d", b.ID, in.ID, pb.ID)
					}
				}
			}
			for _, t := range in.Targets {
				if !inFunc[t] {
					bail("b%d: v%d targets foreign block", b.ID, in.ID)
				}
			}
			for _, a := range in.Args {
				if a == nil {
					bail("b%d: v%d has nil operand", b.ID, in.ID)
					continue
				}
				if a.Block == nil || a.Block.Func != f {
					bail("b%d: v%d uses value from another function", b.ID, in.ID)
				}
				if a.Typ == nil && a.Op != OpCall {
					bail("b%d: v%d uses void value v%d (%v)", b.ID, in.ID, a.ID, a.Op)
				}
			}
		}
	}

	// Edge consistency: preds must mirror successor edges exactly
	// (as multisets).
	edgeCount := map[[2]*Block]int{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			edgeCount[[2]*Block{b, s}]++
		}
	}
	predCount := map[[2]*Block]int{}
	for _, b := range f.Blocks {
		for _, p := range b.Preds {
			predCount[[2]*Block{p, b}]++
		}
	}
	for e, n := range edgeCount {
		if predCount[e] != n {
			bail("edge b%d->b%d: %d terminator edges, %d pred entries", e[0].ID, e[1].ID, n, predCount[e])
		}
	}
	for e, n := range predCount {
		if edgeCount[e] != n {
			bail("edge b%d->b%d: %d pred entries, %d terminator edges", e[0].ID, e[1].ID, n, edgeCount[e])
		}
	}

	if len(errs) > 0 {
		return errors.Join(errs...)
	}

	// Defs dominate uses (reachable blocks only).
	dt := Dominators(f)
	reach := f.Reachable()
	defBlock := map[*Instr]*Block{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			defBlock[in] = b
		}
	}
	pos := map[*Instr]int{}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			pos[in] = i
		}
	}
	for _, b := range f.Blocks {
		if !reach[b.ID] {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == OpPhi {
				for i, a := range in.Args {
					pb := in.PhiPreds[i]
					if !reach[pb.ID] {
						continue
					}
					db := defBlock[a]
					if db == nil {
						bail("phi v%d arg not in function", in.ID)
						continue
					}
					if !dt.Dominates(db, pb) {
						bail("phi v%d: def b%d does not dominate incoming edge from b%d", in.ID, db.ID, pb.ID)
					}
				}
				continue
			}
			for _, a := range in.Args {
				db := defBlock[a]
				if db == nil {
					bail("v%d: operand v%d not in function body", in.ID, a.ID)
					continue
				}
				if db == b {
					if pos[a] >= pos[in] {
						bail("b%d: v%d used before defined (v%d)", b.ID, a.ID, in.ID)
					}
				} else if !dt.Dominates(db, b) {
					bail("v%d: def in b%d does not dominate use in b%d", a.ID, db.ID, b.ID)
				}
			}
		}
	}

	return errors.Join(errs...)
}

func blockListContains(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
