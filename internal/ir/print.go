package ir

import (
	"fmt"
	"strings"
)

// String renders the module in a readable textual form, for tests and
// debugging. The format is stable enough for golden tests but is not parsed
// back.
func (m *Module) String() string {
	var sb strings.Builder
	for _, g := range m.Globals {
		link := ""
		if g.Internal {
			link = "internal "
		}
		fmt.Fprintf(&sb, "%sglobal @%s : %s x%d", link, g.Name, g.Elem, g.Len)
		if len(g.Init) > 0 {
			sb.WriteString(" = {")
			for i, c := range g.Init {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(c.String())
			}
			sb.WriteString("}")
		}
		sb.WriteString("\n")
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

func (c Const) String() string {
	if !c.IsAddr {
		return fmt.Sprintf("%d", c.Int)
	}
	if c.Global == nil {
		return "null"
	}
	if c.Off != 0 {
		return fmt.Sprintf("&%s+%d", c.Global.Name, c.Off)
	}
	return "&" + c.Global.Name
}

// String renders one function.
func (f *Func) String() string {
	var sb strings.Builder
	link := ""
	if f.Internal {
		link = "internal "
	}
	if f.External {
		link = "external "
	}
	fmt.Fprintf(&sb, "%sfunc @%s(", link, f.Name)
	for i, p := range f.ParamTys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s", p)
	}
	fmt.Fprintf(&sb, ") %s", f.Ret)
	if f.External {
		sb.WriteString("\n")
		return sb.String()
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		preds := make([]string, len(b.Preds))
		for i, p := range b.Preds {
			preds[i] = fmt.Sprintf("b%d", p.ID)
		}
		fmt.Fprintf(&sb, "b%d:", b.ID)
		if len(preds) > 0 {
			fmt.Fprintf(&sb, " ; preds: %s", strings.Join(preds, " "))
		}
		sb.WriteString("\n")
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in.String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders one instruction.
func (in *Instr) String() string {
	arg := func(i int) string {
		if i >= len(in.Args) || in.Args[i] == nil {
			return "<nil>"
		}
		return fmt.Sprintf("v%d", in.Args[i].ID)
	}
	res := ""
	if in.Typ != nil {
		res = fmt.Sprintf("v%d : %s = ", in.ID, in.Typ)
	}
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%s const %d", res, in.IntVal)
	case OpNull:
		return res + "null"
	case OpGlobalAddr:
		return fmt.Sprintf("%saddr @%s", res, in.Global.Name)
	case OpParam:
		return fmt.Sprintf("%sparam %d", res, in.ParamIdx)
	case OpPhi:
		parts := make([]string, len(in.Args))
		for i := range in.Args {
			parts[i] = fmt.Sprintf("[%s, b%d]", arg(i), in.PhiPreds[i].ID)
		}
		return res + "phi " + strings.Join(parts, " ")
	case OpBin:
		return fmt.Sprintf("%s%s %s, %s", res, binOpName(in.BinOp), arg(0), arg(1))
	case OpCast:
		return fmt.Sprintf("%scast %s", res, arg(0))
	case OpGEP:
		return fmt.Sprintf("%sgep %s, %s", res, arg(0), arg(1))
	case OpSelect:
		return fmt.Sprintf("%sselect %s, %s, %s", res, arg(0), arg(1), arg(2))
	case OpFreeze:
		return fmt.Sprintf("%sfreeze %s", res, arg(0))
	case OpAlloca:
		return fmt.Sprintf("%salloca x%d", res, in.Count)
	case OpLoad:
		return fmt.Sprintf("%sload %s", res, arg(0))
	case OpStore:
		w := ""
		if in.Widened {
			w = ".wide"
		}
		return fmt.Sprintf("store%s %s, %s", w, arg(0), arg(1))
	case OpCall:
		args := make([]string, len(in.Args))
		for i := range in.Args {
			args[i] = arg(i)
		}
		callee := "<nil>"
		if in.Callee != nil {
			callee = in.Callee.Name
		}
		if in.Typ != nil {
			return fmt.Sprintf("%scall @%s(%s)", res, callee, strings.Join(args, ", "))
		}
		return fmt.Sprintf("call @%s(%s)", callee, strings.Join(args, ", "))
	case OpRet:
		if len(in.Args) > 0 {
			return "ret " + arg(0)
		}
		return "ret"
	case OpBr:
		return fmt.Sprintf("br b%d", in.Targets[0].ID)
	case OpCondBr:
		return fmt.Sprintf("condbr %s, b%d, b%d", arg(0), in.Targets[0].ID, in.Targets[1].ID)
	}
	return res + in.Op.String()
}

func binOpName(k fmt.Stringer) string {
	s := k.String()
	names := map[string]string{
		"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
		"&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
		"==": "eq", "!=": "ne", "<": "lt", ">": "gt", "<=": "le", ">=": "ge",
	}
	if n, ok := names[s]; ok {
		return n
	}
	return s
}
