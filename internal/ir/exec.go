package ir

import (
	"errors"
	"fmt"

	"dcelens/internal/interp"
	"dcelens/internal/sema"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// ErrExecFuel is returned when IR execution exceeds its step budget.
var ErrExecFuel = errors.New("ir: execution fuel exhausted")

// ExecError is a runtime error during IR execution. With valid MiniC input
// and correct passes it indicates a compiler bug, so the message carries the
// offending instruction.
type ExecError struct {
	Fn  string
	In  *Instr
	Msg string
}

func (e *ExecError) Error() string {
	if e.In != nil {
		return fmt.Sprintf("ir exec: %s: %s (at %s)", e.Fn, e.Msg, e.In)
	}
	return fmt.Sprintf("ir exec: %s: %s", e.Fn, e.Msg)
}

// ExecResult mirrors interp.Result for the IR level: exit code, the
// Csmith-style checksum over integer-typed globals, and the set of executed
// external calls (the alive markers as the compiled artifact sees them).
type ExecResult struct {
	ExitCode    int64
	Checksum    uint64
	ExternCalls map[string]int
	Steps       int64
	// GlobalInts holds the final values of integer-typed globals by name —
	// the exact state the checksum hashes. Useful for debugging and for
	// pinpointing which global diverged when checksums differ.
	GlobalInts map[string][]int64
}

// Executed reports whether the external function name was called.
func (r *ExecResult) Executed(name string) bool { return r.ExternCalls[name] > 0 }

// ExecOptions configures IR execution.
type ExecOptions struct {
	Fuel         int64
	MaxCallDepth int
}

// Execute runs the module's main function and returns the observable
// results. The checksum is computed identically to the AST interpreter's
// (integer-typed globals in declaration order), so "optimization preserved
// semantics" is checked by comparing the two.
func Execute(m *Module, opts ExecOptions) (*ExecResult, error) {
	if opts.Fuel <= 0 {
		opts.Fuel = interp.DefaultFuel
	}
	if opts.MaxCallDepth <= 0 {
		opts.MaxCallDepth = interp.DefaultMaxCallDepth
	}
	ex := &executor{
		mod:      m,
		fuel:     opts.Fuel,
		maxDepth: opts.MaxCallDepth,
		globals:  map[*Global]*memObj{},
		result:   &ExecResult{ExternCalls: map[string]int{}},
	}
	ex.initGlobals()
	mainFn := m.LookupFunc("main")
	if mainFn == nil || mainFn.External {
		return nil, &ExecError{Msg: "module has no main"}
	}
	ret, err := ex.call(mainFn, nil)
	if err != nil {
		return nil, err
	}
	ex.result.ExitCode = ret.Int
	ex.result.Checksum = ex.checksum()
	ex.result.Steps = opts.Fuel - ex.fuel
	ex.result.GlobalInts = map[string][]int64{}
	for _, g := range m.Globals {
		if g.Elem.Kind == types.Pointer {
			continue
		}
		o := ex.globals[g]
		vals := make([]int64, len(o.vals))
		for i, v := range o.vals {
			vals[i] = v.Int
		}
		ex.result.GlobalInts[g.Name] = vals
	}
	return ex.result, nil
}

// ---------------------------------------------------------------------------

type memObj struct {
	vals []execVal
	id   int64
	dead bool
}

type execVal struct {
	Int   int64
	Obj   *memObj
	Off   int64
	IsPtr bool
}

func eInt(v int64) execVal              { return execVal{Int: v} }
func ePtr(o *memObj, off int64) execVal { return execVal{Obj: o, Off: off, IsPtr: true} }

func (v execVal) truthy() bool {
	if v.IsPtr {
		return v.Obj != nil
	}
	return v.Int != 0
}

type executor struct {
	mod      *Module
	fuel     int64
	maxDepth int
	depth    int
	nextID   int64
	globals  map[*Global]*memObj
	result   *ExecResult
}

func (ex *executor) newObj(n int) *memObj {
	o := &memObj{vals: make([]execVal, n), id: ex.nextID}
	ex.nextID++
	return o
}

func (ex *executor) initGlobals() {
	for _, g := range ex.mod.Globals {
		o := ex.newObj(g.Len)
		if g.Elem.Kind == types.Pointer {
			for i := range o.vals {
				o.vals[i] = execVal{IsPtr: true}
			}
		}
		ex.globals[g] = o
	}
	// Second phase: initializers may reference other globals' addresses.
	for _, g := range ex.mod.Globals {
		o := ex.globals[g]
		for i, c := range g.Init {
			if i >= len(o.vals) {
				break
			}
			if c.IsAddr {
				if c.Global == nil {
					o.vals[i] = execVal{IsPtr: true}
				} else {
					o.vals[i] = ePtr(ex.globals[c.Global], c.Off)
				}
			} else if g.Elem.Kind != types.Pointer {
				o.vals[i] = eInt(c.Int)
			}
		}
	}
}

func (ex *executor) checksum() uint64 {
	var vals []int64
	for _, g := range ex.mod.Globals {
		if g.Elem.Kind == types.Pointer {
			continue
		}
		o := ex.globals[g]
		for _, v := range o.vals {
			vals = append(vals, v.Int)
		}
	}
	return interp.Checksum(vals)
}

// call executes one function activation.
func (ex *executor) call(f *Func, args []execVal) (execVal, error) {
	if f.External {
		ex.result.ExternCalls[f.Name]++
		if f.Ret != nil && f.Ret.Kind == types.Pointer {
			return execVal{IsPtr: true}, nil
		}
		return eInt(0), nil
	}
	ex.depth++
	if ex.depth > ex.maxDepth {
		return execVal{}, &ExecError{Fn: f.Name, Msg: "call depth exceeded"}
	}
	defer func() { ex.depth-- }()

	vals := make([]execVal, f.NumValues())
	var allocas []*memObj
	defer func() {
		for _, o := range allocas {
			o.dead = true
		}
	}()

	cur := f.Entry()
	var prev *Block
	for {
		ex.fuel--
		if ex.fuel <= 0 {
			return execVal{}, ErrExecFuel
		}
		// Phase 1: evaluate all phis of the block against prev
		// simultaneously (classic parallel-copy semantics).
		var phiVals []execVal
		nphi := 0
		for _, in := range cur.Instrs {
			if in.Op != OpPhi {
				break
			}
			nphi++
			found := false
			for i, pb := range in.PhiPreds {
				if pb == prev {
					phiVals = append(phiVals, vals[in.Args[i].ID])
					found = true
					break
				}
			}
			if !found {
				return execVal{}, &ExecError{Fn: f.Name, In: in, Msg: "phi has no entry for predecessor"}
			}
		}
		for i := 0; i < nphi; i++ {
			vals[cur.Instrs[i].ID] = phiVals[i]
		}

		advanced := false
		for _, in := range cur.Instrs[nphi:] {
			ex.fuel--
			if ex.fuel <= 0 {
				return execVal{}, ErrExecFuel
			}
			switch in.Op {
			case OpConst:
				vals[in.ID] = eInt(in.IntVal)
			case OpNull:
				vals[in.ID] = execVal{IsPtr: true}
			case OpGlobalAddr:
				vals[in.ID] = ePtr(ex.globals[in.Global], 0)
			case OpParam:
				vals[in.ID] = args[in.ParamIdx]
			case OpAlloca:
				o := ex.newObj(in.Count)
				if in.Typ.Elem.Kind == types.Pointer {
					for i := range o.vals {
						o.vals[i] = execVal{IsPtr: true}
					}
				}
				allocas = append(allocas, o)
				vals[in.ID] = ePtr(o, 0)
			case OpBin:
				v, err := ex.bin(f, in, vals[in.Args[0].ID], vals[in.Args[1].ID])
				if err != nil {
					return execVal{}, err
				}
				vals[in.ID] = v
			case OpCast:
				vals[in.ID] = eInt(in.Typ.WrapValue(vals[in.Args[0].ID].Int))
			case OpGEP:
				p := vals[in.Args[0].ID]
				if !p.IsPtr || p.Obj == nil {
					return execVal{}, &ExecError{Fn: f.Name, In: in, Msg: "gep on null pointer"}
				}
				vals[in.ID] = ePtr(p.Obj, p.Off+vals[in.Args[1].ID].Int)
			case OpSelect:
				if vals[in.Args[0].ID].truthy() {
					vals[in.ID] = vals[in.Args[1].ID]
				} else {
					vals[in.ID] = vals[in.Args[2].ID]
				}
			case OpFreeze:
				vals[in.ID] = vals[in.Args[0].ID]
			case OpLoad:
				p := vals[in.Args[0].ID]
				v, err := ex.access(f, in, p)
				if err != nil {
					return execVal{}, err
				}
				vals[in.ID] = *v
			case OpStore:
				p := vals[in.Args[0].ID]
				slot, err := ex.access(f, in, p)
				if err != nil {
					return execVal{}, err
				}
				*slot = vals[in.Args[1].ID]
			case OpCall:
				cargs := make([]execVal, len(in.Args))
				for i, a := range in.Args {
					cargs[i] = vals[a.ID]
				}
				v, err := ex.call(in.Callee, cargs)
				if err != nil {
					return execVal{}, err
				}
				if in.Typ != nil {
					vals[in.ID] = v
				}
			case OpRet:
				if len(in.Args) > 0 {
					return vals[in.Args[0].ID], nil
				}
				return eInt(0), nil
			case OpBr:
				prev, cur = cur, in.Targets[0]
				advanced = true
			case OpCondBr:
				if vals[in.Args[0].ID].truthy() {
					prev, cur = cur, in.Targets[0]
				} else {
					prev, cur = cur, in.Targets[1]
				}
				advanced = true
			default:
				return execVal{}, &ExecError{Fn: f.Name, In: in, Msg: "unknown op"}
			}
			if advanced {
				break
			}
		}
		if !advanced {
			return execVal{}, &ExecError{Fn: f.Name, Msg: fmt.Sprintf("block b%d fell through", cur.ID)}
		}
	}
}

func (ex *executor) access(f *Func, in *Instr, p execVal) (*execVal, error) {
	if !p.IsPtr || p.Obj == nil {
		return nil, &ExecError{Fn: f.Name, In: in, Msg: "null pointer access"}
	}
	if p.Obj.dead {
		return nil, &ExecError{Fn: f.Name, In: in, Msg: "dangling pointer access"}
	}
	if p.Off < 0 || p.Off >= int64(len(p.Obj.vals)) {
		return nil, &ExecError{Fn: f.Name, In: in, Msg: fmt.Sprintf("out-of-bounds access at %d of %d", p.Off, len(p.Obj.vals))}
	}
	return &p.Obj.vals[p.Off], nil
}

func (ex *executor) bin(f *Func, in *Instr, x, y execVal) (execVal, error) {
	if x.IsPtr || y.IsPtr {
		return ex.ptrBin(f, in, x, y)
	}
	opTy := in.Args[0].Typ
	v, ok := sema.EvalBinop(in.BinOp, x.Int, y.Int, opTy, in.Typ)
	if !ok {
		return execVal{}, &ExecError{Fn: f.Name, In: in, Msg: "unsupported binop"}
	}
	return eInt(v), nil
}

func (ex *executor) ptrBin(f *Func, in *Instr, x, y execVal) (execVal, error) {
	b := func(c bool) execVal {
		if c {
			return eInt(1)
		}
		return eInt(0)
	}
	key := func(v execVal) (int64, int64) {
		if v.Obj == nil {
			return -1, 0
		}
		return v.Obj.id, v.Off
	}
	eq := x.IsPtr == y.IsPtr && x.Obj == y.Obj && x.Off == y.Off
	switch in.BinOp {
	case token.EqEq:
		return b(eq), nil
	case token.NotEq:
		return b(!eq), nil
	case token.Lt, token.Gt, token.Le, token.Ge:
		xi, xo := key(x)
		yi, yo := key(y)
		less := xi < yi || (xi == yi && xo < yo)
		switch in.BinOp {
		case token.Lt:
			return b(less), nil
		case token.Gt:
			return b(!less && !eq), nil
		case token.Le:
			return b(less || eq), nil
		case token.Ge:
			return b(!less), nil
		}
	}
	return execVal{}, &ExecError{Fn: f.Name, In: in, Msg: "unsupported pointer binop"}
}
