// Package span records a campaign's execution as a hierarchical span
// timeline: job → attempt → seed stage → unit → phase → pass work spans,
// plus the scheduler's own spans (queue wait, worker busy/idle, sequencer
// reorder-buffer stalls, checkpoint writes). It answers the question the
// aggregate registry (internal/metrics) cannot: "where did *this* run's
// wall clock actually go".
//
// Spans are exported as Chrome trace_event JSON — one complete ("ph":"X")
// event per line — loadable directly in Perfetto or chrome://tracing and
// analyzable offline by cmd/dce-prof. The file is written as a JSON array
// whose closing bracket is intentionally omitted (the trace_event format
// explicitly tolerates this), which is what lets a resumed campaign append
// to a halted run's trace and still produce a loadable file.
//
// Design rules, shared with the rest of the telemetry stack:
//
//   - Nil-safe: a nil *Recorder discards everything, so instrumented code
//     threads it unconditionally and a disabled campaign pays one nil check.
//   - Deterministic mode mirrors -metrics=deterministic: only the logical
//     span categories (seed, unit, phase, pass, checkpoint) are kept —
//     scheduler and job spans depend on worker interleaving and are dropped
//     — and every wall-clock field (ts, dur, tid) renders as zero. Because
//     the corpus layer flushes logical spans through the sequencer in slot
//     order, a deterministic trace is byte-identical across -j values and
//     across halt/resume.
//   - Concurrent-safe: sequence numbers and writes happen under one lock,
//     exactly like the event log, and the optional in-memory tail ring
//     serves the monitor's resumable /timeline endpoint.
package span

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Span categories. Deterministic recorders keep only the logical
// categories whose identity is a pure function of the corpus (CatSeed,
// CatUnit, CatPhase, CatPass, CatCheckpoint); CatJob and CatSched spans
// describe wall-clock scheduling and exist only in wall traces.
const (
	CatJob        = "job"        // campaign / service-attempt envelope
	CatSeed       = "seed"       // a seed's prepare and finalize stages
	CatUnit       = "unit"       // one (seed, config) compilation unit
	CatPhase      = "phase"      // generate/instrument/truth/lower/opt/codegen
	CatPass       = "pass"       // one executed pass instance
	CatCheckpoint = "checkpoint" // checkpoint write
	CatSched      = "sched"      // queue-wait, busy, idle, seq-stall
)

// deterministicCat reports whether spans of category cat survive
// deterministic redaction.
func deterministicCat(cat string) bool {
	switch cat {
	case CatSeed, CatUnit, CatPhase, CatPass, CatCheckpoint:
		return true
	}
	return false
}

// Arg is one key/value detail on a span. Args are rendered in the order
// given (never sorted), so a span's JSON is a pure function of how the
// instrumentation site built it.
type Arg struct {
	Key, Val string
}

// Int64 builds a numeric argument.
func Int64(key string, v int64) Arg { return Arg{key, strconv.FormatInt(v, 10)} }

// Int builds a numeric argument.
func Int(key string, v int) Arg { return Arg{key, strconv.Itoa(v)} }

// Str builds a string argument.
func Str(key, val string) Arg { return Arg{key, val} }

// Bool builds a boolean argument.
func Bool(key string, v bool) Arg { return Arg{key, strconv.FormatBool(v)} }

// Span is one timed interval of campaign work.
type Span struct {
	Name  string // display name: stage, phase, or pass
	Cat   string // one of the Cat* constants
	TID   int    // track: worker index + 1; 0 is the coordinator track
	Start time.Time
	Dur   time.Duration
	Args  []Arg
}

// Entry is one rendered span held in the in-memory tail: its sequence
// number and the trace_event JSON object (no trailing comma or newline).
type Entry struct {
	Seq  int64
	Line string
}

// Recorder serializes spans into a Chrome trace_event stream. All methods
// are nil-safe.
type Recorder struct {
	mu            sync.Mutex
	w             io.Writer
	c             io.Closer
	deterministic bool
	start         time.Time
	seq           int64
	err           error

	// tail is the optional ring of recent spans (KeepTail) behind the
	// monitor's resumable /timeline endpoint. tailHead indexes the oldest.
	tail     []Entry
	tailLen  int
	tailHead int
}

// New returns a wall-clock recorder writing to w; if w is also an
// io.Closer, Close closes it. The stream header (array opener plus a
// metadata record naming the mode) is written immediately.
func New(w io.Writer) *Recorder { return newRecorder(w, false, true) }

// NewDeterministic returns a recorder in deterministic mode: scheduler and
// job spans are dropped and all wall-clock fields render as zero, so the
// resulting trace is byte-identical across worker counts and resumes.
func NewDeterministic(w io.Writer) *Recorder { return newRecorder(w, true, true) }

func newRecorder(w io.Writer, deterministic, header bool) *Recorder {
	r := &Recorder{w: w, deterministic: deterministic, start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		r.c = c
	}
	if header && w != nil {
		mode := "wall"
		if deterministic {
			mode = "deterministic"
		}
		_, r.err = io.WriteString(w, "[\n"+
			`{"name":"process_name","cat":"__metadata","ph":"M","pid":1,"tid":0,"args":{"name":"dcelens","mode":"`+mode+`"}},`+"\n")
	}
	return r
}

// Open opens a file-backed recorder. With resume false the file is
// truncated and a fresh header written; with resume true an existing
// non-empty file is appended to with no new header, so a halted campaign's
// trace plus its resumed continuation reads as one stream (and, in
// deterministic mode, is byte-identical to an uninterrupted run's —
// restored seeds emit no spans). A missing or empty file gets the header.
func Open(path string, resume, deterministic bool) (*Recorder, error) {
	flags := os.O_CREATE | os.O_RDWR
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	header := true
	if resume {
		if st, err := f.Stat(); err == nil && st.Size() > 0 {
			header = false
			// A killed campaign can leave a torn final line with no
			// newline; seal it so the first resumed span starts a fresh
			// line instead of corrupting the torn fragment's parse.
			buf := make([]byte, 1)
			if _, err := f.ReadAt(buf, st.Size()-1); err == nil && buf[0] != '\n' {
				if _, err := f.Write([]byte(",\n")); err != nil {
					f.Close()
					return nil, err
				}
			}
		}
	}
	return newRecorder(f, deterministic, header), nil
}

// Deterministic reports whether the recorder redacts wall-clock fields.
func (r *Recorder) Deterministic() bool { return r != nil && r.deterministic }

// Emit records one span. Deterministic recorders silently drop categories
// whose timing depends on scheduling (CatJob, CatSched). Nil-safe.
func (r *Recorder) Emit(sp Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.deterministic && !deterministicCat(sp.Cat) {
		return
	}
	r.seq++
	line := r.render(sp)
	if len(r.tail) > 0 {
		i := (r.tailHead + r.tailLen) % len(r.tail)
		r.tail[i] = Entry{Seq: r.seq, Line: line}
		if r.tailLen < len(r.tail) {
			r.tailLen++
		} else {
			r.tailHead = (r.tailHead + 1) % len(r.tail)
		}
	}
	if r.w != nil && r.err == nil {
		_, r.err = io.WriteString(r.w, line+",\n")
	}
}

// render serializes one span as a trace_event complete event. Field order is
// fixed so identical spans render identically byte for byte.
func (r *Recorder) render(sp Span) string {
	var b strings.Builder
	b.Grow(96 + 24*len(sp.Args))
	b.WriteString(`{"name":`)
	quoteJSON(&b, sp.Name)
	b.WriteString(`,"cat":`)
	quoteJSON(&b, sp.Cat)
	b.WriteString(`,"ph":"X","ts":`)
	var ts, dur int64
	tid := sp.TID
	if !r.deterministic {
		ts = sp.Start.Sub(r.start).Microseconds()
		dur = sp.Dur.Microseconds()
	} else {
		tid = 0
	}
	b.WriteString(strconv.FormatInt(ts, 10))
	b.WriteString(`,"dur":`)
	b.WriteString(strconv.FormatInt(dur, 10))
	b.WriteString(`,"pid":1,"tid":`)
	b.WriteString(strconv.Itoa(tid))
	if len(sp.Args) > 0 {
		b.WriteString(`,"args":{`)
		for i, a := range sp.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			quoteJSON(&b, a.Key)
			b.WriteByte(':')
			quoteJSON(&b, a.Val)
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	return b.String()
}

// quoteJSON writes s as a JSON string. The span vocabulary is plain ASCII
// (pass names, config strings, decimal numbers); anything unusual is still
// escaped correctly.
func quoteJSON(b *strings.Builder, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}

// KeepTail enables the in-memory span tail with capacity n (the newest n
// spans are retained); n <= 0 disables it. Call before emitting. Nil-safe.
func (r *Recorder) KeepTail(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 {
		r.tail, r.tailLen, r.tailHead = nil, 0, 0
		return
	}
	r.tail = make([]Entry, n)
	r.tailLen, r.tailHead = 0, 0
}

// TailSince returns the buffered spans with sequence numbers strictly
// greater than since, oldest first. Spans older than the tail's capacity
// are gone; callers detect the gap when the first returned seq exceeds
// since+1. Nil-safe (and empty without KeepTail).
func (r *Recorder) TailSince(since int64) []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Entry
	for i := 0; i < r.tailLen; i++ {
		e := r.tail[(r.tailHead+i)%len(r.tail)]
		if e.Seq > since {
			out = append(out, e)
		}
	}
	return out
}

// Seq returns the sequence number of the last recorded span (0 before the
// first). Nil-safe.
func (r *Recorder) Seq() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Close closes the underlying writer when it is closable and returns the
// first write error the recorder swallowed. Nil-safe.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c != nil {
		if cerr := r.c.Close(); r.err == nil {
			r.err = cerr
		}
		r.c = nil
	}
	return r.err
}
