// Trace parsing and critical-path analysis: the offline half of the span
// subsystem, consumed by cmd/dce-prof and rendered by internal/report.
package span

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Event is one parsed trace_event record.
type Event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"` // microseconds
	Dur  int64             `json:"dur"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// End returns the event's closing timestamp in microseconds.
func (e *Event) End() int64 { return e.Ts + e.Dur }

// Trace is a parsed span timeline.
type Trace struct {
	// Deterministic is true when the trace's metadata record declares
	// deterministic mode (every wall-clock field redacted to zero).
	Deterministic bool
	// Events holds the complete ("X") spans in file order — which, for the
	// logical categories, is the corpus's deterministic slot order.
	Events []Event
}

// ParseFile reads and parses a trace written by a Recorder.
func ParseFile(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Parse parses trace_event JSON. It accepts the Recorder's append-friendly
// form — one object per line, trailing commas, no closing bracket — as
// well as a complete well-formed JSON array.
func Parse(data []byte) (*Trace, error) {
	text := strings.TrimSpace(string(data))
	text = strings.TrimPrefix(text, "[")
	text = strings.TrimSuffix(text, "]")
	t := &Trace{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ","))
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("span: line %d: %v", ln+1, err)
		}
		switch e.Ph {
		case "M":
			if e.Args["mode"] == "deterministic" {
				t.Deterministic = true
			}
		case "X":
			t.Events = append(t.Events, e)
		}
	}
	return t, nil
}

// PathEntry is one critical-path row: a work span (or the synthetic idle
// row) and the share of the trace's wall clock attributed to it.
type PathEntry struct {
	Label string
	Us    int64
	Share float64 // of the trace's wall extent
}

// WorkerUtil is one worker's occupancy over the trace extent.
type WorkerUtil struct {
	TID    int
	Items  int // scheduler items executed
	BusyUs int64
	IdleUs int64
	Util   float64 // BusyUs over the trace extent
}

// WaitStats aggregates one family of scheduler wait spans.
type WaitStats struct {
	Count   int
	TotalUs int64
	MaxUs   int64
}

// UnitCost is one (seed, config) unit's cost row.
type UnitCost struct {
	Seed   string
	Config string
	Ok     bool
	Us     int64
}

// Profile is the analyzed form of a trace: what dce-prof renders.
type Profile struct {
	Deterministic bool
	Spans         int   // complete events in the trace
	WallUs        int64 // extent: max end minus min start over work spans
	// CriticalPath walks backward from the last-finishing work span,
	// attributing every microsecond of the extent either to a work span or
	// to IdleUs (no work span covered it: scheduler idle or stall).
	CriticalPath []PathEntry
	IdleUs       int64
	Workers      []WorkerUtil
	QueueWait    WaitStats
	SeqStall     WaitStats
	Units        []UnitCost
}

// workSpan selects the leaf work spans the critical path walks over: a seed's
// prepare/finalize stages and its (seed, config) units. Phase and pass
// spans nest inside these; scheduler spans describe waiting, not work.
func workSpan(e *Event) bool { return e.Cat == CatSeed || e.Cat == CatUnit }

// Analyze reduces a trace to its profile. topK bounds the slowest-units
// table (<= 0 keeps every unit). Deterministic traces carry no wall-clock
// information: the critical path and worker tables are empty, and the unit
// table lists every unit in trace (slot) order with zero cost — rendered
// redacted, it is byte-identical across runs.
func Analyze(t *Trace, topK int) *Profile {
	p := &Profile{Deterministic: t.Deterministic, Spans: len(t.Events)}
	for i := range t.Events {
		e := &t.Events[i]
		switch {
		case e.Cat == CatUnit:
			p.Units = append(p.Units, UnitCost{
				Seed:   e.Args["seed"],
				Config: e.Name,
				Ok:     e.Args["ok"] != "false",
				Us:     e.Dur,
			})
		case e.Cat == CatSched && e.Name == "queue-wait":
			observeWait(&p.QueueWait, e.Dur)
		case e.Cat == CatSched && e.Name == "seq-stall":
			observeWait(&p.SeqStall, e.Dur)
		}
	}
	if !t.Deterministic {
		p.analyzeWall(t)
		sort.SliceStable(p.Units, func(i, j int) bool { return p.Units[i].Us > p.Units[j].Us })
	}
	if topK > 0 && len(p.Units) > topK {
		p.Units = p.Units[:topK]
	}
	return p
}

func observeWait(w *WaitStats, us int64) {
	w.Count++
	w.TotalUs += us
	if us > w.MaxUs {
		w.MaxUs = us
	}
}

// analyzeWall computes the wall-clock tables: trace extent, per-worker
// utilization, and the critical path.
func (p *Profile) analyzeWall(t *Trace) {
	var work []*Event
	byTID := map[int]*WorkerUtil{}
	worker := func(tid int) *WorkerUtil {
		u := byTID[tid]
		if u == nil {
			u = &WorkerUtil{TID: tid}
			byTID[tid] = u
		}
		return u
	}
	for i := range t.Events {
		e := &t.Events[i]
		if workSpan(e) {
			work = append(work, e)
		}
		if e.Cat == CatSched {
			switch e.Name {
			case "busy":
				u := worker(e.TID)
				u.Items++
				u.BusyUs += e.Dur
			case "idle":
				worker(e.TID).IdleUs += e.Dur
			}
		}
	}
	if len(work) == 0 {
		return
	}
	origin, end := work[0].Ts, work[0].End()
	for _, e := range work[1:] {
		if e.Ts < origin {
			origin = e.Ts
		}
		if e.End() > end {
			end = e.End()
		}
	}
	p.WallUs = end - origin

	for _, u := range byTID {
		if p.WallUs > 0 {
			u.Util = float64(u.BusyUs) / float64(p.WallUs)
		}
		p.Workers = append(p.Workers, *u)
	}
	sort.Slice(p.Workers, func(i, j int) bool { return p.Workers[i].TID < p.Workers[j].TID })

	// Backward walk: from the trace's end, repeatedly credit the work span
	// that reaches furthest toward the cursor, then jump to its start. Time
	// no span covers is idle (the scheduler had nothing ready, or the
	// sequencer was the only thing running).
	credit := map[*Event]int64{}
	cursor := end
	for cursor > origin {
		var best *Event
		var bestEnd int64
		for _, e := range work {
			if e.Ts >= cursor {
				continue
			}
			clipped := e.End()
			if clipped > cursor {
				clipped = cursor
			}
			if best == nil || clipped > bestEnd || (clipped == bestEnd && e.Ts < best.Ts) {
				best, bestEnd = e, clipped
			}
		}
		if best == nil {
			p.IdleUs += cursor - origin
			break
		}
		if bestEnd < cursor {
			p.IdleUs += cursor - bestEnd
		}
		credit[best] += bestEnd - best.Ts
		cursor = best.Ts
	}
	for _, e := range work {
		if us := credit[e]; us > 0 {
			p.CriticalPath = append(p.CriticalPath, PathEntry{Label: workLabel(e), Us: us})
		}
	}
	sort.SliceStable(p.CriticalPath, func(i, j int) bool {
		if p.CriticalPath[i].Us != p.CriticalPath[j].Us {
			return p.CriticalPath[i].Us > p.CriticalPath[j].Us
		}
		return p.CriticalPath[i].Label < p.CriticalPath[j].Label
	})
	if p.WallUs > 0 {
		for i := range p.CriticalPath {
			p.CriticalPath[i].Share = float64(p.CriticalPath[i].Us) / float64(p.WallUs)
		}
	}
}

// workLabel names one work span for the critical-path table.
func workLabel(e *Event) string {
	seed := e.Args["seed"]
	if e.Cat == CatUnit {
		return fmt.Sprintf("unit seed=%s %s", seed, e.Name)
	}
	return fmt.Sprintf("%s seed=%s", e.Name, seed)
}
