package span

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// skewedTrace records a synthetic campaign where one seed's unit dominates
// the wall clock: worker 1 spends ~9.5s on seed 1's -O3 unit while worker 2
// finishes two small units early and idles, and the sequencer stalls
// holding worker 2's completed slots behind the slow seed.
func skewedTrace(t *testing.T) *Trace {
	t.Helper()
	var buf bytes.Buffer
	r := New(&buf)
	base := time.Now()
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	r.Emit(Span{Name: "llvm-sim -O3", Cat: CatUnit, TID: 1, Start: at(0), Dur: ms(9500),
		Args: []Arg{Int64("seed", 1), Bool("ok", true)}})
	r.Emit(Span{Name: "gcc-sim -O1", Cat: CatUnit, TID: 2, Start: at(0), Dur: ms(200),
		Args: []Arg{Int64("seed", 2), Bool("ok", true)}})
	r.Emit(Span{Name: "gcc-sim -O2", Cat: CatUnit, TID: 2, Start: at(200), Dur: ms(100),
		Args: []Arg{Int64("seed", 2), Bool("ok", false)}})
	r.Emit(Span{Name: "busy", Cat: CatSched, TID: 1, Start: at(0), Dur: ms(9500)})
	r.Emit(Span{Name: "busy", Cat: CatSched, TID: 2, Start: at(0), Dur: ms(300)})
	r.Emit(Span{Name: "idle", Cat: CatSched, TID: 2, Start: at(300), Dur: ms(9200)})
	r.Emit(Span{Name: "queue-wait", Cat: CatSched, TID: 2, Start: at(190), Dur: ms(10)})
	r.Emit(Span{Name: "seq-stall", Cat: CatSched, TID: 0, Start: at(300), Dur: ms(9200),
		Args: []Arg{Int("slot", 5)}})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAnalyzeSkewedCriticalPath(t *testing.T) {
	p := Analyze(skewedTrace(t), 0)
	if p.Deterministic {
		t.Fatal("wall trace analyzed as deterministic")
	}
	if len(p.CriticalPath) == 0 {
		t.Fatal("no critical path")
	}
	top := p.CriticalPath[0]
	if !strings.Contains(top.Label, "seed=1") || !strings.Contains(top.Label, "llvm-sim -O3") {
		t.Fatalf("critical path head = %q, want the slow seed's unit", top.Label)
	}
	// The acceptance bar: the deliberately slow seed's unit span carries at
	// least 90% of the trace's wall clock.
	if top.Share < 0.9 {
		t.Fatalf("slow unit's wall share = %.3f, want >= 0.9", top.Share)
	}
	if p.SeqStall.Count != 1 || p.SeqStall.TotalUs < 9_000_000 {
		t.Fatalf("sequencer stall not reported: %+v", p.SeqStall)
	}
	if p.QueueWait.Count != 1 || p.QueueWait.MaxUs < 9_000 {
		t.Fatalf("queue wait not reported: %+v", p.QueueWait)
	}
	if len(p.Workers) != 2 {
		t.Fatalf("workers = %+v, want 2 rows", p.Workers)
	}
	if w := p.Workers[0]; w.TID != 1 || w.Util < 0.9 {
		t.Fatalf("worker 1 utilization = %+v, want ~1.0", w)
	}
	if w := p.Workers[1]; w.TID != 2 || w.Util > 0.1 {
		t.Fatalf("worker 2 utilization = %+v, want ~0.03", w)
	}
	// Units sort slowest-first in wall mode.
	if len(p.Units) != 3 || p.Units[0].Seed != "1" || !p.Units[0].Ok || p.Units[2].Ok {
		t.Fatalf("units = %+v", p.Units)
	}
}

func TestAnalyzeTopKAndDeterministic(t *testing.T) {
	p := Analyze(skewedTrace(t), 2)
	if len(p.Units) != 2 {
		t.Fatalf("topK ignored: %d units", len(p.Units))
	}

	var buf bytes.Buffer
	r := NewDeterministic(&buf)
	now := time.Now()
	r.Emit(Span{Name: "gcc-sim -O0", Cat: CatUnit, TID: 1, Start: now, Dur: time.Second,
		Args: []Arg{Int64("seed", 3)}})
	r.Emit(Span{Name: "gcc-sim -O1", Cat: CatUnit, TID: 2, Start: now, Dur: 2 * time.Second,
		Args: []Arg{Int64("seed", 3)}})
	tr, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	dp := Analyze(tr, 0)
	if !dp.Deterministic {
		t.Fatal("deterministic flag lost")
	}
	if len(dp.CriticalPath) != 0 || len(dp.Workers) != 0 || dp.WallUs != 0 {
		t.Fatalf("deterministic profile must carry no wall tables: %+v", dp)
	}
	// File (slot) order, not cost order, and costs redacted to zero.
	if len(dp.Units) != 2 || dp.Units[0].Config != "gcc-sim -O0" || dp.Units[0].Us != 0 {
		t.Fatalf("deterministic units = %+v", dp.Units)
	}
}
