package span

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRecorderHeaderAndLines(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	r.Emit(Span{Name: "unit", Cat: CatUnit, TID: 3, Start: time.Now(), Dur: time.Millisecond,
		Args: []Arg{Int64("seed", 7), Bool("ok", true)}})
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "[\n") {
		t.Fatalf("missing array opener:\n%s", out)
	}
	if strings.Contains(out, "]") {
		t.Fatalf("trace must stay unterminated (appendable):\n%s", out)
	}
	if !strings.Contains(out, `"cat":"__metadata"`) || !strings.Contains(out, `"mode":"wall"`) {
		t.Fatalf("missing wall metadata record:\n%s", out)
	}
	if !strings.Contains(out, `"args":{"seed":"7","ok":"true"}`) {
		t.Fatalf("args not rendered in insertion order:\n%s", out)
	}
	tr, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tr.Deterministic {
		t.Fatal("wall trace parsed as deterministic")
	}
	if len(tr.Events) != 1 || tr.Events[0].Name != "unit" || tr.Events[0].TID != 3 {
		t.Fatalf("round trip lost the span: %+v", tr.Events)
	}
}

func TestDeterministicRedaction(t *testing.T) {
	var buf bytes.Buffer
	r := NewDeterministic(&buf)
	r.Emit(Span{Name: "busy", Cat: CatSched, TID: 1, Start: time.Now(), Dur: time.Second})
	r.Emit(Span{Name: "campaign", Cat: CatJob, TID: 0, Start: time.Now(), Dur: time.Second})
	r.Emit(Span{Name: "gcc-sim -O2", Cat: CatUnit, TID: 5, Start: time.Now(), Dur: time.Second,
		Args: []Arg{Int64("seed", 1)}})
	if got := r.Seq(); got != 1 {
		t.Fatalf("sched and job spans must be dropped: seq = %d, want 1", got)
	}
	out := buf.String()
	if !strings.Contains(out, `"mode":"deterministic"`) {
		t.Fatalf("missing deterministic metadata:\n%s", out)
	}
	if !strings.Contains(out, `"ts":0,"dur":0,"pid":1,"tid":0`) {
		t.Fatalf("wall fields not redacted:\n%s", out)
	}
	tr, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !tr.Deterministic || len(tr.Events) != 1 {
		t.Fatalf("deterministic=%v events=%d, want true/1", tr.Deterministic, len(tr.Events))
	}
}

func TestRenderEscaping(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	r.Emit(Span{Name: "we\"ird\\name\x01", Cat: CatPhase})
	if _, err := Parse(buf.Bytes()); err != nil {
		t.Fatalf("escaped span does not re-parse: %v\n%s", err, buf.String())
	}
}

func TestTailRing(t *testing.T) {
	r := New(nil)
	r.KeepTail(3)
	for i := 0; i < 5; i++ {
		r.Emit(Span{Name: "p", Cat: CatPhase})
	}
	got := r.TailSince(0)
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("tail = %+v, want seqs 3..5", got)
	}
	if got := r.TailSince(4); len(got) != 1 || got[0].Seq != 5 {
		t.Fatalf("TailSince(4) = %+v, want just seq 5", got)
	}
	if got := r.TailSince(5); len(got) != 0 {
		t.Fatalf("TailSince(5) = %+v, want empty", got)
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Emit(Span{Name: "x", Cat: CatUnit})
	r.KeepTail(4)
	if r.Seq() != 0 || r.TailSince(0) != nil || r.Deterministic() {
		t.Fatal("nil recorder must be inert")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestOpenResumeAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	r1, err := Open(path, false, true)
	if err != nil {
		t.Fatal(err)
	}
	r1.Emit(Span{Name: "a", Cat: CatUnit})
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	first, _ := os.ReadFile(path)

	r2, err := Open(path, true, true)
	if err != nil {
		t.Fatal(err)
	}
	r2.Emit(Span{Name: "b", Cat: CatUnit})
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	both, _ := os.ReadFile(path)
	if !bytes.HasPrefix(both, first) {
		t.Fatalf("resume rewrote the existing prefix:\n%s", both)
	}
	if c := bytes.Count(both, []byte("__metadata")); c != 1 {
		t.Fatalf("resume must not write a second header (got %d)", c)
	}
	tr, err := ParseFile(path)
	if err != nil {
		t.Fatalf("ParseFile after resume: %v", err)
	}
	if len(tr.Events) != 2 || tr.Events[0].Name != "a" || tr.Events[1].Name != "b" {
		t.Fatalf("appended trace events = %+v", tr.Events)
	}

	// Resuming a missing file still writes the header.
	fresh := filepath.Join(t.TempDir(), "missing.json")
	r3, err := Open(fresh, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := r3.Close(); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(fresh)
	if !bytes.Contains(b, []byte("__metadata")) {
		t.Fatalf("resume of an empty file must write the header:\n%s", b)
	}
}

func TestParseAcceptsClosedArray(t *testing.T) {
	text := "[\n" +
		`{"name":"u","cat":"unit","ph":"X","ts":1,"dur":2,"pid":1,"tid":1},` + "\n" +
		`{"name":"v","cat":"unit","ph":"X","ts":3,"dur":4,"pid":1,"tid":2}` + "\n]"
	tr, err := Parse([]byte(text))
	if err != nil {
		t.Fatalf("Parse(closed array): %v", err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(tr.Events))
	}
}

func TestCloseReturnsWriteError(t *testing.T) {
	r := New(failWriter{})
	r.Emit(Span{Name: "u", Cat: CatUnit})
	if err := r.Close(); err == nil {
		t.Fatal("Close must surface the swallowed write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, os.ErrClosed }
