package monitor

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dcelens/internal/harness"
	"dcelens/internal/metrics"
	"dcelens/internal/span"
)

// get performs one request against the server's mux and returns the
// response.
func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %q)", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding body %q: %v", rec.Body.String(), err)
	}
}

func TestHealthz(t *testing.T) {
	s := New("dce-test", nil, nil, nil)
	var body struct {
		Status string `json:"status"`
		Tool   string `json:"tool"`
	}
	decode(t, get(t, s, "/healthz"), &body)
	if body.Status != "ok" || body.Tool != "dce-test" {
		t.Fatalf("healthz = %+v, want status ok, tool dce-test", body)
	}
}

func TestMetricsJSONAndExposition(t *testing.T) {
	reg := metrics.New()
	reg.Counter("campaign.seeds.analyzed").Add(7)
	reg.Gauge("campaign.workers").Set(3)
	reg.Histogram("pass.gvn").Observe(2 * time.Millisecond)
	s := New("dce-test", reg, nil, nil)

	var snap metrics.RegistrySnapshot
	decode(t, get(t, s, "/metrics?format=json"), &snap)
	if snap.Counters["campaign.seeds.analyzed"] != 7 {
		t.Fatalf("json counter = %d, want 7", snap.Counters["campaign.seeds.analyzed"])
	}
	if snap.Histograms["pass.gvn"].Count != 1 {
		t.Fatalf("json histogram count = %d, want 1", snap.Histograms["pass.gvn"].Count)
	}

	rec := get(t, s, "/metrics")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("exposition content type = %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"# TYPE dcelens_campaign_seeds_analyzed counter",
		"dcelens_campaign_seeds_analyzed 7",
		"dcelens_campaign_workers 3",
		"# TYPE dcelens_pass_gvn_seconds histogram",
		"dcelens_pass_gvn_seconds_count 1",
		`dcelens_pass_gvn_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestMetricsNilRegistry: a server over a nil registry serves empty but
// valid bodies rather than panicking.
func TestMetricsNilRegistry(t *testing.T) {
	s := New("dce-test", nil, nil, nil)
	var snap metrics.RegistrySnapshot
	decode(t, get(t, s, "/metrics?format=json"), &snap)
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	if rec := get(t, s, "/metrics"); rec.Code != http.StatusOK {
		t.Fatalf("nil registry exposition status = %d", rec.Code)
	}
}

func TestProgressEndpoint(t *testing.T) {
	reg := metrics.New()
	reg.Counter(metrics.CounterSeedsAnalyzed).Add(4)
	reg.Counter(metrics.CounterCrashes).Add(2)
	reg.Histogram(metrics.HistCampaignSeed).Observe(10 * time.Millisecond)
	reg.Counter(metrics.CounterUnits).Add(8)
	reg.Counter(metrics.CounterPassVisited).Add(30)
	reg.Counter(metrics.CounterPassSkipped).Add(70)
	p := harness.NewProgress(10, 2, reg)
	p.AddFindings("f1", "f2")
	s := New("dce-test", reg, p, nil)

	var body ProgressReply
	decode(t, get(t, s, "/progress"), &body)
	if body.SeedsTotal != 10 || body.SeedsDone != 4 {
		t.Fatalf("progress seeds = %d/%d, want 4/10", body.SeedsDone, body.SeedsTotal)
	}
	if body.Findings != 2 {
		t.Fatalf("progress findings = %d, want 2", body.Findings)
	}
	if body.Failures["crash"] != 2 {
		t.Fatalf("progress failures = %v, want crash=2", body.Failures)
	}
	if !body.EtaKnown {
		t.Fatal("ETA should be known after an observed seed")
	}
	if body.Units != 8 || body.UnitsPerSec <= 0 {
		t.Fatalf("progress units = %d at %g/s, want 8 at > 0", body.Units, body.UnitsPerSec)
	}
	if !body.PassSkipKnown || body.PassSkipRate != 0.7 {
		t.Fatalf("progress skip rate = %g (known=%v), want 0.7", body.PassSkipRate, body.PassSkipKnown)
	}
}

// TestProgressNil: /progress over a nil Progress reports a zero campaign.
func TestProgressNil(t *testing.T) {
	s := New("dce-test", nil, nil, nil)
	var body ProgressReply
	decode(t, get(t, s, "/progress"), &body)
	if body.SeedsTotal != 0 || body.SeedsDone != 0 || body.EtaKnown {
		t.Fatalf("nil progress = %+v, want zeroes", body)
	}
}

func TestFindingsEndpoint(t *testing.T) {
	p := harness.NewProgress(1, 1, nil)
	p.AddFindings(map[string]any{"kind": "compiler-diff", "seed": 3})
	s := New("dce-test", nil, p, nil)

	var body struct {
		Count    int              `json:"count"`
		Findings []map[string]any `json:"findings"`
	}
	decode(t, get(t, s, "/findings"), &body)
	if body.Count != 1 || len(body.Findings) != 1 {
		t.Fatalf("findings = %+v, want one", body)
	}
	if body.Findings[0]["kind"] != "compiler-diff" {
		t.Fatalf("finding = %v", body.Findings[0])
	}

	// Empty progress serves an empty array, not null.
	empty := New("dce-test", nil, nil, nil)
	rec := get(t, empty, "/findings")
	if !strings.Contains(rec.Body.String(), `"findings": []`) {
		t.Fatalf("empty findings body = %q, want empty array", rec.Body.String())
	}
}

func TestEventsSinceFiltering(t *testing.T) {
	log := metrics.NewEventLog(io.Discard)
	log.KeepTail(16)
	for i := 0; i < 5; i++ {
		log.Emit("seed_end", map[string]any{"seed": i})
	}
	s := New("dce-test", nil, nil, log)

	rec := get(t, s, "/events?since=3")
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type = %q", ct)
	}
	if got := rec.Header().Get("X-Dcelens-Last-Seq"); got != "5" {
		t.Fatalf("last-seq header = %q, want 5", got)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("since=3 returned %d lines, want 2: %q", len(lines), rec.Body.String())
	}
	var first struct {
		Seq int64 `json:"seq"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil || first.Seq != 4 {
		t.Fatalf("first resumed event = %q (err %v), want seq 4", lines[0], err)
	}

	// since defaults to 0: the whole buffered tail.
	all := get(t, s, "/events")
	if n := len(strings.Split(strings.TrimSpace(all.Body.String()), "\n")); n != 5 {
		t.Fatalf("unfiltered tail has %d lines, want 5", n)
	}
	// Caught-up client: empty body, header still reports the head.
	caught := get(t, s, "/events?since=5")
	if caught.Body.Len() != 0 || caught.Header().Get("X-Dcelens-Last-Seq") != "5" {
		t.Fatalf("caught-up read = %q / seq %q", caught.Body.String(), caught.Header().Get("X-Dcelens-Last-Seq"))
	}
}

func TestEventsBadSince(t *testing.T) {
	s := New("dce-test", nil, nil, nil)
	for _, bad := range []string{"x", "-1", "1.5"} {
		rec := get(t, s, "/events?since="+bad)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("since=%s status = %d, want 400", bad, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("since=%s content type = %q, want application/json", bad, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
			t.Fatalf("since=%s body = %q (err %v), want a JSON error", bad, rec.Body.String(), err)
		}
	}
}

// TestReadOnlyMethods: every monitoring endpoint rejects non-GET methods
// with 405 and an Allow header; GET keeps working.
func TestReadOnlyMethods(t *testing.T) {
	log := metrics.NewEventLog(io.Discard)
	log.KeepTail(4)
	s := New("dce-test", metrics.New(), harness.NewProgress(1, 1, nil), log)
	h := s.Handler()
	for _, path := range []string{"/healthz", "/metrics", "/progress", "/findings", "/events"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodHead} {
			req := httptest.NewRequest(method, path, strings.NewReader("{}"))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s = %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != http.MethodGet {
				t.Fatalf("%s %s Allow = %q, want GET", method, path, allow)
			}
		}
		if rec := get(t, s, path); rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d after method gating, want 200", path, rec.Code)
		}
	}
}

// TestWriteJSONEncodeError: an unencodable value yields a 500 before any
// body byte and increments the encode-error counter.
func TestWriteJSONEncodeError(t *testing.T) {
	reg := metrics.New()
	rec := httptest.NewRecorder()
	WriteJSON(rec, reg, math.NaN()) // NaN has no JSON encoding
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if got := reg.Counter(CounterEncodeErrors).Value(); got != 1 {
		t.Fatalf("encode-error counter = %d, want 1", got)
	}
	if got := reg.Counter(CounterWriteErrors).Value(); got != 0 {
		t.Fatalf("write-error counter = %d, want 0", got)
	}
}

// failingWriter satisfies http.ResponseWriter but rejects every body write,
// modelling a client that hung up mid-response.
type failingWriter struct {
	header http.Header
}

func (f *failingWriter) Header() http.Header       { return f.header }
func (f *failingWriter) WriteHeader(int)           {}
func (f *failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// TestWriteJSONWriteError: a mid-body write failure cannot change the
// committed status, so it surfaces through the write-error counter.
func TestWriteJSONWriteError(t *testing.T) {
	reg := metrics.New()
	WriteJSON(&failingWriter{header: http.Header{}}, reg, map[string]int{"a": 1})
	if got := reg.Counter(CounterWriteErrors).Value(); got != 1 {
		t.Fatalf("write-error counter = %d, want 1", got)
	}
	if got := reg.Counter(CounterEncodeErrors).Value(); got != 0 {
		t.Fatalf("encode-error counter = %d, want 0", got)
	}
}

// TestStartEphemeral: Start on port 0 binds an ephemeral port and serves
// over real TCP.
func TestStartEphemeral(t *testing.T) {
	s := New("dce-test", nil, nil, nil)
	run, err := Start("127.0.0.1:0", s)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer run.Close()
	resp, err := http.Get("http://" + run.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"ok"`) {
		t.Fatalf("healthz over TCP = %d %q", resp.StatusCode, b)
	}
}

// TestExpositionCumulativeBuckets: bucket counts accumulate and end at the
// +Inf bucket equal to _count.
func TestExpositionCumulativeBuckets(t *testing.T) {
	reg := metrics.New()
	h := reg.Histogram("pass.x")
	h.Observe(1 * time.Microsecond)
	h.Observe(2 * time.Microsecond)
	h.Observe(1 * time.Hour) // overflow bucket
	text := Exposition(reg.Snapshot())
	if !strings.Contains(text, `dcelens_pass_x_seconds_bucket{le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket:\n%s", text)
	}
	if !strings.Contains(text, "dcelens_pass_x_seconds_count 3") {
		t.Fatalf("missing count:\n%s", text)
	}
	// Cumulative: every bucket value must be non-decreasing in render order.
	last := int64(-1)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "dcelens_pass_x_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmtSscan(line, &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
}

// fmtSscan pulls the trailing integer sample value off an exposition line.
func fmtSscan(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	n, err := json.Number(line[i+1:]).Int64()
	*v = n
	return 1, err
}

func TestPromName(t *testing.T) {
	if got := promName("campaign.seeds.analyzed"); got != "dcelens_campaign_seeds_analyzed" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("pass.dce-sweep"); got != "dcelens_pass_dce_sweep" {
		t.Fatalf("promName = %q", got)
	}
}

func TestTimelineEndpoint(t *testing.T) {
	rec := span.New(io.Discard)
	rec.KeepTail(16)
	for i := 0; i < 5; i++ {
		rec.Emit(span.Span{Name: "gcc-sim -O2", Cat: span.CatUnit, TID: 1,
			Start: time.Now(), Dur: time.Millisecond,
			Args: []span.Arg{span.Int("seed", i)}})
	}
	s := New("dce-test", nil, nil, nil)
	s.Spans = rec

	resp := get(t, s, "/timeline?since=3")
	if ct := resp.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("timeline content type = %q", ct)
	}
	if got := resp.Header().Get("X-Dcelens-Last-Seq"); got != "5" {
		t.Fatalf("last-seq header = %q, want 5", got)
	}
	lines := strings.Split(strings.TrimSpace(resp.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("since=3 returned %d lines, want 2: %q", len(lines), resp.Body.String())
	}
	// Each served line is one trace_event object a client can accumulate.
	tr, err := span.Parse([]byte(lines[0] + "\n" + lines[1]))
	if err != nil || len(tr.Events) != 2 {
		t.Fatalf("served lines do not parse as trace events: %v", err)
	}

	if bad := get(t, s, "/timeline?since=-1"); bad.Code != http.StatusBadRequest {
		t.Fatalf("since=-1 status = %d, want 400", bad.Code)
	}
	// No recorder attached: empty but valid.
	none := get(t, New("dce-test", nil, nil, nil), "/timeline")
	if none.Code != http.StatusOK || none.Body.Len() != 0 || none.Header().Get("X-Dcelens-Last-Seq") != "0" {
		t.Fatalf("nil recorder timeline = %d %q", none.Code, none.Body.String())
	}
}

// TestOccupancyAndDerivedGauges: worker occupancy (from the scheduler
// probe's busy counters) reaches both /progress and the Prometheus text
// exposition, alongside the derived throughput gauges.
func TestOccupancyAndDerivedGauges(t *testing.T) {
	reg := metrics.New()
	reg.Counter(metrics.CounterUnits).Add(10)
	reg.Counter(metrics.CounterPassVisited).Add(50)
	reg.Counter(metrics.CounterPassSkipped).Add(50)
	p := harness.NewProgress(10, 2, reg)
	time.Sleep(2 * time.Millisecond) // let elapsed > 0
	// Pretend worker 0 was busy for roughly the whole elapsed window.
	reg.Counter(metrics.WorkerBusyCounter(0)).Add(p.Elapsed().Nanoseconds())
	s := New("dce-test", reg, p, nil)

	var body ProgressReply
	decode(t, get(t, s, "/progress"), &body)
	if len(body.WorkerOccupancy) != 2 {
		t.Fatalf("worker_occupancy = %v, want 2 entries", body.WorkerOccupancy)
	}
	if body.WorkerOccupancy[0] <= 0.5 || body.WorkerOccupancy[1] != 0 {
		t.Fatalf("worker_occupancy = %v, want [~1, 0]", body.WorkerOccupancy)
	}

	text := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"# TYPE dcelens_units_per_sec gauge",
		"# TYPE dcelens_pass_skip_rate gauge",
		"dcelens_pass_skip_rate 0.5",
		"# TYPE dcelens_worker_occupancy gauge",
		`dcelens_worker_occupancy{worker="0"}`,
		`dcelens_worker_occupancy{worker="1"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// Deterministic registries keep occupancy out of every surface.
	dreg := metrics.NewDeterministic()
	dp := harness.NewProgress(10, 2, dreg)
	ds := New("dce-test", dreg, dp, nil)
	var dbody ProgressReply
	decode(t, get(t, ds, "/progress"), &dbody)
	if dbody.WorkerOccupancy != nil {
		t.Fatalf("deterministic worker_occupancy = %v, want absent", dbody.WorkerOccupancy)
	}
	if dtext := get(t, ds, "/metrics").Body.String(); strings.Contains(dtext, "worker_occupancy") {
		t.Fatalf("deterministic exposition leaked occupancy:\n%s", dtext)
	}
}

// TestDerivedGaugesSingleSnapshot pins the derived-gauge drift fix: a
// request computes its derived gauges once, from the same registry snapshot
// its metrics body is built from. Advancing the live registry after the
// snapshot must not leak into the derivation (the old text path re-read the
// live registry at a second scrape point), and the JSON and text renderings
// of the same server state must agree on the derived values.
func TestDerivedGaugesSingleSnapshot(t *testing.T) {
	reg := metrics.New()
	reg.Counter(metrics.CounterPassVisited).Add(90)
	reg.Counter(metrics.CounterPassSkipped).Add(10)
	snap := reg.Snapshot()
	// The campaign races ahead between the snapshot and the derivation.
	reg.Counter(metrics.CounterPassVisited).Add(900)
	d := NewDerivedGauges(snap, nil)
	if !d.PassSkipKnown || d.PassSkipRate != 0.1 {
		t.Fatalf("derived skip rate = %v (known=%v), want 0.1 from the snapshot, not the live registry",
			d.PassSkipRate, d.PassSkipKnown)
	}

	// Request-level agreement: the JSON body's derived section and the text
	// exposition report the same value for the same registry state.
	s := New("dce-test", reg, nil, nil)
	var body MetricsReply
	decode(t, get(t, s, "/metrics?format=json"), &body)
	if !body.Derived.PassSkipKnown || body.Derived.PassSkipRate != 0.01 {
		t.Fatalf("json derived skip rate = %v (known=%v), want 0.01",
			body.Derived.PassSkipRate, body.Derived.PassSkipKnown)
	}
	if body.Counters[metrics.CounterPassVisited] != 990 {
		t.Fatalf("json snapshot visited = %d, want 990", body.Counters[metrics.CounterPassVisited])
	}
	text := get(t, s, "/metrics").Body.String()
	if !strings.Contains(text, "dcelens_pass_skip_rate 0.01\n") {
		t.Fatalf("exposition skip rate disagrees with json derived value:\n%s", text)
	}
}

// TestRemarksEndpoint: /remarks serves the remark log's tail with the same
// resumable since-contract as /events, and degrades to an empty body when
// no remark log is attached.
func TestRemarksEndpoint(t *testing.T) {
	rl := metrics.NewEventLog(io.Discard)
	rl.KeepTail(16)
	rl.Emit("remarks", map[string]any{"seed": int64(7), "applied": map[string]int{"dce": 3}})
	rl.Emit("remarks", map[string]any{"seed": int64(8), "reasons": map[string]int{"alias-unknown": 2}})
	s := New("dce-test", nil, nil, nil)
	s.Remarks = rl

	rec := get(t, s, "/remarks")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if got := rec.Header().Get("X-Dcelens-Last-Seq"); got != "2" {
		t.Fatalf("last-seq header = %q, want 2", got)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"seed":7`) || !strings.Contains(lines[1], "alias-unknown") {
		t.Fatalf("remarks body = %q", rec.Body.String())
	}

	rec = get(t, s, "/remarks?since=1")
	if lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n"); len(lines) != 1 || !strings.Contains(lines[0], `"seed":8`) {
		t.Fatalf("resumed remarks body = %q", rec.Body.String())
	}
	if rec := get(t, s, "/remarks?since=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad since status = %d, want 400", rec.Code)
	}

	// No remark log attached: empty but valid.
	bare := New("dce-test", nil, nil, nil)
	if rec := get(t, bare, "/remarks"); rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "" {
		t.Fatalf("bare /remarks = %d %q, want empty 200", rec.Code, rec.Body.String())
	}
}
