// Package monitor is the live campaign monitoring server: a stdlib-only
// net/http server embedded in a running campaign (dce-campaign -serve) that
// exposes the telemetry the campaign is already collecting — the metrics
// registry, the harness progress view, and the JSONL event log — over five
// read-only endpoints:
//
//	/healthz            liveness: tool name and uptime
//	/metrics            Prometheus-style text exposition of the registry
//	/metrics?format=json  the registry snapshot as JSON (plus derived gauges)
//	/progress           seeds done/total, failure-kind counts, ETA, occupancy
//	/findings           the findings discovered so far, as JSON
//	/events?since=N     resumable tail of the event log (JSONL, seq > N)
//	/timeline?since=N   resumable tail of the span timeline (JSONL, seq > N)
//	/remarks?since=N    resumable tail of the remark log (JSONL, seq > N)
//
// The server only reads; every source it serves is already safe for
// concurrent use (atomic registry collectors, the progress mutex, the event
// log's tail ring), so serving adds nothing to the campaign's hot path
// beyond what a request itself costs (BenchmarkMonitorOverhead gates this).
package monitor

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"dcelens/internal/harness"
	"dcelens/internal/metrics"
	"dcelens/internal/span"
)

// Server bundles a campaign's observable state behind an http.Handler. Any
// field may be nil; the corresponding endpoints degrade to empty-but-valid
// responses (the sources' nil-safety does the work).
type Server struct {
	// Tool names the serving binary in /healthz, e.g. "dce-campaign".
	Tool string
	// Reg is the campaign's metrics registry (/metrics).
	Reg *metrics.Registry
	// Progress is the live campaign view (/progress, /findings).
	Progress *harness.Progress
	// Events is the campaign event log; /events serves its in-memory tail
	// (enable with Events.KeepTail before the campaign starts).
	Events *metrics.EventLog
	// Spans is the campaign span recorder; /timeline serves its in-memory
	// tail (enable with Spans.KeepTail before the campaign starts). Set it
	// after New — campaigns without a timeline leave it nil.
	Spans *span.Recorder
	// Remarks is the campaign remark log (corpus.Options.RemarkLog);
	// /remarks serves its in-memory tail (enable with Remarks.KeepTail
	// before the campaign starts). Set it after New — campaigns without
	// remarks leave it nil.
	Remarks *metrics.EventLog

	start time.Time
}

// New assembles a server for one campaign. The uptime clock starts now.
func New(tool string, reg *metrics.Registry, progress *harness.Progress, events *metrics.EventLog) *Server {
	return &Server{Tool: tool, Reg: reg, Progress: progress, Events: events, start: time.Now()}
}

// Handler returns the monitoring mux. Every endpoint is read-only, so
// anything but GET is rejected with 405 and an Allow header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", ReadOnly(s.handleHealthz))
	mux.HandleFunc("/metrics", ReadOnly(s.handleMetrics))
	mux.HandleFunc("/progress", ReadOnly(s.handleProgress))
	mux.HandleFunc("/findings", ReadOnly(s.handleFindings))
	mux.HandleFunc("/events", ReadOnly(s.handleEvents))
	mux.HandleFunc("/timeline", ReadOnly(s.handleTimeline))
	mux.HandleFunc("/remarks", ReadOnly(s.handleRemarks))
	return mux
}

// Error counters WriteJSON maintains. An encode failure happens before any
// body byte is written, so the client still gets a 500; a write failure is
// mid-body (the client hung up or the connection broke), where the status
// line is long gone and a counter is the only place to surface it.
const (
	CounterEncodeErrors = "monitor.errors.encode"
	CounterWriteErrors  = "monitor.errors.write"
)

// ReadOnly guards a read-only endpoint: non-GET methods are rejected with
// 405 Method Not Allowed and an Allow header naming the only accepted one.
func ReadOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed (read-only endpoint)", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// WriteJSON writes v as an indented JSON response. Encoding happens into
// memory first, so an unencodable value turns into a clean 500 (plus the
// encode-error counter) instead of a silently truncated 200; failures
// writing the already-committed body only increment the write-error
// counter. The registry may be nil (counters are then dropped).
func WriteJSON(w http.ResponseWriter, reg *metrics.Registry, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		reg.Counter(CounterEncodeErrors).Inc()
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(b, '\n')); err != nil {
		reg.Counter(CounterWriteErrors).Inc()
	}
}

// JSONError writes a JSON error body ({"error": msg}) with the given
// status code, so API clients never have to parse prose out of a text/plain
// failure.
func JSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(b, '\n'))
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) { WriteJSON(w, s.Reg, v) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]any{
		"status":    "ok",
		"tool":      s.Tool,
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

// MetricsReply is the /metrics?format=json body: the registry snapshot's
// fields at the top level (unchanged for existing clients) plus the derived
// gauges under "derived". Both halves of the reply come from the same
// snapshot, so the JSON and text renderings of one request agree exactly.
type MetricsReply struct {
	*metrics.RegistrySnapshot
	Derived DerivedGauges `json:"derived"`
}

// DerivedGauges are the gauges that exist only as derivations over other
// sources — campaign throughput, the pass-manager skip rate, and per-worker
// occupancy. They are computed once per request from one registry snapshot
// and one read of the progress clock, never stored in the registry, so the
// snapshot (and the deterministic artifacts built from it) stays untouched
// — and the text and JSON renderings of the same scrape cannot drift apart.
type DerivedGauges struct {
	UnitsPerSec     float64   `json:"units_per_sec"`
	PassSkipRate    float64   `json:"pass_skip_rate"`
	PassSkipKnown   bool      `json:"pass_skip_known"`
	WorkerOccupancy []float64 `json:"worker_occupancy,omitempty"`
}

// NewDerivedGauges computes the derived gauges from a registry snapshot and
// the progress view. Every input is read exactly once: the counters come
// from the snapshot (not the live registry, which may have advanced since
// it was taken) and the elapsed clock and occupancy are sampled here.
func NewDerivedGauges(snap *metrics.RegistrySnapshot, p *harness.Progress) DerivedGauges {
	var d DerivedGauges
	if snap != nil {
		units := snap.Counters[metrics.CounterUnits]
		if secs := p.Elapsed().Seconds(); secs > 0 {
			d.UnitsPerSec = float64(units) / secs
		}
		visited := snap.Counters[metrics.CounterPassVisited]
		skipped := snap.Counters[metrics.CounterPassSkipped]
		if total := visited + skipped; total > 0 {
			d.PassSkipRate = float64(skipped) / float64(total)
			d.PassSkipKnown = true
		}
	}
	d.WorkerOccupancy = p.Occupancy()
	return d
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// One snapshot, one derivation, shared by both formats: computing the
	// derived gauges at two scrape points (as the text path once did) lets
	// the JSON and text views of the "same" scrape disagree.
	snap := s.Reg.Snapshot()
	d := NewDerivedGauges(snap, s.Progress)
	if r.URL.Query().Get("format") == "json" {
		s.writeJSON(w, MetricsReply{RegistrySnapshot: snap, Derived: d})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, Exposition(snap))
	fmt.Fprint(w, derivedExposition(s.Reg != nil, d))
}

// derivedExposition renders already-computed derived gauges in the same
// Prometheus text format Exposition uses. haveReg preserves the historical
// shape: a server without a registry never emitted the registry-derived
// series, only occupancy.
func derivedExposition(haveReg bool, d DerivedGauges) string {
	var sb strings.Builder
	if haveReg {
		fmt.Fprintf(&sb, "# TYPE dcelens_units_per_sec gauge\ndcelens_units_per_sec %g\n", d.UnitsPerSec)
		if d.PassSkipKnown {
			fmt.Fprintf(&sb, "# TYPE dcelens_pass_skip_rate gauge\ndcelens_pass_skip_rate %g\n", d.PassSkipRate)
		}
	}
	if len(d.WorkerOccupancy) > 0 {
		sb.WriteString("# TYPE dcelens_worker_occupancy gauge\n")
		for w, f := range d.WorkerOccupancy {
			fmt.Fprintf(&sb, "dcelens_worker_occupancy{worker=\"%d\"} %g\n", w, f)
		}
	}
	return sb.String()
}

// ProgressReply is the /progress body. The middle-end performance fields
// (units, units_per_sec, pass_skip_rate) come from the registry rather than
// the progress view; with no registry attached they stay at their zero
// values and pass_skip_known is false.
type ProgressReply struct {
	SeedsTotal int              `json:"seeds_total"`
	SeedsDone  int              `json:"seeds_done"`
	Workers    int              `json:"workers"`
	Findings   int              `json:"findings"`
	Failures   map[string]int64 `json:"failures"`
	ElapsedMs  int64            `json:"elapsed_ms"`
	EtaMs      int64            `json:"eta_ms"`
	EtaKnown   bool             `json:"eta_known"`

	// Units is the number of compilation units optimized so far; UnitsPerSec
	// is that count over the campaign's elapsed wall time.
	Units       int64   `json:"units"`
	UnitsPerSec float64 `json:"units_per_sec"`
	// PassSkipRate is the fraction of (function, pass-instance) visits the
	// dirty-tracking pass manager skipped as provably clean.
	PassSkipRate  float64 `json:"pass_skip_rate"`
	PassSkipKnown bool    `json:"pass_skip_known"`

	// WorkerOccupancy is each worker's busy fraction of the campaign's
	// elapsed wall time (indexed by worker), from the scheduler probe's
	// occupancy counters. Absent for deterministic registries.
	WorkerOccupancy []float64 `json:"worker_occupancy,omitempty"`
}

// NewProgressReply assembles the /progress body from a campaign's progress
// view and registry — shared by the monitor's /progress and the service's
// per-job GET /jobs/{id}/progress, so the two surfaces never disagree about
// shape or derivation. Both sources may be nil.
func NewProgressReply(p *harness.Progress, reg *metrics.Registry) ProgressReply {
	eta, ok := p.ETA()
	reply := ProgressReply{
		SeedsTotal:      p.Total(),
		SeedsDone:       p.Done(),
		Workers:         p.Workers(),
		Findings:        p.FindingCount(),
		Failures:        p.FailureCounts(),
		ElapsedMs:       p.Elapsed().Milliseconds(),
		EtaMs:           eta.Milliseconds(),
		EtaKnown:        ok,
		WorkerOccupancy: p.Occupancy(),
	}
	if reg != nil {
		reply.Units = reg.Counter(metrics.CounterUnits).Value()
		if secs := p.Elapsed().Seconds(); secs > 0 {
			reply.UnitsPerSec = float64(reply.Units) / secs
		}
		reply.PassSkipRate, reply.PassSkipKnown = metrics.PassSkipRate(reg)
	}
	return reply
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, NewProgressReply(s.Progress, s.Reg))
}

func (s *Server) handleFindings(w http.ResponseWriter, r *http.Request) {
	fs := s.Progress.Findings()
	if fs == nil {
		fs = []any{}
	}
	s.writeJSON(w, map[string]any{"count": len(fs), "findings": fs})
}

// handleEvents serves the event-log tail as JSONL. The since parameter is
// the last sequence number the client has seen (default 0: everything
// buffered); the response carries only events with seq > since, so a client
// that remembers the last seq it read resumes without duplicates. The
// current head seq is exposed in the X-Dcelens-Last-Seq header even when no
// new events match.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var since int64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			JSONError(w, http.StatusBadRequest, fmt.Sprintf("since=%q: must be a non-negative integer", v))
			return
		}
		since = n
	}
	w.Header().Set("X-Dcelens-Last-Seq", strconv.FormatInt(s.Events.Seq(), 10))
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, e := range s.Events.TailSince(since) {
		fmt.Fprintln(w, e.Line)
	}
}

// handleTimeline serves the span recorder's tail as JSONL — the timeline
// twin of /events, with the same resumable contract: since is the last span
// sequence number the client has seen, the response carries only spans with
// seq > since, and the current head seq rides the X-Dcelens-Last-Seq header
// even when nothing new matches. Each line is one Chrome trace_event
// object, so a client can accumulate lines into a Perfetto-loadable file.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	var since int64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			JSONError(w, http.StatusBadRequest, fmt.Sprintf("since=%q: must be a non-negative integer", v))
			return
		}
		since = n
	}
	w.Header().Set("X-Dcelens-Last-Seq", strconv.FormatInt(s.Spans.Seq(), 10))
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, e := range s.Spans.TailSince(since) {
		fmt.Fprintln(w, e.Line)
	}
}

// handleRemarks serves the remark log's tail as JSONL — the remarks twin of
// /events, with the same resumable contract: since is the last remark
// sequence number the client has seen, the response carries only events with
// seq > since, and the current head seq rides the X-Dcelens-Last-Seq header
// even when nothing new matches. Each line is one seed's remark summary
// (per-pass applied/missed counts and miss reasons).
func (s *Server) handleRemarks(w http.ResponseWriter, r *http.Request) {
	var since int64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			JSONError(w, http.StatusBadRequest, fmt.Sprintf("since=%q: must be a non-negative integer", v))
			return
		}
		since = n
	}
	w.Header().Set("X-Dcelens-Last-Seq", strconv.FormatInt(s.Remarks.Seq(), 10))
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, e := range s.Remarks.TailSince(since) {
		fmt.Fprintln(w, e.Line)
	}
}

// Exposition renders a registry snapshot in the Prometheus text format:
// counters and gauges as single samples, histograms as cumulative _bucket
// series (seconds, le-labelled) plus _sum and _count. Names are prefixed
// with "dcelens_" and sanitized (non-alphanumeric runs become "_"); output
// is sorted by name, so identical snapshots render byte-identically.
func Exposition(s *metrics.RegistrySnapshot) string {
	var sb strings.Builder
	emit := func(m map[string]int64, kind string) {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			pn := promName(n)
			fmt.Fprintf(&sb, "# TYPE %s %s\n%s %d\n", pn, kind, pn, m[n])
		}
	}
	emit(s.Counters, "counter")
	emit(s.Gauges, "gauge")

	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n) + "_seconds"
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", pn)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.LeNs != math.MaxInt64 {
				le = strconv.FormatFloat(float64(b.LeNs)/1e9, 'g', -1, 64)
			}
			fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].LeNs != math.MaxInt64 {
			fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		}
		fmt.Fprintf(&sb, "%s_sum %g\n%s_count %d\n", pn, float64(h.SumNs)/1e9, pn, h.Count)
	}
	return sb.String()
}

// promName maps a dotted registry name into the Prometheus identifier
// space: "campaign.seeds.analyzed" → "dcelens_campaign_seeds_analyzed".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dcelens_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Running is a started monitoring server; Close shuts it down.
type Running struct {
	ln  net.Listener
	srv *http.Server
}

// Start binds addr (port 0 picks an ephemeral port) and serves s in a
// background goroutine. The returned Running reports the bound address and
// stops the server on Close.
func Start(addr string, s *Server) (*Running, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Running{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (host:port).
func (r *Running) Addr() string { return r.ln.Addr().String() }

// Close stops the server and releases the listener.
func (r *Running) Close() error { return r.srv.Close() }
