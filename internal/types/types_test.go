package types

import (
	"testing"
	"testing/quick"
)

func TestWrapValue(t *testing.T) {
	cases := []struct {
		t    *Type
		in   int64
		want int64
	}{
		{I8Type, 127, 127},
		{I8Type, 128, -128},
		{I8Type, 255, -1},
		{I8Type, -129, 127},
		{U8Type, 255, 255},
		{U8Type, 256, 0},
		{U8Type, -1, 255},
		{I16Type, 32768, -32768},
		{U16Type, 65536, 0},
		{I32Type, 2147483648, -2147483648},
		{U32Type, 4294967296, 0},
		{U32Type, -1, 4294967295},
		{I64Type, -5, -5},
		{U64Type, -5, -5}, // 64-bit canonical form is the raw bits
	}
	for _, c := range cases {
		if got := c.t.WrapValue(c.in); got != c.want {
			t.Errorf("%v.WrapValue(%d) = %d, want %d", c.t, c.in, got, c.want)
		}
	}
}

// TestWrapValueIdempotent: wrapping is a canonicalization, so applying it
// twice must equal applying it once — for every integer type and value.
func TestWrapValueIdempotent(t *testing.T) {
	f := func(v int64) bool {
		for _, ty := range IntTypes {
			w := ty.WrapValue(v)
			if ty.WrapValue(w) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWrapValueCanonicalRange: canonical values of unsigned sub-64-bit
// types are non-negative; signed types fit their two's-complement range.
func TestWrapValueCanonicalRange(t *testing.T) {
	f := func(v int64) bool {
		if w := U8Type.WrapValue(v); w < 0 || w > 255 {
			return false
		}
		if w := U32Type.WrapValue(v); w < 0 || w > 4294967295 {
			return false
		}
		if w := I16Type.WrapValue(v); w < -32768 || w > 32767 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPromote(t *testing.T) {
	cases := []struct {
		a, b, want *Type
	}{
		{I8Type, I8Type, I32Type},   // integer promotion
		{U8Type, I16Type, I32Type},  // both promote to int
		{I32Type, U32Type, U32Type}, // unsigned wins at equal width
		{I32Type, I64Type, I64Type},
		{U32Type, I64Type, I64Type}, // wider signed absorbs narrower unsigned
		{U64Type, I64Type, U64Type},
		{I32Type, I32Type, I32Type},
	}
	for _, c := range cases {
		if got := Promote(c.a, c.b); got != c.want {
			t.Errorf("Promote(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Promote(c.b, c.a); got != c.want {
			t.Errorf("Promote(%v, %v) = %v, want %v (must be symmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestIdentical(t *testing.T) {
	if !Identical(PointerTo(I32Type), PointerTo(I32Type)) {
		t.Error("structurally equal pointers must be identical")
	}
	if Identical(PointerTo(I32Type), PointerTo(U32Type)) {
		t.Error("different pointees must differ")
	}
	if !Identical(ArrayOf(I8Type, 4), ArrayOf(I8Type, 4)) {
		t.Error("equal arrays must be identical")
	}
	if Identical(ArrayOf(I8Type, 4), ArrayOf(I8Type, 5)) {
		t.Error("array lengths matter")
	}
	if !Identical(FuncOf(VoidType, []*Type{I32Type}), FuncOf(VoidType, []*Type{I32Type})) {
		t.Error("equal func types must be identical")
	}
	if Identical(FuncOf(VoidType, []*Type{I32Type}), FuncOf(VoidType, nil)) {
		t.Error("arity matters")
	}
}

func TestSizeAndBits(t *testing.T) {
	if I8Type.Size() != 1 || U16Type.Size() != 2 || I32Type.Size() != 4 || U64Type.Size() != 8 {
		t.Error("scalar sizes wrong")
	}
	if PointerTo(I8Type).Size() != 8 {
		t.Error("pointers are 8 bytes")
	}
	if ArrayOf(I16Type, 10).Size() != 20 {
		t.Error("array size = elem * len")
	}
	if PointerTo(VoidType).Bits() != 64 {
		t.Error("pointer bits")
	}
}

func TestSignednessHelpers(t *testing.T) {
	for _, ty := range IntTypes {
		if ty.Unsigned().IsSigned() {
			t.Errorf("%v.Unsigned() is signed", ty)
		}
		if !ty.Signed().IsSigned() {
			t.Errorf("%v.Signed() is unsigned", ty)
		}
		if ty.Unsigned().Bits() != ty.Bits() || ty.Signed().Bits() != ty.Bits() {
			t.Errorf("%v: signedness change altered width", ty)
		}
	}
}

func TestCSpelling(t *testing.T) {
	cases := map[*Type]string{
		I8Type:                        "char",
		U32Type:                       "unsigned int",
		I64Type:                       "long",
		PointerTo(I32Type):            "int *",
		ArrayOf(U8Type, 3):            "unsigned char[3]",
		PointerTo(PointerTo(I16Type)): "short * *",
	}
	for ty, want := range cases {
		if got := ty.CSpelling(); got != want {
			t.Errorf("%v spelled %q, want %q", ty.Kind, got, want)
		}
	}
}
