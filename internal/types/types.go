// Package types defines the MiniC type system.
//
// MiniC has void, eight integer types (signed and unsigned 8/16/32/64-bit),
// pointers, one-dimensional arrays, and function types. All integer
// arithmetic wraps (two's complement); shifts mask their amount by the bit
// width minus one; division and remainder are total (x/0 == 0, x%0 == x).
// These rules remove all C undefined behaviour so that every MiniC program
// has exactly one meaning — a prerequisite for using execution as the
// ground-truth oracle for dead code (see DESIGN.md).
package types

import "fmt"

// Kind discriminates the type structure.
type Kind int

const (
	Invalid Kind = iota
	Void
	I8
	U8
	I16
	U16
	I32
	U32
	I64
	U64
	Pointer
	Array
	Func
)

// Type describes a MiniC type. Scalar types are interned singletons;
// compare them with ==. Composite types (Pointer, Array, Func) are
// structural; compare them with Identical.
type Type struct {
	Kind   Kind
	Elem   *Type   // Pointer/Array element type, Func return type
	Len    int     // Array length
	Params []*Type // Func parameter types
}

// Interned scalar types.
var (
	VoidType = &Type{Kind: Void}
	I8Type   = &Type{Kind: I8}
	U8Type   = &Type{Kind: U8}
	I16Type  = &Type{Kind: I16}
	U16Type  = &Type{Kind: U16}
	I32Type  = &Type{Kind: I32}
	U32Type  = &Type{Kind: U32}
	I64Type  = &Type{Kind: I64}
	U64Type  = &Type{Kind: U64}
)

// IntTypes lists the integer types from narrowest to widest,
// signed before unsigned at each width.
var IntTypes = []*Type{I8Type, U8Type, I16Type, U16Type, I32Type, U32Type, I64Type, U64Type}

// PointerTo returns the type *elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Pointer, Elem: elem} }

// ArrayOf returns the type elem[n].
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// FuncOf returns a function type with the given return and parameter types.
func FuncOf(ret *Type, params []*Type) *Type {
	return &Type{Kind: Func, Elem: ret, Params: params}
}

// IsInteger reports whether t is one of the eight integer types.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case I8, U8, I16, U16, I32, U32, I64, U64:
		return true
	}
	return false
}

// IsSigned reports whether t is a signed integer type.
func (t *Type) IsSigned() bool {
	switch t.Kind {
	case I8, I16, I32, I64:
		return true
	}
	return false
}

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == Pointer }

// IsArray reports whether t is an array type.
func (t *Type) IsArray() bool { return t.Kind == Array }

// IsScalar reports whether t is an integer or pointer type
// (a value that fits in a register).
func (t *Type) IsScalar() bool { return t.IsInteger() || t.IsPointer() }

// Bits returns the width of an integer type in bits, or 64 for pointers
// (the MiniC target is a 64-bit machine). It panics for other kinds.
func (t *Type) Bits() int {
	switch t.Kind {
	case I8, U8:
		return 8
	case I16, U16:
		return 16
	case I32, U32:
		return 32
	case I64, U64, Pointer:
		return 64
	}
	panic(fmt.Sprintf("types: Bits on %v", t.Kind))
}

// Size returns the size of t in bytes. Arrays are element size times length.
func (t *Type) Size() int {
	switch t.Kind {
	case Void:
		return 0
	case Array:
		return t.Elem.Size() * t.Len
	case Func:
		panic("types: Size on function type")
	default:
		return t.Bits() / 8
	}
}

// Unsigned returns the unsigned integer type of the same width.
func (t *Type) Unsigned() *Type {
	switch t.Kind {
	case I8, U8:
		return U8Type
	case I16, U16:
		return U16Type
	case I32, U32:
		return U32Type
	case I64, U64:
		return U64Type
	}
	panic(fmt.Sprintf("types: Unsigned on %v", t.Kind))
}

// Signed returns the signed integer type of the same width.
func (t *Type) Signed() *Type {
	switch t.Kind {
	case I8, U8:
		return I8Type
	case I16, U16:
		return I16Type
	case I32, U32:
		return I32Type
	case I64, U64:
		return I64Type
	}
	panic(fmt.Sprintf("types: Signed on %v", t.Kind))
}

// Identical reports structural type identity.
func Identical(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Pointer:
		return Identical(a.Elem, b.Elem)
	case Array:
		return a.Len == b.Len && Identical(a.Elem, b.Elem)
	case Func:
		if !Identical(a.Elem, b.Elem) || len(a.Params) != len(b.Params) {
			return false
		}
		for i := range a.Params {
			if !Identical(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	default:
		return true // scalar kinds are equal by Kind
	}
}

// Promote applies the usual arithmetic conversions of MiniC: both operands
// are converted to the wider type; on equal width unsigned wins; everything
// narrower than 32 bits is first promoted to I32 (C integer promotion).
func Promote(a, b *Type) *Type {
	pa, pb := promoteOne(a), promoteOne(b)
	if pa.Bits() > pb.Bits() {
		return pa
	}
	if pb.Bits() > pa.Bits() {
		return pb
	}
	if !pa.IsSigned() {
		return pa
	}
	return pb
}

// PromoteOne applies C integer promotion to a single operand type.
func PromoteOne(t *Type) *Type { return promoteOne(t) }

func promoteOne(t *Type) *Type {
	if t.IsInteger() && t.Bits() < 32 {
		return I32Type
	}
	return t
}

// CSpelling returns the MiniC source spelling of t. char is signed in MiniC.
func (t *Type) CSpelling() string {
	switch t.Kind {
	case Void:
		return "void"
	case I8:
		return "char"
	case U8:
		return "unsigned char"
	case I16:
		return "short"
	case U16:
		return "unsigned short"
	case I32:
		return "int"
	case U32:
		return "unsigned int"
	case I64:
		return "long"
	case U64:
		return "unsigned long"
	case Pointer:
		return t.Elem.CSpelling() + " *"
	case Array:
		return fmt.Sprintf("%s[%d]", t.Elem.CSpelling(), t.Len)
	case Func:
		s := t.Elem.CSpelling() + " (*)("
		for i, p := range t.Params {
			if i > 0 {
				s += ", "
			}
			s += p.CSpelling()
		}
		return s + ")"
	}
	return "<invalid>"
}

func (t *Type) String() string { return t.CSpelling() }

// WrapValue truncates v to t's width and re-extends it according to t's
// signedness, yielding the canonical int64 representation of a value of
// type t. Pointers are not wrapped here.
func (t *Type) WrapValue(v int64) int64 {
	switch t.Kind {
	case I8:
		return int64(int8(v))
	case U8:
		return int64(uint8(v))
	case I16:
		return int64(int16(v))
	case U16:
		return int64(uint16(v))
	case I32:
		return int64(int32(v))
	case U32:
		return int64(uint32(v))
	case I64, U64, Pointer:
		return v
	}
	panic(fmt.Sprintf("types: WrapValue on %v", t.Kind))
}
