package bisect

import (
	"testing"

	"dcelens/internal/instrument"
	"dcelens/internal/parser"
	"dcelens/internal/pipeline"
	"dcelens/internal/sema"
)

func instrumented(t *testing.T, src string) *instrument.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	ins, err := instrument.Instrument(prog, instrument.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

// TestBisectWidenRegression drives the Listing 9e shape: gcc-sim's store
// widening commit makes -O3 miss a marker that earlier versions (and -O1)
// eliminate. The bisector must land exactly on the vectorizer commit.
func TestBisectWidenRegression(t *testing.T) {
	// Like paper Listing 9e, with a local loop counter (this middle-end has
	// no global-to-register promotion, so the paper's `for (b = 0; ...)`
	// over a static global would not unroll at any version).
	ins := instrumented(t, `
static int a[2];
static int b;
static int *c[2];
int main(void) {
  for (int i = 0; i < 2; i++) {
    c[i] = &a[1];
  }
  if (!c[0]) {
    b = 99;
  }
  return 0;
}`)
	// Find the marker of the if body.
	var marker string
	for _, m := range ins.Markers {
		if m.Site == "if-then" {
			marker = m.Name
		}
	}
	if marker == "" {
		t.Fatal("no if-then marker")
	}

	// Precondition: missed at head -O3 but eliminated at some mid-history
	// version (after the unroller landed, before the widening regression).
	headMissed, err := MissedAt(ins, pipeline.GCC, pipeline.O3, len(pipeline.History(pipeline.GCC)), marker)
	if err != nil {
		t.Fatal(err)
	}
	if !headMissed {
		t.Fatal("expected the marker to be missed at gcc-sim head -O3")
	}
	midMissed, err := MissedAt(ins, pipeline.GCC, pipeline.O3, 8, marker)
	if err != nil {
		t.Fatal(err)
	}
	if midMissed {
		t.Fatal("expected the mid-history version (unroll landed, widening not yet) to eliminate the marker")
	}

	out, err := Regression(ins, pipeline.GCC, pipeline.O3, marker)
	if err != nil {
		t.Fatal(err)
	}
	if out.Commit.Component != "Loop Transformations" {
		t.Errorf("bisected to %q (%s), want the vectorizer commit",
			out.Commit.Component, out.Commit.Desc)
	}
	if !out.Commit.Regression {
		t.Errorf("bisected commit is not marked as a regression: %s", out.Commit.Desc)
	}
}

// TestBisectUnswitchRegression drives the Listing 7 shape for llvm-sim:
// the early-unswitch pass-management commit.
func TestBisectUnswitchRegression(t *testing.T) {
	ins := instrumented(t, `
static int b = 0;
static int g;
int main(void) {
  int bb = b;
  for (int i = 0; i < 4; i++) {
    if (bb) {
      g += i;
    }
    g += 1;
  }
  b = 0;
  return 0;
}`)
	var marker string
	for _, m := range ins.Markers {
		if m.Site == "if-then" {
			marker = m.Name
		}
	}
	headMissed, err := MissedAt(ins, pipeline.LLVM, pipeline.O3, len(pipeline.History(pipeline.LLVM)), marker)
	if err != nil {
		t.Fatal(err)
	}
	if !headMissed {
		t.Skip("shape not reproduced at head; unswitching preconditions unmet")
	}
	out, err := Regression(ins, pipeline.LLVM, pipeline.O3, marker)
	if err != nil {
		t.Fatal(err)
	}
	if out.Commit.Component != "Pass Management" {
		t.Errorf("bisected to %q (%s), want the unswitch scheduling commit",
			out.Commit.Component, out.Commit.Desc)
	}
}

func TestBisectRejectsNonRegressions(t *testing.T) {
	// A marker missed since the base version is not a regression.
	ins := instrumented(t, `
static int a = 0;
int main(void) {
  if (a) {
    a = 5; // GCC's flow-insensitive analysis misses this at every version
  }
  a = 0;
  return 0;
}`)
	marker := ins.Markers[0].Name
	if _, err := Regression(ins, pipeline.GCC, pipeline.O3, marker); err == nil {
		t.Fatal("expected an error for a long-standing (non-regression) miss")
	}
}

func TestCategorize(t *testing.T) {
	h := pipeline.History(pipeline.GCC)
	outcomes := []*Outcome{
		{Marker: "a", Commit: h[6]}, // alias analysis regression
		{Marker: "b", Commit: h[6]}, // same commit, different marker
		{Marker: "c", Commit: h[8]}, // vectorizer regression
	}
	rows := Categorize(outcomes)
	if len(rows) != 2 {
		t.Fatalf("want 2 components, got %v", rows)
	}
	if UniqueCommits(outcomes) != 2 {
		t.Fatalf("want 2 unique commits, got %d", UniqueCommits(outcomes))
	}
	for _, r := range rows {
		if r.Commits < 1 || r.Files < 1 {
			t.Errorf("degenerate row %+v", r)
		}
	}
}
