// Package bisect locates the version-history commit that introduced a
// missed optimization — the regression analysis of paper §4.2 ("Missed
// optimization diversity"), which feeds the component categorization of
// Tables 3 and 4.
package bisect

import (
	"fmt"
	"sort"

	"dcelens/internal/core"
	"dcelens/internal/instrument"
	"dcelens/internal/pipeline"
)

// Outcome describes one bisected regression.
type Outcome struct {
	Marker      string
	Personality pipeline.Personality
	Level       pipeline.Level
	// CommitIndex is the 1-based index of the offending commit in the
	// personality's history; Commit is the entry itself.
	CommitIndex int
	Commit      pipeline.Commit
}

// MissedAt reports whether the marker survives compilation of ins at the
// given personality/level/version.
func MissedAt(ins *instrument.Program, p pipeline.Personality, lvl pipeline.Level, commits int, marker string) (bool, error) {
	comp, err := core.Compile(ins, pipeline.AtCommit(p, lvl, commits))
	if err != nil {
		return false, err
	}
	return comp.Alive[marker], nil
}

// Regression bisects the history of personality p for the commit at which
// the (dead) marker stopped being eliminated at the given level. Like git
// bisect, it first locates the most recent good version (a marker can be
// "unfixed" at the base, gain eliminability from an improvement commit,
// and lose it again to a regression — the Listing 9e vectorizer story);
// it then binary-searches the (good, head] range. An error means the miss
// is a long-standing limitation, not a regression.
func Regression(ins *instrument.Program, p pipeline.Personality, lvl pipeline.Level, marker string) (*Outcome, error) {
	h := pipeline.History(p)
	n := len(h)
	headMissed, err := MissedAt(ins, p, lvl, n, marker)
	if err != nil {
		return nil, err
	}
	if !headMissed {
		return nil, fmt.Errorf("bisect: %s is not missed at the latest version", marker)
	}
	// Most recent good version strictly before head.
	good := -1
	for k := n - 1; k >= 0; k-- {
		missed, err := MissedAt(ins, p, lvl, k, marker)
		if err != nil {
			return nil, err
		}
		if !missed {
			good = k
			break
		}
	}
	if good < 0 {
		return nil, fmt.Errorf("bisect: %s is missed at every version (not a regression)", marker)
	}
	// Binary search for the first bad version in (good, n].
	lo, hi := good, n // lo good, hi bad
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		missed, err := MissedAt(ins, p, lvl, mid, marker)
		if err != nil {
			return nil, err
		}
		if missed {
			hi = mid
		} else {
			lo = mid
		}
	}
	return &Outcome{
		Marker:      marker,
		Personality: p,
		Level:       lvl,
		CommitIndex: hi,
		Commit:      h[hi-1],
	}, nil
}

// ComponentRow is one line of the paper's Tables 3/4: a compiler component
// with the number of distinct offending commits and touched files.
type ComponentRow struct {
	Component string
	Commits   int
	Files     int
}

// Categorize groups bisection outcomes by compiler component, counting
// unique commits and unique files per component — the exact aggregation of
// Tables 3 and 4.
func Categorize(outcomes []*Outcome) []ComponentRow {
	commitsByComp := map[string]map[string]bool{}
	filesByComp := map[string]map[string]bool{}
	for _, o := range outcomes {
		c := o.Commit
		if commitsByComp[c.Component] == nil {
			commitsByComp[c.Component] = map[string]bool{}
			filesByComp[c.Component] = map[string]bool{}
		}
		commitsByComp[c.Component][c.ID] = true
		for _, f := range c.Files {
			filesByComp[c.Component][f] = true
		}
	}
	var rows []ComponentRow
	for comp, commits := range commitsByComp {
		rows = append(rows, ComponentRow{
			Component: comp,
			Commits:   len(commits),
			Files:     len(filesByComp[comp]),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Component < rows[j].Component })
	return rows
}

// UniqueCommits counts the distinct offending commits in a set of
// outcomes (the paper reports 23 for GCC and 21 for LLVM).
func UniqueCommits(outcomes []*Outcome) int {
	ids := map[string]bool{}
	for _, o := range outcomes {
		ids[o.Commit.ID] = true
	}
	return len(ids)
}
