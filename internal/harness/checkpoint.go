package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Checkpoint persists per-seed campaign outcomes so an interrupted
// campaign resumes without recomputing completed seeds. The on-disk form
// is a single JSON document rewritten atomically (temp file + rename)
// after every completed seed: a killed campaign always leaves either the
// previous or the next consistent checkpoint, never a torn one.
//
// The checkpoint stores outcomes as raw JSON so this package stays
// independent of the corpus package's record type; resumed records decode
// into exactly the value that was saved, which is what makes a resumed
// campaign's report byte-identical to an uninterrupted run's.
type Checkpoint struct {
	mu   sync.Mutex
	path string // empty: in-memory only (tests)

	meta map[string]string
	done map[int64]json.RawMessage
}

// checkpointFile is the serialized form.
type checkpointFile struct {
	Version int                        `json:"version"`
	Meta    map[string]string          `json:"meta,omitempty"`
	Done    map[string]json.RawMessage `json:"done"`
}

const checkpointVersion = 1

// NewCheckpoint creates an empty checkpoint persisting to path (empty
// path: in-memory only).
func NewCheckpoint(path string) *Checkpoint {
	return &Checkpoint{path: path, done: map[int64]json.RawMessage{}}
}

// LoadCheckpoint reads an existing checkpoint file; a missing file yields
// a fresh checkpoint bound to the same path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewCheckpoint(path), nil
	}
	if err != nil {
		return nil, fmt.Errorf("harness: checkpoint: %w", err)
	}
	var file checkpointFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("harness: checkpoint %s: %w", path, err)
	}
	if file.Version != checkpointVersion {
		return nil, fmt.Errorf("harness: checkpoint %s: version %d, want %d", path, file.Version, checkpointVersion)
	}
	cp := NewCheckpoint(path)
	cp.meta = file.Meta
	for k, v := range file.Done {
		seed, err := strconv.ParseInt(k, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("harness: checkpoint %s: bad seed key %q", path, k)
		}
		cp.done[seed] = v
	}
	return cp, nil
}

// Bind ties the checkpoint to a campaign identity. A fresh checkpoint
// records the metadata; a resumed one verifies it, refusing to mix
// outcomes from differently-configured campaigns.
func (c *Checkpoint) Bind(meta map[string]string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.meta == nil {
		c.meta = meta
		return nil
	}
	for k, v := range meta {
		if got, ok := c.meta[k]; ok && got != v {
			return fmt.Errorf("harness: checkpoint %s: campaign mismatch: %s is %q, checkpoint has %q", c.path, k, v, got)
		}
	}
	return nil
}

// Meta returns a copy of the campaign identity the checkpoint is bound to
// (nil for a never-bound checkpoint). Merging tools use it to verify that
// shard checkpoints came from compatibly-configured campaigns.
func (c *Checkpoint) Meta() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.meta == nil {
		return nil
	}
	out := make(map[string]string, len(c.meta))
	for k, v := range c.meta {
		out[k] = v
	}
	return out
}

// Len reports how many seeds have completed.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Seeds returns the completed seeds in ascending order.
func (c *Checkpoint) Seeds() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, 0, len(c.done))
	for s := range c.done {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Restore decodes the saved outcome of a completed seed into v, reporting
// whether the seed was present.
func (c *Checkpoint) Restore(seed int64, v any) (bool, error) {
	c.mu.Lock()
	raw, ok := c.done[seed]
	c.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("harness: checkpoint: seed %d: %w", seed, err)
	}
	return true, nil
}

// Save records a completed seed's outcome and persists the checkpoint.
func (c *Checkpoint) Save(seed int64, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: checkpoint: seed %d: %w", seed, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[seed] = raw
	return c.flushLocked()
}

// flushLocked atomically rewrites the checkpoint file.
func (c *Checkpoint) flushLocked() error {
	if c.path == "" {
		return nil
	}
	file := checkpointFile{
		Version: checkpointVersion,
		Meta:    c.meta,
		Done:    make(map[string]json.RawMessage, len(c.done)),
	}
	for seed, raw := range c.done {
		file.Done[strconv.FormatInt(seed, 10)] = raw
	}
	data, err := json.MarshalIndent(&file, "", " ")
	if err != nil {
		return fmt.Errorf("harness: checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("harness: checkpoint: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: checkpoint write: %v, %v", werr, cerr)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: checkpoint: %w", err)
	}
	return nil
}
