package harness

import (
	"fmt"
	"strconv"
	"strings"

	"dcelens/internal/ir"
)

// FaultKind selects what an injected fault does when its pass fires.
type FaultKind int

const (
	// FaultPanic makes the matched pass instance panic.
	FaultPanic FaultKind = iota
	// FaultStall makes the matched pass spin until the watchdog deadline.
	FaultStall
	// FaultCorrupt makes the matched pass hand corrupt IR to the rest of
	// the pipeline (caught by the end-of-pipeline verifier as an ICE).
	FaultCorrupt
)

var faultKindNames = map[FaultKind]string{
	FaultPanic:   "panic",
	FaultStall:   "stall",
	FaultCorrupt: "corrupt",
}

func (k FaultKind) String() string { return faultKindNames[k] }

// Fault is one deterministic injection: when the named pass runs while
// compiling the given seed (under a matching config, if restricted), the
// fault fires. Pass "*" matches any pass; Seed -1 matches any seed.
type Fault struct {
	Kind   FaultKind `json:"kind"`
	Pass   string    `json:"pass"`
	Seed   int64     `json:"seed"`
	Config string    `json:"config,omitempty"` // substring of the config key, e.g. "gcc-sim -O3"; empty matches all
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s:%s:%d", f.Kind, f.Pass, f.Seed)
	if f.Config != "" {
		s += ":" + f.Config
	}
	return s
}

// Faults is a deterministic fault-injection plan for a campaign.
type Faults struct {
	List []Fault
}

// active returns the faults armed for one (seed, config) unit.
func (fs *Faults) active(seed int64, config string) []Fault {
	if fs == nil {
		return nil
	}
	var out []Fault
	for _, f := range fs.List {
		if f.Seed != -1 && f.Seed != seed {
			continue
		}
		if f.Config != "" && !strings.Contains(config, f.Config) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// ParseFaults parses a comma-separated injection spec, each entry
// "kind:pass:seed" with an optional ":config" suffix, e.g.
//
//	panic:gvn:5,stall:licm:7:llvm-sim -O3,corrupt:dce:9
//
// Kind is panic, stall, or corrupt; pass "*" matches any pass; seed "*"
// matches any seed.
func ParseFaults(spec string) (*Faults, error) {
	fs := &Faults{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.SplitN(entry, ":", 4)
		if len(parts) < 3 {
			return nil, fmt.Errorf("harness: fault %q: want kind:pass:seed[:config]", entry)
		}
		var f Fault
		switch parts[0] {
		case "panic":
			f.Kind = FaultPanic
		case "stall":
			f.Kind = FaultStall
		case "corrupt":
			f.Kind = FaultCorrupt
		default:
			return nil, fmt.Errorf("harness: fault %q: unknown kind %q (want panic, stall, or corrupt)", entry, parts[0])
		}
		f.Pass = parts[1]
		if f.Pass == "" {
			return nil, fmt.Errorf("harness: fault %q: empty pass (use * for any)", entry)
		}
		if parts[2] == "*" {
			f.Seed = -1
		} else {
			seed, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("harness: fault %q: bad seed %q", entry, parts[2])
			}
			f.Seed = seed
		}
		if len(parts) == 4 {
			f.Config = parts[3]
		}
		fs.List = append(fs.List, f)
	}
	if len(fs.List) == 0 {
		return nil, fmt.Errorf("harness: empty fault spec %q", spec)
	}
	return fs, nil
}

// corruptModule breaks an SSA invariant the end-of-pipeline verifier
// checks — the owner link of the first instruction — without perturbing
// the structures passes traverse, so the corruption deterministically
// surfaces as a verifier ICE rather than changing what the passes do.
func corruptModule(m *ir.Module) {
	for _, f := range m.Funcs {
		if f.External || len(f.Blocks) == 0 || len(f.Blocks[0].Instrs) == 0 {
			continue
		}
		f.Blocks[0].Instrs[0].Block = nil
		return
	}
}
