package harness

import (
	"testing"
	"time"

	"dcelens/internal/metrics"
)

func TestProgressNilSafety(t *testing.T) {
	var p *Progress
	if p.Total() != 0 || p.Done() != 0 || p.FindingCount() != 0 {
		t.Fatal("nil progress not zero")
	}
	p.AddFindings("ignored")
	if p.Findings() != nil {
		t.Fatal("nil progress returned findings")
	}
	if _, ok := p.ETA(); ok {
		t.Fatal("nil progress claims an ETA")
	}
	if got := p.FailureCounts(); len(got) != 0 {
		t.Fatalf("nil progress failures = %v", got)
	}
}

func TestProgressCounts(t *testing.T) {
	reg := metrics.New()
	p := NewProgress(10, 2, reg)
	if p.Total() != 10 || p.Done() != 0 {
		t.Fatalf("fresh progress = %d/%d", p.Done(), p.Total())
	}
	reg.Counter(metrics.CounterSeedsAnalyzed).Add(3)
	reg.Counter(metrics.CounterSeedsRestored).Add(2)
	if p.Done() != 5 {
		t.Fatalf("done = %d, want 5 (analyzed + restored)", p.Done())
	}
	reg.Counter(metrics.CounterTimeouts).Add(4)
	if got := p.FailureCounts()["timeout"]; got != 4 {
		t.Fatalf("timeout count = %d, want 4", got)
	}
}

func TestProgressFindings(t *testing.T) {
	p := NewProgress(1, 1, nil)
	p.AddFindings("a", "b")
	p.AddFindings() // no-op
	p.AddFindings("c")
	if p.FindingCount() != 3 {
		t.Fatalf("count = %d, want 3", p.FindingCount())
	}
	fs := p.Findings()
	fs[0] = "mutated" // the returned slice is a copy
	if p.Findings()[0] != "a" {
		t.Fatal("Findings exposed internal state")
	}
}

func TestProgressETA(t *testing.T) {
	reg := metrics.New()
	p := NewProgress(4, 2, reg)
	if _, ok := p.ETA(); ok {
		t.Fatal("ETA known before any seed completed")
	}
	// Two seeds done at ~100ms each, two remain on two workers: ~100ms.
	reg.Counter(metrics.CounterSeedsAnalyzed).Add(2)
	reg.Histogram(metrics.HistCampaignSeed).Observe(100 * time.Millisecond)
	reg.Histogram(metrics.HistCampaignSeed).Observe(100 * time.Millisecond)
	eta, ok := p.ETA()
	if !ok {
		t.Fatal("ETA unknown after observations")
	}
	if eta < 50*time.Millisecond || eta > 200*time.Millisecond {
		t.Fatalf("eta = %v, want ~100ms", eta)
	}
	// Finished campaigns report a known zero ETA.
	reg.Counter(metrics.CounterSeedsAnalyzed).Add(2)
	if eta, ok := p.ETA(); !ok || eta != 0 {
		t.Fatalf("finished eta = %v/%v, want 0/true", eta, ok)
	}
}
