package harness

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"dcelens/internal/ir"
	"dcelens/internal/opt"
)

// drive pushes n pass instances through the observer, as a pipeline would.
func drive(obs opt.Observer, pass string, n int) {
	for i := 0; i < n; i++ {
		obs.AfterPass(nil, pass, i, 0, opt.PassStats{})
	}
}

func TestProtectCompletes(t *testing.T) {
	h := &Harness{}
	fail := h.Protect(1, "gcc-sim -O3", "src", func(obs opt.Observer) error {
		drive(obs, "dce", 50)
		return nil
	})
	if fail != nil {
		t.Fatalf("clean unit failed: %+v", fail)
	}
}

func TestProtectRecoversPanic(t *testing.T) {
	h := &Harness{}
	fail := h.Protect(7, "llvm-sim -O2", "int main(void) { return 0; }", func(opt.Observer) error {
		panic("pass gvn: value v42 has no defining block")
	})
	if fail == nil {
		t.Fatal("panic not converted to a failure")
	}
	if fail.Kind != KindCrash {
		t.Errorf("kind = %s, want crash", fail.Kind)
	}
	if fail.Seed != 7 || fail.Config != "llvm-sim -O2" {
		t.Errorf("identity not recorded: %+v", fail)
	}
	if !strings.Contains(fail.Message, "v42") {
		t.Errorf("message lost: %q", fail.Message)
	}
	if fail.Stack == "" {
		t.Error("no stack captured")
	}
	if fail.Source != "int main(void) { return 0; }" {
		t.Errorf("reproducer lost: %q", fail.Source)
	}
}

func TestProtectWatchdogTimeout(t *testing.T) {
	h := &Harness{StepBudget: 10}
	fail := h.Protect(3, "gcc-sim -O3", "src", func(obs opt.Observer) error {
		drive(obs, "licm", 1000)
		return errors.New("unreachable: the watchdog must fire first")
	})
	if fail == nil {
		t.Fatal("runaway unit not stopped")
	}
	if fail.Kind != KindTimeout {
		t.Fatalf("kind = %s, want timeout", fail.Kind)
	}
	if fail.Signature != "deadline:licm" {
		t.Errorf("signature = %q, want deadline:licm", fail.Signature)
	}
	if !strings.Contains(fail.Message, "budget 10") {
		t.Errorf("message does not name the budget: %q", fail.Message)
	}
}

func TestProtectDefaultBudgetIsGenerous(t *testing.T) {
	h := &Harness{}
	fail := h.Protect(1, "cfg", "", func(obs opt.Observer) error {
		drive(obs, "dce", 500) // far beyond any real schedule, well under default
		return nil
	})
	if fail != nil {
		t.Fatalf("default budget tripped on a plausible schedule: %+v", fail)
	}
}

func TestClassifySentinels(t *testing.T) {
	h := &Harness{}
	cases := []struct {
		err  error
		want Kind
	}{
		{fmt.Errorf("%w: checksum 123 != 456", ErrMiscompile), KindMiscompile},
		{fmt.Errorf("%w: ground truth failed", ErrInfeasible), KindInfeasible},
		{errors.New("opt: after pass gvn (iteration 2): broken use chain"), KindCrash},
	}
	for _, tc := range cases {
		fail := h.Protect(1, "cfg", "", func(opt.Observer) error { return tc.err })
		if fail == nil {
			t.Fatalf("%v: no failure", tc.err)
		}
		if fail.Kind != tc.want {
			t.Errorf("%v: kind = %s, want %s", tc.err, fail.Kind, tc.want)
		}
		if !strings.HasPrefix(fail.Signature, tc.want.String()+":") {
			t.Errorf("%v: signature %q not keyed by kind", tc.err, fail.Signature)
		}
	}
}

func TestSignatureNormalizesRunDetail(t *testing.T) {
	h := &Harness{}
	sig := func(msg string) string {
		f := h.Protect(1, "cfg", "", func(opt.Observer) error { return errors.New(msg) })
		return f.Signature
	}
	// The same bug at different seeds/value IDs must bucket together.
	if a, b := sig("verify: value v17 used before def"), sig("verify: value v203 used before def"); a != b {
		t.Errorf("digit-differing messages split buckets: %q vs %q", a, b)
	}
	// Distinct bugs must not.
	if a, b := sig("verify: value v17 used before def"), sig("verify: phi arity mismatch"); a == b {
		t.Error("distinct messages collided")
	}
}

func TestInjectedPanicFault(t *testing.T) {
	h := &Harness{Faults: &Faults{List: []Fault{{Kind: FaultPanic, Pass: "gvn", Seed: 5}}}}
	// The fault is armed only for seed 5.
	if fail := h.Protect(4, "cfg", "", func(obs opt.Observer) error {
		drive(obs, "gvn", 3)
		return nil
	}); fail != nil {
		t.Fatalf("fault fired on the wrong seed: %+v", fail)
	}
	fail := h.Protect(5, "cfg", "src", func(obs opt.Observer) error {
		drive(obs, "dce", 2) // non-matching pass: no fault
		drive(obs, "gvn", 1)
		return errors.New("unreachable")
	})
	if fail == nil || fail.Kind != KindCrash {
		t.Fatalf("injected panic not recorded as a crash: %+v", fail)
	}
	if !strings.Contains(fail.Message, "injected fault") {
		t.Errorf("message: %q", fail.Message)
	}
}

func TestInjectedStallFault(t *testing.T) {
	h := &Harness{
		StepBudget: 64,
		Faults:     &Faults{List: []Fault{{Kind: FaultStall, Pass: "licm", Seed: -1}}},
	}
	fail := h.Protect(9, "cfg", "", func(obs opt.Observer) error {
		drive(obs, "licm", 1)
		return errors.New("unreachable")
	})
	if fail == nil || fail.Kind != KindTimeout {
		t.Fatalf("injected stall not recorded as a timeout: %+v", fail)
	}
	if fail.Signature != "deadline:licm" {
		t.Errorf("signature = %q", fail.Signature)
	}
}

func TestFaultConfigRestriction(t *testing.T) {
	h := &Harness{Faults: &Faults{List: []Fault{
		{Kind: FaultPanic, Pass: "*", Seed: -1, Config: "gcc-sim -O3"},
	}}}
	if fail := h.Protect(1, "llvm-sim -O3", "", func(obs opt.Observer) error {
		drive(obs, "dce", 1)
		return nil
	}); fail != nil {
		t.Fatalf("config-restricted fault fired on the wrong config: %+v", fail)
	}
	if fail := h.Protect(1, "gcc-sim -O3", "", func(obs opt.Observer) error {
		drive(obs, "dce", 1)
		return nil
	}); fail == nil {
		t.Fatal("config-restricted fault did not fire on its config")
	}
}

func TestCorruptModule(t *testing.T) {
	f := &ir.Func{Name: "main"}
	b := &ir.Block{}
	in := &ir.Instr{Block: b}
	b.Instrs = []*ir.Instr{in}
	f.Blocks = []*ir.Block{b}
	m := &ir.Module{Funcs: []*ir.Func{f}}
	corruptModule(m)
	if in.Block != nil {
		t.Fatal("owner link not corrupted")
	}
}

func TestParseFaults(t *testing.T) {
	fs, err := ParseFaults("panic:gvn:5,stall:licm:7:llvm-sim -O3,corrupt:*:*")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: FaultPanic, Pass: "gvn", Seed: 5},
		{Kind: FaultStall, Pass: "licm", Seed: 7, Config: "llvm-sim -O3"},
		{Kind: FaultCorrupt, Pass: "*", Seed: -1},
	}
	if len(fs.List) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(fs.List), len(want))
	}
	for i, w := range want {
		if fs.List[i] != w {
			t.Errorf("fault %d = %+v, want %+v", i, fs.List[i], w)
		}
	}
	for _, bad := range []string{"", "explode:gvn:5", "panic:gvn", "panic::5", "panic:gvn:many"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestFaultRoundTrip(t *testing.T) {
	spec := "stall:licm:7:llvm-sim -O3"
	fs, err := ParseFaults(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.List[0].String(); got != spec {
		t.Errorf("round trip: %q != %q", got, spec)
	}
}

type fakeOutcome struct {
	Seed  int64  `json:"seed"`
	Label string `json:"label"`
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	cp := NewCheckpoint(path)
	if err := cp.Bind(map[string]string{"base_seed": "100", "trace": "false"}); err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{102, 100, 101} {
		if err := cp.Save(seed, &fakeOutcome{Seed: seed, Label: fmt.Sprintf("s%d", seed)}); err != nil {
			t.Fatal(err)
		}
	}

	re, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 3 {
		t.Fatalf("len = %d", re.Len())
	}
	seeds := re.Seeds()
	for i, want := range []int64{100, 101, 102} {
		if seeds[i] != want {
			t.Fatalf("seeds = %v", seeds)
		}
	}
	var out fakeOutcome
	ok, err := re.Restore(101, &out)
	if err != nil || !ok {
		t.Fatalf("restore: ok=%v err=%v", ok, err)
	}
	if out.Label != "s101" {
		t.Errorf("restored %+v", out)
	}
	if ok, _ := re.Restore(999, &out); ok {
		t.Error("restored a seed that never ran")
	}

	// Matching metadata binds; a differently-configured campaign is refused.
	if err := re.Bind(map[string]string{"base_seed": "100", "trace": "false"}); err != nil {
		t.Errorf("matching bind refused: %v", err)
	}
	if err := re.Bind(map[string]string{"base_seed": "200"}); err == nil {
		t.Error("mismatched campaign accepted")
	}
}

func TestCheckpointMissingFileIsFresh(t *testing.T) {
	cp, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 0 {
		t.Fatalf("len = %d", cp.Len())
	}
}

func TestCheckpointInMemory(t *testing.T) {
	cp := NewCheckpoint("")
	if err := cp.Save(1, &fakeOutcome{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var out fakeOutcome
	if ok, err := cp.Restore(1, &out); !ok || err != nil {
		t.Fatalf("in-memory restore: ok=%v err=%v", ok, err)
	}
}
