// Package harness is the fault-tolerant execution layer of campaign runs.
//
// The paper's real campaigns push millions of generated programs through
// compilers that crash, hang, and miscompile; the infrastructure around
// them survives every failure, triages it like a fuzzer, and keeps going.
// This package provides that layer for the simulated compilers: every
// per-(seed, config) unit of work runs under Protect, which
//
//   - converts panics into structured Failure records with a stack-derived
//     bucket signature (fuzzer-style crash dedup) and a persisted
//     reproducer (MiniC source + seed + config, ready for dce-reduce),
//   - bounds non-terminating pass fixpoints with a step-budget watchdog
//     (the pipeline analogue of interpreter fuel) and classifies budget
//     exhaustion as a timeout, separately from crashes,
//   - classifies returned errors into the failure taxonomy
//     (crash / timeout / miscompile / infeasible) via error sentinels.
//
// A deterministic fault-injection hook (Faults, faults.go) makes chosen
// pass instances panic, spin past the deadline, or corrupt the IR on
// chosen seeds, so campaign-level fault tolerance is itself testable.
// Checkpoint (checkpoint.go) persists per-seed outcomes so interrupted
// campaigns resume without recomputing completed seeds.
package harness

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"dcelens/internal/ir"
	"dcelens/internal/metrics"
	"dcelens/internal/opt"
)

// Kind classifies a unit failure (the failure taxonomy of DESIGN.md).
type Kind int

const (
	// KindCrash: the unit panicked or reported an internal error (e.g. the
	// IR verifier rejected a pass's output) — an internal compiler error.
	KindCrash Kind = iota
	// KindTimeout: the pipeline exceeded its step budget — a
	// non-terminating (or pathologically slow) pass fixpoint.
	KindTimeout
	// KindMiscompile: the compiled module's observable behaviour diverged
	// from ground truth.
	KindMiscompile
	// KindInfeasible: the program itself could not be analyzed
	// (instrumentation or ground-truth execution failed) — a program-level
	// failure, not a compiler one.
	KindInfeasible
)

var kindNames = map[Kind]string{
	KindCrash:      "crash",
	KindTimeout:    "timeout",
	KindMiscompile: "miscompile",
	KindInfeasible: "infeasible",
}

func (k Kind) String() string { return kindNames[k] }

// Error sentinels callers wrap to steer classification of returned errors.
// Anything not matching a sentinel classifies as KindCrash (an internal
// compiler error: the pipeline reported a problem with its own output).
var (
	ErrMiscompile = errors.New("miscompile")
	ErrInfeasible = errors.New("infeasible")
)

// Failure is one isolated unit failure: what failed, how it is bucketed,
// and everything needed to reproduce it.
type Failure struct {
	Kind   Kind   `json:"kind"`
	Seed   int64  `json:"seed"`
	Config string `json:"config,omitempty"` // empty for program-level failures

	// Message is the panic value or error text.
	Message string `json:"message"`
	// Signature is the dedup bucket key: the top in-repo stack frames for
	// panics, the stalled pass for timeouts, the digit-normalized message
	// for errors. Failures with equal signatures are "the same bug".
	Signature string `json:"signature"`
	// Stack is the captured goroutine stack of a panic (crashes only).
	Stack string `json:"stack,omitempty"`
	// Source is the instrumented MiniC reproducer; together with Seed and
	// Config it is a ready-made dce-reduce input.
	Source string `json:"source,omitempty"`
}

func (f *Failure) String() string {
	if f.Config == "" {
		return fmt.Sprintf("seed %d: %s: %s", f.Seed, f.Kind, f.Message)
	}
	return fmt.Sprintf("seed %d %s: %s: %s", f.Seed, f.Config, f.Kind, f.Message)
}

// DefaultStepBudget bounds observed pass instances per compilation. Real
// schedules execute well under a hundred instances; the two orders of
// magnitude of headroom mean only a genuinely runaway fixpoint (or an
// injected stall) can exhaust it.
const DefaultStepBudget = 4096

// Harness executes guarded units of work for one campaign.
type Harness struct {
	// StepBudget is the per-compilation pass-instance budget; <= 0 means
	// DefaultStepBudget.
	StepBudget int
	// Faults is the deterministic fault-injection plan; nil injects none.
	Faults *Faults
	// Metrics receives per-unit telemetry: every Protect call observes its
	// wall time into the "harness.unit" histogram, and classified failures
	// increment "harness.failures.<kind>". Nil disables the collection (and
	// its per-unit time.Now calls) entirely.
	Metrics *metrics.Registry
	// WallDeadline is the campaign's wall-clock budget (per-job resource
	// budgets in service mode): the watchdog checks it at every observed
	// pass instance, and a unit still running past it fails as a timeout
	// with the "deadline:wall" bucket. The zero time disables the check
	// (and its per-pass time.Now call).
	WallDeadline time.Time
}

func (h *Harness) budget() int {
	if h == nil || h.StepBudget <= 0 {
		return DefaultStepBudget
	}
	return h.StepBudget
}

// deadlinePanic is the watchdog's control-flow sentinel; Protect converts
// it into a KindTimeout failure.
type deadlinePanic struct {
	pass  string
	steps int
	wall  bool // the wall-clock deadline fired, not the step budget
}

// guard is the observer Protect attaches to the pipeline: it counts pass
// instances against the step budget, checks the wall-clock deadline, and
// triggers injected faults.
type guard struct {
	seed      int64
	budget    int
	deadline  time.Time
	steps     int
	last      string
	faults    []Fault
	corrupted bool
}

func (g *guard) BeginPipeline(m *ir.Module) {}

func (g *guard) AfterPass(m *ir.Module, pass string, scheduleIndex, iteration int, st opt.PassStats) {
	g.last = pass
	g.tick()
	for i := range g.faults {
		f := &g.faults[i]
		if f.Pass != "*" && f.Pass != pass {
			continue
		}
		switch f.Kind {
		case FaultPanic:
			panic(fmt.Sprintf("injected fault: pass %s panicked (seed %d)", pass, g.seed))
		case FaultStall:
			// A non-terminating fixpoint: burn watchdog steps until the
			// deadline fires. The loop is bounded by the budget, so the
			// "hang" is deterministic and instant.
			for {
				g.tick()
			}
		case FaultCorrupt:
			if !g.corrupted {
				g.corrupted = true
				corruptModule(m)
			}
		}
	}
}

// tick charges one step and panics the deadline sentinel past the budget
// or the wall-clock deadline.
func (g *guard) tick() {
	g.steps++
	if g.budget > 0 && g.steps > g.budget {
		panic(deadlinePanic{pass: g.last, steps: g.steps})
	}
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		panic(deadlinePanic{pass: g.last, steps: g.steps, wall: true})
	}
}

// Protect runs one guarded unit of work. fn receives the watchdog/fault
// observer to attach to the pipeline it drives (via opt.Observers when it
// already has one). A nil return means the unit completed; otherwise the
// returned Failure records the classified, bucketed, reproducible fault.
// Protect never lets a panic escape.
func (h *Harness) Protect(seed int64, config, source string, fn func(obs opt.Observer) error) (fail *Failure) {
	g := &guard{seed: seed, budget: h.budget()}
	if h != nil {
		g.deadline = h.WallDeadline
		if h.Faults != nil {
			g.faults = h.Faults.active(seed, config)
		}
	}
	if h != nil && h.Metrics != nil {
		// Registered before the recovery defer so it runs after it (LIFO)
		// and sees the classified failure.
		start := time.Now()
		defer func() {
			h.Metrics.Histogram("harness.unit").Observe(time.Since(start))
			if fail != nil {
				h.Metrics.Counter("harness.failures." + fail.Kind.String()).Inc()
			}
		}()
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if dp, ok := r.(deadlinePanic); ok {
			fail = &Failure{
				Kind:      KindTimeout,
				Seed:      seed,
				Config:    config,
				Message:   fmt.Sprintf("pipeline exceeded step budget %d (last pass %s)", g.budget, dp.pass),
				Signature: "deadline:" + dp.pass,
				Source:    source,
			}
			if dp.wall {
				// Wall-budget exhaustion buckets together regardless of
				// which pass the clock happened to expire under: the bug is
				// the budget, not the pass.
				fail.Message = fmt.Sprintf("pipeline exceeded wall deadline (last pass %s)", dp.pass)
				fail.Signature = "deadline:wall"
			}
			return
		}
		stack := debug.Stack()
		fail = &Failure{
			Kind:      KindCrash,
			Seed:      seed,
			Config:    config,
			Message:   fmt.Sprint(r),
			Signature: panicSignature(stack),
			Stack:     string(stack),
			Source:    source,
		}
	}()
	if err := fn(g); err != nil {
		return h.classify(seed, config, source, err)
	}
	return nil
}

// classify converts a returned error into a Failure using the sentinel
// taxonomy.
func (h *Harness) classify(seed int64, config, source string, err error) *Failure {
	f := &Failure{
		Kind:    KindCrash,
		Seed:    seed,
		Config:  config,
		Message: err.Error(),
		Source:  source,
	}
	switch {
	case errors.Is(err, ErrMiscompile):
		f.Kind = KindMiscompile
	case errors.Is(err, ErrInfeasible):
		f.Kind = KindInfeasible
	}
	f.Signature = f.Kind.String() + ":" + normalizeMessage(err.Error())
	return f
}

// panicSignature derives the crash bucket from a goroutine stack: the top
// in-repo frames outside this package, digits dropped, joined innermost
// first. Two panics from the same code path bucket together even when
// value IDs or seeds differ in the message.
func panicSignature(stack []byte) string {
	var frames []string
	for _, line := range strings.Split(string(stack), "\n") {
		line = strings.TrimSpace(line)
		// Frame-name lines look like "dcelens/internal/opt.run(...)"; the
		// file:line lines that follow are indented with a tab originally
		// and carry a path separator before a colon — skip non-call lines.
		if !strings.HasPrefix(line, "dcelens/") || !strings.Contains(line, "(") {
			continue
		}
		name := line[:strings.Index(line, "(")]
		name = strings.TrimPrefix(name, "dcelens/")
		if strings.HasPrefix(name, "internal/harness.") {
			continue // the guard and Protect machinery are never the bug
		}
		frames = append(frames, name)
		if len(frames) == 3 {
			break
		}
	}
	if len(frames) == 0 {
		return "panic:unknown"
	}
	return strings.Join(frames, "<-")
}

// normalizeMessage strips run-specific detail (digit runs) so that the
// same error at different seeds or value IDs buckets identically, and
// truncates to keep signatures table-friendly.
func normalizeMessage(msg string) string {
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	var b strings.Builder
	lastHash := false
	for _, r := range msg {
		if r >= '0' && r <= '9' {
			if !lastHash {
				b.WriteByte('#')
				lastHash = true
			}
			continue
		}
		lastHash = false
		b.WriteRune(r)
	}
	out := b.String()
	if len(out) > 120 {
		out = out[:120]
	}
	return out
}
