package harness

import (
	"sync"
	"testing"

	"dcelens/internal/metrics"
)

// TestProgressConcurrentWriters hammers Progress from writer goroutines
// (the campaign workers appending findings and bumping counters) while
// readers poll every accessor (the heartbeat and the monitor endpoints).
// It asserts the end state and, under -race, that no access is unsynchronized.
func TestProgressConcurrentWriters(t *testing.T) {
	reg := metrics.New()
	p := NewProgress(64, 8, reg)
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.Done()
				p.Findings()
				p.FindingCount()
				p.FailureCounts()
				p.ETA()
				p.Workers()
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				p.AddFindings(map[string]any{"writer": w, "i": i})
				reg.Counter(metrics.CounterSeedsAnalyzed).Inc()
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if n := p.FindingCount(); n != writers*perWriter {
		t.Fatalf("findings lost: %d, want %d", n, writers*perWriter)
	}
	if p.Done() != writers*perWriter {
		t.Fatalf("done count %d, want %d", p.Done(), writers*perWriter)
	}
}
