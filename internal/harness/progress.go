package harness

import (
	"sync"
	"time"

	"dcelens/internal/metrics"
)

// Progress is the live, lock-guarded view of a running campaign: how many
// seeds are done (read from the campaign's metrics counters), the findings
// discovered so far (appended by the corpus layer as seeds complete), and
// an ETA derived from the per-seed wall-time histogram. It is the single
// source both operator surfaces read — the stderr heartbeat
// (metrics.Heartbeat.Progress) and the monitor's /progress and /findings
// endpoints — so the terminal and HTTP views never disagree.
//
// All methods are nil-safe, matching the metrics registry's design rule: a
// campaign without monitoring threads a nil *Progress and pays only nil
// checks.
type Progress struct {
	total   int
	workers int
	reg     *metrics.Registry
	start   time.Time

	mu       sync.Mutex
	findings []any
}

// NewProgress starts tracking a campaign of total seeds running on workers
// parallel workers, with reg as the counter/histogram source. The ETA clock
// starts now.
func NewProgress(total, workers int, reg *metrics.Registry) *Progress {
	if workers <= 0 {
		workers = 1
	}
	return &Progress{total: total, workers: workers, reg: reg, start: time.Now()}
}

// Total returns the campaign's seed count.
func (p *Progress) Total() int {
	if p == nil {
		return 0
	}
	return p.total
}

// Workers returns the parallel worker count the campaign runs on (the
// denominator of the ETA estimate; the monitor's /progress reports it).
func (p *Progress) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Done returns the number of completed seeds (freshly analyzed plus
// checkpoint-restored).
func (p *Progress) Done() int {
	if p == nil {
		return 0
	}
	return int(p.reg.Counter(metrics.CounterSeedsAnalyzed).Value() +
		p.reg.Counter(metrics.CounterSeedsRestored).Value())
}

// Elapsed returns the wall time since tracking started.
func (p *Progress) Elapsed() time.Duration {
	if p == nil {
		return 0
	}
	return time.Since(p.start)
}

// FailureCounts returns the per-kind failure counters (crash, timeout,
// miscompile, infeasible) as recorded by this process. Restored seeds'
// failures are not re-counted here (they reach the final report through
// outcome aggregation instead).
func (p *Progress) FailureCounts() map[string]int64 {
	if p == nil {
		return map[string]int64{}
	}
	return map[string]int64{
		KindCrash.String():      p.reg.Counter(metrics.CounterCrashes).Value(),
		KindTimeout.String():    p.reg.Counter(metrics.CounterTimeouts).Value(),
		KindMiscompile.String(): p.reg.Counter(metrics.CounterMiscompiles).Value(),
		KindInfeasible.String(): p.reg.Counter(metrics.CounterInfeasible).Value(),
	}
}

// AddFindings appends findings discovered by a completed seed. The values
// are opaque to this package (the corpus layer passes its Finding records);
// they only need to JSON-marshal for the /findings endpoint. Nil-safe.
func (p *Progress) AddFindings(fs ...any) {
	if p == nil || len(fs) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.findings = append(p.findings, fs...)
}

// Findings returns a copy of the findings recorded so far.
func (p *Progress) Findings() []any {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]any, len(p.findings))
	copy(out, p.findings)
	return out
}

// FindingCount returns the number of findings recorded so far.
func (p *Progress) FindingCount() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.findings)
}

// Occupancy returns each worker's busy fraction of the campaign's elapsed
// wall clock so far, read from the scheduler probe's per-worker busy
// counters (metrics.WorkerBusyCounter). The slice is indexed by worker.
// Nil for deterministic registries — occupancy is a pure wall-clock
// quantity the deterministic artifacts must not depend on — and before
// any time has elapsed.
func (p *Progress) Occupancy() []float64 {
	if p == nil || p.reg == nil || p.reg.Deterministic {
		return nil
	}
	elapsed := time.Since(p.start).Nanoseconds()
	if elapsed <= 0 {
		return nil
	}
	out := make([]float64, p.workers)
	for w := range out {
		out[w] = float64(p.reg.Counter(metrics.WorkerBusyCounter(w)).Value()) / float64(elapsed)
	}
	return out
}

// ETA estimates the remaining campaign wall time from the per-seed
// wall-time histogram (metrics.HistCampaignSeed): remaining seeds times the
// mean seed duration, divided by the worker count. Before any seed
// completes there is no basis and ok is false; a finished campaign reports
// (0, true). Restored seeds complete without feeding the histogram, so on a
// resume the estimate starts once the first fresh seed lands (the mean then
// reflects this process's real throughput).
func (p *Progress) ETA() (eta time.Duration, ok bool) {
	if p == nil {
		return 0, false
	}
	remaining := p.total - p.Done()
	if remaining <= 0 {
		return 0, true
	}
	mean := p.reg.Histogram(metrics.HistCampaignSeed).Mean()
	if mean <= 0 {
		return 0, false
	}
	return time.Duration(float64(mean) * float64(remaining) / float64(p.workers)), true
}
