package corpus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dcelens/internal/harness"
	"dcelens/internal/pipeline"
	"dcelens/internal/sched"
)

// MergeCheckpoints recombines the checkpoints of a sharded campaign into
// one Campaign, as if the whole corpus had run in a single process. Each
// path is one shard's checkpoint file; together they must cover every
// shard of the campaign exactly once, agree on every campaign option, and
// hold a contiguous corpus (every seed of every finished shard).
//
// Aggregation reruns nothing: Stats and Findings derive from the restored
// outcomes alone, through the same fully-sorted aggregation a live
// campaign uses, so the merged report is byte-identical to the report an
// unsharded run over the same corpus would have produced.
func MergeCheckpoints(paths []string) (*Campaign, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("corpus: merge: no checkpoints given")
	}
	type part struct {
		path  string
		cp    *harness.Checkpoint
		meta  map[string]string
		shard sched.Shard
	}
	parts := make([]*part, 0, len(paths))
	for _, path := range paths {
		cp, err := harness.LoadCheckpoint(path)
		if err != nil {
			return nil, fmt.Errorf("corpus: merge: %w", err)
		}
		meta := cp.Meta()
		if meta == nil || cp.Len() == 0 {
			return nil, fmt.Errorf("corpus: merge: %s: empty checkpoint (no completed seeds)", path)
		}
		spec, ok := meta["shard"]
		if !ok {
			spec = "0/1" // pre-shard checkpoints are whole campaigns
		}
		shard, err := sched.ParseShard(spec)
		if err != nil {
			return nil, fmt.Errorf("corpus: merge: %s: %w", path, err)
		}
		parts = append(parts, &part{path: path, cp: cp, meta: meta, shard: shard})
	}

	// Every shard must come from the same campaign (identical meta modulo
	// the shard key) and the set must tile it: same count, each index once.
	first := parts[0]
	for _, p := range parts[1:] {
		for k, v := range first.meta {
			if k == "shard" {
				continue
			}
			if got := p.meta[k]; got != v {
				return nil, fmt.Errorf("corpus: merge: %s: campaign mismatch: %s is %q, %s has %q",
					p.path, k, got, first.path, v)
			}
		}
		if p.shard.Count != first.shard.Count {
			return nil, fmt.Errorf("corpus: merge: %s is shard %s but %s is shard %s",
				p.path, p.shard, first.path, first.shard)
		}
	}
	seen := make(map[int]string, len(parts))
	for _, p := range parts {
		if prev, dup := seen[p.shard.Index]; dup {
			return nil, fmt.Errorf("corpus: merge: shard %s given twice (%s and %s)", p.shard, prev, p.path)
		}
		seen[p.shard.Index] = p.path
	}
	if len(seen) != first.shard.Count {
		missing := make([]string, 0)
		for i := 0; i < first.shard.Count; i++ {
			if _, ok := seen[i]; !ok {
				missing = append(missing, fmt.Sprintf("%d/%d", i, first.shard.Count))
			}
		}
		return nil, fmt.Errorf("corpus: merge: incomplete shard set: missing %s", strings.Join(missing, ", "))
	}

	o, err := optionsFromMeta(first.meta)
	if err != nil {
		return nil, fmt.Errorf("corpus: merge: %s: %w", first.path, err)
	}

	byIdx := map[int]*SeedOutcome{}
	for _, p := range parts {
		for _, seed := range p.cp.Seeds() {
			out := &SeedOutcome{}
			if _, err := p.cp.Restore(seed, out); err != nil {
				return nil, fmt.Errorf("corpus: merge: %s: %w", p.path, err)
			}
			idx := int(seed - o.BaseSeed)
			if idx < 0 {
				return nil, fmt.Errorf("corpus: merge: %s: seed %d precedes base seed %d", p.path, seed, o.BaseSeed)
			}
			if !p.shard.Member(idx) {
				return nil, fmt.Errorf("corpus: merge: %s: seed %d does not belong to shard %s", p.path, seed, p.shard)
			}
			if _, dup := byIdx[idx]; dup {
				return nil, fmt.Errorf("corpus: merge: seed %d present in more than one checkpoint", seed)
			}
			byIdx[idx] = out
		}
	}

	// The union must be a contiguous corpus prefix: a gap means some shard
	// was interrupted before finishing, and merging would silently drop
	// seeds from the middle of the corpus.
	o.Programs = len(byIdx)
	idxs := make([]int, 0, len(byIdx))
	for idx := range byIdx {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for want, idx := range idxs {
		if idx != want {
			return nil, fmt.Errorf("corpus: merge: incomplete corpus: seed %d missing (shard %s interrupted?)",
				o.BaseSeed+int64(want), seen[want%first.shard.Count])
		}
	}

	c := &Campaign{
		Opts:     o,
		Programs: make([]*ProgramResult, o.Programs),
		Outcomes: make([]*SeedOutcome, o.Programs),
	}
	for idx, out := range byIdx {
		c.Outcomes[idx] = out
	}
	c.aggregate()
	return c, nil
}

// optionsFromMeta reconstructs the aggregation-relevant campaign options
// from checkpoint metadata (the same fields campaignMeta records).
func optionsFromMeta(meta map[string]string) (Options, error) {
	var o Options
	base, err := strconv.ParseInt(meta["base_seed"], 10, 64)
	if err != nil {
		return o, fmt.Errorf("bad base_seed %q", meta["base_seed"])
	}
	o.BaseSeed = base
	if o.Trace, err = strconv.ParseBool(meta["trace"]); err != nil {
		return o, fmt.Errorf("bad trace %q", meta["trace"])
	}
	if o.VerifySemantics, err = strconv.ParseBool(meta["verify"]); err != nil {
		return o, fmt.Errorf("bad verify %q", meta["verify"])
	}
	for _, s := range strings.Split(meta["personalities"], ";") {
		if s == "" {
			continue
		}
		p := pipeline.Personality(s)
		if p != pipeline.GCC && p != pipeline.LLVM {
			return o, fmt.Errorf("unknown personality %q", s)
		}
		o.Personalities = append(o.Personalities, p)
	}
	if len(o.Personalities) == 0 {
		return o, fmt.Errorf("no personalities recorded")
	}
	for _, s := range strings.Split(meta["levels"], ";") {
		if s == "" {
			continue
		}
		lvl, ok := parseLevel(s)
		if !ok {
			return o, fmt.Errorf("unknown level %q", s)
		}
		o.Levels = append(o.Levels, lvl)
	}
	if len(o.Levels) == 0 {
		return o, fmt.Errorf("no levels recorded")
	}
	return o, nil
}

// parseLevel maps a rendered level name ("-O2") back to its Level.
func parseLevel(s string) (pipeline.Level, bool) {
	for _, l := range pipeline.Levels {
		if l.String() == s {
			return l, true
		}
	}
	return 0, false
}
