package corpus

import (
	"time"

	"dcelens/internal/ast"
	"dcelens/internal/core"
	"dcelens/internal/harness"
	"dcelens/internal/metrics"
	"dcelens/internal/sched"
	"dcelens/internal/span"
)

// bufEvent is one deferred event-log emission.
type bufEvent struct {
	name   string
	fields map[string]any
}

// eventBuf collects a stage's events for deferred, sequenced emission:
// workers record what happened as it happens, but nothing reaches the
// campaign event log until the owning slot's turn comes up in corpus
// order. That is what keeps event-log sequence numbers — and the live
// findings order — independent of how the scheduler interleaved the work.
type eventBuf []bufEvent

func (b *eventBuf) emit(name string, fields map[string]any) {
	*b = append(*b, bufEvent{name, fields})
}

func (b eventBuf) flush(l *metrics.EventLog) {
	for _, e := range b {
		l.Emit(e.name, e.fields)
	}
}

// seedJob is one seed's fork-join job on the sched engine. Its sequencer
// slots reproduce the serial event order exactly: slot `slot` carries
// seed_begin plus the prepare stage's events, slots slot+1+u carry unit
// u's events in config order, and the final slot carries the checkpoint
// event, seed_end, and the live-progress findings append. Span buffers
// ride the same slots, so the timeline's logical spans flush in corpus
// order too.
//
// All mutable fields are written by at most one stage at a time; the
// engine's lock provides the prepare→units→finalize happens-before edges,
// and each unit writes only its own index of the unit slices.
type seedJob struct {
	o    *Options
	h    *harness.Harness
	idx  int   // corpus index
	seed int64 // o.BaseSeed + idx
	cfgs []ConfigKey
	slot int // first sequencer slot of this seed's block
	seq  *sched.Sequencer

	results  []*ProgramResult
	outcomes []*SeedOutcome

	start    time.Time
	r        *ProgramResult
	src      string
	restored bool
	skipped  bool
	unitEv   []eventBuf
	unitSp   []spanBuf
	unitAn   []*core.Analysis
	unitFail []*harness.Failure
}

// spans reports whether the campaign collects a span timeline; a nil
// buffer pointer disables every collection site downstream.
func (j *seedJob) spans() bool { return j.o.Spans != nil }

// prepare restores the seed from the checkpoint or builds its program,
// reporting how many config units follow (0 for restored and
// program-failed seeds).
func (j *seedJob) prepare(w int) (int, error) {
	if j.o.Stop != nil && j.o.Stop() {
		// Draining: leave the seed unrun and its slots silent. Completed
		// seeds are already checkpointed, so a resume runs exactly the
		// skipped ones and reports byte-identically to an uninterrupted run.
		j.skipped = true
		j.flush(j.slot, nil, nil, nil)
		j.skipUnits()
		j.seq.Done(j.lastSlot(), nil)
		return 0, nil
	}
	var ev eventBuf
	ev.emit("seed_begin", map[string]any{"seed": j.seed})
	if j.o.Checkpoint != nil {
		var restored SeedOutcome
		ok, err := j.o.Checkpoint.Restore(j.seed, &restored)
		if err != nil {
			return 0, err
		}
		if ok {
			// A restored seed contributes its checkpointed outcome to
			// aggregation but adds nothing to the live registry beyond the
			// restored count — and emits no spans: its timings belong to
			// the process that computed them, and span silence is what
			// makes a resumed trace byte-identical to an uninterrupted one.
			j.restored = true
			j.outcomes[j.idx] = &restored
			j.o.Metrics.Counter(metrics.CounterSeedsRestored).Inc()
			ev.emit("seed_end", map[string]any{
				"seed": j.seed, "ok": restored.Ok, "restored": true,
			})
			j.flush(j.slot, ev, nil, restored.Findings)
			j.skipUnits()
			j.seq.Done(j.lastSlot(), nil)
			return 0, nil
		}
	}
	j.start = time.Now()
	var sp spanBuf
	spp := (*spanBuf)(nil)
	if j.spans() {
		spp = &sp
	}
	j.r = buildProgram(*j.o, j.h, j.seed, &ev, spp, w+1)
	if spp != nil {
		spp.add(span.Span{
			Name: "prepare", Cat: span.CatSeed, TID: w + 1,
			Start: j.start, Dur: time.Since(j.start),
			Args: []span.Arg{span.Int64("seed", j.seed), span.Bool("ok", j.r.Err == nil)},
		})
	}
	if j.r.Err != nil {
		// Program-level failure: no config units; finalize still records
		// the outcome, checkpoint, and seed_end.
		j.flush(j.slot, ev, sp, nil)
		j.skipUnits()
		return 0, nil
	}
	j.src = ast.Print(j.r.Ins.Prog)
	j.unitEv = make([]eventBuf, len(j.cfgs))
	j.unitSp = make([]spanBuf, len(j.cfgs))
	j.unitAn = make([]*core.Analysis, len(j.cfgs))
	j.unitFail = make([]*harness.Failure, len(j.cfgs))
	j.flush(j.slot, ev, sp, nil)
	return len(j.cfgs), nil
}

// unit compiles and analyzes one configuration, storing its result in the
// unit's own slot for finalize to merge.
func (j *seedJob) unit(w, u int) error {
	key := j.cfgs[u]
	ev := &j.unitEv[u]
	sp := (*spanBuf)(nil)
	if j.spans() {
		sp = &j.unitSp[u]
	}
	an, fail := runConfig(*j.o, j.h, j.r, key, j.src, j.o.Trace, j.o.Remarks, ev, sp, w+1)
	if fail != nil && (j.o.Trace || j.o.Remarks) {
		// Graceful degradation: the observers themselves (the trace
		// recorder's per-pass IR scans, the remark collector) may be what
		// broke — retry once with both off before giving up on the config.
		if ran, retry := runConfig(*j.o, j.h, j.r, key, j.src, false, false, ev, sp, w+1); retry == nil {
			an, fail = ran, nil
		}
	}
	j.unitAn[u] = an
	if fail != nil {
		j.unitFail[u] = fail
		ev.emit("failure", failureFields(fail))
	}
	j.seq.Done(j.slot+1+u, func() {
		j.unitEv[u].flush(j.o.Events)
		if j.spans() {
			j.unitSp[u].flush(j.o.Spans)
		}
	})
	return nil
}

// finalize merges the unit results into the seed's ProgramResult — the
// single-writer replacement for the per-config map and slice writes the
// serial loop did in place — then derives the outcome, feeds the metrics
// and checkpoint, and schedules the seed's closing events.
func (j *seedJob) finalize(w int) error {
	if j.restored || j.skipped {
		return nil
	}
	var sp spanBuf
	spp := (*spanBuf)(nil)
	var fstart time.Time
	if j.spans() {
		spp = &sp
		fstart = time.Now()
	}
	if j.o.SeedHook != nil {
		// The chaos seam: a panicking hook aborts the job here, before the
		// seed's outcome exists, so a retry recomputes exactly this seed.
		j.o.SeedHook(j.idx, j.seed)
	}
	for u := range j.unitAn {
		if an := j.unitAn[u]; an != nil {
			j.r.PerCfg[j.cfgs[u]] = an
		}
		if f := j.unitFail[u]; f != nil {
			j.r.Failures = append(j.r.Failures, *f)
		}
	}
	out := outcomeOf(*j.o, j.r)
	j.outcomes[j.idx] = out
	j.results[j.idx] = j.r
	d := time.Since(j.start)
	j.o.Metrics.Histogram(metrics.HistCampaignSeed).Observe(d)
	j.o.Metrics.Counter(metrics.CounterSeedsAnalyzed).Inc()
	countFailures(j.o.Metrics, out.Failures)
	var ev, rev eventBuf
	if rs := out.Remarks; rs != nil {
		countRemarks(j.o.Metrics, rs)
		if j.o.RemarkLog != nil {
			rev.emit("remarks", remarkFields(j.seed, rs))
		}
	}
	var ckErr error
	if j.o.Checkpoint != nil {
		// Save immediately (crash resilience does not wait for sequencing);
		// only the checkpoint *event* is deferred to the seed's slot.
		ckStart := spp.now()
		ckErr = j.o.Checkpoint.Save(j.seed, out)
		if ckErr == nil {
			ev.emit("checkpoint", map[string]any{"seed": j.seed})
			if spp != nil {
				spp.add(span.Span{
					Name: "checkpoint", Cat: span.CatCheckpoint, TID: w + 1,
					Start: ckStart, Dur: time.Since(ckStart),
					Args: []span.Arg{span.Int64("seed", j.seed)},
				})
			}
		}
	}
	ev.emit("seed_end", map[string]any{
		"seed": j.seed, "ok": out.Ok,
		"failures": len(out.Failures), "d_us": d.Microseconds(),
	})
	if spp != nil {
		spp.add(span.Span{
			Name: "finalize", Cat: span.CatSeed, TID: w + 1,
			Start: fstart, Dur: time.Since(fstart),
			Args: []span.Arg{span.Int64("seed", j.seed), span.Bool("ok", out.Ok)},
		})
	}
	j.seq.Done(j.lastSlot(), func() {
		ev.flush(j.o.Events)
		rev.flush(j.o.RemarkLog)
		sp.flush(j.o.Spans)
		progressFindings(j.o.Progress, out.Findings)
	})
	return ckErr
}

// flush schedules ev's emissions, sp's spans, and a completed seed's
// findings for in-order delivery when slot's turn comes.
func (j *seedJob) flush(slot int, ev eventBuf, sp spanBuf, findings []Finding) {
	j.seq.Done(slot, func() {
		ev.flush(j.o.Events)
		sp.flush(j.o.Spans)
		progressFindings(j.o.Progress, findings)
	})
}

// skipUnits releases the seed's unit slots unused (restored seeds and
// program-level failures have no config units).
func (j *seedJob) skipUnits() {
	for u := range j.cfgs {
		j.seq.Done(j.slot+1+u, nil)
	}
}

// lastSlot is the seed's closing slot (checkpoint + seed_end + findings).
func (j *seedJob) lastSlot() int { return j.slot + 1 + len(j.cfgs) }
