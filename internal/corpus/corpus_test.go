package corpus

import (
	"reflect"
	"testing"

	"dcelens/internal/cgen"
	"dcelens/internal/parser"
	"dcelens/internal/pipeline"
	"dcelens/internal/reduce"
	"dcelens/internal/sema"
)

// smallCampaign runs a fast campaign shared by several tests.
func smallCampaign(t *testing.T) *Campaign {
	t.Helper()
	c, err := Run(Options{Programs: 8, BaseSeed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Stats.Errors) > 0 {
		t.Fatalf("campaign errors: %v", c.Stats.Errors)
	}
	return c
}

func TestCampaignStatistics(t *testing.T) {
	c := smallCampaign(t)
	s := c.Stats
	if s.Programs != 8 {
		t.Fatalf("programs: %d", s.Programs)
	}
	if s.TotalMarkers != s.DeadMarkers+s.AliveMarkers {
		t.Error("marker counts inconsistent")
	}
	if s.DeadMarkers == 0 || s.AliveMarkers == 0 {
		t.Error("degenerate corpus")
	}
	// Dead-block prevalence should be Csmith-like: most blocks dead.
	if float64(s.DeadMarkers) < 0.6*float64(s.TotalMarkers) {
		t.Errorf("dead fraction too low: %d/%d", s.DeadMarkers, s.TotalMarkers)
	}
	// Table 1 monotonicity O0 > O1 >= O2 for both personalities.
	for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
		o0 := s.Missed[ConfigKey{p, pipeline.O0}]
		o1 := s.Missed[ConfigKey{p, pipeline.O1}]
		o2 := s.Missed[ConfigKey{p, pipeline.O2}]
		if !(o0 > o1 && o1 >= o2) {
			t.Errorf("%s: missed counts not monotone O0=%d O1=%d O2=%d", p, o0, o1, o2)
		}
		// Primary missed <= missed.
		for _, lvl := range pipeline.Levels {
			k := ConfigKey{p, lvl}
			if s.Primary[k] > s.Missed[k] {
				t.Errorf("%s %s: primary %d > missed %d", p, lvl, s.Primary[k], s.Missed[k])
			}
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	c1, err := Run(Options{Programs: 3, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Run(Options{Programs: 3, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Findings) != len(c2.Findings) {
		t.Fatalf("nondeterministic findings: %d vs %d", len(c1.Findings), len(c2.Findings))
	}
	for i := range c1.Findings {
		if !reflect.DeepEqual(c1.Findings[i], c2.Findings[i]) {
			t.Fatalf("finding %d differs: %+v vs %+v", i, c1.Findings[i], c2.Findings[i])
		}
	}
	if c1.Stats.DeadMarkers != c2.Stats.DeadMarkers ||
		c1.Stats.DiffMissed[pipeline.GCC] != c2.Stats.DiffMissed[pipeline.GCC] {
		t.Error("nondeterministic statistics")
	}
}

func TestReduceFinding(t *testing.T) {
	c := smallCampaign(t)
	if len(c.Findings) == 0 {
		t.Skip("no findings in this corpus slice")
	}
	// Pick a primary finding if available (smaller reductions).
	f := c.Findings[0]
	for _, cand := range c.Findings {
		if cand.Primary {
			f = cand
			break
		}
	}
	rc, err := c.ReduceFinding(f, reduce.Options{MaxChecks: 600, MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	orig := c.Result(f.Seed)
	if rc.Nodes <= 0 {
		t.Fatal("empty reduction")
	}
	// The reduced case must be dramatically smaller than the original
	// program (the paper's reductions go from hundreds of lines to ~10).
	if rc.Nodes > origNodes(orig)/2 {
		t.Errorf("weak reduction: %d of %d nodes", rc.Nodes, origNodes(orig))
	}
	// And it must still exhibit the miss under the standard oracle.
	target := pipeline.New(f.Personality, f.Level)
	var ref *pipeline.Config
	if f.Kind == KindCompilerDiff {
		ref = pipeline.New(other(f.Personality), pipeline.O3)
	} else {
		ref = pipeline.New(f.Personality, pipeline.O1)
	}
	prog, err := parser.Parse(rc.Source)
	if err != nil {
		t.Fatalf("reduced case invalid: %v\n%s", err, rc.Source)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatalf("reduced case fails sema: %v\n%s", err, rc.Source)
	}
	if !InterestingnessFor(f.Marker, target, ref)(prog) {
		t.Errorf("reduced case no longer interesting:\n%s", rc.Source)
	}
}

func origNodes(r *ProgramResult) int {
	n := 0
	for range r.Ins.Markers {
		n++
	}
	// Use the marker count as a crude size floor and the printed length as
	// the real comparison basis.
	return len([]byte(SourceOf(r))) / 4
}

func TestTriageModel(t *testing.T) {
	c := smallCampaign(t)
	var cases []*ReducedCase
	budget := 3
	for _, f := range c.FindingsOf(KindCompilerDiff, pipeline.GCC, true) {
		if budget == 0 {
			break
		}
		budget--
		rc, err := c.ReduceFinding(f, reduce.Options{MaxChecks: 400, MaxRounds: 3})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, rc)
	}
	if len(cases) == 0 {
		t.Skip("no gcc compiler-diff findings in this slice")
	}
	tri, err := TriageCases(pipeline.GCC, cases)
	if err != nil {
		t.Fatal(err)
	}
	if tri.Reported != len(cases) {
		t.Errorf("reported %d, want %d", tri.Reported, len(cases))
	}
	if tri.Confirmed+tri.Duplicate != tri.Reported {
		t.Errorf("triage counts inconsistent: %+v", tri)
	}
	if tri.Fixed > tri.Confirmed {
		t.Errorf("fixed > confirmed: %+v", tri)
	}
}

func TestBisectRegressionsFromCampaign(t *testing.T) {
	// A corpus slice large enough to very likely contain level regressions
	// for gcc-sim (widen/alias/sra are common patterns).
	c, err := Run(Options{Programs: 12, BaseSeed: 300})
	if err != nil {
		t.Fatal(err)
	}
	outs, attempted, err := c.BisectRegressions(pipeline.GCC, false, 10)
	if err != nil {
		t.Fatal(err)
	}
	if attempted == 0 {
		t.Skip("no level-diff findings to bisect in this slice")
	}
	for _, o := range outs {
		if !o.Commit.Regression {
			t.Errorf("bisected to a non-regression commit: %s (%s)", o.Commit.ID, o.Commit.Desc)
		}
	}
}

func TestSmallGeneratorConfig(t *testing.T) {
	c, err := Run(Options{
		Programs:  4,
		BaseSeed:  9,
		GenConfig: cgen.SmallConfig,
		Levels:    []pipeline.Level{pipeline.O1, pipeline.O3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Programs != 4 {
		t.Fatalf("programs: %d (%v)", c.Stats.Programs, c.Stats.Errors)
	}
}

func TestNormalizeForDedup(t *testing.T) {
	// Two alpha-equivalent reductions must normalize identically.
	a := `
void DCEMarker3(void);
static int foo = 0;
int main(void) {
  if (foo) {
    DCEMarker3();
  }
  foo = 0;
  return 0;
}`
	b := `
void DCEMarker7(void);
static int bar = 0;
int main(void) {
  if (bar) {
    DCEMarker7();
  }
  bar = 0;
  return 0;
}`
	na := normalizeForDedup(a, "DCEMarker3")
	nb := normalizeForDedup(b, "DCEMarker7")
	if na != nb {
		t.Fatalf("alpha-equivalent programs normalize differently:\n%s\n---\n%s", na, nb)
	}
	// A structurally different program must not collide.
	c := `
void DCEMarker0(void);
static int x = 1;
int main(void) {
  if (x) {
    DCEMarker0();
  }
  return 0;
}`
	if normalizeForDedup(c, "DCEMarker0") == na {
		t.Fatal("different programs collided")
	}
}
