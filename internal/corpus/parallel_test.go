package corpus

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dcelens/internal/harness"
	"dcelens/internal/metrics"
	"dcelens/internal/sched"
)

// eventIdentity projects a JSONL event stream onto its identity fields:
// timing fields (t_ms, d_us, workers) vary run to run, everything else —
// including seq — must be byte-identical between a serial and a parallel
// campaign.
func eventIdentity(t *testing.T, raw string) []string {
	t.Helper()
	var out []string
	wantSeq := int64(1)
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		seq := int64(obj["seq"].(float64))
		if seq != wantSeq {
			t.Fatalf("event seq %d out of order (want %d): %s", seq, wantSeq, line)
		}
		wantSeq++
		delete(obj, "t_ms")
		delete(obj, "d_us")
		delete(obj, "workers")
		b, err := json.Marshal(obj)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	return out
}

// TestParallelMatchesSerial: a campaign on 8 workers produces outcomes,
// stats, findings, and an event stream (modulo timing fields)
// byte-identical to the 1-worker run.
func TestParallelMatchesSerial(t *testing.T) {
	run := func(workers int) (*Campaign, string) {
		var buf bytes.Buffer
		ev := metrics.NewEventLog(&buf)
		c, err := Run(Options{Programs: 6, BaseSeed: 400, Workers: workers, Events: ev})
		if err != nil {
			t.Fatal(err)
		}
		return c, buf.String()
	}
	serial, sev := run(1)
	parallel, pev := run(8)

	for i := range serial.Outcomes {
		a, _ := json.Marshal(serial.Outcomes[i])
		b, _ := json.Marshal(parallel.Outcomes[i])
		if string(a) != string(b) {
			t.Errorf("outcome %d differs:\n%s\nvs\n%s", i, a, b)
		}
	}
	if !reflect.DeepEqual(serial.Stats, parallel.Stats) {
		t.Error("stats differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(serial.Findings, parallel.Findings) {
		t.Error("findings differ between 1 and 8 workers")
	}
	sid, pid := eventIdentity(t, sev), eventIdentity(t, pev)
	if len(sid) != len(pid) {
		t.Fatalf("event counts differ: %d vs %d", len(sid), len(pid))
	}
	for i := range sid {
		if sid[i] != pid[i] {
			t.Errorf("event %d differs:\n%s\nvs\n%s", i, sid[i], pid[i])
		}
	}
}

// TestShardMembership: a shard computes exactly its own corpus slice and
// emits events for no one else's seeds.
func TestShardMembership(t *testing.T) {
	var buf bytes.Buffer
	shard := sched.Shard{Index: 1, Count: 3}
	c, err := Run(Options{
		Programs: 10, BaseSeed: 500, Shard: shard,
		Events: metrics.NewEventLog(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	members := 0
	for i, out := range c.Outcomes {
		if shard.Member(i) {
			members++
			if out == nil {
				t.Errorf("member index %d has no outcome", i)
			}
		} else if out != nil {
			t.Errorf("non-member index %d was computed", i)
		}
	}
	if members != shard.Size(10) {
		t.Fatalf("computed %d seeds, want %d", members, shard.Size(10))
	}
	if c.Stats.Programs != members {
		t.Errorf("stats count %d programs, want the shard's %d", c.Stats.Programs, members)
	}
	for _, line := range eventIdentity(t, buf.String()) {
		var obj map[string]any
		json.Unmarshal([]byte(line), &obj)
		seed, ok := obj["seed"].(float64)
		if !ok {
			continue
		}
		if idx := int(int64(seed) - 500); !shard.Member(idx) {
			t.Errorf("event for non-member seed %d: %s", int64(seed), line)
		}
	}
}

// shardedCheckpoints runs every shard of a campaign in its own process
// image (fresh checkpoint file per shard) and returns the paths.
func shardedCheckpoints(t *testing.T, o Options, count int) []string {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, count)
	for i := 0; i < count; i++ {
		so := o
		so.Shard = sched.Shard{Index: i, Count: count}
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		so.Checkpoint = harness.NewCheckpoint(paths[i])
		if _, err := Run(so); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// TestMergeCheckpoints is the shard acceptance test: two shard halves,
// run as separate campaigns and merged from their checkpoints, aggregate
// byte-identically to the unsharded run.
func TestMergeCheckpoints(t *testing.T) {
	base := Options{Programs: 6, BaseSeed: 300}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	paths := shardedCheckpoints(t, base, 2)
	merged, err := MergeCheckpoints(paths)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Opts.Programs != 6 || merged.Opts.BaseSeed != 300 {
		t.Fatalf("merged options wrong: %+v", merged.Opts)
	}
	for i := range full.Outcomes {
		a, _ := json.Marshal(full.Outcomes[i])
		b, _ := json.Marshal(merged.Outcomes[i])
		if string(a) != string(b) {
			t.Errorf("outcome %d differs:\n%s\nvs\n%s", i, a, b)
		}
	}
	if !reflect.DeepEqual(full.Stats, merged.Stats) {
		t.Error("merged stats differ from the unsharded run")
	}
	if !reflect.DeepEqual(full.Findings, merged.Findings) {
		t.Error("merged findings differ from the unsharded run")
	}
}

// TestMergeCheckpointErrors: the merge refuses duplicate shards, missing
// shards, mismatched campaigns, and gapped corpora.
func TestMergeCheckpointErrors(t *testing.T) {
	base := Options{Programs: 6, BaseSeed: 300}
	paths := shardedCheckpoints(t, base, 2)

	if _, err := MergeCheckpoints([]string{paths[0], paths[0]}); err == nil ||
		!strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate shard accepted: %v", err)
	}
	if _, err := MergeCheckpoints([]string{paths[0]}); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Errorf("incomplete shard set accepted: %v", err)
	}
	other := shardedCheckpoints(t, Options{Programs: 6, BaseSeed: 999}, 2)
	if _, err := MergeCheckpoints([]string{paths[0], other[1]}); err == nil ||
		!strings.Contains(err.Error(), "mismatch") {
		t.Errorf("mixed campaigns accepted: %v", err)
	}

	// An interrupted shard (half its seeds) leaves a gap in the corpus.
	dir := t.TempDir()
	halted := filepath.Join(dir, "halted.json")
	if _, err := Run(Options{
		Programs: 2, BaseSeed: 300, Shard: sched.Shard{Index: 1, Count: 2},
		Checkpoint: harness.NewCheckpoint(halted),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints([]string{paths[0], halted}); err == nil ||
		!strings.Contains(err.Error(), "incomplete") {
		t.Errorf("gapped corpus accepted: %v", err)
	}
}

// TestShardResume: an interrupted shard resumes from its checkpoint to the
// same outcomes as an uninterrupted shard run, and a resume that forgets
// the -shard flag is refused rather than silently recomputing the corpus.
func TestShardResume(t *testing.T) {
	shard := sched.Shard{Index: 0, Count: 2}
	direct, err := Run(Options{Programs: 6, BaseSeed: 300, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cp.json")
	if _, err := Run(Options{
		Programs: 3, BaseSeed: 300, Shard: shard,
		Checkpoint: harness.NewCheckpoint(path),
	}); err != nil {
		t.Fatal(err)
	}
	cp, err := harness.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != shard.Size(3) {
		t.Fatalf("halted shard checkpointed %d seeds, want %d", cp.Len(), shard.Size(3))
	}

	// Forgetting -shard on resume must fail the meta check.
	if _, err := Run(Options{Programs: 6, BaseSeed: 300, Checkpoint: cp}); err == nil {
		t.Error("resume without the shard flag accepted a shard checkpoint")
	}

	resumed, err := Run(Options{Programs: 6, BaseSeed: 300, Shard: shard, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Outcomes {
		a, _ := json.Marshal(direct.Outcomes[i])
		b, _ := json.Marshal(resumed.Outcomes[i])
		if string(a) != string(b) {
			t.Errorf("outcome %d differs after shard resume:\n%s\nvs\n%s", i, a, b)
		}
	}
	if !reflect.DeepEqual(direct.Stats, resumed.Stats) {
		t.Error("stats differ after shard resume")
	}
}
