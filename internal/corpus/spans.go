// Span instrumentation for campaigns: the buffered per-stage span
// collection that rides the sequencer (keeping deterministic traces
// byte-identical across worker counts), the sched probe that turns
// scheduling observations into occupancy counters and wall-trace spans,
// and the pass observer that projects per-pass timings onto the timeline.
package corpus

import (
	"time"

	"dcelens/internal/ir"
	"dcelens/internal/metrics"
	"dcelens/internal/opt"
	"dcelens/internal/sched"
	"dcelens/internal/span"
)

// spanBuf collects a stage's spans for deferred, sequenced emission — the
// span-side twin of eventBuf. Logical spans (seed, unit, phase, pass,
// checkpoint) reach the recorder only when the owning slot's turn comes up
// in corpus order, which is what makes a deterministic trace's span
// sequence independent of scheduling. A nil *spanBuf records nothing, so
// the instrumented paths cost one comparison when spans are off.
type spanBuf []span.Span

func (b *spanBuf) add(sp span.Span) {
	if b != nil {
		*b = append(*b, sp)
	}
}

// now stamps the clock only when spans are being collected.
func (b *spanBuf) now() time.Time {
	if b == nil {
		return time.Time{}
	}
	return time.Now()
}

// phase records one phase span that began at start and ends now.
func (b *spanBuf) phase(tid int, name string, start time.Time) {
	if b == nil {
		return
	}
	b.add(span.Span{Name: name, Cat: span.CatPhase, TID: tid, Start: start, Dur: time.Since(start)})
}

func (b spanBuf) flush(r *span.Recorder) {
	for _, sp := range b {
		r.Emit(sp)
	}
}

// probe returns the phase probe feeding b, or nil when spans are off (so
// the probed compile entry points skip their clock reads entirely).
func (b *spanBuf) probe(tid int) metrics.PhaseProbe {
	if b == nil {
		return nil
	}
	return func(phase string, start time.Time, d time.Duration) {
		b.add(span.Span{Name: phase, Cat: span.CatPhase, TID: tid, Start: start, Dur: d})
	}
}

// passSpans is the opt.Observer that projects each executed pass instance
// onto the unit's timeline track, composed after the harness guard via
// opt.Observers — the same seam the trace recorder and metrics collector
// ride.
type passSpans struct {
	sp  *spanBuf
	tid int
}

func (p *passSpans) BeginPipeline(m *ir.Module) {}

func (p *passSpans) AfterPass(m *ir.Module, pass string, scheduleIndex, iteration int, st opt.PassStats) {
	end := time.Now()
	p.sp.add(span.Span{
		Name: pass, Cat: span.CatPass, TID: p.tid,
		Start: end.Add(-st.Duration), Dur: st.Duration,
		Args: []span.Arg{span.Int("sched", scheduleIndex), span.Int("iter", iteration)},
	})
}

// schedProbe bridges the engine's scheduling observations into the span
// recorder (wall traces only — a deterministic recorder drops CatSched)
// and the registry's occupancy counters (wall registries only — occupancy
// is a pure wall-clock quantity, and deterministic artifacts must not
// depend on it). Sched spans bypass the sequencer: they describe real
// scheduling, which has no deterministic order to preserve.
type schedProbe struct {
	o *Options
}

// active reports whether a campaign needs the probe at all.
func (o *Options) probeActive() bool {
	return o.Spans != nil || (o.Metrics != nil && !o.Metrics.Deterministic)
}

func (p *schedProbe) ItemRun(worker, job, unit int, ready, start, end time.Time) {
	if reg := p.o.Metrics; reg != nil && !reg.Deterministic {
		busy := end.Sub(start).Nanoseconds()
		reg.Counter(metrics.WorkerBusyCounter(worker)).Add(busy)
		reg.Counter(metrics.CounterSchedBusy).Add(busy)
		if unit >= 0 {
			reg.Counter(metrics.CounterQueueWait).Add(start.Sub(ready).Nanoseconds())
		}
	}
	if r := p.o.Spans; r != nil {
		tid := worker + 1
		if wait := start.Sub(ready); unit != sched.FinalizeStage && wait > 0 {
			r.Emit(span.Span{
				Name: "queue-wait", Cat: span.CatSched, TID: tid, Start: ready, Dur: wait,
				Args: []span.Arg{span.Int("job", job), span.Int("unit", unit)},
			})
		}
		r.Emit(span.Span{
			Name: "busy", Cat: span.CatSched, TID: tid, Start: start, Dur: end.Sub(start),
			Args: []span.Arg{span.Int("job", job), span.Int("unit", unit)},
		})
	}
}

func (p *schedProbe) WorkerIdle(worker int, start, end time.Time) {
	if r := p.o.Spans; r != nil {
		r.Emit(span.Span{Name: "idle", Cat: span.CatSched, TID: worker + 1, Start: start, Dur: end.Sub(start)})
	}
}

// stall is the Sequencer.Stall hook: reorder-buffer time spent holding a
// completed slot's output back for deterministic ordering.
func (p *schedProbe) stall(slot int, parked, flushed time.Time) {
	d := flushed.Sub(parked)
	if reg := p.o.Metrics; reg != nil && !reg.Deterministic {
		reg.Counter(metrics.CounterSeqStall).Add(d.Nanoseconds())
	}
	if r := p.o.Spans; r != nil {
		r.Emit(span.Span{
			Name: "seq-stall", Cat: span.CatSched, TID: 0, Start: parked, Dur: d,
			Args: []span.Arg{span.Int("slot", slot)},
		})
	}
}
