// Package corpus runs campaigns: generate a corpus of instrumented random
// programs, compute ground truth, compile every program under every
// (personality, level) configuration, and aggregate the statistics behind
// the paper's evaluation (§4.1, §4.2, Tables 1/2 and the differential
// counts). It also collects the individual findings that feed reduction,
// bisection, and the Table 5 triage model.
package corpus

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dcelens/internal/ast"
	"dcelens/internal/cgen"
	"dcelens/internal/core"
	"dcelens/internal/instrument"
	"dcelens/internal/pipeline"
)

// Options configures a campaign.
type Options struct {
	// Programs is the corpus size.
	Programs int
	// BaseSeed offsets the per-program seeds (seed i = BaseSeed + i).
	BaseSeed int64
	// GenConfig builds the generator configuration per seed; nil means
	// cgen.DefaultConfig.
	GenConfig func(seed int64) cgen.Config
	// VerifySemantics additionally executes every compiled module and
	// compares against ground truth (miscompile detection). Slower.
	VerifySemantics bool
	// Trace records a per-pass profile and marker provenance for every
	// compilation (internal/trace): each eliminated marker is attributed
	// to the pass instance that killed it, feeding AttributeFinding and
	// EliminationsPerPass. Adds one IR scan per executed pass.
	Trace bool
	// Workers bounds parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Personalities and Levels default to both compilers and all levels.
	Personalities []pipeline.Personality
	Levels        []pipeline.Level
}

func (o *Options) fill() {
	if o.Programs <= 0 {
		o.Programs = 20
	}
	if o.GenConfig == nil {
		o.GenConfig = cgen.DefaultConfig
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if len(o.Personalities) == 0 {
		o.Personalities = []pipeline.Personality{pipeline.GCC, pipeline.LLVM}
	}
	if len(o.Levels) == 0 {
		o.Levels = pipeline.Levels
	}
}

// ConfigKey identifies a compiler configuration in result maps.
type ConfigKey struct {
	Personality pipeline.Personality
	Level       pipeline.Level
}

// ProgramResult holds everything derived from one corpus program.
type ProgramResult struct {
	Seed   int64
	Ins    *instrument.Program
	Truth  *core.Truth
	Graph  *core.MarkerCFG
	PerCfg map[ConfigKey]*core.Analysis
	Err    error
}

// FindingKind classifies how a missed optimization was discovered.
type FindingKind int

const (
	// KindCompilerDiff: one compiler eliminates the marker at -O3, the
	// other keeps it (paper §4.2 "Between GCC and LLVM").
	KindCompilerDiff FindingKind = iota
	// KindLevelDiff: eliminated at -O1 or -O2 but missed at -O3 (paper
	// §4.2 "Between optimization levels").
	KindLevelDiff
)

func (k FindingKind) String() string {
	if k == KindCompilerDiff {
		return "compiler-diff"
	}
	return "level-diff"
}

// Finding is one discovered missed optimization opportunity.
type Finding struct {
	Kind        FindingKind
	Seed        int64
	Marker      string
	Personality pipeline.Personality // the compiler that missed
	Level       pipeline.Level       // the level at which it missed
	Primary     bool
}

// Stats aggregates a campaign.
type Stats struct {
	Programs     int
	TotalMarkers int
	DeadMarkers  int
	AliveMarkers int

	// Missed/Primary count dead markers not eliminated, per configuration.
	Missed  map[ConfigKey]int
	Primary map[ConfigKey]int

	// DiffMissed[p] counts dead markers p misses at -O3 that the other
	// personality eliminates at -O3; DiffPrimary restricts to primary.
	DiffMissed  map[pipeline.Personality]int
	DiffPrimary map[pipeline.Personality]int

	// LevelMissed[p] counts dead markers p misses at -O3 but eliminates at
	// -O1 or -O2; LevelPrimary restricts to primary.
	LevelMissed  map[pipeline.Personality]int
	LevelPrimary map[pipeline.Personality]int

	Miscompiles int
	Errors      []string
}

// Campaign bundles the corpus results.
type Campaign struct {
	Opts     Options
	Programs []*ProgramResult
	Stats    *Stats
	Findings []Finding
}

// Run executes a campaign.
func Run(o Options) (*Campaign, error) {
	o.fill()
	results := make([]*ProgramResult, o.Programs)

	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Workers)
	for i := 0; i < o.Programs; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = analyzeProgram(o, o.BaseSeed+int64(i))
		}()
	}
	wg.Wait()

	c := &Campaign{Opts: o, Programs: results}
	c.aggregate()
	return c, nil
}

func analyzeProgram(o Options, seed int64) *ProgramResult {
	r := &ProgramResult{Seed: seed, PerCfg: map[ConfigKey]*core.Analysis{}}
	prog := cgen.Generate(o.GenConfig(seed))
	ins, err := instrument.Instrument(prog, instrument.Options{})
	if err != nil {
		r.Err = err
		return r
	}
	r.Ins = ins
	r.Truth, err = core.GroundTruth(ins)
	if err != nil {
		r.Err = fmt.Errorf("seed %d: %w", seed, err)
		return r
	}
	r.Graph, err = core.BuildMarkerCFG(ins)
	if err != nil {
		r.Err = fmt.Errorf("seed %d: %w", seed, err)
		return r
	}
	for _, p := range o.Personalities {
		for _, lvl := range o.Levels {
			cfg := pipeline.New(p, lvl)
			analyze := core.Analyze
			if o.Trace {
				analyze = core.AnalyzeTraced
			}
			an, err := analyze(ins, cfg, r.Truth, r.Graph)
			if err != nil {
				r.Err = fmt.Errorf("seed %d %s: %w", seed, cfg.Name(), err)
				return r
			}
			if o.VerifySemantics {
				if err := an.Compilation.VerifyAgainstTruth(r.Truth); err != nil {
					r.Err = err
					return r
				}
			}
			r.PerCfg[ConfigKey{p, lvl}] = an
		}
	}
	return r
}

func (c *Campaign) aggregate() {
	s := &Stats{
		Missed:       map[ConfigKey]int{},
		Primary:      map[ConfigKey]int{},
		DiffMissed:   map[pipeline.Personality]int{},
		DiffPrimary:  map[pipeline.Personality]int{},
		LevelMissed:  map[pipeline.Personality]int{},
		LevelPrimary: map[pipeline.Personality]int{},
	}
	for _, r := range c.Programs {
		if r.Err != nil {
			s.Errors = append(s.Errors, r.Err.Error())
			continue
		}
		s.Programs++
		s.TotalMarkers += len(r.Ins.Markers)
		s.DeadMarkers += len(r.Truth.Dead)
		s.AliveMarkers += len(r.Truth.Alive)
		for key, an := range r.PerCfg {
			s.Missed[key] += len(an.Missed)
			s.Primary[key] += len(an.PrimaryMissed)
		}
		c.diffFindings(r, s)
		c.levelFindings(r, s)
	}
	sort.Slice(c.Findings, func(i, j int) bool {
		a, b := c.Findings[i], c.Findings[j]
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Marker < b.Marker
	})
	c.Stats = s
}

// diffFindings compares the two personalities at -O3 (paper §4.2).
func (c *Campaign) diffFindings(r *ProgramResult, s *Stats) {
	if len(c.Opts.Personalities) < 2 {
		return
	}
	a := r.PerCfg[ConfigKey{pipeline.GCC, pipeline.O3}]
	b := r.PerCfg[ConfigKey{pipeline.LLVM, pipeline.O3}]
	if a == nil || b == nil {
		return
	}
	record := func(missedBy pipeline.Personality, target, ref *core.Analysis) {
		missed := core.DiffMissed(target.Compilation, ref.Compilation, r.Truth)
		s.DiffMissed[missedBy] += len(missed)
		primary := r.Graph.Primary(r.Truth, missed)
		s.DiffPrimary[missedBy] += len(primary)
		prim := map[string]bool{}
		for _, m := range primary {
			prim[m] = true
		}
		for _, m := range missed {
			c.Findings = append(c.Findings, Finding{
				Kind: KindCompilerDiff, Seed: r.Seed, Marker: m,
				Personality: missedBy, Level: pipeline.O3, Primary: prim[m],
			})
		}
	}
	record(pipeline.GCC, a, b)
	record(pipeline.LLVM, b, a)
}

// levelFindings looks for dead markers eliminated at -O1/-O2 but missed at
// -O3 (paper §4.2 "Between optimization levels").
func (c *Campaign) levelFindings(r *ProgramResult, s *Stats) {
	for _, p := range c.Opts.Personalities {
		o3 := r.PerCfg[ConfigKey{p, pipeline.O3}]
		o1 := r.PerCfg[ConfigKey{p, pipeline.O1}]
		o2 := r.PerCfg[ConfigKey{p, pipeline.O2}]
		if o3 == nil || (o1 == nil && o2 == nil) {
			continue
		}
		var missed []string
		for _, m := range o3.Missed {
			elimO1 := o1 != nil && !o1.Compilation.Alive[m]
			elimO2 := o2 != nil && !o2.Compilation.Alive[m]
			if elimO1 || elimO2 {
				missed = append(missed, m)
			}
		}
		s.LevelMissed[p] += len(missed)
		primary := r.Graph.Primary(r.Truth, missed)
		s.LevelPrimary[p] += len(primary)
		prim := map[string]bool{}
		for _, m := range primary {
			prim[m] = true
		}
		for _, m := range missed {
			c.Findings = append(c.Findings, Finding{
				Kind: KindLevelDiff, Seed: r.Seed, Marker: m,
				Personality: p, Level: pipeline.O3, Primary: prim[m],
			})
		}
	}
}

// FindingsOf filters findings.
func (c *Campaign) FindingsOf(kind FindingKind, p pipeline.Personality, primaryOnly bool) []Finding {
	var out []Finding
	for _, f := range c.Findings {
		if f.Kind == kind && f.Personality == p && (!primaryOnly || f.Primary) {
			out = append(out, f)
		}
	}
	return out
}

// SourceOf returns the instrumented program's source text.
func SourceOf(r *ProgramResult) string { return ast.Print(r.Ins.Prog) }

// Result returns the per-program result for a seed.
func (c *Campaign) Result(seed int64) *ProgramResult {
	for _, r := range c.Programs {
		if r != nil && r.Seed == seed {
			return r
		}
	}
	return nil
}
