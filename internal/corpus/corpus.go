// Package corpus runs campaigns: generate a corpus of instrumented random
// programs, compute ground truth, compile every program under every
// (personality, level) configuration, and aggregate the statistics behind
// the paper's evaluation (§4.1, §4.2, Tables 1/2 and the differential
// counts). It also collects the individual findings that feed reduction,
// bisection, and the Table 5 triage model.
//
// Every per-(seed, config) compilation runs under the fault-tolerant
// execution layer of internal/harness: panics become bucketed CrashFinding
// records with reproducers, runaway pass fixpoints hit a step-budget
// deadline, failed configs degrade gracefully (one retry without tracing,
// then the failure is recorded and the seed's remaining configs keep their
// analyses), and a checkpoint makes interrupted campaigns resumable.
//
// Campaigns execute on the internal/sched engine: each seed is a fork-join
// job whose units are the (personality, level) configurations, scheduled
// across Options.Workers pull-based workers (job.go). Every observable
// output — seed outcomes, findings, metrics tables, event-log sequence
// numbers, live-progress appends — is deterministic in corpus order, so a
// parallel run's report is byte-identical to a serial run's, and a sharded
// run (Options.Shard) recombines losslessly via MergeCheckpoints.
package corpus

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"dcelens/internal/ast"
	"dcelens/internal/cgen"
	"dcelens/internal/core"
	"dcelens/internal/harness"
	"dcelens/internal/instrument"
	"dcelens/internal/metrics"
	"dcelens/internal/opt"
	"dcelens/internal/pipeline"
	"dcelens/internal/remark"
	"dcelens/internal/sched"
	"dcelens/internal/span"
)

// Options configures a campaign.
type Options struct {
	// Programs is the corpus size.
	Programs int
	// BaseSeed offsets the per-program seeds (seed i = BaseSeed + i).
	BaseSeed int64
	// GenConfig builds the generator configuration per seed; nil means
	// cgen.DefaultConfig.
	GenConfig func(seed int64) cgen.Config
	// VerifySemantics additionally executes every compiled module and
	// compares against ground truth (miscompile detection). Slower.
	VerifySemantics bool
	// Trace records a per-pass profile and marker provenance for every
	// compilation (internal/trace): each eliminated marker is attributed
	// to the pass instance that killed it, feeding AttributeFinding and
	// EliminationsPerPass. Adds one IR scan per executed pass.
	Trace bool
	// Remarks attaches a remark collector (internal/remark) to every
	// compilation: passes emit applied/missed/analysis remarks through the
	// opt.RemarkSink seam, each finding carries its nearest-miss chain, and
	// seed outcomes summarize per-pass counts and miss reasons. Off, the
	// remark seam costs one nil check per pass (see
	// BenchmarkRemarkOverhead).
	Remarks bool
	// Workers bounds parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Shard restricts the campaign to a deterministic corpus slice: seed
	// index i runs iff i % Shard.Count == Shard.Index (the zero value runs
	// everything). Non-member indices produce no outcomes, events, or
	// metrics; shard checkpoints recombine via MergeCheckpoints.
	Shard sched.Shard
	// Personalities and Levels default to both compilers and all levels.
	Personalities []pipeline.Personality
	Levels        []pipeline.Level

	// StepBudget bounds observed pass instances per compilation (the
	// harness watchdog's deadline); <= 0 means harness.DefaultStepBudget.
	StepBudget int
	// Faults is the deterministic fault-injection plan (testing and
	// harness validation); nil injects nothing.
	Faults *harness.Faults
	// Checkpoint persists per-seed outcomes as they complete and skips
	// seeds already present (campaign resume); nil disables checkpointing.
	Checkpoint *harness.Checkpoint

	// Metrics receives the campaign's telemetry: phase timers
	// (generate/instrument/truth here, lower/opt/codegen in internal/core),
	// the per-pass timing and changed-rate collectors, per-seed and
	// per-unit duration histograms, and the failure-kind counters the
	// heartbeat reads. Only freshly-analyzed seeds feed the registry;
	// checkpoint-restored seeds count into "campaign.seeds.restored" and
	// nothing else, so a resumed campaign never re-adds work it did not do
	// (Stats rebuilds the campaign-wide totals from the outcomes instead).
	// Nil disables all collection at zero per-pass cost.
	Metrics *metrics.Registry
	// Events receives the campaign's structured JSONL event stream:
	// campaign/seed/unit begin-end, failures, and checkpoint writes, each a
	// single JSON object with a monotonic sequence number. Nil disables it.
	Events *metrics.EventLog
	// RemarkLog receives one "remarks" event per freshly-analyzed seed that
	// collected remarks (Options.Remarks): the seed's per-pass applied and
	// missed counts and its miss-reason histogram. Events flush through the
	// sequencer in seed order, so the stream is deterministic across worker
	// counts; restored seeds emit nothing (their summaries live in the
	// checkpointed outcomes). Nil disables it.
	RemarkLog *metrics.EventLog
	// Spans receives the campaign's hierarchical span timeline
	// (internal/span): per-seed prepare/finalize stages, (seed, config)
	// units with their phase and pass spans, checkpoint writes, and the
	// scheduler's queue-wait/busy/idle/stall spans. Logical spans flush
	// through the sequencer in slot order, so a deterministic recorder's
	// trace is byte-identical across -j values and resumes (restored seeds
	// emit no spans). Nil disables all span collection.
	Spans *span.Recorder
	// Progress receives the live campaign view the heartbeat and the
	// monitor server read: findings are appended as each seed completes
	// (restored seeds included — the live view reflects the whole
	// campaign). Nil disables it.
	Progress *harness.Progress

	// Stop is the cooperative drain hook (internal/service): polled before
	// each seed starts, a true return leaves the seed unrun. Seeds already
	// in flight finish (and checkpoint) normally, so a stopped campaign is
	// always resumable from a consistent checkpoint; Campaign.Skipped
	// reports how many member seeds were left behind. Nil never stops.
	Stop func() bool
	// Deadline is the campaign's wall-clock budget, enforced inside the
	// harness watchdog: a unit still optimizing past it fails as a timeout,
	// and Stop-style skipping of not-yet-started seeds is the caller's job
	// (internal/service folds the deadline into its Stop hook). Zero
	// disables it.
	Deadline time.Time
	// SeedHook runs at the start of each fresh seed's finalize stage, before
	// its outcome is checkpointed. It is the service layer's chaos seam: a
	// panicking hook kills the whole job (sched converts it into the job
	// error) while the checkpoint keeps every previously completed seed, so
	// crash-retry paths are testable deterministically. Nil does nothing.
	SeedHook func(idx int, seed int64)
}

func (o *Options) fill() {
	if o.Programs <= 0 {
		o.Programs = 20
	}
	if o.GenConfig == nil {
		o.GenConfig = cgen.DefaultConfig
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if len(o.Personalities) == 0 {
		o.Personalities = []pipeline.Personality{pipeline.GCC, pipeline.LLVM}
	}
	if len(o.Levels) == 0 {
		o.Levels = pipeline.Levels
	}
}

// ConfigKey identifies a compiler configuration in result maps.
type ConfigKey struct {
	Personality pipeline.Personality
	Level       pipeline.Level
}

// String renders the stable display form, e.g. "gcc-sim -O3" (the config
// identity recorded in harness failures and matched by fault specs).
func (k ConfigKey) String() string {
	return string(k.Personality) + " " + k.Level.String()
}

// ProgramResult holds everything derived from one corpus program.
type ProgramResult struct {
	Seed   int64
	Ins    *instrument.Program
	Truth  *core.Truth
	Graph  *core.MarkerCFG
	PerCfg map[ConfigKey]*core.Analysis
	// Err is the program-level failure (generation, instrumentation, or
	// ground truth); per-config failures are isolated in Failures so one
	// bad config does not drop the other configs' analyses.
	Err error
	// Failures records the configs that crashed, timed out, or
	// miscompiled, in (personality, level) option order.
	Failures []harness.Failure
}

// FailureOf returns the recorded failure of a configuration, or nil.
func (r *ProgramResult) FailureOf(key ConfigKey) *harness.Failure {
	for i := range r.Failures {
		if r.Failures[i].Config == key.String() {
			return &r.Failures[i]
		}
	}
	return nil
}

// FindingKind classifies how a missed optimization was discovered.
type FindingKind int

const (
	// KindCompilerDiff: one compiler eliminates the marker at -O3, the
	// other keeps it (paper §4.2 "Between GCC and LLVM").
	KindCompilerDiff FindingKind = iota
	// KindLevelDiff: eliminated at -O1 or -O2 but missed at -O3 (paper
	// §4.2 "Between optimization levels").
	KindLevelDiff
)

func (k FindingKind) String() string {
	if k == KindCompilerDiff {
		return "compiler-diff"
	}
	return "level-diff"
}

// Finding is one discovered missed optimization opportunity.
type Finding struct {
	Kind        FindingKind
	Seed        int64
	Marker      string
	Personality pipeline.Personality // the compiler that missed
	Level       pipeline.Level       // the level at which it missed
	Primary     bool
	// Context is the marker's structural neighbourhood in the marker CFG
	// (predecessor liveness classes), captured at discovery time. It is the
	// seed- and name-independent part of the finding's identity: the
	// internal/history fingerprint hashes Kind, Personality, Level,
	// Primary, and Context — never Seed or Marker — so renumbering the
	// corpus or reducing the program does not change the fingerprint.
	Context string `json:"context,omitempty"`
	// Chain is the marker's nearest-miss chain under the missing
	// configuration: the ordered (pass, reason) decisions that kept the
	// marker's code alive (internal/remark). Populated only when the
	// campaign ran with Options.Remarks; it rides the outcome through
	// checkpoints but is excluded from the history fingerprint (it names
	// seed-specific values, which would defeat cross-seed dedup).
	Chain []remark.ChainStep `json:"chain,omitempty"`
}

// findingContext renders a marker's structural neighbourhood: how many of
// its marker-CFG predecessors are the live root, alive, dead-but-eliminated
// by the missing compiler, or dead-and-also-missed. The classification uses
// counts (not names) so it survives marker renumbering across seeds.
func findingContext(g *core.MarkerCFG, t *core.Truth, missedSet map[string]bool, marker string) string {
	var root, alive, deadElim, deadMissed int
	for _, p := range g.Preds[marker] {
		switch {
		case p == core.LiveRoot:
			root++
		case t.Alive[p]:
			alive++
		case missedSet[p]:
			deadMissed++
		default:
			deadElim++
		}
	}
	return fmt.Sprintf("preds[root=%d alive=%d dead-elim=%d dead-missed=%d]",
		root, alive, deadElim, deadMissed)
}

// findingLess is the total order campaign findings are reported in.
func findingLess(a, b Finding) bool {
	if a.Seed != b.Seed {
		return a.Seed < b.Seed
	}
	if a.Marker != b.Marker {
		return a.Marker < b.Marker
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Personality != b.Personality {
		return a.Personality < b.Personality
	}
	return a.Level < b.Level
}

// CrashBucket is one row of the campaign's fuzzer-style failure dedup:
// failures sharing a kind and signature are "the same bug".
type CrashBucket struct {
	Kind      harness.Kind
	Signature string
	Count     int
	Seeds     []int64 // ascending, deduplicated
}

// Stats aggregates a campaign.
type Stats struct {
	Programs     int
	TotalMarkers int
	DeadMarkers  int
	AliveMarkers int

	// Missed/Primary count dead markers not eliminated, per configuration.
	Missed  map[ConfigKey]int
	Primary map[ConfigKey]int

	// DiffMissed[p] counts dead markers p misses at -O3 that the other
	// personality eliminates at -O3; DiffPrimary restricts to primary.
	DiffMissed  map[pipeline.Personality]int
	DiffPrimary map[pipeline.Personality]int

	// LevelMissed[p] counts dead markers p misses at -O3 but eliminates at
	// -O1 or -O2; LevelPrimary restricts to primary.
	LevelMissed  map[pipeline.Personality]int
	LevelPrimary map[pipeline.Personality]int

	// Remark aggregation (campaigns run with Options.Remarks; nil maps
	// otherwise). RemarkApplied and RemarkMissed count remarks per pass
	// across every configuration of every analyzable seed; RemarkReasons
	// histograms the Missed remarks by reason code.
	RemarkApplied map[string]int
	RemarkMissed  map[string]int
	RemarkReasons map[string]int

	// Failure accounting (internal/harness). Crashes, Timeouts,
	// Miscompiles, and Infeasible are per-kind counts; Failures holds the
	// isolated records (sorted); CrashBuckets dedups them by signature.
	Crashes      int
	Timeouts     int
	Miscompiles  int
	Infeasible   int
	Failures     []harness.Failure
	CrashBuckets []CrashBucket

	// Errors lists every failure message (program-level and per-config),
	// sorted for deterministic output.
	Errors []string
}

// Campaign bundles the corpus results.
type Campaign struct {
	Opts Options
	// Programs holds the full in-memory results of freshly-computed seeds;
	// entries restored from a checkpoint are nil (their contribution lives
	// in Outcomes).
	Programs []*ProgramResult
	// Outcomes holds every seed's serializable summary, in seed order;
	// Stats and Findings are derived from these alone.
	Outcomes []*SeedOutcome
	Stats    *Stats
	Findings []Finding
	// Skipped counts member seeds the Stop hook drained before they ran.
	// They have no outcome; resuming from the campaign's checkpoint runs
	// exactly these, and the resumed report is byte-identical to an
	// uninterrupted run's. Zero for campaigns without a Stop hook.
	Skipped int
}

// Run executes a campaign on the internal/sched engine: one fork-join job
// per member seed, one unit per (personality, level) configuration, at
// most Options.Workers units in flight. Every observable output is
// released in corpus order (job.go), so the report, metrics tables, event
// log, and live progress are byte-identical to a serial run's.
func Run(o Options) (*Campaign, error) {
	o.fill()
	h := &harness.Harness{StepBudget: o.StepBudget, Faults: o.Faults, Metrics: o.Metrics, WallDeadline: o.Deadline}
	if o.Checkpoint != nil {
		if err := o.Checkpoint.Bind(campaignMeta(o)); err != nil {
			return nil, err
		}
	}
	begin := map[string]any{
		"programs": o.Programs, "base_seed": o.BaseSeed, "workers": o.Workers,
	}
	if o.Shard.Sharded() {
		begin["shard"] = o.Shard.String()
	}
	o.Events.Emit("campaign_begin", begin)

	cfgs := o.configKeys()
	var members []int
	for i := 0; i < o.Programs; i++ {
		if o.Shard.Member(i) {
			members = append(members, i)
		}
	}
	results := make([]*ProgramResult, o.Programs)
	outcomes := make([]*SeedOutcome, o.Programs)
	seq := sched.NewSequencer()
	pool := sched.Pool{Workers: o.Workers}
	runStart := time.Now()
	if o.probeActive() {
		probe := &schedProbe{o: &o}
		pool.Probe = probe
		seq.Stall = probe.stall
	}
	err := pool.Run(len(members), func(m int) *sched.Job {
		j := &seedJob{
			o: &o, h: h, idx: members[m], cfgs: cfgs,
			slot: m * (len(cfgs) + 2), seq: seq,
			results: results, outcomes: outcomes,
		}
		j.seed = o.BaseSeed + int64(j.idx)
		return &sched.Job{Prepare: j.prepare, Unit: j.unit, Finalize: j.finalize}
	})
	if err != nil {
		return nil, err
	}
	// The campaign envelope span (wall traces only: CatJob is redacted
	// from deterministic traces, whose contents must not depend on timing).
	o.Spans.Emit(span.Span{
		Name: "campaign", Cat: span.CatJob, TID: 0,
		Start: runStart, Dur: time.Since(runStart),
		Args: []span.Arg{span.Int("programs", o.Programs), span.Int("workers", o.Workers)},
	})

	c := &Campaign{Opts: o, Programs: results, Outcomes: outcomes}
	for _, m := range members {
		if outcomes[m] == nil {
			c.Skipped++
		}
	}
	c.aggregate()
	end := map[string]any{
		"seeds": len(c.Outcomes), "failures": len(c.Stats.Failures),
	}
	if c.Skipped > 0 {
		end["skipped"] = c.Skipped
	}
	o.Events.Emit("campaign_end", end)
	return c, nil
}

// configKeys returns the campaign's configurations in (personality, level)
// option order — the unit order of every seed.
func (o *Options) configKeys() []ConfigKey {
	keys := make([]ConfigKey, 0, len(o.Personalities)*len(o.Levels))
	for _, p := range o.Personalities {
		for _, l := range o.Levels {
			keys = append(keys, ConfigKey{p, l})
		}
	}
	return keys
}

// progressFindings publishes a completed seed's findings to the live
// progress view.
func progressFindings(p *harness.Progress, fs []Finding) {
	if p == nil || len(fs) == 0 {
		return
	}
	anys := make([]any, len(fs))
	for i, f := range fs {
		anys[i] = f
	}
	p.AddFindings(anys...)
}

// countFailures increments the campaign failure-kind counters the
// heartbeat reads. Called only for freshly-analyzed seeds: restored seeds'
// failures reach the final report via Stats aggregation, so re-adding them
// here would double-count them in any view that combines both.
func countFailures(reg *metrics.Registry, failures []harness.Failure) {
	if reg == nil {
		return
	}
	for i := range failures {
		switch failures[i].Kind {
		case harness.KindCrash:
			reg.Counter(metrics.CounterCrashes).Inc()
		case harness.KindTimeout:
			reg.Counter(metrics.CounterTimeouts).Inc()
		case harness.KindMiscompile:
			reg.Counter(metrics.CounterMiscompiles).Inc()
		case harness.KindInfeasible:
			reg.Counter(metrics.CounterInfeasible).Inc()
		}
	}
}

// countRemarks feeds a freshly-analyzed seed's remark summary into the
// live registry ("remarks.applied.<pass>", "remarks.missed.<pass>",
// "remarks.reason.<code>"). Restored seeds stay out, matching the
// registry's fresh-work-only policy.
func countRemarks(reg *metrics.Registry, rs *RemarkSummary) {
	if reg == nil {
		return
	}
	for pass, n := range rs.Applied {
		reg.Counter("remarks.applied." + pass).Add(int64(n))
	}
	for pass, n := range rs.Missed {
		reg.Counter("remarks.missed." + pass).Add(int64(n))
	}
	for reason, n := range rs.Reasons {
		reg.Counter("remarks.reason." + reason).Add(int64(n))
	}
}

// remarkFields renders a seed's remark summary for the remark event log.
func remarkFields(seed int64, rs *RemarkSummary) map[string]any {
	fields := map[string]any{"seed": seed}
	if len(rs.Applied) > 0 {
		fields["applied"] = rs.Applied
	}
	if len(rs.Missed) > 0 {
		fields["missed"] = rs.Missed
	}
	if len(rs.Reasons) > 0 {
		fields["reasons"] = rs.Reasons
	}
	return fields
}

// buildProgram runs the program-construction half of a seed under the
// harness: generation, instrumentation, ground truth, and the marker CFG.
// Failures are infeasible-kind and abandon the seed; the failure event is
// buffered into ev (and phase spans into sp) for sequenced emission.
func buildProgram(o Options, h *harness.Harness, seed int64, ev *eventBuf, sp *spanBuf, tid int) *ProgramResult {
	r := &ProgramResult{Seed: seed, PerCfg: map[ConfigKey]*core.Analysis{}}
	if fail := h.Protect(seed, "", "", func(opt.Observer) error {
		pstart := sp.now()
		stop := o.Metrics.Time(metrics.PhaseGenerate)
		prog := cgen.Generate(o.GenConfig(seed))
		stop()
		sp.phase(tid, metrics.PhaseGenerate, pstart)
		o.Metrics.Counter("stage.cgen.programs").Inc()
		pstart = sp.now()
		stop = o.Metrics.Time(metrics.PhaseInstrument)
		ins, err := instrument.Instrument(prog, instrument.Options{})
		stop()
		sp.phase(tid, metrics.PhaseInstrument, pstart)
		if err != nil {
			return fmt.Errorf("%w: %v", harness.ErrInfeasible, err)
		}
		r.Ins = ins
		pstart = sp.now()
		stop = o.Metrics.Time(metrics.PhaseTruth)
		r.Truth, err = core.GroundTruth(ins)
		stop()
		sp.phase(tid, metrics.PhaseTruth, pstart)
		o.Metrics.Counter("stage.interp.runs").Inc()
		if err != nil {
			return fmt.Errorf("%w: %v", harness.ErrInfeasible, err)
		}
		r.Graph, err = core.BuildMarkerCFG(ins)
		if err != nil {
			return fmt.Errorf("%w: %v", harness.ErrInfeasible, err)
		}
		return nil
	}); fail != nil {
		r.Err = fmt.Errorf("seed %d: %s: %s", seed, fail.Kind, fail.Message)
		r.Failures = append(r.Failures, *fail)
		ev.emit("failure", failureFields(fail))
	}
	return r
}

// failureFields renders a failure's identity for the event log.
func failureFields(f *harness.Failure) map[string]any {
	fields := map[string]any{
		"seed": f.Seed, "kind": f.Kind.String(), "signature": f.Signature,
	}
	if f.Config != "" {
		fields["config"] = f.Config
	}
	return fields
}

// runConfig compiles and analyzes one configuration under the harness.
// It touches no shared state: the analysis is returned for the seed's
// finalize stage to merge, and events (and spans) are buffered into ev and
// sp for sequenced emission, which is what lets a seed's units run
// concurrently.
func runConfig(o Options, h *harness.Harness, r *ProgramResult, key ConfigKey, src string, traced, remarks bool, ev *eventBuf, sp *spanBuf, tid int) (*core.Analysis, *harness.Failure) {
	cfg := pipeline.New(key.Personality, key.Level)
	ev.emit("unit_begin", map[string]any{"seed": r.Seed, "config": key.String()})
	ustart := sp.now()
	probe := sp.probe(tid)
	var out *core.Analysis
	fail := h.Protect(r.Seed, key.String(), src, func(obs opt.Observer) error {
		if sp != nil {
			// The pass-span observer rides the same seam as the trace and
			// metrics collectors, after the harness guard.
			obs = opt.Observers(obs, &passSpans{sp: sp, tid: tid})
		}
		var coll *remark.Collector
		if remarks {
			// The collector is the chain's only RemarkSink: composing it here
			// is what turns the pipeline's remark emission on at all.
			coll = remark.NewCollector(instrument.IsMarker)
			obs = opt.Observers(obs, coll)
		}
		var an *core.Analysis
		var err error
		if traced {
			an, err = core.AnalyzeTracedProbed(r.Ins, cfg, r.Truth, r.Graph, obs, o.Metrics, probe)
		} else {
			an, err = core.AnalyzeProbed(r.Ins, cfg, r.Truth, r.Graph, obs, o.Metrics, probe)
		}
		if err != nil {
			return err
		}
		if o.VerifySemantics {
			if verr := an.Compilation.VerifyAgainstTruth(r.Truth); verr != nil {
				return fmt.Errorf("%w: %v", harness.ErrMiscompile, verr)
			}
		}
		if coll != nil {
			an.Remarks = coll.Profile()
		}
		out = an
		return nil
	})
	o.Metrics.Counter(metrics.CounterUnits).Inc()
	ev.emit("unit_end", map[string]any{
		"seed": r.Seed, "config": key.String(), "ok": fail == nil,
	})
	if sp != nil {
		sp.add(span.Span{
			Name: key.String(), Cat: span.CatUnit, TID: tid,
			Start: ustart, Dur: time.Since(ustart),
			Args: []span.Arg{span.Int64("seed", r.Seed), span.Bool("ok", fail == nil)},
		})
	}
	if fail != nil {
		return nil, fail
	}
	return out, nil
}

// aggregate derives Stats and Findings from the seed outcomes alone, so a
// checkpoint-resumed campaign aggregates identically to a fresh one.
func (c *Campaign) aggregate() {
	s := &Stats{
		Missed:       map[ConfigKey]int{},
		Primary:      map[ConfigKey]int{},
		DiffMissed:   map[pipeline.Personality]int{},
		DiffPrimary:  map[pipeline.Personality]int{},
		LevelMissed:  map[pipeline.Personality]int{},
		LevelPrimary: map[pipeline.Personality]int{},
	}
	for _, out := range c.Outcomes {
		if out == nil {
			continue
		}
		if out.Err != "" {
			s.Errors = append(s.Errors, out.Err)
		}
		for _, f := range out.Failures {
			s.Failures = append(s.Failures, f)
			s.Errors = append(s.Errors, f.String())
			switch f.Kind {
			case harness.KindCrash:
				s.Crashes++
			case harness.KindTimeout:
				s.Timeouts++
			case harness.KindMiscompile:
				s.Miscompiles++
			case harness.KindInfeasible:
				s.Infeasible++
			}
		}
		if !out.Ok {
			continue
		}
		s.Programs++
		s.TotalMarkers += out.Markers
		s.DeadMarkers += out.Dead
		s.AliveMarkers += out.Alive
		if rs := out.Remarks; rs != nil {
			if s.RemarkApplied == nil {
				s.RemarkApplied = map[string]int{}
				s.RemarkMissed = map[string]int{}
				s.RemarkReasons = map[string]int{}
			}
			for pass, n := range rs.Applied {
				s.RemarkApplied[pass] += n
			}
			for pass, n := range rs.Missed {
				s.RemarkMissed[pass] += n
			}
			for reason, n := range rs.Reasons {
				s.RemarkReasons[reason] += n
			}
		}
		for _, cf := range out.Configs {
			key := ConfigKey{cf.Personality, cf.Level}
			s.Missed[key] += cf.Missed
			s.Primary[key] += cf.Primary
		}
		for _, f := range out.Findings {
			c.Findings = append(c.Findings, f)
			switch f.Kind {
			case KindCompilerDiff:
				s.DiffMissed[f.Personality]++
				if f.Primary {
					s.DiffPrimary[f.Personality]++
				}
			case KindLevelDiff:
				s.LevelMissed[f.Personality]++
				if f.Primary {
					s.LevelPrimary[f.Personality]++
				}
			}
		}
	}
	sort.Strings(s.Errors)
	sort.Slice(s.Failures, func(i, j int) bool {
		a, b := s.Failures[i], s.Failures[j]
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		return a.Signature < b.Signature
	})
	s.CrashBuckets = bucketFailures(s.Failures)
	sort.Slice(c.Findings, func(i, j int) bool {
		return findingLess(c.Findings[i], c.Findings[j])
	})
	c.Stats = s
}

// bucketFailures dedups failures by (kind, signature), the fuzzer-triage
// view of a campaign's faults. Input and output are sorted, so the bucket
// table is deterministic.
func bucketFailures(failures []harness.Failure) []CrashBucket {
	type key struct {
		kind harness.Kind
		sig  string
	}
	idx := map[key]int{}
	var buckets []CrashBucket
	for _, f := range failures {
		k := key{f.Kind, f.Signature}
		i, ok := idx[k]
		if !ok {
			i = len(buckets)
			idx[k] = i
			buckets = append(buckets, CrashBucket{Kind: f.Kind, Signature: f.Signature})
		}
		buckets[i].Count++
		seeds := buckets[i].Seeds
		if len(seeds) == 0 || seeds[len(seeds)-1] != f.Seed {
			buckets[i].Seeds = append(seeds, f.Seed)
		}
	}
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].Kind != buckets[j].Kind {
			return buckets[i].Kind < buckets[j].Kind
		}
		return buckets[i].Signature < buckets[j].Signature
	})
	return buckets
}

// diffFindings compares the two personalities at -O3 (paper §4.2).
func diffFindings(o Options, r *ProgramResult) []Finding {
	if len(o.Personalities) < 2 {
		return nil
	}
	a := r.PerCfg[ConfigKey{pipeline.GCC, pipeline.O3}]
	b := r.PerCfg[ConfigKey{pipeline.LLVM, pipeline.O3}]
	if a == nil || b == nil {
		return nil
	}
	var out []Finding
	record := func(missedBy pipeline.Personality, target, ref *core.Analysis) {
		missed := core.DiffMissed(target.Compilation, ref.Compilation, r.Truth)
		primary := r.Graph.Primary(r.Truth, missed)
		prim := map[string]bool{}
		for _, m := range primary {
			prim[m] = true
		}
		missedSet := map[string]bool{}
		for _, m := range missed {
			missedSet[m] = true
		}
		for _, m := range missed {
			out = append(out, Finding{
				Kind: KindCompilerDiff, Seed: r.Seed, Marker: m,
				Personality: missedBy, Level: pipeline.O3, Primary: prim[m],
				Context: findingContext(r.Graph, r.Truth, missedSet, m),
				// The nearest-miss chain comes from the compilation that
				// failed to eliminate the marker — the decisions worth
				// explaining are the misser's, not the reference's.
				Chain: target.Remarks.Chain(m),
			})
		}
	}
	record(pipeline.GCC, a, b)
	record(pipeline.LLVM, b, a)
	return out
}

// levelFindings looks for dead markers eliminated at -O1/-O2 but missed at
// -O3 (paper §4.2 "Between optimization levels").
func levelFindings(o Options, r *ProgramResult) []Finding {
	var out []Finding
	for _, p := range o.Personalities {
		o3 := r.PerCfg[ConfigKey{p, pipeline.O3}]
		o1 := r.PerCfg[ConfigKey{p, pipeline.O1}]
		o2 := r.PerCfg[ConfigKey{p, pipeline.O2}]
		if o3 == nil || (o1 == nil && o2 == nil) {
			continue
		}
		var missed []string
		for _, m := range o3.Missed {
			elimO1 := o1 != nil && !o1.Compilation.Alive[m]
			elimO2 := o2 != nil && !o2.Compilation.Alive[m]
			if elimO1 || elimO2 {
				missed = append(missed, m)
			}
		}
		primary := r.Graph.Primary(r.Truth, missed)
		prim := map[string]bool{}
		for _, m := range primary {
			prim[m] = true
		}
		missedSet := map[string]bool{}
		for _, m := range missed {
			missedSet[m] = true
		}
		for _, m := range missed {
			out = append(out, Finding{
				Kind: KindLevelDiff, Seed: r.Seed, Marker: m,
				Personality: p, Level: pipeline.O3, Primary: prim[m],
				Context: findingContext(r.Graph, r.Truth, missedSet, m),
				Chain:   o3.Remarks.Chain(m),
			})
		}
	}
	return out
}

// FindingsOf filters findings.
func (c *Campaign) FindingsOf(kind FindingKind, p pipeline.Personality, primaryOnly bool) []Finding {
	var out []Finding
	for _, f := range c.Findings {
		if f.Kind == kind && f.Personality == p && (!primaryOnly || f.Primary) {
			out = append(out, f)
		}
	}
	return out
}

// SourceOf returns the instrumented program's source text.
func SourceOf(r *ProgramResult) string { return ast.Print(r.Ins.Prog) }

// Result returns the per-program result for a seed.
func (c *Campaign) Result(seed int64) *ProgramResult {
	for _, r := range c.Programs {
		if r != nil && r.Seed == seed {
			return r
		}
	}
	return nil
}
