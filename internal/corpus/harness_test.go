package corpus

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dcelens/internal/harness"
	"dcelens/internal/pipeline"
)

// TestFaultInjectionCampaign is the tentpole acceptance test: a campaign
// with one pass instance panicking and another stalling still completes,
// reports exactly the injected crash and timeout buckets with reproducers,
// and leaves every other seed's statistics identical to a fault-free run.
func TestFaultInjectionCampaign(t *testing.T) {
	base := Options{Programs: 6, BaseSeed: 100}
	baseline, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Stats.Failures) != 0 {
		t.Fatalf("baseline not fault-free: %v", baseline.Stats.Errors)
	}

	faults, err := harness.ParseFaults("panic:gvn:101:gcc-sim -O3,stall:simplifycfg:103:llvm-sim -O1")
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run(Options{Programs: 6, BaseSeed: 100, Faults: faults})
	if err != nil {
		t.Fatalf("faulted campaign did not complete: %v", err)
	}

	s := faulted.Stats
	if s.Crashes != 1 || s.Timeouts != 1 || s.Miscompiles != 0 || s.Infeasible != 0 {
		t.Fatalf("failure counts = %d/%d/%d/%d, want 1 crash + 1 timeout",
			s.Crashes, s.Timeouts, s.Miscompiles, s.Infeasible)
	}
	if len(s.Failures) != 2 {
		t.Fatalf("failures: %+v", s.Failures)
	}
	var crash, timeout *harness.Failure
	for i := range s.Failures {
		switch s.Failures[i].Kind {
		case harness.KindCrash:
			crash = &s.Failures[i]
		case harness.KindTimeout:
			timeout = &s.Failures[i]
		}
	}
	if crash.Seed != 101 || crash.Config != "gcc-sim -O3" {
		t.Errorf("crash at the wrong unit: %+v", crash)
	}
	if !strings.Contains(crash.Message, "injected fault") {
		t.Errorf("crash message: %q", crash.Message)
	}
	if !strings.Contains(crash.Signature, "internal/opt") {
		t.Errorf("crash not bucketed by the faulting pipeline frames: %q", crash.Signature)
	}
	if crash.Source == "" || !strings.Contains(crash.Source, "DCEMarker") {
		t.Error("crash carries no instrumented reproducer")
	}
	if timeout.Seed != 103 || timeout.Config != "llvm-sim -O1" {
		t.Errorf("timeout at the wrong unit: %+v", timeout)
	}
	if timeout.Signature != "deadline:simplifycfg" {
		t.Errorf("timeout signature: %q", timeout.Signature)
	}

	if len(s.CrashBuckets) != 2 {
		t.Fatalf("buckets: %+v", s.CrashBuckets)
	}
	for _, b := range s.CrashBuckets {
		if b.Count != 1 || len(b.Seeds) != 1 {
			t.Errorf("bucket %s miscounted: %+v", b.Signature, b)
		}
	}

	// Graceful degradation: the faulted seeds keep every other config's
	// analysis — one bad config does not drop the rest.
	for _, tc := range []struct {
		seed int64
		idx  int
	}{{101, 1}, {103, 3}} {
		out := faulted.Outcomes[tc.idx]
		if out.Seed != tc.seed || !out.Ok {
			t.Fatalf("faulted seed %d abandoned: %+v", tc.seed, out)
		}
		if want := 2*len(pipeline.Levels) - 1; len(out.Configs) != want {
			t.Errorf("seed %d kept %d configs, want %d", tc.seed, len(out.Configs), want)
		}
		ref := baseline.Outcomes[tc.idx]
		if out.Markers != ref.Markers || out.Dead != ref.Dead || out.Alive != ref.Alive {
			t.Errorf("seed %d marker stats perturbed: %+v vs %+v", tc.seed, out, ref)
		}
	}

	// Unaffected seeds' statistics are identical to the fault-free run.
	for i, out := range faulted.Outcomes {
		if out.Seed == 101 || out.Seed == 103 {
			continue
		}
		if !reflect.DeepEqual(out, baseline.Outcomes[i]) {
			t.Errorf("seed %d perturbed by faults elsewhere:\n%+v\nvs\n%+v", out.Seed, out, baseline.Outcomes[i])
		}
	}
}

// TestCorruptFaultCampaign: corrupt IR handed to the rest of the pipeline
// surfaces as a verifier ICE (a crash), isolated to its config.
func TestCorruptFaultCampaign(t *testing.T) {
	faults, err := harness.ParseFaults("corrupt:globaldce:102:gcc-sim -O1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(Options{
		Programs: 1,
		BaseSeed: 102,
		Levels:   []pipeline.Level{pipeline.O1},
		Faults:   faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Crashes != 1 {
		t.Fatalf("corrupt IR not caught as a crash: %+v", c.Stats.Errors)
	}
	f := c.Stats.Failures[0]
	if f.Config != "gcc-sim -O1" || f.Kind != harness.KindCrash {
		t.Errorf("failure: %+v", f)
	}
	// The other personality's config at the same level is untouched.
	if c.Outcomes[0].Ok == false || len(c.Outcomes[0].Configs) != 1 {
		t.Errorf("healthy config dropped: %+v", c.Outcomes[0])
	}
}

// TestFaultedCampaignDeterminism: two identical faulted runs produce the
// same sorted errors, buckets, statistics, and findings (satellite:
// deterministic output even under failures).
func TestFaultedCampaignDeterminism(t *testing.T) {
	faults, err := harness.ParseFaults("panic:gvn:101:gcc-sim -O3,stall:simplifycfg:103:llvm-sim -O1")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Campaign {
		c, err := Run(Options{Programs: 6, BaseSeed: 100, Faults: faults, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := run(), run()
	if !reflect.DeepEqual(c1.Stats.Errors, c2.Stats.Errors) {
		t.Errorf("errors differ:\n%v\nvs\n%v", c1.Stats.Errors, c2.Stats.Errors)
	}
	if !reflect.DeepEqual(c1.Stats.CrashBuckets, c2.Stats.CrashBuckets) {
		t.Errorf("buckets differ:\n%+v\nvs\n%+v", c1.Stats.CrashBuckets, c2.Stats.CrashBuckets)
	}
	if !reflect.DeepEqual(c1.Findings, c2.Findings) {
		t.Error("findings differ")
	}
	if !reflect.DeepEqual(c1.Stats.Missed, c2.Stats.Missed) {
		t.Error("missed counts differ")
	}
}

// TestCheckpointResume is the tentpole resume-acceptance test: a campaign
// killed partway and resumed from its checkpoint aggregates byte-identically
// to an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	full := Options{Programs: 5, BaseSeed: 200}
	uninterrupted, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cp.json")
	// "Kill" the campaign after two seeds by only asking for two.
	if _, err := Run(Options{Programs: 2, BaseSeed: 200, Checkpoint: harness.NewCheckpoint(path)}); err != nil {
		t.Fatal(err)
	}
	cp, err := harness.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 2 {
		t.Fatalf("checkpoint has %d seeds, want 2", cp.Len())
	}

	resumed, err := Run(Options{Programs: 5, BaseSeed: 200, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	// Restored seeds have no in-memory ProgramResult; fresh ones do.
	if resumed.Programs[0] != nil || resumed.Programs[1] != nil {
		t.Error("restored seeds recomputed")
	}
	if resumed.Programs[4] == nil {
		t.Error("fresh seed missing its result")
	}

	// Byte-identical outcomes, hence identical aggregation.
	for i := range uninterrupted.Outcomes {
		a, _ := json.Marshal(uninterrupted.Outcomes[i])
		b, _ := json.Marshal(resumed.Outcomes[i])
		if string(a) != string(b) {
			t.Errorf("seed %d outcome differs after resume:\n%s\nvs\n%s",
				uninterrupted.Outcomes[i].Seed, a, b)
		}
	}
	if !reflect.DeepEqual(uninterrupted.Stats, resumed.Stats) {
		t.Error("stats differ after resume")
	}
	if !reflect.DeepEqual(uninterrupted.Findings, resumed.Findings) {
		t.Error("findings differ after resume")
	}

	// A differently-configured campaign must refuse the checkpoint.
	if _, err := Run(Options{Programs: 5, BaseSeed: 999, Checkpoint: cp}); err == nil {
		t.Error("checkpoint accepted a mismatched campaign")
	}
}
