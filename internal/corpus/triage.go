package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"dcelens/internal/ast"
	"dcelens/internal/bisect"
	"dcelens/internal/core"
	"dcelens/internal/instrument"
	"dcelens/internal/interp"
	"dcelens/internal/parser"
	"dcelens/internal/pipeline"
	"dcelens/internal/reduce"
	"dcelens/internal/sema"
)

// InterestingnessFor builds the reduction oracle for a finding: the
// candidate program must still terminate cleanly, the marker must still be
// dead in ground truth, the target configuration must still keep it, and
// the reference configuration must still eliminate it — exactly the
// paper's C-Reduce interestingness test (§4.3).
func InterestingnessFor(marker string, target, reference *pipeline.Config) reduce.Interestingness {
	return func(p *ast.Program) bool {
		ins, markers, ok := asInstrumented(p)
		if !ok {
			return false
		}
		found := false
		for _, m := range markers {
			if m == marker {
				found = true
			}
		}
		if !found {
			return false
		}
		truth, err := core.GroundTruth(ins)
		if err != nil {
			return false
		}
		if truth.Alive[marker] {
			return false // must still be dead
		}
		tc, err := core.Compile(ins, target)
		if err != nil || !tc.Alive[marker] {
			return false // target must still miss it
		}
		if reference != nil {
			rc, err := core.Compile(ins, reference)
			if err != nil || rc.Alive[marker] {
				return false // reference must still eliminate it
			}
		}
		return true
	}
}

// asInstrumented wraps an already-instrumented program (markers are plain
// extern calls in the source) into the instrument.Program shape the core
// package consumes, without re-instrumenting.
func asInstrumented(p *ast.Program) (*instrument.Program, []string, bool) {
	ins := &instrument.Program{Prog: p}
	var names []string
	for _, f := range p.Funcs() {
		if f.Body == nil && instrument.IsMarker(f.Name) {
			ins.Markers = append(ins.Markers, instrument.Marker{ID: len(ins.Markers), Name: f.Name})
			names = append(names, f.Name)
		}
	}
	// Reject programs that no longer execute (e.g. main dropped).
	if _, err := interp.Run(p, interp.Options{}); err != nil {
		return nil, nil, false
	}
	return ins, names, true
}

// ReducedCase is a reduced, deduplicable finding.
type ReducedCase struct {
	Finding Finding
	Source  string
	Hash    string
	Nodes   int
}

// ReduceFinding reduces the program of a finding with the standard
// interestingness test. For compiler-diff findings the reference is the
// other personality at -O3; for level regressions it is the same
// personality at -O1.
func (c *Campaign) ReduceFinding(f Finding, opts reduce.Options) (*ReducedCase, error) {
	r := c.Result(f.Seed)
	if r == nil || r.Err != nil {
		return nil, fmt.Errorf("corpus: no result for seed %d", f.Seed)
	}
	target := pipeline.New(f.Personality, f.Level)
	var reference *pipeline.Config
	if f.Kind == KindCompilerDiff {
		reference = pipeline.New(other(f.Personality), pipeline.O3)
	} else {
		reference = pipeline.New(f.Personality, pipeline.O1)
	}
	test := InterestingnessFor(f.Marker, target, reference)
	res := reduce.Reduce(r.Ins.Prog, test, opts)
	src := ast.Print(res.Program)
	sum := sha256.Sum256([]byte(normalizeForDedup(src, f.Marker)))
	return &ReducedCase{
		Finding: f,
		Source:  src,
		Hash:    hex.EncodeToString(sum[:8]),
		Nodes:   res.NodesAfter,
	}, nil
}

// normalizeForDedup alpha-renames every identifier to a canonical
// position-based name (and the distinguished marker to MARKER), so that
// structurally identical reductions of different findings collide — the
// deduplication the paper performs before reporting (§4.2 mentions 5 of
// GCC's reports being duplicates).
func normalizeForDedup(src, marker string) string {
	prog, err := parser.Parse(src)
	if err != nil {
		return src // fall back to textual identity
	}
	if err := sema.Check(prog); err != nil {
		return src
	}
	gi, fi := 0, 0
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			d.Name = fmt.Sprintf("g%d", gi)
			gi++
		case *ast.FuncDecl:
			switch {
			case d.Name == marker:
				d.Name = "MARKER"
			case instrument.IsMarker(d.Name):
				d.Name = fmt.Sprintf("m%d", fi)
				fi++
			case d.Name == "main":
				// keep
			default:
				d.Name = fmt.Sprintf("f%d", fi)
				fi++
			}
		}
	}
	for _, f := range prog.Funcs() {
		li := 0
		for _, p := range f.Params {
			p.Name = fmt.Sprintf("p%d", li)
			li++
		}
		if f.Body == nil {
			continue
		}
		ast.Inspect(f.Body, func(n ast.Node) bool {
			if ds, ok := n.(*ast.DeclStmt); ok {
				ds.Decl.Name = fmt.Sprintf("v%d", li)
				li++
			}
			return true
		})
	}
	// Propagate the new names to every resolved reference.
	ast.Inspect(prog, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.VarRef:
			if n.Obj != nil {
				n.Name = n.Obj.Name
			}
		case *ast.Call:
			if n.Fn != nil {
				n.Name = n.Fn.Name
			}
		}
		return true
	})
	return ast.Print(prog)
}

func other(p pipeline.Personality) pipeline.Personality {
	if p == pipeline.GCC {
		return pipeline.LLVM
	}
	return pipeline.GCC
}

// Triage mirrors Table 5: reduced cases are deduplicated into reports;
// a report is Confirmed when it still reproduces at the tested version
// (always true by construction, minus duplicates) and Fixed when the
// personality's future fixes make the marker eliminable.
type Triage struct {
	Reported  int
	Confirmed int
	Duplicate int
	Fixed     int
}

// TriageCases runs the triage model over reduced cases of one personality.
func TriageCases(p pipeline.Personality, cases []*ReducedCase) (*Triage, error) {
	t := &Triage{}
	seen := map[string]bool{}
	futureO3 := pipeline.FutureConfig(p, pipeline.O3)
	futureO1 := pipeline.FutureConfig(p, pipeline.O1)
	for _, rc := range cases {
		if rc.Finding.Personality != p {
			continue
		}
		t.Reported++
		if seen[rc.Hash] {
			t.Duplicate++
			continue
		}
		seen[rc.Hash] = true
		t.Confirmed++
		// Fixed: under the future configuration the marker is eliminated.
		prog, err := parser.Parse(rc.Source)
		if err != nil {
			return nil, fmt.Errorf("corpus: reduced case does not reparse: %w", err)
		}
		if err := sema.Check(prog); err != nil {
			return nil, fmt.Errorf("corpus: reduced case does not recheck: %w", err)
		}
		ins, _, ok := asInstrumented(prog)
		if !ok {
			continue
		}
		cfg := futureO3
		if rc.Finding.Level == pipeline.O1 {
			cfg = futureO1
		}
		comp, err := core.Compile(ins, cfg)
		if err != nil {
			return nil, err
		}
		if !comp.Alive[rc.Finding.Marker] {
			t.Fixed++
		}
	}
	return t, nil
}

// BisectRegressions bisects a personality's -O3 findings down to offending
// commits, following the paper's procedure: locate a previous compiler
// version in which the missed call was eliminated, then bisect between it
// and the current version. Both level-diff and compiler-diff findings are
// candidates (either kind may be a version regression); misses that every
// version shares are skipped as long-standing limitations. Duplicate
// (seed, marker) pairs are bisected once.
func (c *Campaign) BisectRegressions(p pipeline.Personality, primaryOnly bool, max int) ([]*bisect.Outcome, int, error) {
	findings := append(c.FindingsOf(KindLevelDiff, p, primaryOnly),
		c.FindingsOf(KindCompilerDiff, p, primaryOnly)...)
	seen := map[string]bool{}
	var outcomes []*bisect.Outcome
	attempted := 0
	for _, f := range findings {
		key := fmt.Sprintf("%d/%s", f.Seed, f.Marker)
		if seen[key] {
			continue
		}
		seen[key] = true
		if max > 0 && attempted >= max {
			break
		}
		r := c.Result(f.Seed)
		if r == nil || r.Err != nil {
			continue
		}
		attempted++
		out, err := bisect.Regression(r.Ins, p, pipeline.O3, f.Marker)
		if err != nil {
			continue // not a regression (long-standing miss): skip
		}
		outcomes = append(outcomes, out)
	}
	sort.Slice(outcomes, func(i, j int) bool {
		if outcomes[i].Commit.ID != outcomes[j].Commit.ID {
			return outcomes[i].Commit.ID < outcomes[j].Commit.ID
		}
		return outcomes[i].Marker < outcomes[j].Marker
	})
	return outcomes, attempted, nil
}
