package corpus

import (
	"fmt"
	"sort"

	"dcelens/internal/harness"
	"dcelens/internal/pipeline"
	"dcelens/internal/remark"
)

// CfgOutcome is one configuration's contribution to a seed's outcome.
type CfgOutcome struct {
	Personality pipeline.Personality `json:"personality"`
	Level       pipeline.Level       `json:"level"`
	Missed      int                  `json:"missed"`
	Primary     int                  `json:"primary"`
}

// SeedOutcome is the compact, JSON-serializable summary of one seed's
// campaign contribution — everything aggregation needs, independent of the
// heavyweight in-memory ProgramResult. Checkpoints persist these verbatim,
// and aggregate() consumes only these, which is what makes a resumed
// campaign's report byte-identical to an uninterrupted run's.
type SeedOutcome struct {
	Seed    int64 `json:"seed"`
	Markers int   `json:"markers,omitempty"`
	Dead    int   `json:"dead,omitempty"`
	Alive   int   `json:"alive,omitempty"`
	// Ok reports that the program itself was analyzable (individual
	// configs may still have failed; see Failures).
	Ok bool `json:"ok"`
	// Err is the program-level failure text ("" when Ok).
	Err      string            `json:"err,omitempty"`
	Configs  []CfgOutcome      `json:"configs,omitempty"`
	Findings []Finding         `json:"findings,omitempty"`
	Failures []harness.Failure `json:"failures,omitempty"`
	// Remarks summarizes the seed's optimization remarks across every
	// configuration; nil unless the campaign ran with Options.Remarks.
	Remarks *RemarkSummary `json:"remarks,omitempty"`
}

// RemarkSummary is a seed's (or job's) remark aggregation: per-pass applied
// and missed counts plus the miss-reason histogram. Maps keep JSON output
// deterministic (encoding/json sorts keys).
type RemarkSummary struct {
	Applied map[string]int `json:"applied,omitempty"`
	Missed  map[string]int `json:"missed,omitempty"`
	Reasons map[string]int `json:"reasons,omitempty"`
}

// add folds one compilation's remark profile into the summary.
func (s *RemarkSummary) add(p *remark.Profile) {
	if p == nil {
		return
	}
	for _, pc := range p.Passes {
		if pc.Applied > 0 {
			if s.Applied == nil {
				s.Applied = map[string]int{}
			}
			s.Applied[pc.Pass] += pc.Applied
		}
		if pc.Missed > 0 {
			if s.Missed == nil {
				s.Missed = map[string]int{}
			}
			s.Missed[pc.Pass] += pc.Missed
		}
	}
	for reason, n := range p.Reasons {
		if s.Reasons == nil {
			s.Reasons = map[string]int{}
		}
		s.Reasons[reason] += n
	}
}

// outcomeOf condenses a ProgramResult into its serializable outcome.
func outcomeOf(o Options, r *ProgramResult) *SeedOutcome {
	out := &SeedOutcome{Seed: r.Seed, Failures: r.Failures}
	if r.Err != nil {
		out.Err = r.Err.Error()
		return out
	}
	out.Ok = true
	out.Markers = len(r.Ins.Markers)
	out.Dead = len(r.Truth.Dead)
	out.Alive = len(r.Truth.Alive)
	var rsum RemarkSummary
	for _, p := range o.Personalities {
		for _, lvl := range o.Levels {
			an := r.PerCfg[ConfigKey{p, lvl}]
			if an == nil {
				continue // this config failed; its Failure is recorded
			}
			out.Configs = append(out.Configs, CfgOutcome{
				Personality: p,
				Level:       lvl,
				Missed:      len(an.Missed),
				Primary:     len(an.PrimaryMissed),
			})
			rsum.add(an.Remarks)
		}
	}
	if o.Remarks {
		out.Remarks = &rsum
	}
	out.Findings = append(out.Findings, diffFindings(o, r)...)
	out.Findings = append(out.Findings, levelFindings(o, r)...)
	sort.Slice(out.Findings, func(i, j int) bool {
		return findingLess(out.Findings[i], out.Findings[j])
	})
	return out
}

// campaignMeta identifies a campaign for checkpoint binding: resuming with
// different options would silently mix incomparable outcomes.
func campaignMeta(o Options) map[string]string {
	perss := ""
	for _, p := range o.Personalities {
		perss += string(p) + ";"
	}
	lvls := ""
	for _, l := range o.Levels {
		lvls += l.String() + ";"
	}
	return map[string]string{
		"base_seed":     fmt.Sprint(o.BaseSeed),
		"trace":         fmt.Sprint(o.Trace),
		"remarks":       fmt.Sprint(o.Remarks),
		"verify":        fmt.Sprint(o.VerifySemantics),
		"personalities": perss,
		"levels":        lvls,
		"shard":         o.Shard.String(),
	}
}
