package corpus

import (
	"fmt"
	"sort"

	"dcelens/internal/harness"
	"dcelens/internal/pipeline"
)

// CfgOutcome is one configuration's contribution to a seed's outcome.
type CfgOutcome struct {
	Personality pipeline.Personality `json:"personality"`
	Level       pipeline.Level       `json:"level"`
	Missed      int                  `json:"missed"`
	Primary     int                  `json:"primary"`
}

// SeedOutcome is the compact, JSON-serializable summary of one seed's
// campaign contribution — everything aggregation needs, independent of the
// heavyweight in-memory ProgramResult. Checkpoints persist these verbatim,
// and aggregate() consumes only these, which is what makes a resumed
// campaign's report byte-identical to an uninterrupted run's.
type SeedOutcome struct {
	Seed    int64 `json:"seed"`
	Markers int   `json:"markers,omitempty"`
	Dead    int   `json:"dead,omitempty"`
	Alive   int   `json:"alive,omitempty"`
	// Ok reports that the program itself was analyzable (individual
	// configs may still have failed; see Failures).
	Ok bool `json:"ok"`
	// Err is the program-level failure text ("" when Ok).
	Err      string            `json:"err,omitempty"`
	Configs  []CfgOutcome      `json:"configs,omitempty"`
	Findings []Finding         `json:"findings,omitempty"`
	Failures []harness.Failure `json:"failures,omitempty"`
}

// outcomeOf condenses a ProgramResult into its serializable outcome.
func outcomeOf(o Options, r *ProgramResult) *SeedOutcome {
	out := &SeedOutcome{Seed: r.Seed, Failures: r.Failures}
	if r.Err != nil {
		out.Err = r.Err.Error()
		return out
	}
	out.Ok = true
	out.Markers = len(r.Ins.Markers)
	out.Dead = len(r.Truth.Dead)
	out.Alive = len(r.Truth.Alive)
	for _, p := range o.Personalities {
		for _, lvl := range o.Levels {
			an := r.PerCfg[ConfigKey{p, lvl}]
			if an == nil {
				continue // this config failed; its Failure is recorded
			}
			out.Configs = append(out.Configs, CfgOutcome{
				Personality: p,
				Level:       lvl,
				Missed:      len(an.Missed),
				Primary:     len(an.PrimaryMissed),
			})
		}
	}
	out.Findings = append(out.Findings, diffFindings(o, r)...)
	out.Findings = append(out.Findings, levelFindings(o, r)...)
	sort.Slice(out.Findings, func(i, j int) bool {
		return findingLess(out.Findings[i], out.Findings[j])
	})
	return out
}

// campaignMeta identifies a campaign for checkpoint binding: resuming with
// different options would silently mix incomparable outcomes.
func campaignMeta(o Options) map[string]string {
	perss := ""
	for _, p := range o.Personalities {
		perss += string(p) + ";"
	}
	lvls := ""
	for _, l := range o.Levels {
		lvls += l.String() + ";"
	}
	return map[string]string{
		"base_seed":     fmt.Sprint(o.BaseSeed),
		"trace":         fmt.Sprint(o.Trace),
		"verify":        fmt.Sprint(o.VerifySemantics),
		"personalities": perss,
		"levels":        lvls,
		"shard":         o.Shard.String(),
	}
}
