package corpus

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"dcelens/internal/harness"
	"dcelens/internal/metrics"
	"dcelens/internal/pipeline"
)

// TestResumeDoesNotDoubleCountMetrics is the resume-accounting satellite: a
// checkpoint-resumed campaign must not re-add restored seeds' work to the
// live registry. The registry counts only what this process did (fresh
// seeds into seeds.analyzed, restored ones into seeds.restored), while
// Stats rebuilds the campaign-wide totals from the checkpointed outcomes —
// so the two partial registries partition the uninterrupted one's counts
// exactly, and Stats still reports the full campaign.
func TestResumeDoesNotDoubleCountMetrics(t *testing.T) {
	// Two injected crashes: seed 101 lands in the pre-kill prefix, seed 104
	// in the resumed suffix.
	faults, err := harness.ParseFaults("panic:gvn:101:gcc-sim -O3,panic:gvn:104:gcc-sim -O3")
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Programs: 5, BaseSeed: 100, Faults: faults}

	regFull := metrics.New()
	full := base
	full.Metrics = regFull
	uninterrupted, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if uninterrupted.Stats.Crashes != 2 {
		t.Fatalf("uninterrupted crashes = %d, want 2", uninterrupted.Stats.Crashes)
	}

	// "Kill" after two seeds, checkpointing them.
	path := filepath.Join(t.TempDir(), "cp.json")
	regA := metrics.New()
	partial := base
	partial.Programs = 2
	partial.Metrics = regA
	partial.Checkpoint = harness.NewCheckpoint(path)
	if _, err := Run(partial); err != nil {
		t.Fatal(err)
	}

	cp, err := harness.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	regB := metrics.New()
	var events bytes.Buffer
	resume := base
	resume.Metrics = regB
	resume.Checkpoint = cp
	resume.Events = metrics.NewEventLog(&events)
	resumed, err := Run(resume)
	if err != nil {
		t.Fatal(err)
	}

	counter := func(reg *metrics.Registry, name string) int64 { return reg.Counter(name).Value() }

	// The resumed registry counts only this process's work.
	if got := counter(regB, metrics.CounterSeedsAnalyzed); got != 3 {
		t.Errorf("resumed seeds.analyzed = %d, want 3 (fresh seeds only)", got)
	}
	if got := counter(regB, metrics.CounterSeedsRestored); got != 2 {
		t.Errorf("resumed seeds.restored = %d, want 2", got)
	}
	if got := counter(regB, metrics.CounterCrashes); got != 1 {
		t.Errorf("resumed crash counter = %d, want 1 (seed 104 only; 101 was restored)", got)
	}
	wantUnits := 3 * int64(2*len(pipeline.Levels))
	if got := counter(regB, metrics.CounterUnits); got != wantUnits {
		t.Errorf("resumed units = %d, want %d (restored seeds recompile nothing)", got, wantUnits)
	}
	if got := regB.Histogram("campaign.seed").Count(); got != 3 {
		t.Errorf("resumed campaign.seed observations = %d, want 3", got)
	}

	// The two partial registries partition the uninterrupted run's counts.
	for _, name := range []string{
		metrics.CounterSeedsAnalyzed, metrics.CounterUnits,
		metrics.CounterCrashes, metrics.CounterTimeouts,
	} {
		if got, want := counter(regA, name)+counter(regB, name), counter(regFull, name); got != want {
			t.Errorf("%s: partial sum %d != uninterrupted %d", name, got, want)
		}
	}

	// Stats still reports the whole campaign: aggregation comes from the
	// outcomes, not the registry.
	if resumed.Stats.Crashes != uninterrupted.Stats.Crashes {
		t.Errorf("resumed Stats.Crashes = %d, want %d", resumed.Stats.Crashes, uninterrupted.Stats.Crashes)
	}

	// The event log marks restored seeds instead of replaying their units.
	restoredEnds, failures := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(events.String()), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if obj["event"] == "seed_end" && obj["restored"] == true {
			restoredEnds++
		}
		if obj["event"] == "failure" {
			failures++
		}
	}
	if restoredEnds != 2 {
		t.Errorf("restored seed_end events = %d, want 2", restoredEnds)
	}
	if failures != 1 {
		t.Errorf("failure events = %d, want 1 (only the fresh crash)", failures)
	}
}
