package corpus

import (
	"fmt"
	"sort"

	"dcelens/internal/core"
	"dcelens/internal/pipeline"
	"dcelens/internal/trace"
)

// EliminationsPerPass aggregates the campaign's marker provenance for one
// configuration into the eliminations-per-pass table: for each pass
// (across all of its schedule instances), how many dead markers it
// eliminated, labelled with the pass's compiler component. The table is
// the trace-side analogue of the paper's Tables 3/4 — instead of "which
// commits broke eliminations", it answers "which components perform them".
// Requires a campaign run with Options.Trace; programs without traces
// contribute nothing. Aggregation is slice-ordered throughout, so the same
// campaign yields byte-identical rows.
func (c *Campaign) EliminationsPerPass(key ConfigKey) []trace.PassElims {
	counts := map[string]int{}
	for _, r := range c.Programs {
		if r == nil || r.Err != nil {
			continue
		}
		an := r.PerCfg[key]
		if an == nil || an.Trace == nil {
			continue
		}
		dead := map[string]bool{}
		for _, m := range r.Truth.Dead {
			dead[m] = true
		}
		prov := an.Trace.Provenance()
		for _, m := range prov.Markers {
			if dead[m] {
				counts[prov.Killer[m].Pass]++
			}
		}
	}
	passes := make([]string, 0, len(counts))
	for p := range counts {
		passes = append(passes, p)
	}
	sort.Strings(passes)
	rows := make([]trace.PassElims, 0, len(passes))
	for _, p := range passes {
		rows = append(rows, trace.PassElims{
			Pass:         p,
			Component:    trace.ComponentOf(p),
			Eliminations: counts[p],
		})
	}
	trace.SortElims(rows)
	return rows
}

// attributionReference picks the configuration that eliminates a finding's
// marker: the other personality at -O3 for compiler-diff findings, and the
// same personality at the lower level that succeeded for level-diff
// findings (-O1 when it eliminates there, else -O2 — the definition in
// levelFindings).
func (c *Campaign) attributionReference(f Finding, r *ProgramResult) *pipeline.Config {
	if f.Kind == KindCompilerDiff {
		return pipeline.New(other(f.Personality), pipeline.O3)
	}
	o1 := r.PerCfg[ConfigKey{Personality: f.Personality, Level: pipeline.O1}]
	if o1 != nil && !o1.Compilation.Alive[f.Marker] {
		return pipeline.New(f.Personality, pipeline.O1)
	}
	return pipeline.New(f.Personality, pipeline.O2)
}

// AttributeFinding answers "who eliminates this marker?" for a finding:
// it re-compiles the program under the configuration that succeeds, with
// tracing attached, and returns the provenance entry naming the pass
// instance responsible. This is the cheap per-finding root cause the paper
// obtains only for regressions via history bisection.
func (c *Campaign) AttributeFinding(f Finding) (*trace.Attribution, error) {
	r := c.Result(f.Seed)
	if r == nil || r.Err != nil {
		return nil, fmt.Errorf("corpus: no result for seed %d", f.Seed)
	}
	ref := c.attributionReference(f, r)
	comp, prof, err := core.CompileTraced(r.Ins, ref)
	if err != nil {
		return nil, err
	}
	if comp.Alive[f.Marker] {
		return nil, fmt.Errorf("corpus: %s does not eliminate %s (seed %d)", ref.Name(), f.Marker, f.Seed)
	}
	killer, ok := prof.Provenance().KillerOf(f.Marker)
	if !ok {
		return nil, fmt.Errorf("corpus: %s eliminated %s but provenance has no killer (seed %d)",
			ref.Name(), f.Marker, f.Seed)
	}
	return &trace.Attribution{
		Marker:     f.Marker,
		Eliminator: ref.Name(),
		Killer:     killer,
		Component:  trace.ComponentOf(killer.Pass),
	}, nil
}
