// Package remark is the collection side of the optimization-remarks
// subsystem: internal/opt's passes emit typed remarks (applied /
// missed-with-reason / analysis) through the opt.RemarkSink seam, and the
// Collector here gathers them over one compilation, deduplicates fixpoint
// re-emissions, and reduces them to a Profile — per-pass counters, miss
// reasons, and the per-marker **nearest-miss chain**: the ordered list of
// (pass, reason) decisions that kept a surviving marker's code alive.
//
// The chain is what turns a campaign finding from "marker survived" into
// "marker survived because licm refused to hoist: alias-unknown at the
// store of g" — the root-causing substrate dce-explain renders and the
// future oracles consume. Chains are recorded in IR emission order (the
// pipeline is deterministic per seed), so every artifact built from them
// is byte-identical across worker counts, shards, and resumes.
package remark

import (
	"sort"

	"dcelens/internal/ir"
	"dcelens/internal/opt"
)

// chainCap bounds a nearest-miss chain: the first decisions are the
// closest to the marker (dce's own side-effects verdict always leads),
// and past a handful the narrative stops adding signal.
const chainCap = 8

// Collector implements opt.Observer and opt.RemarkSink over one
// compilation. Attach it through opt.Observers alongside the trace
// recorder and metrics observer; only the collector sees the remarks.
type Collector struct {
	isMarker func(string) bool
	module   *ir.Module
	remarks  []opt.Remark
	seen     map[opt.Remark]struct{}
}

// NewCollector returns an empty collector; isMarker classifies external
// callee names (instrument.IsMarker) for chain assembly.
func NewCollector(isMarker func(string) bool) *Collector {
	return &Collector{
		isMarker: isMarker,
		seen:     make(map[opt.Remark]struct{}, 64),
		// A mid-sized compilation lands a few hundred remarks; pre-sizing
		// skips the doubling reallocations of a 112-byte element type.
		remarks: make([]opt.Remark, 0, 256),
	}
}

// BeginPipeline captures the module; the pipeline mutates it in place, so
// at Profile time it holds the final IR the chains are assembled against.
func (c *Collector) BeginPipeline(m *ir.Module) { c.module = m }

// AfterPass is a no-op: the collector listens on the remark channel, not
// the pass-stats channel.
func (c *Collector) AfterPass(m *ir.Module, pass string, scheduleIndex, iteration int, st opt.PassStats) {
}

// Remark records one emission. Fixpoint iterations re-derive the same
// decisions; Missed and Analysis remarks identical up to their pipeline
// position collapse to the first occurrence, so a chain reads as a
// sequence of distinct decisions rather than one decision repeated per
// iteration. Applied remarks skip the dedupe map: a transformation
// consumes its input (the replaced value, the promoted alloca, the
// inlined call site), so it cannot re-fire, and Applied carries the bulk
// of a compilation's remark volume — one map insert per emission there is
// the difference between a cheap flag and a measurable campaign tax.
func (c *Collector) Remark(r opt.Remark) {
	if r.Kind != opt.RemarkApplied {
		key := r
		key.ScheduleIndex, key.Iteration = 0, 0
		if _, dup := c.seen[key]; dup {
			return
		}
		c.seen[key] = struct{}{}
	}
	c.remarks = append(c.remarks, r)
}

// Len reports how many distinct remarks were collected.
func (c *Collector) Len() int { return len(c.remarks) }

// Remarks returns the collected remarks in emission order.
func (c *Collector) Remarks() []opt.Remark { return c.remarks }

// ChainStep is one decision of a nearest-miss chain.
type ChainStep struct {
	Pass    string `json:"pass"`
	Reason  string `json:"reason"`
	Subject string `json:"subject"`
	Detail  string `json:"detail,omitempty"`
}

// PassCount aggregates one pass's remarks.
type PassCount struct {
	Pass     string `json:"pass"`
	Applied  int    `json:"applied,omitempty"`
	Missed   int    `json:"missed,omitempty"`
	Analysis int    `json:"analysis,omitempty"`
}

// Profile is the reduced form of one compilation's remarks.
type Profile struct {
	// Total is the distinct remark count.
	Total int `json:"total"`
	// Passes holds per-pass applied/missed/analysis counts, sorted by
	// pass name.
	Passes []PassCount `json:"passes,omitempty"`
	// Reasons counts Missed remarks by reason code.
	Reasons map[string]int `json:"reasons,omitempty"`
	// Chains maps each surviving marker to its nearest-miss chain: the
	// Missed decisions recorded in the marker's enclosing function(s),
	// plus module-scoped ones, in pipeline order, capped at chainCap.
	Chains map[string][]ChainStep `json:"chains,omitempty"`
}

// Profile reduces the collected remarks. Call it after the compilation;
// the chains are assembled against the module's final IR (where the
// markers actually survived), so inlined marker copies are chained under
// the function they ended up in.
func (c *Collector) Profile() *Profile {
	p := &Profile{Total: len(c.remarks)}
	counts := map[string]*PassCount{}
	for _, r := range c.remarks {
		pc := counts[r.Pass]
		if pc == nil {
			pc = &PassCount{Pass: r.Pass}
			counts[r.Pass] = pc
		}
		switch r.Kind {
		case opt.RemarkApplied:
			pc.Applied++
		case opt.RemarkMissed:
			pc.Missed++
			if p.Reasons == nil {
				p.Reasons = map[string]int{}
			}
			p.Reasons[string(r.Reason)]++
		case opt.RemarkAnalysis:
			pc.Analysis++
		}
	}
	for _, pc := range counts {
		p.Passes = append(p.Passes, *pc)
	}
	sort.Slice(p.Passes, func(i, j int) bool { return p.Passes[i].Pass < p.Passes[j].Pass })

	if c.module == nil || c.isMarker == nil {
		return p
	}
	// Surviving markers and the defined functions that still call them.
	enclosing := map[string]map[string]bool{}
	for _, f := range c.module.Funcs {
		if f.External {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall || in.Callee == nil || !in.Callee.External || !c.isMarker(in.Callee.Name) {
					continue
				}
				fns := enclosing[in.Callee.Name]
				if fns == nil {
					fns = map[string]bool{}
					enclosing[in.Callee.Name] = fns
				}
				fns[f.Name] = true
			}
		}
	}
	if len(enclosing) == 0 {
		return p
	}
	p.Chains = make(map[string][]ChainStep, len(enclosing))
	for marker, fns := range enclosing {
		var chain []ChainStep
		for _, r := range c.remarks {
			if r.Kind != opt.RemarkMissed {
				continue
			}
			if r.Fn != "" && !fns[r.Fn] {
				continue
			}
			chain = append(chain, ChainStep{
				Pass:    r.Pass,
				Reason:  string(r.Reason),
				Subject: r.Subject,
				Detail:  r.Detail,
			})
			if len(chain) == chainCap {
				break
			}
		}
		p.Chains[marker] = chain
	}
	return p
}

// Chain returns the profile's chain for one marker (nil when absent).
func (p *Profile) Chain(marker string) []ChainStep {
	if p == nil {
		return nil
	}
	return p.Chains[marker]
}
