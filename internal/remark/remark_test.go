package remark

import (
	"strings"
	"testing"

	"dcelens/internal/instrument"
	"dcelens/internal/ir"
	"dcelens/internal/lower"
	"dcelens/internal/metrics"
	"dcelens/internal/opt"
	"dcelens/internal/parser"
	"dcelens/internal/sema"
	"dcelens/internal/trace"
)

func missed(pass, fn, subject string, reason opt.Reason) opt.Remark {
	return opt.Remark{Kind: opt.RemarkMissed, Pass: pass, Fn: fn, Subject: subject, Reason: reason}
}

// TestCollectorDedupe checks that fixpoint re-emissions — the same decision
// re-derived at a different schedule index or iteration — collapse to the
// first occurrence, while genuinely distinct decisions do not.
func TestCollectorDedupe(t *testing.T) {
	c := NewCollector(nil)
	r := missed("gvn", "f", "load g", opt.ReasonAliasUnknown)
	c.Remark(r)

	dup := r
	dup.ScheduleIndex, dup.Iteration = 5, 2
	c.Remark(dup)
	if c.Len() != 1 {
		t.Fatalf("after positional duplicate: Len = %d, want 1", c.Len())
	}

	other := r
	other.Subject = "load h"
	c.Remark(other)
	applied := opt.Remark{Kind: opt.RemarkApplied, Pass: "gvn", Fn: "f", Subject: "load g"}
	c.Remark(applied)
	if c.Len() != 3 {
		t.Fatalf("after distinct remarks: Len = %d, want 3", c.Len())
	}
	if got := c.Remarks()[0]; got != r {
		t.Errorf("emission order lost: first remark = %+v, want %+v", got, r)
	}
}

// TestProfileCounts checks the per-pass reduction: applied/missed/analysis
// tallies, the miss-reason histogram, and pass-name ordering.
func TestProfileCounts(t *testing.T) {
	c := NewCollector(nil)
	c.Remark(opt.Remark{Kind: opt.RemarkApplied, Pass: "licm", Fn: "f", Subject: "hoist a"})
	c.Remark(opt.Remark{Kind: opt.RemarkApplied, Pass: "licm", Fn: "f", Subject: "hoist b"})
	c.Remark(missed("licm", "f", "store g", opt.ReasonAliasUnknown))
	c.Remark(missed("gvn", "f", "load g", opt.ReasonAliasUnknown))
	c.Remark(missed("gvn", "g", "load h", opt.ReasonCallClobber))
	c.Remark(opt.Remark{Kind: opt.RemarkAnalysis, Pass: "gvn", Fn: "f", Subject: "escape set"})

	p := c.Profile()
	if p.Total != 6 {
		t.Fatalf("Total = %d, want 6", p.Total)
	}
	want := []PassCount{
		{Pass: "gvn", Missed: 2, Analysis: 1},
		{Pass: "licm", Applied: 2, Missed: 1},
	}
	if len(p.Passes) != len(want) {
		t.Fatalf("Passes = %+v, want %+v", p.Passes, want)
	}
	for i := range want {
		if p.Passes[i] != want[i] {
			t.Errorf("Passes[%d] = %+v, want %+v", i, p.Passes[i], want[i])
		}
	}
	if p.Reasons["alias-unknown"] != 2 || p.Reasons["call-clobber"] != 1 {
		t.Errorf("Reasons = %v, want alias-unknown:2 call-clobber:1", p.Reasons)
	}
	if p.Chains != nil {
		t.Errorf("no module captured, yet Chains = %v", p.Chains)
	}
	if got := p.Chain("DCEMarker0"); got != nil {
		t.Errorf("Chain on chainless profile = %v, want nil", got)
	}
	var nilProfile *Profile
	if got := nilProfile.Chain("DCEMarker0"); got != nil {
		t.Errorf("Chain on nil profile = %v, want nil", got)
	}
}

// chainModule builds a module where DCEMarker0 survives inside f: the
// chain must contain f-scoped and module-scoped misses, in emission order,
// and exclude misses recorded in unrelated functions.
func chainModule() *ir.Module {
	marker := &ir.Func{Name: "DCEMarker0", External: true}
	f := &ir.Func{Name: "f"}
	f.NewBlock().Append(ir.OpCall, nil)
	f.Entry().Instrs[0].Callee = marker
	g := &ir.Func{Name: "g"}
	g.NewBlock()
	return &ir.Module{Funcs: []*ir.Func{f, g, marker}}
}

// TestProfileChains checks nearest-miss chain assembly: scoping, ordering,
// the Missed-only filter, and the chain cap.
func TestProfileChains(t *testing.T) {
	c := NewCollector(instrument.IsMarker)
	c.BeginPipeline(chainModule())
	c.Remark(missed("dce", "f", "call DCEMarker0", opt.ReasonSideEffects))
	c.Remark(missed("gvn", "g", "load h", opt.ReasonCallClobber)) // wrong function
	c.Remark(opt.Remark{Kind: opt.RemarkApplied, Pass: "licm", Fn: "f", Subject: "hoist a"})
	c.Remark(missed("ipsccp", "", "global g_1", opt.ReasonEscape)) // module scope
	c.Remark(missed("licm", "f", "store g_1", opt.ReasonLoopCarried))

	chain := c.Profile().Chain("DCEMarker0")
	want := []ChainStep{
		{Pass: "dce", Reason: "side-effects", Subject: "call DCEMarker0"},
		{Pass: "ipsccp", Reason: "escape", Subject: "global g_1"},
		{Pass: "licm", Reason: "loop-carried", Subject: "store g_1"},
	}
	if len(chain) != len(want) {
		t.Fatalf("chain = %+v, want %+v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Errorf("chain[%d] = %+v, want %+v", i, chain[i], want[i])
		}
	}
}

// TestChainCap checks that a flood of misses truncates to chainCap: the
// decisions nearest the marker lead, and the tail stops adding signal.
func TestChainCap(t *testing.T) {
	c := NewCollector(instrument.IsMarker)
	c.BeginPipeline(chainModule())
	for i := 0; i < 2*chainCap; i++ {
		c.Remark(missed("gvn", "f", "load g_"+string(rune('a'+i)), opt.ReasonAliasUnknown))
	}
	if chain := c.Profile().Chain("DCEMarker0"); len(chain) != chainCap {
		t.Fatalf("chain length = %d, want cap %d", len(chain), chainCap)
	}
}

// buildIR lowers a MiniC fragment, as the opt tests do.
func buildIR(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	m, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// orderObserver appends its tag to a shared log on every observation, to
// pin down fan-out ordering.
type orderObserver struct {
	tag string
	log *[]string
}

func (o *orderObserver) BeginPipeline(m *ir.Module) { *o.log = append(*o.log, o.tag+":begin") }
func (o *orderObserver) AfterPass(m *ir.Module, pass string, scheduleIndex, iteration int, st opt.PassStats) {
	*o.log = append(*o.log, o.tag+":"+pass)
}

const fanoutSrc = `
void DCEMarker0(void);
int g;
int main(void) {
  int x = 1 + 2;
  if (g) {
    DCEMarker0();
  }
  return x - 3;
}`

// TestObserverFanOut runs one pipeline with the remark collector, the trace
// recorder, and the metrics pass observer composed through opt.Observers —
// the full production stack at once — and checks that each consumer sees
// exactly its own channel:
//
//   - the collector receives remarks (including dce's side-effects anchor
//     for the surviving marker), and a collector-free composition of the
//     same observers leaves remark emission off entirely;
//   - the trace recorder still assembles its pass profile and the metrics
//     registry its pass counters (pass observations are not consumed by the
//     remark fan-out);
//   - observers fire in composition order;
//   - typed nils are dropped even when a remark sink is present.
func TestObserverFanOut(t *testing.T) {
	passes := []opt.Pass{opt.Mem2Reg, opt.SCCP, opt.DCE}

	// Collector-free baseline: remark emission must stay off.
	m := buildIR(t, fanoutSrc)
	reg := metrics.New()
	rec := trace.NewRecorder([]string{"DCEMarker0"}, instrument.IsMarker)
	base := NewCollector(instrument.IsMarker)
	if err := opt.ObservedPipeline(m, opt.Options{}, passes, 2, opt.Observers(rec, opt.MetricsObserver(reg))); err != nil {
		t.Fatal(err)
	}
	// The baseline collector was never composed, so it saw nothing; the
	// pipeline ran without a sink, so no pass emitted.
	if base.Len() != 0 {
		t.Fatalf("uncomposed collector saw %d remarks", base.Len())
	}

	// Full stack: order log around the production observers.
	m = buildIR(t, fanoutSrc)
	reg = metrics.New()
	rec = trace.NewRecorder([]string{"DCEMarker0"}, instrument.IsMarker)
	coll := NewCollector(instrument.IsMarker)
	var log []string
	first := &orderObserver{tag: "first", log: &log}
	last := &orderObserver{tag: "last", log: &log}
	var typedNil *trace.Recorder
	obs := opt.Observers(first, typedNil, rec, opt.MetricsObserver(reg), coll, last)
	if err := opt.ObservedPipeline(m, opt.Options{}, passes, 2, obs); err != nil {
		t.Fatal(err)
	}

	if coll.Len() == 0 {
		t.Fatal("composed collector saw no remarks")
	}
	prof := coll.Profile()
	chain := prof.Chain("DCEMarker0")
	if len(chain) == 0 {
		t.Fatalf("surviving marker has no chain; chains = %v", prof.Chains)
	}
	if chain[0].Pass != "dce" || chain[0].Reason != string(opt.ReasonSideEffects) {
		t.Errorf("chain anchor = %+v, want dce/side-effects", chain[0])
	}

	// The pass channel still reached the other consumers.
	if got := reg.Histogram("pass.dce").Count(); got == 0 {
		t.Error("metrics observer recorded no dce instances")
	}
	if tp := rec.Profile(); len(tp.Passes) == 0 {
		t.Error("trace recorder assembled no pass profile")
	}

	// Ordering: every pass observation hits `first` before `last`, and the
	// log starts with the BeginPipeline pair.
	if len(log) < 2 || log[0] != "first:begin" || log[1] != "last:begin" {
		t.Fatalf("begin order = %v", log[:min(2, len(log))])
	}
	for i := 2; i < len(log); i += 2 {
		f, l := log[i], log[i+1]
		if !strings.HasPrefix(f, "first:") || !strings.HasPrefix(l, "last:") || f[len("first:"):] != l[len("last:"):] {
			t.Fatalf("pass order broken at %d: %q then %q", i, f, l)
		}
	}
}
