package report

import (
	"fmt"
	"strings"
	"time"

	"dcelens/internal/span"
)

// Timeline renders an analyzed span trace (span.Analyze) in the report
// style: the critical path through the campaign's wall clock, per-worker
// occupancy, the scheduler wait totals, and the slowest (seed, config)
// units. For a deterministic trace every wall-clock value renders as "-"
// and the wall-dependent tables (critical path, workers) are omitted — the
// remaining output is a pure function of the campaign configuration, so
// two identical runs render byte-identically.
func Timeline(p *span.Profile) string {
	var sb strings.Builder
	mode := "wall"
	if p.Deterministic {
		mode = "deterministic"
	}
	fmt.Fprintf(&sb, "Timeline profile (%d spans, %s, wall %s)\n",
		p.Spans, mode, tlDur(p.Deterministic, p.WallUs))

	if len(p.CriticalPath) > 0 {
		fmt.Fprintf(&sb, "\nCritical path (%d segments, idle %s)\n", len(p.CriticalPath), tlDur(p.Deterministic, p.IdleUs))
		fmt.Fprintf(&sb, "%-44s %10s %7s\n", "Segment", "time", "%wall")
		for _, e := range p.CriticalPath {
			fmt.Fprintf(&sb, "%-44s %10s %6.1f%%\n", e.Label, tlDur(false, e.Us), 100*e.Share)
		}
		if p.IdleUs > 0 && p.WallUs > 0 {
			fmt.Fprintf(&sb, "%-44s %10s %6.1f%%\n", "(idle)", tlDur(false, p.IdleUs),
				100*float64(p.IdleUs)/float64(p.WallUs))
		}
	}

	if len(p.Workers) > 0 {
		fmt.Fprintf(&sb, "\nWorker occupancy (%d workers)\n", len(p.Workers))
		fmt.Fprintf(&sb, "%-8s %6s %10s %10s %7s\n", "Worker", "items", "busy", "idle", "util")
		for _, u := range p.Workers {
			fmt.Fprintf(&sb, "%-8d %6d %10s %10s %6.1f%%\n",
				u.TID-1, u.Items, tlDur(false, u.BusyUs), tlDur(false, u.IdleUs), 100*u.Util)
		}
	}

	if p.QueueWait.Count > 0 || p.SeqStall.Count > 0 {
		sb.WriteString("\nScheduler waits\n")
		fmt.Fprintf(&sb, "%-12s %8s %10s %10s\n", "Kind", "spans", "total", "max")
		for _, w := range []struct {
			name string
			s    span.WaitStats
		}{{"queue-wait", p.QueueWait}, {"seq-stall", p.SeqStall}} {
			if w.s.Count == 0 {
				continue
			}
			fmt.Fprintf(&sb, "%-12s %8d %10s %10s\n", w.name, w.s.Count,
				tlDur(p.Deterministic, w.s.TotalUs), tlDur(p.Deterministic, w.s.MaxUs))
		}
	}

	if len(p.Units) > 0 {
		title := "Slowest units"
		if p.Deterministic {
			title = "Units (trace order)"
		}
		fmt.Fprintf(&sb, "\n%s (%d)\n", title, len(p.Units))
		fmt.Fprintf(&sb, "%-10s %-20s %-6s %10s %7s\n", "Seed", "Config", "ok", "time", "%wall")
		for _, u := range p.Units {
			fmt.Fprintf(&sb, "%-10s %-20s %-6t %10s %7s\n",
				u.Seed, u.Config, u.Ok, tlDur(p.Deterministic, u.Us), tlShare(p.Deterministic, u.Us, p.WallUs))
		}
	}
	return sb.String()
}

// tlDur formats a microsecond count, or the redaction placeholder in
// deterministic mode (matching the metrics report's convention).
func tlDur(deterministic bool, us int64) string {
	if deterministic {
		return "-"
	}
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// tlShare formats us as a percentage of total, redacted in deterministic
// mode.
func tlShare(deterministic bool, us, total int64) string {
	if deterministic {
		return "-"
	}
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(us)/float64(total))
}
