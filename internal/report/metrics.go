package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dcelens/internal/metrics"
)

// phaseOrder is the canonical rendering order of the phase breakdown: the
// conceptual compiler pipeline from source to assembly, with the
// campaign-only stages (generate/instrument/truth) leading. Only phases
// that actually recorded observations render, so single-tool runs stay
// compact.
var phaseOrder = []string{
	metrics.PhaseGenerate,
	metrics.PhaseInstrument,
	metrics.PhaseTruth,
	metrics.PhaseLex,
	metrics.PhaseParse,
	metrics.PhaseSema,
	metrics.PhaseLower,
	metrics.PhaseOpt,
	metrics.PhaseCodegen,
}

// Metrics renders the campaign telemetry: the phase breakdown (where a
// seed's wall time goes between generation, ground truth, lowering, the
// middle-end, and codegen) and the campaign-wide pass-time table
// (total/mean/p50/p90/p99 per pass plus its share of middle-end time and
// changed-rate). For a Deterministic registry every wall-clock-derived
// value renders as "-": the remaining columns (runs, changed%) are pure
// functions of the campaign configuration, so two identical runs render
// byte-identically. An empty or nil registry renders a single line.
func Metrics(reg *metrics.Registry) string {
	if reg == nil {
		return "Telemetry: none recorded\n"
	}
	var sb strings.Builder
	wrotePhases := renderPhases(&sb, reg)
	wrotePasses := renderPasses(&sb, reg)
	if !wrotePhases && !wrotePasses {
		return "Telemetry: none recorded\n"
	}
	return sb.String()
}

// renderPhases writes the phase breakdown; reports whether any phase had
// observations.
func renderPhases(sb *strings.Builder, reg *metrics.Registry) bool {
	type row struct {
		name string
		h    *metrics.Histogram
	}
	var rows []row
	var total time.Duration
	present := map[string]bool{}
	for _, name := range reg.HistogramNames() {
		present[name] = true
	}
	for _, phase := range phaseOrder {
		name := "phase." + phase
		if !present[name] {
			continue
		}
		h := reg.Histogram(name)
		if h.Count() == 0 {
			continue
		}
		rows = append(rows, row{phase, h})
		total += h.Sum()
	}
	if len(rows) == 0 {
		return false
	}
	fmt.Fprintf(sb, "Phase breakdown (%d phases)\n", len(rows))
	fmt.Fprintf(sb, "%-12s %8s %10s %10s %9s %9s %9s %7s\n",
		"Phase", "runs", "total", "mean", "p50", "p90", "p99", "%time")
	for _, r := range rows {
		fmt.Fprintf(sb, "%-12s %8d %10s %10s %9s %9s %9s %7s\n",
			r.name, r.h.Count(),
			dur(reg, r.h.Sum()), dur(reg, r.h.Mean()),
			dur(reg, r.h.P50()), dur(reg, r.h.P90()), dur(reg, r.h.P99()),
			share(reg, r.h.Sum(), total))
	}
	return true
}

// renderPasses writes the campaign-wide pass-time table; reports whether
// any pass had observations.
func renderPasses(sb *strings.Builder, reg *metrics.Registry) bool {
	type row struct {
		name    string
		h       *metrics.Histogram
		changed int64
	}
	var rows []row
	var total time.Duration
	for _, name := range reg.HistogramNames() {
		if !strings.HasPrefix(name, "pass.") {
			continue
		}
		h := reg.Histogram(name)
		if h.Count() == 0 {
			continue
		}
		pass := strings.TrimPrefix(name, "pass.")
		rows = append(rows, row{pass, h, reg.Counter(name + ".changed").Value()})
		total += h.Sum()
	}
	if len(rows) == 0 {
		return false
	}
	if reg.Deterministic {
		// Redacted reports must not depend on wall time, including for
		// ordering; alphabetical is the stable choice.
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	} else {
		// A performance report reads best hottest-first.
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].h.Sum() != rows[j].h.Sum() {
				return rows[i].h.Sum() > rows[j].h.Sum()
			}
			return rows[i].name < rows[j].name
		})
	}
	if sb.Len() > 0 {
		sb.WriteString("\n")
	}
	fmt.Fprintf(sb, "Pass timing (%d passes, all configurations)\n", len(rows))
	fmt.Fprintf(sb, "%-18s %8s %8s %10s %10s %9s %9s %9s %7s\n",
		"Pass", "runs", "chg%", "total", "mean", "p50", "p90", "p99", "%opt")
	for _, r := range rows {
		fmt.Fprintf(sb, "%-18s %8d %7.1f%% %10s %10s %9s %9s %9s %7s\n",
			r.name, r.h.Count(), 100*float64(r.changed)/float64(r.h.Count()),
			dur(reg, r.h.Sum()), dur(reg, r.h.Mean()),
			dur(reg, r.h.P50()), dur(reg, r.h.P90()), dur(reg, r.h.P99()),
			share(reg, r.h.Sum(), total))
	}
	return true
}

// dur formats a duration, or the redaction placeholder for deterministic
// registries.
func dur(reg *metrics.Registry, d time.Duration) string {
	if reg.Deterministic {
		return "-"
	}
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// share formats d as a percentage of total, redacted for deterministic
// registries.
func share(reg *metrics.Registry, d, total time.Duration) string {
	if reg.Deterministic {
		return "-"
	}
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(d)/float64(total))
}
