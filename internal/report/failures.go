package report

import (
	"fmt"
	"strings"

	"dcelens/internal/corpus"
)

// Failures renders the harness's failure accounting: per-kind counts plus
// the crash-bucket table (failures deduplicated by stack signature, the
// fuzzer-triage view). Campaigns without failures render a single line, so
// fault-free reports stay compact and deterministic.
func Failures(s *corpus.Stats) string {
	total := s.Crashes + s.Timeouts + s.Miscompiles + s.Infeasible
	if total == 0 {
		return "Failures: none\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Failures: %d total (%d crashes, %d timeouts, %d miscompiles, %d infeasible)\n",
		total, s.Crashes, s.Timeouts, s.Miscompiles, s.Infeasible)
	if len(s.CrashBuckets) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-11s %-44s %5s  %s\n", "Kind", "Bucket signature", "Count", "Seeds")
	for _, b := range s.CrashBuckets {
		seeds := make([]string, 0, len(b.Seeds))
		for _, s := range b.Seeds {
			seeds = append(seeds, fmt.Sprint(s))
		}
		fmt.Fprintf(&sb, "%-11s %-44s %5d  %s\n", b.Kind, b.Signature, b.Count, strings.Join(seeds, ","))
	}
	return sb.String()
}
