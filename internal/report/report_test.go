package report

import (
	"strings"
	"testing"

	"dcelens/internal/bisect"
	"dcelens/internal/corpus"
	"dcelens/internal/pipeline"
)

func sampleStats() *corpus.Stats {
	return &corpus.Stats{
		Programs:     10,
		TotalMarkers: 1000,
		DeadMarkers:  880,
		AliveMarkers: 120,
		Missed: map[corpus.ConfigKey]int{
			{Personality: pipeline.GCC, Level: pipeline.O0}:  750,
			{Personality: pipeline.GCC, Level: pipeline.O3}:  50,
			{Personality: pipeline.LLVM, Level: pipeline.O0}: 750,
			{Personality: pipeline.LLVM, Level: pipeline.O3}: 38,
		},
		Primary: map[corpus.ConfigKey]int{
			{Personality: pipeline.GCC, Level: pipeline.O3}: 13,
		},
		DiffMissed:   map[pipeline.Personality]int{pipeline.GCC: 40, pipeline.LLVM: 4},
		DiffPrimary:  map[pipeline.Personality]int{pipeline.GCC: 5, pipeline.LLVM: 1},
		LevelMissed:  map[pipeline.Personality]int{pipeline.GCC: 3, pipeline.LLVM: 5},
		LevelPrimary: map[pipeline.Personality]int{pipeline.GCC: 1, pipeline.LLVM: 2},
	}
}

func TestPrevalence(t *testing.T) {
	out := Prevalence(sampleStats())
	for _, want := range []string{"1000", "880", "88.00%", "120", "12.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTables(t *testing.T) {
	s := sampleStats()
	t1 := Table1(s)
	if !strings.Contains(t1, "-O0") || !strings.Contains(t1, "85.23%") {
		t.Errorf("Table1:\n%s", t1)
	}
	t2 := Table2(s)
	if !strings.Contains(t2, "1.48%") { // 13/880
		t.Errorf("Table2:\n%s", t2)
	}
	cd := CompilerDiff(s)
	if !strings.Contains(cd, "40") || !strings.Contains(cd, "4 markers") {
		t.Errorf("CompilerDiff:\n%s", cd)
	}
	ld := LevelDiff(s)
	if !strings.Contains(ld, "3 markers") || !strings.Contains(ld, "5 markers") {
		t.Errorf("LevelDiff:\n%s", ld)
	}
}

func TestComponentTable(t *testing.T) {
	rows := []bisect.ComponentRow{
		{Component: "Alias Analysis", Commits: 2, Files: 3},
		{Component: "Pass Management", Commits: 1, Files: 2},
	}
	out := ComponentTable("Table X", rows)
	for _, want := range []string{"Alias Analysis", "Pass Management", "total", "3", "5"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable5(t *testing.T) {
	out := Table5(
		&corpus.Triage{Reported: 10, Confirmed: 8, Duplicate: 2, Fixed: 3},
		&corpus.Triage{Reported: 6, Confirmed: 6, Duplicate: 0, Fixed: 2},
	)
	for _, want := range []string{"Reported", "Confirmed", "Marked Duplicate", "Fixed", "10", "8", "2", "3", "6"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
