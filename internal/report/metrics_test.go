package report

import (
	"strings"
	"testing"
	"time"

	"dcelens/internal/metrics"
)

// populate simulates one campaign's telemetry with run-dependent timings:
// the identity data (names, counts, changed counts) is fixed, the durations
// scale with jitter as they would across real runs.
func populate(reg *metrics.Registry, jitter time.Duration) {
	for i := 0; i < 10; i++ {
		reg.Histogram("phase.lower").Observe(time.Millisecond + jitter)
		reg.Histogram("phase.opt").Observe(10*time.Millisecond + 3*jitter)
		reg.Histogram("pass.dce").Observe(100*time.Microsecond + jitter)
		reg.Histogram("pass.gvn").Observe(300*time.Microsecond + jitter)
	}
	reg.Counter("pass.dce.changed").Add(4)
	reg.Counter("pass.gvn.changed").Add(7)
}

// TestMetricsDeterministicRendering: two runs of the same campaign with
// different wall-clock behaviour must render byte-identically in
// deterministic mode — the property -metrics=deterministic promises.
func TestMetricsDeterministicRendering(t *testing.T) {
	a, b := metrics.NewDeterministic(), metrics.NewDeterministic()
	populate(a, 0)
	populate(b, 5*time.Millisecond) // same campaign, very different timings
	ra, rb := Metrics(a), Metrics(b)
	if ra != rb {
		t.Errorf("deterministic renderings differ:\n--- a ---\n%s--- b ---\n%s", ra, rb)
	}
	if strings.Contains(ra, "ms") || strings.Contains(ra, "µs") {
		t.Errorf("deterministic rendering leaks durations:\n%s", ra)
	}
	for _, want := range []string{"pass.dce", "dce", "gvn", "40.0%", "70.0%"} {
		if !strings.Contains(ra, strings.TrimPrefix(want, "pass.")) {
			t.Errorf("deterministic rendering missing %q:\n%s", want, ra)
		}
	}
}

// TestMetricsWallRendering: wall mode renders real durations, sorted
// hottest-first.
func TestMetricsWallRendering(t *testing.T) {
	reg := metrics.New()
	populate(reg, 0)
	out := Metrics(reg)
	if !strings.Contains(out, "Phase breakdown") || !strings.Contains(out, "Pass timing") {
		t.Fatalf("missing sections:\n%s", out)
	}
	if strings.Contains(out, " - ") {
		t.Errorf("wall rendering redacted values:\n%s", out)
	}
	// gvn (300µs×10) outranks dce (100µs×10) in the hottest-first order.
	if gvn, dce := strings.Index(out, "gvn"), strings.Index(out, "dce"); gvn > dce {
		t.Errorf("wall mode should sort hottest-first (gvn before dce):\n%s", out)
	}
}

// TestMetricsEmpty: nil and empty registries render the placeholder line,
// not empty tables.
func TestMetricsEmpty(t *testing.T) {
	if got := Metrics(nil); !strings.Contains(got, "none recorded") {
		t.Errorf("nil registry: %q", got)
	}
	if got := Metrics(metrics.New()); !strings.Contains(got, "none recorded") {
		t.Errorf("empty registry: %q", got)
	}
}
