// Package report renders the evaluation's tables and summary numbers in
// the same shape the paper presents them (§4, Tables 1-5).
package report

import (
	"fmt"
	"sort"
	"strings"

	"dcelens/internal/bisect"
	"dcelens/internal/corpus"
	"dcelens/internal/pipeline"
)

// Prevalence renders the §4.1 dead-block prevalence numbers ("Out of the
// 3,109,167 instrumented blocks, 89.59% are dead and 10.41% are alive").
func Prevalence(s *corpus.Stats) string {
	if s.TotalMarkers == 0 {
		return "no markers"
	}
	return fmt.Sprintf(
		"Instrumented blocks: %d across %d programs\n"+
			"  dead:  %d (%.2f%%)\n"+
			"  alive: %d (%.2f%%)\n",
		s.TotalMarkers, s.Programs,
		s.DeadMarkers, pct(s.DeadMarkers, s.TotalMarkers),
		s.AliveMarkers, pct(s.AliveMarkers, s.TotalMarkers))
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Table1 renders "% dead blocks that are missed" per optimization level
// and compiler.
func Table1(s *corpus.Stats) string {
	return missedTable(s, s.Missed,
		"Table 1: % of dead blocks that are missed (not eliminated)")
}

// Table2 renders "% dead blocks that are primary missed".
func Table2(s *corpus.Stats) string {
	return missedTable(s, s.Primary,
		"Table 2: % of dead blocks that are primary missed")
}

func missedTable(s *corpus.Stats, counts map[corpus.ConfigKey]int, title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-8s %12s %12s\n", "Level", "gcc-sim", "llvm-sim")
	for _, lvl := range pipeline.Levels {
		g := counts[corpus.ConfigKey{Personality: pipeline.GCC, Level: lvl}]
		l := counts[corpus.ConfigKey{Personality: pipeline.LLVM, Level: lvl}]
		fmt.Fprintf(&sb, "%-8s %11.2f%% %11.2f%%\n", lvl,
			pct(g, s.DeadMarkers), pct(l, s.DeadMarkers))
	}
	return sb.String()
}

// CompilerDiff renders the §4.2 "Between GCC and LLVM" counts.
func CompilerDiff(s *corpus.Stats) string {
	var sb strings.Builder
	sb.WriteString("Differential testing gcc-sim vs llvm-sim at -O3:\n")
	fmt.Fprintf(&sb, "  llvm-sim eliminates %d markers that gcc-sim misses (%d primary)\n",
		s.DiffMissed[pipeline.GCC], s.DiffPrimary[pipeline.GCC])
	fmt.Fprintf(&sb, "  gcc-sim eliminates %d markers that llvm-sim misses (%d primary)\n",
		s.DiffMissed[pipeline.LLVM], s.DiffPrimary[pipeline.LLVM])
	return sb.String()
}

// LevelDiff renders the §4.2 "Between optimization levels" counts.
func LevelDiff(s *corpus.Stats) string {
	var sb strings.Builder
	sb.WriteString("Differential testing -O1/-O2 vs -O3 (same compiler):\n")
	for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
		fmt.Fprintf(&sb, "  %s: %d markers eliminated at -O1/-O2 but missed at -O3 (%d primary)\n",
			p, s.LevelMissed[p], s.LevelPrimary[p])
	}
	return sb.String()
}

// ComponentTable renders Table 3 (LLVM) or Table 4 (GCC): offending-commit
// components with commit and file counts.
func ComponentTable(title string, rows []bisect.ComponentRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-36s %9s %7s\n", "Component", "# Commits", "# Files")
	totalC, totalF := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-36s %9d %7d\n", r.Component, r.Commits, r.Files)
		totalC += r.Commits
		totalF += r.Files
	}
	fmt.Fprintf(&sb, "%-36s %9d %7d\n", "total", totalC, totalF)
	return sb.String()
}

// Table5 renders the triage counts per compiler.
func Table5(gcc, llvm *corpus.Triage) string {
	var sb strings.Builder
	sb.WriteString("Table 5: missed optimizations reported / confirmed / duplicate / fixed\n")
	fmt.Fprintf(&sb, "%-18s %8s %8s\n", "", "gcc-sim", "llvm-sim")
	row := func(name string, g, l int) {
		fmt.Fprintf(&sb, "%-18s %8d %8d\n", name, g, l)
	}
	row("Reported", gcc.Reported, llvm.Reported)
	row("Confirmed", gcc.Confirmed, llvm.Confirmed)
	row("Marked Duplicate", gcc.Duplicate, llvm.Duplicate)
	row("Fixed", gcc.Fixed, llvm.Fixed)
	return sb.String()
}

// Findings summarizes the campaign's findings by kind and personality.
func Findings(c *corpus.Campaign) string {
	type key struct {
		kind corpus.FindingKind
		p    pipeline.Personality
	}
	counts := map[key]int{}
	prim := map[key]int{}
	for _, f := range c.Findings {
		k := key{f.Kind, f.Personality}
		counts[k]++
		if f.Primary {
			prim[k]++
		}
	}
	var keys []key
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].p < keys[j].p
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "Findings: %d total\n", len(c.Findings))
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-14s %-9s %4d (%d primary)\n", k.kind, k.p, counts[k], prim[k])
	}
	return sb.String()
}

// Summary renders the complete evaluation report.
func Summary(c *corpus.Campaign) string {
	var sb strings.Builder
	sb.WriteString(Prevalence(c.Stats))
	sb.WriteString("\n")
	sb.WriteString(Table1(c.Stats))
	sb.WriteString("\n")
	sb.WriteString(Table2(c.Stats))
	sb.WriteString("\n")
	sb.WriteString(CompilerDiff(c.Stats))
	sb.WriteString("\n")
	sb.WriteString(LevelDiff(c.Stats))
	sb.WriteString("\n")
	sb.WriteString(Findings(c))
	if r := Remarks(c.Stats); r != "" {
		sb.WriteString("\n")
		sb.WriteString(r)
	}
	if len(c.Stats.Failures) > 0 {
		sb.WriteString("\n")
		sb.WriteString(Failures(c.Stats))
	}
	return sb.String()
}
