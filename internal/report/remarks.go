package report

import (
	"fmt"
	"sort"
	"strings"

	"dcelens/internal/corpus"
)

// Remarks renders the campaign-wide remark aggregation: one row per pass
// with applied/missed counts, then the miss-reason histogram sorted by
// count (ties by name, so the table is deterministic). Empty when the
// campaign ran without Options.Remarks.
func Remarks(s *corpus.Stats) string {
	if len(s.RemarkApplied) == 0 && len(s.RemarkMissed) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("Optimization remarks\n")
	fmt.Fprintf(&sb, "%-12s %8s %8s\n", "Pass", "Applied", "Missed")
	passes := map[string]bool{}
	for p := range s.RemarkApplied {
		passes[p] = true
	}
	for p := range s.RemarkMissed {
		passes[p] = true
	}
	names := make([]string, 0, len(passes))
	for p := range passes {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		fmt.Fprintf(&sb, "%-12s %8d %8d\n", p, s.RemarkApplied[p], s.RemarkMissed[p])
	}
	if len(s.RemarkReasons) > 0 {
		sb.WriteString("Top miss reasons\n")
		for _, r := range TopReasons(s.RemarkReasons, 0) {
			fmt.Fprintf(&sb, "  %-16s %6d\n", r.Reason, r.Count)
		}
	}
	return sb.String()
}

// ReasonCount is one row of the miss-reason histogram.
type ReasonCount struct {
	Reason string
	Count  int
}

// TopReasons sorts a miss-reason histogram by descending count (ties by
// reason name); n > 0 keeps only the first n rows.
func TopReasons(reasons map[string]int, n int) []ReasonCount {
	rows := make([]ReasonCount, 0, len(reasons))
	for r, c := range reasons {
		rows = append(rows, ReasonCount{Reason: r, Count: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Reason < rows[j].Reason
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Explain renders one finding's missed-optimization narrative: the finding
// header and its nearest-miss chain — the ordered (pass, reason) decisions
// that kept the marker's code alive in the missing compilation. The
// rendering is a pure function of the finding, so it is byte-identical
// across worker counts, shards, and resumes.
func Explain(f corpus.Finding) string {
	var sb strings.Builder
	prim := ""
	if f.Primary {
		prim = " primary"
	}
	fmt.Fprintf(&sb, "seed %d marker %s: %s by %s at %s%s\n",
		f.Seed, f.Marker, f.Kind, f.Personality, f.Level, prim)
	if f.Context != "" {
		fmt.Fprintf(&sb, "  context: %s\n", f.Context)
	}
	if len(f.Chain) == 0 {
		sb.WriteString("  no nearest-miss chain recorded (campaign ran without remarks)\n")
		return sb.String()
	}
	sb.WriteString("  why the code stayed alive:\n")
	for i, step := range f.Chain {
		fmt.Fprintf(&sb, "  %2d. %-10s %-16s %s\n", i+1, step.Pass, step.Reason, step.Subject)
		if step.Detail != "" {
			fmt.Fprintf(&sb, "      %s\n", step.Detail)
		}
	}
	return sb.String()
}

// ExplainAll renders every finding's narrative, blank-line separated, in
// the findings' (already deterministic) order.
func ExplainAll(fs []corpus.Finding) string {
	var sb strings.Builder
	for i, f := range fs {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(Explain(f))
	}
	return sb.String()
}
