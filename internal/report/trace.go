package report

import (
	"fmt"
	"strings"
	"time"

	"dcelens/internal/trace"
)

// PassProfileTable renders a compilation trace: one row per executed pass
// instance with IR-size deltas and eliminated-marker counts. With
// withTiming, a wall-time column is included; without it, the rendering is
// a pure function of the compilation and therefore byte-identical across
// runs of the same seed (the determinism the provenance tests pin down).
func PassProfileTable(p *trace.Profile, withTiming bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pass pipeline profile (%d pass instances, %d markers at entry, %d surviving)\n",
		len(p.Passes), len(p.InitialSurviving), len(p.FinalSurviving))
	if withTiming {
		fmt.Fprintf(&sb, "%-22s %4s %10s %8s %8s %8s %6s\n",
			"pass", "chg", "time", "funcs", "blocks", "instrs", "elims")
	} else {
		fmt.Fprintf(&sb, "%-22s %4s %8s %8s %8s %6s\n",
			"pass", "chg", "funcs", "blocks", "instrs", "elims")
	}
	for i := range p.Passes {
		pp := &p.Passes[i]
		chg := ""
		if pp.Changed {
			chg = "*"
		}
		if withTiming {
			fmt.Fprintf(&sb, "%-22s %4s %10s %8s %8s %8s %6d\n",
				pp.Ref, chg, pp.Duration.Round(time.Microsecond).String(),
				delta(pp.Funcs, pp.DFuncs), delta(pp.Blocks, pp.DBlocks), delta(pp.Instrs, pp.DInstrs),
				len(pp.Eliminated))
		} else {
			fmt.Fprintf(&sb, "%-22s %4s %8s %8s %8s %6d\n",
				pp.Ref, chg,
				delta(pp.Funcs, pp.DFuncs), delta(pp.Blocks, pp.DBlocks), delta(pp.Instrs, pp.DInstrs),
				len(pp.Eliminated))
		}
	}
	return sb.String()
}

func delta(abs, d int) string {
	if d == 0 {
		return fmt.Sprintf("%d", abs)
	}
	return fmt.Sprintf("%d%+d", abs, d)
}

// ProvenanceTable renders the marker→killer attribution of one
// compilation, sorted by marker name.
func ProvenanceTable(p *trace.Provenance) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Marker provenance (%d eliminations)\n", len(p.Markers))
	for _, m := range p.Markers {
		ref := p.Killer[m]
		fmt.Fprintf(&sb, "  %-16s killed by %-20s (%s)\n", m, ref, trace.ComponentOf(ref.Pass))
	}
	return sb.String()
}

// AttributionTable renders the campaign-wide eliminations-per-pass rows —
// the trace-side analogue of Tables 3/4 ("which components eliminate",
// where the paper's tables say "which components regressed").
func AttributionTable(title string, rows []trace.PassElims) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-18s %-30s %14s\n", "Pass", "Component", "# Eliminations")
	total := 0
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %-30s %14d\n", r.Pass, r.Component, r.Eliminations)
		total += r.Eliminations
	}
	fmt.Fprintf(&sb, "%-18s %-30s %14d\n", "total", "", total)
	return sb.String()
}

// Attributions renders per-finding attribution lines.
func Attributions(atts []*trace.Attribution) string {
	var sb strings.Builder
	for _, a := range atts {
		fmt.Fprintf(&sb, "  %-16s eliminated by %-24s via %-20s (%s)\n",
			a.Marker, a.Eliminator, a.Killer, a.Component)
	}
	return sb.String()
}
