package report

import (
	"fmt"
	"strings"

	"dcelens/internal/history"
)

// Trend renders one cross-run delta: the new/fixed/persistent finding
// classification and the flagged metric regressions (dce-trend's output).
func Trend(d *history.Delta) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Trend: %s -> %s\n", d.OldLabel, d.NewLabel)
	if d.ConfigMismatch != "" {
		fmt.Fprintf(&sb, "  note: %s; absences may be coverage, not fixes\n", d.ConfigMismatch)
	}
	fmt.Fprintf(&sb, "Findings: %d new, %d fixed, %d persistent\n",
		len(d.New), len(d.Fixed), len(d.Persistent))
	changeTable(&sb, "New findings", d.New, false)
	changeTable(&sb, "Fixed findings", d.Fixed, false)
	changeTable(&sb, "Persistent findings", d.Persistent, true)
	if len(d.Regressions) == 0 {
		sb.WriteString("Metric regressions: none\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "Metric regressions: %d\n", len(d.Regressions))
	for _, r := range d.Regressions {
		fmt.Fprintf(&sb, "  %-34s %10.4f -> %10.4f (%+.4f)\n", r.Metric, r.Old, r.New, r.New-r.Old)
	}
	return sb.String()
}

// changeTable renders one classification's rows; empty classes render
// nothing (the summary line already reports the zero).
func changeTable(sb *strings.Builder, title string, changes []history.Change, withOld bool) {
	if len(changes) == 0 {
		return
	}
	fmt.Fprintf(sb, "%s\n", title)
	counts := "count"
	if withOld {
		counts = "old->new"
	}
	fmt.Fprintf(sb, "  %-16s %-14s %-9s %-5s %-8s %8s  %s\n",
		"Fingerprint", "Kind", "Compiler", "Level", "Primary", counts, "Seeds")
	for _, c := range changes {
		r := c.Record
		count := fmt.Sprint(max(c.OldCount, c.NewCount))
		if withOld {
			count = fmt.Sprintf("%d->%d", c.OldCount, c.NewCount)
		}
		seeds := make([]string, 0, len(r.Seeds))
		for _, s := range r.Seeds {
			seeds = append(seeds, fmt.Sprint(s))
		}
		fmt.Fprintf(sb, "  %-16s %-14s %-9s %-5s %-8v %8s  %s\n",
			r.Fingerprint, r.Kind, r.Personality, r.Level, r.Primary,
			count, strings.Join(seeds, ","))
	}
}
