package cli

import (
	"flag"
	"runtime"

	"dcelens/internal/sched"
)

// Parallel is the shared -j/-shard flag pair: the worker count of the
// in-process scheduler and the deterministic corpus slice of a multi-
// process campaign. Registered like Profiling and Monitoring, so every
// campaign-shaped binary opts in with one call:
//
//	par := cli.Parallelism()
//	flag.Parse()
//	opts.Workers = par.Workers(tool)
//	opts.Shard = par.Shard(tool)
type Parallel struct {
	j     *int
	shard *string
}

// Parallelism registers the parallelism flags on the default FlagSet. Call
// before flag.Parse.
func Parallelism() *Parallel {
	return &Parallel{
		j:     flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers (per-seed-per-config units in flight; default GOMAXPROCS)"),
		shard: flag.String("shard", "", "run one corpus slice of a multi-process campaign, as index/count (e.g. 0/2); merge with dce-report -merge"),
	}
}

// Workers validates and returns the -j worker count; zero or negative
// counts are usage errors (the explicit default is already GOMAXPROCS).
func (p *Parallel) Workers(tool string) int {
	if *p.j <= 0 {
		Usagef(tool, "-j %d: want a positive worker count", *p.j)
	}
	return *p.j
}

// Shard parses the -shard spec; empty means the whole corpus. Malformed or
// out-of-range specs are usage errors.
func (p *Parallel) Shard(tool string) sched.Shard {
	if *p.shard == "" {
		return sched.Shard{}
	}
	s, err := sched.ParseShard(*p.shard)
	if err != nil {
		Usagef(tool, "%v", err)
	}
	return s
}
