package cli

import (
	"flag"
	"fmt"
	"os"

	"dcelens/internal/history"
	"dcelens/internal/monitor"
)

// Monitor is the shared -serve/-history flag pair: live HTTP monitoring of
// a running campaign and longitudinal run-history snapshots. Registered the
// same way Profiling is, so every campaign-shaped binary opts in with one
// call:
//
//	mon := cli.Monitoring()
//	flag.Parse()
//	...
//	defer mon.Serve(tool, monitor.New(tool, reg, prog, events))()
//	...
//	mon.WriteSnapshot(tool, history.NewSnapshot(tool, c, reg))
type Monitor struct {
	serve   *string
	history *string
}

// Monitoring registers the monitoring flags on the default FlagSet. Call
// before flag.Parse.
func Monitoring() *Monitor {
	return &Monitor{
		serve:   flag.String("serve", "", "serve live campaign monitoring HTTP on this address (e.g. 127.0.0.1:8080; port 0 picks one)"),
		history: flag.String("history", "", "write a run-history snapshot of the finished campaign into this directory (see dce-trend)"),
	}
}

// Serving reports whether -serve was requested.
func (m *Monitor) Serving() bool { return *m.serve != "" }

// SnapshotDir returns the -history directory ("" when disabled).
func (m *Monitor) SnapshotDir() string { return *m.history }

// Serve starts the monitoring server when -serve was given, announces the
// bound address on stderr (port 0 resolves here), and returns the stop
// function. Without -serve it is a no-op.
func (m *Monitor) Serve(tool string, s *monitor.Server) func() {
	if *m.serve == "" {
		return func() {}
	}
	run, err := monitor.Start(*m.serve, s)
	if err != nil {
		Fail(tool, err)
	}
	fmt.Fprintf(os.Stderr, "%s: monitoring on http://%s\n", tool, run.Addr())
	return func() { _ = run.Close() }
}

// WriteSnapshot persists the run snapshot when -history was given,
// announcing the written path on stderr. Without -history it is a no-op.
func (m *Monitor) WriteSnapshot(tool string, s *history.Snapshot) {
	if *m.history == "" {
		return
	}
	path, err := s.Write(*m.history)
	if err != nil {
		Fail(tool, err)
	}
	fmt.Fprintf(os.Stderr, "%s: history snapshot %s\n", tool, path)
}
