// Package cli holds the shared conventions of the cmd/* mains: exit codes
// (usage errors exit 2, as the flag package does; runtime failures exit 1)
// and the flag-value parsers several tools share. Keeping these in one
// place keeps the six CLIs' behaviour uniform.
package cli

import (
	"fmt"
	"os"

	"dcelens/internal/pipeline"
)

// Fail reports a runtime failure and exits 1.
func Fail(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// Usagef reports a usage error and exits 2 (matching flag-parse errors).
func Usagef(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	os.Exit(2)
}

// Personality parses a compiler name ("gcc" or "llvm"); unknown names are
// usage errors.
func Personality(tool, name string) pipeline.Personality {
	switch name {
	case "gcc":
		return pipeline.GCC
	case "llvm":
		return pipeline.LLVM
	}
	Usagef(tool, "unknown compiler %q (want gcc or llvm)", name)
	return ""
}

// Level parses an optimization-level name ("O0".."O3", "Os"); unknown
// names are usage errors.
func Level(tool, name string) pipeline.Level {
	switch name {
	case "O0":
		return pipeline.O0
	case "O1":
		return pipeline.O1
	case "Os":
		return pipeline.Os
	case "O2":
		return pipeline.O2
	case "O3":
		return pipeline.O3
	}
	Usagef(tool, "unknown level %q (want O0, O1, Os, O2, or O3)", name)
	return pipeline.O0
}

// Compiler assembles the latest-version personality at a level from the
// two name flags.
func Compiler(tool, name string, lvl pipeline.Level) *pipeline.Config {
	return pipeline.New(Personality(tool, name), lvl)
}
