package cli

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile is the shared -cpuprofile/-memprofile pair every tool registers.
// The two flags mirror the Go test binary's: -cpuprofile streams a CPU
// profile for the whole run, -memprofile snapshots the heap (after a final
// GC) at exit. Both are written with runtime/pprof and read with
// `go tool pprof`.
type Profile struct {
	cpu *string
	mem *string
}

// Profiling registers the profiling flags on the default FlagSet. Call
// before flag.Parse.
func Profiling() *Profile {
	return &Profile{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling if requested and returns the stop function,
// which also writes the heap profile if requested. Callers defer it
// immediately after flag.Parse:
//
//	prof := cli.Profiling()
//	flag.Parse()
//	defer prof.Start(tool)()
//
// Profiles are flushed only on a normal return from main; Fail/Usagef exit
// paths skip them, matching the flags' purpose (profiling successful runs).
func (p *Profile) Start(tool string) func() {
	stopCPU := func() {}
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			Fail(tool, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			Fail(tool, err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	return func() {
		stopCPU()
		if *p.mem == "" {
			return
		}
		f, err := os.Create(*p.mem)
		if err != nil {
			Fail(tool, err)
		}
		defer f.Close()
		// Materialize the retained heap, not the allocation noise of the
		// final report rendering.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			Fail(tool, err)
		}
	}
}
