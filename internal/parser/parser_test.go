package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"dcelens/internal/ast"
	"dcelens/internal/sema"
)

// checkedRoundTrip parses src, runs sema, prints, reparses, rechecks, and
// reprints; the two printed forms must be identical (print/parse fixpoint).
func checkedRoundTrip(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatalf("sema: %v\nsource:\n%s", err, src)
	}
	printed := ast.Print(prog)
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\nprinted:\n%s", err, printed)
	}
	if err := sema.Check(prog2); err != nil {
		t.Fatalf("recheck: %v\nprinted:\n%s", err, printed)
	}
	printed2 := ast.Print(prog2)
	if printed != printed2 {
		t.Fatalf("print not a fixpoint:\nfirst:\n%s\nsecond:\n%s", printed, printed2)
	}
	return prog
}

func TestParseGlobals(t *testing.T) {
	prog := checkedRoundTrip(t, `
static int a = 3;
unsigned long b;
char arr[4] = {1, 2};
static int *p = &a;
int main(void) { return a; }
`)
	if len(prog.Globals()) != 4 {
		t.Fatalf("want 4 globals, got %d", len(prog.Globals()))
	}
	if prog.Main() == nil {
		t.Fatal("main not found")
	}
}

func TestParseFunctions(t *testing.T) {
	prog := checkedRoundTrip(t, `
void marker(void);
static short helper(int x, unsigned char y) { return x + y; }
int main(void) {
  marker();
  return helper(1, 2);
}
`)
	fns := prog.Funcs()
	if len(fns) != 3 {
		t.Fatalf("want 3 functions, got %d", len(fns))
	}
	if fns[0].Body != nil {
		t.Error("marker should be a declaration only")
	}
	if fns[1].Storage != ast.StorageStatic {
		t.Error("helper should be static")
	}
}

func TestParseControlFlow(t *testing.T) {
	checkedRoundTrip(t, `
int main(void) {
  int s = 0;
  for (int i = 0; i < 10; i++) {
    if (i % 2 == 0) continue;
    s += i;
  }
  while (s > 100) s -= 7;
  do { s++; } while (s < 0);
  switch (s & 3) {
  case 0:
  case 1:
    s = 1;
    break;
  case 2:
    s = 2;
  default:
    s = 3;
  }
  return s;
}
`)
}

func TestParseExpressions(t *testing.T) {
	checkedRoundTrip(t, `
static int g = 5;
static int arr[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int main(void) {
  int x = (g + 2) * 3 - ~g;
  int *p = &arr[2];
  x = p[1] + *p;
  x = x > 0 ? arr[x & 7] : -x;
  x ^= 0x1f;
  x <<= 2;
  unsigned u = 3000000000U;
  long big = 9000000000L;
  x = 0 != 0;
  u = u + 1;
  big = big * 2;
  return x;
}
`)
}

func TestPrecedence(t *testing.T) {
	prog := MustParse(`int main(void) { return 1 + 2 * 3 == 7 && 4 < 5 | 1; }`)
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	ret := prog.Main().Body.Stmts[0].(*ast.Return)
	printed := ast.PrintExpr(ret.X)
	// && binds loosest here; | binds tighter than &&, so no parens appear.
	if printed != "1 + 2 * 3 == 7 && 4 < 5 | 1" {
		t.Fatalf("got %q", printed)
	}
	outer := ret.X.(*ast.Binary)
	if outer.Op.String() != "&&" {
		t.Fatalf("top operator is %v, want &&", outer.Op)
	}
}

func TestRightAssociativeAssignment(t *testing.T) {
	prog := MustParse(`int main(void) { int a; int b; a = b = 3; return a; }`)
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	stmt := prog.Main().Body.Stmts[2].(*ast.ExprStmt)
	outer := stmt.X.(*ast.Assign)
	if _, ok := outer.RHS.(*ast.Assign); !ok {
		t.Fatalf("a = b = 3 should nest to the right, got RHS %T", outer.RHS)
	}
}

func TestTernaryNesting(t *testing.T) {
	checkedRoundTrip(t, `int main(void) { int a = 1; return a ? a ? 1 : 2 : 3; }`)
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"int main(void) { return 1 }",        // missing semicolon
		"int main(void) { if 1) return 0; }", // missing paren
		"int main(void) { int x = ; }",       // missing expression
		"int 3x;",                            // bad identifier
		"int main(void) { goto end; }",       // goto rejected
		"int a[0];",                          // zero-length array
		"int main(void) {",                   // unterminated block
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected syntax error for %q", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := map[string]string{
		"int main(void) { return x; }":                                  "undeclared",
		"int main(void) { int a; int a; return 0; }":                    "redeclaration",
		"int main(void) { f(); return 0; }":                             "undeclared function",
		"void f(void); int main(void) { return f(1); }":                 "arguments",
		"int main(void) { 3 = 4; return 0; }":                           "not assignable",
		"int main(void) { break; }":                                     "break outside",
		"int main(void) { continue; }":                                  "continue outside",
		"int a; int a;":                                                 "redefinition",
		"int main(void) { int *p; return p + p; }":                      "invalid operands",
		"int main(void) { switch (1) { case 1: case 1: ; } return 0; }": "duplicate case",
		"void f(void) { return 3; }":                                    "void function",
	}
	for src, frag := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("%q: unexpected parse error %v", src, err)
			continue
		}
		err = sema.Check(prog)
		if err == nil {
			t.Errorf("%q: expected sema error containing %q", src, frag)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("%q: error %q does not contain %q", src, err, frag)
		}
	}
}

func TestIntLiteralTyping(t *testing.T) {
	cases := map[string]string{
		"5":           "int",
		"5U":          "unsigned int",
		"5L":          "long",
		"5UL":         "unsigned long",
		"5LU":         "unsigned long",
		"2147483647":  "int",
		"2147483648":  "long",
		"0x80000000":  "long",
		"4294967295U": "unsigned int",
		"4294967296U": "unsigned long",
	}
	for lit, wantType := range cases {
		n, err := parseIntText(lit)
		if err != nil {
			t.Fatalf("%s: %v", lit, err)
		}
		if got := n.typ.String(); got != wantType {
			t.Errorf("%s: literal typed %s, want %s", lit, got, wantType)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	prog := checkedRoundTrip(t, `
static int g = 1;
int main(void) { g = 2; return g; }
`)
	clone := ast.Clone(prog)
	if ast.Print(clone) != ast.Print(prog) {
		t.Fatal("clone prints differently")
	}
	// Mutating the clone must not affect the original.
	clone.Decls = clone.Decls[:1]
	if len(prog.Decls) != 2 {
		t.Fatal("clone mutation leaked into original")
	}
	// Resolved references in the clone must point at cloned decls.
	clone2 := ast.Clone(prog)
	origG := prog.Globals()[0]
	var cloneRefObj *ast.VarDecl
	ast.Inspect(clone2, func(n ast.Node) bool {
		if r, ok := n.(*ast.VarRef); ok && r.Name == "g" {
			cloneRefObj = r.Obj
		}
		return true
	})
	if cloneRefObj == origG {
		t.Fatal("clone still references original declaration")
	}
}

// TestParserNeverPanics: arbitrary input must produce a value or an error,
// never a panic.
func TestParserNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", src, r)
				t.FailNow()
			}
		}()
		prog, err := Parse(src)
		if err == nil && prog != nil {
			// If it parses, sema must also not panic.
			_ = sema.Check(prog)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParserOnCLikeFragments stresses the parser with inputs that look
// like MiniC but are subtly malformed.
func TestParserOnCLikeFragments(t *testing.T) {
	fragments := []string{
		"int main(void) { return 0; } }",
		"int main(void) { (1 ? 2); }",
		"int main(void) { a[; }",
		"static static int x;",
		"int f(int, int);",
		"int main(void) { switch (1) { foo: ; } }",
		"int main(void) { for (;;;) {} }",
		"int x = ;",
		"void f(void) { do {} while; }",
		"int main(void) { 1 +; }",
		"unsigned unsigned x;",
		"int a[999999999999];",
	}
	for _, src := range fragments {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			if prog, err := Parse(src); err == nil && prog != nil {
				_ = sema.Check(prog)
			}
		}()
	}
}
