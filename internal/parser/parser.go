// Package parser implements the recursive-descent parser for MiniC.
//
// The parser produces an untyped AST; symbol resolution, typing, and
// implicit-conversion insertion happen afterwards in internal/sema.
// Expressions are parsed by precedence climbing with the C precedence
// table from internal/ast.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"dcelens/internal/ast"
	"dcelens/internal/lexer"
	"dcelens/internal/metrics"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// Error is a syntax error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a complete MiniC translation unit. It returns the program
// and the first error encountered, if any; on error the program may be
// partially populated.
func Parse(src string) (*ast.Program, error) {
	return ParseMetered(src, nil)
}

// ParseMetered is Parse with frontend phase timing recorded into reg: the
// token scan observes into "phase.lex", the recursive descent into
// "phase.parse". A nil registry records nothing (the timers are no-ops), so
// the two entry points compile the same code path.
func ParseMetered(src string, reg *metrics.Registry) (*ast.Program, error) {
	stopLex := reg.Time(metrics.PhaseLex)
	toks, lexErrs := lexer.Scan([]byte(src))
	stopLex()
	if len(lexErrs) > 0 {
		return nil, lexErrs[0]
	}
	defer reg.Time(metrics.PhaseParse)()
	p := &parser{toks: toks}
	prog := &ast.Program{}
	defer func() {
		// Convert internal bail-outs into returned errors via the named
		// error below; see parse() wrappers.
	}()
	err := p.catch(func() {
		for p.cur().Kind != token.EOF {
			prog.Decls = append(prog.Decls, p.decl())
		}
	})
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and fixtures.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []token.Token
	pos  int
}

type bailout struct{ err *Error }

func (p *parser) catch(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(bailout); ok {
				err = b.err
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	panic(bailout{&Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}})
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }

func (p *parser) peek(n int) token.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
	}
	return p.next()
}

// ---------------------------------------------------------------------------
// Types

func isTypeStart(k token.Kind) bool {
	switch k {
	case token.KwVoid, token.KwChar, token.KwShort, token.KwInt, token.KwLong,
		token.KwSigned, token.KwUnsigned:
		return true
	}
	return false
}

// baseType parses a base type: void, or [signed|unsigned] char/short/int/long
// (with the optional trailing "int" of "short int"/"long int"), followed by
// any number of '*'.
func (p *parser) baseType() *types.Type {
	pos := p.cur().Pos
	var t *types.Type
	switch {
	case p.accept(token.KwVoid):
		t = types.VoidType
	default:
		signed := true
		explicitSign := false
		if p.accept(token.KwUnsigned) {
			signed, explicitSign = false, true
		} else if p.accept(token.KwSigned) {
			explicitSign = true
		}
		switch {
		case p.accept(token.KwChar):
			t = types.I8Type
		case p.accept(token.KwShort):
			p.accept(token.KwInt)
			t = types.I16Type
		case p.accept(token.KwInt):
			t = types.I32Type
		case p.accept(token.KwLong):
			p.accept(token.KwLong) // accept "long long" as long (both 64-bit)
			p.accept(token.KwInt)
			t = types.I64Type
		default:
			if !explicitSign {
				p.errorf(pos, "expected type, found %s", p.cur())
			}
			t = types.I32Type // bare "unsigned" / "signed"
		}
		if !signed {
			t = t.Unsigned()
		}
	}
	for p.accept(token.Star) {
		t = types.PointerTo(t)
	}
	return t
}

func (p *parser) storage() ast.Storage {
	switch {
	case p.accept(token.KwStatic):
		return ast.StorageStatic
	case p.accept(token.KwExtern):
		return ast.StorageExtern
	}
	return ast.StorageNone
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) decl() ast.Decl {
	sto := p.storage()
	typ := p.baseType()
	name := p.expect(token.Ident)
	if p.cur().Kind == token.LParen {
		return p.funcDecl(sto, typ, name)
	}
	d := p.varDeclRest(sto, typ, name, true)
	p.expect(token.Semicolon)
	return d
}

// varDeclRest parses the remainder of a variable declaration after the
// storage class, base type, and name have been consumed.
func (p *parser) varDeclRest(sto ast.Storage, typ *types.Type, name token.Token, global bool) *ast.VarDecl {
	d := &ast.VarDecl{
		NamePos:  name.Pos,
		Name:     name.Text,
		Typ:      typ,
		Storage:  sto,
		IsGlobal: global,
	}
	if p.accept(token.LBracket) {
		lenTok := p.expect(token.IntLit)
		n, err := parseIntText(lenTok.Text)
		if err != nil || n.val <= 0 || n.val > 1<<20 {
			p.errorf(lenTok.Pos, "invalid array length %q", lenTok.Text)
		}
		d.Typ = types.ArrayOf(typ, int(n.val))
		p.expect(token.RBracket)
	}
	if p.accept(token.Assign) {
		if d.Typ.Kind == types.Array {
			d.Init = p.arrayInit(d.Typ)
		} else {
			d.Init = p.assignExpr()
		}
	}
	return d
}

func (p *parser) arrayInit(t *types.Type) ast.Expr {
	lb := p.expect(token.LBrace)
	init := &ast.ArrayInit{LbracePos: lb.Pos, Typ: t}
	for p.cur().Kind != token.RBrace {
		init.Elems = append(init.Elems, p.assignExpr())
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RBrace)
	if len(init.Elems) > t.Len {
		p.errorf(lb.Pos, "too many initializers for %s", t)
	}
	return init
}

func (p *parser) funcDecl(sto ast.Storage, ret *types.Type, name token.Token) *ast.FuncDecl {
	f := &ast.FuncDecl{NamePos: name.Pos, Name: name.Text, Ret: ret, Storage: sto}
	p.expect(token.LParen)
	if p.cur().Kind == token.KwVoid && p.peek(1).Kind == token.RParen {
		p.next()
	} else if p.cur().Kind != token.RParen {
		for {
			ptyp := p.baseType()
			pname := p.expect(token.Ident)
			f.Params = append(f.Params, &ast.VarDecl{
				NamePos: pname.Pos,
				Name:    pname.Text,
				Typ:     ptyp,
				IsParam: true,
			})
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	p.expect(token.RParen)
	if p.accept(token.Semicolon) {
		return f // declaration only (e.g. an optimization marker)
	}
	f.Body = p.block()
	return f
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) block() *ast.Block {
	lb := p.expect(token.LBrace)
	b := &ast.Block{LbracePos: lb.Pos}
	for p.cur().Kind != token.RBrace {
		if p.cur().Kind == token.EOF {
			p.errorf(lb.Pos, "unterminated block")
		}
		b.Stmts = append(b.Stmts, p.stmt())
	}
	p.expect(token.RBrace)
	return b
}

func (p *parser) localDecl() *ast.DeclStmt {
	sto := p.storage()
	if sto == ast.StorageExtern {
		p.errorf(p.cur().Pos, "extern is not allowed on local declarations")
	}
	typ := p.baseType()
	name := p.expect(token.Ident)
	d := p.varDeclRest(sto, typ, name, false)
	return &ast.DeclStmt{Decl: d}
}

func (p *parser) stmt() ast.Stmt {
	t := p.cur()
	switch t.Kind {
	case token.LBrace:
		return p.block()
	case token.Semicolon:
		p.next()
		return &ast.Empty{SemiPos: t.Pos}
	case token.KwStatic:
		d := p.localDecl()
		p.expect(token.Semicolon)
		return d
	case token.KwIf:
		p.next()
		p.expect(token.LParen)
		cond := p.expr()
		p.expect(token.RParen)
		s := &ast.If{IfPos: t.Pos, Cond: cond, Then: p.stmt()}
		if p.accept(token.KwElse) {
			s.Else = p.stmt()
		}
		return s
	case token.KwWhile:
		p.next()
		p.expect(token.LParen)
		cond := p.expr()
		p.expect(token.RParen)
		return &ast.While{WhilePos: t.Pos, Cond: cond, Body: p.stmt()}
	case token.KwDo:
		p.next()
		body := p.stmt()
		p.expect(token.KwWhile)
		p.expect(token.LParen)
		cond := p.expr()
		p.expect(token.RParen)
		p.expect(token.Semicolon)
		return &ast.DoWhile{DoPos: t.Pos, Body: body, Cond: cond}
	case token.KwFor:
		p.next()
		p.expect(token.LParen)
		s := &ast.For{ForPos: t.Pos}
		switch {
		case p.accept(token.Semicolon):
			// no init
		case isTypeStart(p.cur().Kind):
			s.Init = p.localDecl()
			p.expect(token.Semicolon)
		default:
			s.Init = &ast.ExprStmt{X: p.expr()}
			p.expect(token.Semicolon)
		}
		if p.cur().Kind != token.Semicolon {
			s.Cond = p.expr()
		}
		p.expect(token.Semicolon)
		if p.cur().Kind != token.RParen {
			s.Post = p.expr()
		}
		p.expect(token.RParen)
		s.Body = p.stmt()
		return s
	case token.KwReturn:
		p.next()
		s := &ast.Return{RetPos: t.Pos}
		if p.cur().Kind != token.Semicolon {
			s.X = p.expr()
		}
		p.expect(token.Semicolon)
		return s
	case token.KwBreak:
		p.next()
		p.expect(token.Semicolon)
		return &ast.Break{BrPos: t.Pos}
	case token.KwContinue:
		p.next()
		p.expect(token.Semicolon)
		return &ast.Continue{ContPos: t.Pos}
	case token.KwSwitch:
		return p.switchStmt()
	case token.KwGoto:
		p.errorf(t.Pos, "goto is not part of MiniC")
	}
	if isTypeStart(t.Kind) {
		d := p.localDecl()
		p.expect(token.Semicolon)
		return d
	}
	x := p.expr()
	p.expect(token.Semicolon)
	return &ast.ExprStmt{X: x}
}

func (p *parser) switchStmt() ast.Stmt {
	sw := p.expect(token.KwSwitch)
	p.expect(token.LParen)
	tag := p.expr()
	p.expect(token.RParen)
	p.expect(token.LBrace)
	s := &ast.Switch{SwPos: sw.Pos, Tag: tag}
	for p.cur().Kind != token.RBrace {
		c := &ast.SwitchCase{CasePos: p.cur().Pos}
		// One or more case/default labels.
		for {
			if p.accept(token.KwDefault) {
				p.expect(token.Colon)
				c.IsDefault = true
			} else if p.accept(token.KwCase) {
				c.Vals = append(c.Vals, p.condExpr())
				p.expect(token.Colon)
			} else {
				break
			}
		}
		if len(c.Vals) == 0 && !c.IsDefault {
			p.errorf(p.cur().Pos, "expected case or default label, found %s", p.cur())
		}
		for {
			k := p.cur().Kind
			if k == token.KwCase || k == token.KwDefault || k == token.RBrace {
				break
			}
			c.Body = append(c.Body, p.stmt())
		}
		s.Cases = append(s.Cases, c)
	}
	p.expect(token.RBrace)
	return s
}

// ---------------------------------------------------------------------------
// Expressions

// expr parses a full expression (assignment level; MiniC has no comma
// operator).
func (p *parser) expr() ast.Expr { return p.assignExpr() }

func (p *parser) assignExpr() ast.Expr {
	lhs := p.condExpr()
	op := p.cur()
	if !op.Kind.IsAssignOp() {
		return lhs
	}
	p.next()
	rhs := p.assignExpr() // right associative
	return &ast.Assign{OpPos: op.Pos, Op: op.Kind, LHS: lhs, RHS: rhs}
}

func (p *parser) condExpr() ast.Expr {
	cond := p.binExpr(0)
	q := p.cur()
	if q.Kind != token.Question {
		return cond
	}
	p.next()
	then := p.condExpr()
	p.expect(token.Colon)
	els := p.condExpr()
	return &ast.Cond{QPos: q.Pos, CondX: cond, Then: then, Else: els}
}

// binLevel returns the precedence-climbing level of a binary operator,
// or -1 if the token is not a binary operator.
func binLevel(k token.Kind) int {
	switch k {
	case token.OrOr:
		return 1
	case token.AndAnd:
		return 2
	case token.Pipe:
		return 3
	case token.Caret:
		return 4
	case token.Amp:
		return 5
	case token.EqEq, token.NotEq:
		return 6
	case token.Lt, token.Gt, token.Le, token.Ge:
		return 7
	case token.Shl, token.Shr:
		return 8
	case token.Plus, token.Minus:
		return 9
	case token.Star, token.Slash, token.Percent:
		return 10
	}
	return -1
}

func (p *parser) binExpr(minLevel int) ast.Expr {
	lhs := p.unaryExpr()
	for {
		op := p.cur()
		lvl := binLevel(op.Kind)
		if lvl < 0 || lvl < minLevel {
			return lhs
		}
		p.next()
		rhs := p.binExpr(lvl + 1) // all binary operators are left associative
		lhs = &ast.Binary{OpPos: op.Pos, Op: op.Kind, X: lhs, Y: rhs}
	}
}

func (p *parser) unaryExpr() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.Minus, token.Tilde, token.Not, token.Amp, token.Star, token.Plus:
		p.next()
		x := p.unaryExpr()
		if t.Kind == token.Plus {
			return x // unary plus is a no-op
		}
		return &ast.Unary{OpPos: t.Pos, Op: t.Kind, X: x}
	case token.PlusPlus, token.MinusMinus:
		p.next()
		x := p.unaryExpr()
		return &ast.IncDec{OpPos: t.Pos, Op: t.Kind, Prefix: true, X: x}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() ast.Expr {
	x := p.primaryExpr()
	for {
		t := p.cur()
		switch t.Kind {
		case token.LBracket:
			p.next()
			idx := p.expr()
			p.expect(token.RBracket)
			x = &ast.Index{LbrackPos: t.Pos, Base: x, Idx: idx}
		case token.PlusPlus, token.MinusMinus:
			p.next()
			x = &ast.IncDec{OpPos: t.Pos, Op: t.Kind, Prefix: false, X: x}
		default:
			return x
		}
	}
}

func (p *parser) primaryExpr() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.IntLit:
		p.next()
		n, err := parseIntText(t.Text)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q: %v", t.Text, err)
		}
		return &ast.IntLit{LitPos: t.Pos, Val: n.canonical(), Typ: n.typ}
	case token.Ident:
		p.next()
		if p.cur().Kind == token.LParen {
			p.next()
			call := &ast.Call{NamePos: t.Pos, Name: t.Text}
			for p.cur().Kind != token.RParen {
				call.Args = append(call.Args, p.assignExpr())
				if !p.accept(token.Comma) {
					break
				}
			}
			p.expect(token.RParen)
			return call
		}
		return &ast.VarRef{NamePos: t.Pos, Name: t.Text}
	case token.LParen:
		p.next()
		x := p.expr()
		p.expect(token.RParen)
		return x
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	return nil
}

// ---------------------------------------------------------------------------
// Integer literals

type intLit struct {
	val uint64
	typ *types.Type
}

// canonical returns the literal bits in the canonical int64 representation
// of its type.
func (n intLit) canonical() int64 { return n.typ.WrapValue(int64(n.val)) }

// parseIntText decodes a C integer literal with optional u/U and l/L
// suffixes, assigning the type as C does: plain decimals are int if they
// fit, otherwise long; U makes them unsigned int or unsigned long; L forces
// the 64-bit width.
func parseIntText(text string) (intLit, error) {
	s := strings.ToLower(text)
	unsigned, long := false, false
	for strings.HasSuffix(s, "u") || strings.HasSuffix(s, "l") {
		if strings.HasSuffix(s, "u") {
			unsigned = true
			s = s[:len(s)-1]
		} else {
			long = true
			s = s[:len(s)-1]
			if strings.HasSuffix(s, "l") {
				s = s[:len(s)-1]
			}
		}
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return intLit{}, err
	}
	var t *types.Type
	switch {
	case unsigned && (long || v > 0xFFFFFFFF):
		t = types.U64Type
	case unsigned:
		t = types.U32Type
	case long || v > 0x7FFFFFFF:
		t = types.I64Type
	default:
		t = types.I32Type
	}
	return intLit{val: v, typ: t}, nil
}
