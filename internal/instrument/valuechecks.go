package instrument

import (
	"fmt"

	"dcelens/internal/ast"
	"dcelens/internal/interp"
	"dcelens/internal/sema"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// ValueCheckPrefix names value-check markers, distinguishing them from
// block markers.
const ValueCheckPrefix = "DCEValueCheck"

// InstrumentValueChecks implements the paper's §4.4 "Future directions"
// extension: instead of relying on existing dead blocks, synthesize
// guaranteed-dead blocks of the form
//
//	if (g != C) DCEValueCheckN();
//
// where C is g's actual value at that program point, recorded by executing
// the program. The checks are inserted at the end of main (just before its
// final return), so C is each integer global scalar's exit value: the
// guard is false by construction and the marker is dead. A compiler
// eliminates it exactly when its pipeline can prove the global's final
// value — an end-to-end probe of constant propagation and (with loops in
// the program) scalar evolution.
//
// The input program is not modified; the result carries the combined
// marker table (block markers absent — value checks only).
func InstrumentValueChecks(prog *ast.Program) (*Program, error) {
	// Record exit values on the unmodified program.
	res, err := interp.Run(prog, interp.Options{})
	if err != nil {
		return nil, fmt.Errorf("instrument: value recording run: %w", err)
	}

	clone := ast.Clone(prog)
	out := &Program{Prog: clone}
	mainFn := clone.Main()
	if mainFn == nil || mainFn.Body == nil {
		return nil, fmt.Errorf("instrument: program has no main")
	}

	// Collect the integer global scalars, in declaration order.
	var checks []ast.Stmt
	var declNames []string
	for _, g := range clone.Globals() {
		if g.Storage == ast.StorageExtern || !g.Typ.IsInteger() {
			continue
		}
		val, ok := res.FinalGlobals[g.Name]
		if !ok {
			continue
		}
		id := len(out.Markers)
		name := fmt.Sprintf("%s%d", ValueCheckPrefix, id)
		out.Markers = append(out.Markers, Marker{
			ID: id, Name: name, Site: "value-check", Func: "main",
		})
		declNames = append(declNames, name)

		// if (g != C) { DCEValueCheckN(); }
		lit := &ast.IntLit{Val: val, Typ: litTypeFor(g.Typ)}
		checks = append(checks, &ast.If{
			Cond: &ast.Binary{
				Op: token.NotEq,
				X:  &ast.VarRef{Name: g.Name},
				Y:  lit,
			},
			Then: &ast.Block{Stmts: []ast.Stmt{
				&ast.ExprStmt{X: &ast.Call{Name: name}},
			}},
		})
	}

	// Insert the checks just before main's trailing return (or at the end
	// of the body if main falls off the end).
	body := mainFn.Body
	insertAt := len(body.Stmts)
	if insertAt > 0 {
		if _, isRet := body.Stmts[insertAt-1].(*ast.Return); isRet {
			insertAt--
		}
	}
	rest := append([]ast.Stmt{}, body.Stmts[insertAt:]...)
	body.Stmts = append(body.Stmts[:insertAt], append(checks, rest...)...)

	// Declare the marker functions.
	decls := make([]ast.Decl, 0, len(declNames)+len(clone.Decls))
	for _, n := range declNames {
		decls = append(decls, &ast.FuncDecl{Name: n, Ret: types.VoidType})
	}
	clone.Decls = append(decls, clone.Decls...)

	if err := sema.Check(clone); err != nil {
		return nil, fmt.Errorf("instrument: value-checked program fails sema: %w", err)
	}
	return out, nil
}

// litTypeFor picks a literal type whose canonical values can represent the
// recorded global's value exactly in a comparison against the global.
func litTypeFor(t *types.Type) *types.Type {
	if t.IsSigned() {
		return types.I64Type
	}
	return types.U64Type
}
