package instrument

import (
	"strings"
	"testing"

	"dcelens/internal/ast"
	"dcelens/internal/cgen"
	"dcelens/internal/interp"
)

func TestValueChecksAreDead(t *testing.T) {
	prog := mustParse(t, `
static int a = 3;
static unsigned b = 7U;
int main(void) {
  a = a * 2;      // a ends as 6
  b = b + 1U;     // b ends as 8
  return 0;
}`)
	ins, err := InstrumentValueChecks(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.Markers) != 2 {
		t.Fatalf("want 2 value checks, got %d", len(ins.Markers))
	}
	src := ast.Print(ins.Prog)
	if !strings.Contains(src, "a != 6L") || !strings.Contains(src, "b != 8UL") {
		t.Errorf("recorded values missing:\n%s", src)
	}
	// By construction every value-check marker is dead.
	res, err := interp.Run(ins.Prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ins.Markers {
		if res.Executed(m.Name) {
			t.Errorf("value check %s executed — recording is wrong", m.Name)
		}
	}
	// And the instrumented program behaves like the original.
	orig, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != orig.Checksum || res.ExitCode != orig.ExitCode {
		t.Error("value-check instrumentation changed behaviour")
	}
}

func TestValueChecksOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := cgen.Generate(cgen.DefaultConfig(seed))
		ins, err := InstrumentValueChecks(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(ins.Markers) == 0 {
			t.Fatalf("seed %d: no value checks", seed)
		}
		res, err := interp.Run(ins.Prog, interp.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, m := range ins.Markers {
			if res.Executed(m.Name) {
				t.Fatalf("seed %d: %s executed", seed, m.Name)
			}
		}
	}
}

func TestValueCheckMarkerNames(t *testing.T) {
	if !IsMarker("DCEValueCheck3") || !IsMarker("DCEMarker0") {
		t.Error("IsMarker must accept both marker families")
	}
	if IsMarker("printf") {
		t.Error("IsMarker too permissive")
	}
}
