package instrument

import (
	"strings"
	"testing"
	"testing/quick"

	"dcelens/internal/ast"
	"dcelens/internal/cgen"
	"dcelens/internal/interp"
	"dcelens/internal/parser"
	"dcelens/internal/sema"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestInstrumentBasicBlocks(t *testing.T) {
	prog := mustParse(t, `
static int c = 0;
int main(void) {
  if (c) {
    c = 1;
  } else {
    c = 2;
  }
  for (int i = 0; i < 3; i++) c += i;
  while (c > 100) c--;
  do { c++; } while (c < 0);
  switch (c) {
  case 1:
    c = 5;
    break;
  default:
    c = 6;
  }
  return 0;
}`)
	ins, err := Instrument(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sites: if-then, if-else, for-body, while-body, dowhile-body, case,
	// default. main has no entry marker.
	wantSites := map[string]int{
		"if-then": 1, "if-else": 1, "for-body": 1, "while-body": 1,
		"dowhile-body": 1, "case": 1, "default": 1,
	}
	got := map[string]int{}
	for _, m := range ins.Markers {
		got[m.Site]++
	}
	for site, n := range wantSites {
		if got[site] != n {
			t.Errorf("site %s: got %d markers, want %d\nmarkers: %+v", site, got[site], n, ins.Markers)
		}
	}
	src := ast.Print(ins.Prog)
	for _, m := range ins.Markers {
		if !strings.Contains(src, m.Name+"();") {
			t.Errorf("marker %s not present in instrumented source", m.Name)
		}
	}
}

func TestFunctionEntryMarkers(t *testing.T) {
	prog := mustParse(t, `
static int helper(void) { return 1; }
int main(void) { return helper(); }`)
	ins, err := Instrument(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var entries int
	for _, m := range ins.Markers {
		if m.Site == "func-entry" {
			entries++
			if m.Func != "helper" {
				t.Errorf("entry marker in %s, want helper", m.Func)
			}
		}
	}
	if entries != 1 {
		t.Errorf("got %d entry markers, want 1 (main excluded)", entries)
	}

	ins2, err := Instrument(prog, Options{SkipFunctionEntries: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ins2.Markers {
		if m.Site == "func-entry" {
			t.Error("entry markers present despite SkipFunctionEntries")
		}
	}
}

func TestAfterReturnMarker(t *testing.T) {
	prog := mustParse(t, `
static int a = 0;
int main(void) {
  if (a) {
    return 1;
  }
  a = 2;
  return 0;
}`)
	ins, err := Instrument(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var after int
	for _, m := range ins.Markers {
		if m.Site == "after-return" {
			after++
		}
	}
	if after != 1 {
		t.Errorf("got %d after-return markers, want 1", after)
	}
}

func TestElseIfChains(t *testing.T) {
	prog := mustParse(t, `
static int a = 1;
int main(void) {
  if (a == 0) {
    a = 10;
  } else if (a == 1) {
    a = 20;
  } else {
    a = 30;
  }
  return a;
}`)
	ins, err := Instrument(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two ifs: 2 then-markers, 1 else-marker (the final else); the else-if
	// is instrumented as a nested if, not wrapped as an else block.
	got := map[string]int{}
	for _, m := range ins.Markers {
		got[m.Site]++
	}
	if got["if-then"] != 2 || got["if-else"] != 1 {
		t.Errorf("markers: %+v", got)
	}
}

// TestInstrumentationPreservesSemantics is the central soundness property
// (paper footnote 2): adding markers must not change program behaviour.
func TestInstrumentationPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		prog := cgen.Generate(cgen.DefaultConfig(seed))
		before, err := interp.Run(prog, interp.Options{})
		if err != nil {
			t.Logf("seed %d: uninstrumented run failed: %v", seed, err)
			return false
		}
		ins, err := Instrument(prog, Options{})
		if err != nil {
			t.Logf("seed %d: instrument failed: %v", seed, err)
			return false
		}
		after, err := interp.Run(ins.Prog, interp.Options{})
		if err != nil {
			t.Logf("seed %d: instrumented run failed: %v", seed, err)
			return false
		}
		if before.Checksum != after.Checksum || before.ExitCode != after.ExitCode {
			t.Logf("seed %d: instrumentation changed behaviour", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestGroundTruth checks the executed-marker recording that defines
// alive/dead ground truth (paper §4.1).
func TestGroundTruth(t *testing.T) {
	prog := mustParse(t, `
static int c = 0;
int main(void) {
  if (c) {
    c = 1; // dead: c is 0 here
  }
  if (c == 0) {
    c = 2; // alive
  }
  return 0;
}`)
	ins, err := Instrument(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(ins.Prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.Markers) != 2 {
		t.Fatalf("want 2 markers, got %d", len(ins.Markers))
	}
	if res.Executed(ins.Markers[0].Name) {
		t.Error("marker in dead block reported alive")
	}
	if !res.Executed(ins.Markers[1].Name) {
		t.Error("marker in alive block reported dead")
	}
}

func TestInstrumentDoesNotMutateOriginal(t *testing.T) {
	prog := mustParse(t, `static int a; int main(void) { if (a) { a = 1; } return 0; }`)
	before := ast.Print(prog)
	if _, err := Instrument(prog, Options{}); err != nil {
		t.Fatal(err)
	}
	if ast.Print(prog) != before {
		t.Error("Instrument mutated its input")
	}
}

func TestMarkerPrevalence(t *testing.T) {
	// Generated programs must contain enough instrumentable blocks for the
	// statistics to be meaningful.
	total := 0
	for seed := int64(0); seed < 10; seed++ {
		prog := cgen.Generate(cgen.DefaultConfig(seed))
		ins, err := Instrument(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		total += len(ins.Markers)
	}
	if total < 200 {
		t.Errorf("only %d markers over 10 programs; generator produces too few blocks", total)
	}
}
