// Package instrument inserts optimization markers into MiniC programs —
// step ① of the paper's pipeline.
//
// A marker is a call to an external function with no visible body
// (void DCEMarkerN(void)). A compiler cannot analyze or inline such a call,
// so the only way to remove it is to prove the surrounding basic block dead;
// a marker surviving in the generated assembly therefore means the block is
// (believed) alive. Markers are inserted at every source-level structure
// that corresponds to a basic block: if-then and else bodies, loop bodies,
// switch case and default groups, function entries, and the continuation of
// a block after a conditional return (paper §4, "Implementation").
package instrument

import (
	"fmt"
	"strings"

	"dcelens/internal/ast"
	"dcelens/internal/sema"
	"dcelens/internal/types"
)

// Prefix is the name prefix of block markers.
const Prefix = "DCEMarker"

// IsMarker reports whether name is an optimization-marker function —
// either a block marker or a value-check marker (valuechecks.go).
func IsMarker(name string) bool {
	return strings.HasPrefix(name, Prefix) || strings.HasPrefix(name, ValueCheckPrefix)
}

// Marker identifies one inserted optimization marker.
type Marker struct {
	ID   int
	Name string
	// Site describes the instrumented construct, for diagnostics:
	// "if-then", "if-else", "for-body", "while-body", "dowhile-body",
	// "case", "default", "func-entry", "after-return".
	Site string
	// Func is the name of the function containing the marker.
	Func string
}

// Program is an instrumented program together with its marker table.
type Program struct {
	Prog    *ast.Program
	Markers []Marker
}

// MarkerNames returns the names of all markers in ID order.
func (p *Program) MarkerNames() []string {
	names := make([]string, len(p.Markers))
	for i, m := range p.Markers {
		names[i] = m.Name
	}
	return names
}

// Options controls which sites are instrumented. The zero value means
// "everything", matching the paper.
type Options struct {
	SkipFunctionEntries bool
	SkipAfterReturn     bool
}

// Instrument returns an instrumented copy of prog (prog itself is not
// modified). The copy has been re-checked by sema.
func Instrument(prog *ast.Program, opts Options) (*Program, error) {
	ins := &instrumenter{opts: opts}
	clone := ast.Clone(prog)
	for _, f := range clone.Funcs() {
		if f.Body == nil {
			continue
		}
		ins.fn = f.Name
		entryFirst := !opts.SkipFunctionEntries && f.Name != "main"
		if entryFirst {
			f.Body.Stmts = append([]ast.Stmt{ins.markerCall("func-entry")}, f.Body.Stmts...)
		}
		ins.block(f.Body)
	}
	// Declare the marker functions up front.
	decls := make([]ast.Decl, 0, len(ins.markers)+len(clone.Decls))
	for _, m := range ins.markers {
		decls = append(decls, &ast.FuncDecl{
			Name: m.Name,
			Ret:  types.VoidType,
		})
	}
	decls = append(decls, clone.Decls...)
	clone.Decls = decls
	if err := sema.Check(clone); err != nil {
		return nil, fmt.Errorf("instrument: instrumented program fails sema: %w", err)
	}
	return &Program{Prog: clone, Markers: ins.markers}, nil
}

type instrumenter struct {
	opts    Options
	markers []Marker
	fn      string
}

// markerCall allocates the next marker and returns the call statement.
func (ins *instrumenter) markerCall(site string) ast.Stmt {
	id := len(ins.markers)
	m := Marker{ID: id, Name: fmt.Sprintf("%s%d", Prefix, id), Site: site, Func: ins.fn}
	ins.markers = append(ins.markers, m)
	return &ast.ExprStmt{X: &ast.Call{Name: m.Name}}
}

// asBlock wraps s in a block unless it already is one.
func asBlock(s ast.Stmt) *ast.Block {
	if b, ok := s.(*ast.Block); ok {
		return b
	}
	return &ast.Block{Stmts: []ast.Stmt{s}}
}

// block instruments every nested basic block of b and inserts
// after-conditional-return markers between b's statements.
func (ins *instrumenter) block(b *ast.Block) {
	var out []ast.Stmt
	for i, s := range b.Stmts {
		ins.stmt(&s)
		out = append(out, s)
		// Continuation marker: if this statement conditionally returns,
		// the rest of the block is a new basic block.
		if !ins.opts.SkipAfterReturn && i < len(b.Stmts)-1 && conditionallyReturns(s) {
			out = append(out, ins.markerCall("after-return"))
		}
	}
	b.Stmts = out
}

// stmt instruments the block-introducing statement kinds in place.
func (ins *instrumenter) stmt(sp *ast.Stmt) {
	switch s := (*sp).(type) {
	case *ast.Block:
		ins.block(s)
	case *ast.If:
		then := asBlock(s.Then)
		then.Stmts = append([]ast.Stmt{ins.markerCall("if-then")}, then.Stmts...)
		ins.block(then)
		s.Then = then
		if s.Else != nil {
			if elseIf, ok := s.Else.(*ast.If); ok {
				// else-if chains: instrument the nested if directly rather
				// than wrapping it (it has its own then/else markers).
				var es ast.Stmt = elseIf
				ins.stmt(&es)
				s.Else = es
			} else {
				els := asBlock(s.Else)
				els.Stmts = append([]ast.Stmt{ins.markerCall("if-else")}, els.Stmts...)
				ins.block(els)
				s.Else = els
			}
		}
	case *ast.While:
		body := asBlock(s.Body)
		body.Stmts = append([]ast.Stmt{ins.markerCall("while-body")}, body.Stmts...)
		ins.block(body)
		s.Body = body
	case *ast.DoWhile:
		body := asBlock(s.Body)
		body.Stmts = append([]ast.Stmt{ins.markerCall("dowhile-body")}, body.Stmts...)
		ins.block(body)
		s.Body = body
	case *ast.For:
		body := asBlock(s.Body)
		body.Stmts = append([]ast.Stmt{ins.markerCall("for-body")}, body.Stmts...)
		ins.block(body)
		s.Body = body
	case *ast.Switch:
		for _, c := range s.Cases {
			site := "case"
			if c.IsDefault {
				site = "default"
			}
			c.Body = append([]ast.Stmt{ins.markerCall(site)}, c.Body...)
			for j := range c.Body {
				ins.stmt(&c.Body[j])
			}
		}
	}
}

// conditionallyReturns reports whether s contains a return statement on
// some but not necessarily all paths — i.e. executing s might or might not
// leave the function, so the code after s forms its own basic block.
func conditionallyReturns(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.Return); ok {
			found = true
		}
		return !found
	})
	return found
}
