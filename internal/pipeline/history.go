package pipeline

import "dcelens/internal/opt"

// Commit is one entry in a personality's synthetic version history. The
// history plays the role of the compilers' git logs in the paper: level
// regressions are bisected to the commit that introduced them (§4.2), and
// the touched component/files drive the Table 3/4 categorization.
type Commit struct {
	ID        string
	Component string
	Files     []string
	Desc      string
	// Regression marks commits that intentionally lose optimization power
	// (ground truth for evaluating the bisector; the bisector itself never
	// reads this).
	Regression bool
	Apply      func(b *Build)
}

// baseBuild is each personality's pre-history state.
func baseBuild(p Personality) Build {
	switch p {
	case GCC:
		return Build{
			Opts: opt.Options{
				// GCC's global value analysis is flow-insensitive
				// (paper §2, Listing 4a).
				GlobalProp: opt.GlobalPropNoStores,
				Alias:      opt.AliasBaseObject,
				// Missing relations GCC bugs 102546/99419/99357 track:
				ShiftNonzeroRelation: false,
				ConstArrayLoadFold:   false,
				RedundantStoreElim:   false,
			},
			InlineBudget: 40,
		}
	case LLVM:
		return Build{
			Opts: opt.Options{
				// LLVM <= 3.7 could propagate initial values of globals
				// whose stores are unreachable from the load.
				GlobalProp: opt.GlobalPropFlowAware,
				Alias:      opt.AliasBaseObject,
				// EarlyCSE folded pointer compares from the start...
				FoldPtrCmpNonzeroOffset: true,
				ConstArrayLoadFold:      true,
				RedundantStoreElim:      true,
			},
			InlineBudget: 40,
		}
	}
	panic("pipeline: unknown personality " + string(p))
}

// History returns the personality's commit list, oldest first. The tested
// "current" version is the full list; FutureFixes extends beyond it.
func History(p Personality) []Commit {
	switch p {
	case GCC:
		return gccHistory
	case LLVM:
		return llvmHistory
	}
	panic("pipeline: unknown personality " + string(p))
}

// FutureFixes lists fixes landed after the tested version; the triage model
// uses them to decide which reported bugs count as "fixed" (Table 5).
func FutureFixes(p Personality) []Commit {
	switch p {
	case GCC:
		return gccFutureFixes
	case LLVM:
		return llvmFutureFixes
	}
	panic("pipeline: unknown personality " + string(p))
}

func noop(*Build) {}

var gccHistory = []Commit{
	{ID: "a1f02cc381d0", Component: "Value Numbering",
		Files: []string{"gcc/tree-ssa-sccvn.c", "gcc/tree-ssa-pre.c"},
		Desc:  "FRE: forward stored values to dominated loads",
		Apply: func(b *Build) { b.Opts.LoadForwarding = true }},
	{ID: "b8812a04c5fe", Component: "C-family Frontend",
		Files: []string{"gcc/c/c-typeck.c", "gcc/c-family/c-common.c", "gcc/c/c-decl.c", "gcc/c/c-parser.c"},
		Desc:  "c: fold more constant expressions during parsing",
		Apply: noop},
	{ID: "c93d11f27a40", Component: "Inlining",
		Files: []string{"gcc/ipa-inline.c", "gcc/ipa-inline-analysis.c"},
		Desc:  "ipa: raise early-inline size limits",
		Apply: func(b *Build) { b.InlineBudget = 60 }},
	{ID: "d0aa5b7e3391", Component: "Peephole Optimizations",
		Files: []string{"gcc/match.pd"},
		Desc:  "match.pd: decide &a OP &b+CST address comparisons",
		Apply: func(b *Build) { b.Opts.FoldPtrCmpNonzeroOffset = true }},
	{ID: "e5c4903fd812", Component: "Loop Transformations",
		Files: []string{"gcc/tree-ssa-loop-ivcanon.c", "gcc/cfgloopmanip.c"},
		Desc:  "cunroll: enable complete unrolling of small loops at -O3",
		Apply: func(b *Build) { b.UnrollTrips = 8 }},
	{ID: "f7be190442ac", Component: "Copy Propagation",
		Files: []string{"gcc/tree-ssa-copy.c"},
		Desc:  "copy-prop: iterate to a fixed point",
		Apply: noop},
	{ID: "0d2ce83b17f5", Component: "Alias Analysis",
		Files:      []string{"gcc/tree-ssa-alias.c"},
		Desc:       "alias: rework points-to for pointers reloaded at -O3",
		Regression: true,
		Apply:      func(b *Build) { b.AliasO3Conservative = true }},
	{ID: "13c9e2ab06d4", Component: "Constant Propagation",
		Files: []string{"gcc/tree-ssa-ccp.c", "gcc/tree-ssa-propagate.c"},
		Desc:  "ccp: track constant lattice through casts",
		Apply: noop},
	{ID: "27d50f318e9b", Component: "Loop Transformations",
		Files:      []string{"gcc/tree-vect-stmts.c", "gcc/tree-vect-data-refs.c"},
		Desc:       "vect: treat pointer data as unsigned long when vectorizing stores",
		Regression: true,
		Apply:      func(b *Build) { b.WidenAtO3 = true }},
	{ID: "31ab7cd9254e", Component: "Control Flow Graph Analysis",
		Files: []string{"gcc/cfgcleanup.c", "gcc/cfganal.c"},
		Desc:  "cfg: refine unreachable block removal after threading",
		Apply: noop},
	{ID: "4450cbd1e7a9", Component: "Interprocedural SRoA",
		Files:      []string{"gcc/ipa-sra.c"},
		Desc:       "ipa-sra: keep specialized parameter copies for late passes",
		Regression: true,
		Apply:      func(b *Build) { b.KeepSRAAtO3 = true }},
	{ID: "58ef33027b1c", Component: "Jump Threading",
		Files: []string{"gcc/tree-ssa-threadedge.c", "gcc/tree-ssa-threadupdate.c", "gcc/tree-ssa-threadbackward.c"},
		Desc:  "threader: enable backward threading at -O2 and above",
		Apply: func(b *Build) { b.JumpThreadAtO2 = true }},
	{ID: "6b1fd4072c8e", Component: "Pass Management",
		Files: []string{"gcc/passes.def", "gcc/passes.c"},
		Desc:  "passes: schedule a second forwprop instance",
		Apply: noop},
	{ID: "7fa2bb5d9103", Component: "Interprocedural Analyses",
		Files: []string{"gcc/ipa-prop.c"},
		Desc:  "ipa: propagate argument constness across calls",
		Apply: noop},
	{ID: "8cd30e6f41b2", Component: "Value Propagation",
		Files: []string{"gcc/tree-vrp.c", "gcc/vr-values.c", "gcc/range-op.cc", "gcc/gimple-range.cc", "gcc/gimple-range-cache.cc", "gcc/gimple-range-edge.cc", "gcc/value-range.cc"},
		Desc:  "ranger: switch VRP to the new range infrastructure",
		Apply: noop},
	{ID: "9e80cf25a634", Component: "Common Subexpression Elimination",
		Files: []string{"gcc/cse.c", "gcc/gcse.c"},
		Desc:  "cse: hash memory operands by canonical address",
		Apply: noop},
	{ID: "af61d70b2934", Component: "Target Info",
		Files: []string{"gcc/config/i386/i386.c"},
		Desc:  "x86: update rtx costs for shifts",
		Apply: noop},
	{ID: "92acae5047e1", Component: "Pass Management",
		Files: []string{"gcc/passes.def"},
		Desc:  "passes: move late threading after VRP2",
		Apply: noop},
}

var gccFutureFixes = []Commit{
	{ID: "5f9ccf17de7b", Component: "Value Propagation",
		Files: []string{"gcc/range-op.cc"},
		Desc:  "range-op: X << Y is nonzero when X is nonzero and no bits are lost (PR102546)",
		Apply: func(b *Build) { b.Opts.ShiftNonzeroRelation = true }},
	{ID: "d1d01a66012e", Component: "Alias Analysis",
		Files: []string{"gcc/tree-ssa-alias.c"},
		Desc:  "alias: restore points-to precision for reloaded pointers (PR100051)",
		Apply: func(b *Build) { b.AliasO3Conservative = false }},
	{ID: "113860301f4a", Component: "Jump Threading",
		Files: []string{"gcc/tree-ssa-threadupdate.c"},
		Desc:  "threader: clean up IR after threading through dead stores (PR102703)",
		Apply: noop},
	{ID: "7d6bb80931bd", Component: "Loop Transformations",
		Files: []string{"gcc/tree-vect-stmts.c"},
		Desc:  "vect: keep pointer types on vectorized pointer stores (PR99776)",
		Apply: func(b *Build) { b.WidenAtO3 = false }},
}

var llvmHistory = []Commit{
	{ID: "2c7e30ab41d9", Component: "Value Propagation",
		Files: []string{"llvm/lib/Transforms/Scalar/GVN.cpp"},
		Desc:  "GVN: forward stores to loads across non-clobbering calls",
		Apply: func(b *Build) { b.Opts.LoadForwarding = true }},
	{ID: "3b90f21dd6a7", Component: "Pass Management",
		Files: []string{"llvm/lib/Passes/PassBuilder.cpp"},
		Desc:  "NewPM: make the new pass manager the default",
		Apply: noop},
	{ID: "1be4f2a08c3d", Component: "Value Propagation",
		Files: []string{"llvm/lib/Transforms/IPO/GlobalOpt.cpp"},
		Desc:  "GlobalOpt: localize non-escaping internal globals used in one function",
		Apply: func(b *Build) { b.Opts.GlobalLocalize = true }},
	{ID: "4e3a8cd05b12", Component: "Value Propagation",
		Files:      []string{"llvm/lib/Transforms/IPO/GlobalOpt.cpp"},
		Desc:       "GlobalOpt: drop the legacy flow-aware initializer propagation",
		Regression: true,
		Apply:      func(b *Build) { b.Opts.GlobalProp = opt.GlobalPropSameConst }},
	{ID: "5fd19e60c2b3", Component: "Loop Transformations",
		Files: []string{"llvm/lib/Transforms/Scalar/LoopUnrollPass.cpp"},
		Desc:  "LoopUnroll: full unrolling of small trip-count loops at -O3",
		Apply: func(b *Build) { b.UnrollTrips = 8 }},
	{ID: "60cf42aa91de", Component: "Loop Transformations",
		Files: []string{"llvm/lib/Transforms/Scalar/SimpleLoopUnswitch.cpp"},
		Desc:  "SimpleLoopUnswitch: enable non-trivial unswitching at -O3",
		Apply: func(b *Build) { b.UnswitchAtO3 = true }},
	{ID: "71da5e30b4f8", Component: "Pass Management",
		Files:      []string{"llvm/lib/Passes/PassBuilderPipelines.cpp", "llvm/lib/Passes/PassBuilder.cpp"},
		Desc:       "NewPM: run non-trivial unswitching (with freeze) in the early loop pipeline",
		Regression: true,
		Apply:      func(b *Build) { b.UnswitchEarly = true }},
	{ID: "82eb06f1c5a3", Component: "Peephole Optimizations",
		Files: []string{"llvm/lib/Transforms/InstCombine/InstCombineCasts.cpp", "llvm/lib/Transforms/InstCombine/InstCombineCompares.cpp"},
		Desc:  "InstCombine: canonicalize cast-of-cast chains",
		Apply: noop},
	{ID: "93fc17de02b4", Component: "Value Constraint Analysis",
		Files: []string{"llvm/lib/Analysis/LazyValueInfo.cpp"},
		Desc:  "LVI: compute ranges for shifts with bounded operands",
		Apply: func(b *Build) { b.Opts.ShiftNonzeroRelation = true }},
	{ID: "a4d028eb71c5", Component: "Instruction Operand Folding",
		Files:      []string{"llvm/lib/Transforms/Scalar/EarlyCSE.cpp"},
		Desc:       "EarlyCSE: only fold pointer compares with zero offsets",
		Regression: true,
		Apply:      func(b *Build) { b.Opts.FoldPtrCmpNonzeroOffset = false }},
	{ID: "b5e1392fd0c6", Component: "SSA Memory Analysis",
		Files: []string{"llvm/lib/Analysis/MemorySSA.cpp"},
		Desc:  "MemorySSA: cache walker results",
		Apply: noop},
	{ID: "c6fa04d18e27", Component: "Jump Threading",
		Files: []string{"llvm/lib/Transforms/Scalar/JumpThreading.cpp"},
		Desc:  "JumpThreading: enable at -O2 with tuned duplication threshold",
		Apply: func(b *Build) { b.JumpThreadAtO2 = true }},
	{ID: "d70b15ce92a4", Component: "Target Info",
		Files: []string{"llvm/lib/Target/X86/X86ISelLowering.cpp", "llvm/lib/Target/X86/X86TargetTransformInfo.cpp"},
		Desc:  "X86: update TTI costs for vector shifts",
		Apply: noop},
	{ID: "e82f4ad106b9", Component: "Alias Analysis",
		Files: []string{"llvm/lib/Analysis/BasicAliasAnalysis.cpp"},
		Desc:  "BasicAA: decompose GEPs through phis",
		Apply: noop},
	{ID: "f93c05be216a", Component: "Value Tracking",
		Files: []string{"llvm/lib/Analysis/ValueTracking.cpp"},
		Desc:  "ValueTracking: improve known-bits for or-disjoint",
		Apply: noop},
	{ID: "3cc38703d5ab", Component: "Inlining",
		Files: []string{"llvm/lib/Analysis/InlineCost.cpp"},
		Desc:  "Inliner: big bonus for internal functions, raise the default threshold",
		Apply: func(b *Build) { b.InlineBudget = 320 }},
}

var llvmFutureFixes = []Commit{
	{ID: "611a02cce509", Component: "Value Constraint Analysis",
		Files: []string{"llvm/lib/IR/ConstantRange.cpp"},
		Desc:  "ConstantRange: implement urem/srem for singleton ranges (PR49731)",
		Apply: noop},
	{ID: "0f2ab2f54ea3", Component: "Instruction Operand Folding",
		Files: []string{"llvm/lib/Transforms/Scalar/EarlyCSE.cpp"},
		Desc:  "EarlyCSE: fold pointer compares with constant offsets (PR49434)",
		Apply: func(b *Build) { b.Opts.FoldPtrCmpNonzeroOffset = true }},
	{ID: "9a4b77ef0d25", Component: "Pass Management",
		Files: []string{"llvm/lib/Passes/PassBuilderPipelines.cpp"},
		Desc:  "NewPM: move non-trivial unswitching back after simplification (PR49773)",
		Apply: func(b *Build) { b.UnswitchEarly = false }},
}
