package pipeline

import (
	"testing"

	"dcelens/internal/cgen"
	"dcelens/internal/instrument"
	"dcelens/internal/ir"
	"dcelens/internal/lower"
	"dcelens/internal/opt"
)

func TestHistoryWellFormed(t *testing.T) {
	for _, p := range []Personality{GCC, LLVM} {
		h := History(p)
		if len(h) < 10 {
			t.Errorf("%s: history too short (%d commits)", p, len(h))
		}
		seen := map[string]bool{}
		regressions := 0
		for _, c := range h {
			if len(c.ID) != 12 {
				t.Errorf("%s: commit ID %q is not 12 hex chars", p, c.ID)
			}
			if seen[c.ID] {
				t.Errorf("%s: duplicate commit ID %s", p, c.ID)
			}
			seen[c.ID] = true
			if c.Component == "" || c.Desc == "" || len(c.Files) == 0 {
				t.Errorf("%s: commit %s missing metadata", p, c.ID)
			}
			if c.Apply == nil {
				t.Errorf("%s: commit %s has no Apply", p, c.ID)
			}
			if c.Regression {
				regressions++
			}
		}
		if regressions == 0 {
			t.Errorf("%s: history has no regression commits", p)
		}
		for _, c := range FutureFixes(p) {
			if seen[c.ID] {
				t.Errorf("%s: future fix %s collides with history", p, c.ID)
			}
		}
	}
}

func TestConfigAssembly(t *testing.T) {
	for _, p := range []Personality{GCC, LLVM} {
		for _, lvl := range Levels {
			cfg := New(p, lvl)
			if cfg.Name() == "" {
				t.Errorf("%s %s: empty name", p, lvl)
			}
			if len(cfg.schedule) == 0 {
				t.Errorf("%s %s: empty schedule", p, lvl)
			}
		}
	}
	// O0 must be minimal; O3 must be the largest schedule.
	if len(New(GCC, O0).schedule) >= len(New(GCC, O3).schedule) {
		t.Error("O0 schedule should be smaller than O3")
	}
}

func TestPersonalitiesDiffer(t *testing.T) {
	g := New(GCC, O3).Options()
	l := New(LLVM, O3).Options()
	if g.GlobalProp == l.GlobalProp {
		t.Error("personalities should differ in global-value analysis precision")
	}
	if g.FoldPtrCmpNonzeroOffset == l.FoldPtrCmpNonzeroOffset {
		t.Error("personalities should differ in pointer-compare folding")
	}
}

func TestVersionsDiffer(t *testing.T) {
	// The alias regression commit must change gcc-sim's -O3 behaviour.
	before := AtCommit(GCC, O3, 6).Options()
	after := AtCommit(GCC, O3, 7).Options()
	if before.Alias == after.Alias {
		t.Error("gcc commit 7 (alias rework) should degrade -O3 alias precision")
	}
	// ...but not -O1's.
	b1 := AtCommit(GCC, O1, 6).Options()
	a1 := AtCommit(GCC, O1, 7).Options()
	if b1.Alias != a1.Alias {
		t.Error("the alias regression is -O3 only")
	}
}

func TestFutureConfigStrongest(t *testing.T) {
	head := New(GCC, O3).Options()
	future := FutureConfig(GCC, O3).Options()
	if !future.ShiftNonzeroRelation || head.ShiftNonzeroRelation {
		t.Error("the shift-relation fix should only exist in the future config")
	}
	if future.Alias == opt.AliasConservative {
		t.Error("the future config should have the alias fix")
	}
}

// TestAllConfigsCompileCorrectly compiles one instrumented program under
// every personality, level, and a sample of historical versions, verifying
// semantics each time.
func TestAllConfigsCompileCorrectly(t *testing.T) {
	prog := cgen.Generate(cgen.DefaultConfig(7))
	ins, err := instrument.Instrument(prog, instrument.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := lower.Lower(ins.Prog)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ir.Execute(ref, ir.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var cfgs []*Config
	for _, p := range []Personality{GCC, LLVM} {
		for _, lvl := range Levels {
			cfgs = append(cfgs, New(p, lvl))
		}
		for _, k := range []int{0, len(History(p)) / 2} {
			cfgs = append(cfgs, AtCommit(p, O3, k))
		}
		cfgs = append(cfgs, FutureConfig(p, O3))
	}
	for _, cfg := range cfgs {
		m, err := lower.Lower(ins.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Compile(m); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		got, err := ir.Execute(m, ir.ExecOptions{})
		if err != nil {
			t.Fatalf("%s: exec: %v", cfg.Name(), err)
		}
		if got.Checksum != want.Checksum || got.ExitCode != want.ExitCode {
			t.Errorf("%s: semantics changed", cfg.Name())
		}
	}
}

// TestSeed111CompilesCleanly pins a campaign-discovered crash: jump
// threading used to retarget edges around a block whose materialized
// constants were used elsewhere, breaking SSA dominance (seed 111,
// llvm-sim -O3).
func TestSeed111CompilesCleanly(t *testing.T) {
	prog := cgen.Generate(cgen.DefaultConfig(111))
	ins, err := instrument.Instrument(prog, instrument.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Personality{GCC, LLVM} {
		m, err := lower.Lower(ins.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := New(p, O3).Compile(m); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

// TestCompactScheduledIdentically: every optimizing level of both
// personalities (at every history version) opens with the compact pass, and
// -O0 never runs it — compact is shared canonicalization, so a personality
// difference here would contaminate the differential oracle.
func TestCompactScheduledIdentically(t *testing.T) {
	for _, p := range []Personality{GCC, LLVM} {
		for commits := 0; commits <= len(History(p)); commits++ {
			for _, lvl := range Levels {
				sched := AtCommit(p, lvl, commits).Schedule()
				if lvl == O0 {
					for _, name := range sched {
						if name == "compact" {
							t.Fatalf("%s@%d %s: compact must not run at -O0", p, commits, lvl)
						}
					}
					continue
				}
				if len(sched) == 0 || sched[0] != "compact" {
					t.Fatalf("%s@%d %s: schedule does not open with compact: %v", p, commits, lvl, sched)
				}
			}
		}
	}
}
