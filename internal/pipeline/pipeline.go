// Package pipeline assembles the two compiler personalities of the
// reproduction — gcc-sim and llvm-sim — from the shared pass library in
// internal/opt.
//
// A personality is not a fork of the middle-end: it is a pass schedule per
// optimization level plus a set of Options knobs, evolved over a synthetic
// commit history (history.go). This mirrors how the paper's missed
// optimizations arise: from analysis-precision differences, pass-ordering
// choices, and individual commits, not from fundamentally different
// compilers.
package pipeline

import (
	"fmt"

	"dcelens/internal/ir"
	"dcelens/internal/metrics"
	"dcelens/internal/opt"
)

// Level is an optimization level.
type Level int

const (
	O0 Level = iota
	O1
	Os
	O2
	O3
)

var levelNames = map[Level]string{O0: "-O0", O1: "-O1", Os: "-Os", O2: "-O2", O3: "-O3"}

func (l Level) String() string { return levelNames[l] }

// Levels lists all levels in ascending optimization strength (with -Os
// between -O1 and -O2, as in the paper's tables).
var Levels = []Level{O0, O1, Os, O2, O3}

// Personality identifies a simulated compiler.
type Personality string

const (
	GCC  Personality = "gcc-sim"
	LLVM Personality = "llvm-sim"
)

// Config is a fully-assembled compiler: personality, level, version.
type Config struct {
	Personality Personality
	Level       Level
	// CommitIndex is the number of history commits applied (the version).
	CommitIndex int

	opts     opt.Options
	schedule []opt.Pass
	iters    int
}

// Name returns a human-readable compiler identity, e.g.
// "gcc-sim@27f3a1b -O3".
func (c *Config) Name() string {
	h := History(c.Personality)
	id := "base"
	if c.CommitIndex > 0 && c.CommitIndex <= len(h) {
		id = h[c.CommitIndex-1].ID
	}
	return fmt.Sprintf("%s@%s %s", c.Personality, id, c.Level)
}

// Options exposes the assembled knob set (read-only use).
func (c *Config) Options() opt.Options { return c.opts }

// Schedule returns the pass names of the assembled schedule, in order.
// One schedule iteration executes each entry once; the pass manager runs
// up to Iterations() repetitions.
func (c *Config) Schedule() []string {
	names := make([]string, len(c.schedule))
	for i, p := range c.schedule {
		names[i] = p.Name
	}
	return names
}

// Iterations returns the pass manager's maximum schedule repetitions.
func (c *Config) Iterations() int { return c.iters }

// Passes returns the assembled schedule itself (read-only use). The
// per-pass benchmark family uses it to drive single passes at their
// natural schedule position.
func (c *Config) Passes() []opt.Pass { return c.schedule }

// Compile optimizes the module in place according to the configuration.
func (c *Config) Compile(m *ir.Module) error {
	return c.CompileObserved(m, nil)
}

// CompileObserved optimizes like Compile while reporting every executed
// pass instance to obs (nil disables observation; internal/trace provides
// the profiling/provenance observer).
func (c *Config) CompileObserved(m *ir.Module, obs opt.Observer) error {
	if err := opt.ObservedPipeline(m, c.opts, c.schedule, c.iters, obs); err != nil {
		return fmt.Errorf("%s: %w", c.Name(), err)
	}
	return nil
}

// CompileMetered is CompileObserved with campaign telemetry attached: the
// whole middle-end run is timed into reg's "phase.opt" histogram and an
// opt.MetricsObserver is chained after obs, feeding the per-pass timing
// and changed-rate collectors. A nil registry degrades to CompileObserved
// exactly (opt.Observers drops the nil collector), so callers thread reg
// unconditionally.
func (c *Config) CompileMetered(m *ir.Module, obs opt.Observer, reg *metrics.Registry) error {
	if reg == nil {
		return c.CompileObserved(m, obs)
	}
	defer reg.Time(metrics.PhaseOpt)()
	return c.CompileObserved(m, opt.Observers(obs, opt.MetricsObserver(reg)))
}

// CompileProbed is CompileMetered with a phase probe observing the
// middle-end run's own wall-clock extent (the span timeline's "opt" phase
// span). A nil probe degrades to CompileMetered exactly.
func (c *Config) CompileProbed(m *ir.Module, obs opt.Observer, reg *metrics.Registry, probe metrics.PhaseProbe) error {
	start := probe.Start()
	err := c.CompileMetered(m, obs, reg)
	probe.Observe(metrics.PhaseOpt, start)
	return err
}

// New returns the personality at the latest version for the given level.
func New(p Personality, lvl Level) *Config {
	return AtCommit(p, lvl, len(History(p)))
}

// AtCommit returns the personality as of the first `commits` history
// entries (0 = the pre-history base). Bisection walks this.
func AtCommit(p Personality, lvl Level, commits int) *Config {
	b := baseBuild(p)
	h := History(p)
	if commits > len(h) {
		commits = len(h)
	}
	for _, c := range h[:commits] {
		c.Apply(&b)
	}
	cfg := assemble(p, lvl, b)
	cfg.CommitIndex = commits
	return cfg
}

// FutureConfig returns the personality with the post-release fixes of
// FutureFixes applied on top of the full history. The triage model uses it
// to decide which reported missed optimizations count as "fixed" (Table 5).
func FutureConfig(p Personality, lvl Level) *Config {
	b := baseBuild(p)
	for _, c := range History(p) {
		c.Apply(&b)
	}
	for _, c := range FutureFixes(p) {
		c.Apply(&b)
	}
	cfg := assemble(p, lvl, b)
	cfg.CommitIndex = len(History(p)) + len(FutureFixes(p))
	return cfg
}

// Build is the mutable state a commit history evolves: the option knobs and
// the scheduling flags that differ between versions.
type Build struct {
	Opts opt.Options

	// Schedule shaping.
	UnswitchAtO3        bool // run loop unswitching in the -O3 pipeline
	UnswitchEarly       bool // ...in the early loop pipeline, with freeze (regression)
	WidenAtO3           bool // "vectorize" pointer loop stores at -O3
	AliasO3Conservative bool // degrade alias precision at -O3 (regression)
	KeepSRAAtO3         bool // keep argument-promotion clones at -O3
	JumpThreadAtO2      bool
	InlineBudget        int
	UnrollTrips         int
}

// assemble produces the concrete Config for a level from a Build.
func assemble(p Personality, lvl Level, b Build) *Config {
	c := &Config{Personality: p, Level: lvl}
	o := b.Opts

	switch lvl {
	case O0:
		// Frontends fold constant expressions even at -O0; nothing else.
		o = opt.Options{}
		c.schedule = []opt.Pass{opt.InstCombine, opt.SimplifyCFG}
		c.iters = 1

	case O1:
		o.InlineBudget = 0
		o.UnrollMaxTrip = 0
		o.WidenPointerLoopStores = false
		o.AggressiveUnswitch = false
		o.KeepSRAClones = false
		c.schedule = []opt.Pass{
			opt.Mem2Reg, opt.IPSCCP, opt.SCCP, opt.InstCombine, opt.SimplifyCFG,
			opt.GVN, opt.InstCombine, opt.SimplifyCFG, opt.DSE, opt.DCE,
			opt.SimplifyCFG, opt.GlobalDCE,
		}
		c.iters = 1

	case Os:
		o.InlineBudget = b.InlineBudget / 2
		o.UnrollMaxTrip = 0
		o.WidenPointerLoopStores = false
		o.AggressiveUnswitch = false
		o.KeepSRAClones = false
		c.schedule = midSchedule(b)
		c.iters = 2

	case O2:
		o.InlineBudget = b.InlineBudget
		o.UnrollMaxTrip = 0
		o.WidenPointerLoopStores = false
		o.AggressiveUnswitch = false
		o.KeepSRAClones = false
		c.schedule = midSchedule(b)
		c.iters = 2

	case O3:
		o.InlineBudget = b.InlineBudget * 2
		o.UnrollMaxTrip = b.UnrollTrips
		o.WidenPointerLoopStores = b.WidenAtO3
		o.AggressiveUnswitch = b.UnswitchEarly
		o.KeepSRAClones = b.KeepSRAAtO3
		if b.AliasO3Conservative {
			o.Alias = opt.AliasConservative
		}
		c.schedule = midSchedule(b)
		if b.WidenAtO3 {
			// The widening runs before GVN would forward the stores,
			// mirroring the vectorizer's position in GCC's -O3 pipeline.
			c.schedule = append([]opt.Pass{opt.Mem2Reg, opt.WidenStores}, c.schedule...)
		}
		if b.UnswitchAtO3 && b.UnswitchEarly {
			// Regressed placement (paper Listings 7/8a): non-trivial
			// unswitching runs in the early loop pipeline, before the
			// interprocedural constant propagation that would have folded
			// the condition; the freeze it inserts blocks folding forever.
			c.schedule = append([]opt.Pass{opt.Mem2Reg, opt.LICM, opt.Unswitch}, c.schedule...)
		}
		c.schedule = append(c.schedule, opt.Unroll, opt.SCCP, opt.InstCombine, opt.SimplifyCFG, opt.GVN, opt.DCE, opt.SimplifyCFG)
		if b.UnswitchAtO3 && !b.UnswitchEarly {
			// Healthy placement: unswitch after the main simplification,
			// with a cleanup round behind it.
			c.schedule = append(c.schedule, opt.Unswitch, opt.Mem2Reg, opt.SCCP, opt.InstCombine, opt.SimplifyCFG, opt.DCE)
		}
		c.schedule = append(c.schedule, opt.GlobalDCE)
		c.iters = 2
	}

	// Every optimizing level opens with the early compaction pass: folding
	// frontend debris and dropping orphan blocks up front shrinks the IR
	// every later pass iterates over. -O0 deliberately omits it — its tiny
	// schedule is the paper's "no optimization" baseline.
	if lvl != O0 {
		c.schedule = append([]opt.Pass{opt.Compact}, c.schedule...)
	}

	c.opts = o
	return c
}

// midSchedule is the shared -Os/-O2/-O3 core schedule.
func midSchedule(b Build) []opt.Pass {
	s := []opt.Pass{
		opt.Mem2Reg, opt.IPSCCP, opt.SCCP, opt.InstCombine, opt.SimplifyCFG,
		opt.Inline, opt.LocalizeGlobals, opt.Mem2Reg, opt.SCCP, opt.InstCombine, opt.SimplifyCFG,
	}
	if b.JumpThreadAtO2 {
		s = append(s, opt.JumpThread)
	}
	s = append(s,
		opt.VRP, opt.LICM, opt.GVN, opt.DSE, opt.DCE, opt.SimplifyCFG, opt.GlobalDCE,
	)
	return s
}
