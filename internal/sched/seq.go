package sched

import (
	"fmt"
	"sync"
	"time"
)

// Sequencer is a reorder buffer for side effects: work completes in any
// order, but the flush actions handed to Done run strictly in slot order
// (0, 1, 2, ...). The corpus layer gives every seed a contiguous block of
// slots — one per event batch — and routes all event-log emissions and
// live-progress appends through flushes, so the campaign's observable
// stream is identical no matter how the scheduler interleaved the work.
//
// Done never blocks waiting for earlier slots: a completion ahead of the
// frontier parks its action and returns; the completion that fills the gap
// runs every action the frontier can now reach, on its own goroutine.
// Actions therefore run serially and in order, under the sequencer's lock.
type Sequencer struct {
	// Stall, when non-nil, observes every reorder-buffer stall: a slot
	// that completed ahead of the frontier and had to park reports how
	// long it sat between parking and flushing. Called under the
	// sequencer's lock, in flush order; set before the first Done.
	Stall func(slot int, parked, flushed time.Time)

	mu      sync.Mutex
	next    int
	pending map[int]func()
	parked  map[int]time.Time
}

// NewSequencer returns a sequencer with its frontier at slot 0.
func NewSequencer() *Sequencer {
	return &Sequencer{pending: map[int]func(){}, parked: map[int]time.Time{}}
}

// Done marks slot complete with an optional flush action (nil just
// advances the frontier). Each slot must be completed exactly once;
// completing a slot twice, or one the frontier has passed, panics — that
// is a slot-accounting bug, not a runtime condition.
func (s *Sequencer) Done(slot int, flush func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot < s.next {
		panic(fmt.Sprintf("sched: sequencer: slot %d completed after being flushed", slot))
	}
	if _, dup := s.pending[slot]; dup {
		panic(fmt.Sprintf("sched: sequencer: slot %d completed twice", slot))
	}
	s.pending[slot] = flush
	if s.Stall != nil && slot != s.next {
		s.parked[slot] = time.Now()
	}
	for {
		f, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		if t, stalled := s.parked[s.next]; stalled {
			delete(s.parked, s.next)
			s.Stall(s.next, t, time.Now())
		}
		s.next++
		if f != nil {
			f()
		}
	}
}

// Flushed returns the frontier: the number of leading slots whose actions
// have run.
func (s *Sequencer) Flushed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}
