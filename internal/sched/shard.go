package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard selects a deterministic slice of a corpus: of Count cooperating
// processes, this one runs the seed indices congruent to Index modulo
// Count. The zero value (and any Count <= 1) is the unsharded campaign.
// Striping by index rather than by contiguous range keeps every shard's
// workload statistically identical, so equal-sized shards finish together.
type Shard struct {
	Index int
	Count int
}

// ParseShard parses an "index/count" spec, e.g. "0/2". Index must be in
// [0, count) and count at least 1.
func ParseShard(spec string) (Shard, error) {
	is, ns, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sched: shard %q: want index/count (e.g. 0/2)", spec)
	}
	i, err := strconv.Atoi(is)
	if err != nil {
		return Shard{}, fmt.Errorf("sched: shard %q: bad index: %v", spec, err)
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return Shard{}, fmt.Errorf("sched: shard %q: bad count: %v", spec, err)
	}
	if n < 1 {
		return Shard{}, fmt.Errorf("sched: shard %q: count must be at least 1", spec)
	}
	if i < 0 || i >= n {
		return Shard{}, fmt.Errorf("sched: shard %q: index must be in [0, %d)", spec, n)
	}
	return Shard{Index: i, Count: n}, nil
}

// Sharded reports whether the shard selects a proper slice (count > 1).
func (s Shard) Sharded() bool { return s.Count > 1 }

// Member reports whether corpus index i belongs to this shard. The
// unsharded shard owns every index.
func (s Shard) Member(i int) bool {
	if s.Count <= 1 {
		return true
	}
	return i%s.Count == s.Index
}

// Size returns how many of the corpus indices 0..n-1 this shard owns.
func (s Shard) Size(n int) int {
	if n <= 0 {
		return 0
	}
	if s.Count <= 1 {
		return n
	}
	size := n / s.Count
	if s.Index < n%s.Count {
		size++
	}
	return size
}

// String renders the canonical spec form; the unsharded shard is "0/1".
func (s Shard) String() string {
	if s.Count <= 1 {
		return "0/1"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}
