package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEngineRunsEveryStage: each job's prepare runs before its units, every
// unit runs exactly once, and finalize runs after the last unit — across
// worker counts, including more workers than jobs.
func TestEngineRunsEveryStage(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 32} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const jobs, units = 9, 5
			prepared := make([]atomic.Bool, jobs)
			unitRuns := make([][]atomic.Int32, jobs)
			finalized := make([]atomic.Int32, jobs)
			for i := range unitRuns {
				unitRuns[i] = make([]atomic.Int32, units)
			}
			err := Run(workers, jobs, func(i int) *Job {
				return &Job{
					Prepare: func(int) (int, error) {
						prepared[i].Store(true)
						return units, nil
					},
					Unit: func(_, u int) error {
						if !prepared[i].Load() {
							t.Errorf("job %d unit %d ran before prepare", i, u)
						}
						unitRuns[i][u].Add(1)
						return nil
					},
					Finalize: func(int) error {
						for u := range unitRuns[i] {
							if n := unitRuns[i][u].Load(); n != 1 {
								t.Errorf("job %d finalize saw unit %d run %d times", i, u, n)
							}
						}
						finalized[i].Add(1)
						return nil
					},
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range finalized {
				if n := finalized[i].Load(); n != 1 {
					t.Errorf("job %d finalized %d times, want 1", i, n)
				}
			}
		})
	}
}

// TestEngineZeroUnits: a prepare that returns 0 units skips straight to
// finalize (the checkpoint-restored-seed shape).
func TestEngineZeroUnits(t *testing.T) {
	var finalized atomic.Int32
	err := Run(2, 3, func(i int) *Job {
		return &Job{
			Prepare:  func(int) (int, error) { return 0, nil },
			Unit:     func(_, u int) error { t.Errorf("job %d ran unit %d", i, u); return nil },
			Finalize: func(int) error { finalized.Add(1); return nil },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalized.Load() != 3 {
		t.Fatalf("finalized %d jobs, want 3", finalized.Load())
	}
}

// TestEngineWorkerBound: no more than the requested number of items
// executes concurrently.
func TestEngineWorkerBound(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	err := Run(workers, 8, func(i int) *Job {
		busy := func() {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}
		return &Job{
			Prepare:  func(int) (int, error) { busy(); return 2, nil },
			Unit:     func(int, int) error { busy(); return nil },
			Finalize: func(int) error { busy(); return nil },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestEngineErrorIsolation: a failing job skips its own finalize but does
// not disturb the other jobs; Run reports the first failure in job order.
func TestEngineErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	var finals sync.Map
	err := Run(4, 6, func(i int) *Job {
		return &Job{
			Prepare: func(int) (int, error) { return 2, nil },
			Unit: func(_, u int) error {
				if i == 3 && u == 1 {
					return fmt.Errorf("job %d: %w", i, boom)
				}
				return nil
			},
			Finalize: func(int) error { finals.Store(i, true); return nil },
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want the injected failure", err)
	}
	for i := 0; i < 6; i++ {
		_, ok := finals.Load(i)
		if i == 3 && ok {
			t.Error("failed job 3 still finalized")
		}
		if i != 3 && !ok {
			t.Errorf("healthy job %d did not finalize", i)
		}
	}
}

// TestEngineWorkerDeath: a unit that panics (a worker dying mid-unit) is
// contained — the engine converts it to that job's error, every other job
// completes, and the pool drains without deadlock.
func TestEngineWorkerDeath(t *testing.T) {
	var finalized atomic.Int32
	err := Run(4, 8, func(i int) *Job {
		return &Job{
			Prepare: func(int) (int, error) { return 3, nil },
			Unit: func(_, u int) error {
				if i == 2 && u == 1 {
					panic("worker died mid-unit")
				}
				return nil
			},
			Finalize: func(int) error { finalized.Add(1); return nil },
		}
	})
	if err == nil || !strings.Contains(err.Error(), "panic: worker died mid-unit") {
		t.Fatalf("Run error = %v, want the recovered panic", err)
	}
	if !strings.Contains(err.Error(), "job 2") {
		t.Fatalf("Run error = %v, want the failing job named", err)
	}
	if finalized.Load() != 7 {
		t.Fatalf("finalized %d jobs, want 7 (all but the dead one)", finalized.Load())
	}
}

// TestEnginePrepareError: a failing prepare skips the job's units and
// finalize entirely.
func TestEnginePrepareError(t *testing.T) {
	boom := errors.New("prepare failed")
	var units, finals atomic.Int32
	err := Run(2, 4, func(i int) *Job {
		return &Job{
			Prepare: func(int) (int, error) {
				if i == 1 {
					return 5, boom
				}
				return 1, nil
			},
			Unit: func(int, int) error {
				units.Add(1)
				return nil
			},
			Finalize: func(int) error { finals.Add(1); return nil },
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want prepare failure", err)
	}
	if units.Load() != 3 || finals.Load() != 3 {
		t.Fatalf("units=%d finals=%d, want 3 each (failed job fully skipped)", units.Load(), finals.Load())
	}
}

// TestEngineFirstErrorInJobOrder: with several failures, Run reports the
// lowest-numbered job's error, matching what a serial loop would surface.
func TestEngineFirstErrorInJobOrder(t *testing.T) {
	err := Run(4, 6, func(i int) *Job {
		return &Job{
			Prepare: func(int) (int, error) { return 1, nil },
			Unit: func(int, int) error {
				if i%2 == 1 {
					return fmt.Errorf("job %d failed", i)
				}
				return nil
			},
			Finalize: func(int) error { return nil },
		}
	})
	if err == nil || err.Error() != "job 1 failed" {
		t.Fatalf("Run error = %v, want job 1's (first in job order)", err)
	}
}

// TestSequencerOrder: flush actions run in slot order even when slots
// complete in a shuffled order from many goroutines.
func TestSequencerOrder(t *testing.T) {
	const slots = 200
	s := NewSequencer()
	order := rand.New(rand.NewSource(7)).Perm(slots)
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	for _, slot := range order {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			if slot%3 == 0 {
				s.Done(slot, nil) // nil actions advance the frontier too
				return
			}
			s.Done(slot, func() {
				mu.Lock()
				got = append(got, slot)
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	if s.Flushed() != slots {
		t.Fatalf("frontier = %d, want %d", s.Flushed(), slots)
	}
	want := 0
	for _, slot := range got {
		for want%3 == 0 {
			want++ // nil slots recorded nothing
		}
		if slot != want {
			t.Fatalf("flush order %v... broke at slot %d (want %d)", got[:5], slot, want)
		}
		want++
	}
}

// TestSequencerDoubleCompletePanics: completing a slot twice is a bug the
// sequencer refuses to absorb silently.
func TestSequencerDoubleCompletePanics(t *testing.T) {
	s := NewSequencer()
	s.Done(1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second Done(1) did not panic")
		}
	}()
	s.Done(1, nil)
}

// TestParseShard covers the accepted and rejected spec forms.
func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"0/1": {0, 1},
		"0/2": {0, 2},
		"1/2": {1, 2},
		"7/8": {7, 8},
	}
	for spec, want := range good {
		got, err := ParseShard(spec)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	for _, spec := range []string{"", "3", "3/2", "2/2", "-1/2", "0/0", "0/-1", "a/2", "0/b", "1/2/3"} {
		if _, err := ParseShard(spec); err == nil {
			t.Errorf("ParseShard(%q) accepted, want error", spec)
		}
	}
}

// TestShardPartition: every corpus index belongs to exactly one shard, and
// Size agrees with Member.
func TestShardPartition(t *testing.T) {
	const n = 103
	for _, count := range []int{1, 2, 3, 7} {
		total := 0
		owned := make([]int, n)
		for idx := 0; idx < count; idx++ {
			s := Shard{Index: idx, Count: count}
			size := 0
			for i := 0; i < n; i++ {
				if s.Member(i) {
					owned[i]++
					size++
				}
			}
			if got := s.Size(n); got != size {
				t.Errorf("shard %s: Size(%d) = %d, want %d", s, n, got, size)
			}
			total += size
		}
		if total != n {
			t.Errorf("count=%d: shard sizes sum to %d, want %d", count, total, n)
		}
		for i, c := range owned {
			if c != 1 {
				t.Fatalf("count=%d: index %d owned by %d shards", count, i, c)
			}
		}
	}
	var zero Shard
	if !zero.Member(5) || zero.Size(10) != 10 || zero.Sharded() || zero.String() != "0/1" {
		t.Error("zero shard must behave as the unsharded campaign")
	}
}

// probeRecord is one ItemRun observation.
type probeRecord struct {
	worker, job, unit int
	ready, start, end time.Time
}

type recordingProbe struct {
	mu    sync.Mutex
	items []probeRecord
	idles int
}

func (p *recordingProbe) ItemRun(worker, job, unit int, ready, start, end time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.items = append(p.items, probeRecord{worker, job, unit, ready, start, end})
}

func (p *recordingProbe) WorkerIdle(worker int, start, end time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.idles++
}

// TestPoolProbe: every scheduled item (prepare, each unit, finalize) is
// reported exactly once with sane timestamps, and worker indexes stay in
// range.
func TestPoolProbe(t *testing.T) {
	const jobs, units, workers = 4, 3, 2
	probe := &recordingProbe{}
	err := Pool{Workers: workers, Probe: probe}.Run(jobs, func(i int) *Job {
		return &Job{
			Prepare:  func(int) (int, error) { time.Sleep(time.Millisecond); return units, nil },
			Unit:     func(int, int) error { time.Sleep(time.Millisecond); return nil },
			Finalize: func(int) error { return nil },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]int{}
	for _, it := range probe.items {
		if it.worker < 0 || it.worker >= workers {
			t.Errorf("worker %d out of range", it.worker)
		}
		if it.start.Before(it.ready) || it.end.Before(it.start) {
			t.Errorf("item %+v: want ready <= start <= end", it)
		}
		seen[[2]int{it.job, it.unit}]++
	}
	for j := 0; j < jobs; j++ {
		stages := []int{PrepareStage, FinalizeStage, 0, 1, 2}
		for _, u := range stages {
			if n := seen[[2]int{j, u}]; n != 1 {
				t.Errorf("job %d stage %d reported %d times, want 1", j, u, n)
			}
		}
	}
	if len(probe.items) != jobs*(units+2) {
		t.Errorf("items = %d, want %d", len(probe.items), jobs*(units+2))
	}
}

// TestSequencerStall: the Stall hook fires for slots that completed ahead
// of the frontier and stays silent for slots flushed immediately.
func TestSequencerStall(t *testing.T) {
	s := NewSequencer()
	var mu sync.Mutex
	stalled := map[int]time.Duration{}
	s.Stall = func(slot int, parked, flushed time.Time) {
		mu.Lock()
		defer mu.Unlock()
		stalled[slot] = flushed.Sub(parked)
	}
	s.Done(2, nil) // parks behind slots 0 and 1
	s.Done(1, nil) // parks behind slot 0
	time.Sleep(2 * time.Millisecond)
	s.Done(0, nil) // in order: flushes 0,1,2; never parked itself
	if s.Flushed() != 3 {
		t.Fatalf("frontier = %d, want 3", s.Flushed())
	}
	if _, ok := stalled[0]; ok {
		t.Error("slot 0 flushed at the frontier; must not report a stall")
	}
	for _, slot := range []int{1, 2} {
		d, ok := stalled[slot]
		if !ok {
			t.Errorf("slot %d parked but reported no stall", slot)
		} else if d < time.Millisecond {
			t.Errorf("slot %d stall = %v, want >= ~2ms of parking", slot, d)
		}
	}
}
