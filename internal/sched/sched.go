// Package sched is the campaign's parallel execution engine: a pull-based
// scheduler that runs fork-join jobs on a bounded worker pool while keeping
// every observable output in a deterministic order.
//
// The corpus layer decomposes a campaign into one Job per seed: Prepare
// builds the program (or restores it from a checkpoint), each Unit compiles
// one (personality, level) configuration, and Finalize merges the units
// into the seed's outcome. The engine schedules all of it on N workers;
// the Sequencer (seq.go) then releases side effects — event-log emissions,
// live-progress appends — in corpus order regardless of completion order,
// which is what makes a parallel run byte-identical to a serial one.
//
// Design rules:
//
//   - Pull, don't push: workers take the lowest-ordered ready item from a
//     shared priority queue. Ordering the queue by (job, stage) keeps the
//     in-flight window dense, so the Sequencer's reorder buffer stays small.
//   - Fork-join per job: a job's units only become ready once its Prepare
//     returns, and its Finalize runs exactly once, after its last unit, on
//     the worker that finished it. The engine's lock provides the
//     happens-before edges, so per-job state needs no further synchronization.
//   - Contain failures: a panic or error in any stage fails that job alone;
//     the other jobs run to completion and Run reports the first failed
//     job's error (in job order, matching a serial loop). A dying worker
//     can therefore never deadlock or abort the campaign.
package sched

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
)

// Job is one fork-join work stream. Prepare reports how many units follow
// (0 skips straight to Finalize); each Unit call receives its index in
// [0, units); Finalize runs after the last unit completes. A stage that
// returns an error (or panics) fails the job: its remaining stages are
// skipped, and Run returns the error.
type Job struct {
	Prepare  func() (units int, err error)
	Unit     func(u int) error
	Finalize func() error
}

// prepareStage orders a job's prepare item ahead of its units in the ready
// queue.
const prepareStage = -1

// item is one ready queue entry: a job's prepare (unit == prepareStage) or
// one of its units.
type item struct {
	job  int
	unit int
}

// itemHeap orders ready items by (job, stage): earlier jobs first, a job's
// prepare before its units. Workers always pull the item the deterministic
// output order is waiting on.
type itemHeap []item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].job != h[j].job {
		return h[i].job < h[j].job
	}
	return h[i].unit < h[j].unit
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// jobState tracks one job's progress through the engine.
type jobState struct {
	job     *Job
	pending int  // units not yet completed (valid after prepare)
	failed  bool // a stage errored or panicked; skip what remains
}

type engine struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ready  itemHeap
	active int // items currently executing on workers
	jobs   []*jobState
	errs   []error
}

// Run executes jobs 0..jobs-1, built on demand by build, on at most
// workers concurrent goroutines (workers <= 0 means GOMAXPROCS). It
// returns after every job has either finished or failed; the result is the
// first failed job's error in job order, or nil.
func Run(workers, jobs int, build func(i int) *Job) error {
	if jobs <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	e := &engine{
		jobs: make([]*jobState, jobs),
		errs: make([]error, jobs),
	}
	e.cond = sync.NewCond(&e.mu)
	e.ready = make(itemHeap, 0, jobs)
	for i := 0; i < jobs; i++ {
		e.jobs[i] = &jobState{job: build(i)}
		heap.Push(&e.ready, item{job: i, unit: prepareStage})
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.worker()
		}()
	}
	wg.Wait()
	for _, err := range e.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// worker pulls ready items until no work remains. The pool is quiescent —
// and every worker exits — exactly when the queue is empty and nothing is
// executing, since only executing items enqueue new ones.
func (e *engine) worker() {
	e.mu.Lock()
	for {
		for len(e.ready) == 0 && e.active > 0 {
			e.cond.Wait()
		}
		if len(e.ready) == 0 {
			e.mu.Unlock()
			return
		}
		it := heap.Pop(&e.ready).(item)
		e.active++
		e.mu.Unlock()
		e.run(it)
		e.mu.Lock()
		e.active--
		if e.active == 0 && len(e.ready) == 0 {
			e.cond.Broadcast()
		}
	}
}

// run executes one item outside the engine lock and requeues the work it
// unlocks: a prepared job's units, or (inline) a drained job's finalize.
func (e *engine) run(it item) {
	js := e.jobs[it.job]
	if it.unit == prepareStage {
		var units int
		err := capture(it.job, "prepare", func() (err error) {
			units, err = js.job.Prepare()
			return err
		})
		if err != nil {
			e.fail(it.job, err)
			return
		}
		if units <= 0 {
			e.finalize(it.job)
			return
		}
		e.mu.Lock()
		js.pending = units
		for u := 0; u < units; u++ {
			heap.Push(&e.ready, item{job: it.job, unit: u})
		}
		e.cond.Broadcast()
		e.mu.Unlock()
		return
	}
	err := capture(it.job, fmt.Sprintf("unit %d", it.unit), func() error {
		return js.job.Unit(it.unit)
	})
	e.mu.Lock()
	if err != nil {
		if e.errs[it.job] == nil {
			e.errs[it.job] = err
		}
		js.failed = true
	}
	js.pending--
	last := js.pending == 0
	failed := js.failed
	e.mu.Unlock()
	if last && !failed {
		e.finalize(it.job)
	}
}

// finalize runs a job's Finalize on the current worker.
func (e *engine) finalize(j int) {
	if e.jobs[j].job.Finalize == nil {
		return
	}
	if err := capture(j, "finalize", e.jobs[j].job.Finalize); err != nil {
		e.fail(j, err)
	}
}

// fail records a job's first error and marks it failed.
func (e *engine) fail(j int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.errs[j] == nil {
		e.errs[j] = err
	}
	e.jobs[j].failed = true
}

// capture runs one stage, converting a panic into an error so a dying
// worker fails its job instead of the process. (The corpus layer's harness
// already converts panics inside compilation into Failure records; this is
// the engine's own backstop for everything outside that protection.)
func capture(job int, stage string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: job %d: %s: panic: %v", job, stage, r)
		}
	}()
	return f()
}
