// Package sched is the campaign's parallel execution engine: a pull-based
// scheduler that runs fork-join jobs on a bounded worker pool while keeping
// every observable output in a deterministic order.
//
// The corpus layer decomposes a campaign into one Job per seed: Prepare
// builds the program (or restores it from a checkpoint), each Unit compiles
// one (personality, level) configuration, and Finalize merges the units
// into the seed's outcome. The engine schedules all of it on N workers;
// the Sequencer (seq.go) then releases side effects — event-log emissions,
// live-progress appends — in corpus order regardless of completion order,
// which is what makes a parallel run byte-identical to a serial one.
//
// Design rules:
//
//   - Pull, don't push: workers take the lowest-ordered ready item from a
//     shared priority queue. Ordering the queue by (job, stage) keeps the
//     in-flight window dense, so the Sequencer's reorder buffer stays small.
//   - Fork-join per job: a job's units only become ready once its Prepare
//     returns, and its Finalize runs exactly once, after its last unit, on
//     the worker that finished it. The engine's lock provides the
//     happens-before edges, so per-job state needs no further synchronization.
//   - Contain failures: a panic or error in any stage fails that job alone;
//     the other jobs run to completion and Run reports the first failed
//     job's error (in job order, matching a serial loop). A dying worker
//     can therefore never deadlock or abort the campaign.
package sched

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Job is one fork-join work stream. Prepare reports how many units follow
// (0 skips straight to Finalize); each Unit call receives its index in
// [0, units); Finalize runs after the last unit completes. Every stage
// receives the index of the worker executing it (the span timeline's
// track). A stage that returns an error (or panics) fails the job: its
// remaining stages are skipped, and Run returns the error.
type Job struct {
	Prepare  func(w int) (units int, err error)
	Unit     func(w, u int) error
	Finalize func(w int) error
}

// PrepareStage and FinalizeStage are the pseudo-unit indices a Probe sees
// for a job's prepare and finalize items. PrepareStage also orders a job's
// prepare ahead of its units in the ready queue.
const (
	PrepareStage  = -1
	FinalizeStage = -2
)

// Probe observes the engine's scheduling decisions — the raw material of
// worker-occupancy accounting and the sched spans of the timeline. An
// implementation must be safe for concurrent use; calls happen outside the
// engine lock, on the worker goroutine involved. A nil Pool.Probe costs
// nothing.
type Probe interface {
	// ItemRun reports one executed item: the worker that ran it, the job,
	// the unit index (PrepareStage / FinalizeStage for the envelope
	// stages), when the item became ready, when the worker picked it up,
	// and when it finished. ready == start for finalize items (they run
	// inline after the last unit, never queued).
	ItemRun(worker, job, unit int, ready, start, end time.Time)
	// WorkerIdle reports one idle episode: worker had nothing to run
	// between start and end.
	WorkerIdle(worker int, start, end time.Time)
}

// item is one ready queue entry: a job's prepare (unit == PrepareStage) or
// one of its units. ready is stamped only when a probe is attached.
type item struct {
	job   int
	unit  int
	ready time.Time
}

// itemHeap orders ready items by (job, stage): earlier jobs first, a job's
// prepare before its units. Workers always pull the item the deterministic
// output order is waiting on.
type itemHeap []item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].job != h[j].job {
		return h[i].job < h[j].job
	}
	return h[i].unit < h[j].unit
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// jobState tracks one job's progress through the engine.
type jobState struct {
	job     *Job
	pending int  // units not yet completed (valid after prepare)
	failed  bool // a stage errored or panicked; skip what remains
}

type engine struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ready  itemHeap
	active int // items currently executing on workers
	jobs   []*jobState
	errs   []error
	probe  Probe
}

// Pool configures an engine run: the worker bound and an optional
// scheduling probe.
type Pool struct {
	// Workers bounds parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Probe, when non-nil, observes every executed item and idle episode.
	Probe Probe
}

// Run executes jobs 0..jobs-1, built on demand by build, on at most
// Workers concurrent goroutines. It returns after every job has either
// finished or failed; the result is the first failed job's error in job
// order, or nil.
func (p Pool) Run(jobs int, build func(i int) *Job) error {
	if jobs <= 0 {
		return nil
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	e := &engine{
		jobs:  make([]*jobState, jobs),
		errs:  make([]error, jobs),
		probe: p.Probe,
	}
	e.cond = sync.NewCond(&e.mu)
	e.ready = make(itemHeap, 0, jobs)
	var ready time.Time
	if e.probe != nil {
		ready = time.Now()
	}
	for i := 0; i < jobs; i++ {
		e.jobs[i] = &jobState{job: build(i)}
		heap.Push(&e.ready, item{job: i, unit: PrepareStage, ready: ready})
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.worker(w)
		}(w)
	}
	wg.Wait()
	for _, err := range e.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes jobs on an unprobed pool — the plain form most callers use.
func Run(workers, jobs int, build func(i int) *Job) error {
	return Pool{Workers: workers}.Run(jobs, build)
}

// worker pulls ready items until no work remains. The pool is quiescent —
// and every worker exits — exactly when the queue is empty and nothing is
// executing, since only executing items enqueue new ones.
func (e *engine) worker(w int) {
	e.mu.Lock()
	for {
		var idleStart time.Time
		for len(e.ready) == 0 && e.active > 0 {
			if e.probe != nil && idleStart.IsZero() {
				idleStart = time.Now()
			}
			e.cond.Wait()
		}
		if len(e.ready) == 0 {
			e.mu.Unlock()
			if !idleStart.IsZero() {
				e.probe.WorkerIdle(w, idleStart, time.Now())
			}
			return
		}
		it := heap.Pop(&e.ready).(item)
		e.active++
		e.mu.Unlock()
		if !idleStart.IsZero() {
			e.probe.WorkerIdle(w, idleStart, time.Now())
		}
		e.run(it, w)
		e.mu.Lock()
		e.active--
		if e.active == 0 && len(e.ready) == 0 {
			e.cond.Broadcast()
		}
	}
}

// run executes one item outside the engine lock and requeues the work it
// unlocks: a prepared job's units, or (inline) a drained job's finalize.
func (e *engine) run(it item, w int) {
	js := e.jobs[it.job]
	var start time.Time
	if e.probe != nil {
		start = time.Now()
	}
	if it.unit == PrepareStage {
		var units int
		err := capture(it.job, "prepare", func() (err error) {
			units, err = js.job.Prepare(w)
			return err
		})
		if e.probe != nil {
			e.probe.ItemRun(w, it.job, PrepareStage, it.ready, start, time.Now())
		}
		if err != nil {
			e.fail(it.job, err)
			return
		}
		if units <= 0 {
			e.finalize(it.job, w)
			return
		}
		var ready time.Time
		if e.probe != nil {
			ready = time.Now()
		}
		e.mu.Lock()
		js.pending = units
		for u := 0; u < units; u++ {
			heap.Push(&e.ready, item{job: it.job, unit: u, ready: ready})
		}
		e.cond.Broadcast()
		e.mu.Unlock()
		return
	}
	err := capture(it.job, fmt.Sprintf("unit %d", it.unit), func() error {
		return js.job.Unit(w, it.unit)
	})
	if e.probe != nil {
		e.probe.ItemRun(w, it.job, it.unit, it.ready, start, time.Now())
	}
	e.mu.Lock()
	if err != nil {
		if e.errs[it.job] == nil {
			e.errs[it.job] = err
		}
		js.failed = true
	}
	js.pending--
	last := js.pending == 0
	failed := js.failed
	e.mu.Unlock()
	if last && !failed {
		e.finalize(it.job, w)
	}
}

// finalize runs a job's Finalize on the current worker.
func (e *engine) finalize(j, w int) {
	if e.jobs[j].job.Finalize == nil {
		return
	}
	var start time.Time
	if e.probe != nil {
		start = time.Now()
	}
	err := capture(j, "finalize", func() error { return e.jobs[j].job.Finalize(w) })
	if e.probe != nil {
		e.probe.ItemRun(w, j, FinalizeStage, start, start, time.Now())
	}
	if err != nil {
		e.fail(j, err)
	}
}

// fail records a job's first error and marks it failed.
func (e *engine) fail(j int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.errs[j] == nil {
		e.errs[j] = err
	}
	e.jobs[j].failed = true
}

// capture runs one stage, converting a panic into an error so a dying
// worker fails its job instead of the process. (The corpus layer's harness
// already converts panics inside compilation into Failure records; this is
// the engine's own backstop for everything outside that protection.)
func capture(job int, stage string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: job %d: %s: panic: %v", job, stage, r)
		}
	}()
	return f()
}
