package lower

import (
	"fmt"

	"dcelens/internal/ast"
	"dcelens/internal/ir"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// fnLowerer lowers one function body.
type fnLowerer struct {
	lo   *lowerer
	fn   *ir.Func
	decl *ast.FuncDecl

	entry *ir.Block // holds allocas and parameter spills; jumps to body
	cur   *ir.Block

	vars map[*ast.VarDecl]*ir.Instr // local/param -> alloca

	// break/continue targets, innermost last.
	breaks    []*ir.Block
	continues []*ir.Block
}

func (lo *lowerer) function(d *ast.FuncDecl) error {
	fl := &fnLowerer{
		lo:   lo,
		fn:   lo.funcs[d],
		decl: d,
		vars: map[*ast.VarDecl]*ir.Instr{},
	}
	return fl.run()
}

func (fl *fnLowerer) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(lowerError); ok {
				err = fmt.Errorf("lower: %s: %s", fl.fn.Name, string(le))
				return
			}
			panic(r)
		}
	}()

	fl.entry = fl.fn.NewBlock()
	body := fl.fn.NewBlock()
	fl.cur = body

	// Spill parameters into allocas so that the body can treat them like
	// any other local; mem2reg promotes them back.
	for i, p := range fl.decl.Params {
		a := fl.alloca(p)
		pv := fl.entry.Append(ir.OpParam, p.Typ)
		pv.ParamIdx = i
		fl.entry.Append(ir.OpStore, nil, a, pv)
	}

	fl.stmt(fl.decl.Body)

	// Implicit return: falling off the end returns 0 (MiniC definition).
	if fl.cur.Term() == nil {
		fl.emitDefaultReturn()
	}
	// Close any other unterminated blocks the same way (created after
	// returns/breaks for unreachable source tails).
	for _, b := range fl.fn.Blocks {
		if b == fl.entry {
			continue
		}
		if b.Term() == nil {
			saved := fl.cur
			fl.cur = b
			fl.emitDefaultReturn()
			fl.cur = saved
		}
	}
	fl.entry.Append(ir.OpBr, nil).Targets = []*ir.Block{body}

	fl.fn.RecomputePreds()
	return nil
}

type lowerError string

func (fl *fnLowerer) errorf(format string, args ...any) {
	panic(lowerError(fmt.Sprintf(format, args...)))
}

func (fl *fnLowerer) emitDefaultReturn() {
	switch {
	case fl.fn.Ret.Kind == types.Void:
		fl.cur.Append(ir.OpRet, nil)
	case fl.fn.Ret.Kind == types.Pointer:
		n := fl.cur.Append(ir.OpNull, fl.fn.Ret)
		fl.cur.Append(ir.OpRet, nil, n)
	default:
		z := fl.iconst(0, fl.fn.Ret)
		fl.cur.Append(ir.OpRet, nil, z)
	}
}

// alloca creates (in the entry block) the stack slot for d.
func (fl *fnLowerer) alloca(d *ast.VarDecl) *ir.Instr {
	count := 1
	elem := d.Typ
	if d.Typ.Kind == types.Array {
		count = d.Typ.Len
		elem = d.Typ.Elem
	}
	a := fl.entry.NewInstr(ir.OpAlloca, types.PointerTo(elem))
	a.Count = count
	// Allocas go at the head of the entry block, before parameter spills.
	fl.entry.Instrs = append([]*ir.Instr{a}, fl.entry.Instrs...)
	fl.vars[d] = a
	return a
}

func (fl *fnLowerer) iconst(v int64, t *types.Type) *ir.Instr {
	c := fl.cur.Append(ir.OpConst, t)
	c.IntVal = t.WrapValue(v)
	return c
}

// emit appends an instruction to the current block.
func (fl *fnLowerer) emit(op ir.Op, t *types.Type, args ...*ir.Instr) *ir.Instr {
	return fl.cur.Append(op, t, args...)
}

// br terminates the current block with an unconditional jump (if it is not
// already terminated) and makes target the current block.
func (fl *fnLowerer) br(target *ir.Block) {
	if fl.cur.Term() == nil {
		fl.emit(ir.OpBr, nil).Targets = []*ir.Block{target}
	}
	fl.cur = target
}

// jump emits a jump to target and switches to a fresh unreachable block
// (for source code following a return/break/continue).
func (fl *fnLowerer) jumpAndOrphan(target *ir.Block) {
	fl.emit(ir.OpBr, nil).Targets = []*ir.Block{target}
	fl.cur = fl.fn.NewBlock()
}

// condBr branches on v.
func (fl *fnLowerer) condBr(v *ir.Instr, t, f *ir.Block) {
	cb := fl.emit(ir.OpCondBr, nil, v)
	cb.Targets = []*ir.Block{t, f}
}

// ---------------------------------------------------------------------------
// Statements

func (fl *fnLowerer) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			fl.stmt(st)
		}
	case *ast.Empty:
	case *ast.DeclStmt:
		fl.declStmt(s.Decl)
	case *ast.ExprStmt:
		fl.expr(s.X)
	case *ast.If:
		fl.ifStmt(s)
	case *ast.While:
		fl.whileStmt(s)
	case *ast.DoWhile:
		fl.doWhileStmt(s)
	case *ast.For:
		fl.forStmt(s)
	case *ast.Return:
		if s.X != nil {
			v := fl.expr(s.X)
			fl.emit(ir.OpRet, nil, v)
		} else {
			fl.emit(ir.OpRet, nil)
		}
		fl.cur = fl.fn.NewBlock() // unreachable continuation
	case *ast.Break:
		if len(fl.breaks) == 0 {
			fl.errorf("break outside loop/switch")
		}
		fl.jumpAndOrphan(fl.breaks[len(fl.breaks)-1])
	case *ast.Continue:
		if len(fl.continues) == 0 {
			fl.errorf("continue outside loop")
		}
		fl.jumpAndOrphan(fl.continues[len(fl.continues)-1])
	case *ast.Switch:
		fl.switchStmt(s)
	default:
		fl.errorf("unknown statement %T", s)
	}
}

func (fl *fnLowerer) declStmt(d *ast.VarDecl) {
	if d.Storage == ast.StorageStatic {
		// Hoisted to a module global; initialization happened at load time.
		return
	}
	a, ok := fl.vars[d]
	if !ok {
		a = fl.alloca(d)
	}
	// Initialize at the declaration point: MiniC defines locals to start
	// from zero, and a declaration inside a loop re-initializes on every
	// iteration (matching the interpreter's fresh-object semantics).
	if arr, ok := d.Init.(*ast.ArrayInit); ok {
		for i := 0; i < d.Typ.Len; i++ {
			idx := fl.iconst(int64(i), types.I64Type)
			slot := fl.emit(ir.OpGEP, a.Typ, a, idx)
			var v *ir.Instr
			if i < len(arr.Elems) {
				v = fl.expr(arr.Elems[i])
			} else {
				v = fl.zeroValue(d.Typ.Elem)
			}
			fl.emit(ir.OpStore, nil, slot, v)
		}
		return
	}
	var v *ir.Instr
	if d.Init != nil {
		v = fl.expr(d.Init)
	} else if d.Typ.Kind == types.Array {
		// Uninitialized array: zero every slot.
		for i := 0; i < d.Typ.Len; i++ {
			idx := fl.iconst(int64(i), types.I64Type)
			slot := fl.emit(ir.OpGEP, a.Typ, a, idx)
			fl.emit(ir.OpStore, nil, slot, fl.zeroValue(d.Typ.Elem))
		}
		return
	} else {
		v = fl.zeroValue(d.Typ)
	}
	fl.emit(ir.OpStore, nil, a, v)
}

func (fl *fnLowerer) zeroValue(t *types.Type) *ir.Instr {
	if t.Kind == types.Pointer {
		return fl.emit(ir.OpNull, t)
	}
	return fl.iconst(0, t)
}

func (fl *fnLowerer) ifStmt(s *ast.If) {
	// Literal conditions are lowered as condbr-on-constant rather than
	// folded here: every schedule (including -O0, where real C frontends
	// fold and compilers still eliminate ~15% of dead blocks) opens with
	// instcombine+simplifycfg, which folds them. Keeping the fold in the
	// pipeline lets the trace attribute these eliminations to a pass.
	thenB := fl.fn.NewBlock()
	joinB := fl.fn.NewBlock()
	elseB := joinB
	if s.Else != nil {
		elseB = fl.fn.NewBlock()
	}
	fl.condBranch(s.Cond, thenB, elseB)
	fl.cur = thenB
	fl.stmt(s.Then)
	fl.br(joinB)
	if s.Else != nil {
		fl.cur = elseB
		fl.stmt(s.Else)
		fl.br(joinB)
	}
	fl.cur = joinB
}

func (fl *fnLowerer) whileStmt(s *ast.While) {
	header := fl.fn.NewBlock()
	body := fl.fn.NewBlock()
	exit := fl.fn.NewBlock()
	fl.br(header)
	fl.condBranch(s.Cond, body, exit)
	fl.cur = body
	fl.breaks = append(fl.breaks, exit)
	fl.continues = append(fl.continues, header)
	fl.stmt(s.Body)
	fl.breaks = fl.breaks[:len(fl.breaks)-1]
	fl.continues = fl.continues[:len(fl.continues)-1]
	fl.br(header)
	fl.cur = exit
}

func (fl *fnLowerer) doWhileStmt(s *ast.DoWhile) {
	body := fl.fn.NewBlock()
	latch := fl.fn.NewBlock()
	exit := fl.fn.NewBlock()
	fl.br(body)
	fl.breaks = append(fl.breaks, exit)
	fl.continues = append(fl.continues, latch)
	fl.stmt(s.Body)
	fl.breaks = fl.breaks[:len(fl.breaks)-1]
	fl.continues = fl.continues[:len(fl.continues)-1]
	fl.br(latch)
	fl.condBranch(s.Cond, body, exit)
	fl.cur = exit
}

func (fl *fnLowerer) forStmt(s *ast.For) {
	if s.Init != nil {
		fl.stmt(s.Init)
	}
	header := fl.fn.NewBlock()
	body := fl.fn.NewBlock()
	latch := fl.fn.NewBlock()
	exit := fl.fn.NewBlock()
	fl.br(header)
	if s.Cond == nil {
		fl.br(body)
	} else {
		fl.condBranch(s.Cond, body, exit)
		fl.cur = body
	}
	fl.breaks = append(fl.breaks, exit)
	fl.continues = append(fl.continues, latch)
	fl.stmt(s.Body)
	fl.breaks = fl.breaks[:len(fl.breaks)-1]
	fl.continues = fl.continues[:len(fl.continues)-1]
	fl.br(latch)
	if s.Post != nil {
		fl.expr(s.Post)
	}
	fl.br(header)
	fl.cur = exit
}

// switchStmt lowers to a chain of equality tests jumping into the case
// bodies; bodies are chained for C fallthrough.
func (fl *fnLowerer) switchStmt(s *ast.Switch) {
	tag := fl.expr(s.Tag)
	exit := fl.fn.NewBlock()

	bodies := make([]*ir.Block, len(s.Cases))
	for i := range s.Cases {
		bodies[i] = fl.fn.NewBlock()
	}

	// Dispatch chain.
	var defaultBody *ir.Block = exit
	for i, c := range s.Cases {
		if c.IsDefault {
			defaultBody = bodies[i]
		}
	}
	for i, c := range s.Cases {
		for _, lbl := range c.Vals {
			v := fl.expr(lbl)
			cmp := fl.emit(ir.OpBin, types.I32Type, tag, v)
			cmp.BinOp = token.EqEq
			next := fl.fn.NewBlock()
			fl.condBr(cmp, bodies[i], next)
			fl.cur = next
		}
	}
	fl.br(defaultBody)
	if defaultBody == exit {
		fl.cur = fl.fn.NewBlock() // bodies are emitted below
	}

	// Case bodies with fallthrough.
	fl.breaks = append(fl.breaks, exit)
	for i, c := range s.Cases {
		fl.cur = bodies[i]
		for _, st := range c.Body {
			fl.stmt(st)
		}
		if i+1 < len(s.Cases) {
			fl.br(bodies[i+1])
		} else {
			fl.br(exit)
		}
	}
	fl.breaks = fl.breaks[:len(fl.breaks)-1]
	fl.cur = exit
}

// ---------------------------------------------------------------------------
// Conditions

// condBranch lowers a condition with short-circuit control flow, branching
// to t when true and f when false, and leaves fl.cur on the true block.
func (fl *fnLowerer) condBranch(e ast.Expr, t, f *ir.Block) {
	switch e := e.(type) {
	case *ast.Binary:
		switch e.Op {
		case token.AndAnd:
			mid := fl.fn.NewBlock()
			fl.condBranch(e.X, mid, f)
			fl.cur = mid
			fl.condBranch(e.Y, t, f)
			fl.cur = t
			return
		case token.OrOr:
			mid := fl.fn.NewBlock()
			fl.condBranch(e.X, t, mid)
			fl.cur = mid
			fl.condBranch(e.Y, t, f)
			fl.cur = t
			return
		}
	case *ast.Unary:
		if e.Op == token.Not {
			fl.condBranch(e.X, f, t)
			fl.cur = t
			return
		}
	}
	v := fl.expr(e)
	fl.condBr(v, t, f)
	fl.cur = t
}
