package lower

import (
	"testing"
	"testing/quick"

	"dcelens/internal/ast"
	"dcelens/internal/cgen"
	"dcelens/internal/instrument"
	"dcelens/internal/interp"
	"dcelens/internal/ir"
	"dcelens/internal/parser"
	"dcelens/internal/sema"
)

func mustProgram(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

// lowerAndRun lowers, verifies, and executes the module.
func lowerAndRun(t *testing.T, prog *ast.Program) *ir.ExecResult {
	t.Helper()
	m, err := Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, m)
	}
	res, err := ir.Execute(m, ir.ExecOptions{})
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, m)
	}
	return res
}

// agree checks that IR execution matches the reference interpreter.
func agree(t *testing.T, prog *ast.Program) {
	t.Helper()
	want, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	got := lowerAndRun(t, prog)
	if got.ExitCode != want.ExitCode {
		t.Errorf("exit: IR %d, interp %d", got.ExitCode, want.ExitCode)
	}
	if got.Checksum != want.Checksum {
		t.Errorf("checksum mismatch: IR %x, interp %x", got.Checksum, want.Checksum)
	}
	for name, n := range want.ExternCalls {
		if got.ExternCalls[name] != n {
			t.Errorf("extern %s: IR %d calls, interp %d", name, got.ExternCalls[name], n)
		}
	}
	for name, n := range got.ExternCalls {
		if want.ExternCalls[name] != n {
			t.Errorf("extern %s: IR %d calls, interp %d", name, n, want.ExternCalls[name])
		}
	}
}

func TestLowerBasics(t *testing.T) {
	agree(t, mustProgram(t, `
static int g = 7;
int main(void) {
  int x = g * 2 + 1;
  g = x - 3;
  return x;
}`))
}

func TestLowerControlFlow(t *testing.T) {
	agree(t, mustProgram(t, `
static int g;
int main(void) {
  int s = 0;
  for (int i = 0; i < 10; i++) {
    if (i % 3 == 0) continue;
    if (i == 8) break;
    s += i;
  }
  int w = 0;
  while (w < 5) { w++; s += w; }
  do { s -= 1; } while (s > 40);
  g = s;
  return s;
}`))
}

func TestLowerShortCircuit(t *testing.T) {
	agree(t, mustProgram(t, `
static int calls = 0;
static int bump(void) { calls++; return 1; }
int main(void) {
  int a = 0 && bump();
  int b = 1 || bump();
  int c = 1 && bump();
  int d = (calls == 1) || (a == 0);
  return a + b * 10 + c * 100 + d * 1000 + calls * 10000;
}`))
}

func TestLowerTernaryAndSwitch(t *testing.T) {
	agree(t, mustProgram(t, `
static int g = 3;
int main(void) {
  int r = g > 2 ? g * 10 : -g;
  switch (g) {
  case 1:
    r += 1;
    break;
  case 3:
    r += 3;
  case 4:
    r += 4;
    break;
  default:
    r += 100;
  }
  return r;
}`))
}

func TestLowerPointers(t *testing.T) {
	agree(t, mustProgram(t, `
static int a[4] = {1, 2, 3, 4};
static int b;
static int *p = &a[1];
static int **pp = &p;
int main(void) {
  *p = 10;
  **pp = **pp + 5;
  int *q = &b;
  *q = a[1];
  p = p + 2;
  b += *p;
  return b + (p == &a[3]) + (q != p);
}`))
}

func TestLowerCompoundAndIncDec(t *testing.T) {
	agree(t, mustProgram(t, `
static unsigned char c = 250;
static long g = 1;
int main(void) {
  c += 10;   // wraps at 8 bits
  g <<= 3;
  g |= c;
  int i = 5;
  int a = i++ + ++i; // 5 + 7
  i--;
  --i;
  return a + i + c;
}`))
}

func TestLowerFunctions(t *testing.T) {
	agree(t, mustProgram(t, `
static int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
static void set(int *p, int v) { *p = v; }
static int g;
int main(void) {
  set(&g, fib(10));
  return g;
}`))
}

func TestLowerStaticLocals(t *testing.T) {
	agree(t, mustProgram(t, `
static int next(void) {
  static int n = 40;
  n += 1;
  return n;
}
int main(void) {
  next();
  next();
  return next();
}`))
}

func TestLowerDeadCodeMarkers(t *testing.T) {
	// Markers in dead blocks must not execute at the IR level either.
	prog := mustProgram(t, `
void DCEMarker0(void);
void DCEMarker1(void);
static int c = 0;
int main(void) {
  if (c) {
    DCEMarker0();
  }
  if (c == 0) {
    DCEMarker1();
  }
  return 0;
}`)
	res := lowerAndRun(t, prog)
	if res.Executed("DCEMarker0") {
		t.Error("dead marker executed")
	}
	if !res.Executed("DCEMarker1") {
		t.Error("alive marker not executed")
	}
}

func TestLowerLocalArrays(t *testing.T) {
	agree(t, mustProgram(t, `
static int g;
int main(void) {
  int a[4] = {5, 6};
  a[2] = a[0] + a[1];
  for (int i = 0; i < 4; i++) g += a[i];
  return g;
}`))
}

func TestLowerLoopLocalReinit(t *testing.T) {
	// A declaration inside a loop re-initializes each iteration.
	agree(t, mustProgram(t, `
static int g;
int main(void) {
  for (int i = 0; i < 3; i++) {
    int x = 0;
    x += i;
    g += x;
  }
  return g; // 0+1+2 = 3
}`))
}

// TestLowerAgreesOnGeneratedPrograms is the keystone property: for random
// instrumented programs, the unoptimized IR must agree with the reference
// interpreter on exit code, global checksum, and the exact multiset of
// external (marker) calls.
func TestLowerAgreesOnGeneratedPrograms(t *testing.T) {
	f := func(seed int64) bool {
		prog := cgen.Generate(cgen.DefaultConfig(seed))
		ins, err := instrument.Instrument(prog, instrument.Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want, err := interp.Run(ins.Prog, interp.Options{})
		if err != nil {
			t.Logf("seed %d: interp: %v", seed, err)
			return false
		}
		m, err := Lower(ins.Prog)
		if err != nil {
			t.Logf("seed %d: lower: %v", seed, err)
			return false
		}
		if err := ir.Verify(m); err != nil {
			t.Logf("seed %d: verify: %v", seed, err)
			return false
		}
		got, err := ir.Execute(m, ir.ExecOptions{})
		if err != nil {
			t.Logf("seed %d: exec: %v", seed, err)
			return false
		}
		if got.ExitCode != want.ExitCode || got.Checksum != want.Checksum {
			t.Logf("seed %d: behaviour mismatch (exit %d vs %d)", seed, got.ExitCode, want.ExitCode)
			return false
		}
		for name, n := range want.ExternCalls {
			if got.ExternCalls[name] != n {
				t.Logf("seed %d: extern %s: %d vs %d", seed, name, got.ExternCalls[name], n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerSwitchEdgeCases(t *testing.T) {
	// No default and no match: fall through the switch.
	agree(t, mustProgram(t, `
static int g = 9;
int main(void) {
  switch (g) {
  case 1:
    g = 100;
    break;
  case 2:
    g = 200;
    break;
  }
  return g;
}`))

	// Default in the middle, with fallthrough across it.
	agree(t, mustProgram(t, `
static int g = 7;
int main(void) {
  switch (g) {
  case 1:
    g += 1;
  default:
    g += 10;
  case 2:
    g += 100;
  }
  return g; // 7 -> default -> +10 -> fallthrough -> +110 total
}`))

	// Switch over a narrow type promotes the tag.
	agree(t, mustProgram(t, `
static char c = 2;
int main(void) {
  switch (c) {
  case 2:
    c = 50;
    break;
  default:
    c = 60;
  }
  return c;
}`))
}

func TestLowerWhileWithBreakOnly(t *testing.T) {
	agree(t, mustProgram(t, `
static int g;
int main(void) {
  while (1) {
    g++;
    if (g > 4) break;
  }
  return g;
}`))
}

func TestLowerNestedTernary(t *testing.T) {
	agree(t, mustProgram(t, `
static int g = 5;
int main(void) {
  int r = g > 3 ? (g > 4 ? 1 : 2) : (g > 1 ? 3 : 4);
  return r;
}`))
}

func TestLowerShortCircuitInCondition(t *testing.T) {
	agree(t, mustProgram(t, `
static int calls;
static int side(int v) { calls++; return v; }
int main(void) {
  if (side(0) && side(1)) {
    calls += 100;
  }
  if (side(1) || side(0)) {
    calls += 1000;
  }
  return calls; // 1 + 1 + 1000
}`))
}

// TestCompoundAssignRHSOrder pins MiniC's defined evaluation order for
// compound assignment: address, then RHS, then the load of the old value.
// A campaign caught the lowering loading before an RHS call that rewrote
// the target (interp/IR divergence).
func TestCompoundAssignRHSOrder(t *testing.T) {
	agree(t, mustProgram(t, `
static int g = 3;
static int clobber(void) {
  g = 100;
  return 2;
}
int main(void) {
  g *= clobber(); // MiniC: g = 100 * 2, not 3 * 2
  return g;
}`))
	res := lowerAndRun(t, mustProgram(t, `
static int g = 3;
static int clobber(void) {
  g = 100;
  return 2;
}
int main(void) {
  g *= clobber();
  return g;
}`))
	if res.ExitCode != 200 {
		t.Fatalf("exit %d, want 200 (RHS evaluated before the old-value load)", res.ExitCode)
	}
}

func TestLowerArrayDecayInitializer(t *testing.T) {
	// A global array used as a pointer initializer decays to &arr[0], both
	// at global scope and locally.
	agree(t, mustProgram(t, `
static int arr[3] = {7, 8, 9};
static int *p = arr;
int main(void) {
  int *q = arr;
  return *p + q[2]; // 7 + 9
}`))
}
