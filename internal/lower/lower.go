// Package lower translates checked MiniC ASTs into the SSA IR.
//
// Lowering produces memory-form IR: every variable lives in an alloca (or a
// module global) accessed with loads and stores; the mem2reg pass later
// promotes the scalars. The only phis lowering creates are the joins of
// short-circuit operators and the ?: operator. Unary operators are
// normalized away (-x → 0-x, ~x → x^-1, !x → x==0). Literal-constant
// conditions are lowered as branches on constants and left for the
// pipeline: every schedule, including -O0, opens with the trivial folding
// real C frontends perform (the paper measures GCC eliminating 14.79% of
// dead blocks at -O0 for exactly this reason), and running it as a pass
// lets the elimination trace attribute those kills to a pass instance.
package lower

import (
	"fmt"

	"dcelens/internal/ast"
	"dcelens/internal/ir"
	"dcelens/internal/sema"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// Lower translates a sema-checked program into an IR module.
func Lower(prog *ast.Program) (*ir.Module, error) {
	lo := &lowerer{
		mod:     &ir.Module{},
		globals: map[*ast.VarDecl]*ir.Global{},
		funcs:   map[*ast.FuncDecl]*ir.Func{},
	}
	if err := lo.run(prog); err != nil {
		return nil, err
	}
	return lo.mod, nil
}

// MustLower panics on error; for tests.
func MustLower(prog *ast.Program) *ir.Module {
	m, err := Lower(prog)
	if err != nil {
		panic(err)
	}
	return m
}

type lowerer struct {
	mod     *ir.Module
	globals map[*ast.VarDecl]*ir.Global
	funcs   map[*ast.FuncDecl]*ir.Func
	statics int // counter for hoisted static locals
}

func (lo *lowerer) run(prog *ast.Program) error {
	// Globals first (address-constant initializers may reference any
	// global, so create shells first, then fill initializers).
	for _, d := range prog.Globals() {
		if d.Storage == ast.StorageExtern {
			continue
		}
		lo.globals[d] = lo.newGlobal(d)
	}
	for _, d := range prog.Globals() {
		g := lo.globals[d]
		if g == nil || d.Init == nil {
			continue
		}
		init, err := lo.constInit(d.Init, d.Typ)
		if err != nil {
			return err
		}
		g.Init = init
	}

	// Hoist static locals into module globals before lowering bodies.
	for _, f := range prog.Funcs() {
		if f.Body == nil {
			continue
		}
		var err error
		ast.Inspect(f.Body, func(n ast.Node) bool {
			ds, ok := n.(*ast.DeclStmt)
			if !ok || ds.Decl.Storage != ast.StorageStatic || err != nil {
				return true
			}
			lo.statics++
			g := lo.newGlobal(ds.Decl)
			g.Name = fmt.Sprintf("%s.%s.%d", f.Name, ds.Decl.Name, lo.statics)
			g.Internal = true
			if ds.Decl.Init != nil {
				g.Init, err = lo.constInit(ds.Decl.Init, ds.Decl.Typ)
			}
			lo.globals[ds.Decl] = g
			return true
		})
		if err != nil {
			return err
		}
	}

	// Function shells, then bodies (calls may reference any function).
	for _, f := range prog.Funcs() {
		fn := &ir.Func{
			Name:     f.Name,
			Ret:      f.Ret,
			Internal: f.Storage == ast.StorageStatic,
			External: f.Body == nil,
		}
		for _, p := range f.Params {
			fn.ParamTys = append(fn.ParamTys, p.Typ)
		}
		lo.funcs[f] = fn
		lo.mod.Funcs = append(lo.mod.Funcs, fn)
	}
	for _, f := range prog.Funcs() {
		if f.Body == nil {
			continue
		}
		if err := lo.function(f); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) newGlobal(d *ast.VarDecl) *ir.Global {
	g := &ir.Global{
		Name:     d.Name,
		Internal: d.Storage == ast.StorageStatic,
	}
	if d.Typ.Kind == types.Array {
		g.Elem = d.Typ.Elem
		g.Len = d.Typ.Len
	} else {
		g.Elem = d.Typ
		g.Len = 1
	}
	lo.mod.Globals = append(lo.mod.Globals, g)
	return g
}

// constInit evaluates a constant initializer into IR constants.
func (lo *lowerer) constInit(init ast.Expr, typ *types.Type) ([]ir.Const, error) {
	if arr, ok := init.(*ast.ArrayInit); ok {
		out := make([]ir.Const, len(arr.Elems))
		for i, e := range arr.Elems {
			c, err := lo.constVal(e)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	}
	c, err := lo.constVal(init)
	if err != nil {
		return nil, err
	}
	return []ir.Const{c}, nil
}

func (lo *lowerer) constVal(e ast.Expr) (ir.Const, error) {
	if v, ok := sema.ConstEval(e); ok {
		return ir.Const{Int: v}, nil
	}
	switch e := e.(type) {
	case *ast.Cast:
		if ref, ok := e.X.(*ast.VarRef); ok && e.To.Kind == types.Pointer {
			if g := lo.globals[ref.Obj]; g != nil {
				return ir.Const{Global: g, IsAddr: true}, nil
			}
		}
		c, err := lo.constVal(e.X)
		if err != nil {
			return ir.Const{}, err
		}
		if !c.IsAddr && e.To.IsInteger() {
			c.Int = e.To.WrapValue(c.Int)
		}
		return c, nil
	case *ast.Unary:
		if e.Op == token.Amp {
			switch x := e.X.(type) {
			case *ast.VarRef:
				if g := lo.globals[x.Obj]; g != nil {
					return ir.Const{Global: g, IsAddr: true}, nil
				}
			case *ast.Index:
				base, ok := x.Base.(*ast.VarRef)
				if !ok {
					break
				}
				g := lo.globals[base.Obj]
				idx, okI := sema.ConstEval(x.Idx)
				if g != nil && okI {
					return ir.Const{Global: g, Off: idx, IsAddr: true}, nil
				}
			}
		}
	case *ast.VarRef:
		if g := lo.globals[e.Obj]; g != nil && e.Obj.Typ.Kind == types.Array {
			return ir.Const{Global: g, IsAddr: true}, nil
		}
	}
	return ir.Const{}, fmt.Errorf("lower: unsupported constant initializer %q", ast.PrintExpr(e))
}
