package lower

import (
	"dcelens/internal/ast"
	"dcelens/internal/ir"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// expr lowers an expression to an SSA value in the current block.
func (fl *fnLowerer) expr(e ast.Expr) *ir.Instr {
	switch e := e.(type) {
	case *ast.IntLit:
		return fl.iconst(e.Val, e.Typ)

	case *ast.VarRef:
		if e.Obj.Typ.Kind == types.Array {
			return fl.addr(e) // decay context: the array's base address
		}
		return fl.emit(ir.OpLoad, e.Obj.Typ, fl.addr(e))

	case *ast.Cast:
		if e.To.Kind == types.Pointer {
			return fl.expr(e.X) // array decay: inner lowering yields the address
		}
		return fl.castTo(fl.expr(e.X), e.To)

	case *ast.Unary:
		return fl.unary(e)

	case *ast.Binary:
		return fl.binary(e)

	case *ast.Assign:
		return fl.assign(e)

	case *ast.IncDec:
		return fl.incDec(e)

	case *ast.Cond:
		return fl.ternary(e)

	case *ast.Call:
		callee := fl.lo.funcs[e.Fn]
		if callee == nil {
			fl.errorf("call to unlowered function %q", e.Name)
		}
		args := make([]*ir.Instr, len(e.Args))
		for i, a := range e.Args {
			args[i] = fl.expr(a)
		}
		var rt *types.Type
		if e.Fn.Ret.Kind != types.Void {
			rt = e.Fn.Ret
		}
		c := fl.emit(ir.OpCall, rt, args...)
		c.Callee = callee
		return c

	case *ast.Index:
		return fl.emit(ir.OpLoad, e.Typ, fl.addr(e))

	default:
		fl.errorf("unknown expression %T", e)
		return nil
	}
}

// castTo inserts an integer conversion when needed.
func (fl *fnLowerer) castTo(v *ir.Instr, to *types.Type) *ir.Instr {
	if types.Identical(v.Typ, to) {
		return v
	}
	return fl.emit(ir.OpCast, to, v)
}

// addr lowers an lvalue (or decaying array) to its address.
func (fl *fnLowerer) addr(e ast.Expr) *ir.Instr {
	switch e := e.(type) {
	case *ast.VarRef:
		if g := fl.lo.globals[e.Obj]; g != nil {
			ga := fl.emit(ir.OpGlobalAddr, types.PointerTo(g.Elem))
			ga.Global = g
			return ga
		}
		if a, ok := fl.vars[e.Obj]; ok {
			return a
		}
		// Reference to a local whose declaration statement has not executed
		// (possible only in dead code); allocate its slot now.
		return fl.alloca(e.Obj)

	case *ast.Index:
		idx := fl.expr(e.Idx) // sema converted to i64
		bt := e.Base.Type()
		var base *ir.Instr
		if bt.Kind == types.Array {
			ref, ok := e.Base.(*ast.VarRef)
			if !ok {
				fl.errorf("unsupported array base %T", e.Base)
			}
			base = fl.addr(ref)
		} else {
			base = fl.expr(e.Base)
		}
		return fl.emit(ir.OpGEP, base.Typ, base, idx)

	case *ast.Unary:
		if e.Op == token.Star {
			return fl.expr(e.X)
		}
	}
	fl.errorf("expression %T is not an lvalue", e)
	return nil
}

func (fl *fnLowerer) unary(e *ast.Unary) *ir.Instr {
	switch e.Op {
	case token.Amp:
		return fl.addr(e.X)
	case token.Star:
		p := fl.expr(e.X)
		return fl.emit(ir.OpLoad, e.Typ, p)
	case token.Minus:
		// -x → 0 - x
		x := fl.expr(e.X)
		z := fl.iconst(0, e.Typ)
		b := fl.emit(ir.OpBin, e.Typ, z, x)
		b.BinOp = token.Minus
		return b
	case token.Tilde:
		// ~x → x ^ -1
		x := fl.expr(e.X)
		m := fl.iconst(-1, e.Typ)
		b := fl.emit(ir.OpBin, e.Typ, x, m)
		b.BinOp = token.Caret
		return b
	case token.Not:
		// !x → x == 0 (or p == null)
		x := fl.expr(e.X)
		var z *ir.Instr
		if x.Typ.Kind == types.Pointer {
			z = fl.emit(ir.OpNull, x.Typ)
		} else {
			z = fl.iconst(0, x.Typ)
		}
		b := fl.emit(ir.OpBin, types.I32Type, x, z)
		b.BinOp = token.EqEq
		return b
	}
	fl.errorf("unknown unary %v", e.Op)
	return nil
}

func (fl *fnLowerer) binary(e *ast.Binary) *ir.Instr {
	switch e.Op {
	case token.AndAnd, token.OrOr:
		return fl.boolValue(e)
	case token.Plus, token.Minus:
		if e.X.Type() != nil && e.X.Type().Kind == types.Pointer {
			// Pointer arithmetic (sema normalized to ptr op int64).
			p := fl.expr(e.X)
			idx := fl.expr(e.Y)
			if e.Op == token.Minus {
				z := fl.iconst(0, types.I64Type)
				neg := fl.emit(ir.OpBin, types.I64Type, z, idx)
				neg.BinOp = token.Minus
				idx = neg
			}
			return fl.emit(ir.OpGEP, p.Typ, p, idx)
		}
	}
	x := fl.expr(e.X)
	y := fl.expr(e.Y)
	b := fl.emit(ir.OpBin, e.Typ, x, y)
	b.BinOp = e.Op
	return b
}

// boolValue materializes a short-circuit expression as a 0/1 value using
// control flow and a phi — exactly how Clang and GCC lower these.
func (fl *fnLowerer) boolValue(e ast.Expr) *ir.Instr {
	tB := fl.fn.NewBlock()
	fB := fl.fn.NewBlock()
	join := fl.fn.NewBlock()
	fl.condBranch(e, tB, fB)

	fl.cur = tB
	one := fl.iconst(1, types.I32Type)
	fl.emit(ir.OpBr, nil).Targets = []*ir.Block{join}

	fl.cur = fB
	zero := fl.iconst(0, types.I32Type)
	fl.emit(ir.OpBr, nil).Targets = []*ir.Block{join}

	fl.cur = join
	phi := fl.emit(ir.OpPhi, types.I32Type, one, zero)
	phi.PhiPreds = []*ir.Block{tB, fB}
	return phi
}

func (fl *fnLowerer) ternary(e *ast.Cond) *ir.Instr {
	tB := fl.fn.NewBlock()
	fB := fl.fn.NewBlock()
	join := fl.fn.NewBlock()
	fl.condBranch(e.CondX, tB, fB)

	fl.cur = tB
	tv := fl.expr(e.Then)
	tEnd := fl.cur
	fl.emit(ir.OpBr, nil).Targets = []*ir.Block{join}

	fl.cur = fB
	fv := fl.expr(e.Else)
	fEnd := fl.cur
	fl.emit(ir.OpBr, nil).Targets = []*ir.Block{join}

	fl.cur = join
	if e.Typ.Kind == types.Void {
		return nil
	}
	phi := fl.emit(ir.OpPhi, e.Typ, tv, fv)
	phi.PhiPreds = []*ir.Block{tEnd, fEnd}
	return phi
}

func (fl *fnLowerer) assign(e *ast.Assign) *ir.Instr {
	a := fl.addr(e.LHS)
	if e.Op == token.Assign {
		v := fl.expr(e.RHS)
		fl.emit(ir.OpStore, nil, a, v)
		return v
	}
	// MiniC defines the order of a compound assignment as: resolve the
	// target address, evaluate the right-hand side, THEN load the old
	// value. The load must come after the RHS because the RHS may call a
	// function that writes the target (the reference interpreter uses the
	// same order; C leaves it unsequenced, MiniC pins it down).
	lt := e.LHS.Type()
	rhs := fl.expr(e.RHS)
	old := fl.emit(ir.OpLoad, lt, a)
	base := e.Op.BaseOf()

	var result *ir.Instr
	switch {
	case lt.Kind == types.Pointer:
		idx := rhs
		if base == token.Minus {
			z := fl.iconst(0, types.I64Type)
			neg := fl.emit(ir.OpBin, types.I64Type, z, idx)
			neg.BinOp = token.Minus
			idx = neg
		}
		result = fl.emit(ir.OpGEP, lt, old, idx)
	case base == token.Shl || base == token.Shr:
		opL := types.PromoteOne(lt)
		lv := fl.castTo(old, opL)
		b := fl.emit(ir.OpBin, opL, lv, rhs)
		b.BinOp = base
		result = fl.castTo(b, lt)
	default:
		opT := types.Promote(lt, e.RHS.Type())
		lv := fl.castTo(old, opT)
		rv := fl.castTo(rhs, opT)
		b := fl.emit(ir.OpBin, opT, lv, rv)
		b.BinOp = base
		result = fl.castTo(b, lt)
	}
	fl.emit(ir.OpStore, nil, a, result)
	return result
}

func (fl *fnLowerer) incDec(e *ast.IncDec) *ir.Instr {
	a := fl.addr(e.X)
	t := e.X.Type()
	old := fl.emit(ir.OpLoad, t, a)
	var next *ir.Instr
	if t.Kind == types.Pointer {
		d := int64(1)
		if e.Op == token.MinusMinus {
			d = -1
		}
		idx := fl.iconst(d, types.I64Type)
		next = fl.emit(ir.OpGEP, t, old, idx)
	} else {
		one := fl.iconst(1, t)
		next = fl.emit(ir.OpBin, t, old, one)
		if e.Op == token.PlusPlus {
			next.BinOp = token.Plus
		} else {
			next.BinOp = token.Minus
		}
	}
	fl.emit(ir.OpStore, nil, a, next)
	if e.Prefix {
		return next
	}
	return old
}
