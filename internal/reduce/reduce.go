// Package reduce implements a fixed-point delta-debugging test-case
// reducer for MiniC programs — the role C-Reduce plays in the paper (§4.3).
//
// The reducer repeatedly proposes source-level simplifications (drop a
// declaration, drop a statement, replace an expression by a constant or an
// operand, unwrap a control-flow construct), keeps a candidate whenever it
// still typechecks and the caller's interestingness test holds, and stops
// at a fixed point. The interestingness test for the paper's use case —
// "the marker is still dead in ground truth, the target compiler still
// keeps it, and the reference compiler still eliminates it" — lives in
// internal/corpus, which drives reduction during campaigns.
package reduce

import (
	"dcelens/internal/ast"
	"dcelens/internal/sema"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// Interestingness decides whether a candidate still exhibits the behaviour
// being reduced. The candidate has passed sema when the test is invoked.
type Interestingness func(*ast.Program) bool

// Options bounds the reduction effort.
type Options struct {
	// MaxRounds bounds full fixed-point rounds; <= 0 means the default.
	MaxRounds int
	// MaxChecks bounds the total number of interestingness invocations;
	// <= 0 means the default.
	MaxChecks int
}

const (
	defaultMaxRounds = 12
	defaultMaxChecks = 4000
)

// Result describes a finished reduction.
type Result struct {
	Program *ast.Program
	// NodesBefore/NodesAfter measure the reduction.
	NodesBefore, NodesAfter int
	Rounds                  int
	Checks                  int
}

// Reduce shrinks prog as far as the interestingness test allows. prog is
// not modified; the result is a fresh program. Reduce assumes
// interesting(prog) holds (it re-verifies and returns prog unchanged if
// not).
func Reduce(prog *ast.Program, interesting Interestingness, opts Options) *Result {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = defaultMaxRounds
	}
	if opts.MaxChecks <= 0 {
		opts.MaxChecks = defaultMaxChecks
	}
	r := &reducer{test: interesting, maxChecks: opts.MaxChecks}

	best := reclone(prog)
	res := &Result{NodesBefore: ast.CountNodes(prog)}
	if best == nil || !interesting(best) {
		res.Program = prog
		res.NodesAfter = res.NodesBefore
		return res
	}

	for round := 0; round < opts.MaxRounds; round++ {
		res.Rounds = round + 1
		improved := false
		for _, pass := range passes {
			var ok bool
			best, ok = r.sweep(best, pass)
			if ok {
				improved = true
			}
			if r.checks >= r.maxChecks {
				break
			}
		}
		if !improved || r.checks >= r.maxChecks {
			break
		}
	}
	res.Program = best
	res.NodesAfter = ast.CountNodes(best)
	res.Checks = r.checks
	return res
}

// reclone round-trips the program through Clone and a fresh sema run,
// producing an independently annotated copy. Returns nil if the program
// does not typecheck (should not happen for valid inputs).
func reclone(p *ast.Program) *ast.Program {
	c := ast.Clone(p)
	if err := sema.Check(c); err != nil {
		return nil
	}
	return c
}

type reducer struct {
	test      Interestingness
	checks    int
	maxChecks int
}

// mutation edits a program in place; it returns false when the target
// index is out of range (enumeration exhausted).
type mutation func(p *ast.Program, index int) bool

// pass is one family of mutations.
type pass struct {
	name string
	mut  mutation
}

var passes = []pass{
	{"drop-decl", dropDecl},
	{"drop-stmt-chunk", dropStmtChunk},
	{"drop-stmt", dropStmt},
	{"unwrap-stmt", unwrapStmt},
	{"expr-to-zero", exprToZero},
	{"expr-to-operand", exprToOperand},
	{"drop-init", dropInit},
}

// sweep tries the pass's mutations in a single linear scan, accepting
// improvements cumulatively. After an accepted mutation the same index is
// retried (the removed element shifted its successors down), which keeps
// the total interestingness-test count linear in the program size — the
// ddmin-style efficiency that makes reduction practical.
func (r *reducer) sweep(best *ast.Program, p pass) (*ast.Program, bool) {
	improved := false
	idx := 0
	for r.checks < r.maxChecks {
		cand := ast.Clone(best)
		if !p.mut(cand, idx) {
			break // enumeration exhausted
		}
		if sema.Check(cand) == nil {
			r.checks++
			if r.test(cand) {
				best = cand
				improved = true
				continue // retry the same index against the smaller tree
			}
		}
		idx++
	}
	return best, improved
}

// ---------------------------------------------------------------------------
// Mutations

func dropDecl(p *ast.Program, index int) bool {
	if index >= len(p.Decls) {
		return false
	}
	p.Decls = append(p.Decls[:index], p.Decls[index+1:]...)
	return true
}

// stmtSlots enumerates every position holding a statement, in a
// deterministic traversal order, as setter closures.
type stmtSlot struct {
	get     func() ast.Stmt
	replace func(ast.Stmt)
	remove  func() // remove entirely when the slot is a list element
}

func collectStmtSlots(p *ast.Program) []stmtSlot {
	var slots []stmtSlot
	var walkStmt func(s ast.Stmt)

	listSlots := func(list *[]ast.Stmt) {
		for i := range *list {
			i := i
			l := list
			slots = append(slots, stmtSlot{
				get:     func() ast.Stmt { return (*l)[i] },
				replace: func(s ast.Stmt) { (*l)[i] = s },
				remove: func() {
					*l = append((*l)[:i], (*l)[i+1:]...)
				},
			})
			walkStmt((*list)[i])
		}
	}

	ptrSlot := func(sp *ast.Stmt) {
		slots = append(slots, stmtSlot{
			get:     func() ast.Stmt { return *sp },
			replace: func(s ast.Stmt) { *sp = s },
			remove:  func() { *sp = &ast.Empty{} },
		})
		walkStmt(*sp)
	}

	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			listSlots(&s.Stmts)
		case *ast.If:
			ptrSlot(&s.Then)
			if s.Else != nil {
				ptrSlot(&s.Else)
			}
		case *ast.While:
			ptrSlot(&s.Body)
		case *ast.DoWhile:
			ptrSlot(&s.Body)
		case *ast.For:
			ptrSlot(&s.Body)
		case *ast.Switch:
			for _, c := range s.Cases {
				listSlots(&c.Body)
			}
		}
	}

	for _, d := range p.Decls {
		if f, ok := d.(*ast.FuncDecl); ok && f.Body != nil {
			listSlots(&f.Body.Stmts)
		}
	}
	return slots
}

func dropStmt(p *ast.Program, index int) bool {
	slots := collectStmtSlots(p)
	if index >= len(slots) {
		return false
	}
	slots[index].remove()
	return true
}

// stmtLists enumerates every statement list (block bodies, case bodies).
func stmtLists(p *ast.Program) []*[]ast.Stmt {
	var lists []*[]ast.Stmt
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			lists = append(lists, &s.Stmts)
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.While:
			walk(s.Body)
		case *ast.DoWhile:
			walk(s.Body)
		case *ast.For:
			walk(s.Body)
		case *ast.Switch:
			for _, c := range s.Cases {
				lists = append(lists, &c.Body)
				for _, st := range c.Body {
					walk(st)
				}
			}
		}
	}
	for _, d := range p.Decls {
		if f, ok := d.(*ast.FuncDecl); ok && f.Body != nil {
			walk(f.Body)
		}
	}
	return lists
}

// dropStmtChunk removes runs of consecutive statements (sizes 8, 4, 2),
// the ddmin-style coarse phase that deletes dead regions in a few tests
// instead of one statement at a time.
func dropStmtChunk(p *ast.Program, index int) bool {
	lists := stmtLists(p)
	count := 0
	for _, size := range []int{8, 4, 2} {
		for _, l := range lists {
			for start := 0; start+size <= len(*l); start += size {
				if count == index {
					*l = append((*l)[:start], (*l)[start+size:]...)
					return true
				}
				count++
			}
		}
	}
	return false
}

// unwrapStmt replaces a control construct by (part of) its body:
// if -> then branch, loops -> body, block -> kept as-is.
func unwrapStmt(p *ast.Program, index int) bool {
	slots := collectStmtSlots(p)
	count := 0
	for _, sl := range slots {
		var repl ast.Stmt
		switch s := sl.get().(type) {
		case *ast.If:
			repl = s.Then
		case *ast.While:
			repl = s.Body
		case *ast.DoWhile:
			repl = s.Body
		case *ast.For:
			repl = s.Body
		default:
			continue
		}
		if count == index {
			sl.replace(repl)
			return true
		}
		count++
	}
	return false
}

// exprSlots enumerates expression positions that can be swapped.
type exprSlot struct {
	get     func() ast.Expr
	replace func(ast.Expr)
}

func collectExprSlots(p *ast.Program) []exprSlot {
	var slots []exprSlot
	add := func(get func() ast.Expr, set func(ast.Expr)) {
		slots = append(slots, exprSlot{get, set})
	}
	var walkExpr func(ep *ast.Expr)
	walkExpr = func(ep *ast.Expr) {
		add(func() ast.Expr { return *ep }, func(e ast.Expr) { *ep = e })
		switch e := (*ep).(type) {
		case *ast.Unary:
			walkExpr(&e.X)
		case *ast.Binary:
			walkExpr(&e.X)
			walkExpr(&e.Y)
		case *ast.Assign:
			walkExpr(&e.RHS) // never touch the LHS shape here
		case *ast.Cond:
			walkExpr(&e.CondX)
			walkExpr(&e.Then)
			walkExpr(&e.Else)
		case *ast.Call:
			for i := range e.Args {
				walkExpr(&e.Args[i])
			}
		case *ast.Index:
			walkExpr(&e.Idx)
		case *ast.Cast:
			walkExpr(&e.X)
		}
	}
	var walkStmt func(s ast.Stmt)
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walkStmt(st)
			}
		case *ast.DeclStmt:
			if s.Decl.Init != nil {
				walkExpr(&s.Decl.Init)
			}
		case *ast.ExprStmt:
			walkExpr(&s.X)
		case *ast.If:
			walkExpr(&s.Cond)
			walkStmt(s.Then)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *ast.While:
			walkExpr(&s.Cond)
			walkStmt(s.Body)
		case *ast.DoWhile:
			walkStmt(s.Body)
			walkExpr(&s.Cond)
		case *ast.For:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			if s.Cond != nil {
				walkExpr(&s.Cond)
			}
			if s.Post != nil {
				walkExpr(&s.Post)
			}
			walkStmt(s.Body)
		case *ast.Return:
			if s.X != nil {
				walkExpr(&s.X)
			}
		case *ast.Switch:
			walkExpr(&s.Tag)
			for _, c := range s.Cases {
				for _, st := range c.Body {
					walkStmt(st)
				}
			}
		}
	}
	for _, d := range p.Decls {
		if f, ok := d.(*ast.FuncDecl); ok && f.Body != nil {
			walkStmt(f.Body)
		}
	}
	return slots
}

func exprToZero(p *ast.Program, index int) bool {
	slots := collectExprSlots(p)
	count := 0
	for _, sl := range slots {
		switch sl.get().(type) {
		case *ast.IntLit:
			continue // already minimal
		case *ast.ArrayInit:
			continue
		}
		if count == index {
			sl.replace(&ast.IntLit{Val: 0, Typ: types.I32Type})
			return true
		}
		count++
	}
	return false
}

func exprToOperand(p *ast.Program, index int) bool {
	slots := collectExprSlots(p)
	count := 0
	for _, sl := range slots {
		var repls []ast.Expr
		switch e := sl.get().(type) {
		case *ast.Binary:
			if e.Op != token.AndAnd && e.Op != token.OrOr {
				repls = []ast.Expr{e.X, e.Y}
			} else {
				repls = []ast.Expr{e.X, e.Y}
			}
		case *ast.Unary:
			if e.Op != token.Amp && e.Op != token.Star {
				repls = []ast.Expr{e.X}
			}
		case *ast.Cond:
			repls = []ast.Expr{e.Then, e.Else}
		case *ast.Cast:
			repls = []ast.Expr{e.X}
		}
		for _, rep := range repls {
			if count == index {
				sl.replace(rep)
				return true
			}
			count++
		}
	}
	return false
}

// dropInit clears variable initializers (globals become zero-initialized).
func dropInit(p *ast.Program, index int) bool {
	count := 0
	found := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found {
			return false
		}
		if d, ok := n.(*ast.VarDecl); ok && d.Init != nil {
			if count == index {
				d.Init = nil
				found = true
				return false
			}
			count++
		}
		return true
	}
	ast.Inspect(p, visit)
	return found
}
