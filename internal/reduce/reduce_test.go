package reduce

import (
	"strings"
	"testing"

	"dcelens/internal/ast"
	"dcelens/internal/interp"
	"dcelens/internal/parser"
	"dcelens/internal/sema"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestReducePreservesProperty shrinks a program while keeping "main
// returns 42" true. Everything unrelated must disappear.
func TestReducePreservesProperty(t *testing.T) {
	prog := mustParse(t, `
static int unused1 = 10;
static int unused2[4] = {1, 2, 3, 4};
static int helper(int x) { return x * 2; }
static int noise(void) { return unused1 + unused2[0]; }
int main(void) {
  int a = helper(3);
  int b = noise();
  int c = 40 + 2;
  for (int i = 0; i < 3; i++) {
    a += i;
  }
  return c;
}`)
	returns42 := func(p *ast.Program) bool {
		res, err := interp.Run(p, interp.Options{Fuel: 1_000_000})
		return err == nil && res.ExitCode == 42
	}
	if !returns42(prog) {
		t.Fatal("precondition failed")
	}
	res := Reduce(prog, returns42, Options{})
	if !returns42(res.Program) {
		t.Fatal("reduction broke the property")
	}
	if res.NodesAfter >= res.NodesBefore {
		t.Fatalf("no shrink: %d -> %d", res.NodesBefore, res.NodesAfter)
	}
	src := ast.Print(res.Program)
	for _, gone := range []string{"helper", "noise", "unused1", "unused2", "for ("} {
		if strings.Contains(src, gone) {
			t.Errorf("%q should have been reduced away:\n%s", gone, src)
		}
	}
}

// TestReduceKeepsNecessaryCode: statements feeding the property must stay.
func TestReduceKeepsNecessaryCode(t *testing.T) {
	prog := mustParse(t, `
static int g = 0;
int main(void) {
  g = 7;
  return g;
}`)
	returns7 := func(p *ast.Program) bool {
		res, err := interp.Run(p, interp.Options{Fuel: 100_000})
		return err == nil && res.ExitCode == 7
	}
	res := Reduce(prog, returns7, Options{})
	if !returns7(res.Program) {
		t.Fatal("property lost")
	}
	if !strings.Contains(ast.Print(res.Program), "7") {
		t.Errorf("the essential constant vanished:\n%s", ast.Print(res.Program))
	}
}

func TestReduceRespectsBudget(t *testing.T) {
	prog := mustParse(t, `
static int g;
int main(void) {
  g = 1; g = 2; g = 3; g = 4; g = 5;
  return 0;
}`)
	always := func(p *ast.Program) bool {
		_, err := interp.Run(p, interp.Options{Fuel: 100_000})
		return err == nil
	}
	res := Reduce(prog, always, Options{MaxChecks: 5})
	if res.Checks > 5 {
		t.Fatalf("budget exceeded: %d checks", res.Checks)
	}
}

func TestReduceIdempotentOnMinimal(t *testing.T) {
	prog := mustParse(t, `int main(void) { return 1; }`)
	returns1 := func(p *ast.Program) bool {
		res, err := interp.Run(p, interp.Options{Fuel: 10_000})
		return err == nil && res.ExitCode == 1
	}
	res := Reduce(prog, returns1, Options{})
	if res.NodesAfter > res.NodesBefore {
		t.Fatal("reduction grew the program")
	}
	if !returns1(res.Program) {
		t.Fatal("property lost")
	}
}

// TestReduceRejectsBrokenCandidates: a mutation that stops the program
// from executing (dropping main) must never be accepted.
func TestReduceNeverAcceptsNonExecuting(t *testing.T) {
	prog := mustParse(t, `
static int g = 3;
int main(void) { return g; }`)
	test := func(p *ast.Program) bool {
		res, err := interp.Run(p, interp.Options{Fuel: 10_000})
		return err == nil && res.ExitCode == 3
	}
	res := Reduce(prog, test, Options{})
	if res.Program.Main() == nil {
		t.Fatal("main was reduced away despite the execution-based test")
	}
}
