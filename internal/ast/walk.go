package ast

import "fmt"

// Inspect traverses the tree rooted at n in depth-first order, calling f for
// every node. If f returns false for a node, its children are skipped.
// Types inside declarations are not visited (they are not Nodes).
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *Program:
		for _, d := range n.Decls {
			Inspect(d, f)
		}
	case *VarDecl:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
	case *FuncDecl:
		for _, p := range n.Params {
			Inspect(p, f)
		}
		if n.Body != nil {
			Inspect(n.Body, f)
		}

	case *Block:
		for _, s := range n.Stmts {
			Inspect(s, f)
		}
	case *DeclStmt:
		Inspect(n.Decl, f)
	case *ExprStmt:
		Inspect(n.X, f)
	case *Empty:
	case *If:
		Inspect(n.Cond, f)
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *While:
		Inspect(n.Cond, f)
		Inspect(n.Body, f)
	case *DoWhile:
		Inspect(n.Body, f)
		Inspect(n.Cond, f)
	case *For:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
		if n.Cond != nil {
			Inspect(n.Cond, f)
		}
		if n.Post != nil {
			Inspect(n.Post, f)
		}
		Inspect(n.Body, f)
	case *Return:
		if n.X != nil {
			Inspect(n.X, f)
		}
	case *Break, *Continue:
	case *Switch:
		Inspect(n.Tag, f)
		for _, c := range n.Cases {
			for _, v := range c.Vals {
				Inspect(v, f)
			}
			for _, s := range c.Body {
				Inspect(s, f)
			}
		}

	case *IntLit:
	case *VarRef:
	case *Unary:
		Inspect(n.X, f)
	case *Binary:
		Inspect(n.X, f)
		Inspect(n.Y, f)
	case *Assign:
		Inspect(n.LHS, f)
		Inspect(n.RHS, f)
	case *IncDec:
		Inspect(n.X, f)
	case *Cond:
		Inspect(n.CondX, f)
		Inspect(n.Then, f)
		Inspect(n.Else, f)
	case *Call:
		for _, a := range n.Args {
			Inspect(a, f)
		}
	case *Index:
		Inspect(n.Base, f)
		Inspect(n.Idx, f)
	case *Cast:
		Inspect(n.X, f)
	case *ArrayInit:
		for _, e := range n.Elems {
			Inspect(e, f)
		}
	default:
		panic(fmt.Sprintf("ast: Inspect: unknown node %T", n))
	}
}

// CountNodes returns the number of nodes in the tree rooted at n.
func CountNodes(n Node) int {
	count := 0
	Inspect(n, func(Node) bool { count++; return true })
	return count
}
