package ast

import (
	"strings"
	"testing"

	"dcelens/internal/token"
	"dcelens/internal/types"
)

func lit(v int64) *IntLit { return &IntLit{Val: v, Typ: types.I32Type} }

func bin(op token.Kind, x, y Expr) *Binary { return &Binary{Op: op, X: x, Y: y} }

func TestPrintPrecedence(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		// (1 + 2) * 3 needs parens; 1 + 2 * 3 does not.
		{bin(token.Star, bin(token.Plus, lit(1), lit(2)), lit(3)), "(1 + 2) * 3"},
		{bin(token.Plus, lit(1), bin(token.Star, lit(2), lit(3))), "1 + 2 * 3"},
		// Left-associativity: a - b - c prints without parens, a - (b - c) with.
		{bin(token.Minus, bin(token.Minus, lit(1), lit(2)), lit(3)), "1 - 2 - 3"},
		{bin(token.Minus, lit(1), bin(token.Minus, lit(2), lit(3))), "1 - (2 - 3)"},
		// Shift vs compare.
		{bin(token.Lt, bin(token.Shl, lit(1), lit(2)), lit(3)), "1 << 2 < 3"},
		{bin(token.Shl, lit(1), bin(token.Lt, lit(2), lit(3))), "1 << (2 < 3)"},
		// Unary in binary context.
		{bin(token.Plus, &Unary{Op: token.Minus, X: lit(1)}, lit(2)), "-1 + 2"},
		// Negative literal as right operand of minus keeps a space.
		{bin(token.Minus, lit(1), lit(-2)), "1 - -2"},
		// Double negation never token-pastes.
		{&Unary{Op: token.Minus, X: &Unary{Op: token.Minus, X: lit(3)}}, "- -3"},
		{&Unary{Op: token.Minus, X: lit(-3)}, "- -3"},
	}
	for _, c := range cases {
		if got := PrintExpr(c.e); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestPrintLiteralSuffixes(t *testing.T) {
	cases := []struct {
		val  int64
		typ  *types.Type
		want string
	}{
		{5, types.I32Type, "5"},
		{-5, types.I32Type, "-5"},
		{5, types.U32Type, "5U"},
		{-1, types.U32Type, "4294967295U"},
		{5, types.I64Type, "5L"},
		{-5, types.I64Type, "-5L"},
		{-1, types.U64Type, "18446744073709551615UL"},
		{-2147483648, types.I32Type, "-2147483647 - 1"},
		{-9223372036854775808, types.I64Type, "-9223372036854775807L - 1L"},
	}
	for _, c := range cases {
		got := PrintExpr(&IntLit{Val: c.val, Typ: c.typ})
		if got != c.want {
			t.Errorf("lit(%d, %v) = %q, want %q", c.val, c.typ, got, c.want)
		}
	}
}

func TestPrintStatements(t *testing.T) {
	s := &If{
		Cond: &VarRef{Name: "x"},
		Then: &Block{Stmts: []Stmt{&Break{}}},
		Else: &Block{Stmts: []Stmt{&Continue{}}},
	}
	out := PrintStmt(s)
	for _, want := range []string{"if (x) {", "break;", "} else {", "continue;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestCountNodes(t *testing.T) {
	e := bin(token.Plus, lit(1), lit(2))
	if n := CountNodes(e); n != 3 {
		t.Errorf("CountNodes = %d, want 3", n)
	}
}

func TestInspectSkipsChildren(t *testing.T) {
	e := bin(token.Plus, bin(token.Star, lit(1), lit(2)), lit(3))
	visited := 0
	Inspect(e, func(n Node) bool {
		visited++
		_, isBin := n.(*Binary)
		return !isBin || visited == 1 // descend only into the root
	})
	// root + its two children (inner binary pruned, literal visited)
	if visited != 3 {
		t.Errorf("visited %d nodes, want 3", visited)
	}
}

func TestCloneExprSharesOuterDecls(t *testing.T) {
	d := &VarDecl{Name: "g", Typ: types.I32Type, IsGlobal: true}
	e := &VarRef{Name: "g", Obj: d, Typ: types.I32Type}
	c := CloneExpr(e).(*VarRef)
	if c == e {
		t.Fatal("CloneExpr returned the same node")
	}
	if c.Obj != d {
		t.Fatal("references to declarations outside the subtree must be shared")
	}
}

func TestCloneStmtRemapsLocalDecls(t *testing.T) {
	d := &VarDecl{Name: "x", Typ: types.I32Type}
	s := &Block{Stmts: []Stmt{
		&DeclStmt{Decl: d},
		&ExprStmt{X: &VarRef{Name: "x", Obj: d, Typ: types.I32Type}},
	}}
	c := CloneStmt(s).(*Block)
	cd := c.Stmts[0].(*DeclStmt).Decl
	cr := c.Stmts[1].(*ExprStmt).X.(*VarRef)
	if cd == d {
		t.Fatal("declaration not cloned")
	}
	if cr.Obj != cd {
		t.Fatal("reference inside subtree must point at the cloned declaration")
	}
}
