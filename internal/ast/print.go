package ast

import (
	"fmt"
	"strings"

	"dcelens/internal/token"
	"dcelens/internal/types"
)

// Print renders the program as MiniC source text. The output reparses and
// retypechecks to a semantically identical program: literal suffixes keep
// literal types, parentheses are inserted from operator precedence, and
// implicit Cast nodes (inserted by sema) print as their bare operands.
func Print(p *Program) string {
	var pr printer
	for i, d := range p.Decls {
		if i > 0 {
			pr.nl()
		}
		pr.decl(d)
	}
	return pr.b.String()
}

// PrintStmt renders a single statement (useful in tests and diagnostics).
func PrintStmt(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return pr.b.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var pr printer
	pr.expr(e, 0)
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) ws(s string)           { p.b.WriteString(s) }
func (p *printer) wf(f string, a ...any) { fmt.Fprintf(&p.b, f, a...) }

func (p *printer) nl() {
	p.b.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("  ")
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *VarDecl:
		p.varDecl(d)
		p.ws(";")
	case *FuncDecl:
		p.funcDecl(d)
	default:
		panic(fmt.Sprintf("ast: unknown decl %T", d))
	}
}

// typePrefix renders the scalar/element part of a declaration type;
// array suffixes are rendered after the name, C style.
func typePrefix(t *types.Type) string {
	if t.Kind == types.Array {
		return typePrefix(t.Elem)
	}
	if t.Kind == types.Pointer {
		return typePrefix(t.Elem) + " *"
	}
	return t.CSpelling()
}

func (p *printer) varDecl(d *VarDecl) {
	if s := d.Storage.String(); s != "" {
		p.ws(s)
		p.ws(" ")
	}
	p.ws(typePrefix(d.Typ))
	if !strings.HasSuffix(typePrefix(d.Typ), "*") {
		p.ws(" ")
	}
	p.ws(d.Name)
	if d.Typ.Kind == types.Array {
		p.wf("[%d]", d.Typ.Len)
	}
	if d.Init != nil {
		p.ws(" = ")
		p.expr(d.Init, precAssign)
	}
}

func (p *printer) funcDecl(d *FuncDecl) {
	if s := d.Storage.String(); s != "" {
		p.ws(s)
		p.ws(" ")
	}
	p.ws(typePrefix(d.Ret))
	if !strings.HasSuffix(typePrefix(d.Ret), "*") {
		p.ws(" ")
	}
	p.ws(d.Name)
	p.ws("(")
	if len(d.Params) == 0 {
		p.ws("void")
	}
	for i, par := range d.Params {
		if i > 0 {
			p.ws(", ")
		}
		p.ws(typePrefix(par.Typ))
		if !strings.HasSuffix(typePrefix(par.Typ), "*") {
			p.ws(" ")
		}
		p.ws(par.Name)
	}
	p.ws(")")
	if d.Body == nil {
		p.ws(";")
		return
	}
	p.ws(" ")
	p.block(d.Body)
}

// ---------------------------------------------------------------------------
// Statements

func (p *printer) block(b *Block) {
	p.ws("{")
	p.indent++
	for _, s := range b.Stmts {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.ws("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.block(s)
	case *DeclStmt:
		p.varDecl(s.Decl)
		p.ws(";")
	case *ExprStmt:
		p.expr(s.X, 0)
		p.ws(";")
	case *Empty:
		p.ws(";")
	case *If:
		p.ws("if (")
		p.expr(s.Cond, 0)
		p.ws(") ")
		p.nested(s.Then)
		if s.Else != nil {
			p.ws(" else ")
			p.nested(s.Else)
		}
	case *While:
		p.ws("while (")
		p.expr(s.Cond, 0)
		p.ws(") ")
		p.nested(s.Body)
	case *DoWhile:
		p.ws("do ")
		p.nested(s.Body)
		p.ws(" while (")
		p.expr(s.Cond, 0)
		p.ws(");")
	case *For:
		p.ws("for (")
		switch init := s.Init.(type) {
		case nil:
			p.ws(";")
		case *DeclStmt:
			p.varDecl(init.Decl)
			p.ws(";")
		case *ExprStmt:
			p.expr(init.X, 0)
			p.ws(";")
		case *Empty:
			p.ws(";")
		default:
			panic(fmt.Sprintf("ast: bad for-init %T", s.Init))
		}
		if s.Cond != nil {
			p.ws(" ")
			p.expr(s.Cond, 0)
		}
		p.ws(";")
		if s.Post != nil {
			p.ws(" ")
			p.expr(s.Post, 0)
		}
		p.ws(") ")
		p.nested(s.Body)
	case *Return:
		if s.X == nil {
			p.ws("return;")
		} else {
			p.ws("return ")
			p.expr(s.X, precAssign)
			p.ws(";")
		}
	case *Break:
		p.ws("break;")
	case *Continue:
		p.ws("continue;")
	case *Switch:
		p.ws("switch (")
		p.expr(s.Tag, 0)
		p.ws(") {")
		p.indent++
		for _, c := range s.Cases {
			p.nl()
			if c.IsDefault {
				p.ws("default:")
			}
			for i, v := range c.Vals {
				if i > 0 {
					p.nl()
				}
				p.ws("case ")
				p.expr(v, precCond)
				p.ws(":")
			}
			p.indent++
			for _, st := range c.Body {
				p.nl()
				p.stmt(st)
			}
			p.indent--
		}
		p.indent--
		p.nl()
		p.ws("}")
	default:
		panic(fmt.Sprintf("ast: unknown stmt %T", s))
	}
}

// nested prints a statement in a context (loop/if body) where a block keeps
// its braces and any other statement is printed inline.
func (p *printer) nested(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.block(b)
		return
	}
	p.indent++
	p.nl()
	p.stmt(s)
	p.indent--
}

// ---------------------------------------------------------------------------
// Expressions

// Operator precedence levels; higher binds tighter. Mirrors C.
const (
	precAssign  = 2
	precCond    = 3
	precOrOr    = 4
	precAndAnd  = 5
	precBitOr   = 6
	precBitXor  = 7
	precBitAnd  = 8
	precEq      = 9
	precRel     = 10
	precShift   = 11
	precAdd     = 12
	precMul     = 13
	precUnary   = 15
	precPostfix = 16
)

func binPrec(op token.Kind) int {
	switch op {
	case token.OrOr:
		return precOrOr
	case token.AndAnd:
		return precAndAnd
	case token.Pipe:
		return precBitOr
	case token.Caret:
		return precBitXor
	case token.Amp:
		return precBitAnd
	case token.EqEq, token.NotEq:
		return precEq
	case token.Lt, token.Gt, token.Le, token.Ge:
		return precRel
	case token.Shl, token.Shr:
		return precShift
	case token.Plus, token.Minus:
		return precAdd
	case token.Star, token.Slash, token.Percent:
		return precMul
	}
	panic(fmt.Sprintf("ast: binPrec(%v)", op))
}

// expr prints e, parenthesizing when e's precedence is below min.
func (p *printer) expr(e Expr, min int) {
	switch e := e.(type) {
	case *IntLit:
		p.intLit(e, min)
	case *VarRef:
		p.ws(e.Name)
	case *Cast:
		p.expr(e.X, min) // implicit conversion: re-derived on reparse
	case *Unary:
		p.paren(min > precUnary, func() {
			p.ws(token.Token{Kind: e.Op}.String())
			// Avoid token pasting: "--x" when printing -(-y) or -(-5),
			// and "&&" for &(&v).
			needSpace := false
			if inner, ok := e.X.(*Unary); ok && inner.Op == e.Op &&
				(e.Op == token.Minus || e.Op == token.Amp) {
				needSpace = true
			}
			if lit, ok := e.X.(*IntLit); ok && e.Op == token.Minus && lit.Val < 0 {
				needSpace = true
			}
			if needSpace {
				p.ws(" ")
			}
			p.expr(e.X, precUnary)
		})
	case *Binary:
		prec := binPrec(e.Op)
		p.paren(min > prec, func() {
			p.expr(e.X, prec)
			p.wf(" %s ", token.Token{Kind: e.Op}.String())
			p.expr(e.Y, prec+1)
		})
	case *Assign:
		p.paren(min > precAssign, func() {
			p.expr(e.LHS, precUnary)
			p.wf(" %s ", token.Token{Kind: e.Op}.String())
			p.expr(e.RHS, precAssign)
		})
	case *IncDec:
		op := token.Token{Kind: e.Op}.String()
		if e.Prefix {
			p.paren(min > precUnary, func() {
				p.ws(op)
				p.expr(e.X, precUnary)
			})
		} else {
			p.paren(min > precPostfix, func() {
				p.expr(e.X, precPostfix)
				p.ws(op)
			})
		}
	case *Cond:
		p.paren(min > precCond, func() {
			p.expr(e.CondX, precCond+1)
			p.ws(" ? ")
			p.expr(e.Then, precCond)
			p.ws(" : ")
			p.expr(e.Else, precCond)
		})
	case *Call:
		p.ws(e.Name)
		p.ws("(")
		for i, a := range e.Args {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(a, precAssign)
		}
		p.ws(")")
	case *Index:
		p.expr(e.Base, precPostfix)
		p.ws("[")
		p.expr(e.Idx, 0)
		p.ws("]")
	case *ArrayInit:
		p.ws("{")
		for i, el := range e.Elems {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(el, precAssign)
		}
		p.ws("}")
	default:
		panic(fmt.Sprintf("ast: unknown expr %T", e))
	}
}

func (p *printer) paren(need bool, f func()) {
	if need {
		p.ws("(")
	}
	f()
	if need {
		p.ws(")")
	}
}

// intLit renders an integer literal so that the reparsed expression has the
// same value and type-conversion behaviour, and so that printing is a
// fixpoint: a negative literal prints exactly as the unary-minus expression
// it reparses to, including parenthesization.
func (p *printer) intLit(e *IntLit, min int) {
	t := e.Typ
	if t == nil {
		t = types.I32Type
	}
	val := e.Val
	switch t.Kind {
	case types.U8, types.U16:
		// Promoted to int in any use; canonical value is non-negative.
		p.wf("%d", val)
	case types.U32:
		p.wf("%dU", uint32(val))
	case types.U64:
		p.wf("%dUL", uint64(val))
	case types.I64:
		switch {
		case val == -9223372036854775808:
			// Reparses as (-MAX) - 1: a precAdd-level binary expression.
			p.paren(min > precAdd, func() { p.ws("-9223372036854775807L - 1L") })
		case val < 0:
			p.paren(min > precUnary, func() { p.wf("-%dL", -val) })
		default:
			p.wf("%dL", val)
		}
	default: // I8, I16, I32, and anything unannotated
		switch {
		case val == -2147483648:
			p.paren(min > precAdd, func() { p.ws("-2147483647 - 1") })
		case val < 0:
			p.paren(min > precUnary, func() { p.wf("-%d", -val) })
		default:
			p.wf("%d", val)
		}
	}
}
