// Package ast defines the abstract syntax tree of MiniC.
//
// The tree is produced by internal/parser (or directly by internal/cgen),
// annotated in place by internal/sema (types, symbol resolution, inserted
// conversions), consumed by internal/interp and internal/lower, rewritten by
// internal/instrument and internal/reduce, and printed back to source text by
// the Printer in this package.
package ast

import (
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Expr is implemented by all expression nodes. Type() returns the node's
// MiniC type; it is nil until sema has run.
type Expr interface {
	Node
	Type() *types.Type
	exprNode()
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is implemented by top-level declarations.
type Decl interface {
	Node
	declNode()
}

// Storage is the storage class of a declaration.
type Storage int

const (
	StorageNone   Storage = iota // external linkage (globals), automatic (locals)
	StorageStatic                // internal linkage (globals), not used for locals
	StorageExtern                // declaration only, defined elsewhere
)

func (s Storage) String() string {
	switch s {
	case StorageStatic:
		return "static"
	case StorageExtern:
		return "extern"
	}
	return ""
}

// ---------------------------------------------------------------------------
// Expressions

// IntLit is an integer literal. Val holds the bits; the literal's type is
// determined by sema (int, or long/unsigned long for large values, or the
// type recorded by the generator).
type IntLit struct {
	LitPos token.Pos
	Val    int64       // canonical value under Typ
	Typ    *types.Type // may be pre-set by cgen; sema fills if nil
}

// VarRef is a reference to a variable by name. Obj is resolved by sema.
type VarRef struct {
	NamePos token.Pos
	Name    string
	Obj     *VarDecl // resolved declaration (global, local, or parameter)
	Typ     *types.Type
}

// Unary is a prefix unary operation: - ~ ! & (address-of) * (deref).
type Unary struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
	Typ   *types.Type
}

// Binary is a binary operation, excluding assignment. For AndAnd and OrOr
// the right operand is evaluated conditionally (short circuit).
type Binary struct {
	OpPos token.Pos
	Op    token.Kind
	X, Y  Expr
	Typ   *types.Type
}

// Assign is an assignment expression: lhs = rhs or a compound form
// (lhs += rhs etc.). Its value is the value stored.
type Assign struct {
	OpPos token.Pos
	Op    token.Kind // Assign or a compound-assignment kind
	LHS   Expr       // VarRef, Unary{Star}, or Index
	RHS   Expr
	Typ   *types.Type
}

// IncDec is ++x, --x, x++, or x--.
type IncDec struct {
	OpPos  token.Pos
	Op     token.Kind // PlusPlus or MinusMinus
	Prefix bool
	X      Expr
	Typ    *types.Type
}

// Cond is the ternary conditional c ? t : f.
type Cond struct {
	QPos              token.Pos
	CondX, Then, Else Expr
	Typ               *types.Type
}

// Call is a function call by name. Fn is resolved by sema; calls to
// undeclared-body (extern) functions are the paper's optimization markers
// and any other opaque externals.
type Call struct {
	NamePos token.Pos
	Name    string
	Args    []Expr
	Fn      *FuncDecl // resolved declaration (may have nil Body)
	Typ     *types.Type
}

// Index is base[idx] where base is an array variable or a pointer.
type Index struct {
	LbrackPos token.Pos
	Base      Expr
	Idx       Expr
	Typ       *types.Type
}

// Cast is an implicit conversion inserted by sema (MiniC has no cast
// syntax; the printer renders it as the bare operand, which re-typechecks
// to the same conversion).
type Cast struct {
	To *types.Type
	X  Expr
}

func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (e *VarRef) Pos() token.Pos { return e.NamePos }
func (e *Unary) Pos() token.Pos  { return e.OpPos }
func (e *Binary) Pos() token.Pos { return e.X.Pos() }
func (e *Assign) Pos() token.Pos { return e.LHS.Pos() }
func (e *IncDec) Pos() token.Pos { return e.OpPos }
func (e *Cond) Pos() token.Pos   { return e.CondX.Pos() }
func (e *Call) Pos() token.Pos   { return e.NamePos }
func (e *Index) Pos() token.Pos  { return e.Base.Pos() }
func (e *Cast) Pos() token.Pos   { return e.X.Pos() }

func (e *IntLit) Type() *types.Type { return e.Typ }
func (e *VarRef) Type() *types.Type { return e.Typ }
func (e *Unary) Type() *types.Type  { return e.Typ }
func (e *Binary) Type() *types.Type { return e.Typ }
func (e *Assign) Type() *types.Type { return e.Typ }
func (e *IncDec) Type() *types.Type { return e.Typ }
func (e *Cond) Type() *types.Type   { return e.Typ }
func (e *Call) Type() *types.Type   { return e.Typ }
func (e *Index) Type() *types.Type  { return e.Typ }
func (e *Cast) Type() *types.Type   { return e.To }

func (*IntLit) exprNode() {}
func (*VarRef) exprNode() {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*Assign) exprNode() {}
func (*IncDec) exprNode() {}
func (*Cond) exprNode()   {}
func (*Call) exprNode()   {}
func (*Index) exprNode()  {}
func (*Cast) exprNode()   {}

// ---------------------------------------------------------------------------
// Statements

// Block is { stmts }.
type Block struct {
	LbracePos token.Pos
	Stmts     []Stmt
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct {
	Decl *VarDecl
}

// ExprStmt is an expression evaluated for its side effects.
type ExprStmt struct {
	X Expr
}

// Empty is a lone semicolon.
type Empty struct {
	SemiPos token.Pos
}

// If is if (cond) then [else els].
type If struct {
	IfPos token.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // nil if absent
}

// While is while (cond) body.
type While struct {
	WhilePos token.Pos
	Cond     Expr
	Body     Stmt
}

// DoWhile is do body while (cond);.
type DoWhile struct {
	DoPos token.Pos
	Body  Stmt
	Cond  Expr
}

// For is for (init; cond; post) body. Init is a DeclStmt, ExprStmt or nil;
// Cond and Post may be nil.
type For struct {
	ForPos token.Pos
	Init   Stmt
	Cond   Expr
	Post   Expr
	Body   Stmt
}

// Return is return [x];.
type Return struct {
	RetPos token.Pos
	X      Expr // nil for void return
}

// Break is break;.
type Break struct {
	BrPos token.Pos
}

// Continue is continue;.
type Continue struct {
	ContPos token.Pos
}

// SwitchCase is one case group of a switch: one or more case labels (or the
// default label when IsDefault is set) followed by statements. Execution
// falls through to the next group unless a break terminates it, as in C.
type SwitchCase struct {
	CasePos   token.Pos
	Vals      []Expr // constant case labels; empty together with IsDefault
	IsDefault bool
	Body      []Stmt
}

// Switch is switch (tag) { cases }.
type Switch struct {
	SwPos token.Pos
	Tag   Expr
	Cases []*SwitchCase
}

func (s *Block) Pos() token.Pos    { return s.LbracePos }
func (s *DeclStmt) Pos() token.Pos { return s.Decl.Pos() }
func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }
func (s *Empty) Pos() token.Pos    { return s.SemiPos }
func (s *If) Pos() token.Pos       { return s.IfPos }
func (s *While) Pos() token.Pos    { return s.WhilePos }
func (s *DoWhile) Pos() token.Pos  { return s.DoPos }
func (s *For) Pos() token.Pos      { return s.ForPos }
func (s *Return) Pos() token.Pos   { return s.RetPos }
func (s *Break) Pos() token.Pos    { return s.BrPos }
func (s *Continue) Pos() token.Pos { return s.ContPos }
func (s *Switch) Pos() token.Pos   { return s.SwPos }

func (*Block) stmtNode()    {}
func (*DeclStmt) stmtNode() {}
func (*ExprStmt) stmtNode() {}
func (*Empty) stmtNode()    {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*DoWhile) stmtNode()  {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Switch) stmtNode()   {}

// ---------------------------------------------------------------------------
// Declarations

// VarDecl declares a variable: global, local, or function parameter.
// For arrays, Typ is the array type and Init (if present) is an
// ArrayInit expression.
type VarDecl struct {
	NamePos  token.Pos
	Name     string
	Typ      *types.Type
	Storage  Storage
	IsGlobal bool
	IsParam  bool
	Init     Expr // nil means zero-initialized (globals) / uninitialized-reads-as-zero (locals; MiniC defines them to zero)
}

// ArrayInit is the brace initializer of an array: {e0, e1, ...}.
// Missing trailing elements are zero.
type ArrayInit struct {
	LbracePos token.Pos
	Elems     []Expr
	Typ       *types.Type // array type
}

func (e *ArrayInit) Pos() token.Pos    { return e.LbracePos }
func (e *ArrayInit) Type() *types.Type { return e.Typ }
func (*ArrayInit) exprNode()           {}

// FuncDecl declares (Body == nil) or defines a function.
type FuncDecl struct {
	NamePos token.Pos
	Name    string
	Ret     *types.Type
	Params  []*VarDecl
	Storage Storage
	Body    *Block // nil for extern declarations (e.g. optimization markers)
}

func (d *VarDecl) Pos() token.Pos  { return d.NamePos }
func (d *FuncDecl) Pos() token.Pos { return d.NamePos }

func (*VarDecl) declNode()  {}
func (*FuncDecl) declNode() {}

// Sig returns d's function type.
func (d *FuncDecl) Sig() *types.Type {
	params := make([]*types.Type, len(d.Params))
	for i, p := range d.Params {
		params[i] = p.Typ
	}
	return types.FuncOf(d.Ret, params)
}

// ---------------------------------------------------------------------------
// Program

// Program is a complete MiniC translation unit.
type Program struct {
	Decls []Decl
}

// Pos returns the position of the first declaration.
func (p *Program) Pos() token.Pos {
	if len(p.Decls) > 0 {
		return p.Decls[0].Pos()
	}
	return token.Pos{}
}

// Funcs returns the function declarations in order.
func (p *Program) Funcs() []*FuncDecl {
	var fs []*FuncDecl
	for _, d := range p.Decls {
		if f, ok := d.(*FuncDecl); ok {
			fs = append(fs, f)
		}
	}
	return fs
}

// Globals returns the global variable declarations in order.
func (p *Program) Globals() []*VarDecl {
	var gs []*VarDecl
	for _, d := range p.Decls {
		if v, ok := d.(*VarDecl); ok {
			gs = append(gs, v)
		}
	}
	return gs
}

// LookupFunc returns the function named name, or nil.
func (p *Program) LookupFunc(name string) *FuncDecl {
	for _, d := range p.Decls {
		if f, ok := d.(*FuncDecl); ok && f.Name == name {
			return f
		}
	}
	return nil
}

// Main returns the program's main function, or nil.
func (p *Program) Main() *FuncDecl { return p.LookupFunc("main") }
