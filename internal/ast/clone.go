package ast

import "fmt"

// Clone deep-copies a program. Resolved references (VarRef.Obj, Call.Fn)
// are remapped to the cloned declarations, so the copy is fully independent
// of the original — mutating one never affects the other. This is the
// foundation of the reducer, which speculatively mutates candidate copies.
func Clone(p *Program) *Program {
	c := &cloner{
		vars:  map[*VarDecl]*VarDecl{},
		funcs: map[*FuncDecl]*FuncDecl{},
	}
	out := &Program{Decls: make([]Decl, len(p.Decls))}
	// First pass: create shells for all top-level declarations, so forward
	// references (e.g. a call to a function defined later) can be remapped.
	for i, d := range p.Decls {
		switch d := d.(type) {
		case *VarDecl:
			nv := &VarDecl{}
			*nv = *d
			nv.Init = nil
			c.vars[d] = nv
			out.Decls[i] = nv
		case *FuncDecl:
			nf := &FuncDecl{
				NamePos: d.NamePos,
				Name:    d.Name,
				Ret:     d.Ret,
				Storage: d.Storage,
			}
			c.funcs[d] = nf
			out.Decls[i] = nf
		default:
			panic(fmt.Sprintf("ast: Clone: unknown decl %T", d))
		}
	}
	// Second pass: fill in initializers, parameters, and bodies.
	for i, d := range p.Decls {
		switch d := d.(type) {
		case *VarDecl:
			if d.Init != nil {
				out.Decls[i].(*VarDecl).Init = c.expr(d.Init)
			}
		case *FuncDecl:
			nf := out.Decls[i].(*FuncDecl)
			nf.Params = make([]*VarDecl, len(d.Params))
			for j, par := range d.Params {
				np := &VarDecl{}
				*np = *par
				c.vars[par] = np
				nf.Params[j] = np
			}
			if d.Body != nil {
				nf.Body = c.stmt(d.Body).(*Block)
			}
		}
	}
	return out
}

// CloneFuncBody deep-copies a statement subtree without remapping
// references to declarations outside the subtree (they keep pointing at the
// shared declarations). Useful for duplicating statements inside one
// program, e.g. in generator templates.
func CloneStmt(s Stmt) Stmt {
	c := &cloner{vars: map[*VarDecl]*VarDecl{}, funcs: map[*FuncDecl]*FuncDecl{}}
	return c.stmt(s)
}

// CloneExpr deep-copies an expression subtree, sharing declaration
// references with the original.
func CloneExpr(e Expr) Expr {
	c := &cloner{vars: map[*VarDecl]*VarDecl{}, funcs: map[*FuncDecl]*FuncDecl{}}
	return c.expr(e)
}

type cloner struct {
	vars  map[*VarDecl]*VarDecl
	funcs map[*FuncDecl]*FuncDecl
}

func (c *cloner) varRef(d *VarDecl) *VarDecl {
	if d == nil {
		return nil
	}
	if nv, ok := c.vars[d]; ok {
		return nv
	}
	return d // reference to a declaration outside the cloned subtree
}

func (c *cloner) funcRef(d *FuncDecl) *FuncDecl {
	if d == nil {
		return nil
	}
	if nf, ok := c.funcs[d]; ok {
		return nf
	}
	return d
}

func (c *cloner) stmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Block:
		nb := &Block{LbracePos: s.LbracePos, Stmts: make([]Stmt, len(s.Stmts))}
		for i, st := range s.Stmts {
			nb.Stmts[i] = c.stmt(st)
		}
		return nb
	case *DeclStmt:
		nd := &VarDecl{}
		*nd = *s.Decl
		if s.Decl.Init != nil {
			nd.Init = c.expr(s.Decl.Init)
		}
		c.vars[s.Decl] = nd
		return &DeclStmt{Decl: nd}
	case *ExprStmt:
		return &ExprStmt{X: c.expr(s.X)}
	case *Empty:
		cp := *s
		return &cp
	case *If:
		ni := &If{IfPos: s.IfPos, Cond: c.expr(s.Cond), Then: c.stmt(s.Then)}
		if s.Else != nil {
			ni.Else = c.stmt(s.Else)
		}
		return ni
	case *While:
		return &While{WhilePos: s.WhilePos, Cond: c.expr(s.Cond), Body: c.stmt(s.Body)}
	case *DoWhile:
		return &DoWhile{DoPos: s.DoPos, Body: c.stmt(s.Body), Cond: c.expr(s.Cond)}
	case *For:
		nf := &For{ForPos: s.ForPos, Body: nil}
		if s.Init != nil {
			nf.Init = c.stmt(s.Init)
		}
		if s.Cond != nil {
			nf.Cond = c.expr(s.Cond)
		}
		if s.Post != nil {
			nf.Post = c.expr(s.Post)
		}
		nf.Body = c.stmt(s.Body)
		return nf
	case *Return:
		nr := &Return{RetPos: s.RetPos}
		if s.X != nil {
			nr.X = c.expr(s.X)
		}
		return nr
	case *Break:
		cp := *s
		return &cp
	case *Continue:
		cp := *s
		return &cp
	case *Switch:
		ns := &Switch{SwPos: s.SwPos, Tag: c.expr(s.Tag)}
		for _, cs := range s.Cases {
			nc := &SwitchCase{CasePos: cs.CasePos, IsDefault: cs.IsDefault}
			for _, v := range cs.Vals {
				nc.Vals = append(nc.Vals, c.expr(v))
			}
			for _, st := range cs.Body {
				nc.Body = append(nc.Body, c.stmt(st))
			}
			ns.Cases = append(ns.Cases, nc)
		}
		return ns
	default:
		panic(fmt.Sprintf("ast: clone: unknown stmt %T", s))
	}
}

func (c *cloner) expr(e Expr) Expr {
	switch e := e.(type) {
	case *IntLit:
		cp := *e
		return &cp
	case *VarRef:
		return &VarRef{NamePos: e.NamePos, Name: e.Name, Obj: c.varRef(e.Obj), Typ: e.Typ}
	case *Unary:
		return &Unary{OpPos: e.OpPos, Op: e.Op, X: c.expr(e.X), Typ: e.Typ}
	case *Binary:
		return &Binary{OpPos: e.OpPos, Op: e.Op, X: c.expr(e.X), Y: c.expr(e.Y), Typ: e.Typ}
	case *Assign:
		return &Assign{OpPos: e.OpPos, Op: e.Op, LHS: c.expr(e.LHS), RHS: c.expr(e.RHS), Typ: e.Typ}
	case *IncDec:
		return &IncDec{OpPos: e.OpPos, Op: e.Op, Prefix: e.Prefix, X: c.expr(e.X), Typ: e.Typ}
	case *Cond:
		return &Cond{QPos: e.QPos, CondX: c.expr(e.CondX), Then: c.expr(e.Then), Else: c.expr(e.Else), Typ: e.Typ}
	case *Call:
		nc := &Call{NamePos: e.NamePos, Name: e.Name, Fn: c.funcRef(e.Fn), Typ: e.Typ}
		for _, a := range e.Args {
			nc.Args = append(nc.Args, c.expr(a))
		}
		return nc
	case *Index:
		return &Index{LbrackPos: e.LbrackPos, Base: c.expr(e.Base), Idx: c.expr(e.Idx), Typ: e.Typ}
	case *Cast:
		return &Cast{To: e.To, X: c.expr(e.X)}
	case *ArrayInit:
		na := &ArrayInit{LbracePos: e.LbracePos, Typ: e.Typ}
		for _, el := range e.Elems {
			na.Elems = append(na.Elems, c.expr(el))
		}
		return na
	default:
		panic(fmt.Sprintf("ast: clone: unknown expr %T", e))
	}
}
