package core

import (
	"strings"
	"testing"
	"testing/quick"

	"dcelens/internal/ast"
	"dcelens/internal/cgen"
	"dcelens/internal/instrument"
	"dcelens/internal/parser"
	"dcelens/internal/pipeline"
	"dcelens/internal/sema"
)

func instrumented(t *testing.T, src string) *instrument.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	ins, err := instrument.Instrument(prog, instrument.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestGroundTruthClassification(t *testing.T) {
	ins := instrumented(t, `
static int c = 0;
int main(void) {
  if (c) {
    c = 1;
  }
  if (c == 0) {
    c = 2;
  }
  return 0;
}`)
	truth, err := GroundTruth(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Dead) != 1 {
		t.Fatalf("want 1 dead marker, got %v", truth.Dead)
	}
	if len(truth.Alive) != 1 {
		t.Fatalf("want 1 alive marker, got %v", truth.Alive)
	}
}

func TestCompileAndMarkerScan(t *testing.T) {
	// Note: the block must not store to c — `if (c) c = 1;` is exactly the
	// paper's Listing 6a, which both real compilers miss (and so do both
	// personalities, by design).
	ins := instrumented(t, `
static int c = 0;
static int g;
int main(void) {
  if (c) {
    g = 1;
  }
  return 0;
}`)
	truth, err := GroundTruth(ins)
	if err != nil {
		t.Fatal(err)
	}

	// At -O0 the dead marker survives (no constant propagation through the
	// global); at -O2 both personalities eliminate it.
	o0, err := Compile(ins, pipeline.New(pipeline.GCC, pipeline.O0))
	if err != nil {
		t.Fatal(err)
	}
	if len(o0.Missed(truth)) != 1 {
		t.Errorf("-O0 should miss the marker; asm:\n%s", o0.Asm)
	}
	if err := o0.VerifyAgainstTruth(truth); err != nil {
		t.Fatal(err)
	}

	for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
		o2, err := Compile(ins, pipeline.New(p, pipeline.O2))
		if err != nil {
			t.Fatal(err)
		}
		if len(o2.Missed(truth)) != 0 {
			t.Errorf("%s -O2 should eliminate the dead marker:\n%s", p, o2.Asm)
		}
		if err := o2.VerifyAgainstTruth(truth); err != nil {
			t.Fatal(err)
		}
		if errs := o2.SoundnessError(truth); len(errs) > 0 {
			t.Errorf("%s -O2 eliminated live markers: %v", p, errs)
		}
	}
}

// TestListing1Shape reproduces the paper's illustrative example: GCC-sim
// folds the pointer comparison but not the flow-sensitive global check;
// LLVM-sim the other way around (§2, Listings 1-2).
func TestListing1Shape(t *testing.T) {
	src := `
char a;
char b[2];
static int c = 0;
static int g;
int main(void) {
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    g = 1;
  }
  if (c) {
    b[0] = 1;
  }
  c = 0;
  return 0;
}`
	ins := instrumented(t, src)
	truth, err := GroundTruth(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Dead) != 2 {
		t.Fatalf("both if bodies should be dead, got %v", truth.Dead)
	}
	ptrMarker, flowMarker := truth.Dead[0], truth.Dead[1]
	if ins.Markers[0].Name != ptrMarker {
		ptrMarker, flowMarker = flowMarker, ptrMarker
	}

	gccC, err := Compile(ins, pipeline.New(pipeline.GCC, pipeline.O3))
	if err != nil {
		t.Fatal(err)
	}
	llvmC, err := Compile(ins, pipeline.New(pipeline.LLVM, pipeline.O3))
	if err != nil {
		t.Fatal(err)
	}

	// GCC-sim: folds &a == &b[1] (match.pd commit), misses if(c) because
	// its global analysis is flow-insensitive and a store c = 0 exists.
	if gccC.Alive[ptrMarker] {
		t.Errorf("gcc-sim should eliminate the pointer-comparison marker")
	}
	if !gccC.Alive[flowMarker] {
		t.Errorf("gcc-sim should miss the flow-sensitive marker (Listing 1c)")
	}
	// LLVM-sim: EarlyCSE regression keeps nonzero-offset compares, but the
	// same-constant store does not defeat its global analysis.
	if !llvmC.Alive[ptrMarker] {
		t.Errorf("llvm-sim should miss the pointer-comparison marker (Listing 1b)")
	}
	if llvmC.Alive[flowMarker] {
		t.Errorf("llvm-sim should eliminate the store-same-constant marker")
	}

	// Differential testing flags both directions.
	if d := DiffMissed(gccC, llvmC, truth); len(d) != 1 || d[0] != flowMarker {
		t.Errorf("gcc misses vs llvm: %v", d)
	}
	if d := DiffMissed(llvmC, gccC, truth); len(d) != 1 || d[0] != ptrMarker {
		t.Errorf("llvm misses vs gcc: %v", d)
	}
}

// TestPrimaryNestedDead reproduces Listing 5 / Figure 2: a dead nested if
// inside a dead outer if. When both are missed, only the outer marker is
// primary; when the outer is detected, the inner becomes primary.
func TestPrimaryNestedDead(t *testing.T) {
	ins := instrumented(t, `
static int e1 = 0;
static int e2 = 1;
int main(void) {
  if (e1) {        // always false
    if (e2) {      // dead because the outer block is dead
      e2 = 2;
    }
    e1 = 3;
  }
  return 0;
}`)
	truth, err := GroundTruth(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Dead) != 2 {
		t.Fatalf("want 2 dead markers, got %v", truth.Dead)
	}
	g, err := BuildMarkerCFG(ins)
	if err != nil {
		t.Fatal(err)
	}
	outer := ins.Markers[0].Name
	inner := ins.Markers[1].Name

	// Both missed: only the outer is primary (B2 in Figure 2).
	prim := g.Primary(truth, []string{outer, inner})
	if len(prim) != 1 || prim[0] != outer {
		t.Errorf("both missed: primary = %v, want [%s] (preds: %v)", prim, outer, g.Preds)
	}
	// Outer detected, inner missed: the inner becomes primary.
	prim = g.Primary(truth, []string{inner})
	if len(prim) != 1 || prim[0] != inner {
		t.Errorf("outer detected: primary = %v, want [%s]", prim, inner)
	}
}

func TestMarkerCFGInterprocedural(t *testing.T) {
	// The entry marker of an uncalled function has no predecessors and is
	// primary when missed; the entry marker of a called function inherits
	// the call site's preceding marker.
	ins := instrumented(t, `
static int g;
static void callee(void) { g = 1; }
static void orphan(void) { g = 2; }
int main(void) {
  if (g) {
    callee();
  }
  return 0;
}`)
	truth, err := GroundTruth(ins)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildMarkerCFG(ins)
	if err != nil {
		t.Fatal(err)
	}
	var calleeEntry, orphanEntry, thenMarker string
	for _, m := range ins.Markers {
		switch {
		case m.Site == "func-entry" && m.Func == "callee":
			calleeEntry = m.Name
		case m.Site == "func-entry" && m.Func == "orphan":
			orphanEntry = m.Name
		case m.Site == "if-then":
			thenMarker = m.Name
		}
	}
	if preds := g.Preds[calleeEntry]; len(preds) != 1 || preds[0] != thenMarker {
		t.Errorf("callee entry preds = %v, want [%s]", preds, thenMarker)
	}
	if preds := g.Preds[orphanEntry]; len(preds) != 0 {
		t.Errorf("orphan entry preds = %v, want none", preds)
	}
	// All three are dead; if all are missed, primaries are the if-then
	// marker (pred is the live root) and the orphan entry (no preds).
	missed := []string{calleeEntry, orphanEntry, thenMarker}
	prim := g.Primary(truth, missed)
	want := map[string]bool{thenMarker: true, orphanEntry: true}
	if len(prim) != 2 || !want[prim[0]] || !want[prim[1]] {
		t.Errorf("primary = %v, want {%s, %s}", prim, thenMarker, orphanEntry)
	}
}

// TestCompilersSoundOnCorpus: neither personality may eliminate an alive
// marker or change program behaviour, at any level, on random programs.
func TestCompilersSoundOnCorpus(t *testing.T) {
	configs := []*pipeline.Config{
		pipeline.New(pipeline.GCC, pipeline.O1),
		pipeline.New(pipeline.GCC, pipeline.O3),
		pipeline.New(pipeline.LLVM, pipeline.O1),
		pipeline.New(pipeline.LLVM, pipeline.O3),
	}
	f := func(seed int64) bool {
		prog := cgen.Generate(cgen.DefaultConfig(seed))
		ins, err := instrument.Instrument(prog, instrument.Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		truth, err := GroundTruth(ins)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, cfg := range configs {
			comp, err := Compile(ins, cfg)
			if err != nil {
				t.Logf("seed %d: %s: %v", seed, cfg.Name(), err)
				return false
			}
			if errs := comp.SoundnessError(truth); len(errs) > 0 {
				t.Logf("seed %d: %s eliminated live markers %v\nprogram:\n%s",
					seed, cfg.Name(), errs, ast.Print(ins.Prog))
				return false
			}
			if err := comp.VerifyAgainstTruth(truth); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestHigherLevelsEliminateMore checks the Table 1 monotonicity on a small
// corpus: the fraction of dead markers missed must not grow with the level
// (modulo the O3 regressions, which are small; we compare O0 vs O1 vs O2).
func TestHigherLevelsEliminateMore(t *testing.T) {
	missedAt := map[pipeline.Level]int{}
	totalDead := 0
	for seed := int64(0); seed < 8; seed++ {
		prog := cgen.Generate(cgen.DefaultConfig(seed))
		ins, err := instrument.Instrument(prog, instrument.Options{})
		if err != nil {
			t.Fatal(err)
		}
		truth, err := GroundTruth(ins)
		if err != nil {
			t.Fatal(err)
		}
		totalDead += len(truth.Dead)
		for _, lvl := range []pipeline.Level{pipeline.O0, pipeline.O1, pipeline.O2} {
			comp, err := Compile(ins, pipeline.New(pipeline.LLVM, lvl))
			if err != nil {
				t.Fatal(err)
			}
			missedAt[lvl] += len(comp.Missed(truth))
		}
	}
	if totalDead == 0 {
		t.Fatal("no dead markers generated")
	}
	if !(missedAt[pipeline.O0] > missedAt[pipeline.O1] && missedAt[pipeline.O1] >= missedAt[pipeline.O2]) {
		t.Errorf("missed counts not monotone: O0=%d O1=%d O2=%d (dead=%d)",
			missedAt[pipeline.O0], missedAt[pipeline.O1], missedAt[pipeline.O2], totalDead)
	}
	// O0 should miss the vast majority (paper: 85%), O2 a small minority.
	if missedAt[pipeline.O0]*2 < totalDead {
		t.Errorf("O0 missed only %d of %d dead markers; expected most", missedAt[pipeline.O0], totalDead)
	}
	if missedAt[pipeline.O2]*2 > totalDead {
		t.Errorf("O2 missed %d of %d dead markers; expected a small fraction", missedAt[pipeline.O2], totalDead)
	}
}

func TestAsmContainsMarkers(t *testing.T) {
	ins := instrumented(t, `
static int c;
int main(void) {
  if (c) {
    c = 1;
  }
  return 0;
}`)
	comp, err := Compile(ins, pipeline.New(pipeline.GCC, pipeline.O0))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(comp.Asm, "call "+ins.Markers[0].Name) {
		t.Errorf("marker call missing from -O0 assembly:\n%s", comp.Asm)
	}
	if !strings.Contains(comp.Asm, ".data") || !strings.Contains(comp.Asm, "c:") {
		t.Errorf("data section missing:\n%s", comp.Asm)
	}
}
