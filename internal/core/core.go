// Package core implements the paper's contribution: finding missed
// optimizations through the lens of dead code elimination.
//
// The pipeline (paper Figure 1):
//
//	① instrument basic blocks with markers        (internal/instrument)
//	② compile with multiple compilers/levels      (this package, via internal/pipeline)
//	③ compare surviving markers in the assembly   (this package, via internal/asm)
//	④ filter to primary missed markers            (markercfg.go)
//
// Ground truth (which markers are actually dead) comes from executing the
// deterministic, input-free program (internal/interp), exactly as in §4.1.
package core

import (
	"fmt"
	"sort"

	"dcelens/internal/asm"
	"dcelens/internal/instrument"
	"dcelens/internal/interp"
	"dcelens/internal/ir"
	"dcelens/internal/lower"
	"dcelens/internal/metrics"
	"dcelens/internal/opt"
	"dcelens/internal/pipeline"
	"dcelens/internal/remark"
	"dcelens/internal/trace"
)

// Truth is the executed ground truth of an instrumented program.
type Truth struct {
	Alive    map[string]bool // markers that executed
	Dead     []string        // markers that never executed (sorted)
	Checksum uint64
	ExitCode int64
}

// GroundTruth executes the instrumented program and classifies every
// marker. Dead code observed during the single execution is dead for all
// executions, because MiniC programs are closed and deterministic.
func GroundTruth(ins *instrument.Program) (*Truth, error) {
	res, err := interp.Run(ins.Prog, interp.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: ground truth execution: %w", err)
	}
	t := &Truth{
		Alive:    map[string]bool{},
		Checksum: res.Checksum,
		ExitCode: res.ExitCode,
	}
	for _, m := range ins.Markers {
		if res.Executed(m.Name) {
			t.Alive[m.Name] = true
		} else {
			t.Dead = append(t.Dead, m.Name)
		}
	}
	sort.Strings(t.Dead)
	return t, nil
}

// Compilation is the result of compiling one instrumented program with one
// compiler configuration.
type Compilation struct {
	Config *pipeline.Config
	Module *ir.Module
	Asm    string
	// Alive holds the markers surviving in the assembly (the compiler
	// could not prove their blocks dead).
	Alive map[string]bool
}

// Compile lowers, optimizes, and code-generates the instrumented program
// under cfg, then scans the assembly for surviving markers.
func Compile(ins *instrument.Program, cfg *pipeline.Config) (*Compilation, error) {
	return CompileObserved(ins, cfg, nil)
}

// CompileObserved is Compile with a pipeline observer attached (the
// harness passes its watchdog/fault-injection guard here); obs may be nil.
func CompileObserved(ins *instrument.Program, cfg *pipeline.Config, obs opt.Observer) (*Compilation, error) {
	return CompileMetered(ins, cfg, obs, nil)
}

// CompileMetered is CompileObserved with campaign telemetry: the lowering,
// middle-end, and codegen phases are timed into reg ("phase.lower",
// "phase.opt", "phase.codegen"), a per-pass collector rides the pipeline
// (via Config.CompileMetered), and the assembly marker scan is counted. A
// nil registry records nothing and adds no observer.
func CompileMetered(ins *instrument.Program, cfg *pipeline.Config, obs opt.Observer, reg *metrics.Registry) (*Compilation, error) {
	return CompileProbed(ins, cfg, obs, reg, nil)
}

// CompileProbed is CompileMetered with a phase probe observing each
// back-half phase's individual wall-clock extent (lower, opt, codegen) —
// the span timeline's per-unit phase spans. A nil probe costs one
// comparison per phase and records nothing.
func CompileProbed(ins *instrument.Program, cfg *pipeline.Config, obs opt.Observer, reg *metrics.Registry, probe metrics.PhaseProbe) (*Compilation, error) {
	pstart := probe.Start()
	stop := reg.Time(metrics.PhaseLower)
	m, err := lower.Lower(ins.Prog)
	stop()
	probe.Observe(metrics.PhaseLower, pstart)
	if err != nil {
		return nil, err
	}
	if err := cfg.CompileProbed(m, obs, reg, probe); err != nil {
		return nil, err
	}
	pstart = probe.Start()
	stop = reg.Time(metrics.PhaseCodegen)
	text := asm.Emit(m)
	alive := map[string]bool{}
	for _, name := range asm.SurvivingMarkers(text, instrument.IsMarker) {
		alive[name] = true
	}
	stop()
	probe.Observe(metrics.PhaseCodegen, pstart)
	reg.Counter("stage.asm.scans").Inc()
	return &Compilation{Config: cfg, Module: m, Asm: text, Alive: alive}, nil
}

// VerifyAgainstTruth executes the compiled module and checks that the
// optimizer preserved the program's observable behaviour — the standing
// assumption of the paper (a compiler that miscompiles would invalidate
// the oracle, and a marker surviving in the binary of a miscompiled
// program is a correctness bug, not a missed optimization).
func (c *Compilation) VerifyAgainstTruth(t *Truth) error {
	res, err := ir.Execute(c.Module, ir.ExecOptions{})
	if err != nil {
		return fmt.Errorf("core: %s: compiled module crashed: %w", c.Config.Name(), err)
	}
	if res.Checksum != t.Checksum || res.ExitCode != t.ExitCode {
		return fmt.Errorf("core: %s: MISCOMPILE: checksum %x/%x exit %d/%d",
			c.Config.Name(), res.Checksum, t.Checksum, res.ExitCode, t.ExitCode)
	}
	return nil
}

// Missed returns the markers that are dead in truth but survive in the
// compilation: the compiler failed to eliminate provably-dead code.
func (c *Compilation) Missed(t *Truth) []string {
	var out []string
	for _, m := range t.Dead {
		if c.Alive[m] {
			out = append(out, m)
		}
	}
	return out
}

// Eliminated returns the dead markers the compilation removed.
func (c *Compilation) Eliminated(t *Truth) []string {
	var out []string
	for _, m := range t.Dead {
		if !c.Alive[m] {
			out = append(out, m)
		}
	}
	return out
}

// SoundnessError reports markers the compiler eliminated although they are
// alive — that would be a miscompilation (the paper assumes compilers never
// misidentify live blocks as dead; we check it).
func (c *Compilation) SoundnessError(t *Truth) []string {
	var out []string
	for m := range t.Alive {
		if !c.Alive[m] {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// DiffMissed implements the paper's differential oracle (§3.1): the
// markers target failed to eliminate although reference eliminated them —
// feasible missed optimizations of target. The truth restricts the
// comparison to actually-dead markers.
func DiffMissed(target, reference *Compilation, t *Truth) []string {
	var out []string
	for _, m := range t.Dead {
		if target.Alive[m] && !reference.Alive[m] {
			out = append(out, m)
		}
	}
	return out
}

// Analysis bundles everything the engine derives for one (program,
// compiler) pair.
type Analysis struct {
	Compilation   *Compilation
	Missed        []string
	PrimaryMissed []string

	// Trace is the per-pass profile and marker provenance of the
	// compilation; nil unless the analysis ran with tracing enabled
	// (AnalyzeTraced / corpus Options.Trace).
	Trace *trace.Profile

	// Remarks is the compilation's optimization-remark profile: per-pass
	// applied/missed counts, miss-reason histogram, and each surviving
	// marker's nearest-miss chain. Nil unless the analysis ran with a
	// remark collector attached (corpus Options.Remarks); the collector
	// rides the same Observers chain as the trace recorder and the
	// profile is attached by the caller that owns the collector.
	Remarks *remark.Profile
}

// Analyze compiles ins under cfg and computes missed and primary-missed
// markers relative to the ground truth and the marker CFG.
func Analyze(ins *instrument.Program, cfg *pipeline.Config, t *Truth, g *MarkerCFG) (*Analysis, error) {
	return AnalyzeObserved(ins, cfg, t, g, nil)
}

// AnalyzeObserved is Analyze with a pipeline observer attached; obs may be
// nil.
func AnalyzeObserved(ins *instrument.Program, cfg *pipeline.Config, t *Truth, g *MarkerCFG, obs opt.Observer) (*Analysis, error) {
	return AnalyzeMetered(ins, cfg, t, g, obs, nil)
}

// AnalyzeMetered is AnalyzeObserved with campaign telemetry recorded into
// reg (see CompileMetered); a nil registry records nothing.
func AnalyzeMetered(ins *instrument.Program, cfg *pipeline.Config, t *Truth, g *MarkerCFG, obs opt.Observer, reg *metrics.Registry) (*Analysis, error) {
	return AnalyzeProbed(ins, cfg, t, g, obs, reg, nil)
}

// AnalyzeProbed is AnalyzeMetered with a phase probe (see CompileProbed);
// a nil probe records nothing.
func AnalyzeProbed(ins *instrument.Program, cfg *pipeline.Config, t *Truth, g *MarkerCFG, obs opt.Observer, reg *metrics.Registry, probe metrics.PhaseProbe) (*Analysis, error) {
	comp, err := CompileProbed(ins, cfg, obs, reg, probe)
	if err != nil {
		return nil, err
	}
	missed := comp.Missed(t)
	return &Analysis{
		Compilation:   comp,
		Missed:        missed,
		PrimaryMissed: g.Primary(t, missed),
	}, nil
}
