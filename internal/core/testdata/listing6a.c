// Paper Listing 6a: LLVM >= 3.8 regression (store of a different constant).
void DCEMarker0(void);
static int a = 0;
int main(void) {
  if (a) {
    DCEMarker0();
  }
  a = 1;
  return 0;
}
