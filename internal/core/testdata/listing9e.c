// Paper Listing 9e (GCC PR99776): vectorized pointer stores lose their
// type (local loop counter; see DESIGN.md on global counters).
void DCEMarker0(void);
static int a[2];
static int *c[2];
int main(void) {
  for (int i = 0; i < 2; i++) {
    c[i] = &a[1];
  }
  if (!c[0]) {
    DCEMarker0();
  }
  return 0;
}
