// Paper Listing 4a (GCC PR99357): flow-insensitive global value analysis.
void DCEMarker0(void);
static int a = 0;
int main(void) {
  if (a) {
    DCEMarker0();
  }
  a = 0;
  return 0;
}
