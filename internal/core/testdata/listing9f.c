// Paper Listing 9f (GCC PR99419, rediscovered): constant array load.
void DCEMarker0(void);
int a;
static int b[2] = {0, 0};
int main(void) {
  if (b[a]) {
    DCEMarker0();
  }
  return 0;
}
