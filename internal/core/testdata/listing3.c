// Paper Listing 3 (LLVM PR49434): EarlyCSE cannot decide &a == &b[1].
void DCEMarker0(void);
char a;
char b[2];
int main(void) {
  char *c = &a;
  char *d = &b[1];
  if (c == d) {
    DCEMarker0();
  }
  return 0;
}
