package core

import (
	"sort"

	"dcelens/internal/instrument"
	"dcelens/internal/ir"
	"dcelens/internal/lower"
)

// MarkerCFG is the interprocedural control-flow graph restricted to marker
// nodes (paper §3.2). Each marker's predecessors are the markers that
// immediately precede it on some CFG path — intermediate unmarked blocks
// are transparent — plus, for function-entry markers, the markers
// preceding each call site. The synthetic root LiveRoot represents program
// entry (always alive).
type MarkerCFG struct {
	// Preds maps a marker to its predecessor markers. The empty string is
	// the live root (function/main entry reached without passing any
	// marker).
	Preds map[string][]string
}

// LiveRoot is the synthetic always-alive predecessor.
const LiveRoot = ""

// BuildMarkerCFG lowers the instrumented program without optimization and
// derives the marker graph from the raw IR's control flow.
func BuildMarkerCFG(ins *instrument.Program) (*MarkerCFG, error) {
	m, err := lower.Lower(ins.Prog)
	if err != nil {
		return nil, err
	}
	g := &MarkerCFG{Preds: map[string][]string{}}

	// Locate each marker's block, and each function's call sites.
	type site struct {
		block *ir.Block
		index int // instruction index of the call within the block
	}
	markerAt := map[*ir.Block][]site{} // marker calls per block (usually one)
	markerName := map[*ir.Instr]string{}
	callSites := map[*ir.Func][]site{}
	entryOf := map[*ir.Func]*ir.Block{}

	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		entryOf[f] = f.Entry()
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				if in.Op != ir.OpCall || in.Callee == nil {
					continue
				}
				if instrument.IsMarker(in.Callee.Name) {
					markerAt[b] = append(markerAt[b], site{b, i})
					markerName[in] = in.Callee.Name
				} else if !in.Callee.External {
					callSites[in.Callee] = append(callSites[in.Callee], site{b, i})
				}
			}
		}
	}

	// nearestMarkersBefore finds the markers that immediately precede a
	// position (block b, instruction index i) on every backward path.
	// Returns marker names; LiveRoot for paths reaching the function entry
	// unmarked. Interprocedural: falling off a function's entry continues
	// at that function's call sites.
	var nearestBefore func(f *ir.Func, b *ir.Block, idx int, seen map[*ir.Block]bool, fseen map[*ir.Func]bool) []string

	nearestBefore = func(f *ir.Func, b *ir.Block, idx int, seen map[*ir.Block]bool, fseen map[*ir.Func]bool) []string {
		// A marker call earlier in this block?
		for i := idx - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if name, ok := markerName[in]; ok {
				return []string{name}
			}
		}
		var out []string
		if len(b.Preds) == 0 {
			// Function entry reached without a marker.
			if f.Name == "main" {
				return []string{LiveRoot}
			}
			sites := callSites[f]
			if len(sites) == 0 {
				// Never-called function: no predecessors at all. Entry
				// markers of such functions have an empty pred set, which
				// makes them primary when missed (vacuous condition), as
				// intended: nothing else explains the miss.
				return nil
			}
			if fseen[f] {
				return nil // recursive call-site expansion: cut the cycle
			}
			fseen[f] = true
			for _, s := range sites {
				out = append(out, nearestBefore(s.block.Func, s.block, s.index, map[*ir.Block]bool{}, fseen)...)
			}
			return out
		}
		for _, p := range b.Preds {
			if seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, nearestBefore(f, p, len(p.Instrs), seen, fseen)...)
		}
		return out
	}

	for b, sites := range markerAt {
		for _, s := range sites {
			in := b.Instrs[s.index]
			name := markerName[in]
			preds := nearestBefore(b.Func, b, s.index, map[*ir.Block]bool{}, map[*ir.Func]bool{})
			g.Preds[name] = dedupe(preds)
		}
	}
	return g, nil
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Primary filters a missed-marker set down to the primary missed markers
// (paper §3.2 Definition): a missed marker is primary iff every
// predecessor is alive or was detected (eliminated) — i.e. no neighbouring
// missed dead marker explains the miss.
func (g *MarkerCFG) Primary(t *Truth, missed []string) []string {
	missedSet := map[string]bool{}
	for _, m := range missed {
		missedSet[m] = true
	}
	var out []string
	for _, m := range missed {
		primary := true
		for _, p := range g.Preds[m] {
			if p == LiveRoot {
				continue // live
			}
			if t.Alive[p] {
				continue // l(u) = live
			}
			if !missedSet[p] {
				continue // dead and detected
			}
			// p is dead and also missed: m is secondary.
			primary = false
			break
		}
		if primary {
			out = append(out, m)
		}
	}
	return out
}
