package core

import (
	"os"
	"path/filepath"
	"testing"

	"dcelens/internal/instrument"
	"dcelens/internal/parser"
	"dcelens/internal/pipeline"
	"dcelens/internal/sema"
)

// loadListing parses a testdata file and adopts its explicit markers.
func loadListing(t *testing.T, name string) *instrument.Program {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(string(data))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	ins := &instrument.Program{Prog: prog}
	for _, f := range prog.Funcs() {
		if f.Body == nil && instrument.IsMarker(f.Name) {
			ins.Markers = append(ins.Markers, instrument.Marker{ID: len(ins.Markers), Name: f.Name})
		}
	}
	return ins
}

// TestListingFiles drives every testdata listing end to end, asserting that
// exactly one compiler misses the marker in the direction the paper
// documents (for 6a, both miss).
func TestListingFiles(t *testing.T) {
	expectations := map[string][2]bool{ // {gcc eliminates, llvm eliminates}
		"listing3.c":  {true, false},
		"listing4a.c": {false, true},
		"listing6a.c": {false, false},
		"listing9f.c": {false, true},
		"listing9e.c": {false, true},
	}
	for name, want := range expectations {
		t.Run(name, func(t *testing.T) {
			ins := loadListing(t, name)
			if len(ins.Markers) != 1 {
				t.Fatalf("want 1 marker, got %d", len(ins.Markers))
			}
			marker := ins.Markers[0].Name
			truth, err := GroundTruth(ins)
			if err != nil {
				t.Fatal(err)
			}
			if truth.Alive[marker] {
				t.Fatal("listing marker must be dead")
			}
			gcc, err := Compile(ins, pipeline.New(pipeline.GCC, pipeline.O3))
			if err != nil {
				t.Fatal(err)
			}
			llvm, err := Compile(ins, pipeline.New(pipeline.LLVM, pipeline.O3))
			if err != nil {
				t.Fatal(err)
			}
			if err := gcc.VerifyAgainstTruth(truth); err != nil {
				t.Fatal(err)
			}
			if err := llvm.VerifyAgainstTruth(truth); err != nil {
				t.Fatal(err)
			}
			if got := !gcc.Alive[marker]; got != want[0] {
				t.Errorf("gcc-sim eliminates = %v, want %v", got, want[0])
			}
			if got := !llvm.Alive[marker]; got != want[1] {
				t.Errorf("llvm-sim eliminates = %v, want %v", got, want[1])
			}
		})
	}
}
