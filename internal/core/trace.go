package core

import (
	"fmt"

	"dcelens/internal/asm"
	"dcelens/internal/instrument"
	"dcelens/internal/lower"
	"dcelens/internal/metrics"
	"dcelens/internal/opt"
	"dcelens/internal/pipeline"
	"dcelens/internal/trace"
)

// CompileTraced compiles like Compile with a trace.Recorder observing the
// pipeline: the returned Profile carries per-pass wall times, IR-size
// deltas, and the provenance attributing each eliminated marker to the
// pass instance that killed it. The trace's view of surviving markers is
// verified against the assembly scan, so a provenance entry can be trusted
// to describe what the oracle observes.
func CompileTraced(ins *instrument.Program, cfg *pipeline.Config) (*Compilation, *trace.Profile, error) {
	return CompileTracedObserved(ins, cfg, nil)
}

// CompileTracedObserved is CompileTraced with an extra pipeline observer
// chained after the trace recorder (the harness watchdog/fault guard);
// extra may be nil.
func CompileTracedObserved(ins *instrument.Program, cfg *pipeline.Config, extra opt.Observer) (*Compilation, *trace.Profile, error) {
	return CompileTracedMetered(ins, cfg, extra, nil)
}

// CompileTracedMetered is CompileTracedObserved with campaign telemetry
// recorded into reg (phase timers plus the per-pass collector, chained
// after the trace recorder); a nil registry records nothing.
func CompileTracedMetered(ins *instrument.Program, cfg *pipeline.Config, extra opt.Observer, reg *metrics.Registry) (*Compilation, *trace.Profile, error) {
	return CompileTracedProbed(ins, cfg, extra, reg, nil)
}

// CompileTracedProbed is CompileTracedMetered with a phase probe observing
// each phase's individual extent (see CompileProbed); nil records nothing.
func CompileTracedProbed(ins *instrument.Program, cfg *pipeline.Config, extra opt.Observer, reg *metrics.Registry, probe metrics.PhaseProbe) (*Compilation, *trace.Profile, error) {
	pstart := probe.Start()
	stop := reg.Time(metrics.PhaseLower)
	m, err := lower.Lower(ins.Prog)
	stop()
	probe.Observe(metrics.PhaseLower, pstart)
	if err != nil {
		return nil, nil, err
	}
	rec := trace.NewRecorder(ins.MarkerNames(), instrument.IsMarker)
	if err := cfg.CompileProbed(m, opt.Observers(rec, extra), reg, probe); err != nil {
		return nil, nil, err
	}
	pstart = probe.Start()
	stop = reg.Time(metrics.PhaseCodegen)
	text := asm.Emit(m)
	alive := map[string]bool{}
	for _, name := range asm.SurvivingMarkers(text, instrument.IsMarker) {
		alive[name] = true
	}
	stop()
	probe.Observe(metrics.PhaseCodegen, pstart)
	reg.Counter("stage.asm.scans").Inc()
	prof := rec.Profile()
	// Cross-check the IR-level scan against the assembly oracle: they must
	// agree, or the provenance would attribute eliminations the oracle
	// never sees (or miss ones it does).
	if len(prof.FinalSurviving) != len(alive) {
		return nil, nil, fmt.Errorf("core: %s: trace/asm marker disagreement: %d surviving in IR, %d in assembly",
			cfg.Name(), len(prof.FinalSurviving), len(alive))
	}
	for _, name := range prof.FinalSurviving {
		if !alive[name] {
			return nil, nil, fmt.Errorf("core: %s: trace/asm marker disagreement: %s survives in IR but not in assembly",
				cfg.Name(), name)
		}
	}
	return &Compilation{Config: cfg, Module: m, Asm: text, Alive: alive}, prof, nil
}

// AnalyzeTraced is Analyze with tracing enabled; the returned Analysis
// carries the compilation's trace.Profile.
func AnalyzeTraced(ins *instrument.Program, cfg *pipeline.Config, t *Truth, g *MarkerCFG) (*Analysis, error) {
	return AnalyzeTracedObserved(ins, cfg, t, g, nil)
}

// AnalyzeTracedObserved is AnalyzeTraced with an extra pipeline observer
// chained after the trace recorder; extra may be nil.
func AnalyzeTracedObserved(ins *instrument.Program, cfg *pipeline.Config, t *Truth, g *MarkerCFG, extra opt.Observer) (*Analysis, error) {
	return AnalyzeTracedMetered(ins, cfg, t, g, extra, nil)
}

// AnalyzeTracedMetered is AnalyzeTracedObserved with campaign telemetry
// recorded into reg; a nil registry records nothing.
func AnalyzeTracedMetered(ins *instrument.Program, cfg *pipeline.Config, t *Truth, g *MarkerCFG, extra opt.Observer, reg *metrics.Registry) (*Analysis, error) {
	return AnalyzeTracedProbed(ins, cfg, t, g, extra, reg, nil)
}

// AnalyzeTracedProbed is AnalyzeTracedMetered with a phase probe (see
// CompileProbed); a nil probe records nothing.
func AnalyzeTracedProbed(ins *instrument.Program, cfg *pipeline.Config, t *Truth, g *MarkerCFG, extra opt.Observer, reg *metrics.Registry, probe metrics.PhaseProbe) (*Analysis, error) {
	comp, prof, err := CompileTracedProbed(ins, cfg, extra, reg, probe)
	if err != nil {
		return nil, err
	}
	missed := comp.Missed(t)
	return &Analysis{
		Compilation:   comp,
		Missed:        missed,
		PrimaryMissed: g.Primary(t, missed),
		Trace:         prof,
	}, nil
}
