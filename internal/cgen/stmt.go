package cgen

import (
	"dcelens/internal/ast"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// block generates a statement block. When needReturn is set a return of
// retType is appended (functions always return explicitly at the end, so
// MiniC's fall-off-the-end rule is never exercised by generated code).
func (g *generator) block(depth int, needReturn bool, retType *types.Type) *ast.Block {
	g.pushScope()
	b := &ast.Block{}
	n := g.cfg.MinStmts + g.intn(g.cfg.MaxStmts-g.cfg.MinStmts+1)
	for i := 0; i < n; i++ {
		b.Stmts = append(b.Stmts, g.stmt(depth)...)
	}
	if needReturn {
		b.Stmts = append(b.Stmts, &ast.Return{X: g.intExpr(1)})
	}
	g.popScope()
	return b
}

// stmt generates one statement; loop constructs may expand to a counter
// declaration plus the loop, hence the slice result.
func (g *generator) stmt(depth int) []ast.Stmt {
	g.curCost += g.loopMult * stmtCost
	// Depth-limited: at max nesting (or once the function's execution-cost
	// budget is spent) only generate flat statements.
	nested := depth < g.cfg.MaxBlockDepth && g.curCost < fnBudget
	for {
		switch g.intn(20) {
		case 0, 1, 2:
			if d := g.localDecl(); d != nil {
				return []ast.Stmt{d}
			}
		case 3, 4, 5, 6, 7:
			return []ast.Stmt{g.assignStmt()}
		case 8:
			return []ast.Stmt{g.incDecStmt()}
		case 9, 10, 11:
			if nested {
				return []ast.Stmt{g.ifStmt(depth)}
			}
			return []ast.Stmt{g.assignStmt()}
		case 12, 13:
			if nested {
				return g.forLoop(depth)
			}
		case 14:
			if nested {
				return g.whileLoop(depth)
			}
		case 15:
			if nested {
				return g.doWhileLoop(depth)
			}
		case 16:
			if nested && g.chance(60) {
				return []ast.Stmt{g.switchStmt(depth)}
			}
		case 17, 18:
			if s := g.callStmt(); s != nil {
				return []ast.Stmt{s}
			}
		case 19:
			if g.loopDepth > 0 && g.chance(35) {
				if g.chance(50) {
					return []ast.Stmt{&ast.Break{}}
				}
				return []ast.Stmt{&ast.Continue{}}
			}
			// Conditional early return: the rest of the enclosing block
			// becomes its own basic block (the paper's "function bodies
			// after conditional returns" instrumentation site).
			if g.chance(25) {
				return []ast.Stmt{&ast.If{
					Cond: g.condExpr(1),
					Then: &ast.Block{Stmts: []ast.Stmt{&ast.Return{X: g.intExpr(1)}}},
				}}
			}
		}
	}
}

// localDecl declares a new local: an integer scalar, a pointer (to global
// storage), or occasionally a static local. Returns nil when a pointer
// target cannot be found.
func (g *generator) localDecl() ast.Stmt {
	if g.chance(25) && len(g.ptrGlobals)+len(g.ptrLocals) > 0 {
		// Local pointer, always initialized to valid storage.
		pointee := g.pickPointeeType()
		if pointee == nil {
			return nil
		}
		d := &ast.VarDecl{
			Name: g.fresh("lp"),
			Typ:  types.PointerTo(pointee),
			Init: g.ptrExpr(pointee),
		}
		g.ptrLocals = append(g.ptrLocals, d)
		return &ast.DeclStmt{Decl: d}
	}
	d := &ast.VarDecl{
		Name: g.fresh("l"),
		Typ:  g.pickType(),
	}
	if g.chance(12) {
		d.Storage = ast.StorageStatic
		d.Init = g.smallConst(d.Typ)
	} else {
		d.Init = g.intExpr(1)
	}
	g.intLocals = append(g.intLocals, d)
	return &ast.DeclStmt{Decl: d}
}

// assignStmt writes to an integer lvalue, a pointer variable, or a
// dereferenced pointer.
func (g *generator) assignStmt() ast.Stmt {
	roll := g.intn(10)
	switch {
	case roll < 6:
		lhs := g.intLvalue()
		op := token.Assign
		if g.chance(30) {
			op = g.compoundOp()
		}
		return &ast.ExprStmt{X: &ast.Assign{Op: op, LHS: lhs, RHS: g.intExpr(0)}}
	case roll < 8:
		// Re-point a pointer variable.
		if pv := g.pickPtrVar(nil); pv != nil {
			return &ast.ExprStmt{X: &ast.Assign{
				Op:  token.Assign,
				LHS: &ast.VarRef{Name: pv.Name},
				RHS: g.ptrExpr(pv.Typ.Elem),
			}}
		}
		fallthrough
	default:
		// Store through a pointer: *p = e (integer pointee) or
		// *pp = q (pointer pointee).
		if pv := g.pickPtrVar(nil); pv != nil {
			lhs := &ast.Unary{Op: token.Star, X: &ast.VarRef{Name: pv.Name}}
			if pv.Typ.Elem.Kind == types.Pointer {
				return &ast.ExprStmt{X: &ast.Assign{
					Op: token.Assign, LHS: lhs, RHS: g.ptrExpr(pv.Typ.Elem.Elem),
				}}
			}
			return &ast.ExprStmt{X: &ast.Assign{
				Op: token.Assign, LHS: lhs, RHS: g.intExpr(0),
			}}
		}
		// No pointers at all: fall back to a plain assignment.
		return &ast.ExprStmt{X: &ast.Assign{
			Op: token.Assign, LHS: g.intLvalue(), RHS: g.intExpr(0),
		}}
	}
}

func (g *generator) compoundOp() token.Kind {
	ops := []token.Kind{
		token.PlusAssign, token.MinusAssign, token.StarAssign,
		token.SlashAssign, token.PercentAssign, token.AmpAssign,
		token.PipeAssign, token.CaretAssign, token.ShlAssign, token.ShrAssign,
	}
	return ops[g.intn(len(ops))]
}

func (g *generator) incDecStmt() ast.Stmt {
	op := token.PlusPlus
	if g.chance(40) {
		op = token.MinusMinus
	}
	return &ast.ExprStmt{X: &ast.IncDec{
		Op: op, Prefix: g.chance(50), X: g.intLvalue(),
	}}
}

func (g *generator) ifStmt(depth int) ast.Stmt {
	s := &ast.If{
		Cond: g.condExpr(0),
		Then: g.block(depth+1, false, nil),
	}
	if g.chance(35) {
		s.Else = g.block(depth+1, false, nil)
	}
	return s
}

// loopLimit picks a trip count that keeps the enclosing iteration
// multiplier within budget, then scales the multiplier for the body.
func (g *generator) loopLimit() int {
	max := g.cfg.MaxLoopIter
	if cap := int(maxLoopMult / g.loopMult); cap < max {
		max = cap
	}
	if max < 1 {
		max = 1
	}
	limit := 1 + g.intn(max)
	g.loopMult *= int64(limit)
	return limit
}

// forLoop generates a bounded counting loop over a fresh read-only counter.
func (g *generator) forLoop(depth int) []ast.Stmt {
	counter := &ast.VarDecl{Name: g.fresh("i"), Typ: types.I32Type,
		Init: &ast.IntLit{Val: 0, Typ: types.I32Type}}
	limit := g.loopLimit()
	defer func() { g.loopMult /= int64(limit) }()

	g.pushScope()
	// The counter is readable in the body but never appears in the
	// assignable pool, so the bound holds by construction.
	g.roLocal(counter)
	g.loopDepth++
	body := g.block(depth+1, false, nil)
	g.loopDepth--
	g.popScope()

	return []ast.Stmt{&ast.For{
		Init: &ast.DeclStmt{Decl: counter},
		Cond: &ast.Binary{Op: token.Lt,
			X: &ast.VarRef{Name: counter.Name},
			Y: &ast.IntLit{Val: int64(limit), Typ: types.I32Type}},
		Post: &ast.IncDec{Op: token.PlusPlus, X: &ast.VarRef{Name: counter.Name}},
		Body: body,
	}}
}

// whileLoop generates `int c = 0; while (c < K [&& cond]) { c++; ... }`.
// The increment is the first statement of the body, so continue statements
// (which can only appear after it) never skip it.
func (g *generator) whileLoop(depth int) []ast.Stmt {
	counter := &ast.VarDecl{Name: g.fresh("w"), Typ: types.I32Type,
		Init: &ast.IntLit{Val: 0, Typ: types.I32Type}}
	limit := g.loopLimit()
	defer func() { g.loopMult /= int64(limit) }()

	var cond ast.Expr = &ast.Binary{Op: token.Lt,
		X: &ast.VarRef{Name: counter.Name},
		Y: &ast.IntLit{Val: int64(limit), Typ: types.I32Type}}
	if g.chance(50) {
		cond = &ast.Binary{Op: token.AndAnd, X: cond, Y: g.condExpr(1)}
	}

	g.pushScope()
	g.roLocal(counter)
	g.loopDepth++
	body := g.block(depth+1, false, nil)
	g.loopDepth--
	g.popScope()
	body.Stmts = append([]ast.Stmt{
		&ast.ExprStmt{X: &ast.IncDec{Op: token.PlusPlus, X: &ast.VarRef{Name: counter.Name}}},
	}, body.Stmts...)

	return []ast.Stmt{
		&ast.DeclStmt{Decl: counter},
		&ast.While{Cond: cond, Body: body},
	}
}

// doWhileLoop generates `int c = 0; do { c++; ... } while (c < K [&& cond]);`.
func (g *generator) doWhileLoop(depth int) []ast.Stmt {
	counter := &ast.VarDecl{Name: g.fresh("d"), Typ: types.I32Type,
		Init: &ast.IntLit{Val: 0, Typ: types.I32Type}}
	limit := g.loopLimit()
	defer func() { g.loopMult /= int64(limit) }()

	g.pushScope()
	g.roLocal(counter)
	g.loopDepth++
	body := g.block(depth+1, false, nil)
	g.loopDepth--
	g.popScope()
	body.Stmts = append([]ast.Stmt{
		&ast.ExprStmt{X: &ast.IncDec{Op: token.PlusPlus, X: &ast.VarRef{Name: counter.Name}}},
	}, body.Stmts...)

	var cond ast.Expr = &ast.Binary{Op: token.Lt,
		X: &ast.VarRef{Name: counter.Name},
		Y: &ast.IntLit{Val: int64(limit), Typ: types.I32Type}}
	if g.chance(40) {
		cond = &ast.Binary{Op: token.AndAnd, X: cond, Y: g.condExpr(1)}
	}

	return []ast.Stmt{
		&ast.DeclStmt{Decl: counter},
		&ast.DoWhile{Body: body, Cond: cond},
	}
}

// roLocal registers a read-only local (loop counter): it joins the readable
// pool consulted by expression generation but is never a target of
// assignment, so loop bounds hold by construction. The registration is
// scoped: popScope removes it.
func (g *generator) roLocal(d *ast.VarDecl) {
	g.roLocals = append(g.roLocals, d)
}

func (g *generator) switchStmt(depth int) ast.Stmt {
	s := &ast.Switch{Tag: g.intExpr(0)}
	ncases := 2 + g.intn(3)
	used := map[int64]bool{}
	for i := 0; i < ncases; i++ {
		v := int64(g.intn(8))
		if used[v] {
			continue
		}
		used[v] = true
		c := &ast.SwitchCase{
			Vals: []ast.Expr{&ast.IntLit{Val: v, Typ: types.I32Type}},
		}
		g.pushScope()
		nb := 1 + g.intn(2)
		for j := 0; j < nb; j++ {
			c.Body = append(c.Body, g.flatStmt(depth)...)
		}
		g.popScope()
		if g.chance(85) {
			c.Body = append(c.Body, &ast.Break{})
		}
		s.Cases = append(s.Cases, c)
	}
	if g.chance(60) {
		c := &ast.SwitchCase{IsDefault: true}
		g.pushScope()
		c.Body = append(c.Body, g.assignStmt())
		g.popScope()
		s.Cases = append(s.Cases, c)
	}
	return s
}

// flatStmt generates a non-nesting statement for switch-case bodies
// (avoiding declarations, whose scope inside case groups is subtle in C).
func (g *generator) flatStmt(depth int) []ast.Stmt {
	switch g.intn(4) {
	case 0:
		return []ast.Stmt{g.incDecStmt()}
	case 1:
		if s := g.callStmt(); s != nil {
			return []ast.Stmt{s}
		}
		fallthrough
	default:
		return []ast.Stmt{g.assignStmt()}
	}
}

// pickCallee chooses an earlier-defined helper (keeping the call graph
// acyclic) whose estimated cost fits the call budget at the current loop
// multiplier. Returns nil when no callee is affordable.
func (g *generator) pickCallee() *ast.FuncDecl {
	n := g.fnIndex
	if n > len(g.funcs) {
		n = len(g.funcs)
	}
	if n == 0 || g.curCost >= fnBudget {
		return nil
	}
	var cands []int
	for i := 0; i < n; i++ {
		if g.loopMult*g.fnCosts[i] <= callBudget {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	i := cands[g.intn(len(cands))]
	g.curCost += g.loopMult * g.fnCosts[i]
	return g.funcs[i]
}

// callStmt calls an affordable helper, usually assigning the result to an
// integer lvalue.
func (g *generator) callStmt() ast.Stmt {
	callee := g.pickCallee()
	if callee == nil {
		return nil
	}
	call := &ast.Call{Name: callee.Name}
	for _, p := range callee.Params {
		if p.Typ.Kind == types.Pointer {
			call.Args = append(call.Args, g.ptrExpr(p.Typ.Elem))
		} else {
			call.Args = append(call.Args, g.intExpr(1))
		}
	}
	if g.chance(70) {
		return &ast.ExprStmt{X: &ast.Assign{
			Op: token.Assign, LHS: g.intLvalue(), RHS: call,
		}}
	}
	return &ast.ExprStmt{X: call}
}
