package cgen

import (
	"dcelens/internal/ast"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// intExpr generates an integer-valued expression. Its exact type is
// whatever falls out of the operand types; sema inserts the implicit
// conversions, so the generator only guarantees "integer-typed".
func (g *generator) intExpr(depth int) ast.Expr {
	if depth >= g.cfg.MaxExprDepth || g.chance(30) {
		return g.intLeaf()
	}
	switch g.intn(12) {
	case 0, 1, 2, 3:
		return &ast.Binary{Op: g.arithOp(), X: g.intExpr(depth + 1), Y: g.intExpr(depth + 1)}
	case 4, 5:
		return &ast.Binary{Op: g.bitOp(), X: g.intExpr(depth + 1), Y: g.intExpr(depth + 1)}
	case 6:
		return &ast.Binary{Op: g.shiftOp(), X: g.intExpr(depth + 1), Y: g.intExpr(depth + 1)}
	case 7, 8:
		return g.condExpr(depth + 1)
	case 9:
		op := token.Minus
		if g.chance(40) {
			op = token.Tilde
		}
		return &ast.Unary{Op: op, X: g.intExpr(depth + 1)}
	case 10:
		return &ast.Cond{
			CondX: g.condExpr(depth + 1),
			Then:  g.intExpr(depth + 1),
			Else:  g.intExpr(depth + 1),
		}
	default:
		return g.intLeaf()
	}
}

func (g *generator) arithOp() token.Kind {
	ops := []token.Kind{token.Plus, token.Plus, token.Minus, token.Minus,
		token.Star, token.Slash, token.Percent}
	return ops[g.intn(len(ops))]
}

func (g *generator) bitOp() token.Kind {
	ops := []token.Kind{token.Amp, token.Pipe, token.Caret}
	return ops[g.intn(len(ops))]
}

func (g *generator) shiftOp() token.Kind {
	if g.chance(50) {
		return token.Shl
	}
	return token.Shr
}

func (g *generator) cmpOp() token.Kind {
	ops := []token.Kind{token.EqEq, token.NotEq, token.Lt, token.Gt, token.Le, token.Ge}
	return ops[g.intn(len(ops))]
}

// condExpr generates a condition-shaped expression (still integer typed):
// comparisons, logical connectives, negations, and — the paper's favourite
// shape — pointer equality tests.
func (g *generator) condExpr(depth int) ast.Expr {
	if depth >= g.cfg.MaxExprDepth {
		return g.intLeaf()
	}
	switch g.intn(10) {
	case 0, 1, 2, 3:
		return &ast.Binary{Op: g.cmpOp(), X: g.intExpr(depth + 1), Y: g.intExpr(depth + 1)}
	case 4:
		op := token.AndAnd
		if g.chance(50) {
			op = token.OrOr
		}
		return &ast.Binary{Op: op, X: g.condExpr(depth + 1), Y: g.condExpr(depth + 1)}
	case 5:
		return &ast.Unary{Op: token.Not, X: g.condExpr(depth + 1)}
	case 6:
		if cmp := g.ptrComparison(); cmp != nil {
			return cmp
		}
		fallthrough
	case 7, 8:
		return &ast.Binary{Op: g.cmpOp(), X: g.intLeaf(), Y: g.smallConst(nil)}
	default:
		return g.intLeaf()
	}
}

// ptrComparison compares two pointers of the same type, when available.
func (g *generator) ptrComparison() ast.Expr {
	pv := g.pickPtrVar(nil)
	if pv == nil {
		return nil
	}
	rhs := g.ptrExpr(pv.Typ.Elem)
	op := token.EqEq
	if g.chance(50) {
		op = token.NotEq
	}
	return &ast.Binary{Op: op, X: &ast.VarRef{Name: pv.Name}, Y: rhs}
}

// intLeaf generates a terminal integer expression: a literal, a readable
// variable, an array element, a dereference, or (rarely) a call.
func (g *generator) intLeaf() ast.Expr {
	switch g.intn(12) {
	case 0, 1, 2:
		return g.smallConst(nil)
	case 3:
		if arr := g.pickArray(); arr != nil {
			return g.arrayElem(arr)
		}
	case 4:
		if pv := g.pickPtrVar(nil); pv != nil {
			return g.derefToInt(pv)
		}
	case 5:
		if g.chance(30) {
			if callee := g.pickCallee(); callee != nil {
				ok := true
				call := &ast.Call{Name: callee.Name}
				for _, p := range callee.Params {
					if p.Typ.Kind == types.Pointer {
						if !g.havePtrSource(p.Typ.Elem) {
							ok = false
							break
						}
						call.Args = append(call.Args, g.ptrExpr(p.Typ.Elem))
					} else {
						call.Args = append(call.Args, g.smallConst(nil))
					}
				}
				if ok {
					return call
				}
			}
		}
	}
	if v := g.pickReadableInt(); v != nil {
		return &ast.VarRef{Name: v.Name}
	}
	return g.smallConst(nil)
}

// intLvalue generates an assignable integer location: a scalar variable, an
// array element, or a dereferenced integer pointer.
func (g *generator) intLvalue() ast.Expr {
	switch g.intn(10) {
	case 0, 1:
		if arr := g.pickArray(); arr != nil {
			return g.arrayElem(arr)
		}
	case 2:
		if pv := g.pickIntPtrVar(); pv != nil {
			return &ast.Unary{Op: token.Star, X: &ast.VarRef{Name: pv.Name}}
		}
	}
	if v := g.pickAssignableInt(); v != nil {
		return &ast.VarRef{Name: v.Name}
	}
	// Pools can only be empty in degenerate configs; synthesize a global
	// would be invasive, so fall back to the first global (always present
	// in supported configs).
	return &ast.VarRef{Name: g.intGlobals[0].Name}
}

// arrayElem indexes arr with a masked index, guaranteed in bounds because
// array lengths are powers of two: (expr & (len-1)) is always in [0, len).
func (g *generator) arrayElem(arr *ast.VarDecl) ast.Expr {
	var idx ast.Expr
	if g.chance(40) {
		idx = &ast.IntLit{Val: int64(g.intn(arr.Typ.Len)), Typ: types.I32Type}
	} else {
		idx = &ast.Binary{
			Op: token.Amp,
			X:  g.intExpr(g.cfg.MaxExprDepth - 1),
			Y:  &ast.IntLit{Val: int64(arr.Typ.Len - 1), Typ: types.I32Type},
		}
	}
	return &ast.Index{Base: &ast.VarRef{Name: arr.Name}, Idx: idx}
}

// derefToInt applies * to a pointer variable until the result is an
// integer (pointer depth is at most 2 by construction).
func (g *generator) derefToInt(pv *ast.VarDecl) ast.Expr {
	var e ast.Expr = &ast.VarRef{Name: pv.Name}
	t := pv.Typ
	for t.Kind == types.Pointer {
		e = &ast.Unary{Op: token.Star, X: e}
		t = t.Elem
	}
	return e
}

// ---------------------------------------------------------------------------
// Variable selection

func (g *generator) pickReadableInt() *ast.VarDecl {
	// Loop counters are attractive reads: conditions over them vary per
	// iteration, which is what creates partially-dead paths.
	if len(g.roLocals) > 0 && g.chance(35) {
		return g.roLocals[g.intn(len(g.roLocals))]
	}
	return g.pickAssignableInt()
}

func (g *generator) pickAssignableInt() *ast.VarDecl {
	nl, ng := len(g.intLocals), len(g.intGlobals)
	if nl+ng == 0 {
		return nil
	}
	// Slight bias toward globals: global state feeds the checksum and the
	// interprocedural analyses.
	if ng > 0 && (nl == 0 || g.chance(55)) {
		return g.intGlobals[g.intn(ng)]
	}
	return g.intLocals[g.intn(nl)]
}

func (g *generator) pickArray() *ast.VarDecl {
	na, nl := len(g.arrGlobals), len(g.arrLocals)
	if na+nl == 0 {
		return nil
	}
	if nl > 0 && g.chance(30) {
		return g.arrLocals[g.intn(nl)]
	}
	if na == 0 {
		return g.arrLocals[g.intn(nl)]
	}
	return g.arrGlobals[g.intn(na)]
}

// pickPtrVar selects a pointer variable; when pointee is non-nil only
// pointers to exactly that type qualify.
func (g *generator) pickPtrVar(pointee *types.Type) *ast.VarDecl {
	var cands []*ast.VarDecl
	for _, p := range g.ptrGlobals {
		if pointee == nil || types.Identical(p.Typ.Elem, pointee) {
			cands = append(cands, p)
		}
	}
	for _, p := range g.ptrLocals {
		if pointee == nil || types.Identical(p.Typ.Elem, pointee) {
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[g.intn(len(cands))]
}

// pickIntPtrVar selects a pointer whose pointee is an integer type.
func (g *generator) pickIntPtrVar() *ast.VarDecl {
	var cands []*ast.VarDecl
	for _, p := range append(append([]*ast.VarDecl{}, g.ptrGlobals...), g.ptrLocals...) {
		if p.Typ.Elem.IsInteger() {
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[g.intn(len(cands))]
}

// pickPointeeType chooses a pointee type for a new pointer such that a
// valid pointer expression of that type exists.
func (g *generator) pickPointeeType() *types.Type {
	var cands []*types.Type
	for _, v := range g.intGlobals {
		cands = append(cands, v.Typ)
	}
	for _, a := range g.arrGlobals {
		cands = append(cands, a.Typ.Elem)
	}
	for _, p := range g.ptrGlobals {
		cands = append(cands, p.Typ.Elem)
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[g.intn(len(cands))]
}

// havePtrSource reports whether ptrExpr(pointee) can succeed.
func (g *generator) havePtrSource(pointee *types.Type) bool {
	if g.pickPtrVar(pointee) != nil {
		return true
	}
	for _, v := range g.intGlobals {
		if types.Identical(v.Typ, pointee) {
			return true
		}
	}
	for _, a := range g.arrGlobals {
		if types.Identical(a.Typ.Elem, pointee) {
			return true
		}
	}
	for _, p := range g.ptrGlobals {
		if types.Identical(p.Typ, pointee) {
			return true // &ptrGlobal for a pointer-to-pointer
		}
	}
	return false
}

// ptrExpr generates a valid pointer expression with the given pointee type:
// an existing pointer variable, the address of a global of that type, the
// address of an array element, or a load through a pointer-to-pointer.
// Pointers always target global storage, so they can never dangle.
func (g *generator) ptrExpr(pointee *types.Type) ast.Expr {
	type candidate func() ast.Expr
	var cands []candidate

	if pv := g.pickPtrVar(pointee); pv != nil {
		cands = append(cands, func() ast.Expr { return &ast.VarRef{Name: pv.Name} })
	}
	for _, v := range g.intGlobals {
		if types.Identical(v.Typ, pointee) {
			v := v
			cands = append(cands, func() ast.Expr {
				return &ast.Unary{Op: token.Amp, X: &ast.VarRef{Name: v.Name}}
			})
			break
		}
	}
	for _, a := range g.arrGlobals {
		if types.Identical(a.Typ.Elem, pointee) {
			a := a
			cands = append(cands, func() ast.Expr {
				return &ast.Unary{Op: token.Amp, X: g.arrayElem(a).(*ast.Index)}
			})
			break
		}
	}
	for _, p := range g.ptrGlobals {
		if types.Identical(p.Typ, pointee) {
			p := p
			cands = append(cands, func() ast.Expr {
				return &ast.Unary{Op: token.Amp, X: &ast.VarRef{Name: p.Name}}
			})
			break
		}
	}
	// A pointer-to-pointer can be dereferenced once to yield a pointer.
	for _, pp := range append(append([]*ast.VarDecl{}, g.ptrGlobals...), g.ptrLocals...) {
		if pp.Typ.Elem.Kind == types.Pointer && types.Identical(pp.Typ.Elem.Elem, pointee) {
			pp := pp
			cands = append(cands, func() ast.Expr {
				return &ast.Unary{Op: token.Star, X: &ast.VarRef{Name: pp.Name}}
			})
			break
		}
	}

	if len(cands) == 0 {
		panic("cgen: ptrExpr called with no available source (generator invariant violated)")
	}
	return cands[g.intn(len(cands))]()
}
