package cgen

import (
	"testing"
	"testing/quick"

	"dcelens/internal/ast"
	"dcelens/internal/interp"
	"dcelens/internal/parser"
	"dcelens/internal/sema"
	"dcelens/internal/types"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p1 := Generate(DefaultConfig(seed))
		p2 := Generate(DefaultConfig(seed))
		if ast.Print(p1) != ast.Print(p2) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
	}
}

func TestGenerateDiffersAcrossSeeds(t *testing.T) {
	p1 := Generate(DefaultConfig(1))
	p2 := Generate(DefaultConfig(2))
	if ast.Print(p1) == ast.Print(p2) {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestGeneratedProgramsRoundTrip is the core generator property: every
// generated program prints to source that reparses, rechecks, and reprints
// to the same text.
func TestGeneratedProgramsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		prog := Generate(DefaultConfig(seed))
		src := ast.Print(prog)
		prog2, err := parser.Parse(src)
		if err != nil {
			t.Logf("seed %d: reparse failed: %v", seed, err)
			return false
		}
		if err := sema.Check(prog2); err != nil {
			t.Logf("seed %d: recheck failed: %v", seed, err)
			return false
		}
		if ast.Print(prog2) != src {
			t.Logf("seed %d: print not a fixpoint", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedProgramsExecute checks the definedness and termination
// invariants: generated programs run to completion in the reference
// interpreter without runtime errors and well within the fuel budget.
func TestGeneratedProgramsExecute(t *testing.T) {
	f := func(seed int64) bool {
		prog := Generate(DefaultConfig(seed))
		res, err := interp.Run(prog, interp.Options{Fuel: 20_000_000})
		if err != nil {
			t.Logf("seed %d: execution failed: %v\n%s", seed, err, ast.Print(prog))
			return false
		}
		// Execution must also be deterministic.
		res2, err := interp.Run(prog, interp.Options{Fuel: 20_000_000})
		if err != nil || res.Checksum != res2.Checksum || res.ExitCode != res2.ExitCode {
			t.Logf("seed %d: nondeterministic execution", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedProgramShape(t *testing.T) {
	prog := Generate(DefaultConfig(42))
	if prog.Main() == nil {
		t.Fatal("no main")
	}
	if len(prog.Funcs()) < 2 {
		t.Fatal("expected helper functions")
	}
	if len(prog.Globals()) < 5 {
		t.Fatal("expected globals")
	}
	// Programs should have a healthy number of statements for block
	// instrumentation to be meaningful.
	n := ast.CountNodes(prog)
	if n < 100 {
		t.Fatalf("program too small: %d nodes", n)
	}
}

func TestSmallConfigExecutes(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		prog := Generate(SmallConfig(seed))
		if _, err := interp.Run(prog, interp.Options{Fuel: 5_000_000}); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, ast.Print(prog))
		}
	}
}

// TestGeneratorFeatureCoverage guards against silent generator drift:
// across a modest seed range, every statement and expression kind the
// generator supports must actually appear.
func TestGeneratorFeatureCoverage(t *testing.T) {
	found := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		prog := Generate(DefaultConfig(seed))
		ast.Inspect(prog, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.If:
				found["if"] = true
				if x.Else != nil {
					found["else"] = true
				}
			case *ast.For:
				found["for"] = true
			case *ast.While:
				found["while"] = true
			case *ast.DoWhile:
				found["dowhile"] = true
			case *ast.Switch:
				found["switch"] = true
			case *ast.Break:
				found["break"] = true
			case *ast.Continue:
				found["continue"] = true
			case *ast.Return:
				found["return"] = true
			case *ast.Cond:
				found["ternary"] = true
			case *ast.IncDec:
				found["incdec"] = true
			case *ast.Call:
				found["call"] = true
			case *ast.Index:
				found["index"] = true
			case *ast.Assign:
				found["assign"] = true
				if x.Op.BaseOf() != 0 {
					found["compound-assign"] = true
				}
			case *ast.Unary:
				switch x.Op.String() {
				case "&":
					found["addr-of"] = true
				case "*":
					found["deref"] = true
				case "!":
					found["not"] = true
				case "~":
					found["bitnot"] = true
				case "-":
					found["neg"] = true
				}
			case *ast.VarDecl:
				if x.Storage == ast.StorageStatic && !x.IsGlobal {
					found["static-local"] = true
				}
				if x.Typ.Kind == types.Pointer && x.Typ.Elem.Kind == types.Pointer {
					found["ptr-to-ptr"] = true
				}
			}
			return true
		})
	}
	wanted := []string{
		"if", "else", "for", "while", "dowhile", "switch", "break",
		"continue", "return", "ternary", "incdec", "call", "index",
		"assign", "compound-assign", "addr-of", "deref", "not", "bitnot",
		"neg", "static-local", "ptr-to-ptr",
	}
	for _, w := range wanted {
		if !found[w] {
			t.Errorf("feature %q never generated in 40 seeds", w)
		}
	}
}
