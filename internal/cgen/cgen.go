// Package cgen generates random MiniC programs, playing the role Csmith
// plays in the paper: a source of deterministic, closed (input-free)
// programs with abundant dead code for the DCE-based missed-optimization
// search.
//
// Generated programs satisfy by construction the invariants the reproduction
// relies on:
//
//   - Determinism: generation is a pure function of Config (including Seed).
//   - Termination: every loop iterates a bounded, generator-chosen number of
//     times (loops run over dedicated counters that the body never writes).
//   - Definedness: array indices are masked to the (power-of-two) array
//     length, pointers are always initialized to valid storage and never
//     advanced out of bounds, and the call graph is acyclic, so programs
//     never trigger a runtime error in the reference interpreter.
//
// Like Csmith-generated code, the output is mostly-dead: conditions over
// runtime values frequently evaluate one way for the whole execution, so a
// large fraction of blocks never run (the paper reports 89.59% dead blocks;
// see BenchmarkDeadBlockPrevalence for our measurement).
package cgen

import (
	"fmt"
	"math/rand"

	"dcelens/internal/ast"
	"dcelens/internal/sema"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// Config controls program generation. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	Seed int64

	// Functions is the number of helper functions besides main.
	Functions int
	// Globals is the number of global integer scalars.
	Globals int
	// Arrays is the number of global arrays.
	Arrays int
	// Pointers is the number of global pointer variables.
	Pointers int

	// MaxExprDepth bounds expression nesting.
	MaxExprDepth int
	// MaxBlockDepth bounds statement nesting (if/loop/switch).
	MaxBlockDepth int
	// MinStmts/MaxStmts bound the number of statements per block.
	MinStmts, MaxStmts int
	// MaxLoopIter bounds the trip count of any generated loop.
	MaxLoopIter int
}

// DefaultConfig returns the configuration used by the evaluation corpus:
// programs of roughly 150-400 statements, comparable in block count to the
// paper's Csmith settings scaled to the simulator.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Functions:     5,
		Globals:       10,
		Arrays:        3,
		Pointers:      4,
		MaxExprDepth:  4,
		MaxBlockDepth: 3,
		MinStmts:      2,
		MaxStmts:      5,
		MaxLoopIter:   12,
	}
}

// SmallConfig returns a configuration for quick tests: tiny programs that
// still exercise every statement kind.
func SmallConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Functions:     2,
		Globals:       5,
		Arrays:        2,
		Pointers:      2,
		MaxExprDepth:  3,
		MaxBlockDepth: 2,
		MinStmts:      1,
		MaxStmts:      3,
		MaxLoopIter:   6,
	}
}

// Generate produces a random MiniC program. The result is fully checked
// (sema has run); Generate panics if it ever produces an invalid program,
// since that is a generator bug, not an input error.
func Generate(cfg Config) *ast.Program {
	g := &generator{
		cfg: cfg,
		r:   rand.New(rand.NewSource(cfg.Seed)),
	}
	prog := g.program()
	if err := sema.Check(prog); err != nil {
		panic(fmt.Sprintf("cgen: generated invalid program (seed %d): %v\n%s",
			cfg.Seed, err, ast.Print(prog)))
	}
	return prog
}

// ---------------------------------------------------------------------------

type generator struct {
	cfg  Config
	r    *rand.Rand
	name int

	// Global symbol pools.
	intGlobals []*ast.VarDecl // integer scalars
	arrGlobals []*ast.VarDecl // integer arrays
	ptrGlobals []*ast.VarDecl // *T and **T

	funcs []*ast.FuncDecl // generated helpers, callable DAG-style

	// Per-function state. Scopes track which locals are visible; each entry
	// is the pool size at scope entry, so popping truncates.
	intLocals []*ast.VarDecl
	ptrLocals []*ast.VarDecl
	arrLocals []*ast.VarDecl
	roLocals  []*ast.VarDecl // read-only loop counters: readable, never assigned
	scopeInt  []int
	scopePtr  []int
	scopeArr  []int
	scopeRO   []int
	fnIndex   int // index of the function being generated; may call funcs[<fnIndex]
	loopDepth int

	// Execution-cost accounting. loopMult is the product of the trip counts
	// of the enclosing loops being generated; curCost estimates the dynamic
	// step count of the current function (own statements plus callee costs);
	// fnCosts records the final estimate per generated helper. Call sites
	// and loop nests are only emitted while the estimates stay within the
	// budgets below, which bounds whole-program execution time regardless
	// of how the random choices fall.
	loopMult int64
	curCost  int64
	fnCosts  []int64
}

// Cost budgets (in estimated interpreter steps). maxLoopMult bounds the
// iteration multiplier of any statement; callBudget bounds the total cost a
// single call site may contribute; fnBudget stops loop/call generation once
// a function's estimate is exceeded.
const (
	maxLoopMult = 5_000
	callBudget  = 100_000
	fnBudget    = 1_500_000
	stmtCost    = 20 // rough interpreter steps per generated statement
)

func (g *generator) fresh(prefix string) string {
	g.name++
	return fmt.Sprintf("%s_%d", prefix, g.name)
}

func (g *generator) intn(n int) int { return g.r.Intn(n) }

// chance returns true with probability pct/100.
func (g *generator) chance(pct int) bool { return g.r.Intn(100) < pct }

func (g *generator) pickType() *types.Type {
	// Weighted toward int, like Csmith.
	switch g.intn(10) {
	case 0:
		return types.I8Type
	case 1:
		return types.U8Type
	case 2:
		return types.I16Type
	case 3:
		return types.U16Type
	case 4, 5, 6:
		return types.I32Type
	case 7:
		return types.U32Type
	case 8:
		return types.I64Type
	default:
		return types.U64Type
	}
}

// smallConst returns a literal with a small magnitude, biased toward zero:
// zero-heavy initial state is what makes many branches dead at runtime.
func (g *generator) smallConst(t *types.Type) *ast.IntLit {
	var v int64
	switch g.intn(10) {
	case 0, 1, 2, 3:
		v = 0
	case 4, 5:
		v = int64(g.intn(3)) + 1
	case 6:
		v = -int64(g.intn(5)) - 1
	case 7:
		v = int64(g.intn(100))
	case 8:
		v = int64(g.intn(1 << 14))
	default:
		v = g.r.Int63n(1 << 31)
		if g.chance(50) {
			v = -v
		}
	}
	lt := types.I32Type
	if t != nil && t.IsInteger() && t.Bits() == 64 {
		lt = types.I64Type
	}
	if t != nil && !t.IsSigned() && v < 0 {
		v = -v
	}
	return &ast.IntLit{Val: lt.WrapValue(v), Typ: lt}
}

// ---------------------------------------------------------------------------
// Program structure

func (g *generator) program() *ast.Program {
	prog := &ast.Program{}

	// Globals: mostly static (internal linkage), as in the paper's test
	// cases — static is what allows interprocedural constant analysis.
	for i := 0; i < g.cfg.Globals; i++ {
		d := &ast.VarDecl{
			Name:     g.fresh("g"),
			Typ:      g.pickType(),
			Storage:  ast.StorageStatic,
			IsGlobal: true,
			Init:     g.smallConst(nil),
		}
		if g.chance(15) {
			d.Storage = ast.StorageNone // occasionally external linkage
		}
		g.intGlobals = append(g.intGlobals, d)
		prog.Decls = append(prog.Decls, d)
	}
	for i := 0; i < g.cfg.Arrays; i++ {
		elem := g.pickType()
		length := 1 << (1 + g.intn(3)) // 2, 4, or 8: power of two for masking
		init := &ast.ArrayInit{Typ: types.ArrayOf(elem, length)}
		for j := 0; j < length && g.chance(70); j++ {
			init.Elems = append(init.Elems, g.smallConst(elem))
		}
		d := &ast.VarDecl{
			Name:     g.fresh("arr"),
			Typ:      types.ArrayOf(elem, length),
			Storage:  ast.StorageStatic,
			IsGlobal: true,
			Init:     init,
		}
		if len(init.Elems) == 0 {
			d.Init = nil
		}
		g.arrGlobals = append(g.arrGlobals, d)
		prog.Decls = append(prog.Decls, d)
	}
	for i := 0; i < g.cfg.Pointers; i++ {
		d := g.pointerGlobal()
		if d == nil {
			break
		}
		g.ptrGlobals = append(g.ptrGlobals, d)
		prog.Decls = append(prog.Decls, d)
	}

	// Helper functions: funcs[i] may call funcs[j] for j < i, keeping the
	// call graph acyclic and execution terminating.
	for i := 0; i < g.cfg.Functions; i++ {
		g.fnIndex = i
		f := g.function(i)
		g.funcs = append(g.funcs, f)
		prog.Decls = append(prog.Decls, f)
	}

	g.fnIndex = len(g.funcs)
	prog.Decls = append(prog.Decls, g.mainFunction())
	return prog
}

// pointerGlobal declares a global pointer initialized to the address of an
// existing global. Returns nil if there is nothing to point at.
func (g *generator) pointerGlobal() *ast.VarDecl {
	// Pointer-to-pointer with 25% probability, if a pointer global exists.
	if len(g.ptrGlobals) > 0 && g.chance(25) {
		target := g.ptrGlobals[g.intn(len(g.ptrGlobals))]
		return &ast.VarDecl{
			Name:     g.fresh("pp"),
			Typ:      types.PointerTo(target.Typ),
			Storage:  ast.StorageStatic,
			IsGlobal: true,
			Init: &ast.Unary{Op: token.Amp,
				X: &ast.VarRef{Name: target.Name}},
		}
	}
	switch {
	case len(g.arrGlobals) > 0 && g.chance(40):
		target := g.arrGlobals[g.intn(len(g.arrGlobals))]
		idx := g.intn(target.Typ.Len)
		return &ast.VarDecl{
			Name:     g.fresh("p"),
			Typ:      types.PointerTo(target.Typ.Elem),
			Storage:  ast.StorageStatic,
			IsGlobal: true,
			Init: &ast.Unary{Op: token.Amp, X: &ast.Index{
				Base: &ast.VarRef{Name: target.Name},
				Idx:  &ast.IntLit{Val: int64(idx), Typ: types.I32Type},
			}},
		}
	case len(g.intGlobals) > 0:
		target := g.intGlobals[g.intn(len(g.intGlobals))]
		return &ast.VarDecl{
			Name:     g.fresh("p"),
			Typ:      types.PointerTo(target.Typ),
			Storage:  ast.StorageStatic,
			IsGlobal: true,
			Init: &ast.Unary{Op: token.Amp,
				X: &ast.VarRef{Name: target.Name}},
		}
	}
	return nil
}

func (g *generator) function(i int) *ast.FuncDecl {
	f := &ast.FuncDecl{
		Name:    fmt.Sprintf("func_%d", i),
		Ret:     g.pickType(),
		Storage: ast.StorageStatic,
	}
	nparams := g.intn(3)
	for p := 0; p < nparams; p++ {
		typ := g.pickType()
		// Pointer parameters (pointing at global storage) create
		// interprocedural aliasing for the optimizer to reason about.
		if g.chance(20) && len(g.intGlobals) > 0 {
			pointee := g.intGlobals[g.intn(len(g.intGlobals))].Typ
			typ = types.PointerTo(pointee)
		}
		f.Params = append(f.Params, &ast.VarDecl{
			Name:    g.fresh("a"),
			Typ:     typ,
			IsParam: true,
		})
	}
	g.resetFuncState()
	for _, p := range f.Params {
		if p.Typ.Kind == types.Pointer {
			g.ptrLocals = append(g.ptrLocals, p)
		} else {
			g.intLocals = append(g.intLocals, p)
		}
	}
	f.Body = g.block(0, true /* needReturn */, f.Ret)
	g.fnCosts = append(g.fnCosts, g.curCost+stmtCost)
	return f
}

func (g *generator) mainFunction() *ast.FuncDecl {
	f := &ast.FuncDecl{
		Name: "main",
		Ret:  types.I32Type,
	}
	g.resetFuncState()
	f.Body = g.block(0, true, types.I32Type)
	return f
}

func (g *generator) resetFuncState() {
	g.intLocals = g.intLocals[:0]
	g.ptrLocals = g.ptrLocals[:0]
	g.arrLocals = g.arrLocals[:0]
	g.roLocals = g.roLocals[:0]
	g.scopeInt = g.scopeInt[:0]
	g.scopePtr = g.scopePtr[:0]
	g.scopeArr = g.scopeArr[:0]
	g.scopeRO = g.scopeRO[:0]
	g.loopDepth = 0
	g.loopMult = 1
	g.curCost = 0
}

func (g *generator) pushScope() {
	g.scopeInt = append(g.scopeInt, len(g.intLocals))
	g.scopePtr = append(g.scopePtr, len(g.ptrLocals))
	g.scopeArr = append(g.scopeArr, len(g.arrLocals))
	g.scopeRO = append(g.scopeRO, len(g.roLocals))
}

func (g *generator) popScope() {
	n := len(g.scopeInt) - 1
	g.intLocals = g.intLocals[:g.scopeInt[n]]
	g.ptrLocals = g.ptrLocals[:g.scopePtr[n]]
	g.arrLocals = g.arrLocals[:g.scopeArr[n]]
	g.roLocals = g.roLocals[:g.scopeRO[n]]
	g.scopeInt = g.scopeInt[:n]
	g.scopePtr = g.scopePtr[:n]
	g.scopeArr = g.scopeArr[:n]
	g.scopeRO = g.scopeRO[:n]
}
