package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dcelens/internal/corpus"
	"dcelens/internal/harness"
	"dcelens/internal/report"
)

// fastSpec is a small single-compiler campaign: n seeds, three levels, so
// level-diff findings are still possible but each seed costs only three
// units.
func fastSpec(n int) Spec {
	return Spec{
		Programs:      n,
		BaseSeed:      1,
		Workers:       1,
		Personalities: []string{"gcc"},
		Levels:        []string{"O1", "O2", "O3"},
	}
}

// refReport runs the spec's campaign directly (no service, no
// interruptions) and renders its report — the byte-identity reference for
// every resilience path.
func refReport(t *testing.T, spec Spec) string {
	t.Helper()
	ps, err := spec.personalities()
	if err != nil {
		t.Fatal(err)
	}
	ls, err := spec.levels()
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Run(corpus.Options{
		Programs:      spec.Programs,
		BaseSeed:      spec.BaseSeed,
		Workers:       1,
		Personalities: ps,
		Levels:        ls,
	})
	if err != nil {
		t.Fatal(err)
	}
	return report.Summary(c)
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, j *Job) State {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if s := j.State(); s.Terminal() {
			return s
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in state %s", j.ID, j.State())
	return ""
}

func startEngine(t *testing.T, l Limits) *Engine {
	t.Helper()
	e := New("dce-serve-test", l)
	e.Start()
	t.Cleanup(e.Drain)
	return e
}

func TestJobLifecycleToDone(t *testing.T) {
	hist := t.TempDir()
	e := startEngine(t, Limits{Executors: 1, HistoryDir: hist})
	j, err := e.Submit(fastSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "job-1" {
		t.Fatalf("first job id = %q, want job-1", j.ID)
	}
	if s := waitTerminal(t, j); s != StateDone {
		t.Fatalf("state = %s (err %q), want done", s, j.Status().Error)
	}
	st := j.Status()
	if st.Attempt != 1 || st.SeedsDone != 3 || st.Skipped != 0 || st.Error != "" {
		t.Fatalf("done status = %+v", st)
	}
	if st.Snapshot == "" {
		t.Fatal("done job has no history snapshot path")
	}
	if _, err := os.Stat(st.Snapshot); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	text, ok := j.Report()
	if !ok || text == "" {
		t.Fatalf("report missing (ok=%v)", ok)
	}
	if want := refReport(t, fastSpec(3)); text != want {
		t.Fatalf("service report differs from direct run:\n--- service\n%s\n--- direct\n%s", text, want)
	}
	if got := e.Metrics().Counter(CounterDone).Value(); got != 1 {
		t.Fatalf("done counter = %d, want 1", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := New("dce-serve-test", Limits{MaxSeeds: 5, MaxWorkers: 2, MaxAttempts: 4})
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"zero programs", Spec{}, "programs: must be positive"},
		{"over seed cap", Spec{Programs: 6}, "seed cap"},
		{"bad personality", Spec{Programs: 1, Personalities: []string{"icc"}}, "unknown compiler"},
		{"bad level", Spec{Programs: 1, Levels: []string{"O9"}}, "unknown level"},
		{"bad inject", Spec{Programs: 1, Inject: "explode:gvn:1"}, "fault"},
	}
	for _, tc := range cases {
		if _, err := e.Submit(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if got := e.Metrics().Counter(CounterRejected).Value(); got != int64(len(cases)) {
		t.Fatalf("rejected counter = %d, want %d", got, len(cases))
	}
	// Clamps rather than rejections: workers to the cap, attempts to the cap.
	j, err := e.Submit(Spec{Programs: 2, Workers: 99, MaxAttempts: 99})
	if err != nil {
		t.Fatal(err)
	}
	if j.Spec.Workers != 2 || j.Spec.MaxAttempts != 4 {
		t.Fatalf("clamped spec = workers %d, attempts %d; want 2, 4", j.Spec.Workers, j.Spec.MaxAttempts)
	}
}

// TestBackpressure: with no executor draining it, the queue fills and
// further submissions bounce with ErrQueueFull — nothing blocks, nothing
// buffers beyond the bound.
func TestBackpressure(t *testing.T) {
	e := New("dce-serve-test", Limits{QueueDepth: 2}) // deliberately not started
	for i := 0; i < 2; i++ {
		if _, err := e.Submit(fastSpec(1)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if e.Health() != "degraded" {
		t.Fatalf("health with full queue = %q, want degraded", e.Health())
	}
	if _, err := e.Submit(fastSpec(1)); err != ErrQueueFull {
		t.Fatalf("submit on full queue: err = %v, want ErrQueueFull", err)
	}
	if got := e.Metrics().Counter(CounterRejected).Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	if depth, capacity := e.QueueDepth(); depth != 2 || capacity != 2 {
		t.Fatalf("queue = %d/%d, want 2/2", depth, capacity)
	}

	// Draining an engine with queued jobs cancels them in place.
	e.Drain()
	if e.Health() != "draining" {
		t.Fatalf("health after drain = %q, want draining", e.Health())
	}
	if _, err := e.Submit(fastSpec(1)); err != ErrDraining {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}
	for _, j := range e.Jobs() {
		if j.State() != StateCancelled {
			t.Fatalf("queued job %s after drain = %s, want cancelled", j.ID, j.State())
		}
	}
	if got := e.Metrics().Counter(CounterCancelled).Value(); got != 2 {
		t.Fatalf("cancelled counter = %d, want 2", got)
	}
}

// TestChaosRetryByteIdentical is the acceptance chaos test: a job whose
// worker panics twice is retried from its checkpoint with backoff, and
// the report it finally produces is byte-identical to an uninterrupted
// serial run's.
func TestChaosRetryByteIdentical(t *testing.T) {
	e := startEngine(t, Limits{Executors: 1, Backoff: time.Millisecond})
	spec := fastSpec(4)
	spec.MaxAttempts = 3
	spec.Chaos = &Chaos{CrashAtSeed: 3, Times: 2} // seeds are 1..4
	j, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StateDone {
		t.Fatalf("state = %s (err %q), want done after retries", s, j.Status().Error)
	}
	st := j.Status()
	if st.Attempt != 3 {
		t.Fatalf("attempts = %d, want 3 (two chaos crashes + one clean run)", st.Attempt)
	}
	if got := e.Metrics().Counter(CounterRetried).Value(); got != 2 {
		t.Fatalf("retried counter = %d, want 2", got)
	}
	text, _ := j.Report()
	if want := refReport(t, fastSpec(4)); text != want {
		t.Fatalf("retried report differs from uninterrupted run:\n--- retried\n%s\n--- direct\n%s", text, want)
	}
}

// TestRetriesExhausted: a chaos crash on every attempt fails the job with
// the attempt trail in its error; completed seeds stay checkpointed.
func TestRetriesExhausted(t *testing.T) {
	e := startEngine(t, Limits{Executors: 1, Backoff: time.Millisecond})
	spec := fastSpec(3)
	spec.MaxAttempts = 2
	spec.Chaos = &Chaos{CrashAtSeed: 2, Times: 99}
	j, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StateFailed {
		t.Fatalf("state = %s, want failed", s)
	}
	st := j.Status()
	if !strings.Contains(st.Error, "attempt 2/2") || !strings.Contains(st.Error, "chaos") {
		t.Fatalf("error = %q, want the exhausted-attempts trail", st.Error)
	}
	if got := e.Metrics().Counter(CounterFailed).Value(); got != 1 {
		t.Fatalf("failed counter = %d, want 1", got)
	}
}

// TestDrainMidJobAndResume: draining mid-campaign checkpoints every
// completed seed and parks the job cancelled; resubmitting the spec with
// the same checkpoint path on a fresh engine resumes exactly the unrun
// seeds and reports byte-identically to an uninterrupted run.
func TestDrainMidJobAndResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "drain.checkpoint.json")
	spec := fastSpec(40)
	spec.Checkpoint = ckpt

	e := New("dce-serve-test", Limits{Executors: 1})
	e.Start()
	j, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one seed land, then pull the plug.
	for deadline := time.Now().Add(30 * time.Second); j.Progress().Done() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no seed completed before the drain")
		}
		time.Sleep(time.Millisecond)
	}
	e.Drain()
	if s := j.State(); s != StateCancelled {
		t.Fatalf("drained job state = %s, want cancelled", s)
	}
	st := j.Status()
	if st.Skipped == 0 {
		t.Fatal("drained job skipped no seeds; the campaign finished before the drain could interrupt it")
	}
	if !strings.Contains(st.Error, "resumable") {
		t.Fatalf("drained job error = %q, want a resumable note", st.Error)
	}
	cp, err := harness.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len()+st.Skipped != spec.Programs {
		t.Fatalf("checkpoint holds %d seeds, %d skipped, want them to cover all %d",
			cp.Len(), st.Skipped, spec.Programs)
	}

	// Resume on a fresh engine: same spec, same checkpoint path.
	e2 := startEngine(t, Limits{Executors: 1})
	j2, err := e2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j2); s != StateDone {
		t.Fatalf("resumed job state = %s (err %q), want done", s, j2.Status().Error)
	}
	text, _ := j2.Report()
	ref := fastSpec(40)
	if want := refReport(t, ref); text != want {
		t.Fatal("resumed report differs from an uninterrupted run's")
	}
}

// TestWallDeadline: a job whose wall budget expires mid-campaign fails —
// not hangs — with its completed seeds checkpointed and the unrun rest
// counted.
func TestWallDeadline(t *testing.T) {
	e := startEngine(t, Limits{Executors: 1})
	spec := fastSpec(50)
	spec.DeadlineMs = 25
	j, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StateFailed {
		t.Fatalf("state = %s, want failed on deadline", s)
	}
	st := j.Status()
	if !strings.Contains(st.Error, "wall deadline exceeded") {
		t.Fatalf("error = %q, want wall-deadline message", st.Error)
	}
	if st.Skipped == 0 {
		t.Fatal("deadline expiry skipped no seeds")
	}
}

// TestCancelRunningJob: cancelling a running job stops it at the next
// seed boundary via the same cooperative hook a drain uses.
func TestCancelRunningJob(t *testing.T) {
	e := startEngine(t, Limits{Executors: 1})
	j, err := e.Submit(fastSpec(40))
	if err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(30 * time.Second); j.Progress().Done() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no seed completed before the cancel")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := e.Cancel(j.ID); !ok {
		t.Fatal("cancel: job not found")
	}
	if s := waitTerminal(t, j); s != StateCancelled {
		t.Fatalf("cancelled job state = %s, want cancelled", s)
	}
	if st := j.Status(); st.Skipped == 0 {
		t.Fatal("cancel skipped no seeds; the campaign finished before the cancel could interrupt it")
	}
}

// TestUnitFaultInjection: unit-level harness faults (Spec.Inject) surface
// as campaign failures, not job crashes — the job completes with the
// failure recorded, no retries spent.
func TestUnitFaultInjection(t *testing.T) {
	e := startEngine(t, Limits{Executors: 1})
	spec := fastSpec(3)
	spec.Inject = "panic:*:2"
	j, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StateDone {
		t.Fatalf("state = %s, want done (unit faults are isolated)", s)
	}
	if st := j.Status(); st.Attempt != 1 {
		t.Fatalf("attempts = %d, want 1 (no job-level retry for unit faults)", st.Attempt)
	}
	snap := j.Snapshot()
	if snap == nil || snap.Failures["crash"] == 0 {
		t.Fatalf("snapshot failures = %+v, want injected crashes recorded", snap)
	}
}
