package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dcelens/internal/monitor"
	"dcelens/internal/span"
)

func newTestServer(t *testing.T, l Limits, start bool) (*Server, *Engine) {
	t.Helper()
	e := New("dce-serve-test", l)
	if start {
		e.Start()
	}
	t.Cleanup(e.Drain)
	return NewServer(e), e
}

func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, r)
	return rec
}

func decodeBody(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
}

func TestHTTPSubmitLifecycle(t *testing.T) {
	s, _ := newTestServer(t, Limits{Executors: 1}, true)

	rec := do(t, s, http.MethodPost, "/jobs",
		`{"programs": 3, "base_seed": 1, "personalities": ["gcc"], "levels": ["O1", "O2", "O3"]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d (%s), want 202", rec.Code, rec.Body.String())
	}
	var st Status
	decodeBody(t, rec, &st)
	if st.ID != "job-1" || st.State.Terminal() {
		t.Fatalf("submitted status = %+v", st)
	}

	// A not-yet-done job has no report.
	if rec := do(t, s, http.MethodGet, "/jobs/job-1/report", ""); rec.Code != http.StatusConflict && rec.Code != http.StatusOK {
		t.Fatalf("early report = %d, want 409 (or 200 if already done)", rec.Code)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		rec = do(t, s, http.MethodGet, "/jobs/job-1", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
		decodeBody(t, rec, &st)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != StateDone || st.SeedsDone != 3 {
		t.Fatalf("terminal status = %+v, want done with 3 seeds", st)
	}

	var list struct {
		Count int      `json:"count"`
		Jobs  []Status `json:"jobs"`
	}
	decodeBody(t, do(t, s, http.MethodGet, "/jobs", ""), &list)
	if list.Count != 1 || list.Jobs[0].ID != "job-1" {
		t.Fatalf("job list = %+v", list)
	}

	rep := do(t, s, http.MethodGet, "/jobs/job-1/report", "")
	if rep.Code != http.StatusOK || !strings.Contains(rep.Body.String(), "Instrumented blocks") {
		t.Fatalf("report = %d %q", rep.Code, rep.Body.String())
	}

	var findings struct {
		Count    int `json:"count"`
		Findings []any
	}
	decodeBody(t, do(t, s, http.MethodGet, "/jobs/job-1/findings", ""), &findings)
	if findings.Count != len(findings.Findings) {
		t.Fatalf("findings = %+v", findings)
	}

	ev := do(t, s, http.MethodGet, "/jobs/job-1/events?since=0", "")
	if ev.Code != http.StatusOK || ev.Header().Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("events = %d, content type %q", ev.Code, ev.Header().Get("Content-Type"))
	}
	if !strings.Contains(ev.Body.String(), "campaign_begin") || !strings.Contains(ev.Body.String(), "campaign_end") {
		t.Fatalf("events tail missing campaign bookends:\n%s", ev.Body.String())
	}
	if ev.Header().Get("X-Dcelens-Last-Seq") == "" {
		t.Fatal("events missing last-seq header")
	}
	if bad := do(t, s, http.MethodGet, "/jobs/job-1/events?since=nope", ""); bad.Code != http.StatusBadRequest {
		t.Fatalf("bad since = %d, want 400", bad.Code)
	}

	// Service metrics: exposition and JSON forms.
	mtx := do(t, s, http.MethodGet, "/metrics", "")
	if !strings.Contains(mtx.Body.String(), "dcelens_service_jobs_submitted 1") {
		t.Fatalf("metrics exposition missing submit counter:\n%s", mtx.Body.String())
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	decodeBody(t, do(t, s, http.MethodGet, "/metrics?format=json", ""), &snap)
	if snap.Counters[CounterDone] != 1 {
		t.Fatalf("metrics json done = %d, want 1", snap.Counters[CounterDone])
	}
}

// TestHTTPRemarks: a job submitted with "remarks": true exposes its
// campaign-wide remark summary once done; a job without the flag answers
// an explicit remarks=false, and an unfinished job answers 409 like
// /report.
func TestHTTPRemarks(t *testing.T) {
	s, _ := newTestServer(t, Limits{Executors: 1}, true)

	if rec := do(t, s, http.MethodPost, "/jobs",
		`{"programs": 2, "base_seed": 1, "remarks": true, "personalities": ["gcc"], "levels": ["O3"]}`); rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, http.MethodPost, "/jobs",
		`{"programs": 2, "base_seed": 1, "personalities": ["gcc"], "levels": ["O3"]}`); rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", rec.Code, rec.Body.String())
	}

	wait := func(id string) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			var st Status
			decodeBody(t, do(t, s, http.MethodGet, "/jobs/"+id, ""), &st)
			if st.State == StateDone {
				return
			}
			if st.State.Terminal() {
				t.Fatalf("%s ended %s", id, st.State)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s stuck in %s", id, st.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	wait("job-1")
	wait("job-2")

	var reply struct {
		ID      string `json:"id"`
		Remarks bool   `json:"remarks"`
		Summary struct {
			Applied map[string]int `json:"applied"`
			Missed  map[string]int `json:"missed"`
			Reasons map[string]int `json:"reasons"`
		} `json:"summary"`
	}
	rec := do(t, s, http.MethodGet, "/jobs/job-1/remarks", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("remarks = %d (%s)", rec.Code, rec.Body.String())
	}
	decodeBody(t, rec, &reply)
	if !reply.Remarks || len(reply.Summary.Missed) == 0 || reply.Summary.Reasons["side-effects"] == 0 {
		t.Fatalf("remark summary = %+v, want collected data with a side-effects bucket", reply)
	}

	rec = do(t, s, http.MethodGet, "/jobs/job-2/remarks", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("remarks without flag = %d (%s)", rec.Code, rec.Body.String())
	}
	reply.Remarks, reply.Summary.Missed = true, nil // must be overwritten/absent
	decodeBody(t, rec, &reply)
	if reply.Remarks || len(reply.Summary.Missed) != 0 {
		t.Fatalf("remarks-off job reply = %+v, want explicit remarks=false", reply)
	}

	// A job that cannot have finished (no executors) answers 409.
	queued, _ := newTestServer(t, Limits{}, false)
	if rec := do(t, queued, http.MethodPost, "/jobs", `{"programs": 1, "remarks": true}`); rec.Code != http.StatusAccepted {
		t.Fatalf("queued submit = %d", rec.Code)
	}
	if rec := do(t, queued, http.MethodGet, "/jobs/job-1/remarks", ""); rec.Code != http.StatusConflict {
		t.Fatalf("remarks on a queued job = %d, want 409", rec.Code)
	}
}

// TestHTTPBackpressure: the admission contract over HTTP — 429 with
// Retry-After on a full queue, 503 while draining, health transitions
// ok → degraded → draining.
func TestHTTPBackpressure(t *testing.T) {
	s, e := newTestServer(t, Limits{QueueDepth: 1}, false) // no executors: queue stays full

	var health HealthReply
	decodeBody(t, do(t, s, http.MethodGet, "/healthz", ""), &health)
	if health.Status != "ok" || health.QueueCap != 1 {
		t.Fatalf("healthz = %+v, want ok with cap 1", health)
	}

	if rec := do(t, s, http.MethodPost, "/jobs", `{"programs": 1}`); rec.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", rec.Code)
	}
	rec := do(t, s, http.MethodPost, "/jobs", `{"programs": 1}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("submit on full queue = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	decodeBody(t, rec, &apiErr)
	if !strings.Contains(apiErr.Error, "queue full") {
		t.Fatalf("429 body = %+v", apiErr)
	}

	decodeBody(t, do(t, s, http.MethodGet, "/healthz", ""), &health)
	if health.Status != "degraded" || health.QueueDepth != 1 || health.Rejected != 1 {
		t.Fatalf("healthz with full queue = %+v, want degraded/1/1", health)
	}

	e.Drain()
	decodeBody(t, do(t, s, http.MethodGet, "/healthz", ""), &health)
	if health.Status != "draining" || health.Cancelled != 1 {
		t.Fatalf("healthz after drain = %+v, want draining with 1 cancelled", health)
	}
	if rec := do(t, s, http.MethodPost, "/jobs", `{"programs": 1}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", rec.Code)
	}
}

func TestHTTPErrors(t *testing.T) {
	s, _ := newTestServer(t, Limits{}, false)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{http.MethodPost, "/jobs", `{not json`, http.StatusBadRequest},
		{http.MethodPost, "/jobs", `{"programs": 1, "bogus": true}`, http.StatusBadRequest},
		{http.MethodPost, "/jobs", `{"programs": 0}`, http.StatusBadRequest},
		{http.MethodPost, "/jobs", `{"programs": 1, "personalities": ["icc"]}`, http.StatusBadRequest},
		{http.MethodGet, "/jobs/nope", "", http.StatusNotFound},
		{http.MethodGet, "/jobs/nope/report", "", http.StatusNotFound},
		{http.MethodPost, "/jobs/nope/cancel", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		rec := do(t, s, tc.method, tc.path, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, rec.Code, tc.want)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s content type = %q, want application/json", tc.method, tc.path, ct)
		}
		var apiErr struct {
			Error string `json:"error"`
		}
		decodeBody(t, rec, &apiErr)
		if apiErr.Error == "" {
			t.Errorf("%s %s: no JSON error body", tc.method, tc.path)
		}
	}
}

// TestHTTPMethodGating: the ServeMux method patterns enforce the verb
// contract with 405 + Allow, matching the monitor's read-only rule.
func TestHTTPMethodGating(t *testing.T) {
	s, _ := newTestServer(t, Limits{}, false)
	cases := []struct {
		method, path string
		wantAllow    string
	}{
		{http.MethodPut, "/jobs", "POST"},
		{http.MethodDelete, "/healthz", "GET"},
		{http.MethodPost, "/metrics", "GET"},
		{http.MethodGet, "/jobs/job-1/cancel", "POST"},
	}
	for _, tc := range cases {
		rec := do(t, s, tc.method, tc.path, "")
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, rec.Code)
			continue
		}
		if allow := rec.Header().Get("Allow"); !strings.Contains(allow, tc.wantAllow) {
			t.Errorf("%s %s Allow = %q, want containing %q", tc.method, tc.path, allow, tc.wantAllow)
		}
	}
}

// TestHTTPCancel: POST /jobs/{id}/cancel on a queued job (no executors)
// parks it cancelled immediately.
func TestHTTPCancel(t *testing.T) {
	s, _ := newTestServer(t, Limits{}, false)
	rec := do(t, s, http.MethodPost, "/jobs", `{"programs": 1}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rec.Code)
	}
	var st Status
	decodeBody(t, do(t, s, http.MethodPost, "/jobs/job-1/cancel", ""), &st)
	if st.State != StateCancelled {
		t.Fatalf("cancelled state = %s, want cancelled", st.State)
	}
}

// TestHTTPProgressAndTimeline: the per-job progress and span-timeline
// endpoints — S2's GET /jobs/{id}/progress serves the monitor's reply
// shape, and /jobs/{id}/timeline serves a resumable trace_event tail that
// survives the whole job lifecycle.
func TestHTTPProgressAndTimeline(t *testing.T) {
	s, _ := newTestServer(t, Limits{Executors: 1}, true)

	rec := do(t, s, http.MethodPost, "/jobs",
		`{"programs": 2, "base_seed": 1, "personalities": ["gcc"], "levels": ["O1"]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", rec.Code, rec.Body.String())
	}
	deadline := time.Now().Add(60 * time.Second)
	var st Status
	for {
		decodeBody(t, do(t, s, http.MethodGet, "/jobs/job-1", ""), &st)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("job = %+v, want done", st)
	}

	var prog monitor.ProgressReply
	pr := do(t, s, http.MethodGet, "/jobs/job-1/progress", "")
	if pr.Code != http.StatusOK {
		t.Fatalf("progress = %d (%s)", pr.Code, pr.Body.String())
	}
	decodeBody(t, pr, &prog)
	if prog.SeedsTotal != 2 || prog.SeedsDone != 2 || prog.Units == 0 {
		t.Fatalf("progress = %+v, want 2/2 seeds with units counted", prog)
	}
	// Job registries are deterministic; occupancy must stay absent.
	if prog.WorkerOccupancy != nil {
		t.Fatalf("worker_occupancy = %v, want absent for a deterministic job registry", prog.WorkerOccupancy)
	}

	tl := do(t, s, http.MethodGet, "/jobs/job-1/timeline?since=0", "")
	if tl.Code != http.StatusOK || tl.Header().Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("timeline = %d, content type %q", tl.Code, tl.Header().Get("Content-Type"))
	}
	if tl.Header().Get("X-Dcelens-Last-Seq") == "0" {
		t.Fatal("timeline recorded nothing")
	}
	tr, err := span.Parse(tl.Body.Bytes())
	if err != nil {
		t.Fatalf("timeline tail does not parse as trace events: %v", err)
	}
	var units, attempts int
	for _, e := range tr.Events {
		switch e.Cat {
		case span.CatUnit:
			units++
		case span.CatJob:
			if e.Name == "attempt" {
				attempts++
			}
		}
	}
	if units != 2 || attempts != 1 {
		t.Fatalf("timeline has %d unit spans and %d attempt spans, want 2 and 1", units, attempts)
	}

	if bad := do(t, s, http.MethodGet, "/jobs/job-1/timeline?since=x", ""); bad.Code != http.StatusBadRequest {
		t.Fatalf("bad since = %d, want 400", bad.Code)
	}
	if missing := do(t, s, http.MethodGet, "/jobs/nope/progress", ""); missing.Code != http.StatusNotFound {
		t.Fatalf("unknown job progress = %d, want 404", missing.Code)
	}
}
