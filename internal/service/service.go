// Package service turns campaign running into a resilient job engine:
// campaign-as-a-service. Specs are submitted (POST /jobs via server.go, or
// Engine.Submit directly), admitted into a bounded queue — a full queue
// pushes back with ErrQueueFull instead of buffering without bound — and
// executed on a small pool of executors, each job an ordinary
// internal/corpus campaign with the full observability stack attached
// (per-job metrics registry, event log tail, live progress).
//
// Resilience is the point:
//
//   - Budgets: per-job wall-clock deadlines ride the harness watchdog (a
//     unit optimizing past the deadline fails as a "deadline:wall"
//     timeout) and fold into the corpus Stop hook (seeds not yet started
//     are skipped), while engine-level caps bound seed counts and worker
//     counts per job.
//   - Retries: a crashed job (any corpus.Run error — a panicking finalize,
//     a checkpoint write failure) is retried with exponential backoff from
//     its last JSON checkpoint, up to a bounded attempt count. Completed
//     seeds restore instead of recomputing, and because aggregation is
//     outcome-only, a retried job's report is byte-identical to an
//     uninterrupted run's.
//   - Graceful drain: Drain stops admission, asks every running job to
//     stop via the cooperative corpus Stop hook (in-flight seeds finish
//     and checkpoint; unstarted seeds are skipped), cancels queued jobs,
//     and returns once every executor has exited — nothing is lost, every
//     interrupted job resumes from a consistent checkpoint.
//
// Job lifecycle: queued → running → done | failed | cancelled, with
// checkpointing interposed between running and its terminal state while a
// drain (or cancel) request is being honoured. A retry moves the job back
// to queued for the backoff sleep, then running again.
package service

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"dcelens/internal/corpus"
	"dcelens/internal/harness"
	"dcelens/internal/history"
	"dcelens/internal/metrics"
	"dcelens/internal/pipeline"
	"dcelens/internal/report"
	"dcelens/internal/span"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued: admitted, waiting for an executor (also the backoff wait
	// between retry attempts).
	StateQueued State = "queued"
	// StateRunning: an executor is running the campaign.
	StateRunning State = "running"
	// StateCheckpointing: a drain or cancel request arrived; in-flight
	// seeds are finishing and checkpointing before the job parks.
	StateCheckpointing State = "checkpointing"
	// StateDone: the campaign completed; report and history snapshot exist.
	StateDone State = "done"
	// StateFailed: retries exhausted or the wall deadline expired. The
	// checkpoint keeps every completed seed.
	StateFailed State = "failed"
	// StateCancelled: drained or cancelled before completion; resumable
	// from the checkpoint.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Engine metric names (the service half of /metrics; per-job campaign
// telemetry lives in each job's own registry).
const (
	CounterSubmitted = "service.jobs.submitted"
	CounterRejected  = "service.jobs.rejected" // queue-full and draining refusals
	CounterRetried   = "service.jobs.retried"
	CounterDone      = "service.jobs.done"
	CounterFailed    = "service.jobs.failed"
	CounterCancelled = "service.jobs.cancelled"
	GaugeQueueDepth  = "service.queue.depth"
)

// Submission errors. The HTTP layer maps ErrQueueFull to 429 (with
// Retry-After), ErrDraining to 503; anything else is a 400 spec error.
var (
	ErrQueueFull = errors.New("admission queue full")
	ErrDraining  = errors.New("service is draining, not admitting jobs")
)

// Spec is one submitted campaign job. The zero values of the optional
// fields inherit the corpus defaults (both personalities, all levels).
type Spec struct {
	// Programs is the corpus size (required, positive, capped by
	// Limits.MaxSeeds).
	Programs int `json:"programs"`
	// BaseSeed offsets the per-program seeds.
	BaseSeed int64 `json:"base_seed"`
	// Workers bounds the job's in-process parallelism (default 1, capped
	// by Limits.MaxWorkers).
	Workers int `json:"workers,omitempty"`
	// Personalities restricts the compilers ("gcc", "llvm"; default both).
	Personalities []string `json:"personalities,omitempty"`
	// Levels restricts the optimization levels ("O0".."O3", "Os"; default
	// all five).
	Levels []string `json:"levels,omitempty"`
	// Trace records per-pass profiles and marker provenance.
	Trace bool `json:"trace,omitempty"`
	// Remarks collects optimization remarks: findings carry nearest-miss
	// chains, and the finished job exposes a remark summary
	// (GET /jobs/{id}/remarks).
	Remarks bool `json:"remarks,omitempty"`
	// VerifySemantics executes every compiled module against ground truth.
	VerifySemantics bool `json:"verify,omitempty"`
	// StepBudget bounds pass instances per compilation (0: harness
	// default).
	StepBudget int `json:"step_budget,omitempty"`
	// DeadlineMs is the job's wall-clock budget, measured from its first
	// run attempt; 0 means unbounded. Expiry fails the job (checkpoint
	// retained) rather than letting it run forever.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// MaxAttempts bounds the run attempts (first run + retries); 0 means
	// Limits.MaxAttempts, and Limits.MaxAttempts caps it either way.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Checkpoint is an explicit checkpoint file path: a drained job's spec
	// resubmitted with the same path resumes its completed seeds. Empty
	// uses WorkDir (or memory) under the job id.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Inject is a harness fault-injection spec
	// ("kind:pass:seed[:config],...") for unit-level chaos.
	Inject string `json:"inject,omitempty"`
	// Chaos injects a job-level crash (the retry path's test seam).
	Chaos *Chaos `json:"chaos,omitempty"`
}

// Chaos deterministically crashes the whole job — not just one unit — so
// the retry-from-checkpoint path is testable: when the campaign reaches
// CrashAtSeed's finalize (before that seed checkpoints), the job panics.
// Only the first Times attempts crash; later attempts run through, so a
// job with MaxAttempts > Times recovers and its final report is
// byte-identical to an undisturbed run's.
type Chaos struct {
	CrashAtSeed int64 `json:"crash_at_seed"`
	Times       int   `json:"times,omitempty"` // default 1
}

// Limits are the engine-wide resource bounds.
type Limits struct {
	// QueueDepth bounds the admission queue (default 8). A submit against
	// a full queue returns ErrQueueFull immediately — backpressure, not
	// buffering.
	QueueDepth int
	// Executors is the number of jobs run concurrently (default 2).
	Executors int
	// MaxSeeds caps Spec.Programs (default 1000); larger specs are
	// rejected at submission.
	MaxSeeds int
	// MaxWorkers caps Spec.Workers (default GOMAXPROCS); larger requests
	// are clamped, not rejected.
	MaxWorkers int
	// MaxAttempts caps per-job run attempts (default 3).
	MaxAttempts int
	// Backoff is the first retry delay; it doubles per attempt (default
	// 100ms).
	Backoff time.Duration
	// WorkDir, when set, holds per-job checkpoint files (job-N.checkpoint.json);
	// empty keeps checkpoints in memory (still enough for in-process
	// retries).
	WorkDir string
	// HistoryDir, when set, receives a fingerprinted history snapshot for
	// every job that reaches StateDone, so dce-trend diffs across jobs.
	HistoryDir string
	// EventTail is the per-job event-log ring size (default 4096). The
	// per-job span-timeline ring is sized the same.
	EventTail int
}

func (l *Limits) fill() {
	if l.QueueDepth <= 0 {
		l.QueueDepth = 8
	}
	if l.Executors <= 0 {
		l.Executors = 2
	}
	if l.MaxSeeds <= 0 {
		l.MaxSeeds = 1000
	}
	if l.MaxWorkers <= 0 {
		l.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if l.MaxAttempts <= 0 {
		l.MaxAttempts = 3
	}
	if l.Backoff <= 0 {
		l.Backoff = 100 * time.Millisecond
	}
	if l.EventTail <= 0 {
		l.EventTail = 4096
	}
}

// Engine is the job engine: a bounded admission queue feeding a fixed
// executor pool, with per-job budgets, retries, and cooperative drain.
type Engine struct {
	Tool   string // names the engine in snapshots and /healthz
	limits Limits
	reg    *metrics.Registry
	queue  chan *Job
	quit   chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	draining bool
	nextID   int
	started  bool
}

// New builds an engine with the given limits (zero values filled with
// defaults). Call Start before submitting.
func New(tool string, limits Limits) *Engine {
	limits.fill()
	return &Engine{
		Tool:   tool,
		limits: limits,
		reg:    metrics.New(),
		queue:  make(chan *Job, limits.QueueDepth),
		quit:   make(chan struct{}),
		jobs:   map[string]*Job{},
	}
}

// Limits returns the engine's effective (default-filled) limits.
func (e *Engine) Limits() Limits { return e.limits }

// Metrics returns the engine's service-level registry (queue depth,
// per-outcome job counters).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Start launches the executor pool. Idempotent.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	for i := 0; i < e.limits.Executors; i++ {
		e.wg.Add(1)
		go e.executor()
	}
}

// Submit validates and admits one job. A full queue returns ErrQueueFull
// without blocking (the backpressure contract: the caller is told to
// retry later, nothing is buffered); a draining engine returns
// ErrDraining; an invalid or over-budget spec returns a descriptive
// error. On success the job is queued and its id assigned.
func (e *Engine) Submit(spec Spec) (*Job, error) {
	if err := e.validate(&spec); err != nil {
		e.reg.Counter(CounterRejected).Inc()
		return nil, err
	}
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		e.reg.Counter(CounterRejected).Inc()
		return nil, ErrDraining
	}
	e.nextID++
	j := newJob(fmt.Sprintf("job-%d", e.nextID), spec, &e.limits)
	select {
	case e.queue <- j:
		e.jobs[j.ID] = j
		e.order = append(e.order, j.ID)
		e.mu.Unlock()
		e.reg.Counter(CounterSubmitted).Inc()
		e.updateQueueGauge()
		return j, nil
	default:
		e.nextID-- // the id was never observable
		e.mu.Unlock()
		e.reg.Counter(CounterRejected).Inc()
		return nil, ErrQueueFull
	}
}

// validate normalizes a spec against the engine limits, rejecting what
// cannot be clamped.
func (e *Engine) validate(spec *Spec) error {
	if spec.Programs <= 0 {
		return fmt.Errorf("programs: must be positive")
	}
	if spec.Programs > e.limits.MaxSeeds {
		return fmt.Errorf("programs: %d exceeds the per-job seed cap %d", spec.Programs, e.limits.MaxSeeds)
	}
	if spec.Workers <= 0 {
		spec.Workers = 1
	}
	if spec.Workers > e.limits.MaxWorkers {
		spec.Workers = e.limits.MaxWorkers
	}
	if spec.MaxAttempts <= 0 || spec.MaxAttempts > e.limits.MaxAttempts {
		spec.MaxAttempts = e.limits.MaxAttempts
	}
	if _, err := spec.personalities(); err != nil {
		return err
	}
	if _, err := spec.levels(); err != nil {
		return err
	}
	if spec.Inject != "" {
		if _, err := harness.ParseFaults(spec.Inject); err != nil {
			return err
		}
	}
	if spec.Chaos != nil && spec.Chaos.Times <= 0 {
		spec.Chaos.Times = 1
	}
	return nil
}

// Job looks up a job by id.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Job, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.jobs[id])
	}
	return out
}

// Cancel requests cancellation: a queued job is cancelled in place, a
// running job is asked to stop via its drain hook (in-flight seeds finish
// and checkpoint first). Terminal jobs are left alone.
func (e *Engine) Cancel(id string) (*Job, bool) {
	j, ok := e.Job(id)
	if !ok {
		return nil, false
	}
	if j.cancelQueued() {
		e.reg.Counter(CounterCancelled).Inc()
		return j, true
	}
	j.requestStop()
	return j, true
}

// Health reports the admission health: "draining" once Drain began,
// "degraded" while the queue is full (submissions are bouncing), "ok"
// otherwise.
func (e *Engine) Health() string {
	e.mu.Lock()
	draining := e.draining
	e.mu.Unlock()
	switch {
	case draining:
		return "draining"
	case len(e.queue) >= cap(e.queue):
		return "degraded"
	default:
		return "ok"
	}
}

// QueueDepth returns (queued, capacity).
func (e *Engine) QueueDepth() (int, int) { return len(e.queue), cap(e.queue) }

// Draining reports whether Drain has begun.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// Drain gracefully shuts the engine down: admission stops (Submit returns
// ErrDraining), every running job is asked to stop via the cooperative
// corpus hook — seeds in flight finish and checkpoint, unstarted seeds
// are skipped — executors exit, and still-queued jobs are cancelled.
// Nothing is lost: every non-done job's checkpoint holds all its
// completed seeds. Idempotent; returns when the engine is fully stopped.
func (e *Engine) Drain() {
	e.mu.Lock()
	first := !e.draining
	if first {
		e.draining = true
		close(e.quit)
	}
	e.mu.Unlock()
	e.wg.Wait()
	if !first {
		return
	}
	for {
		select {
		case j := <-e.queue:
			if j.cancelQueued() {
				e.reg.Counter(CounterCancelled).Inc()
			}
		default:
			e.updateQueueGauge()
			return
		}
	}
}

func (e *Engine) updateQueueGauge() {
	e.reg.Gauge(GaugeQueueDepth).Set(int64(len(e.queue)))
}

// stopping reports whether the engine has begun draining (the lock-free
// form the per-seed Stop hook polls).
func (e *Engine) stopping() bool {
	select {
	case <-e.quit:
		return true
	default:
		return false
	}
}

// executor is one worker of the job pool: pull, run, repeat, exit on
// drain.
func (e *Engine) executor() {
	defer e.wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case j := <-e.queue:
			e.updateQueueGauge()
			e.runJob(j)
		}
	}
}

// runJob drives one job through its attempts: run the campaign, and on a
// job-level crash retry from the checkpoint with exponential backoff
// until the attempt budget runs out. Completed seeds restore from the
// checkpoint on every retry, so work is never redone and the final report
// is byte-identical to an undisturbed run's.
func (e *Engine) runJob(j *Job) {
	if j.State() == StateCancelled {
		return // cancelled while queued
	}
	if e.stopping() {
		// Popped during the drain race: park it unrun, like the queued rest.
		if j.cancelQueued() {
			e.reg.Counter(CounterCancelled).Inc()
		}
		return
	}
	j.startClock()
	backoff := e.limits.Backoff
	for attempt := 1; ; attempt++ {
		c, err := j.run(e, attempt)
		if err == nil {
			e.settle(j, c)
			return
		}
		j.recordError(attempt, err)
		if attempt >= j.Spec.MaxAttempts {
			j.finish(StateFailed, fmt.Sprintf("attempt %d/%d: %v", attempt, j.Spec.MaxAttempts, err))
			e.reg.Counter(CounterFailed).Inc()
			return
		}
		e.reg.Counter(CounterRetried).Inc()
		j.setState(StateQueued) // backing off for the next attempt
		select {
		case <-time.After(backoff):
			backoff *= 2
		case <-e.quit:
			j.finish(StateCancelled, "drained during retry backoff (resumable from checkpoint)")
			e.reg.Counter(CounterCancelled).Inc()
			return
		}
	}
}

// settle classifies a completed (error-free) campaign run: fully done,
// drained part-way, or out of wall budget.
func (e *Engine) settle(j *Job, c *corpus.Campaign) {
	if c.Skipped == 0 {
		j.complete(e, c)
		e.reg.Counter(CounterDone).Inc()
		return
	}
	if e.stopping() || j.stopRequested() {
		j.setSkipped(c.Skipped)
		j.finish(StateCancelled, fmt.Sprintf("drained with %d seeds unrun (resumable from checkpoint)", c.Skipped))
		e.reg.Counter(CounterCancelled).Inc()
		return
	}
	// Not stopped by anyone: the skip came from the wall deadline.
	j.setSkipped(c.Skipped)
	j.finish(StateFailed, fmt.Sprintf("wall deadline exceeded with %d seeds unrun (resumable from checkpoint)", c.Skipped))
	e.reg.Counter(CounterFailed).Inc()
}

// Job is one admitted campaign. Fields under mu change as the job moves
// through its lifecycle; the identity fields (ID, Spec) are immutable
// after Submit.
type Job struct {
	ID   string
	Spec Spec

	events *metrics.EventLog   // shared across attempts: one resumable seq stream
	spans  *span.Recorder      // shared across attempts: one resumable timeline
	cp     *harness.Checkpoint // shared across attempts: the retry source

	mu        sync.Mutex
	state     State
	attempt   int
	stopReq   bool
	deadline  time.Time
	reg       *metrics.Registry // fresh per attempt (restored counts stay truthful)
	progress  *harness.Progress
	skipped   int
	lastErr   string
	report    string
	remarkSum *corpus.RemarkSummary
	snapshot  *history.Snapshot
	snapPath  string
	faults    *harness.Faults
	checkpath string
}

func newJob(id string, spec Spec, l *Limits) *Job {
	j := &Job{ID: id, Spec: spec, state: StateQueued}
	j.events = metrics.NewEventLog(io.Discard)
	j.events.KeepTail(l.EventTail)
	// The timeline recorder is wall-mode (real timings are the point of
	// /jobs/{id}/timeline) and write-discarded: only the tail ring matters.
	// The job's campaign registry stays deterministic regardless — the
	// scheduler probe keeps wall-clock occupancy out of deterministic
	// registries on its own.
	j.spans = span.New(io.Discard)
	j.spans.KeepTail(l.EventTail)
	j.checkpath = spec.Checkpoint
	if j.checkpath == "" && l.WorkDir != "" {
		j.checkpath = filepath.Join(l.WorkDir, id+".checkpoint.json")
	}
	if spec.Inject != "" {
		j.faults, _ = harness.ParseFaults(spec.Inject) // validated at Submit
	}
	return j
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Events is the job's event log (its tail backs /jobs/{id}/events).
func (j *Job) Events() *metrics.EventLog { return j.events }

// Spans is the job's span timeline (its tail backs /jobs/{id}/timeline).
func (j *Job) Spans() *span.Recorder { return j.spans }

// Progress is the live view of the current attempt (nil before the first).
func (j *Job) Progress() *harness.Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.progress
}

// Registry is the current attempt's campaign registry (nil before the
// first attempt). Deterministic, so the job's history snapshot is
// byte-stable.
func (j *Job) Registry() *metrics.Registry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reg
}

// Report returns the final campaign report; ok is false until StateDone.
func (j *Job) Report() (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report, j.state == StateDone
}

// Snapshot returns the finished job's history snapshot (nil until
// StateDone).
func (j *Job) Snapshot() *history.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshot
}

// Status is the JSON view of a job (GET /jobs/{id}).
type Status struct {
	ID      string `json:"id"`
	State   State  `json:"state"`
	Attempt int    `json:"attempt"`

	SeedsTotal int `json:"seeds_total"`
	SeedsDone  int `json:"seeds_done"`
	Findings   int `json:"findings"`
	// Skipped counts seeds a drain or deadline left unrun (resumable).
	Skipped int `json:"skipped,omitempty"`

	Error string `json:"error,omitempty"`
	// Checkpoint is the job's checkpoint file (empty: in-memory only).
	Checkpoint string `json:"checkpoint,omitempty"`
	// Snapshot is the history snapshot path of a done job.
	Snapshot string `json:"snapshot,omitempty"`

	Spec Spec `json:"spec"`
}

// Status snapshots the job for the API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:         j.ID,
		State:      j.state,
		Attempt:    j.attempt,
		SeedsTotal: j.Spec.Programs,
		SeedsDone:  j.progress.Done(),
		Findings:   j.progress.FindingCount(),
		Skipped:    j.skipped,
		Error:      j.lastErr,
		Checkpoint: j.checkpath,
		Snapshot:   j.snapPath,
		Spec:       j.Spec,
	}
	return s
}

// startClock arms the job's wall-clock budget at first-run time (retries
// share it: the deadline is a job budget, not a per-attempt one).
func (j *Job) startClock() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.Spec.DeadlineMs > 0 {
		j.deadline = time.Now().Add(time.Duration(j.Spec.DeadlineMs) * time.Millisecond)
	}
}

// run executes one campaign attempt.
func (j *Job) run(e *Engine, attempt int) (*corpus.Campaign, error) {
	j.mu.Lock()
	j.attempt = attempt
	j.state = StateRunning
	// Fresh registry and progress per attempt: a retry restores completed
	// seeds from the checkpoint, and mixing those restored counts into a
	// previous attempt's analyzed counts would over-report seeds done.
	j.reg = metrics.NewDeterministic()
	j.progress = harness.NewProgress(j.Spec.Programs, j.Spec.Workers, j.reg)
	if j.cp == nil {
		var err error
		if j.checkpath != "" {
			j.cp, err = harness.LoadCheckpoint(j.checkpath)
		} else {
			j.cp = harness.NewCheckpoint("")
		}
		if err != nil {
			j.mu.Unlock()
			return nil, err
		}
	}
	deadline := j.deadline
	reg, progress, cp := j.reg, j.progress, j.cp
	j.mu.Unlock()

	ps, _ := j.Spec.personalities()
	ls, _ := j.Spec.levels()
	opts := corpus.Options{
		Programs:        j.Spec.Programs,
		BaseSeed:        j.Spec.BaseSeed,
		Workers:         j.Spec.Workers,
		Personalities:   ps,
		Levels:          ls,
		Trace:           j.Spec.Trace,
		Remarks:         j.Spec.Remarks,
		VerifySemantics: j.Spec.VerifySemantics,
		StepBudget:      j.Spec.StepBudget,
		Faults:          j.faults,
		Checkpoint:      cp,
		Metrics:         reg,
		Events:          j.events,
		Spans:           j.spans,
		Progress:        progress,
		Deadline:        deadline,
		Stop: func() bool {
			if e.stopping() || j.stopRequested() {
				j.markCheckpointing()
				return true
			}
			return !deadline.IsZero() && time.Now().After(deadline)
		},
	}
	if ch := j.Spec.Chaos; ch != nil && attempt <= ch.Times {
		opts.SeedHook = func(idx int, seed int64) {
			if seed == ch.CrashAtSeed {
				panic(fmt.Sprintf("chaos: injected job crash at seed %d (attempt %d)", seed, attempt))
			}
		}
	}
	// The attempt envelope goes on the timeline even when the campaign
	// inside it panics — that is exactly when an operator reads it.
	astart := time.Now()
	defer func() {
		j.spans.Emit(span.Span{
			Name: "attempt", Cat: span.CatJob, TID: 0,
			Start: astart, Dur: time.Since(astart),
			Args: []span.Arg{span.Str("job", j.ID), span.Int("attempt", attempt)},
		})
	}()
	return corpus.Run(opts)
}

// complete finalizes a fully-run job: report, history snapshot, done.
func (j *Job) complete(e *Engine, c *corpus.Campaign) {
	text := report.Summary(c)
	var rsum *corpus.RemarkSummary
	if c.Stats.RemarkApplied != nil || c.Stats.RemarkMissed != nil {
		rsum = &corpus.RemarkSummary{
			Applied: c.Stats.RemarkApplied,
			Missed:  c.Stats.RemarkMissed,
			Reasons: c.Stats.RemarkReasons,
		}
	}
	snap := history.NewSnapshot(e.Tool, c, j.Registry())
	var path string
	if e.limits.HistoryDir != "" {
		p, err := snap.Write(e.limits.HistoryDir)
		if err != nil {
			j.finish(StateFailed, fmt.Sprintf("writing history snapshot: %v", err))
			e.reg.Counter(CounterFailed).Inc()
			return
		}
		path = p
	}
	j.mu.Lock()
	j.state = StateDone
	j.lastErr = ""
	j.report = text
	j.remarkSum = rsum
	j.snapshot = snap
	j.snapPath = path
	j.mu.Unlock()
}

// RemarkSummary returns the finished job's campaign-wide remark summary;
// ok is false until StateDone. A done job that ran without Spec.Remarks
// returns (nil, true).
func (j *Job) RemarkSummary() (*corpus.RemarkSummary, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.remarkSum, j.state == StateDone
}

func (j *Job) finish(s State, msg string) {
	j.mu.Lock()
	j.state = s
	j.lastErr = msg
	j.mu.Unlock()
}

func (j *Job) setState(s State) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

func (j *Job) recordError(attempt int, err error) {
	j.mu.Lock()
	j.lastErr = fmt.Sprintf("attempt %d: %v", attempt, err)
	j.mu.Unlock()
}

func (j *Job) setSkipped(n int) {
	j.mu.Lock()
	j.skipped = n
	j.mu.Unlock()
}

// cancelQueued cancels the job iff it never started running.
func (j *Job) cancelQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued || j.attempt > 0 {
		return false
	}
	j.state = StateCancelled
	j.lastErr = "cancelled before running"
	return true
}

// requestStop asks a running job to stop at the next seed boundary.
func (j *Job) requestStop() {
	j.mu.Lock()
	j.stopReq = true
	j.mu.Unlock()
}

func (j *Job) stopRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stopReq
}

// markCheckpointing flips running → checkpointing once a stop request is
// being honoured (in-flight seeds are finishing and checkpointing).
func (j *Job) markCheckpointing() {
	j.mu.Lock()
	if j.state == StateRunning {
		j.state = StateCheckpointing
	}
	j.mu.Unlock()
}

// personalities resolves the spec's compiler names ("gcc"/"llvm", or the
// full "gcc-sim"/"llvm-sim"); empty means the corpus default (both).
func (s *Spec) personalities() ([]pipeline.Personality, error) {
	var out []pipeline.Personality
	for _, name := range s.Personalities {
		switch name {
		case "gcc", string(pipeline.GCC):
			out = append(out, pipeline.GCC)
		case "llvm", string(pipeline.LLVM):
			out = append(out, pipeline.LLVM)
		default:
			return nil, fmt.Errorf("personalities: unknown compiler %q (want gcc or llvm)", name)
		}
	}
	return out, nil
}

// levels resolves the spec's level names; empty means all five.
func (s *Spec) levels() ([]pipeline.Level, error) {
	var out []pipeline.Level
	for _, name := range s.Levels {
		var lvl pipeline.Level
		switch name {
		case "O0":
			lvl = pipeline.O0
		case "O1":
			lvl = pipeline.O1
		case "Os":
			lvl = pipeline.Os
		case "O2":
			lvl = pipeline.O2
		case "O3":
			lvl = pipeline.O3
		default:
			return nil, fmt.Errorf("levels: unknown level %q (want O0, O1, Os, O2, or O3)", name)
		}
		out = append(out, lvl)
	}
	return out, nil
}
