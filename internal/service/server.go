// The HTTP face of the job engine (cmd/dce-serve). Routes:
//
//	POST /jobs              submit a campaign Spec → 202 {"id": "job-N"}
//	                        429 + Retry-After when the queue is full,
//	                        503 while draining, 400 for bad specs
//	GET  /jobs              every job's status, in submission order
//	GET  /jobs/{id}         one job's status (state machine + progress)
//	POST /jobs/{id}/cancel  cancel a queued job / stop a running one
//	GET  /jobs/{id}/events  the job's event-log tail (?since=N resumes)
//	GET  /jobs/{id}/timeline  the job's span-timeline tail (?since=N resumes)
//	GET  /jobs/{id}/progress  the job's live progress (monitor /progress shape)
//	GET  /jobs/{id}/findings  findings discovered so far
//	GET  /jobs/{id}/report  the finished job's campaign report (text)
//	GET  /jobs/{id}/remarks  the finished job's remark summary (JSON)
//	GET  /healthz           ok | degraded (queue full) | draining
//	GET  /metrics           service registry (Prometheus text, ?format=json)
//
// Method gating rides the Go 1.22 ServeMux method patterns: a PUT against
// a GET-only route gets the mux's own 405 with an Allow header, matching
// the monitor package's read-only contract.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dcelens/internal/monitor"
)

// RetryAfter is the backpressure hint (seconds) sent with every 429.
const RetryAfter = 1

// Server exposes an Engine over HTTP.
type Server struct {
	Engine *Engine
	start  time.Time
}

// NewServer wraps an engine for serving. The uptime clock starts now.
func NewServer(e *Engine) *Server {
	return &Server{Engine: e, start: time.Now()}
}

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /jobs/{id}/findings", s.handleFindings)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/remarks", s.handleRemarks)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON is monitor.WriteJSON with an explicit status code (202 for
// submissions): encode first, then commit the status, so an encode
// failure still turns into a clean 500.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	reg := s.Engine.Metrics()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		reg.Counter(monitor.CounterEncodeErrors).Inc()
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(append(b, '\n')); err != nil {
		reg.Counter(monitor.CounterWriteErrors).Inc()
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		monitor.JSONError(w, http.StatusBadRequest, fmt.Sprintf("decoding spec: %v", err))
		return
	}
	j, err := s.Engine.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfter))
		monitor.JSONError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDraining):
		monitor.JSONError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		monitor.JSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Engine.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "jobs": out})
}

// job resolves {id}, writing the 404 itself when absent.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Engine.Job(id)
	if !ok {
		monitor.JSONError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		s.writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j, _ = s.Engine.Cancel(j.ID)
	s.writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents mirrors the monitor's /events contract per job: an ndjson
// tail of events with seq > since, the head seq in X-Dcelens-Last-Seq.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	var since int64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			monitor.JSONError(w, http.StatusBadRequest, fmt.Sprintf("since=%q: must be a non-negative integer", v))
			return
		}
		since = n
	}
	log := j.Events()
	w.Header().Set("X-Dcelens-Last-Seq", strconv.FormatInt(log.Seq(), 10))
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, e := range log.TailSince(since) {
		fmt.Fprintln(w, e.Line)
	}
}

// handleTimeline mirrors the monitor's /timeline contract per job: an
// ndjson tail of trace_event lines with seq > since, the head seq in
// X-Dcelens-Last-Seq.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	var since int64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			monitor.JSONError(w, http.StatusBadRequest, fmt.Sprintf("since=%q: must be a non-negative integer", v))
			return
		}
		since = n
	}
	rec := j.Spans()
	w.Header().Set("X-Dcelens-Last-Seq", strconv.FormatInt(rec.Seq(), 10))
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, e := range rec.TailSince(since) {
		fmt.Fprintln(w, e.Line)
	}
}

// handleProgress serves the monitor's /progress reply for one job's
// current attempt, so a dashboard pointed at either surface reads the same
// shape.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, monitor.NewProgressReply(j.Progress(), j.Registry()))
}

func (s *Server) handleFindings(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fs := j.Progress().Findings()
	if fs == nil {
		fs = []any{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"count": len(fs), "findings": fs})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	text, done := j.Report()
	if !done {
		monitor.JSONError(w, http.StatusConflict,
			fmt.Sprintf("job %s is %s; the report exists once it is done", j.ID, j.State()))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}

// handleRemarks serves a finished job's campaign-wide remark summary:
// per-pass applied/missed counts and the miss-reason histogram. Like
// /report it answers 409 until the job is done (the summary aggregates the
// whole campaign); a done job that ran without Spec.Remarks gets an
// explicit remarks=false body rather than an empty object, so clients can
// tell "collected nothing" from "was never collecting".
func (s *Server) handleRemarks(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	sum, done := j.RemarkSummary()
	if !done {
		monitor.JSONError(w, http.StatusConflict,
			fmt.Sprintf("job %s is %s; the remark summary exists once it is done", j.ID, j.State()))
		return
	}
	if sum == nil {
		s.writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "remarks": false})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "remarks": true, "summary": sum})
}

// HealthReply is the /healthz body: admission health plus the queue and
// job-outcome counters an operator watches during a drain.
type HealthReply struct {
	Status   string `json:"status"` // ok | degraded | draining
	Tool     string `json:"tool"`
	UptimeMs int64  `json:"uptime_ms"`

	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	Submitted int64 `json:"jobs_submitted"`
	Rejected  int64 `json:"jobs_rejected"`
	Retried   int64 `json:"jobs_retried"`
	Done      int64 `json:"jobs_done"`
	Failed    int64 `json:"jobs_failed"`
	Cancelled int64 `json:"jobs_cancelled"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reg := s.Engine.Metrics()
	depth, capacity := s.Engine.QueueDepth()
	s.writeJSON(w, http.StatusOK, HealthReply{
		Status:     s.Engine.Health(),
		Tool:       s.Engine.Tool,
		UptimeMs:   time.Since(s.start).Milliseconds(),
		QueueDepth: depth,
		QueueCap:   capacity,
		Submitted:  reg.Counter(CounterSubmitted).Value(),
		Rejected:   reg.Counter(CounterRejected).Value(),
		Retried:    reg.Counter(CounterRetried).Value(),
		Done:       reg.Counter(CounterDone).Value(),
		Failed:     reg.Counter(CounterFailed).Value(),
		Cancelled:  reg.Counter(CounterCancelled).Value(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.Engine.Metrics().Snapshot()
	if r.URL.Query().Get("format") == "json" {
		s.writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, monitor.Exposition(snap))
}
