package sema

import (
	"fmt"

	"dcelens/internal/ast"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// expr type-checks e and returns the (possibly rewritten) expression with
// its type annotated. On error the returned expression carries type I32 so
// checking can continue producing further diagnostics.
func (c *checker) expr(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.IntLit:
		if e.Typ == nil {
			e.Typ = types.I32Type
		}
		e.Val = e.Typ.WrapValue(e.Val)
		return e

	case *ast.VarRef:
		d := c.lookup(e.Name)
		if d == nil {
			c.errorf(e.Pos(), "undeclared identifier %q", e.Name)
			e.Typ = types.I32Type
			return e
		}
		e.Obj = d
		e.Typ = d.Typ
		return e

	case *ast.Unary:
		return c.unary(e)

	case *ast.Binary:
		return c.binary(e)

	case *ast.Assign:
		return c.assign(e)

	case *ast.IncDec:
		e.X = c.expr(e.X)
		if !c.isLvalue(e.X) {
			c.errorf(e.Pos(), "operand of %s is not assignable", e.Op)
		}
		t := e.X.Type()
		if t == nil || !t.IsScalar() {
			c.errorf(e.Pos(), "operand of %s must be scalar", e.Op)
			t = types.I32Type
		}
		e.Typ = t
		return e

	case *ast.Cond:
		e.CondX = c.scalarCond(e.CondX)
		e.Then = c.expr(e.Then)
		e.Else = c.expr(e.Else)
		tt, ft := c.decayed(e.Then), c.decayed(e.Else)
		e.Then, e.Else = tt.e, ft.e
		switch {
		case tt.t.IsInteger() && ft.t.IsInteger():
			common := types.Promote(tt.t, ft.t)
			e.Then = c.convertTo(e.Then, common, e.Pos())
			e.Else = c.convertTo(e.Else, common, e.Pos())
			e.Typ = common
		case tt.t.IsPointer() && ft.t.IsPointer() && types.Identical(tt.t, ft.t):
			e.Typ = tt.t
		case tt.t.Kind == types.Void && ft.t.Kind == types.Void:
			e.Typ = types.VoidType
		default:
			c.errorf(e.Pos(), "mismatched conditional arms: %s vs %s", tt.t, ft.t)
			e.Typ = types.I32Type
		}
		return e

	case *ast.Call:
		return c.call(e)

	case *ast.Index:
		return c.index(e)

	case *ast.Cast:
		// Casts only appear in already-checked trees (idempotent re-check).
		e.X = c.expr(e.X)
		return e

	case *ast.ArrayInit:
		c.errorf(e.Pos(), "brace initializer is only allowed on array declarations")
		return &ast.IntLit{LitPos: e.Pos(), Typ: types.I32Type}

	default:
		panic(fmt.Sprintf("sema: unknown expr %T", e))
	}
}

// decayedExpr pairs an expression with its value type after array decay.
type decayedExpr struct {
	e ast.Expr
	t *types.Type
}

// decayed applies array-to-pointer decay: an array-typed expression used as
// a value becomes a pointer to its first element (wrapped in a Cast).
func (c *checker) decayed(e ast.Expr) decayedExpr {
	t := e.Type()
	if t == nil {
		return decayedExpr{e, types.I32Type}
	}
	if t.Kind == types.Array {
		pt := types.PointerTo(t.Elem)
		return decayedExpr{&ast.Cast{To: pt, X: e}, pt}
	}
	return decayedExpr{e, t}
}

// convertTo inserts a Cast from e's (decayed) type to want if needed.
// Only integer-to-integer conversions and exact pointer matches are legal.
func (c *checker) convertTo(e ast.Expr, want *types.Type, pos token.Pos) ast.Expr {
	de := c.decayed(e)
	e = de.e
	have := de.t
	if types.Identical(have, want) {
		return e
	}
	switch {
	case have.IsInteger() && want.IsInteger():
		// Fold the conversion directly into literals to keep trees small.
		if lit, ok := e.(*ast.IntLit); ok {
			return &ast.IntLit{LitPos: lit.LitPos, Val: want.WrapValue(lit.Val), Typ: want}
		}
		return &ast.Cast{To: want, X: e}
	default:
		c.errorf(pos, "cannot convert %s to %s", have, want)
		return &ast.Cast{To: want, X: e}
	}
}

func (c *checker) isLvalue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.VarRef:
		return e.Obj != nil && e.Obj.Typ.Kind != types.Array
	case *ast.Index:
		return true
	case *ast.Unary:
		return e.Op == token.Star
	}
	return false
}

func (c *checker) unary(e *ast.Unary) ast.Expr {
	e.X = c.expr(e.X)
	switch e.Op {
	case token.Minus, token.Tilde:
		t := e.X.Type()
		if t == nil || !t.IsInteger() {
			c.errorf(e.Pos(), "operand of unary %s must be an integer", e.Op)
			e.Typ = types.I32Type
			return e
		}
		p := types.PromoteOne(t)
		e.X = c.convertTo(e.X, p, e.Pos())
		e.Typ = p
		return e

	case token.Not:
		d := c.decayed(e.X)
		e.X = d.e
		if !d.t.IsScalar() {
			c.errorf(e.Pos(), "operand of ! must be scalar")
		}
		e.Typ = types.I32Type
		return e

	case token.Amp:
		if !c.isAddressable(e.X) {
			c.errorf(e.Pos(), "cannot take the address of this expression")
			e.Typ = types.PointerTo(types.I32Type)
			return e
		}
		e.Typ = types.PointerTo(e.X.Type())
		return e

	case token.Star:
		d := c.decayed(e.X)
		e.X = d.e
		if !d.t.IsPointer() {
			c.errorf(e.Pos(), "cannot dereference non-pointer type %s", d.t)
			e.Typ = types.I32Type
			return e
		}
		if d.t.Elem.Kind == types.Void {
			c.errorf(e.Pos(), "cannot dereference void pointer")
			e.Typ = types.I32Type
			return e
		}
		e.Typ = d.t.Elem
		return e
	}
	panic(fmt.Sprintf("sema: unary %v", e.Op))
}

// isAddressable reports whether &e is legal: named variables (including
// arrays), array elements, and dereferences.
func (c *checker) isAddressable(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.VarRef:
		return e.Obj != nil
	case *ast.Index:
		return true
	case *ast.Unary:
		return e.Op == token.Star
	}
	return false
}

func (c *checker) binary(e *ast.Binary) ast.Expr {
	e.X = c.expr(e.X)
	e.Y = c.expr(e.Y)
	dx, dy := c.decayed(e.X), c.decayed(e.Y)
	e.X, e.Y = dx.e, dy.e
	tx, ty := dx.t, dy.t

	switch e.Op {
	case token.AndAnd, token.OrOr:
		if !tx.IsScalar() || !ty.IsScalar() {
			c.errorf(e.Pos(), "operands of %s must be scalar", e.Op)
		}
		e.Typ = types.I32Type
		return e

	case token.EqEq, token.NotEq, token.Lt, token.Gt, token.Le, token.Ge:
		switch {
		case tx.IsInteger() && ty.IsInteger():
			common := types.Promote(tx, ty)
			e.X = c.convertTo(e.X, common, e.Pos())
			e.Y = c.convertTo(e.Y, common, e.Pos())
		case tx.IsPointer() && ty.IsPointer() && types.Identical(tx, ty):
			// pointer comparison, fine
		default:
			c.errorf(e.Pos(), "cannot compare %s with %s", tx, ty)
		}
		e.Typ = types.I32Type
		return e

	case token.Shl, token.Shr:
		if !tx.IsInteger() || !ty.IsInteger() {
			c.errorf(e.Pos(), "operands of %s must be integers", e.Op)
			e.Typ = types.I32Type
			return e
		}
		pl := types.PromoteOne(tx)
		e.X = c.convertTo(e.X, pl, e.Pos())
		e.Y = c.convertTo(e.Y, types.PromoteOne(ty), e.Pos())
		e.Typ = pl
		return e

	case token.Plus, token.Minus:
		// Pointer arithmetic: ptr ± int, int + ptr.
		if tx.IsPointer() && ty.IsInteger() {
			e.Y = c.convertTo(e.Y, types.I64Type, e.Pos())
			e.Typ = tx
			return e
		}
		if e.Op == token.Plus && tx.IsInteger() && ty.IsPointer() {
			// Normalize to ptr + int.
			e.X, e.Y = e.Y, e.X
			e.Y = c.convertTo(e.Y, types.I64Type, e.Pos())
			e.Typ = e.X.Type()
			return e
		}
		fallthrough

	case token.Star, token.Slash, token.Percent, token.Amp, token.Pipe, token.Caret:
		if !tx.IsInteger() || !ty.IsInteger() {
			c.errorf(e.Pos(), "invalid operands to %s: %s and %s", e.Op, tx, ty)
			e.Typ = types.I32Type
			return e
		}
		common := types.Promote(tx, ty)
		e.X = c.convertTo(e.X, common, e.Pos())
		e.Y = c.convertTo(e.Y, common, e.Pos())
		e.Typ = common
		return e
	}
	panic(fmt.Sprintf("sema: binary %v", e.Op))
}

func (c *checker) assign(e *ast.Assign) ast.Expr {
	e.LHS = c.expr(e.LHS)
	e.RHS = c.expr(e.RHS)
	if !c.isLvalue(e.LHS) {
		c.errorf(e.Pos(), "left operand of %s is not assignable", e.Op)
		e.Typ = types.I32Type
		return e
	}
	lt := e.LHS.Type()
	if e.Op == token.Assign {
		e.RHS = c.convertTo(e.RHS, lt, e.Pos())
		e.Typ = lt
		return e
	}
	// Compound assignment: lhs op= rhs behaves as lhs = lhs op rhs with the
	// arithmetic performed in the promoted common type, then converted back.
	base := e.Op.BaseOf()
	rt := c.decayed(e.RHS)
	e.RHS = rt.e
	switch {
	case lt.IsInteger() && rt.t.IsInteger():
		// handled at interp/lower time; just convert rhs to the promoted type
		var opType *types.Type
		if base == token.Shl || base == token.Shr {
			opType = types.PromoteOne(rt.t)
		} else {
			opType = types.Promote(lt, rt.t)
		}
		e.RHS = c.convertTo(e.RHS, opType, e.Pos())
	case lt.IsPointer() && rt.t.IsInteger() && (base == token.Plus || base == token.Minus):
		e.RHS = c.convertTo(e.RHS, types.I64Type, e.Pos())
	default:
		c.errorf(e.Pos(), "invalid compound assignment %s on %s and %s", e.Op, lt, rt.t)
	}
	e.Typ = lt
	return e
}

func (c *checker) call(e *ast.Call) ast.Expr {
	fn := c.funcs[e.Name]
	if fn == nil {
		c.errorf(e.Pos(), "call to undeclared function %q", e.Name)
		e.Typ = types.I32Type
		return e
	}
	e.Fn = fn
	e.Typ = fn.Ret
	if len(e.Args) != len(fn.Params) {
		c.errorf(e.Pos(), "call to %q with %d arguments, want %d", e.Name, len(e.Args), len(fn.Params))
		return e
	}
	for i, a := range e.Args {
		a = c.expr(a)
		e.Args[i] = c.convertTo(a, fn.Params[i].Typ, a.Pos())
	}
	return e
}

func (c *checker) index(e *ast.Index) ast.Expr {
	e.Base = c.expr(e.Base)
	e.Idx = c.expr(e.Idx)
	bt := e.Base.Type()
	var elem *types.Type
	switch {
	case bt != nil && bt.Kind == types.Array:
		elem = bt.Elem
	case bt != nil && bt.Kind == types.Pointer:
		elem = bt.Elem
	default:
		c.errorf(e.Pos(), "cannot index type %s", bt)
		e.Typ = types.I32Type
		return e
	}
	it := e.Idx.Type()
	if it == nil || !it.IsInteger() {
		c.errorf(e.Pos(), "array index must be an integer")
	} else {
		e.Idx = c.convertTo(e.Idx, types.I64Type, e.Pos())
	}
	e.Typ = elem
	return e
}

// ---------------------------------------------------------------------------
// Constant evaluation

// ConstEval evaluates a checked, side-effect-free integer expression at
// compile time. It returns the canonical value under the expression's type
// and whether evaluation succeeded. It understands the complete defined
// semantics of MiniC arithmetic and is shared with sema's case-label
// checking and the backend's folding of global initializers.
func ConstEval(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Val, true
	case *ast.Cast:
		v, ok := ConstEval(e.X)
		if !ok || !e.To.IsInteger() {
			return 0, false
		}
		return e.To.WrapValue(v), true
	case *ast.Unary:
		v, ok := ConstEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.Minus:
			return e.Typ.WrapValue(-v), true
		case token.Tilde:
			return e.Typ.WrapValue(^v), true
		case token.Not:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *ast.Binary:
		x, ok := ConstEval(e.X)
		if !ok {
			return 0, false
		}
		if e.Op == token.AndAnd {
			if x == 0 {
				return 0, true
			}
			y, ok := ConstEval(e.Y)
			if !ok {
				return 0, false
			}
			return boolInt(y != 0), true
		}
		if e.Op == token.OrOr {
			if x != 0 {
				return 1, true
			}
			y, ok := ConstEval(e.Y)
			if !ok {
				return 0, false
			}
			return boolInt(y != 0), true
		}
		y, ok := ConstEval(e.Y)
		if !ok {
			return 0, false
		}
		t := e.X.Type()
		if t == nil || !t.IsInteger() {
			return 0, false
		}
		return EvalBinop(e.Op, x, y, t, e.Typ)
	}
	return 0, false
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// EvalBinop applies a non-short-circuit binary operator to canonical values
// x and y of operand type opTy, producing a canonical value of result type
// resTy. This single function defines MiniC's arithmetic semantics and is
// shared by sema, the AST interpreter, the IR executor, and the constant
// folders, guaranteeing they agree bit-for-bit.
func EvalBinop(op token.Kind, x, y int64, opTy, resTy *types.Type) (int64, bool) {
	signed := opTy.IsSigned()
	bits := opTy.Bits()
	switch op {
	case token.Plus:
		return resTy.WrapValue(x + y), true
	case token.Minus:
		return resTy.WrapValue(x - y), true
	case token.Star:
		return resTy.WrapValue(x * y), true
	case token.Slash:
		// Total division: x/0 == 0; INT_MIN / -1 wraps.
		if y == 0 {
			return 0, true
		}
		if signed {
			if x == minOf(bits) && y == -1 {
				return resTy.WrapValue(x), true
			}
			return resTy.WrapValue(x / y), true
		}
		return resTy.WrapValue(int64(uint64(x) / uint64(y))), true
	case token.Percent:
		// Total remainder: x%0 == x.
		if y == 0 {
			return resTy.WrapValue(x), true
		}
		if signed {
			if x == minOf(bits) && y == -1 {
				return 0, true
			}
			return resTy.WrapValue(x % y), true
		}
		return resTy.WrapValue(int64(uint64(x) % uint64(y))), true
	case token.Amp:
		return resTy.WrapValue(x & y), true
	case token.Pipe:
		return resTy.WrapValue(x | y), true
	case token.Caret:
		return resTy.WrapValue(x ^ y), true
	case token.Shl:
		sh := uint64(y) & uint64(bits-1) // masked shift amount: always defined
		return resTy.WrapValue(x << sh), true
	case token.Shr:
		sh := uint64(y) & uint64(bits-1)
		if signed {
			return resTy.WrapValue(x >> sh), true
		}
		return resTy.WrapValue(int64(truncU(x, bits) >> sh)), true
	case token.EqEq:
		return boolInt(x == y), true
	case token.NotEq:
		return boolInt(x != y), true
	case token.Lt:
		if signed {
			return boolInt(x < y), true
		}
		return boolInt(truncU(x, bits) < truncU(y, bits)), true
	case token.Gt:
		if signed {
			return boolInt(x > y), true
		}
		return boolInt(truncU(x, bits) > truncU(y, bits)), true
	case token.Le:
		if signed {
			return boolInt(x <= y), true
		}
		return boolInt(truncU(x, bits) <= truncU(y, bits)), true
	case token.Ge:
		if signed {
			return boolInt(x >= y), true
		}
		return boolInt(truncU(x, bits) >= truncU(y, bits)), true
	}
	return 0, false
}

func minOf(bits int) int64 {
	return -1 << (bits - 1)
}

// truncU interprets the canonical value v as an unsigned integer of the
// given width.
func truncU(v int64, bits int) uint64 {
	if bits == 64 {
		return uint64(v)
	}
	return uint64(v) & (1<<uint(bits) - 1)
}
