// Package sema implements semantic analysis for MiniC: symbol resolution,
// type checking, and insertion of implicit conversions.
//
// Check annotates the AST in place (VarRef.Obj, Call.Fn, every Expr's type)
// and rewrites expressions to insert ast.Cast nodes wherever MiniC's usual
// arithmetic conversions, assignment conversions, or array-to-pointer decay
// apply. After a successful Check, the interpreter and the lowering pass can
// rely on every operator seeing operands of identical scalar types.
package sema

import (
	"errors"
	"fmt"

	"dcelens/internal/ast"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Check verifies and annotates prog. It returns an error combining all
// semantic errors found (or nil).
func Check(prog *ast.Program) error {
	c := &checker{
		globals: map[string]*ast.VarDecl{},
		funcs:   map[string]*ast.FuncDecl{},
	}
	c.program(prog)
	if len(c.errs) == 0 {
		return nil
	}
	return errors.Join(c.errs...)
}

type checker struct {
	globals  map[string]*ast.VarDecl
	funcs    map[string]*ast.FuncDecl
	scopes   []map[string]*ast.VarDecl // innermost last; nil when at file scope
	fn       *ast.FuncDecl             // current function
	loops    int                       // loop nesting depth
	switches int                       // switch nesting depth
	errs     []error
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------------
// Declarations

func (c *checker) program(prog *ast.Program) {
	// Pass 1: register all top-level names so calls may reference functions
	// defined later in the file.
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			if _, dup := c.globals[d.Name]; dup {
				c.errorf(d.Pos(), "redefinition of global %q", d.Name)
				continue
			}
			if _, dup := c.funcs[d.Name]; dup {
				c.errorf(d.Pos(), "%q redeclared as a variable", d.Name)
				continue
			}
			c.globals[d.Name] = d
		case *ast.FuncDecl:
			if prev, ok := c.funcs[d.Name]; ok {
				if prev.Body != nil && d.Body != nil {
					c.errorf(d.Pos(), "redefinition of function %q", d.Name)
					continue
				}
				if !types.Identical(prev.Sig(), d.Sig()) {
					c.errorf(d.Pos(), "conflicting declarations of %q", d.Name)
					continue
				}
				if d.Body != nil {
					c.funcs[d.Name] = d
				}
				continue
			}
			if _, dup := c.globals[d.Name]; dup {
				c.errorf(d.Pos(), "%q redeclared as a function", d.Name)
				continue
			}
			c.funcs[d.Name] = d
		}
	}
	// Pass 2: check bodies and initializers.
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			c.globalVar(d)
		case *ast.FuncDecl:
			c.function(d)
		}
	}
}

func (c *checker) globalVar(d *ast.VarDecl) {
	if d.Typ.Kind == types.Void {
		c.errorf(d.Pos(), "variable %q has type void", d.Name)
		return
	}
	if d.Init == nil {
		return
	}
	if d.Typ.Kind == types.Array {
		c.arrayInit(d)
		return
	}
	d.Init = c.expr(d.Init)
	d.Init = c.convertTo(d.Init, d.Typ, d.Pos())
	if !isConstInit(d.Init) {
		c.errorf(d.Pos(), "initializer of global %q is not a constant expression", d.Name)
	}
}

func (c *checker) arrayInit(d *ast.VarDecl) {
	init, ok := d.Init.(*ast.ArrayInit)
	if !ok {
		c.errorf(d.Pos(), "array %q requires a brace initializer", d.Name)
		return
	}
	init.Typ = d.Typ
	if len(init.Elems) > d.Typ.Len {
		c.errorf(d.Pos(), "too many initializers for %q", d.Name)
	}
	for i, e := range init.Elems {
		e = c.expr(e)
		e = c.convertTo(e, d.Typ.Elem, e.Pos())
		if d.IsGlobal && !isConstInit(e) {
			c.errorf(e.Pos(), "element %d of global array %q is not constant", i, d.Name)
		}
		init.Elems[i] = e
	}
}

// isConstInit reports whether e is a valid constant initializer for a
// global: an integer constant expression, the address of a global, the
// address of a constant-indexed global array element, or a decayed global
// array.
func isConstInit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit:
		return true
	case *ast.Cast:
		return isConstInit(e.X)
	case *ast.Unary:
		switch e.Op {
		case token.Minus, token.Tilde, token.Not:
			return isConstInit(e.X)
		case token.Amp:
			return isConstAddr(e.X)
		}
		return false
	case *ast.Binary:
		if e.Op == token.AndAnd || e.Op == token.OrOr {
			return isConstInit(e.X) && isConstInit(e.Y)
		}
		return isConstInit(e.X) && isConstInit(e.Y)
	case *ast.VarRef:
		// decayed global array
		return e.Obj != nil && e.Obj.IsGlobal && e.Obj.Typ.Kind == types.Array
	}
	return false
}

func isConstAddr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.VarRef:
		return e.Obj != nil && e.Obj.IsGlobal
	case *ast.Index:
		base, ok := e.Base.(*ast.VarRef)
		if !ok || base.Obj == nil || !base.Obj.IsGlobal {
			return false
		}
		return isConstInit(e.Idx)
	}
	return false
}

func (c *checker) function(f *ast.FuncDecl) {
	if f.Body == nil {
		return
	}
	c.fn = f
	c.scopes = []map[string]*ast.VarDecl{{}}
	for _, p := range f.Params {
		if p.Typ.Kind == types.Void || p.Typ.Kind == types.Array {
			c.errorf(p.Pos(), "parameter %q has invalid type %s", p.Name, p.Typ)
		}
		c.declare(p)
	}
	c.blockInScope(f.Body)
	c.scopes = nil
	c.fn = nil
}

// ---------------------------------------------------------------------------
// Scopes

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*ast.VarDecl{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(d *ast.VarDecl) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[d.Name]; dup {
		c.errorf(d.Pos(), "redeclaration of %q in the same scope", d.Name)
		return
	}
	top[d.Name] = d
}

func (c *checker) lookup(name string) *ast.VarDecl {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if d, ok := c.scopes[i][name]; ok {
			return d
		}
	}
	return c.globals[name]
}

// ---------------------------------------------------------------------------
// Statements

func (c *checker) blockInScope(b *ast.Block) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.stmt(s)
	}
	c.popScope()
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.blockInScope(s)
	case *ast.DeclStmt:
		c.localVar(s.Decl)
	case *ast.ExprStmt:
		s.X = c.expr(s.X)
	case *ast.Empty:
	case *ast.If:
		s.Cond = c.scalarCond(s.Cond)
		c.stmt(s.Then)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.While:
		s.Cond = c.scalarCond(s.Cond)
		c.loops++
		c.stmt(s.Body)
		c.loops--
	case *ast.DoWhile:
		c.loops++
		c.stmt(s.Body)
		c.loops--
		s.Cond = c.scalarCond(s.Cond)
	case *ast.For:
		c.pushScope()
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			s.Cond = c.scalarCond(s.Cond)
		}
		if s.Post != nil {
			s.Post = c.expr(s.Post)
		}
		c.loops++
		c.stmt(s.Body)
		c.loops--
		c.popScope()
	case *ast.Return:
		c.returnStmt(s)
	case *ast.Break:
		if c.loops == 0 && c.switches == 0 {
			c.errorf(s.Pos(), "break outside loop or switch")
		}
	case *ast.Continue:
		if c.loops == 0 {
			c.errorf(s.Pos(), "continue outside loop")
		}
	case *ast.Switch:
		c.switchStmt(s)
	default:
		panic(fmt.Sprintf("sema: unknown stmt %T", s))
	}
}

func (c *checker) localVar(d *ast.VarDecl) {
	if d.Typ.Kind == types.Void {
		c.errorf(d.Pos(), "variable %q has type void", d.Name)
		return
	}
	if d.Init != nil {
		if d.Typ.Kind == types.Array {
			c.arrayInit(d)
		} else {
			d.Init = c.expr(d.Init)
			d.Init = c.convertTo(d.Init, d.Typ, d.Pos())
			if d.Storage == ast.StorageStatic && !isConstInit(d.Init) {
				c.errorf(d.Pos(), "initializer of static local %q is not constant", d.Name)
			}
		}
	}
	c.declare(d)
}

func (c *checker) returnStmt(s *ast.Return) {
	ret := c.fn.Ret
	if ret.Kind == types.Void {
		if s.X != nil {
			c.errorf(s.Pos(), "return with a value in void function %q", c.fn.Name)
		}
		return
	}
	if s.X == nil {
		c.errorf(s.Pos(), "return without a value in function %q returning %s", c.fn.Name, ret)
		return
	}
	s.X = c.expr(s.X)
	s.X = c.convertTo(s.X, ret, s.Pos())
}

func (c *checker) switchStmt(s *ast.Switch) {
	s.Tag = c.expr(s.Tag)
	tt := s.Tag.Type()
	if tt == nil || !tt.IsInteger() {
		c.errorf(s.Pos(), "switch tag must be an integer")
		return
	}
	promoted := types.PromoteOne(tt)
	s.Tag = c.convertTo(s.Tag, promoted, s.Pos())
	seen := map[int64]bool{}
	sawDefault := false
	c.switches++
	for _, cs := range s.Cases {
		if cs.IsDefault {
			if sawDefault {
				c.errorf(cs.CasePos, "duplicate default label")
			}
			sawDefault = true
		}
		for i, v := range cs.Vals {
			v = c.expr(v)
			v = c.convertTo(v, promoted, v.Pos())
			cs.Vals[i] = v
			cv, ok := ConstEval(v)
			if !ok {
				c.errorf(v.Pos(), "case label is not a constant expression")
				continue
			}
			if seen[cv] {
				c.errorf(v.Pos(), "duplicate case value %d", cv)
			}
			seen[cv] = true
		}
		for _, st := range cs.Body {
			c.stmt(st)
		}
	}
	c.switches--
}

// scalarCond checks a condition expression: it must have scalar type.
func (c *checker) scalarCond(e ast.Expr) ast.Expr {
	e = c.expr(e)
	if t := e.Type(); t != nil && !t.IsScalar() {
		c.errorf(e.Pos(), "condition has non-scalar type %s", t)
	}
	return e
}
