package sema

import (
	"testing"
	"testing/quick"

	"dcelens/internal/token"
	"dcelens/internal/types"
)

// TestEvalBinopReference spot-checks the shared arithmetic definition
// against hand-computed values, including MiniC's defined-everything rules.
func TestEvalBinopReference(t *testing.T) {
	i32 := types.I32Type
	u32 := types.U32Type
	i8 := types.I8Type
	cases := []struct {
		op    token.Kind
		x, y  int64
		opTy  *types.Type
		resTy *types.Type
		want  int64
	}{
		{token.Plus, 2147483647, 1, i32, i32, -2147483648}, // wrap
		{token.Minus, -2147483648, 1, i32, i32, 2147483647},
		{token.Star, 65536, 65536, i32, i32, 0},
		{token.Slash, 7, 0, i32, i32, 0},                      // total division
		{token.Percent, 7, 0, i32, i32, 7},                    // total remainder
		{token.Slash, -2147483648, -1, i32, i32, -2147483648}, // INT_MIN/-1 wraps
		{token.Percent, -2147483648, -1, i32, i32, 0},
		{token.Shl, 1, 33, i32, i32, 2},          // masked shift
		{token.Shr, -16, 2, i32, i32, -4},        // arithmetic
		{token.Shr, -1, 1, u32, u32, 2147483647}, // logical (canonical -1 = 0xFFFFFFFF)
		{token.Lt, -1, 1, i32, i32, 1},
		{token.Lt, -1, 1, u32, i32, 0}, // unsigned: 0xFFFFFFFF > 1
		{token.Plus, 127, 1, i8, i8, -128},
		{token.EqEq, 5, 5, i32, i32, 1},
		{token.Ge, 3, 3, u32, i32, 1},
	}
	for _, c := range cases {
		got, ok := EvalBinop(c.op, c.x, c.y, c.opTy, c.resTy)
		if !ok {
			t.Errorf("EvalBinop(%v, %d, %d, %v) not ok", c.op, c.x, c.y, c.opTy)
			continue
		}
		if got != c.want {
			t.Errorf("EvalBinop(%v, %d, %d, %v) = %d, want %d", c.op, c.x, c.y, c.opTy, got, c.want)
		}
	}
}

// TestEvalBinopCanonical: results are always canonical for the result type.
func TestEvalBinopCanonical(t *testing.T) {
	ops := []token.Kind{
		token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.Amp, token.Pipe, token.Caret, token.Shl, token.Shr,
		token.EqEq, token.NotEq, token.Lt, token.Gt, token.Le, token.Ge,
	}
	f := func(x, y int64, opIdx uint8, tyIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		ty := types.IntTypes[int(tyIdx)%len(types.IntTypes)]
		xv, yv := ty.WrapValue(x), ty.WrapValue(y)
		got, ok := EvalBinop(op, xv, yv, ty, ty)
		if !ok {
			return false
		}
		return ty.WrapValue(got) == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestEvalBinopAgainstGo cross-checks 64-bit signed arithmetic against Go's
// own operators (identical semantics at 64 bits apart from the totalized
// division).
func TestEvalBinopAgainstGo(t *testing.T) {
	i64 := types.I64Type
	f := func(x, y int64) bool {
		add, _ := EvalBinop(token.Plus, x, y, i64, i64)
		if add != x+y {
			return false
		}
		xor, _ := EvalBinop(token.Caret, x, y, i64, i64)
		if xor != x^y {
			return false
		}
		lt, _ := EvalBinop(token.Lt, x, y, i64, i64)
		if (lt == 1) != (x < y) {
			return false
		}
		if y != 0 && !(x == -9223372036854775808 && y == -1) {
			div, _ := EvalBinop(token.Slash, x, y, i64, i64)
			if div != x/y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestShiftMasking: shift amounts are masked by width-1, like x86.
func TestShiftMasking(t *testing.T) {
	for _, ty := range types.IntTypes {
		bits := int64(ty.Bits())
		for _, amt := range []int64{0, 1, bits - 1, bits, bits + 1, 2*bits + 3} {
			got, ok := EvalBinop(token.Shl, 1, amt, ty, ty)
			if !ok {
				t.Fatalf("%v shl not ok", ty)
			}
			want := ty.WrapValue(1 << uint64(amt&(bits-1)))
			if got != want {
				t.Errorf("%v: 1 << %d = %d, want %d", ty, amt, got, want)
			}
		}
	}
}
