// Package token defines the lexical tokens of MiniC, the C-like language
// used throughout dcelens, together with source positions.
//
// MiniC is the input language of the reproduction: a deterministic,
// UB-free C subset rich enough that discovering dead code requires real
// compiler analyses (constant propagation, alias analysis, range analysis,
// inlining). See DESIGN.md for the language rationale.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The order within operator groups matters only for
// readability; precedence is defined by the parser.
const (
	Invalid Kind = iota
	EOF

	// Literals and identifiers.
	Ident  // main, foo_3
	IntLit // 123, 0x7f

	// Keywords.
	KwVoid
	KwChar
	KwShort
	KwInt
	KwLong
	KwSigned
	KwUnsigned
	KwStatic
	KwExtern
	KwIf
	KwElse
	KwFor
	KwWhile
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwSwitch
	KwCase
	KwDefault
	KwGoto // reserved, rejected by the parser with a clear error

	// Punctuation.
	LParen    // (
	RParen    // )
	LBrace    // {
	RBrace    // }
	LBracket  // [
	RBracket  // ]
	Comma     // ,
	Semicolon // ;
	Colon     // :
	Question  // ?

	// Operators.
	Assign     // =
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Percent    // %
	Amp        // &
	Pipe       // |
	Caret      // ^
	Tilde      // ~
	Not        // !
	Shl        // <<
	Shr        // >>
	Lt         // <
	Gt         // >
	Le         // <=
	Ge         // >=
	EqEq       // ==
	NotEq      // !=
	AndAnd     // &&
	OrOr       // ||
	PlusPlus   // ++
	MinusMinus // --

	// Compound assignment.
	PlusAssign    // +=
	MinusAssign   // -=
	StarAssign    // *=
	SlashAssign   // /=
	PercentAssign // %=
	AmpAssign     // &=
	PipeAssign    // |=
	CaretAssign   // ^=
	ShlAssign     // <<=
	ShrAssign     // >>=
)

var kindNames = map[Kind]string{
	Invalid:    "invalid",
	EOF:        "EOF",
	Ident:      "identifier",
	IntLit:     "integer literal",
	KwVoid:     "void",
	KwChar:     "char",
	KwShort:    "short",
	KwInt:      "int",
	KwLong:     "long",
	KwSigned:   "signed",
	KwUnsigned: "unsigned",
	KwStatic:   "static",
	KwExtern:   "extern",
	KwIf:       "if",
	KwElse:     "else",
	KwFor:      "for",
	KwWhile:    "while",
	KwDo:       "do",
	KwReturn:   "return",
	KwBreak:    "break",
	KwContinue: "continue",
	KwSwitch:   "switch",
	KwCase:     "case",
	KwDefault:  "default",
	KwGoto:     "goto",

	LParen:    "(",
	RParen:    ")",
	LBrace:    "{",
	RBrace:    "}",
	LBracket:  "[",
	RBracket:  "]",
	Comma:     ",",
	Semicolon: ";",
	Colon:     ":",
	Question:  "?",

	Assign:     "=",
	Plus:       "+",
	Minus:      "-",
	Star:       "*",
	Slash:      "/",
	Percent:    "%",
	Amp:        "&",
	Pipe:       "|",
	Caret:      "^",
	Tilde:      "~",
	Not:        "!",
	Shl:        "<<",
	Shr:        ">>",
	Lt:         "<",
	Gt:         ">",
	Le:         "<=",
	Ge:         ">=",
	EqEq:       "==",
	NotEq:      "!=",
	AndAnd:     "&&",
	OrOr:       "||",
	PlusPlus:   "++",
	MinusMinus: "--",

	PlusAssign:    "+=",
	MinusAssign:   "-=",
	StarAssign:    "*=",
	SlashAssign:   "/=",
	PercentAssign: "%=",
	AmpAssign:     "&=",
	PipeAssign:    "|=",
	CaretAssign:   "^=",
	ShlAssign:     "<<=",
	ShrAssign:     ">>=",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"void":     KwVoid,
	"char":     KwChar,
	"short":    KwShort,
	"int":      KwInt,
	"long":     KwLong,
	"signed":   KwSigned,
	"unsigned": KwUnsigned,
	"static":   KwStatic,
	"extern":   KwExtern,
	"if":       KwIf,
	"else":     KwElse,
	"for":      KwFor,
	"while":    KwWhile,
	"do":       KwDo,
	"return":   KwReturn,
	"break":    KwBreak,
	"continue": KwContinue,
	"switch":   KwSwitch,
	"case":     KwCase,
	"default":  KwDefault,
	"goto":     KwGoto,
}

// IsAssignOp reports whether k is = or a compound-assignment operator.
func (k Kind) IsAssignOp() bool {
	switch k {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
		PercentAssign, AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign:
		return true
	}
	return false
}

// BaseOf returns the arithmetic operator underlying a compound assignment,
// e.g. BaseOf(PlusAssign) == Plus. It returns Invalid for plain Assign and
// for non-assignment kinds.
func (k Kind) BaseOf() Kind {
	switch k {
	case PlusAssign:
		return Plus
	case MinusAssign:
		return Minus
	case StarAssign:
		return Star
	case SlashAssign:
		return Slash
	case PercentAssign:
		return Percent
	case AmpAssign:
		return Amp
	case PipeAssign:
		return Pipe
	case CaretAssign:
		return Caret
	case ShlAssign:
		return Shl
	case ShrAssign:
		return Shr
	}
	return Invalid
}

// Pos is a source position: 1-based line and column. The zero Pos is
// "no position".
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p carries an actual position.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Token is a single lexical token with its source position and spelling.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // original spelling; set for Ident and IntLit
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit:
		return t.Text
	default:
		return t.Kind.String()
	}
}
