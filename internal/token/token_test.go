package token

import "testing"

func TestIsAssignOp(t *testing.T) {
	yes := []Kind{Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
		PercentAssign, AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign}
	for _, k := range yes {
		if !k.IsAssignOp() {
			t.Errorf("%v should be an assignment operator", k)
		}
	}
	no := []Kind{Plus, EqEq, Lt, AndAnd, Ident, EOF}
	for _, k := range no {
		if k.IsAssignOp() {
			t.Errorf("%v should not be an assignment operator", k)
		}
	}
}

func TestBaseOf(t *testing.T) {
	cases := map[Kind]Kind{
		PlusAssign:    Plus,
		MinusAssign:   Minus,
		StarAssign:    Star,
		SlashAssign:   Slash,
		PercentAssign: Percent,
		AmpAssign:     Amp,
		PipeAssign:    Pipe,
		CaretAssign:   Caret,
		ShlAssign:     Shl,
		ShrAssign:     Shr,
		Assign:        Invalid,
		Plus:          Invalid,
	}
	for in, want := range cases {
		if got := in.BaseOf(); got != want {
			t.Errorf("BaseOf(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestPos(t *testing.T) {
	if (Pos{}).IsValid() {
		t.Error("zero Pos must be invalid")
	}
	p := Pos{Line: 3, Col: 7}
	if !p.IsValid() || p.String() != "3:7" {
		t.Errorf("Pos formatting: %q", p.String())
	}
	if (Pos{}).String() != "-" {
		t.Error("invalid pos prints -")
	}
}

func TestTokenString(t *testing.T) {
	if (Token{Kind: Ident, Text: "foo"}).String() != "foo" {
		t.Error("ident token prints its text")
	}
	if (Token{Kind: Plus}).String() != "+" {
		t.Error("operator token prints its spelling")
	}
}

func TestKeywordsComplete(t *testing.T) {
	// Every keyword maps back to a kind whose name is the spelling.
	for spell, kind := range Keywords {
		if kind.String() != spell {
			t.Errorf("keyword %q has kind named %q", spell, kind.String())
		}
	}
}
