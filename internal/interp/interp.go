// Package interp is the reference interpreter for MiniC and the ground-truth
// oracle of the reproduction.
//
// MiniC programs are deterministic and closed (no inputs), so the set of
// optimization markers that execute in one run is exactly the set of alive
// markers — everything else is dead (paper §4.1). Run executes main(),
// records every call to an external (bodyless) function, and returns the
// program's exit code plus a checksum of all integer-typed global state
// (Csmith-style). The checksum is compared against the independent IR-level
// executor to validate that every optimization pipeline preserves semantics.
//
// The interpreter implements the defined-everything semantics of MiniC
// (wrapping arithmetic, masked shifts, total division) via the single shared
// sema.EvalBinop, so that the front end, both executors, and the constant
// folders agree bit-for-bit.
package interp

import (
	"errors"
	"fmt"

	"dcelens/internal/ast"
	"dcelens/internal/sema"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// ErrFuel is returned when execution exceeds the configured step budget.
var ErrFuel = errors.New("interp: fuel exhausted")

// RuntimeError is an execution error (out-of-bounds access, null
// dereference, missing main, call-depth overflow).
type RuntimeError struct {
	Pos token.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg) }

// Result is the outcome of executing a program.
type Result struct {
	ExitCode int64
	Checksum uint64
	// ExternCalls maps each external function name to the number of times
	// it was called. Keys are the alive markers (plus any other opaque
	// externals the program calls).
	ExternCalls map[string]int
	Steps       int64
	// FinalGlobals holds the exit-time values of integer-typed global
	// scalars by name — the observations behind the value-check
	// instrumentation (paper §4.4 "Future directions": inserting
	// `if (v != C) DCECheck();` with recorded values).
	FinalGlobals map[string]int64
}

// Executed reports whether the external function name was called.
func (r *Result) Executed(name string) bool { return r.ExternCalls[name] > 0 }

// Options configures execution.
type Options struct {
	// Fuel bounds the number of interpreter steps; <= 0 means the default.
	Fuel int64
	// MaxCallDepth bounds recursion; <= 0 means the default.
	MaxCallDepth int
}

// DefaultFuel is the default step budget. Generated programs terminate well
// under this bound; the budget exists to reject pathological hand-written
// inputs deterministically.
const DefaultFuel = 50_000_000

// DefaultMaxCallDepth bounds the call stack.
const DefaultMaxCallDepth = 512

// Run executes prog's main function. prog must have been checked by sema.
func Run(prog *ast.Program, opts Options) (*Result, error) {
	if opts.Fuel <= 0 {
		opts.Fuel = DefaultFuel
	}
	if opts.MaxCallDepth <= 0 {
		opts.MaxCallDepth = DefaultMaxCallDepth
	}
	in := &interp{
		prog:     prog,
		fuel:     opts.Fuel,
		maxDepth: opts.MaxCallDepth,
		globals:  map[*ast.VarDecl]*Object{},
		statics:  map[*ast.VarDecl]*Object{},
		result:   &Result{ExternCalls: map[string]int{}},
	}
	if err := in.initGlobals(); err != nil {
		return nil, err
	}
	mainFn := prog.Main()
	if mainFn == nil || mainFn.Body == nil {
		return nil, &RuntimeError{Msg: "program has no main function"}
	}
	ret, err := in.callFunction(mainFn, nil)
	if err != nil {
		return nil, err
	}
	in.result.ExitCode = ret.Int
	in.result.Checksum = in.checksum()
	in.result.Steps = opts.Fuel - in.fuel
	in.result.FinalGlobals = map[string]int64{}
	for _, g := range prog.Globals() {
		o := in.globals[g]
		if o == nil || o.Elem.Kind == types.Pointer || len(o.Vals) != 1 {
			continue
		}
		in.result.FinalGlobals[g.Name] = o.Vals[0].Int
	}
	return in.result, nil
}

// Checksum computes the Csmith-style checksum over the integer-typed global
// slots of values. Exported so that the IR executor produces an identical
// hash for identical final state. Values are mixed in the order given.
func Checksum(values []int64) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for _, v := range values {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// ---------------------------------------------------------------------------
// Values and objects

// Object is a storage cell: a scalar variable (one slot) or an array
// (Len slots). Objects have deterministic creation IDs so pointer ordering
// is reproducible.
type Object struct {
	Decl *ast.VarDecl
	Elem *types.Type // element type (the variable type for scalars)
	Vals []Value
	ID   int64
	Dead bool // set when the owning frame is popped
}

// Value is a runtime value: an integer (canonical int64 for its type) or a
// pointer (object + element offset). The null pointer has IsPtr set and a
// nil Obj. MiniC's type system forbids pointer<->integer conversion, so a
// slot is always read at the kind it was written.
type Value struct {
	Int   int64
	Obj   *Object
	Off   int64
	IsPtr bool
}

func intV(v int64) Value              { return Value{Int: v} }
func ptrV(o *Object, off int64) Value { return Value{Obj: o, Off: off, IsPtr: true} }

// Equal reports value equality (pointer identity for pointers).
func (v Value) Equal(w Value) bool {
	if v.IsPtr != w.IsPtr {
		return false
	}
	if v.IsPtr {
		return v.Obj == w.Obj && v.Off == w.Off
	}
	return v.Int == w.Int
}

// Truthy reports whether v is nonzero / non-null.
func (v Value) Truthy() bool {
	if v.IsPtr {
		return v.Obj != nil
	}
	return v.Int != 0
}

// ---------------------------------------------------------------------------
// Interpreter state

type interp struct {
	prog     *ast.Program
	fuel     int64
	maxDepth int
	depth    int
	nextID   int64
	globals  map[*ast.VarDecl]*Object
	statics  map[*ast.VarDecl]*Object // static locals, persistent
	result   *Result
}

func (in *interp) newObject(d *ast.VarDecl) *Object {
	o := &Object{Decl: d, ID: in.nextID}
	in.nextID++
	if d.Typ.Kind == types.Array {
		o.Elem = d.Typ.Elem
		o.Vals = make([]Value, d.Typ.Len)
	} else {
		o.Elem = d.Typ
		o.Vals = make([]Value, 1)
	}
	// Pointer-typed slots start as null pointers, not integer zero.
	if o.Elem.Kind == types.Pointer {
		for i := range o.Vals {
			o.Vals[i] = Value{IsPtr: true}
		}
	}
	return o
}

func (in *interp) step() error {
	in.fuel--
	if in.fuel <= 0 {
		return ErrFuel
	}
	return nil
}

// ---------------------------------------------------------------------------
// Globals

func (in *interp) initGlobals() error {
	// Create all objects first so address-constant initializers can refer
	// to globals declared later in the file.
	for _, g := range in.prog.Globals() {
		if g.Storage == ast.StorageExtern {
			continue
		}
		in.globals[g] = in.newObject(g)
	}
	for _, g := range in.prog.Globals() {
		obj := in.globals[g]
		if obj == nil || g.Init == nil {
			continue
		}
		if err := in.initObject(obj, g.Init); err != nil {
			return err
		}
	}
	// Static locals are initialized before execution, like C. Creating them
	// eagerly (in the same deterministic order the lowering hoists them)
	// also makes them part of the checksum in a stable order.
	var err error
	for _, d := range in.staticLocalDecls() {
		o := in.newObject(d)
		if d.Init != nil {
			if e := in.initObject(o, d.Init); e != nil && err == nil {
				err = e
			}
		}
		in.statics[d] = o
	}
	return err
}

// staticLocalDecls returns all static local declarations in the order the
// lowering hoists them: per function in declaration order, depth first.
func (in *interp) staticLocalDecls() []*ast.VarDecl {
	var out []*ast.VarDecl
	for _, f := range in.prog.Funcs() {
		if f.Body == nil {
			continue
		}
		ast.Inspect(f.Body, func(n ast.Node) bool {
			if ds, ok := n.(*ast.DeclStmt); ok && ds.Decl.Storage == ast.StorageStatic {
				out = append(out, ds.Decl)
			}
			return true
		})
	}
	return out
}

// initObject evaluates a constant initializer into obj.
func (in *interp) initObject(obj *Object, init ast.Expr) error {
	if arr, ok := init.(*ast.ArrayInit); ok {
		for i, e := range arr.Elems {
			v, err := in.constValue(e)
			if err != nil {
				return err
			}
			obj.Vals[i] = v
		}
		return nil
	}
	v, err := in.constValue(init)
	if err != nil {
		return err
	}
	obj.Vals[0] = v
	return nil
}

// constValue evaluates a constant initializer expression: integer constant
// expressions, &global, &global[k], and decayed global arrays.
func (in *interp) constValue(e ast.Expr) (Value, error) {
	if v, ok := sema.ConstEval(e); ok {
		return intV(v), nil
	}
	switch e := e.(type) {
	case *ast.Cast:
		if e.To.Kind == types.Pointer {
			// array decay of a global
			if ref, ok := e.X.(*ast.VarRef); ok {
				if o := in.globals[ref.Obj]; o != nil {
					return ptrV(o, 0), nil
				}
			}
		}
		v, err := in.constValue(e.X)
		if err != nil {
			return Value{}, err
		}
		if v.IsPtr {
			return v, nil
		}
		return intV(e.To.WrapValue(v.Int)), nil
	case *ast.Unary:
		if e.Op == token.Amp {
			switch x := e.X.(type) {
			case *ast.VarRef:
				if o := in.globals[x.Obj]; o != nil {
					return ptrV(o, 0), nil
				}
			case *ast.Index:
				base, ok := x.Base.(*ast.VarRef)
				if !ok {
					break
				}
				o := in.globals[base.Obj]
				idx, okI := sema.ConstEval(x.Idx)
				if o != nil && okI {
					return ptrV(o, idx), nil
				}
			}
		}
	case *ast.VarRef:
		// decayed array without explicit cast
		if o := in.globals[e.Obj]; o != nil && e.Obj.Typ.Kind == types.Array {
			return ptrV(o, 0), nil
		}
	}
	return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "unsupported constant initializer"}
}

// checksum mixes the final value of every integer-typed global scalar and
// array element (including static locals, which have global storage), in
// declaration order. Pointer-typed globals are skipped (their bit patterns
// are representation-dependent), exactly as Csmith's checksum skips
// pointers. The order matches the lowered module's global order so that the
// IR executor computes the identical hash.
func (in *interp) checksum() uint64 {
	var vals []int64
	add := func(o *Object) {
		if o == nil || o.Elem.Kind == types.Pointer {
			return
		}
		for _, v := range o.Vals {
			vals = append(vals, v.Int)
		}
	}
	for _, g := range in.prog.Globals() {
		add(in.globals[g])
	}
	for _, d := range in.staticLocalDecls() {
		add(in.statics[d])
	}
	return Checksum(vals)
}
