package interp

import (
	"fmt"

	"dcelens/internal/ast"
	"dcelens/internal/sema"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// frame is one function activation.
type frame struct {
	locals map[*ast.VarDecl]*Object
}

// ctrl describes how a statement finished.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// callFunction executes fn with the given argument values. It returns the
// return value (zero Value for void or a fall-off-the-end return, which
// MiniC defines as 0).
func (in *interp) callFunction(fn *ast.FuncDecl, args []Value) (Value, error) {
	if fn.Body == nil {
		// Opaque external: record the call. Externals have no observable
		// effect on program state (they cannot name internal globals).
		in.result.ExternCalls[fn.Name]++
		if fn.Ret.Kind == types.Pointer {
			return Value{IsPtr: true}, nil
		}
		return intV(0), nil
	}
	in.depth++
	if in.depth > in.maxDepth {
		return Value{}, &RuntimeError{Pos: fn.Pos(), Msg: "call depth exceeded"}
	}
	defer func() { in.depth-- }()

	fr := &frame{locals: map[*ast.VarDecl]*Object{}}
	for i, p := range fn.Params {
		o := in.newObject(p)
		o.Vals[0] = args[i]
		fr.locals[p] = o
	}
	defer func() {
		for _, o := range fr.locals {
			o.Dead = true
		}
	}()
	c, v, err := in.stmt(fr, fn.Body)
	if err != nil {
		return Value{}, err
	}
	if c == ctrlReturn {
		return v, nil
	}
	if fn.Ret.Kind == types.Pointer {
		return Value{IsPtr: true}, nil
	}
	return intV(0), nil
}

// ---------------------------------------------------------------------------
// Statements

func (in *interp) stmt(fr *frame, s ast.Stmt) (ctrl, Value, error) {
	if err := in.step(); err != nil {
		return ctrlNone, Value{}, err
	}
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			c, v, err := in.stmt(fr, st)
			if err != nil || c != ctrlNone {
				return c, v, err
			}
		}
		return ctrlNone, Value{}, nil

	case *ast.DeclStmt:
		return ctrlNone, Value{}, in.declStmt(fr, s.Decl)

	case *ast.ExprStmt:
		_, err := in.expr(fr, s.X)
		return ctrlNone, Value{}, err

	case *ast.Empty:
		return ctrlNone, Value{}, nil

	case *ast.If:
		cond, err := in.expr(fr, s.Cond)
		if err != nil {
			return ctrlNone, Value{}, err
		}
		if cond.Truthy() {
			return in.stmt(fr, s.Then)
		}
		if s.Else != nil {
			return in.stmt(fr, s.Else)
		}
		return ctrlNone, Value{}, nil

	case *ast.While:
		for {
			cond, err := in.expr(fr, s.Cond)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if !cond.Truthy() {
				return ctrlNone, Value{}, nil
			}
			c, v, err := in.stmt(fr, s.Body)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn:
				return c, v, nil
			}
		}

	case *ast.DoWhile:
		for {
			c, v, err := in.stmt(fr, s.Body)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn:
				return c, v, nil
			}
			cond, err := in.expr(fr, s.Cond)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if !cond.Truthy() {
				return ctrlNone, Value{}, nil
			}
		}

	case *ast.For:
		if s.Init != nil {
			if c, v, err := in.stmt(fr, s.Init); err != nil || c != ctrlNone {
				return c, v, err
			}
		}
		for {
			if s.Cond != nil {
				cond, err := in.expr(fr, s.Cond)
				if err != nil {
					return ctrlNone, Value{}, err
				}
				if !cond.Truthy() {
					return ctrlNone, Value{}, nil
				}
			}
			c, v, err := in.stmt(fr, s.Body)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn:
				return c, v, nil
			}
			if s.Post != nil {
				if _, err := in.expr(fr, s.Post); err != nil {
					return ctrlNone, Value{}, err
				}
			}
		}

	case *ast.Return:
		if s.X == nil {
			return ctrlReturn, intV(0), nil
		}
		v, err := in.expr(fr, s.X)
		if err != nil {
			return ctrlNone, Value{}, err
		}
		return ctrlReturn, v, nil

	case *ast.Break:
		return ctrlBreak, Value{}, nil

	case *ast.Continue:
		return ctrlContinue, Value{}, nil

	case *ast.Switch:
		return in.switchStmt(fr, s)

	default:
		panic(fmt.Sprintf("interp: unknown stmt %T", s))
	}
}

func (in *interp) declStmt(fr *frame, d *ast.VarDecl) error {
	if d.Storage == ast.StorageStatic {
		// Static locals are initialized once, before execution, from a
		// constant initializer; lazy creation on first encounter is
		// equivalent because the initializer is constant.
		if _, ok := in.statics[d]; !ok {
			o := in.newObject(d)
			if d.Init != nil {
				if err := in.initObject(o, d.Init); err != nil {
					return err
				}
			}
			in.statics[d] = o
		}
		return nil
	}
	o := in.newObject(d)
	fr.locals[d] = o
	if d.Init == nil {
		return nil
	}
	if arr, ok := d.Init.(*ast.ArrayInit); ok {
		for i, e := range arr.Elems {
			v, err := in.expr(fr, e)
			if err != nil {
				return err
			}
			o.Vals[i] = v
		}
		return nil
	}
	v, err := in.expr(fr, d.Init)
	if err != nil {
		return err
	}
	o.Vals[0] = v
	return nil
}

func (in *interp) switchStmt(fr *frame, s *ast.Switch) (ctrl, Value, error) {
	tag, err := in.expr(fr, s.Tag)
	if err != nil {
		return ctrlNone, Value{}, err
	}
	// Find the matching case group (or default); then execute with C
	// fallthrough until break or the end of the switch.
	match := -1
	defaultIdx := -1
	for i, c := range s.Cases {
		if c.IsDefault {
			defaultIdx = i
		}
		for _, lbl := range c.Vals {
			lv, ok := sema.ConstEval(lbl)
			if !ok {
				return ctrlNone, Value{}, &RuntimeError{Pos: lbl.Pos(), Msg: "non-constant case label"}
			}
			if lv == tag.Int {
				match = i
			}
		}
		if match == i {
			break
		}
	}
	if match < 0 {
		match = defaultIdx
	}
	if match < 0 {
		return ctrlNone, Value{}, nil
	}
	for i := match; i < len(s.Cases); i++ {
		for _, st := range s.Cases[i].Body {
			c, v, err := in.stmt(fr, st)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn, ctrlContinue:
				return c, v, nil
			}
		}
	}
	return ctrlNone, Value{}, nil
}

// ---------------------------------------------------------------------------
// Expressions

// lvalue resolves an assignable expression to its storage location.
func (in *interp) lvalue(fr *frame, e ast.Expr) (*Object, int64, error) {
	switch e := e.(type) {
	case *ast.VarRef:
		o, err := in.object(fr, e)
		return o, 0, err
	case *ast.Index:
		return in.indexLoc(fr, e)
	case *ast.Unary:
		if e.Op != token.Star {
			break
		}
		p, err := in.expr(fr, e.X)
		if err != nil {
			return nil, 0, err
		}
		if !p.IsPtr || p.Obj == nil {
			return nil, 0, &RuntimeError{Pos: e.Pos(), Msg: "null pointer dereference"}
		}
		return p.Obj, p.Off, nil
	}
	return nil, 0, &RuntimeError{Pos: e.Pos(), Msg: "expression is not an lvalue"}
}

// object resolves a variable reference to its storage object.
func (in *interp) object(fr *frame, e *ast.VarRef) (*Object, error) {
	d := e.Obj
	if d == nil {
		return nil, &RuntimeError{Pos: e.Pos(), Msg: "unresolved reference (sema not run?)"}
	}
	if d.IsGlobal {
		if o := in.globals[d]; o != nil {
			return o, nil
		}
		return nil, &RuntimeError{Pos: e.Pos(), Msg: fmt.Sprintf("extern global %q has no storage", d.Name)}
	}
	if d.Storage == ast.StorageStatic {
		if o := in.statics[d]; o != nil {
			return o, nil
		}
		// First reference can precede the declaration statement only in
		// dead code; create it now (constant init).
		o := in.newObject(d)
		if d.Init != nil {
			if err := in.initObject(o, d.Init); err != nil {
				return nil, err
			}
		}
		in.statics[d] = o
		return o, nil
	}
	if o := fr.locals[d]; o != nil {
		return o, nil
	}
	// A local read before its declaration statement executes (possible in
	// MiniC only via jumps that skip declarations, which MiniC lacks, or in
	// dead code); define it as a fresh zero object.
	o := in.newObject(d)
	fr.locals[d] = o
	return o, nil
}

func (in *interp) indexLoc(fr *frame, e *ast.Index) (*Object, int64, error) {
	idxV, err := in.expr(fr, e.Idx)
	if err != nil {
		return nil, 0, err
	}
	bt := e.Base.Type()
	if bt.Kind == types.Array {
		ref, ok := e.Base.(*ast.VarRef)
		if !ok {
			return nil, 0, &RuntimeError{Pos: e.Pos(), Msg: "unsupported array base"}
		}
		o, err := in.object(fr, ref)
		if err != nil {
			return nil, 0, err
		}
		return o, idxV.Int, nil
	}
	p, err := in.expr(fr, e.Base)
	if err != nil {
		return nil, 0, err
	}
	if !p.IsPtr || p.Obj == nil {
		return nil, 0, &RuntimeError{Pos: e.Pos(), Msg: "indexing a null pointer"}
	}
	return p.Obj, p.Off + idxV.Int, nil
}

// load reads a slot with bounds and liveness checks.
func (in *interp) load(pos token.Pos, o *Object, off int64) (Value, error) {
	if o.Dead {
		return Value{}, &RuntimeError{Pos: pos, Msg: "use of dead object (dangling pointer)"}
	}
	if off < 0 || off >= int64(len(o.Vals)) {
		return Value{}, &RuntimeError{Pos: pos, Msg: fmt.Sprintf("out-of-bounds access at offset %d of %d", off, len(o.Vals))}
	}
	return o.Vals[off], nil
}

// store writes a slot with bounds and liveness checks.
func (in *interp) store(pos token.Pos, o *Object, off int64, v Value) error {
	if o.Dead {
		return &RuntimeError{Pos: pos, Msg: "store to dead object (dangling pointer)"}
	}
	if off < 0 || off >= int64(len(o.Vals)) {
		return &RuntimeError{Pos: pos, Msg: fmt.Sprintf("out-of-bounds store at offset %d of %d", off, len(o.Vals))}
	}
	o.Vals[off] = v
	return nil
}

func (in *interp) expr(fr *frame, e ast.Expr) (Value, error) {
	if err := in.step(); err != nil {
		return Value{}, err
	}
	switch e := e.(type) {
	case *ast.IntLit:
		return intV(e.Val), nil

	case *ast.VarRef:
		o, err := in.object(fr, e)
		if err != nil {
			return Value{}, err
		}
		if e.Obj.Typ.Kind == types.Array {
			// Bare array reference: only legal under a decaying Cast,
			// which handles it; seeing it here means decay context.
			return ptrV(o, 0), nil
		}
		return in.load(e.Pos(), o, 0)

	case *ast.Cast:
		if e.To.Kind == types.Pointer {
			// array-to-pointer decay
			inner := e.X.Type()
			if inner != nil && inner.Kind == types.Array {
				return in.expr(fr, e.X) // VarRef on array yields ptr
			}
			return in.expr(fr, e.X)
		}
		v, err := in.expr(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		return intV(e.To.WrapValue(v.Int)), nil

	case *ast.Unary:
		return in.unary(fr, e)

	case *ast.Binary:
		return in.binary(fr, e)

	case *ast.Assign:
		return in.assign(fr, e)

	case *ast.IncDec:
		return in.incDec(fr, e)

	case *ast.Cond:
		c, err := in.expr(fr, e.CondX)
		if err != nil {
			return Value{}, err
		}
		if c.Truthy() {
			return in.expr(fr, e.Then)
		}
		return in.expr(fr, e.Else)

	case *ast.Call:
		args := make([]Value, len(e.Args))
		for i, a := range e.Args {
			v, err := in.expr(fr, a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		if e.Fn == nil {
			return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "unresolved call (sema not run?)"}
		}
		return in.callFunction(e.Fn, args)

	case *ast.Index:
		o, off, err := in.indexLoc(fr, e)
		if err != nil {
			return Value{}, err
		}
		return in.load(e.Pos(), o, off)

	default:
		panic(fmt.Sprintf("interp: unknown expr %T", e))
	}
}

func (in *interp) unary(fr *frame, e *ast.Unary) (Value, error) {
	switch e.Op {
	case token.Amp:
		o, off, err := in.lvalueForAddr(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		return ptrV(o, off), nil
	case token.Star:
		p, err := in.expr(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		if !p.IsPtr || p.Obj == nil {
			return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "null pointer dereference"}
		}
		return in.load(e.Pos(), p.Obj, p.Off)
	}
	x, err := in.expr(fr, e.X)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case token.Minus:
		return intV(e.Typ.WrapValue(-x.Int)), nil
	case token.Tilde:
		return intV(e.Typ.WrapValue(^x.Int)), nil
	case token.Not:
		if x.Truthy() {
			return intV(0), nil
		}
		return intV(1), nil
	}
	panic(fmt.Sprintf("interp: unary %v", e.Op))
}

// lvalueForAddr is like lvalue but also accepts whole arrays (&arr).
func (in *interp) lvalueForAddr(fr *frame, e ast.Expr) (*Object, int64, error) {
	if ref, ok := e.(*ast.VarRef); ok {
		o, err := in.object(fr, ref)
		return o, 0, err
	}
	return in.lvalue(fr, e)
}

func (in *interp) binary(fr *frame, e *ast.Binary) (Value, error) {
	// Short-circuit operators evaluate the right side conditionally.
	if e.Op == token.AndAnd || e.Op == token.OrOr {
		x, err := in.expr(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		if e.Op == token.AndAnd && !x.Truthy() {
			return intV(0), nil
		}
		if e.Op == token.OrOr && x.Truthy() {
			return intV(1), nil
		}
		y, err := in.expr(fr, e.Y)
		if err != nil {
			return Value{}, err
		}
		if y.Truthy() {
			return intV(1), nil
		}
		return intV(0), nil
	}

	x, err := in.expr(fr, e.X)
	if err != nil {
		return Value{}, err
	}
	y, err := in.expr(fr, e.Y)
	if err != nil {
		return Value{}, err
	}

	// Pointer operations.
	if x.IsPtr || y.IsPtr {
		return in.pointerOp(e, x, y)
	}

	opTy := e.X.Type()
	v, ok := sema.EvalBinop(e.Op, x.Int, y.Int, opTy, e.Typ)
	if !ok {
		return Value{}, &RuntimeError{Pos: e.Pos(), Msg: fmt.Sprintf("unsupported operator %v", e.Op)}
	}
	return intV(v), nil
}

// pointerOp implements pointer comparison and pointer +- integer.
// Pointer ordering compares (object ID, offset), which is deterministic
// because object IDs are assigned in creation order.
func (in *interp) pointerOp(e *ast.Binary, x, y Value) (Value, error) {
	b := func(c bool) (Value, error) {
		if c {
			return intV(1), nil
		}
		return intV(0), nil
	}
	key := func(v Value) (int64, int64) {
		if v.Obj == nil {
			return -1, 0
		}
		return v.Obj.ID, v.Off
	}
	switch e.Op {
	case token.EqEq:
		return b(x.Equal(y))
	case token.NotEq:
		return b(!x.Equal(y))
	case token.Lt, token.Gt, token.Le, token.Ge:
		xi, xo := key(x)
		yi, yo := key(y)
		less := xi < yi || (xi == yi && xo < yo)
		eq := xi == yi && xo == yo
		switch e.Op {
		case token.Lt:
			return b(less)
		case token.Gt:
			return b(!less && !eq)
		case token.Le:
			return b(less || eq)
		case token.Ge:
			return b(!less)
		}
	case token.Plus:
		// sema normalized to ptr + int
		if !x.IsPtr {
			return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "malformed pointer addition"}
		}
		return ptrV(x.Obj, x.Off+y.Int), nil
	case token.Minus:
		if x.IsPtr && !y.IsPtr {
			return ptrV(x.Obj, x.Off-y.Int), nil
		}
	}
	return Value{}, &RuntimeError{Pos: e.Pos(), Msg: fmt.Sprintf("unsupported pointer operation %v", e.Op)}
}

func (in *interp) assign(fr *frame, e *ast.Assign) (Value, error) {
	obj, off, err := in.lvalue(fr, e.LHS)
	if err != nil {
		return Value{}, err
	}
	rhs, err := in.expr(fr, e.RHS)
	if err != nil {
		return Value{}, err
	}
	lt := e.LHS.Type()
	if e.Op == token.Assign {
		if err := in.store(e.Pos(), obj, off, rhs); err != nil {
			return Value{}, err
		}
		return rhs, nil
	}
	// Compound assignment: load, operate in the promoted type, store back.
	old, err := in.load(e.Pos(), obj, off)
	if err != nil {
		return Value{}, err
	}
	base := e.Op.BaseOf()
	var result Value
	switch {
	case lt.Kind == types.Pointer:
		// ptr += int / ptr -= int
		if old.Obj == nil {
			return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "arithmetic on null pointer"}
		}
		delta := rhs.Int
		if base == token.Minus {
			delta = -delta
		}
		result = ptrV(old.Obj, old.Off+delta)
	case base == token.Shl || base == token.Shr:
		opL := types.PromoteOne(lt)
		lv := opL.WrapValue(old.Int)
		v, _ := sema.EvalBinop(base, lv, rhs.Int, opL, opL)
		result = intV(lt.WrapValue(v))
	default:
		opT := types.Promote(lt, e.RHS.Type())
		lv := opT.WrapValue(old.Int)
		rv := opT.WrapValue(rhs.Int)
		v, ok := sema.EvalBinop(base, lv, rv, opT, opT)
		if !ok {
			return Value{}, &RuntimeError{Pos: e.Pos(), Msg: fmt.Sprintf("unsupported compound op %v", e.Op)}
		}
		result = intV(lt.WrapValue(v))
	}
	if err := in.store(e.Pos(), obj, off, result); err != nil {
		return Value{}, err
	}
	return result, nil
}

func (in *interp) incDec(fr *frame, e *ast.IncDec) (Value, error) {
	obj, off, err := in.lvalue(fr, e.X)
	if err != nil {
		return Value{}, err
	}
	old, err := in.load(e.Pos(), obj, off)
	if err != nil {
		return Value{}, err
	}
	t := e.X.Type()
	var next Value
	if t.Kind == types.Pointer {
		if old.Obj == nil {
			return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "arithmetic on null pointer"}
		}
		d := int64(1)
		if e.Op == token.MinusMinus {
			d = -1
		}
		next = ptrV(old.Obj, old.Off+d)
	} else {
		d := int64(1)
		if e.Op == token.MinusMinus {
			d = -1
		}
		next = intV(t.WrapValue(old.Int + d))
	}
	if err := in.store(e.Pos(), obj, off, next); err != nil {
		return Value{}, err
	}
	if e.Prefix {
		return next, nil
	}
	return old, nil
}
