package interp

import (
	"errors"
	"testing"

	"dcelens/internal/ast"
	"dcelens/internal/parser"
	"dcelens/internal/sema"
)

// run parses, checks, and executes src, failing the test on any error.
func run(t *testing.T, src string) *Result {
	t.Helper()
	prog := parse(t, src)
	res, err := Run(prog, Options{})
	if err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	return res
}

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatalf("sema: %v", err)
	}
	return prog
}

func expectExit(t *testing.T, src string, want int64) {
	t.Helper()
	res := run(t, src)
	if res.ExitCode != want {
		t.Errorf("exit code %d, want %d\nsource:\n%s", res.ExitCode, want, src)
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]int64{
		"return 2 + 3 * 4;":        14,
		"return (2 + 3) * 4;":      20,
		"return 7 / 2;":            3,
		"return -7 / 2;":           -3, // C truncating division
		"return 7 % 3;":            1,
		"return -7 % 3;":           -1,
		"return 7 / 0;":            0, // MiniC total division
		"return 7 % 0;":            7, // MiniC total remainder
		"return 1 << 5;":           32,
		"return 256 >> 4;":         16,
		"return -16 >> 2;":         -4, // arithmetic shift
		"return 1 << 33;":          2,  // masked shift: 33 & 31 == 1
		"return 5 & 3;":            1,
		"return 5 | 3;":            7,
		"return 5 ^ 3;":            6,
		"return ~0;":               -1,
		"return !5;":               0,
		"return !0;":               1,
		"return 3 < 4;":            1,
		"return 4 <= 4;":           1,
		"return 5 == 5 && 6 != 7;": 1,
		"return 0 || 2;":           1,
		"return 1 ? 10 : 20;":      10,
		"return 0 ? 10 : 20;":      20,
		"return -(-5);":            5,
	}
	for body, want := range cases {
		expectExit(t, "int main(void) { "+body+" }", want)
	}
}

func TestWrapping(t *testing.T) {
	cases := map[string]int64{
		// int overflow wraps
		"int a = 2147483647; a = a + 1; return a == (-2147483647 - 1);": 1,
		// char wraps at 8 bits
		"char c = 127; c = c + 1; return c;": -128,
		// unsigned comparison
		"unsigned u = 0; u = u - 1; return u > 100U;": 1,
		// unsigned division
		"unsigned u = 0; u = u - 1; return u / 2U == 2147483647U;": 1,
		// unsigned right shift is logical
		"unsigned u = 0; u = u - 1; return (u >> 31) == 1U;": 1,
		// mixed signed/unsigned comparison is unsigned (C semantics)
		"int a = -1; unsigned b = 1U; return a > b;": 1,
	}
	for body, want := range cases {
		expectExit(t, "int main(void) { "+body+" }", want)
	}
}

func TestControlFlow(t *testing.T) {
	expectExit(t, `
int main(void) {
  int s = 0;
  for (int i = 0; i < 10; i++) {
    if (i % 2 == 0) continue;
    s += i;
  }
  return s;
}`, 25)

	expectExit(t, `
int main(void) {
  int s = 0;
  int i = 0;
  while (1) {
    if (i >= 5) break;
    s += i;
    i++;
  }
  return s;
}`, 10)

	expectExit(t, `
int main(void) {
  int n = 0;
  do { n++; } while (n < 3);
  return n;
}`, 3)
}

func TestSwitch(t *testing.T) {
	src := `
int classify(int x) {
  int r = 0;
  switch (x) {
  case 0:
  case 1:
    r = 10;
    break;
  case 2:
    r = 20;
    // fallthrough
  case 3:
    r += 1;
    break;
  default:
    r = 99;
  }
  return r;
}
int main(void) {
  return classify(0) * 1000000 + classify(2) * 10000 + classify(3) * 100 + classify(7);
}`
	expectExit(t, src, 10*1000000+21*10000+1*100+99)
}

func TestFunctionsAndRecursion(t *testing.T) {
	expectExit(t, `
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(10); }`, 55)
}

func TestPointersAndArrays(t *testing.T) {
	expectExit(t, `
static int a[5] = {1, 2, 3, 4, 5};
int main(void) {
  int *p = &a[1];
  p[2] = 100;        // a[3] = 100
  *p = *p + 1;       // a[1] = 3
  int *q = p + 2;    // &a[3]
  return a[3] + a[1] + *q; // 100 + 3 + 100
}`, 203)

	expectExit(t, `
int main(void) {
  int x = 5;
  int *p = &x;
  *p = 7;
  return x;
}`, 7)

	expectExit(t, `
char a;
char b[2];
int main(void) {
  char *d = &a;
  char *e = &b[1];
  return d == e; // distinct objects never compare equal
}`, 0)
}

func TestGlobalInitializers(t *testing.T) {
	expectExit(t, `
static int a = 3 + 4;
static int b[3] = {10, 20};
static int *p = &a;
static int *q = &b[1];
int main(void) { return a + b[0] + b[1] + b[2] + *p + *q; }`, 7+10+20+0+7+20)
}

func TestStaticLocals(t *testing.T) {
	expectExit(t, `
int counter(void) {
  static int n = 100;
  n++;
  return n;
}
int main(void) {
  counter();
  counter();
  return counter();
}`, 103)
}

func TestIncDec(t *testing.T) {
	expectExit(t, `
int main(void) {
  int i = 5;
  int a = i++; // a=5 i=6
  int b = ++i; // b=7 i=7
  int c = i--; // c=7 i=6
  int d = --i; // d=5 i=5
  return a * 1000 + b * 100 + c * 10 + d + i;
}`, 5*1000+7*100+7*10+5+5)
}

func TestCompoundAssign(t *testing.T) {
	expectExit(t, `
int main(void) {
  int x = 10;
  x += 5;   // 15
  x -= 3;   // 12
  x *= 2;   // 24
  x /= 5;   // 4
  x %= 3;   // 1
  x <<= 4;  // 16
  x >>= 1;  // 8
  x |= 3;   // 11
  x &= 14;  // 10
  x ^= 6;   // 12
  return x;
}`, 12)

	// Compound assignment on a narrow type operates in int and wraps back.
	expectExit(t, `
int main(void) {
  char c = 100;
  c += 100; // 200 wraps to -56
  return c == -56;
}`, 1)
}

func TestExternCallsRecorded(t *testing.T) {
	res := run(t, `
void marker0(void);
void marker1(void);
static int c = 0;
int main(void) {
  if (c) {
    marker0(); // dead
  }
  marker1();
  marker1();
  return 0;
}`)
	if res.Executed("marker0") {
		t.Error("marker0 should be dead")
	}
	if res.ExternCalls["marker1"] != 2 {
		t.Errorf("marker1 called %d times, want 2", res.ExternCalls["marker1"])
	}
}

func TestChecksumReflectsGlobals(t *testing.T) {
	r1 := run(t, `static int g = 0; int main(void) { g = 1; return 0; }`)
	r2 := run(t, `static int g = 0; int main(void) { g = 2; return 0; }`)
	if r1.Checksum == r2.Checksum {
		t.Error("different final states should produce different checksums")
	}
	r3 := run(t, `static int g = 0; int main(void) { g = 1; return 0; }`)
	if r1.Checksum != r3.Checksum {
		t.Error("identical programs must produce identical checksums")
	}
}

func TestChecksumSkipsPointers(t *testing.T) {
	// Pointer-typed globals must not affect the checksum.
	r1 := run(t, `static int a; static int *p; int main(void) { p = &a; return 0; }`)
	r2 := run(t, `static int a; static int *p; int main(void) { return 0; }`)
	if r1.Checksum != r2.Checksum {
		t.Error("pointer-typed globals should be excluded from the checksum")
	}
}

func TestFuelExhaustion(t *testing.T) {
	prog := parse(t, `int main(void) { while (1) {} return 0; }`)
	_, err := Run(prog, Options{Fuel: 10_000})
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("want ErrFuel, got %v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		`static int a[3]; int main(void) { int *p = &a[0]; return p[5]; }`, // OOB read
		`static int a[3]; int main(void) { a[3] = 1; return 0; }`,          // OOB write
		`int main(void) { int *p; return *p; }`,                            // null deref
	}
	for _, src := range cases {
		prog := parse(t, src)
		if _, err := Run(prog, Options{}); err == nil {
			t.Errorf("expected runtime error for %q", src)
		}
	}
}

func TestCallDepthLimit(t *testing.T) {
	prog := parse(t, `
int f(int n) { return f(n + 1); }
int main(void) { return f(0); }`)
	_, err := Run(prog, Options{Fuel: 100_000_000})
	var rte *RuntimeError
	if !errors.As(err, &rte) {
		t.Fatalf("want RuntimeError, got %v", err)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	expectExit(t, `
static int calls = 0;
int bump(void) { calls++; return 1; }
int main(void) {
  int r = 0 && bump(); // bump not called
  r = 1 || bump();     // bump not called
  r = 1 && bump();     // called
  return calls;
}`, 1)
}

func TestPointerOrdering(t *testing.T) {
	expectExit(t, `
static int a[4];
int main(void) {
  int *p = &a[1];
  int *q = &a[3];
  return (p < q) + (q > p) + (p <= p) + (p >= q);
}`, 3)
}

func TestDeterminism(t *testing.T) {
	src := `
static int g[4] = {3, 1, 4, 1};
int main(void) {
  int s = 0;
  for (int i = 0; i < 4; i++) s = s * 31 + g[i];
  g[0] = s;
  return s & 255;
}`
	r1, r2 := run(t, src), run(t, src)
	if r1.ExitCode != r2.ExitCode || r1.Checksum != r2.Checksum || r1.Steps != r2.Steps {
		t.Error("execution must be deterministic")
	}
}

func TestUnsigned64Arithmetic(t *testing.T) {
	cases := map[string]int64{
		// u64 wraps at 2^64; comparisons are unsigned.
		"unsigned long u = 0UL; u = u - 1UL; return u > 1000UL;":                  1,
		"unsigned long u = 18446744073709551615UL; u = u + 1UL; return u == 0UL;": 1,
		"unsigned long u = 1UL << 63; return (u >> 63) == 1UL;":                   1,
		"unsigned long a = 10UL; unsigned long b = 3UL; return a % b == 1UL;":     1,
	}
	for body, want := range cases {
		expectExit(t, "int main(void) { "+body+" }", want)
	}
}

func TestPointerParameters(t *testing.T) {
	expectExit(t, `
static int g = 10;
static int h = 20;
static int sum(int *a, int *b) { return *a + *b; }
static void swap(int *a, int *b) {
  int t = *a;
  *a = *b;
  *b = t;
}
int main(void) {
  swap(&g, &h);
  return sum(&g, &h) + g; // 30 + 20
}`, 50)
}

func TestContinueInsideSwitchInsideLoop(t *testing.T) {
	// continue inside a switch must continue the enclosing loop.
	expectExit(t, `
int main(void) {
  int s = 0;
  for (int i = 0; i < 6; i++) {
    switch (i & 1) {
    case 1:
      continue;
    default:
      s += i;
    }
    s += 100;
  }
  return s; // even i: 0+2+4 plus 3*100
}`, 306)
}

func TestBreakInsideSwitchBreaksSwitchOnly(t *testing.T) {
	expectExit(t, `
int main(void) {
  int s = 0;
  for (int i = 0; i < 3; i++) {
    switch (i) {
    case 0:
      break; // leaves the switch, not the loop
    default:
      s += 10;
    }
    s += 1;
  }
  return s; // 3 iterations: +1 each, two defaults: +20
}`, 23)
}

func TestDoWhileRunsBodyFirst(t *testing.T) {
	expectExit(t, `
int main(void) {
  int n = 0;
  do { n = 42; } while (0);
  return n;
}`, 42)
}

func TestArrayOfPointers(t *testing.T) {
	expectExit(t, `
static int a = 1;
static int b = 2;
static int *arr[2];
int main(void) {
  arr[0] = &b;
  arr[1] = &a;
  *arr[0] = 5;
  return b * 10 + *arr[1]; // 50 + 1
}`, 51)
}
