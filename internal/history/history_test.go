package history

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"dcelens/internal/corpus"
	"dcelens/internal/metrics"
	"dcelens/internal/pipeline"
)

func finding() corpus.Finding {
	return corpus.Finding{
		Kind:        corpus.KindCompilerDiff,
		Seed:        42,
		Marker:      "m7",
		Personality: pipeline.GCC,
		Level:       pipeline.O3,
		Primary:     true,
		Context:     "preds[root=1 alive=0 dead-elim=2 dead-missed=0]",
	}
}

// TestFingerprintInvariance: the identity must survive exactly the
// transformations the longitudinal workflow applies — corpus renumbering
// (seed changes) and test-case reduction (marker renaming) — while any
// change to what was actually missed must produce a different fingerprint.
func TestFingerprintInvariance(t *testing.T) {
	base := Fingerprint(finding())
	if len(base) != 16 {
		t.Fatalf("fingerprint %q, want 16 hex digits", base)
	}

	renumbered := finding()
	renumbered.Seed = 9001
	renumbered.Marker = "m3"
	if got := Fingerprint(renumbered); got != base {
		t.Fatalf("fingerprint changed under seed/marker renaming: %q vs %q", got, base)
	}

	for name, mutate := range map[string]func(*corpus.Finding){
		"kind":        func(f *corpus.Finding) { f.Kind = corpus.KindLevelDiff },
		"personality": func(f *corpus.Finding) { f.Personality = pipeline.LLVM },
		"level":       func(f *corpus.Finding) { f.Level = pipeline.O2 },
		"primary":     func(f *corpus.Finding) { f.Primary = false },
		"context":     func(f *corpus.Finding) { f.Context = "preds[root=0 alive=1 dead-elim=2 dead-missed=0]" },
	} {
		f := finding()
		mutate(&f)
		if got := Fingerprint(f); got == base {
			t.Fatalf("fingerprint insensitive to %s", name)
		}
	}
}

// campaign fabricates a finished campaign shaped like a real run.
func campaign(findings ...corpus.Finding) *corpus.Campaign {
	c := &corpus.Campaign{
		Opts: corpus.Options{
			Programs:      3,
			BaseSeed:      100,
			Personalities: []pipeline.Personality{pipeline.GCC, pipeline.LLVM},
			Levels:        []pipeline.Level{pipeline.O1, pipeline.O3},
		},
		Stats: &corpus.Stats{
			TotalMarkers: 40,
			DeadMarkers:  20,
			Missed: map[corpus.ConfigKey]int{
				{Personality: pipeline.GCC, Level: pipeline.O3}: 2,
			},
			Crashes: 1,
		},
		Findings: findings,
	}
	return c
}

func TestSnapshotRoundTrip(t *testing.T) {
	f1, f2 := finding(), finding()
	f2.Seed = 55 // same fingerprint, second sighting
	f3 := finding()
	f3.Personality = pipeline.LLVM
	s := NewSnapshot("dce-test", campaign(f1, f2, f3), nil)

	if s.Schema != SchemaVersion {
		t.Fatalf("schema = %d", s.Schema)
	}
	if len(s.Findings) != 2 {
		t.Fatalf("records = %d, want 2 (two sightings collapse)", len(s.Findings))
	}
	var both *FindingRecord
	for i := range s.Findings {
		if s.Findings[i].Count == 2 {
			both = &s.Findings[i]
		}
	}
	if both == nil {
		t.Fatalf("no record with count 2: %+v", s.Findings)
	}
	if len(both.Seeds) != 2 || both.Seeds[0] != 42 || both.Seeds[1] != 55 {
		t.Fatalf("seed sample = %v, want [42 55]", both.Seeds)
	}
	if rate := s.Elimination["gcc-sim -O3"]; rate != 0.9 {
		t.Fatalf("elimination rate = %v, want 0.9 (2 missed of 20 dead)", rate)
	}
	if s.Failures["crash"] != 1 {
		t.Fatalf("failures = %v", s.Failures)
	}

	dir := t.TempDir()
	path, err := s.Write(dir)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !strings.HasPrefix(filepath.Base(path), "run-") {
		t.Fatalf("snapshot name %q not content-addressed", path)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a, _ := s.Marshal()
	b, _ := loaded.Marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed snapshot:\n%s\nvs\n%s", a, b)
	}
}

// TestSnapshotDeterministicOmitsWallClock: snapshots of deterministic
// registries must carry no wall-clock data so identical runs write
// byte-identical files.
func TestSnapshotDeterministicOmitsWallClock(t *testing.T) {
	reg := metrics.NewDeterministic()
	reg.Histogram("pass.gvn").Observe(1000)
	s := NewSnapshot("dce-test", campaign(), reg)
	if s.Time != "" || s.PassTotalNs != nil {
		t.Fatalf("deterministic snapshot has wall-clock data: time=%q pass=%v", s.Time, s.PassTotalNs)
	}
	a, _ := NewSnapshot("dce-test", campaign(), reg).Marshal()
	b, _ := s.Marshal()
	if !bytes.Equal(a, b) {
		t.Fatal("deterministic snapshots are not byte-identical")
	}

	wall := metrics.New()
	wall.Histogram("pass.gvn").Observe(1000)
	w := NewSnapshot("dce-test", campaign(), wall)
	if w.Time == "" || w.PassTotalNs["gvn"] != 1000 {
		t.Fatalf("wall snapshot missing wall-clock data: time=%q pass=%v", w.Time, w.PassTotalNs)
	}
}

func TestSnapshotWriteIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := NewSnapshot("dce-test", campaign(finding()), nil)
	p1, err := s.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("identical snapshots wrote two files: %s, %s", p1, p2)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "run-*.json"))
	if len(files) != 1 {
		t.Fatalf("dir has %d snapshots, want 1", len(files))
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	s := NewSnapshot("dce-test", campaign(), nil)
	s.Schema = SchemaVersion + 1
	path, err := s.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("Load accepted wrong schema (err %v)", err)
	}
}

func TestDiffClassification(t *testing.T) {
	persistent := finding()
	fixed := finding()
	fixed.Personality = pipeline.LLVM
	appeared := finding()
	appeared.Context = "preds[root=0 alive=3 dead-elim=0 dead-missed=1]"

	old := NewSnapshot("dce-test", campaign(persistent, fixed), nil)
	now := NewSnapshot("dce-test", campaign(persistent, persistent, appeared), nil)

	d := Diff(old, now, DiffOptions{})
	if len(d.New) != 1 || d.New[0].Record.Fingerprint != Fingerprint(appeared) {
		t.Fatalf("new = %+v", d.New)
	}
	if len(d.Fixed) != 1 || d.Fixed[0].Record.Fingerprint != Fingerprint(fixed) {
		t.Fatalf("fixed = %+v", d.Fixed)
	}
	if len(d.Persistent) != 1 {
		t.Fatalf("persistent = %+v", d.Persistent)
	}
	p := d.Persistent[0]
	if p.OldCount != 1 || p.NewCount != 2 {
		t.Fatalf("persistent counts = %d->%d, want 1->2", p.OldCount, p.NewCount)
	}
	if d.ConfigMismatch != "" {
		t.Fatalf("unexpected config mismatch %q", d.ConfigMismatch)
	}
}

func TestDiffRegressions(t *testing.T) {
	old := NewSnapshot("dce-test", campaign(), nil)
	now := NewSnapshot("dce-test", campaign(), nil)
	old.Elimination["gcc-sim -O3"] = 0.95
	now.Elimination["gcc-sim -O3"] = 0.90 // drop 0.05 > default 0.005
	old.Elimination["llvm-sim -O3"] = 0.95
	now.Elimination["llvm-sim -O3"] = 0.949 // within tolerance
	old.PassTotalNs = map[string]int64{"gvn": 1000, "licm": 1000}
	now.PassTotalNs = map[string]int64{"gvn": 2000, "licm": 1200} // gvn doubled

	d := Diff(old, now, DiffOptions{})
	if len(d.Regressions) != 2 {
		t.Fatalf("regressions = %+v, want elimination gcc + pass.gvn", d.Regressions)
	}
	if d.Regressions[0].Metric != "elimination gcc-sim -O3" {
		t.Fatalf("regression[0] = %+v", d.Regressions[0])
	}
	if d.Regressions[1].Metric != "pass.gvn total time" {
		t.Fatalf("regression[1] = %+v", d.Regressions[1])
	}

	// Custom thresholds silence both.
	quiet := Diff(old, now, DiffOptions{RateDrop: 0.1, TimeGrow: 2.0})
	if len(quiet.Regressions) != 0 {
		t.Fatalf("lenient thresholds still flag %+v", quiet.Regressions)
	}
}

func TestDiffConfigMismatch(t *testing.T) {
	a := NewSnapshot("dce-test", campaign(), nil)
	b := NewSnapshot("dce-test", campaign(), nil)
	b.Programs = 99
	d := Diff(a, b, DiffOptions{})
	if !strings.Contains(d.ConfigMismatch, "corpus size differs") {
		t.Fatalf("mismatch = %q", d.ConfigMismatch)
	}
}
