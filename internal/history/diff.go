package history

import (
	"fmt"
	"sort"
)

// DiffOptions tunes the regression thresholds.
type DiffOptions struct {
	// RateDrop is the elimination-rate decrease (absolute, per
	// configuration) flagged as a regression; <= 0 means 0.005 (half a
	// percentage point of the dead-marker set).
	RateDrop float64
	// TimeGrow is the fractional per-pass total-time increase flagged as a
	// regression; <= 0 means 0.5 (pass got 50% slower). Timing is compared
	// only when both snapshots carry wall-clock data, and the generous
	// default reflects how noisy wall time is.
	TimeGrow float64
}

func (o *DiffOptions) fill() {
	if o.RateDrop <= 0 {
		o.RateDrop = 0.005
	}
	if o.TimeGrow <= 0 {
		o.TimeGrow = 0.5
	}
}

// Change is one fingerprint's cross-run classification row.
type Change struct {
	// Record is the finding's aggregate record — from the new run when it
	// is present there (new, persistent), else from the old run (fixed).
	Record FindingRecord `json:"record"`
	// OldCount and NewCount are the sighting counts in each run (0 when
	// absent).
	OldCount int `json:"old_count"`
	NewCount int `json:"new_count"`
}

// Regression is one metric that moved the wrong way between runs.
type Regression struct {
	// Metric names what regressed: "elimination gcc-sim -O3" or
	// "pass.gvn total time".
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
}

// Delta is the classified difference between two runs.
type Delta struct {
	OldLabel, NewLabel string
	// New: fingerprints only in the new run — findings that appeared.
	// Fixed: only in the old run — the compiler stopped missing them.
	// Persistent: in both. Each list is sorted by fingerprint.
	New, Fixed, Persistent []Change
	// Regressions are the flagged metric movements, sorted by metric name.
	Regressions []Regression
	// ConfigMismatch warns when the two runs' campaign configurations
	// (programs, base seed, personalities, levels) differ — their finding
	// sets are still diffable, but absences may reflect coverage, not
	// fixes.
	ConfigMismatch string
}

// Diff classifies new against old: which fingerprinted findings appeared,
// disappeared, or persisted, and which metrics regressed.
func Diff(old, new *Snapshot, o DiffOptions) *Delta {
	o.fill()
	d := &Delta{ConfigMismatch: configMismatch(old, new)}

	oldBy := map[string]FindingRecord{}
	for _, r := range old.Findings {
		oldBy[r.Fingerprint] = r
	}
	seen := map[string]bool{}
	for _, r := range new.Findings {
		seen[r.Fingerprint] = true
		if prev, ok := oldBy[r.Fingerprint]; ok {
			d.Persistent = append(d.Persistent, Change{Record: r, OldCount: prev.Count, NewCount: r.Count})
		} else {
			d.New = append(d.New, Change{Record: r, NewCount: r.Count})
		}
	}
	for _, r := range old.Findings {
		if !seen[r.Fingerprint] {
			d.Fixed = append(d.Fixed, Change{Record: r, OldCount: r.Count})
		}
	}
	// Snapshot findings are fingerprint-sorted, so the classified lists
	// inherit the order; sort anyway to be robust to hand-edited files.
	for _, list := range [][]Change{d.New, d.Fixed, d.Persistent} {
		sort.Slice(list, func(i, j int) bool {
			return list[i].Record.Fingerprint < list[j].Record.Fingerprint
		})
	}

	for cfg, oldRate := range old.Elimination {
		newRate, ok := new.Elimination[cfg]
		if !ok {
			continue
		}
		if oldRate-newRate > o.RateDrop {
			d.Regressions = append(d.Regressions, Regression{
				Metric: "elimination " + cfg, Old: oldRate, New: newRate,
			})
		}
	}
	for pass, oldNs := range old.PassTotalNs {
		newNs, ok := new.PassTotalNs[pass]
		if !ok || oldNs <= 0 {
			continue
		}
		if float64(newNs) > float64(oldNs)*(1+o.TimeGrow) {
			d.Regressions = append(d.Regressions, Regression{
				Metric: "pass." + pass + " total time",
				Old:    float64(oldNs) / 1e6, New: float64(newNs) / 1e6, // ms
			})
		}
	}
	sort.Slice(d.Regressions, func(i, j int) bool {
		return d.Regressions[i].Metric < d.Regressions[j].Metric
	})
	return d
}

// configMismatch describes the first configuration difference between two
// runs, or "" when they are comparable.
func configMismatch(a, b *Snapshot) string {
	switch {
	case a.Programs != b.Programs:
		return fmt.Sprintf("corpus size differs (%d vs %d programs)", a.Programs, b.Programs)
	case a.BaseSeed != b.BaseSeed:
		return fmt.Sprintf("base seed differs (%d vs %d)", a.BaseSeed, b.BaseSeed)
	case fmt.Sprint(a.Personalities) != fmt.Sprint(b.Personalities):
		return fmt.Sprintf("personalities differ (%v vs %v)", a.Personalities, b.Personalities)
	case fmt.Sprint(a.Levels) != fmt.Sprint(b.Levels):
		return fmt.Sprintf("levels differ (%v vs %v)", a.Levels, b.Levels)
	}
	return ""
}
