// Package history is the longitudinal layer of the checker: where a single
// campaign answers "what does this compiler miss today", history answers
// "what changed since last time". The paper's campaigns ran continuously
// across compiler releases, watching findings appear, get fixed, and
// regress; this package gives dcelens the same trajectory view.
//
// Three pieces:
//
//   - Fingerprint: a stable identity for a finding, hashed from its kind,
//     the missing configuration, primariness, and the marker's structural
//     context — never the seed or the marker name — so renumbering the
//     corpus or reducing the program does not change the identity.
//   - Snapshot: the JSON record one campaign leaves behind (dce-campaign
//     -history dir): configuration, elimination rates, failure counts,
//     per-pass times, and the fingerprinted findings. Snapshots from
//     -metrics=deterministic runs contain no wall-clock data and are
//     byte-identical across identical runs.
//   - Diff (diff.go): classifies two snapshots' findings as new, fixed, or
//     persistent and flags metric regressions (dce-trend).
package history

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dcelens/internal/corpus"
	"dcelens/internal/metrics"
)

// SchemaVersion is the snapshot schema this package writes and reads.
const SchemaVersion = 1

// Fingerprint derives a finding's stable identity: the first 16 hex digits
// of the SHA-256 over (kind, personality, level, primary, context). Two
// findings with equal fingerprints are "the same missed optimization" for
// cross-run diffing; seeds and marker names are deliberately excluded
// (multiple concrete sightings of one fingerprint aggregate into a single
// FindingRecord with a count).
func Fingerprint(f corpus.Finding) string {
	id := strings.Join([]string{
		f.Kind.String(),
		string(f.Personality),
		f.Level.String(),
		fmt.Sprint(f.Primary),
		f.Context,
	}, "\x00")
	sum := sha256.Sum256([]byte(id))
	return hex.EncodeToString(sum[:])[:16]
}

// FindingRecord aggregates every sighting of one fingerprint in a run.
type FindingRecord struct {
	Fingerprint string `json:"fingerprint"`
	Kind        string `json:"kind"`
	Personality string `json:"personality"`
	Level       string `json:"level"`
	Primary     bool   `json:"primary,omitempty"`
	Context     string `json:"context,omitempty"`
	// Count is how many concrete (seed, marker) sightings collapsed into
	// this fingerprint.
	Count int `json:"count"`
	// Seeds samples the sighting seeds (sorted, deduplicated, capped) as a
	// reproduction aid; it is not part of the identity.
	Seeds []int64 `json:"seeds,omitempty"`
}

// seedSampleCap bounds the per-record seed sample.
const seedSampleCap = 8

// Snapshot is one campaign's persisted run record.
type Snapshot struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool,omitempty"`
	// Time is the run's RFC3339 end time; omitted for deterministic
	// registries so identical runs snapshot byte-identically.
	Time string `json:"time,omitempty"`

	// Campaign configuration (the comparability key: dce-trend warns when
	// diffing runs with different configurations).
	Programs      int      `json:"programs"`
	BaseSeed      int64    `json:"base_seed"`
	Personalities []string `json:"personalities"`
	Levels        []string `json:"levels"`

	// Shard marks a partial snapshot: this run covered only the "i/n"
	// corpus slice. Sharded snapshots are not directly comparable to whole
	// runs; MergeShards recombines a full set into one whole-corpus
	// snapshot (and dce-trend refuses ungrouped shard snapshots).
	Shard string `json:"shard,omitempty"`

	// Aggregate corpus statistics.
	TotalMarkers int `json:"total_markers"`
	DeadMarkers  int `json:"dead_markers"`

	// Elimination maps each configuration ("gcc-sim -O3") to the fraction
	// of dead markers it eliminated — the headline rate whose drop across
	// runs is a regression.
	Elimination map[string]float64 `json:"elimination_rate"`

	// Missed holds the integer missed-marker counts behind Elimination.
	// Rates do not merge losslessly across shards; these counts do, and
	// MergeShards recomputes the merged rates from them with the exact
	// division an unsharded run would have performed.
	Missed map[string]int `json:"missed,omitempty"`

	// Failures is the per-kind failure count (crash/timeout/...).
	Failures map[string]int `json:"failures,omitempty"`

	// PassTotalNs records each pass's total middle-end wall time; present
	// only for wall-clock registries (deterministic runs redact it).
	PassTotalNs map[string]int64 `json:"pass_total_ns,omitempty"`

	// Findings are the run's fingerprinted findings, sorted by
	// fingerprint.
	Findings []FindingRecord `json:"findings"`
}

// NewSnapshot condenses a finished campaign (plus its optional registry)
// into a snapshot. Wall-clock fields (Time, PassTotalNs) are included only
// when reg is a non-deterministic registry, so `-metrics=deterministic`
// campaigns produce byte-identical snapshots across identical runs.
func NewSnapshot(tool string, c *corpus.Campaign, reg *metrics.Registry) *Snapshot {
	s := &Snapshot{
		Schema:      SchemaVersion,
		Tool:        tool,
		Programs:    c.Opts.Programs,
		BaseSeed:    c.Opts.BaseSeed,
		Elimination: map[string]float64{},
		Failures:    map[string]int{},
	}
	for _, p := range c.Opts.Personalities {
		s.Personalities = append(s.Personalities, string(p))
	}
	for _, l := range c.Opts.Levels {
		s.Levels = append(s.Levels, l.String())
	}
	if c.Opts.Shard.Sharded() {
		s.Shard = c.Opts.Shard.String()
	}
	s.TotalMarkers = c.Stats.TotalMarkers
	s.DeadMarkers = c.Stats.DeadMarkers
	if c.Stats.DeadMarkers > 0 {
		for key, missed := range c.Stats.Missed {
			s.Elimination[key.String()] = 1 - float64(missed)/float64(c.Stats.DeadMarkers)
		}
	}
	if len(c.Stats.Missed) > 0 {
		s.Missed = map[string]int{}
		for key, missed := range c.Stats.Missed {
			s.Missed[key.String()] = missed
		}
	}
	for kind, n := range map[string]int{
		"crash": c.Stats.Crashes, "timeout": c.Stats.Timeouts,
		"miscompile": c.Stats.Miscompiles, "infeasible": c.Stats.Infeasible,
	} {
		if n > 0 {
			s.Failures[kind] = n
		}
	}
	if reg != nil && !reg.Deterministic {
		s.Time = time.Now().UTC().Format(time.RFC3339)
		for _, name := range reg.HistogramNames() {
			if pass, ok := strings.CutPrefix(name, "pass."); ok {
				if h := reg.Histogram(name); h.Count() > 0 {
					if s.PassTotalNs == nil {
						s.PassTotalNs = map[string]int64{}
					}
					s.PassTotalNs[pass] = int64(h.Sum())
				}
			}
		}
	}
	s.Findings = fingerprintFindings(c.Findings)
	return s
}

// fingerprintFindings aggregates concrete findings into fingerprint
// records, sorted by fingerprint for deterministic output.
func fingerprintFindings(fs []corpus.Finding) []FindingRecord {
	idx := map[string]int{}
	var out []FindingRecord
	for _, f := range fs {
		fp := Fingerprint(f)
		i, ok := idx[fp]
		if !ok {
			i = len(out)
			idx[fp] = i
			out = append(out, FindingRecord{
				Fingerprint: fp,
				Kind:        f.Kind.String(),
				Personality: string(f.Personality),
				Level:       f.Level.String(),
				Primary:     f.Primary,
				Context:     f.Context,
			})
		}
		out[i].Count++
		out[i].Seeds = append(out[i].Seeds, f.Seed)
	}
	for i := range out {
		seeds := out[i].Seeds
		sort.Slice(seeds, func(a, b int) bool { return seeds[a] < seeds[b] })
		dedup := seeds[:0]
		for _, s := range seeds {
			if len(dedup) == 0 || dedup[len(dedup)-1] != s {
				dedup = append(dedup, s)
			}
		}
		if len(dedup) > seedSampleCap {
			dedup = dedup[:seedSampleCap]
		}
		out[i].Seeds = dedup
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Fingerprint < out[b].Fingerprint })
	return out
}

// Marshal renders the snapshot's canonical JSON form (indented, trailing
// newline).
func (s *Snapshot) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Write persists the snapshot into dir (created if needed) under a
// content-addressed name, run-<hash>.json, and returns the full path.
// Content addressing makes deterministic snapshots idempotent: re-running
// an identical campaign rewrites the same file with the same bytes instead
// of accumulating duplicates.
func (s *Snapshot) Write(dir string) (string, error) {
	b, err := s.Marshal()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	path := filepath.Join(dir, "run-"+hex.EncodeToString(sum[:])[:12]+".json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads a snapshot file written by Write.
func Load(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("history: %s: %w", path, err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("history: %s: schema %d, want %d", path, s.Schema, SchemaVersion)
	}
	return &s, nil
}
