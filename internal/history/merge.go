package history

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"dcelens/internal/sched"
)

// MergeShards recombines the per-shard snapshots of one sharded campaign
// into the whole-corpus snapshot the unsharded run would have written. The
// set must be complete (every shard index exactly once, all with the same
// count) and configuration-consistent; marker counts, missed counts, and
// failure counts sum, elimination rates are recomputed from the summed
// integers with the exact division an unsharded run performs, and finding
// records merge by fingerprint. Deterministic shard snapshots therefore
// merge to bytes identical to the unsharded run's snapshot.
func MergeShards(snaps []*Snapshot) (*Snapshot, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("history: merge: no snapshots given")
	}
	shards := make([]sched.Shard, len(snaps))
	for i, s := range snaps {
		if s.Shard == "" {
			return nil, fmt.Errorf("history: merge: snapshot %d is not a shard snapshot", i)
		}
		sh, err := sched.ParseShard(s.Shard)
		if err != nil {
			return nil, fmt.Errorf("history: merge: snapshot %d: %w", i, err)
		}
		shards[i] = sh
		if s.Missed == nil && len(s.Elimination) > 0 {
			return nil, fmt.Errorf("history: merge: shard %s predates missed counts; re-run the shard", s.Shard)
		}
	}
	first := snaps[0]
	seen := map[int]int{}
	for i, s := range snaps {
		if shards[i].Count != shards[0].Count {
			return nil, fmt.Errorf("history: merge: shard %s does not tile with %s", s.Shard, first.Shard)
		}
		if prev, dup := seen[shards[i].Index]; dup {
			return nil, fmt.Errorf("history: merge: shard %s given twice (snapshots %d and %d)", s.Shard, prev, i)
		}
		seen[shards[i].Index] = i
		if s.Tool != first.Tool || s.Programs != first.Programs || s.BaseSeed != first.BaseSeed ||
			!reflect.DeepEqual(s.Personalities, first.Personalities) ||
			!reflect.DeepEqual(s.Levels, first.Levels) {
			return nil, fmt.Errorf("history: merge: shard %s is from a different campaign than %s", s.Shard, first.Shard)
		}
	}
	if len(seen) != shards[0].Count {
		var missing []string
		for i := 0; i < shards[0].Count; i++ {
			if _, ok := seen[i]; !ok {
				missing = append(missing, fmt.Sprintf("%d/%d", i, shards[0].Count))
			}
		}
		return nil, fmt.Errorf("history: merge: incomplete shard set: missing %s", strings.Join(missing, ", "))
	}

	m := &Snapshot{
		Schema:        SchemaVersion,
		Tool:          first.Tool,
		Programs:      first.Programs,
		BaseSeed:      first.BaseSeed,
		Personalities: first.Personalities,
		Levels:        first.Levels,
		Elimination:   map[string]float64{},
		Failures:      map[string]int{},
	}
	byFp := map[string]int{}
	for _, s := range snaps {
		m.TotalMarkers += s.TotalMarkers
		m.DeadMarkers += s.DeadMarkers
		for key, n := range s.Missed {
			if m.Missed == nil {
				m.Missed = map[string]int{}
			}
			m.Missed[key] += n
		}
		for kind, n := range s.Failures {
			m.Failures[kind] += n
		}
		if s.Time > m.Time {
			m.Time = s.Time // RFC3339 sorts chronologically; the run ended last
		}
		for pass, ns := range s.PassTotalNs {
			if m.PassTotalNs == nil {
				m.PassTotalNs = map[string]int64{}
			}
			m.PassTotalNs[pass] += ns
		}
		for _, fr := range s.Findings {
			i, ok := byFp[fr.Fingerprint]
			if !ok {
				i = len(m.Findings)
				byFp[fr.Fingerprint] = i
				rec := fr
				rec.Count = 0
				rec.Seeds = nil
				m.Findings = append(m.Findings, rec)
			}
			m.Findings[i].Count += fr.Count
			m.Findings[i].Seeds = append(m.Findings[i].Seeds, fr.Seeds...)
		}
	}
	if m.DeadMarkers > 0 {
		for key, missed := range m.Missed {
			m.Elimination[key] = 1 - float64(missed)/float64(m.DeadMarkers)
		}
	}
	if len(m.Failures) == 0 {
		m.Failures = map[string]int{}
	}
	for i := range m.Findings {
		seeds := m.Findings[i].Seeds
		sort.Slice(seeds, func(a, b int) bool { return seeds[a] < seeds[b] })
		dedup := seeds[:0]
		for _, s := range seeds {
			if len(dedup) == 0 || dedup[len(dedup)-1] != s {
				dedup = append(dedup, s)
			}
		}
		if len(dedup) > seedSampleCap {
			dedup = dedup[:seedSampleCap]
		}
		m.Findings[i].Seeds = dedup
	}
	sort.Slice(m.Findings, func(a, b int) bool {
		return m.Findings[a].Fingerprint < m.Findings[b].Fingerprint
	})
	return m, nil
}
