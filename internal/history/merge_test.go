package history

import (
	"bytes"
	"strings"
	"testing"

	"dcelens/internal/corpus"
	"dcelens/internal/sched"
)

// shardSnapshots runs one real campaign whole and as n shards, returning
// the whole-corpus snapshot and the per-shard snapshots (all from
// deterministic registries, so byte comparison is meaningful).
func shardSnapshots(t *testing.T, n int) (*Snapshot, []*Snapshot) {
	t.Helper()
	opts := corpus.Options{Programs: 5, BaseSeed: 700}
	full, err := corpus.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	whole := NewSnapshot("dce-campaign", full, nil)
	parts := make([]*Snapshot, n)
	for i := 0; i < n; i++ {
		so := opts
		so.Shard = sched.Shard{Index: i, Count: n}
		c, err := corpus.Run(so)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = NewSnapshot("dce-campaign", c, nil)
		if parts[i].Shard != so.Shard.String() {
			t.Fatalf("shard snapshot not marked: %q", parts[i].Shard)
		}
	}
	return whole, parts
}

// TestMergeShardsMatchesWholeRun: merging a complete shard set reproduces
// the unsharded snapshot byte for byte.
func TestMergeShardsMatchesWholeRun(t *testing.T) {
	whole, parts := shardSnapshots(t, 2)
	merged, err := MergeShards(parts)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := whole.Marshal()
	b, _ := merged.Marshal()
	if !bytes.Equal(a, b) {
		t.Errorf("merged snapshot differs from whole run:\n%s\nvs\n%s", a, b)
	}
}

// TestMergeShardsValidation: incomplete, duplicated, unsharded, and
// mismatched inputs are refused.
func TestMergeShardsValidation(t *testing.T) {
	whole, parts := shardSnapshots(t, 2)

	if _, err := MergeShards(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := MergeShards(parts[:1]); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Errorf("incomplete set: %v", err)
	}
	if _, err := MergeShards([]*Snapshot{parts[0], parts[0]}); err == nil ||
		!strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate shard: %v", err)
	}
	if _, err := MergeShards([]*Snapshot{parts[0], whole}); err == nil {
		t.Error("unsharded snapshot accepted in a shard set")
	}
	other := *parts[1]
	other.BaseSeed++
	if _, err := MergeShards([]*Snapshot{parts[0], &other}); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Errorf("mismatched campaign: %v", err)
	}
	legacy := *parts[1]
	legacy.Missed = nil
	if _, err := MergeShards([]*Snapshot{parts[0], &legacy}); err == nil ||
		!strings.Contains(err.Error(), "missed counts") {
		t.Errorf("legacy snapshot without missed counts: %v", err)
	}
}
