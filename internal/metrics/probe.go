package metrics

import (
	"strconv"
	"time"
)

// Scheduler occupancy counters, fed by the corpus layer's sched probe on
// wall-clock registries (deterministic registries skip them — occupancy is
// a pure wall-clock quantity). The monitor derives per-worker occupancy
// gauges for /progress and /metrics from the per-worker counters.
const (
	CounterSchedBusy = "sched.workers.busy_ns"
	CounterQueueWait = "sched.queue.wait_ns"
	CounterSeqStall  = "sched.seq.stall_ns"
)

// WorkerBusyCounter names worker w's cumulative busy-time counter.
func WorkerBusyCounter(w int) string {
	return "sched.worker." + strconv.Itoa(w) + ".busy_ns"
}

// PhaseProbe observes individual phase executions — where Registry.Time
// aggregates phases into histograms, a probe sees each execution's own
// start and duration, which is what the span timeline needs. A nil probe
// is free: Start skips the clock read and Observe is a no-op, so probed
// code paths cost one comparison when disabled.
type PhaseProbe func(phase string, start time.Time, d time.Duration)

// Start returns the phase's start time (the zero time for a nil probe).
func (p PhaseProbe) Start() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// Observe reports one phase execution that began at start.
func (p PhaseProbe) Observe(phase string, start time.Time) {
	if p == nil {
		return
	}
	p(phase, start, time.Since(start))
}
