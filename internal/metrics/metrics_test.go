package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	r.Counter("a").Inc()
	r.Counter("a").Add(2)
	if got := r.Counter("a").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	r.Gauge("g").Set(7)
	r.Gauge("g").Set(4)
	if got := r.Gauge("g").Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

// TestNilSafety exercises the central design rule: a nil registry and nil
// collectors absorb every operation without branching at call sites.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(time.Second)
	r.Time("lower")() // must not panic
	if r.Counter("x").Value() != 0 || r.Histogram("x").Count() != 0 {
		t.Error("nil registry retained state")
	}
	if r.CounterNames() != nil || r.HistogramNames() != nil || r.GaugeNames() != nil {
		t.Error("nil registry returned names")
	}
	var l *EventLog
	l.Emit("x", nil)
	if l.Seq() != 0 {
		t.Error("nil event log advanced")
	}
	if err := l.Close(); err != nil {
		t.Errorf("nil event log Close: %v", err)
	}
}

// TestHistogramZeroObservations: every statistic of an untouched histogram
// is zero — the edge case a pass that never ran hits.
func TestHistogramZeroObservations(t *testing.T) {
	h := New().Histogram("empty")
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram has non-zero summary stats")
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) = %v on empty histogram, want 0", q, got)
		}
	}
}

// TestHistogramSingleObservation: with one observation every quantile must
// land in its bucket (the upper bound covering it), and mean == sum == the
// observation.
func TestHistogramSingleObservation(t *testing.T) {
	h := New().Histogram("one")
	h.Observe(3 * time.Microsecond)
	if h.Count() != 1 || h.Sum() != 3*time.Microsecond || h.Mean() != 3*time.Microsecond {
		t.Errorf("count/sum/mean = %d/%v/%v", h.Count(), h.Sum(), h.Mean())
	}
	if h.Max() != 3*time.Microsecond {
		t.Errorf("max = %v, want 3µs", h.Max())
	}
	want := 4 * time.Microsecond // the 2^2 µs bucket covers 3µs
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

// TestHistogramOverflowBucket: observations beyond the top bound report the
// observed maximum from the overflow bucket — there is no finite bound to
// quote.
func TestHistogramOverflowBucket(t *testing.T) {
	h := New().Histogram("huge")
	h.Observe(30 * time.Second)
	h.Observe(90 * time.Second)
	if got := h.Quantile(0.99); got != 90*time.Second {
		t.Errorf("overflow p99 = %v, want the observed max 90s", got)
	}
	if got := h.Max(); got != 90*time.Second {
		t.Errorf("max = %v, want 90s", got)
	}
}

// TestHistogramNegativeClamped: a negative duration (clock weirdness) must
// not corrupt the histogram.
func TestHistogramNegativeClamped(t *testing.T) {
	h := New().Histogram("neg")
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Errorf("count/sum = %d/%v, want 1/0", h.Count(), h.Sum())
	}
}

// TestHistogramQuantileMonotone: quantiles are monotone in q and bounded by
// the bucket structure.
func TestHistogramQuantileMonotone(t *testing.T) {
	h := New().Histogram("m")
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
	if p50 := h.P50(); p50 < 256*time.Microsecond || p50 > 1024*time.Microsecond {
		t.Errorf("p50 = %v, want a bucket bound near 500µs", p50)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := New()
	for _, n := range []string{"z", "a", "m"} {
		r.Counter(n)
	}
	if got := strings.Join(r.CounterNames(), ","); got != "a,m,z" {
		t.Errorf("CounterNames = %q, want sorted", got)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

// TestEventLogJSONLAndSeq: every line is valid JSON, sequence numbers are
// monotonically increasing from 1, and reserved keys win over caller fields.
func TestEventLogJSONLAndSeq(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Emit("campaign_begin", map[string]any{"programs": 3})
	l.Emit("seed_begin", map[string]any{"seed": 1, "seq": 999}) // reserved key ignored
	l.Emit("campaign_end", nil)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if l.Seq() != 3 {
		t.Errorf("Seq = %d, want 3", l.Seq())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v", i+1, err)
		}
		if got := int64(obj["seq"].(float64)); got != int64(i+1) {
			t.Errorf("line %d seq = %d, want %d", i+1, got, i+1)
		}
		if _, ok := obj["event"].(string); !ok {
			t.Errorf("line %d has no event field", i+1)
		}
	}
	var second map[string]any
	_ = json.Unmarshal([]byte(lines[1]), &second)
	if second["seq"].(float64) != 2 {
		t.Error("caller-supplied seq overrode the log's")
	}
	if second["seed"].(float64) != 1 {
		t.Error("caller field lost")
	}
}

// failWriter fails after n writes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

// TestEventLogSurfacesWriteError: a broken stream is reported at Close, not
// silently truncated.
func TestEventLogSurfacesWriteError(t *testing.T) {
	l := NewEventLog(&failWriter{n: 1})
	l.Emit("a", nil)
	l.Emit("b", nil) // fails
	l.Emit("c", nil) // dropped after the error
	if err := l.Close(); err == nil {
		t.Fatal("Close returned nil after a write error")
	}
}

// TestHeartbeatLine renders a line from counters without a terminal.
func TestHeartbeatLine(t *testing.T) {
	r := New()
	r.Counter(CounterSeedsAnalyzed).Add(5)
	r.Counter(CounterCrashes).Add(2)
	h := &Heartbeat{Reg: r, Total: 10, Tool: "t"}
	line := h.line(time.Now().Add(-time.Second))
	for _, want := range []string{"t:", "5/10 seeds", "2 crashes", "ETA"} {
		if !strings.Contains(line, want) {
			t.Errorf("heartbeat line %q missing %q", line, want)
		}
	}
}

// TestHeartbeatLinePerf: once units flow, the line carries live units/s and
// the middle-end pass skip rate; before any pass has run the skip figure is
// omitted rather than rendered as a bogus 0%.
func TestHeartbeatLinePerf(t *testing.T) {
	r := New()
	r.Counter(CounterSeedsAnalyzed).Add(5)
	r.Counter(CounterUnits).Add(40)
	h := &Heartbeat{Reg: r, Total: 10, Tool: "t"}
	line := h.line(time.Now().Add(-2 * time.Second))
	if !strings.Contains(line, "units/s") {
		t.Errorf("heartbeat line %q missing units/s", line)
	}
	if strings.Contains(line, "skipped") {
		t.Errorf("heartbeat line %q shows a skip rate with no pass data", line)
	}

	r.Counter(CounterPassVisited).Add(25)
	r.Counter(CounterPassSkipped).Add(75)
	line = h.line(time.Now().Add(-2 * time.Second))
	if !strings.Contains(line, "75% skipped") {
		t.Errorf("heartbeat line %q missing skip rate", line)
	}
}

// TestPassSkipRate covers the zero-denominator and nil-registry guards.
func TestPassSkipRate(t *testing.T) {
	if _, ok := PassSkipRate(nil); ok {
		t.Error("nil registry reported a known skip rate")
	}
	r := New()
	if _, ok := PassSkipRate(r); ok {
		t.Error("empty registry reported a known skip rate")
	}
	r.Counter(CounterPassVisited).Add(3)
	r.Counter(CounterPassSkipped).Add(1)
	if rate, ok := PassSkipRate(r); !ok || rate != 0.25 {
		t.Errorf("skip rate = %g (known=%v), want 0.25", rate, ok)
	}
}

// TestHeartbeatStartStop: Start/stop emits at least the final line and the
// goroutine exits.
func TestHeartbeatStartStop(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.Counter(CounterSeedsAnalyzed).Add(3)
	h := &Heartbeat{Reg: r, Total: 3, Out: &buf, Interval: time.Hour, Tool: "t"}
	stop := h.Start()
	stop()
	if !strings.Contains(buf.String(), "3/3 seeds") {
		t.Errorf("final heartbeat line missing: %q", buf.String())
	}
	if !strings.Contains(buf.String(), "ETA done") {
		t.Errorf("completed campaign should render ETA done: %q", buf.String())
	}
}
