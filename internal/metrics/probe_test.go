package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestOpenEventLogConcurrentAppendAndTail: a resumed log whose file ends in
// a torn line keeps its sequence contract under concurrent writers and tail
// readers — every line lands exactly once, seq stays gapless past the torn
// record, and a second resume continues from the true final seq.
func TestOpenEventLogConcurrentAppendAndTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := OpenEventLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit("seed_begin", map[string]any{"seed": 1})
	l.Emit("seed_end", map[string]any{"seed": 1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-write: a torn, unparseable trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"seq":3,"event":"seed_beg`)
	f.Close()

	l, err = OpenEventLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Seq(); got != 2 {
		t.Fatalf("resumed seq = %d, want 2 (torn line skipped)", got)
	}
	l.KeepTail(64)

	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Emit("unit_end", map[string]any{"writer": w, "i": i})
			}
		}(w)
	}
	// Tail readers race the writers; every read must be internally
	// consistent: strictly increasing seqs, none beyond the head.
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var last int64
				for _, e := range l.TailSince(2) {
					if e.Seq <= last {
						t.Errorf("tail out of order: %d after %d", e.Seq, last)
						return
					}
					last = e.Seq
				}
				if head := l.Seq(); last > head {
					t.Errorf("tail seq %d beyond head %d", last, head)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	want := int64(2 + writers*perWriter)
	if got := l.Seq(); got != want {
		t.Fatalf("final seq = %d, want %d", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The torn line is now mid-file; a fresh resume still finds the true
	// final seq by parsing records, not positions.
	l2, err := OpenEventLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Seq(); got != want {
		t.Fatalf("re-resumed seq = %d, want %d", got, want)
	}
	// Every emitted line (minus the torn one) parses, with seqs 1..want
	// present exactly once.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]int{}
	for _, line := range splitLines(data) {
		var rec struct {
			Seq int64 `json:"seq"`
		}
		if json.Unmarshal(line, &rec) == nil && rec.Seq > 0 {
			seen[rec.Seq]++
		}
	}
	for s := int64(1); s <= want; s++ {
		if seen[s] != 1 {
			t.Fatalf("seq %d appears %d times, want exactly once", s, seen[s])
		}
	}
}

func splitLines(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			if i > start {
				out = append(out, b[start:i])
			}
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, b[start:])
	}
	return out
}

// TestAbsorbOccupancyCounters: the scheduler probe's occupancy counters
// (total and per-worker busy, queue wait, sequencer stall) merge across
// shard snapshots like any other counter — the merged registry reads as if
// one process had observed both shards' scheduling.
func TestAbsorbOccupancyCounters(t *testing.T) {
	a, b := New(), New()
	a.Counter(CounterSchedBusy).Add(1000)
	a.Counter(CounterQueueWait).Add(50)
	a.Counter(WorkerBusyCounter(0)).Add(600)
	a.Counter(WorkerBusyCounter(1)).Add(400)
	b.Counter(CounterSchedBusy).Add(2000)
	b.Counter(CounterSeqStall).Add(75)
	b.Counter(WorkerBusyCounter(0)).Add(2000)

	merged := New()
	merged.Absorb(a.Snapshot())
	merged.Absorb(b.Snapshot())

	for name, want := range map[string]int64{
		CounterSchedBusy:     3000,
		CounterQueueWait:     50,
		CounterSeqStall:      75,
		WorkerBusyCounter(0): 2600,
		WorkerBusyCounter(1): 400,
	} {
		if got := merged.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestPhaseProbe: the nil probe records nothing and costs no clock reads
// (Start returns the zero time); a live probe sees the phase name and a
// non-negative duration.
func TestPhaseProbe(t *testing.T) {
	var p PhaseProbe
	if !p.Start().IsZero() {
		t.Error("nil probe Start must return the zero time")
	}
	p.Observe("opt", p.Start()) // must not panic

	var gotPhase string
	var gotDur time.Duration
	p = func(phase string, _ time.Time, d time.Duration) {
		gotPhase, gotDur = phase, d
	}
	p.Observe("lower", p.Start())
	if gotPhase != "lower" || gotDur < 0 {
		t.Errorf("probe observed (%q, %v)", gotPhase, gotDur)
	}
}
