package metrics

import "math"

// Absorb folds an exported snapshot into this registry: counters add,
// gauges keep the larger value (they record campaign-wide peaks), and
// histograms merge count, sum, max, and per-bucket totals. It is how a
// merge tool combines the per-shard metrics of a sharded campaign into one
// table: counts and bucket totals are additive across shards, and with
// both registries in deterministic mode the merged table renders exactly
// as an unsharded run's would.
//
// Quantiles are recomputed from the merged buckets, not averaged — the
// merged histogram is indistinguishable from one that observed both
// shards' durations directly.
func (r *Registry) Absorb(s *RegistrySnapshot) {
	if r == nil || s == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		if g := r.Gauge(name); v > g.Value() {
			g.Set(v)
		}
	}
	for name, hs := range s.Histograms {
		r.Histogram(name).absorb(hs)
	}
}

// absorb merges one exported histogram into h. Snapshot buckets carry their
// exact upper bounds (every registry shares the fixed bucketBounds), so
// each maps back onto its own bucket; the overflow bucket travels as
// math.MaxInt64.
func (h *Histogram) absorb(s HistogramSnapshot) {
	if h == nil {
		return
	}
	h.count.Add(s.Count)
	h.sum.Add(s.SumNs)
	for {
		cur := h.max.Load()
		if s.MaxNs <= cur || h.max.CompareAndSwap(cur, s.MaxNs) {
			break
		}
	}
	for _, b := range s.Buckets {
		i := len(bucketBounds)
		if b.LeNs != math.MaxInt64 {
			i = bucketIndex(b.LeNs)
		}
		h.buckets[i].Add(b.Count)
	}
}
