package metrics

import (
	"fmt"
	"io"
	"os"
	"time"
)

// Campaign counter names the heartbeat (and the corpus layer feeding it)
// agree on. internal/corpus increments these; anything watching a live
// campaign reads them.
const (
	CounterSeedsAnalyzed = "campaign.seeds.analyzed"
	CounterSeedsRestored = "campaign.seeds.restored"
	CounterUnits         = "campaign.units"
	CounterCrashes       = "campaign.failures.crash"
	CounterTimeouts      = "campaign.failures.timeout"
	CounterMiscompiles   = "campaign.failures.miscompile"
	CounterInfeasible    = "campaign.failures.infeasible"
)

// Middle-end dirty-tracking counters. The metrics pass observer adds every
// pass instance's visited/skipped function counts here; their ratio is the
// campaign-wide pass skip rate surfaced by the heartbeat and /progress.
const (
	CounterPassVisited = "opt.funcs.visited"
	CounterPassSkipped = "opt.funcs.skipped"
)

// HistCampaignSeed is the per-seed wall-time histogram internal/corpus
// observes; the live ETA estimate (harness.Progress) is derived from its
// mean.
const HistCampaignSeed = "campaign.seed"

// ProgressInfo is the live campaign view shared by the heartbeat and the
// monitor's /progress endpoint (implemented by harness.Progress). Routing
// both displays through one implementation keeps the terminal and HTTP
// views agreeing on the finding count and the ETA estimate.
type ProgressInfo interface {
	// FindingCount is the number of findings discovered so far.
	FindingCount() int
	// ETA estimates the remaining campaign wall time; ok is false while
	// there is no basis for an estimate yet.
	ETA() (eta time.Duration, ok bool)
}

// Heartbeat periodically renders a one-line progress summary of a running
// campaign from its registry counters: seeds done/total, throughput,
// failure counts, and an ETA. It is purely an operator aid — nothing in the
// deterministic report depends on it — and it degrades to silence when the
// output is not an interactive terminal (see StderrIsTerminal) or the
// campaign opts out with -quiet.
type Heartbeat struct {
	// Reg is the campaign registry the progress counters live in.
	Reg *Registry
	// Total is the campaign's seed count (the denominator and ETA basis).
	Total int
	// Out receives the progress lines (typically os.Stderr).
	Out io.Writer
	// Interval is the render period; <= 0 means 2s.
	Interval time.Duration
	// Tool prefixes each line, e.g. "dce-campaign".
	Tool string
	// Progress, when set, enriches the line with the live finding count
	// and replaces the rate-extrapolated ETA with Progress.ETA() — the
	// same estimate the monitor's /progress endpoint serves.
	Progress ProgressInfo
}

// Start launches the heartbeat goroutine and returns a stop function that
// renders one final line and waits for the goroutine to exit. A nil
// receiver, nil registry, or nil output yields a no-op stop.
func (h *Heartbeat) Start() func() {
	if h == nil || h.Reg == nil || h.Out == nil {
		return nop
	}
	interval := h.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	start := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fmt.Fprintln(h.Out, h.line(start))
			case <-done:
				fmt.Fprintln(h.Out, h.line(start))
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// line renders one progress summary.
func (h *Heartbeat) line(start time.Time) string {
	seeds := h.Reg.Counter(CounterSeedsAnalyzed).Value() + h.Reg.Counter(CounterSeedsRestored).Value()
	crashes := h.Reg.Counter(CounterCrashes).Value()
	timeouts := h.Reg.Counter(CounterTimeouts).Value()
	elapsed := time.Since(start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(seeds) / elapsed
	}
	eta := "?"
	switch {
	case h.Total > 0 && int(seeds) >= h.Total:
		eta = "done"
	case h.Progress != nil:
		if d, ok := h.Progress.ETA(); ok {
			eta = d.Round(time.Second).String()
		}
	case rate > 0 && h.Total > 0:
		d := time.Duration(float64(h.Total-int(seeds)) / rate * float64(time.Second))
		eta = d.Round(time.Second).String()
	}
	findings := ""
	if h.Progress != nil {
		findings = fmt.Sprintf("%d findings, ", h.Progress.FindingCount())
	}
	perf := ""
	if units := h.Reg.Counter(CounterUnits).Value(); units > 0 && elapsed > 0 {
		perf = fmt.Sprintf(", %.1f units/s", float64(units)/elapsed)
		if skip, ok := PassSkipRate(h.Reg); ok {
			perf += fmt.Sprintf(", %.0f%% skipped", skip*100)
		}
	}
	return fmt.Sprintf("%s: %d/%d seeds, %.1f seeds/s, %s%d crashes, %d timeouts%s, ETA %s",
		h.Tool, seeds, h.Total, rate, findings, crashes, timeouts, perf, eta)
}

// PassSkipRate computes the campaign-wide middle-end skip rate: the fraction
// of (function, pass-instance) visits the dirty-tracking pass manager proved
// clean and skipped. ok is false before any pass has run (or with no
// registry), so displays can omit the figure rather than print a bogus zero.
func PassSkipRate(reg *Registry) (rate float64, ok bool) {
	if reg == nil {
		return 0, false
	}
	visited := reg.Counter(CounterPassVisited).Value()
	skipped := reg.Counter(CounterPassSkipped).Value()
	if total := visited + skipped; total > 0 {
		return float64(skipped) / float64(total), true
	}
	return 0, false
}

// StderrIsTerminal reports whether stderr is attached to an interactive
// terminal (a character device). Redirected or piped campaigns — including
// the test harness — are detected here and the heartbeat stays silent, so
// log files never fill with progress chatter.
func StderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
