package metrics

import "math"

// BucketCount is one non-empty histogram bucket in a snapshot. LeNs is the
// bucket's inclusive upper bound in nanoseconds; the overflow bucket reports
// math.MaxInt64 (rendered as +Inf by the Prometheus exposition).
type BucketCount struct {
	LeNs  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram's point-in-time summary: totals, the
// rendered quantiles, and the cumulative non-empty buckets.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	SumNs   int64         `json:"sum_ns"`
	MaxNs   int64         `json:"max_ns"`
	P50Ns   int64         `json:"p50_ns"`
	P90Ns   int64         `json:"p90_ns"`
	P99Ns   int64         `json:"p99_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// RegistrySnapshot is a registry's full point-in-time export: every named
// counter, gauge, and histogram, keyed by name. It is the JSON body of the
// monitor's /metrics endpoint and the source the Prometheus text exposition
// is rendered from. Values read while writers are active are approximate in
// the same way Histogram reads are; identity (which names exist) is exact.
type RegistrySnapshot struct {
	Deterministic bool                         `json:"deterministic,omitempty"`
	Counters      map[string]int64             `json:"counters,omitempty"`
	Gauges        map[string]int64             `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports the registry's current state. A nil registry exports an
// empty (but non-nil) snapshot, so callers can serve it unconditionally.
func (r *Registry) Snapshot() *RegistrySnapshot {
	s := &RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.Deterministic = r.Deterministic
	for _, name := range r.CounterNames() {
		s.Counters[name] = r.Counter(name).Value()
	}
	for _, name := range r.GaugeNames() {
		s.Gauges[name] = r.Gauge(name).Value()
	}
	for _, name := range r.HistogramNames() {
		s.Histograms[name] = r.Histogram(name).snapshot()
	}
	return s
}

// snapshot summarizes one histogram; only non-empty buckets are exported
// (cumulative counts are reconstructed by the exposition renderer).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		SumNs: int64(h.Sum()),
		MaxNs: int64(h.Max()),
		P50Ns: int64(h.P50()),
		P90Ns: int64(h.P90()),
		P99Ns: int64(h.P99()),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(math.MaxInt64)
		if i < len(bucketBounds) {
			le = bucketBounds[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{LeNs: le, Count: n})
	}
	return s
}
