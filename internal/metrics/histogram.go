package metrics

import (
	"sync/atomic"
	"time"
)

// bucketBounds are the fixed upper bounds of the duration histogram, in
// nanoseconds: powers of two from 1µs up to ~8.6s, plus an implicit
// overflow bucket. Fixed boundaries (rather than per-run adaptive ones)
// keep the rendered report's structure a pure function of the campaign
// configuration: two runs differ only in per-bucket counts, never in which
// rows or columns exist — which is what lets the deterministic rendering
// mode redact values instead of whole tables.
var bucketBounds = func() []int64 {
	var b []int64
	for ns := int64(time.Microsecond); ns <= int64(8*time.Second); ns *= 2 {
		b = append(b, ns)
	}
	return b
}()

// numBuckets includes the overflow bucket for observations beyond the top
// bound.
var numBuckets = len(bucketBounds) + 1

// Histogram is a fixed-bucket duration histogram. All updates are atomic;
// a nil Histogram ignores observations. Reads taken while writers are
// active are approximate (count, sum, and buckets are loaded independently)
// — campaigns render after the run completes, where the view is exact.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets []atomic.Int64
}

func newHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Int64, numBuckets)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketIndex(ns)].Add(1)
}

// bucketIndex locates the first bucket whose upper bound holds ns; values
// beyond the top bound land in the overflow bucket.
func bucketIndex(ns int64) int {
	lo, hi := 0, len(bucketBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= bucketBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(bucketBounds) for overflow
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration (0 for nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Max returns the largest observation (0 for nil or empty).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) from the fixed buckets:
// the upper bound of the bucket holding the q·count-th observation. An
// estimate from the overflow bucket reports the observed maximum (there is
// no finite upper bound to quote). Zero observations estimate 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == len(bucketBounds) {
				return h.Max()
			}
			return time.Duration(bucketBounds[i])
		}
	}
	return h.Max()
}

// P50, P90, and P99 are the summary quantiles the reports render.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }
func (h *Histogram) P90() time.Duration { return h.Quantile(0.90) }
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }
