// Package metrics is the campaign-wide telemetry substrate: a
// dependency-free, low-overhead registry of counters, gauges, and
// fixed-bucket duration histograms, plus the collectors built on it (the
// per-pass pipeline observer, the JSONL event log, and the live progress
// heartbeat).
//
// internal/trace answers "which pass eliminated this marker" (provenance);
// this package answers "where does the time go and what is the campaign
// doing right now" (performance). The two share the same opt.Observer seam,
// so a campaign can run with either, both, or neither attached.
//
// Design rules:
//
//   - Every collector method is nil-safe: a nil *Registry hands out nil
//     collectors whose methods are no-ops, so instrumented code paths read
//     identically whether telemetry is on or off, and uninstrumented runs
//     pay only a nil check.
//   - Histograms use fixed exponential bucket boundaries (histogram.go), so
//     a rendered report's *structure* is a pure function of the campaign
//     configuration; Deterministic registries additionally redact the
//     wall-clock-derived values when rendered (internal/report), making two
//     identical runs byte-identical.
//   - Everything is safe for concurrent use; hot-path updates are atomic.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Standard phase names (the histogram "phase.<name>" family). The frontend
// phases (lex, parse, sema) run only on paths that start from MiniC source;
// generated campaigns enter at lower.
const (
	PhaseLex        = "lex"
	PhaseParse      = "parse"
	PhaseSema       = "sema"
	PhaseGenerate   = "generate"
	PhaseInstrument = "instrument"
	PhaseTruth      = "truth"
	PhaseLower      = "lower"
	PhaseOpt        = "opt"
	PhaseCodegen    = "codegen"
)

// Counter is a monotonically-increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value-wins gauge. A nil Gauge ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds a campaign's named collectors. Collectors are created on
// first use and shared by name; lookups are guarded by a RWMutex, so hot
// paths should hold on to the returned collector rather than re-looking it
// up per observation (PassObserver caches per pass name).
type Registry struct {
	// Deterministic marks the registry for redacted rendering: reports
	// derived from it print counts and identities but replace every
	// wall-clock-derived value (durations, percentiles, time shares) with a
	// placeholder, making the rendering byte-identical across runs.
	Deterministic bool

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// NewDeterministic returns a registry whose renderings redact wall-clock
// values (the -metrics=deterministic mode).
func NewDeterministic() *Registry {
	r := New()
	r.Deterministic = true
	return r
}

// Counter returns the named counter, creating it on first use. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first use.
// Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Time starts a phase timer: it observes the elapsed wall time into the
// "phase.<name>" histogram when the returned stop function runs. Nil-safe;
// the nil path costs one comparison and returns a shared no-op.
//
//	defer reg.Time(metrics.PhaseLower)()
func (r *Registry) Time(phase string) func() {
	if r == nil {
		return nop
	}
	h := r.Histogram("phase." + phase)
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

var nop = func() {}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedNames(r.counters)
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedNames(r.histograms)
}

// GaugeNames returns the registered gauge names, sorted.
func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedNames(r.gauges)
}

func sortedNames[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
