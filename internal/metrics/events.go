package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventLog is a structured JSONL event stream: one JSON object per line,
// with a monotonic sequence number assigned under the log's lock, so the
// file totally orders the campaign's events even when workers emit
// concurrently. Timestamps are milliseconds since the log was opened
// (relative, so two logs of the same campaign differ only in timing fields,
// never in identity fields).
//
// Event vocabulary (the "event" field): campaign_begin, seed_begin,
// seed_end, unit_begin, unit_end, failure, checkpoint, campaign_end. A nil
// *EventLog discards all emissions, so callers thread it unconditionally.
type EventLog struct {
	mu    sync.Mutex
	w     io.Writer
	c     io.Closer
	start time.Time
	seq   int64
	err   error
}

// NewEventLog writes events to w; if w is also an io.Closer, Close closes
// it.
func NewEventLog(w io.Writer) *EventLog {
	l := &EventLog{w: w, start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// Emit appends one event. The line carries seq, t_ms, and event first in
// key-sorted JSON (encoding/json sorts map keys), then the caller's fields.
// Reserved keys in fields are ignored. Nil-safe.
func (l *EventLog) Emit(event string, fields map[string]any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.seq++
	obj := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		obj[k] = v
	}
	obj["seq"] = l.seq
	obj["t_ms"] = time.Since(l.start).Milliseconds()
	obj["event"] = event
	b, err := json.Marshal(obj)
	if err != nil {
		l.err = fmt.Errorf("metrics: event %s: %w", event, err)
		return
	}
	_, l.err = l.w.Write(append(b, '\n'))
}

// Seq returns the sequence number of the last emitted event (0 before the
// first).
func (l *EventLog) Seq() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Close closes the underlying writer when it is closable and returns the
// first write error the log swallowed, so campaigns can surface a broken
// event stream at exit instead of silently truncating it. Nil-safe.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.c != nil {
		if cerr := l.c.Close(); l.err == nil {
			l.err = cerr
		}
		l.c = nil
	}
	return l.err
}
