package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// EventLog is a structured JSONL event stream: one JSON object per line,
// with a monotonic sequence number assigned under the log's lock, so the
// file totally orders the campaign's events even when workers emit
// concurrently. Timestamps are milliseconds since the log was opened
// (relative, so two logs of the same campaign differ only in timing fields,
// never in identity fields).
//
// Event vocabulary (the "event" field): campaign_begin, seed_begin,
// seed_end, unit_begin, unit_end, failure, checkpoint, campaign_end. A nil
// *EventLog discards all emissions, so callers thread it unconditionally.
type EventLog struct {
	mu    sync.Mutex
	w     io.Writer
	c     io.Closer
	start time.Time
	seq   int64
	err   error

	// tail is the optional in-memory ring of recent events (KeepTail): the
	// monitor's /events endpoint serves resumable reads from it without
	// re-reading the backing file. tailHead indexes the oldest entry.
	tail     []Event
	tailLen  int
	tailHead int
}

// Event is one rendered event line held in the in-memory tail: its sequence
// number and the JSON text (no trailing newline).
type Event struct {
	Seq  int64
	Line string
}

// NewEventLog writes events to w; if w is also an io.Closer, Close closes
// it.
func NewEventLog(w io.Writer) *EventLog {
	l := &EventLog{w: w, start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// Emit appends one event. The line carries seq, t_ms, and event first in
// key-sorted JSON (encoding/json sorts map keys), then the caller's fields.
// Reserved keys in fields are ignored. Nil-safe.
func (l *EventLog) Emit(event string, fields map[string]any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.seq++
	obj := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		obj[k] = v
	}
	obj["seq"] = l.seq
	obj["t_ms"] = time.Since(l.start).Milliseconds()
	obj["event"] = event
	b, err := json.Marshal(obj)
	if err != nil {
		l.err = fmt.Errorf("metrics: event %s: %w", event, err)
		return
	}
	if len(l.tail) > 0 {
		i := (l.tailHead + l.tailLen) % len(l.tail)
		l.tail[i] = Event{Seq: l.seq, Line: string(b)}
		if l.tailLen < len(l.tail) {
			l.tailLen++
		} else {
			l.tailHead = (l.tailHead + 1) % len(l.tail)
		}
	}
	_, l.err = l.w.Write(append(b, '\n'))
}

// KeepTail enables the in-memory event tail with capacity n (the newest n
// events are retained); n <= 0 disables it. Call before emitting. Nil-safe.
func (l *EventLog) KeepTail(n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 {
		l.tail, l.tailLen, l.tailHead = nil, 0, 0
		return
	}
	l.tail = make([]Event, n)
	l.tailLen, l.tailHead = 0, 0
}

// TailSince returns the buffered events with sequence numbers strictly
// greater than since, oldest first. Events older than the tail's capacity
// are gone; callers detect the gap when the first returned seq exceeds
// since+1. Nil-safe (and empty without KeepTail).
func (l *EventLog) TailSince(since int64) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for i := 0; i < l.tailLen; i++ {
		e := l.tail[(l.tailHead+i)%len(l.tail)]
		if e.Seq > since {
			out = append(out, e)
		}
	}
	return out
}

// Seq returns the sequence number of the last emitted event (0 before the
// first).
func (l *EventLog) Seq() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// OpenEventLog opens a file-backed event log. With resume false the file is
// truncated and sequence numbers start at 1, as NewEventLog(os.Create(...))
// would. With resume true an existing file is appended to and the sequence
// continues from its last record, so a resumed campaign's log reads as one
// continuous, totally-ordered stream (t_ms stays relative to each process's
// own start; seq is the cross-resume key). A missing file resumes from 0.
func OpenEventLog(path string, resume bool) (*EventLog, error) {
	if !resume {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		return NewEventLog(f), nil
	}
	last, err := lastSeq(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// A killed campaign can leave a torn final line with no newline; seal it
	// so the first resumed event starts a fresh line instead of being glued
	// to (and corrupted by) the torn fragment.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, st.Size()-1); err == nil && buf[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	l := NewEventLog(f)
	l.seq = last
	return l, nil
}

// lastSeq scans a JSONL event file for the final record's sequence number;
// a missing file is seq 0 (nothing to continue from). Malformed trailing
// lines (a torn write from a killed campaign) are skipped backwards until a
// parseable record is found.
func lastSeq(path string) (int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("metrics: scanning event log %s: %w", path, err)
	}
	for i := len(lines) - 1; i >= 0; i-- {
		var rec struct {
			Seq int64 `json:"seq"`
		}
		if json.Unmarshal([]byte(lines[i]), &rec) == nil && rec.Seq > 0 {
			return rec.Seq, nil
		}
	}
	return 0, nil
}

// Close closes the underlying writer when it is closable and returns the
// first write error the log swallowed, so campaigns can surface a broken
// event stream at exit instead of silently truncating it. Nil-safe.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.c != nil {
		if cerr := l.c.Close(); l.err == nil {
			l.err = cerr
		}
		l.c = nil
	}
	return l.err
}
