package metrics

import (
	"encoding/json"
	"testing"
	"time"
)

// TestAbsorbMergesShards: a registry that absorbs two shard snapshots is
// indistinguishable from one that observed everything itself.
func TestAbsorbMergesShards(t *testing.T) {
	whole := New()
	a, b := New(), New()
	for i, d := range []time.Duration{
		3 * time.Microsecond, 90 * time.Millisecond, 2 * time.Second,
		15 * time.Second,                            // overflow bucket
		700 * time.Nanosecond, 1 * time.Microsecond, // exact bound
	} {
		half := a
		if i%2 == 1 {
			half = b
		}
		half.Histogram("campaign.seed").Observe(d)
		whole.Histogram("campaign.seed").Observe(d)
		half.Counter("campaign.units").Add(int64(i))
		whole.Counter("campaign.units").Add(int64(i))
	}
	a.Gauge("rss.peak").Set(70)
	b.Gauge("rss.peak").Set(90)
	whole.Gauge("rss.peak").Set(90)

	merged := New()
	merged.Absorb(a.Snapshot())
	merged.Absorb(b.Snapshot())

	got, _ := json.Marshal(merged.Snapshot())
	want, _ := json.Marshal(whole.Snapshot())
	if string(got) != string(want) {
		t.Errorf("merged snapshot differs:\n%s\nvs\n%s", got, want)
	}
	h := merged.Histogram("campaign.seed")
	if h.Count() != 6 || h.Max() != 15*time.Second {
		t.Errorf("merged histogram count=%d max=%v", h.Count(), h.Max())
	}
	if h.P50() != whole.Histogram("campaign.seed").P50() {
		t.Error("merged quantile differs from direct observation")
	}
}

// TestAbsorbNilSafe: nil receivers and nil snapshots are no-ops.
func TestAbsorbNilSafe(t *testing.T) {
	var r *Registry
	r.Absorb(New().Snapshot())
	New().Absorb(nil)
}
