package metrics

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRegistrySnapshot(t *testing.T) {
	reg := New()
	reg.Counter("campaign.seeds.analyzed").Add(5)
	reg.Gauge("campaign.workers").Set(8)
	h := reg.Histogram("pass.gvn")
	h.Observe(1 * time.Millisecond)
	h.Observe(1 * time.Hour) // overflow bucket

	s := reg.Snapshot()
	if s.Counters["campaign.seeds.analyzed"] != 5 {
		t.Fatalf("counter = %d", s.Counters["campaign.seeds.analyzed"])
	}
	if s.Gauges["campaign.workers"] != 8 {
		t.Fatalf("gauge = %d", s.Gauges["campaign.workers"])
	}
	hs := s.Histograms["pass.gvn"]
	if hs.Count != 2 || hs.SumNs <= 0 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	var total int64
	sawOverflow := false
	for _, b := range hs.Buckets {
		total += b.Count
		if b.LeNs == math.MaxInt64 {
			sawOverflow = true
		}
	}
	if total != 2 || !sawOverflow {
		t.Fatalf("buckets = %+v, want 2 observations incl. overflow", hs.Buckets)
	}
}

// TestRegistrySnapshotNil: a nil registry snapshots to empty non-nil maps
// so the monitor can marshal it unconditionally.
func TestRegistrySnapshotNil(t *testing.T) {
	var reg *Registry
	s := reg.Snapshot()
	if s == nil || s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestEventTailRing(t *testing.T) {
	l := NewEventLog(io.Discard)
	l.KeepTail(3)
	for i := 1; i <= 5; i++ {
		l.Emit("seed_end", map[string]any{"seed": i})
	}
	// Capacity 3: seqs 1-2 were evicted.
	tail := l.TailSince(0)
	if len(tail) != 3 || tail[0].Seq != 3 || tail[2].Seq != 5 {
		t.Fatalf("tail = %+v, want seqs 3..5", tail)
	}
	if got := l.TailSince(4); len(got) != 1 || got[0].Seq != 5 {
		t.Fatalf("TailSince(4) = %+v", got)
	}
	if got := l.TailSince(5); got != nil {
		t.Fatalf("caught-up TailSince = %+v", got)
	}
	for _, e := range tail {
		if !strings.Contains(e.Line, `"event":"seed_end"`) {
			t.Fatalf("tail line %q missing event field", e.Line)
		}
	}
}

func TestEventTailDisabled(t *testing.T) {
	l := NewEventLog(io.Discard)
	l.Emit("x", nil)
	if got := l.TailSince(0); got != nil {
		t.Fatalf("tail without KeepTail = %+v", got)
	}
	l.KeepTail(2)
	l.Emit("y", nil)
	l.KeepTail(0) // disable again
	if got := l.TailSince(0); got != nil {
		t.Fatalf("tail after disable = %+v", got)
	}

	var nilLog *EventLog
	nilLog.KeepTail(4)
	if got := nilLog.TailSince(0); got != nil {
		t.Fatalf("nil log tail = %+v", got)
	}
}

// TestOpenEventLogResumeSeq is the regression test for the resume
// continuity fix: a campaign resumed with -resume -events must append to
// the existing file and continue the monotonic sequence from its last
// record instead of restarting at 1.
func TestOpenEventLogResumeSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")

	l1, err := OpenEventLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l1.Emit("campaign_begin", nil)
	l1.Emit("seed_end", map[string]any{"seed": 1})
	l1.Emit("seed_end", map[string]any{"seed": 2})
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenEventLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 3 {
		t.Fatalf("resumed log starts at seq %d, want 3 (continuing the file)", l2.Seq())
	}
	l2.Emit("seed_end", map[string]any{"seed": 3})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 4 {
		t.Fatalf("resumed file has %d lines, want 4 (append, not truncate)", len(lines))
	}
	for i, line := range lines {
		want := `"seq":` + string(rune('1'+i))
		if !strings.Contains(line, want) {
			t.Fatalf("line %d = %q, want %s (monotonic across resume)", i, line, want)
		}
	}
}

// TestOpenEventLogResumeTornLine: a torn trailing write (killed campaign)
// must not break sequence recovery.
func TestOpenEventLogResumeTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	content := `{"event":"seed_end","seq":1,"t_ms":0}` + "\n" +
		`{"event":"seed_end","seq":2,"t_ms":1}` + "\n" +
		`{"event":"seed_end","se` // torn
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenEventLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Seq() != 2 {
		t.Fatalf("seq after torn line = %d, want 2", l.Seq())
	}
}

// TestOpenEventLogResumeMissingFile: resuming without a prior event file
// starts a fresh stream at seq 1.
func TestOpenEventLogResumeMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := OpenEventLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit("campaign_begin", nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if !strings.Contains(string(b), `"seq":1`) {
		t.Fatalf("fresh resume file = %q, want seq 1", b)
	}
}

// fakeProgress stubs ProgressInfo for heartbeat-enrichment tests.
type fakeProgress struct {
	findings int
	eta      time.Duration
	known    bool
}

func (f fakeProgress) FindingCount() int          { return f.findings }
func (f fakeProgress) ETA() (time.Duration, bool) { return f.eta, f.known }

// TestHeartbeatLineWithProgress: wiring a Progress view enriches the line
// with the live finding count and the shared ETA estimate (the same one the
// monitor's /progress endpoint serves).
func TestHeartbeatLineWithProgress(t *testing.T) {
	reg := New()
	reg.Counter(CounterSeedsAnalyzed).Add(5)
	h := &Heartbeat{
		Reg: reg, Total: 10, Tool: "dce-test",
		Progress: fakeProgress{findings: 7, eta: 90 * time.Second, known: true},
	}
	line := h.line(time.Now().Add(-10 * time.Second))
	if !strings.Contains(line, "7 findings") {
		t.Fatalf("line %q missing finding count", line)
	}
	if !strings.Contains(line, "ETA 1m30s") {
		t.Fatalf("line %q missing progress ETA", line)
	}

	// Before the first fresh seed there is no estimate basis: ETA ?.
	h.Progress = fakeProgress{}
	if line := h.line(time.Now()); !strings.Contains(line, "ETA ?") {
		t.Fatalf("line %q, want unknown ETA", line)
	}
}

func TestOpenEventLogTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := os.WriteFile(path, []byte(`{"seq":9}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenEventLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit("campaign_begin", nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if strings.Contains(string(b), `"seq":9`) || !strings.Contains(string(b), `"seq":1`) {
		t.Fatalf("non-resume open did not truncate: %q", b)
	}
}
