package opt

import (
	"dcelens/internal/ir"
)

// DSE is block-local dead store elimination: a store is deleted when a
// later store certainly overwrites the same location before anything can
// read it. Reads include loads that may alias, calls to internal functions
// (no mod/ref summaries), calls to external functions for escaping
// storage, and the end of the block (the store may be observed later, e.g.
// by the whole-program checksum, so stores live at block exit are kept).
var DSE = Pass{Name: "dse", Pre: ComputeEscapesOpt, Fn: dseFunc}

func dseFunc(f *ir.Func, o Options) bool {
	ac := NewAliasCtx(f, o.Alias)
	changed := false
	for _, b := range f.Blocks {
		if dseBlock(b, ac) {
			changed = true
		}
	}
	return changed
}

func dseBlock(b *ir.Block, ac *AliasCtx) bool {
	type pending struct {
		loc   Loc
		store *ir.Instr
	}
	var pend []pending
	dead := map[*ir.Instr]bool{}
	drop := func(filter func(Loc) bool) {
		kept := pend[:0]
		for _, p := range pend {
			if !filter(p.loc) {
				kept = append(kept, p)
			}
		}
		pend = kept
	}
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpStore:
			loc := ResolveLoc(in.Args[0])
			for i, p := range pend {
				if MustAlias(p.loc, loc) {
					dead[p.store] = true
					pend = append(pend[:i], pend[i+1:]...)
					break
				}
			}
			// A store whose location may alias another pending location
			// does not kill it (it might write elsewhere), but the pending
			// store can no longer be proven dead by a later overwrite of
			// the *other* location — keeping both is sound because we only
			// delete on MustAlias.
			pend = append(pend, pending{loc, in})
		case ir.OpLoad:
			loc := ResolveLoc(in.Args[0])
			drop(func(l Loc) bool { return ac.MayAlias(l, loc) })
		case ir.OpCall:
			if in.Callee != nil && in.Callee.External {
				drop(func(l Loc) bool {
					switch {
					case l.G != nil:
						return l.G.Escapes
					case l.A != nil:
						return ac.isExposed(l.A)
					default:
						return true
					}
				})
			} else {
				pend = pend[:0]
			}
		}
	}
	if len(dead) == 0 {
		return false
	}
	var keep []*ir.Instr
	for _, in := range b.Instrs {
		if !dead[in] {
			keep = append(keep, in)
		}
	}
	b.Instrs = keep
	return true
}
