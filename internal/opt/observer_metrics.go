package opt

import (
	"dcelens/internal/ir"
	"dcelens/internal/metrics"
)

// metricsObserver aggregates per-pass timing and changed-rates into a
// metrics registry while observing a pipeline run — the performance dual of
// trace.Recorder's provenance. Per pass name it feeds two collectors:
//
//	pass.<name>          duration histogram (one observation per instance)
//	pass.<name>.changed  counter of instances that reported a change
//
// Unlike trace.Recorder it performs no IR scan — its per-pass cost is one
// cached map lookup plus an atomic histogram update, which is what keeps
// the fully-instrumented campaign path inside the overhead budget
// (BenchmarkMetricsOverhead). One observer serves one compilation, so the
// name cache stays goroutine-local; the registry behind it is shared and
// concurrency-safe.
type metricsObserver struct {
	reg      *metrics.Registry
	hists    map[string]*metrics.Histogram
	changed  map[string]*metrics.Counter
	visitedC *metrics.Counter
	skippedC *metrics.Counter
}

// MetricsObserver builds a per-compilation pass collector feeding reg. A
// nil registry yields a nil Observer, which Observers drops — restoring the
// unobserved fast path.
func MetricsObserver(reg *metrics.Registry) Observer {
	if reg == nil {
		return nil
	}
	return &metricsObserver{
		reg:     reg,
		hists:   map[string]*metrics.Histogram{},
		changed: map[string]*metrics.Counter{},
	}
}

// BeginPipeline counts the compilation into the pipeline.runs counter.
func (o *metricsObserver) BeginPipeline(m *ir.Module) {
	o.reg.Counter("pipeline.runs").Inc()
}

// AfterPass records the instance's wall time, changed flag, and the dirty
// tracker's visited/skipped split (the campaign-wide skip rate backing the
// /progress endpoint).
func (o *metricsObserver) AfterPass(m *ir.Module, pass string, scheduleIndex, iteration int, st PassStats) {
	h := o.hists[pass]
	if h == nil {
		h = o.reg.Histogram("pass." + pass)
		o.hists[pass] = h
	}
	h.Observe(st.Duration)
	if st.Changed {
		c := o.changed[pass]
		if c == nil {
			c = o.reg.Counter("pass." + pass + ".changed")
			o.changed[pass] = c
		}
		c.Inc()
	}
	if st.FuncsVisited > 0 {
		o.visited().Add(int64(st.FuncsVisited))
	}
	if st.FuncsSkipped > 0 {
		o.skipped().Add(int64(st.FuncsSkipped))
	}
}

func (o *metricsObserver) visited() *metrics.Counter {
	if o.visitedC == nil {
		o.visitedC = o.reg.Counter(metrics.CounterPassVisited)
	}
	return o.visitedC
}

func (o *metricsObserver) skipped() *metrics.Counter {
	if o.skippedC == nil {
		o.skippedC = o.reg.Counter(metrics.CounterPassSkipped)
	}
	return o.skippedC
}
