package opt

import (
	"dcelens/internal/ir"
	"dcelens/internal/sema"
	"dcelens/internal/token"
)

// SCCP is sparse conditional constant propagation (Wegman-Zadeck) over the
// SSA graph, with a lattice that also tracks address constants
// (&global + offset) so that pointer comparisons can be decided. The
// FoldPtrCmpNonzeroOffset option gates folding &a == &b+k for k != 0,
// reproducing LLVM's EarlyCSE limitation from paper Listing 3.
var SCCP = Pass{Name: "sccp", Fn: sccpFunc}

func sccpFunc(f *ir.Func, o Options) bool {
	s := &sccpState{
		f:         f,
		opts:      o,
		lat:       make([]lattice, f.NumValues()),
		edgeExec:  make([]bool, f.NumBlocks()*2),
		blockExec: make([]bool, f.NumBlocks()),
	}
	s.buildUsers(f)
	s.solve()
	return s.apply()
}

// lattice values: unknown (top), a constant, or varying (bottom).
type latKind int

const (
	latUnknown latKind = iota
	latConstInt
	latConstNull
	latConstAddr
	latVarying
)

type lattice struct {
	kind latKind
	i    int64
	g    *ir.Global
	off  int64
}

func (a lattice) equal(b lattice) bool { return a == b }

// meet combines two lattice values.
func meet(a, b lattice) lattice {
	if a.kind == latUnknown {
		return b
	}
	if b.kind == latUnknown {
		return a
	}
	if a.equal(b) {
		return a
	}
	return lattice{kind: latVarying}
}

// buildUsers constructs the def→use edges in CSR form: userStart[id] /
// userStart[id+1] delimit id's users inside userData. Two dense passes, two
// allocations — no per-value map entries or append-grown slices.
func (s *sccpState) buildUsers(f *ir.Func) {
	n := f.NumValues()
	start := make([]int32, n+1)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				start[a.ID+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		start[i+1] += start[i]
	}
	data := make([]*ir.Instr, start[n])
	fill := make([]int32, n)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				data[start[a.ID]+fill[a.ID]] = in
				fill[a.ID]++
			}
		}
	}
	s.userStart, s.userData = start, data
}

func (s *sccpState) users(in *ir.Instr) []*ir.Instr {
	return s.userData[s.userStart[in.ID]:s.userStart[in.ID+1]]
}

type sccpState struct {
	f    *ir.Func
	opts Options
	// lat is indexed by Instr.ID, blockExec by Block.ID; an edge is a
	// (from-block, terminator target slot) pair at edgeExec[2*from.ID+slot]
	// — every terminator has at most two targets. The (from, to) pair
	// identity of classic SCCP is preserved by marking/querying every slot
	// of from that targets to.
	lat       []lattice
	edgeExec  []bool
	blockExec []bool
	userStart []int32
	userData  []*ir.Instr

	flowWork [][2]*ir.Block
	ssaWork  []*ir.Instr
}

// edgeIsExec reports whether the CFG edge from→to is executable.
func (s *sccpState) edgeIsExec(from, to *ir.Block) bool {
	t := from.Term()
	if t == nil {
		return false
	}
	for i, tgt := range t.Targets {
		if tgt == to && s.edgeExec[2*from.ID+i] {
			return true
		}
	}
	return false
}

// markEdgeExec marks the edge from→to executable, returning false when it
// already was.
func (s *sccpState) markEdgeExec(from, to *ir.Block) bool {
	t := from.Term()
	if t == nil {
		return false
	}
	marked := false
	for i, tgt := range t.Targets {
		if tgt == to && !s.edgeExec[2*from.ID+i] {
			s.edgeExec[2*from.ID+i] = true
			marked = true
		}
	}
	return marked
}

func (s *sccpState) solve() {
	s.markBlock(s.f.Entry())
	for len(s.flowWork) > 0 || len(s.ssaWork) > 0 {
		for len(s.ssaWork) > 0 {
			in := s.ssaWork[len(s.ssaWork)-1]
			s.ssaWork = s.ssaWork[:len(s.ssaWork)-1]
			if s.blockExec[in.Block.ID] {
				s.visit(in)
			}
		}
		for len(s.flowWork) > 0 {
			e := s.flowWork[len(s.flowWork)-1]
			s.flowWork = s.flowWork[:len(s.flowWork)-1]
			if !s.markEdgeExec(e[0], e[1]) {
				continue
			}
			dst := e[1]
			if s.blockExec[dst.ID] {
				// Re-evaluate phis: a new edge became executable.
				for _, in := range dst.Instrs {
					if in.Op != ir.OpPhi {
						break
					}
					s.visit(in)
				}
			} else {
				s.markBlock(dst)
			}
		}
	}
}

func (s *sccpState) markBlock(b *ir.Block) {
	if s.blockExec[b.ID] {
		return
	}
	s.blockExec[b.ID] = true
	for _, in := range b.Instrs {
		s.visit(in)
	}
}

func (s *sccpState) setLat(in *ir.Instr, v lattice) {
	old := s.lat[in.ID]
	// Monotonic only: never move back up the lattice.
	if old.kind == latVarying || old.equal(v) {
		return
	}
	if old.kind != latUnknown && v.kind != latVarying {
		v = lattice{kind: latVarying}
	}
	s.lat[in.ID] = v
	s.ssaWork = append(s.ssaWork, s.users(in)...)
	if t := in.Block.Term(); t != nil && t.Op == ir.OpCondBr && len(t.Args) > 0 && t.Args[0] == in {
		s.ssaWork = append(s.ssaWork, t)
	}
}

func (s *sccpState) value(in *ir.Instr) lattice { return s.lat[in.ID] }

func (s *sccpState) visit(in *ir.Instr) {
	switch in.Op {
	case ir.OpConst:
		s.setLat(in, lattice{kind: latConstInt, i: in.IntVal})
	case ir.OpNull:
		s.setLat(in, lattice{kind: latConstNull})
	case ir.OpGlobalAddr:
		s.setLat(in, lattice{kind: latConstAddr, g: in.Global})
	case ir.OpParam, ir.OpLoad, ir.OpCall, ir.OpAlloca, ir.OpFreeze:
		// Freeze is deliberately opaque: its result never folds even when
		// its operand is a known constant (the blocking behaviour the
		// paper's unswitching regression hinges on).
		if in.Typ != nil {
			s.setLat(in, lattice{kind: latVarying})
		}
	case ir.OpPhi:
		v := lattice{}
		for i, a := range in.Args {
			if !s.edgeIsExec(in.PhiPreds[i], in.Block) {
				continue
			}
			v = meet(v, s.value(a))
			if v.kind == latVarying {
				break
			}
		}
		if v.kind != latUnknown {
			s.setLat(in, v)
		}
	case ir.OpCast:
		x := s.value(in.Args[0])
		switch x.kind {
		case latConstInt:
			s.setLat(in, lattice{kind: latConstInt, i: in.Typ.WrapValue(x.i)})
		case latVarying:
			s.setLat(in, lattice{kind: latVarying})
		}
	case ir.OpGEP:
		p := s.value(in.Args[0])
		idx := s.value(in.Args[1])
		switch {
		case p.kind == latConstAddr && idx.kind == latConstInt:
			s.setLat(in, lattice{kind: latConstAddr, g: p.g, off: p.off + idx.i})
		case p.kind == latVarying || idx.kind == latVarying:
			s.setLat(in, lattice{kind: latVarying})
		}
	case ir.OpSelect:
		c := s.value(in.Args[0])
		switch c.kind {
		case latConstInt, latConstNull, latConstAddr:
			taken := in.Args[2]
			if truthyLat(c) {
				taken = in.Args[1]
			}
			if v := s.value(taken); v.kind != latUnknown {
				s.setLat(in, v)
			}
		case latVarying:
			v := meet(s.value(in.Args[1]), s.value(in.Args[2]))
			if v.kind != latUnknown {
				s.setLat(in, v)
			}
		}
	case ir.OpBin:
		s.visitBin(in)
	case ir.OpBr:
		s.addFlow(in.Block, in.Targets[0])
	case ir.OpCondBr:
		c := s.value(in.Args[0])
		switch c.kind {
		case latConstInt, latConstNull, latConstAddr:
			if truthyLat(c) {
				s.addFlow(in.Block, in.Targets[0])
			} else {
				s.addFlow(in.Block, in.Targets[1])
			}
		case latVarying:
			s.addFlow(in.Block, in.Targets[0])
			s.addFlow(in.Block, in.Targets[1])
		}
	case ir.OpStore, ir.OpRet:
		// no lattice value
	}
}

func truthyLat(v lattice) bool {
	switch v.kind {
	case latConstInt:
		return v.i != 0
	case latConstNull:
		return false
	case latConstAddr:
		return true
	}
	return false
}

func (s *sccpState) addFlow(from, to *ir.Block) {
	if !s.edgeIsExec(from, to) {
		s.flowWork = append(s.flowWork, [2]*ir.Block{from, to})
	}
}

func (s *sccpState) visitBin(in *ir.Instr) {
	x := s.value(in.Args[0])
	y := s.value(in.Args[1])
	if x.kind == latUnknown || y.kind == latUnknown {
		return
	}

	// Integer constant folding.
	if x.kind == latConstInt && y.kind == latConstInt {
		opTy := in.Args[0].Typ
		if v, ok := sema.EvalBinop(in.BinOp, x.i, y.i, opTy, in.Typ); ok {
			s.setLat(in, lattice{kind: latConstInt, i: v})
			return
		}
		s.setLat(in, lattice{kind: latVarying})
		return
	}

	// Pointer comparisons against constant addresses / null.
	if in.BinOp == token.EqEq || in.BinOp == token.NotEq {
		if v, ok := s.foldPtrCmp(in.BinOp, x, y); ok {
			s.setLat(in, lattice{kind: latConstInt, i: v})
			return
		}
	}
	s.setLat(in, lattice{kind: latVarying})
}

// foldPtrCmp decides equality of two pointer lattice constants, honouring
// the FoldPtrCmpNonzeroOffset knob: without it, comparisons where either
// side has a nonzero offset are left undecided (paper Listing 3).
func (s *sccpState) foldPtrCmp(op token.Kind, x, y lattice) (int64, bool) {
	boolVal := func(eq bool) int64 {
		if (op == token.EqEq) == eq {
			return 1
		}
		return 0
	}
	isAddrish := func(v lattice) bool { return v.kind == latConstAddr || v.kind == latConstNull }
	if !isAddrish(x) || !isAddrish(y) {
		return 0, false
	}
	if x.kind == latConstNull && y.kind == latConstNull {
		return boolVal(true), true
	}
	if x.kind == latConstNull || y.kind == latConstNull {
		// &g + off is never null (MiniC objects have nonzero addresses and
		// in-bounds offsets).
		return boolVal(false), true
	}
	if !s.opts.FoldPtrCmpNonzeroOffset && (x.off != 0 || y.off != 0) {
		return 0, false
	}
	if x.g == y.g {
		return boolVal(x.off == y.off), true
	}
	// Distinct objects have distinct addresses at every offset in MiniC
	// (in-bounds offsets only, no one-past-the-end aliasing).
	return boolVal(false), true
}

// apply rewrites the function according to the solved lattice: constants
// are materialized, constant branches are folded, and unreachable blocks
// are left for SimplifyCFG.
func (s *sccpState) apply() bool {
	changed := false
	// Constant materializations don't read each other's results: batch every
	// replacement and rewrite all argument slots in one sweep at the end.
	var reloc ir.Relocator
	for _, b := range s.f.Blocks {
		if !s.blockExec[b.ID] {
			continue
		}
		// Replacements for phis must be inserted after the phi group to
		// keep phis at the block head.
		insertPos := func(in *ir.Instr) *ir.Instr {
			if in.Op != ir.OpPhi {
				return in
			}
			for _, x := range b.Instrs {
				if x.Op != ir.OpPhi {
					return x
				}
			}
			return in // unreachable: a block always has a terminator
		}
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			v := s.lat[in.ID]
			if in.Typ == nil {
				continue
			}
			switch v.kind {
			case latConstInt:
				if in.Op == ir.OpConst {
					continue
				}
				if in.HasSideEffects() {
					continue // calls keep executing; their value just isn't known
				}
				c := b.NewInstr(ir.OpConst, in.Typ)
				c.IntVal = in.Typ.WrapValue(v.i)
				b.InsertBefore(c, insertPos(in))
				reloc.Add(in, c)
				changed = true
			case latConstNull:
				if in.Op == ir.OpNull || in.HasSideEffects() {
					continue
				}
				n := b.NewInstr(ir.OpNull, in.Typ)
				b.InsertBefore(n, insertPos(in))
				reloc.Add(in, n)
				changed = true
			}
		}
	}
	reloc.Apply(s.f)
	// Fold branches whose conditions resolved to constants or whose edges
	// were proven non-executable.
	for _, b := range s.f.Blocks {
		if !s.blockExec[b.ID] {
			continue
		}
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		trueExec := s.edgeIsExec(b, t.Targets[0])
		falseExec := s.edgeIsExec(b, t.Targets[1])
		if trueExec && falseExec {
			continue
		}
		var live, dead *ir.Block
		if trueExec {
			live, dead = t.Targets[0], t.Targets[1]
		} else if falseExec {
			live, dead = t.Targets[1], t.Targets[0]
		} else {
			continue // block executable but no out-edge marked: terminator unreached in solve (shouldn't happen)
		}
		if live == dead {
			continue
		}
		ir.RemoveEdge(b, dead)
		t.Op = ir.OpBr
		t.Args = nil
		t.Targets = []*ir.Block{live}
		changed = true
	}
	return changed
}
