package opt

import (
	"dcelens/internal/ir"
	"dcelens/internal/types"
)

// LocalizeGlobals models LLVM GlobalOpt's "localize global" transform: a
// non-escaping internal scalar global whose every access sits in main (a
// function that runs exactly once) is demoted to a stack slot — which
// mem2reg then promotes to SSA, making every condition over it fully
// flow-sensitive. After aggressive inlining this applies to a large share
// of a Csmith-style program's globals, and it is the single biggest reason
// llvm-sim eliminates far more of gcc-sim's missed markers than the other
// way around (paper §4.2: 39,723 vs 3,781). GCC has no equivalent
// localization, so the personality knob GlobalLocalize is LLVM-only.
//
// Because this reproduction's observation model reads every global after
// exit (the Csmith-style checksum), the transform writes the slot's final
// value back to the global before every return of main — exactly the
// compromise a real compiler faces when the global's final value is
// observable.
var LocalizeGlobals = Pass{Name: "localize-globals", Run: localizeGlobals}

func localizeGlobals(m *ir.Module, o Options, inv *Invalidation) bool {
	if !o.GlobalLocalize {
		return false
	}
	mainFn := m.LookupFunc("main")
	if mainFn == nil || mainFn.External || mainIsCalled(m) {
		return false
	}
	if ComputeEscapesOpt(m, o) {
		inv.Facts()
	}
	changed := false
	for _, g := range m.Globals {
		if g.Escapes || g.AddrExposed || g.Len != 1 {
			continue
		}
		if localizeOne(m, g, mainFn) {
			changed = true
			inv.Func(mainFn) // demotion rewrites only main's body
		}
	}
	return changed
}

// localizeMinAccesses is the profitability threshold: demoting a global
// costs an entry store plus an exit write-back, so rarely-accessed globals
// are not worth rewriting. This cost model is also what keeps the paper's
// tiny reduced listings (one load, one store — Listings 4a/6) exhibiting
// their misses: real GlobalOpt does not rescue them either.
const localizeMinAccesses = 4

// localizeOne demotes one global; returns false when its uses are not
// confined to main or the access count is below the profitability
// threshold.
func localizeOne(m *ir.Module, g *ir.Global, mainFn *ir.Func) bool {
	var addrs []*ir.Instr
	accesses := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpGlobalAddr && in.Global == g {
					if f != mainFn {
						return false
					}
					addrs = append(addrs, in)
				}
				for i, a := range in.Args {
					if a.Op == ir.OpGlobalAddr && a.Global == g {
						if in.Op == ir.OpLoad || (in.Op == ir.OpStore && i == 0) {
							accesses++
						}
					}
				}
			}
		}
	}
	if len(addrs) == 0 || accesses < localizeMinAccesses {
		return false
	}

	entry := mainFn.Entry()

	// The stack slot, its initialization, and the address substitution.
	slot := entry.NewInstr(ir.OpAlloca, types.PointerTo(g.Elem))
	slot.Count = 1
	initVal := materializeInit(m, entry, g)
	st := entry.NewInstr(ir.OpStore, nil, slot, initVal)
	// Prepend in order: alloca, init value chain, store.
	prefix := []*ir.Instr{slot}
	prefix = append(prefix, initChain(initVal)...)
	prefix = append(prefix, st)
	entry.Instrs = append(prefix, entry.Instrs...)

	for _, a := range addrs {
		ir.ReplaceAllUses(a, slot)
		a.Remove()
	}

	// Write the final value back before every return, so the global's
	// observable exit state is preserved.
	for _, b := range mainFn.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpRet {
			continue
		}
		ga := b.NewInstr(ir.OpGlobalAddr, types.PointerTo(g.Elem))
		ga.Global = g
		ld := b.NewInstr(ir.OpLoad, g.Elem, slot)
		wb := b.NewInstr(ir.OpStore, nil, ga, ld)
		b.InsertBefore(ga, t)
		b.InsertBefore(ld, t)
		b.InsertBefore(wb, t)
	}
	return true
}

// materializeInit builds the instruction(s) producing g's initial value;
// the returned value's dependency chain is collected by initChain.
func materializeInit(m *ir.Module, entry *ir.Block, g *ir.Global) *ir.Instr {
	var c ir.Const
	if len(g.Init) > 0 {
		c = g.Init[0]
	}
	switch {
	case c.IsAddr && c.Global == nil:
		n := entry.NewInstr(ir.OpNull, g.Elem)
		return n
	case c.IsAddr:
		ga := entry.NewInstr(ir.OpGlobalAddr, types.PointerTo(c.Global.Elem))
		ga.Global = c.Global
		if c.Off == 0 {
			return ga
		}
		idx := entry.NewInstr(ir.OpConst, types.I64Type)
		idx.IntVal = c.Off
		gep := entry.NewInstr(ir.OpGEP, ga.Typ, ga, idx)
		return gep
	case g.Elem.Kind == types.Pointer:
		return entry.NewInstr(ir.OpNull, g.Elem)
	default:
		cv := entry.NewInstr(ir.OpConst, g.Elem)
		cv.IntVal = g.Elem.WrapValue(c.Int)
		return cv
	}
}

// initChain returns the dependency chain of a materialized init value in
// definition order (operands first).
func initChain(v *ir.Instr) []*ir.Instr {
	var out []*ir.Instr
	var walk func(in *ir.Instr)
	seen := map[*ir.Instr]bool{}
	walk = func(in *ir.Instr) {
		if seen[in] {
			return
		}
		seen[in] = true
		for _, a := range in.Args {
			walk(a)
		}
		out = append(out, in)
	}
	walk(v)
	return out
}
