package opt

import (
	"dcelens/internal/ir"
	"dcelens/internal/types"
)

// WidenStores models the GCC artifact of paper Listing 9e: when -O3
// vectorizes a loop that stores pointers, the stored data is re-typed as
// unsigned long, and the type mismatch later blocks constant folding and
// store-to-load forwarding. Here, stores of pointer-typed values inside
// loops are marked Widened; GVN refuses to forward widened stores, so a
// later load of the location stays a load — and everything downstream of
// it (including DCE of blocks guarded by comparisons on the loaded value)
// is lost.
//
// The transformation itself is semantics-preserving: only the forwarding
// metadata changes.
var WidenStores = Pass{Name: "widen-stores", Fn: widenStoresFunc}

func widenStoresFunc(f *ir.Func, o Options) bool {
	if !o.WidenPointerLoopStores {
		return false
	}
	dt := ir.Dominators(f)
	loops := ir.NaturalLoops(f, dt)
	changed := false
	for _, l := range loops {
		for _, b := range f.Blocks {
			if !l.Blocks[b] {
				continue
			}
			for _, in := range b.Instrs {
				if in.Op == ir.OpStore && !in.Widened &&
					in.Args[1].Typ != nil && in.Args[1].Typ.Kind == types.Pointer {
					in.Widened = true
					changed = true
				}
			}
		}
	}
	return changed
}
