package opt

import "dcelens/internal/ir"

// This file is the emission side of the optimization-remarks subsystem:
// every pass reports, through the Options value it already receives, what
// it applied, what it considered and rejected (with a machine-readable
// reason), and what analysis facts it computed. The collection side lives
// in internal/remark; the seam is the RemarkSink interface below, detected
// on the pipeline observer, so that — exactly like the Observer seam — opt
// never imports the consumer. With no sink attached every emission helper
// is one pointer comparison, keeping uninstrumented compilations
// indistinguishable from the pre-remarks pipeline.

// RemarkKind classifies a remark.
type RemarkKind uint8

const (
	// RemarkApplied records a transformation that fired.
	RemarkApplied RemarkKind = iota
	// RemarkMissed records a transformation that was considered and
	// rejected; Remark.Reason says why.
	RemarkMissed
	// RemarkAnalysis records a computed fact (no transformation).
	RemarkAnalysis
)

var remarkKindNames = [...]string{"applied", "missed", "analysis"}

func (k RemarkKind) String() string {
	if int(k) < len(remarkKindNames) {
		return remarkKindNames[k]
	}
	return "unknown"
}

// MarshalText renders the kind as its lower-case name, so remarks
// serialize readably in JSON artifacts.
func (k RemarkKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the lower-case kind name.
func (k *RemarkKind) UnmarshalText(b []byte) error {
	for i, n := range remarkKindNames {
		if n == string(b) {
			*k = RemarkKind(i)
			return nil
		}
	}
	*k = RemarkAnalysis
	return nil
}

// Reason is a machine-readable rejection code attached to Missed remarks.
// The vocabulary is closed: downstream consumers (dce-explain, the
// /metrics counters, the future oracles) aggregate on these strings.
type Reason string

const (
	// ReasonAliasUnknown: a may-alias query could not be refuted.
	ReasonAliasUnknown Reason = "alias-unknown"
	// ReasonEscape: the storage escapes, so external code may touch it.
	ReasonEscape Reason = "escape"
	// ReasonLoopCarried: the value may change across loop iterations.
	ReasonLoopCarried Reason = "loop-carried"
	// ReasonCallClobber: a call with unknown mod/ref killed the facts.
	ReasonCallClobber Reason = "call-clobber"
	// ReasonSizeThreshold: a size or growth budget was exceeded.
	ReasonSizeThreshold Reason = "size-threshold"
	// ReasonRecursive: the callee participates in a call-graph cycle.
	ReasonRecursive Reason = "recursive"
	// ReasonSideEffects: opaque side effects keep the code live.
	ReasonSideEffects Reason = "side-effects"
	// ReasonAddressTaken: the object's address leaks beyond direct
	// loads and stores.
	ReasonAddressTaken Reason = "address-taken"
	// ReasonNotDominated: the candidate is not dominated by its
	// would-be provider.
	ReasonNotDominated Reason = "not-dominated"
	// ReasonTypeMismatch: value types differ, so forwarding is unsound.
	ReasonTypeMismatch Reason = "type-mismatch"
	// ReasonWidenedStore: the type-erased "vectorized" store never
	// forwards (paper Listing 9e).
	ReasonWidenedStore Reason = "widened-store"
	// ReasonBoundsUnknown: the access is not provably in bounds, so
	// speculation is unsafe.
	ReasonBoundsUnknown Reason = "bounds-unknown"
	// ReasonPrecision: the configured analysis tier is too weak, though
	// a stronger one would prove the fact (the paper's central axis).
	ReasonPrecision Reason = "precision"
)

// Remark is one structured optimization decision. The struct is
// comparable; internal/remark deduplicates re-emissions across fixpoint
// iterations by comparing remarks with the position fields zeroed.
type Remark struct {
	Kind RemarkKind `json:"kind"`
	Pass string     `json:"pass"`
	// ScheduleIndex and Iteration locate the emitting pass instance,
	// mirroring Observer.AfterPass.
	ScheduleIndex int `json:"schedule_index"`
	Iteration     int `json:"iteration"`
	// Fn is the enclosing function; empty for module-scoped decisions
	// (interprocedural passes, global analysis verdicts).
	Fn      string `json:"fn,omitempty"`
	Subject string `json:"subject"`
	Reason  Reason `json:"reason,omitempty"` // Missed only
	Detail  string `json:"detail,omitempty"`
}

// RemarkSink receives remarks during an ObservedPipeline run. An observer
// that also implements RemarkSink (internal/remark.Collector) is detected
// by ObservedPipeline and wired into the Options the passes see; plain
// observers leave remark emission disabled.
type RemarkSink interface {
	Remark(Remark)
}

// remarkCtx threads the sink plus the executing pass instance's position
// into pass bodies via the Options value (which is copied by value, so the
// shared pointer is what keeps the position current).
type remarkCtx struct {
	sink  RemarkSink
	pass  string
	index int
	iter  int
}

// RemarksOn reports whether remark emission is enabled. Passes use it to
// gate scans done purely for remark quality; the emission helpers below
// already nil-check, so unconditional emissions need no guard.
func (o Options) RemarksOn() bool { return o.remarks != nil }

func (o Options) remark(kind RemarkKind, fn, subject string, reason Reason, detail string) {
	c := o.remarks
	if c == nil {
		return
	}
	c.sink.Remark(Remark{
		Kind:          kind,
		Pass:          c.pass,
		ScheduleIndex: c.index,
		Iteration:     c.iter,
		Fn:            fn,
		Subject:       subject,
		Reason:        reason,
		Detail:        detail,
	})
}

// applied records a transformation that fired in f.
func (o Options) applied(f *ir.Func, subject, detail string) {
	o.remark(RemarkApplied, f.Name, subject, "", detail)
}

// missed records a transformation considered and rejected in f.
func (o Options) missed(f *ir.Func, subject string, reason Reason, detail string) {
	o.remark(RemarkMissed, f.Name, subject, reason, detail)
}

// appliedModule and missedModule are the module-scoped variants
// (interprocedural passes; included in every function's miss chain).
func (o Options) appliedModule(subject, detail string) {
	o.remark(RemarkApplied, "", subject, "", detail)
}

func (o Options) missedModule(subject string, reason Reason, detail string) {
	o.remark(RemarkMissed, "", subject, reason, detail)
}

// analysisModule records a module-level analysis fact.
func (o Options) analysisModule(subject, detail string) {
	o.remark(RemarkAnalysis, "", subject, "", detail)
}
