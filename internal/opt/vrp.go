package opt

import (
	"dcelens/internal/ir"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// VRP is a lightweight value-range propagation pass: it computes signed
// intervals for SSA values (with a special pattern for canonical loop
// counters) and folds comparisons whose operand ranges decide them.
//
// Two knobs reproduce paper findings:
//   - ShiftNonzeroRelation (Listing 9a): without it, shifts produce the
//     full range — GCC's missing "x<<y != 0 when no bits can be lost".
//   - ConstArrayLoadFold interacts elsewhere; the modulo-range relation of
//     Listing 8b corresponds to rem range computation below, which is
//     always on (its absence shows up in llvm-sim's history as a commit).
var VRP = Pass{Name: "vrp", Fn: vrpFunc}

// vrange is a signed interval [lo, hi]; full means "no information".
type vrange struct {
	lo, hi int64
	full   bool
}

func fullR() vrange            { return vrange{full: true} }
func constR(v int64) vrange    { return vrange{lo: v, hi: v} }
func (r vrange) isConst() bool { return !r.full && r.lo == r.hi }

// typeRange is the representable interval of a type in the signed domain.
// Unsigned 64-bit values do not fit the signed domain; treat U64 as full.
func typeRange(t *types.Type) vrange {
	if !t.IsInteger() {
		return fullR()
	}
	if t.IsSigned() {
		switch t.Bits() {
		case 8:
			return vrange{lo: -128, hi: 127}
		case 16:
			return vrange{lo: -32768, hi: 32767}
		case 32:
			return vrange{lo: -2147483648, hi: 2147483647}
		default:
			return fullR()
		}
	}
	switch t.Bits() {
	case 8:
		return vrange{lo: 0, hi: 255}
	case 16:
		return vrange{lo: 0, hi: 65535}
	case 32:
		return vrange{lo: 0, hi: 4294967295}
	default:
		return fullR() // u64 exceeds the signed domain
	}
}

func union(a, b vrange) vrange {
	if a.full || b.full {
		return fullR()
	}
	return vrange{lo: min64(a.lo, b.lo), hi: max64(a.hi, b.hi)}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func vrpFunc(f *ir.Func, o Options) bool {
	ranges := map[*ir.Instr]vrange{}
	get := func(v *ir.Instr) vrange {
		if r, ok := ranges[v]; ok {
			return r
		}
		return fullR()
	}

	dt := ir.Dominators(f)
	counterRanges := loopCounterRanges(f, dt)

	// Fixpoint with a visit cap; ranges only widen (to full) so this
	// terminates quickly.
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, b := range dt.RPO() {
			for _, in := range b.Instrs {
				var r vrange
				switch in.Op {
				case ir.OpConst:
					r = constR(in.IntVal)
				case ir.OpCast:
					r = castRange(get(in.Args[0]), in.Args[0].Typ, in.Typ)
				case ir.OpPhi:
					if cr, ok := counterRanges[in]; ok {
						r = cr
					} else {
						r = vrange{lo: 1<<62 - 1, hi: -(1 << 62)} // empty; union below
						first := true
						for _, a := range in.Args {
							if a == in {
								continue
							}
							if first {
								r = get(a)
								first = false
							} else {
								r = union(r, get(a))
							}
						}
						if first {
							r = fullR()
						}
					}
				case ir.OpBin:
					r = binRange(in, get(in.Args[0]), get(in.Args[1]), o)
				case ir.OpSelect:
					r = union(get(in.Args[1]), get(in.Args[2]))
				case ir.OpLoad, ir.OpCall, ir.OpParam:
					if in.Typ != nil && in.Typ.IsInteger() {
						r = typeRange(in.Typ)
					} else {
						r = fullR()
					}
				default:
					continue
				}
				// Soundness clamp: a computed range is the *mathematical*
				// result interval; if it does not fit the type's canonical
				// domain the operation may have wrapped, and the only sound
				// answer is the full type range. Never intersect partially
				// (0 - [0,2^32) on u32 is NOT [0,0] — it wraps).
				if in.Typ != nil && in.Typ.IsInteger() {
					r = soundClamp(r, in.Typ)
				}
				old, had := ranges[in]
				if !had || old != r {
					ranges[in] = r
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Fold comparisons decided by the ranges. Replacements are batched;
	// operands are read through the batch so a comparison whose input was
	// folded this sweep sees the fresh constant (range-less), exactly as if
	// each replacement had been applied eagerly.
	foldedAny := false
	var reloc ir.Relocator
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpBin || !isComparison(in.BinOp) {
				continue
			}
			a0, a1 := reloc.Resolve(in.Args[0]), reloc.Resolve(in.Args[1])
			tx := a0.Typ
			if tx == nil || !tx.IsInteger() {
				continue
			}
			// Unsigned comparisons are only decided when both ranges are
			// non-negative (then signed and unsigned orders agree).
			rx, ry := get(a0), get(a1)
			if rx.full || ry.full {
				continue
			}
			if !tx.IsSigned() && (rx.lo < 0 || ry.lo < 0) {
				continue
			}
			verdict, ok := decideCmp(in.BinOp, rx, ry)
			if !ok {
				continue
			}
			c := constOf(in, verdict, in.Typ)
			reloc.Add(in, c)
			foldedAny = true
		}
	}
	if foldedAny {
		reloc.Apply(f)
		dceFunc(f, Options{}) // cleanup sweep; no remarks
	}
	return foldedAny
}

func soundClamp(r vrange, t *types.Type) vrange {
	tr := typeRange(t)
	if tr.full {
		return r
	}
	if r.full {
		return tr
	}
	if r.lo >= tr.lo && r.hi <= tr.hi {
		return r // fits: no wrap was possible
	}
	return tr
}

func castRange(r vrange, from, to *types.Type) vrange {
	if r.full || !to.IsInteger() || !from.IsInteger() {
		return fullR()
	}
	tr := typeRange(to)
	if tr.full {
		// widening to 64-bit keeps the range (value-preserving when the
		// source range is canonical for its type)
		return r
	}
	if r.lo >= tr.lo && r.hi <= tr.hi {
		return r // fits: conversion is value-preserving
	}
	return tr
}

func binRange(in *ir.Instr, x, y vrange, o Options) vrange {
	op := in.BinOp
	t := in.Typ
	if t == nil || !t.IsInteger() {
		return fullR()
	}
	if isComparison(op) {
		return vrange{lo: 0, hi: 1}
	}
	if x.full || y.full {
		// A couple of shapes still bound the result.
		switch op {
		case token.Percent:
			if y.isConst() && y.lo > 0 && t.IsSigned() {
				// Signed remainder magnitude is bounded by |y|-1.
				return vrange{lo: -(y.lo - 1), hi: y.lo - 1}
			}
		case token.Amp:
			if y.isConst() && y.lo >= 0 {
				return vrange{lo: 0, hi: y.lo}
			}
			if x.isConst() && x.lo >= 0 {
				return vrange{lo: 0, hi: x.lo}
			}
		}
		return fullR()
	}
	checked := func(lo, hi int64, okLo, okHi bool) vrange {
		if !okLo || !okHi {
			return fullR()
		}
		return vrange{lo: lo, hi: hi}
	}
	switch op {
	case token.Plus:
		lo, ok1 := addOv(x.lo, y.lo)
		hi, ok2 := addOv(x.hi, y.hi)
		return checked(lo, hi, ok1, ok2)
	case token.Minus:
		lo, ok1 := addOv(x.lo, -y.hi)
		hi, ok2 := addOv(x.hi, -y.lo)
		if y.hi == -9223372036854775808 || y.lo == -9223372036854775808 {
			return fullR()
		}
		return checked(lo, hi, ok1, ok2)
	case token.Star:
		var cands []int64
		for _, a := range []int64{x.lo, x.hi} {
			for _, b := range []int64{y.lo, y.hi} {
				p, ok := mulOv(a, b)
				if !ok {
					return fullR()
				}
				cands = append(cands, p)
			}
		}
		lo, hi := cands[0], cands[0]
		for _, c := range cands[1:] {
			lo, hi = min64(lo, c), max64(hi, c)
		}
		return vrange{lo: lo, hi: hi}
	case token.Percent:
		// Modulo-range relation (cf. paper Listing 8b, where LLVM lacked
		// the rem case for singleton ranges).
		if y.isConst() && y.lo > 0 {
			if x.lo >= 0 {
				if x.hi < y.lo {
					return x // x already < y: rem is the identity (folded later by instcombine? keep range only)
				}
				return vrange{lo: 0, hi: y.lo - 1}
			}
			return vrange{lo: -(y.lo - 1), hi: y.lo - 1}
		}
		return fullR()
	case token.Slash:
		if y.isConst() && y.lo > 0 && x.lo >= 0 {
			return vrange{lo: x.lo / y.lo, hi: x.hi / y.lo}
		}
		return fullR()
	case token.Amp:
		if x.lo >= 0 && y.lo >= 0 {
			return vrange{lo: 0, hi: min64(x.hi, y.hi)}
		}
		return fullR()
	case token.Pipe, token.Caret:
		if x.lo >= 0 && y.lo >= 0 {
			// Bounded by the next power of two above both maxima.
			m := ceilPow2(max64(x.hi, y.hi))
			return vrange{lo: 0, hi: m}
		}
		return fullR()
	case token.Shl:
		if !o.ShiftNonzeroRelation {
			return fullR() // the missing relation: shifts are opaque
		}
		if y.lo >= 0 && y.hi < int64(t.Bits()) && x.lo >= 0 {
			hi, ok := shlOv(x.hi, y.hi, t)
			if !ok {
				return fullR()
			}
			return vrange{lo: x.lo << uint(y.lo), hi: hi}
		}
		return fullR()
	case token.Shr:
		if y.lo >= 0 && y.hi < int64(t.Bits()) && x.lo >= 0 {
			return vrange{lo: x.lo >> uint(y.hi), hi: x.hi >> uint(y.lo)}
		}
		return fullR()
	}
	return fullR()
}

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func shlOv(a, sh int64, t *types.Type) (int64, bool) {
	if a < 0 || sh < 0 || sh >= 63 {
		return 0, false
	}
	v := a << uint(sh)
	if v>>uint(sh) != a {
		return 0, false
	}
	// Must still be canonical for the type.
	if t.WrapValue(v) != v {
		return 0, false
	}
	return v, true
}

func ceilPow2(v int64) int64 {
	if v < 0 {
		return 1<<62 - 1
	}
	p := int64(1)
	for p <= v && p > 0 {
		p <<= 1
	}
	return p - 1
}

func decideCmp(op token.Kind, x, y vrange) (int64, bool) {
	switch op {
	case token.Lt:
		if x.hi < y.lo {
			return 1, true
		}
		if x.lo >= y.hi {
			return 0, true
		}
	case token.Le:
		if x.hi <= y.lo {
			return 1, true
		}
		if x.lo > y.hi {
			return 0, true
		}
	case token.Gt:
		if x.lo > y.hi {
			return 1, true
		}
		if x.hi <= y.lo {
			return 0, true
		}
	case token.Ge:
		if x.lo >= y.hi {
			return 1, true
		}
		if x.hi < y.lo {
			return 0, true
		}
	case token.EqEq:
		if x.isConst() && y.isConst() && x.lo == y.lo {
			return 1, true
		}
		if x.hi < y.lo || x.lo > y.hi {
			return 0, true
		}
	case token.NotEq:
		if x.isConst() && y.isConst() && x.lo == y.lo {
			return 0, true
		}
		if x.hi < y.lo || x.lo > y.hi {
			return 1, true
		}
	}
	return 0, false
}

// loopCounterRanges recognizes the canonical counter pattern our frontend
// emits — phi i = [C0, preheader] [i + S, latch] with a header comparison
// i < N guarding the latch — and assigns the phi the range [C0, N-1+S]
// (for positive S; symmetric for negative).
func loopCounterRanges(f *ir.Func, dt *ir.DomTree) map[*ir.Instr]vrange {
	out := map[*ir.Instr]vrange{}
	loops := ir.NaturalLoops(f, dt)
	for _, l := range loops {
		h := l.Header
		// Header must end in condbr(lt(i, N)) with the false edge leaving
		// the loop.
		t := h.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		cmp := t.Args[0]
		if cmp.Op != ir.OpBin || cmp.BinOp != token.Lt {
			continue
		}
		bound, ok := isConst(cmp.Args[1])
		if !ok {
			continue
		}
		if l.Blocks[t.Targets[1]] {
			continue // false edge must exit
		}
		phi := cmp.Args[0]
		if phi.Op != ir.OpPhi || phi.Block != h || len(phi.Args) != 2 {
			continue
		}
		// One arm: constant init from outside; other: phi + const step from
		// inside.
		var init, step int64
		okShape := false
		for i := 0; i < 2; i++ {
			a, b := phi.Args[i], phi.Args[1-i]
			c0, ok0 := isConst(a)
			if !ok0 || l.Blocks[phi.PhiPreds[i]] {
				continue
			}
			if b.Op == ir.OpBin && b.BinOp == token.Plus && b.Args[0] == phi {
				if s, ok1 := isConst(b.Args[1]); ok1 && s > 0 && l.Blocks[phi.PhiPreds[1-i]] {
					init, step = c0, s
					okShape = true
				}
			}
		}
		if !okShape || init >= bound {
			continue
		}
		// i starts at init, increments by step while i < bound: the phi's
		// value is in [init, bound-1+step]... the phi itself only ever
		// holds values < bound+step; at the comparison it is in
		// [init, bound+step-1], but conservatively the phi (observed at
		// the header) is in [init, bound-1+step].
		hi, ok2 := addOv(bound-1, step)
		if !ok2 || phi.Typ.WrapValue(hi) != hi {
			// The increment could wrap in the counter's type; the neat
			// interval story no longer holds.
			continue
		}
		out[phi] = vrange{lo: init, hi: hi}
	}
	return out
}
