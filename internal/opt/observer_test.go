package opt

import (
	"testing"
	"time"

	"dcelens/internal/ir"
	"dcelens/internal/metrics"
)

// countObserver counts calls; the simplest live Observer.
type countObserver struct{ begins, passes int }

func (o *countObserver) BeginPipeline(m *ir.Module) {}

func (o *countObserver) AfterPass(m *ir.Module, pass string, scheduleIndex, iteration int, st PassStats) {
	o.passes++
}

// TestObserversZeroSurvivorsIsNil is the regression test for the typed-nil
// trap: Observers must return a true nil Observer when every argument is
// nil — whether an untyped nil or a typed nil boxed into the interface.
// Anything else breaks ObservedPipeline's `obs == nil` fast path and then
// crashes on the first interface call.
func TestObserversZeroSurvivorsIsNil(t *testing.T) {
	var typedNil *countObserver
	cases := []struct {
		name string
		obs  []Observer
	}{
		{"no args", nil},
		{"untyped nils", []Observer{nil, nil}},
		{"typed nil", []Observer{typedNil}},
		{"typed nil from constructor", []Observer{MetricsObserver(nil)}},
		{"mixed nils", []Observer{nil, typedNil, MetricsObserver(nil)}},
	}
	for _, tc := range cases {
		if got := Observers(tc.obs...); got != nil {
			t.Errorf("%s: Observers() = %T(%v), want untyped nil", tc.name, got, got)
		}
	}
}

// TestObserversDropsTypedNilsKeepsLive checks the composition keeps only
// live observers: a single survivor comes back unwrapped, and typed nils
// mixed with live observers neither crash nor dilute the fan-out.
func TestObserversDropsTypedNilsKeepsLive(t *testing.T) {
	var typedNil *countObserver
	live := &countObserver{}

	if got := Observers(nil, typedNil, live); got != live {
		t.Fatalf("single survivor: got %T, want the observer itself", got)
	}

	a, b := &countObserver{}, &countObserver{}
	multi := Observers(typedNil, a, nil, b)
	multi.AfterPass(nil, "dce", 0, 0, PassStats{Changed: true})
	if a.passes != 1 || b.passes != 1 {
		t.Fatalf("fan-out: a=%d b=%d passes, want 1 each", a.passes, b.passes)
	}
}

// TestMetricsObserverCollects checks the pass collector feeds the registry:
// one histogram observation per instance, one changed increment per
// changing instance.
func TestMetricsObserverCollects(t *testing.T) {
	reg := metrics.New()
	obs := MetricsObserver(reg)
	obs.BeginPipeline(nil)
	obs.AfterPass(nil, "dce", 0, 0, PassStats{Changed: true, Duration: time.Millisecond, FuncsVisited: 2})
	obs.AfterPass(nil, "dce", 1, 0, PassStats{Duration: time.Millisecond, FuncsSkipped: 2})
	obs.AfterPass(nil, "gvn", 2, 0, PassStats{Changed: true, Duration: time.Millisecond, FuncsVisited: 1, FuncsSkipped: 1})

	if got := reg.Counter("pipeline.runs").Value(); got != 1 {
		t.Errorf("pipeline.runs = %d, want 1", got)
	}
	if got := reg.Histogram("pass.dce").Count(); got != 2 {
		t.Errorf("pass.dce count = %d, want 2", got)
	}
	if got := reg.Counter("pass.dce.changed").Value(); got != 1 {
		t.Errorf("pass.dce.changed = %d, want 1", got)
	}
	if got := reg.Counter("pass.gvn.changed").Value(); got != 1 {
		t.Errorf("pass.gvn.changed = %d, want 1", got)
	}
}
