package opt

import (
	"dcelens/internal/ir"
)

// SimplifyCFG cleans up the control-flow graph: it removes unreachable
// blocks, folds branches on constants and branches with identical targets,
// merges straight-line block pairs, bypasses empty forwarding blocks, and
// simplifies single-entry phis. Both personalities run it repeatedly, as
// real pipelines do.
var SimplifyCFG = Pass{Name: "simplifycfg", Fn: simplifyCFGFunc}

func simplifyCFGFunc(f *ir.Func, o Options) bool {
	changed := false
	for simplifyCFGOnce(f) {
		changed = true
	}
	return changed
}

func simplifyCFGOnce(f *ir.Func) bool {
	changed := false
	if removeUnreachable(f) {
		changed = true
	}
	for _, b := range f.Blocks {
		if foldConstBranch(b) {
			changed = true
		}
	}
	// Phi simplification batches its replacements: one Apply sweep instead
	// of an O(function) ReplaceAllUses per trivial phi.
	var reloc ir.Relocator
	for _, b := range f.Blocks {
		if simplifySingleEntryPhis(b, &reloc) {
			changed = true
		}
	}
	if !reloc.Empty() {
		reloc.Apply(f)
	}
	if mergeStraightLine(f) {
		changed = true
	}
	if skipEmptyBlocks(f) {
		changed = true
	}
	return changed
}

// removeUnreachable deletes blocks not reachable from entry, first severing
// their edges into reachable blocks (fixing phis).
func removeUnreachable(f *ir.Func) bool {
	reach := f.Reachable()
	nReach := 0
	for _, r := range reach {
		if r {
			nReach++
		}
	}
	if nReach == len(f.Blocks) {
		return false
	}
	for _, b := range f.Blocks {
		if reach[b.ID] {
			continue
		}
		for _, s := range b.Succs() {
			if reach[s.ID] {
				ir.RemoveEdge(b, s)
			}
		}
	}
	var keep []*ir.Block
	for _, b := range f.Blocks {
		if reach[b.ID] {
			keep = append(keep, b)
		}
	}
	f.Blocks = keep
	// Preds may still list removed blocks when both endpoints were dead;
	// those entries are gone with their blocks. Reachable blocks' preds
	// were fixed by RemoveEdge above, but prune any stale entries from
	// dead preds defensively.
	for _, b := range f.Blocks {
		var preds []*ir.Block
		for _, p := range b.Preds {
			if reach[p.ID] {
				preds = append(preds, p)
			} else {
				// Drop matching phi entries.
				for _, in := range b.Instrs {
					if in.Op != ir.OpPhi {
						break
					}
					for j, pb := range in.PhiPreds {
						if pb == p {
							in.PhiPreds = append(in.PhiPreds[:j], in.PhiPreds[j+1:]...)
							in.Args = append(in.Args[:j], in.Args[j+1:]...)
							break
						}
					}
				}
			}
		}
		b.Preds = preds
	}
	return true
}

// foldConstBranch rewrites condbr-on-constant and condbr with equal targets
// into unconditional branches.
func foldConstBranch(b *ir.Block) bool {
	t := b.Term()
	if t == nil || t.Op != ir.OpCondBr {
		return false
	}
	if t.Targets[0] == t.Targets[1] {
		tgt := t.Targets[0]
		ir.RemoveEdge(b, tgt) // drop one of the two parallel edges
		t.Op = ir.OpBr
		t.Args = nil
		t.Targets = []*ir.Block{tgt}
		return true
	}
	cond := t.Args[0]
	var taken int
	switch cond.Op {
	case ir.OpConst:
		if cond.IntVal != 0 {
			taken = 0
		} else {
			taken = 1
		}
	case ir.OpNull:
		taken = 1
	default:
		return false
	}
	dead := t.Targets[1-taken]
	live := t.Targets[taken]
	ir.RemoveEdge(b, dead)
	t.Op = ir.OpBr
	t.Args = nil
	t.Targets = []*ir.Block{live}
	return true
}

// simplifySingleEntryPhis replaces phis with exactly one incoming value.
// Replacements are recorded in reloc (resolved on read, so chains of trivial
// phis collapse exactly as eager rewriting would); the caller applies them
// in one sweep.
func simplifySingleEntryPhis(b *ir.Block, reloc *ir.Relocator) bool {
	changed := false
	keep := b.Instrs[:0]
	for _, in := range b.Instrs {
		if in.Op == ir.OpPhi && len(in.Args) == 1 {
			reloc.Add(in, reloc.Resolve(in.Args[0]))
			changed = true
			continue
		}
		// Phi whose every input is the same value (or itself).
		if in.Op == ir.OpPhi {
			var uniq *ir.Instr
			trivial := true
			for _, a := range in.Args {
				a = reloc.Resolve(a)
				if a == in {
					continue
				}
				if uniq == nil {
					uniq = a
				} else if uniq != a {
					trivial = false
					break
				}
			}
			if trivial && uniq != nil {
				reloc.Add(in, uniq)
				changed = true
				continue
			}
		}
		keep = append(keep, in)
	}
	b.Instrs = keep
	return changed
}

// mergeStraightLine merges b into its unique successor s when b is s's
// unique predecessor.
func mergeStraightLine(f *ir.Func) bool {
	changed := false
	for {
		merged := false
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			s := t.Targets[0]
			if s == b || len(s.Preds) != 1 || s.Preds[0] != b || s == f.Entry() {
				continue
			}
			// Splice: drop b's terminator, absorb s's instructions.
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
			for _, in := range s.Instrs {
				if in.Op == ir.OpPhi {
					// single-pred phi: replace with its value
					ir.ReplaceAllUses(in, in.Args[0])
					continue
				}
				in.Block = b
				b.Instrs = append(b.Instrs, in)
			}
			// b inherits s's successors.
			for _, ss := range s.Succs() {
				for i, p := range ss.Preds {
					if p == s {
						ss.Preds[i] = b
					}
				}
				for _, in := range ss.Instrs {
					if in.Op != ir.OpPhi {
						break
					}
					for i, pb := range in.PhiPreds {
						if pb == s {
							in.PhiPreds[i] = b
						}
					}
				}
			}
			// Delete s.
			for i, blk := range f.Blocks {
				if blk == s {
					f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
					break
				}
			}
			merged = true
			changed = true
			break // block list changed; restart scan
		}
		if !merged {
			return changed
		}
	}
}

// skipEmptyBlocks redirects predecessors of blocks that contain only an
// unconditional branch. To keep phi semantics unambiguous, a forwarding
// block is bypassed only when its target has no phis or the forwarding
// block has a single predecessor.
func skipEmptyBlocks(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if b == f.Entry() || len(b.Instrs) != 1 {
			continue
		}
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		s := t.Targets[0]
		if s == b {
			continue
		}
		hasPhis := len(s.Instrs) > 0 && s.Instrs[0].Op == ir.OpPhi
		if hasPhis && len(b.Preds) != 1 {
			continue
		}
		if hasPhis {
			p := b.Preds[0]
			// The value flowing through b now flows directly from p; also
			// refuse if p already reaches s (would create an ambiguous
			// duplicate phi entry).
			already := false
			for _, q := range s.Preds {
				if q == p {
					already = true
				}
			}
			if already {
				continue
			}
			for _, in := range s.Instrs {
				if in.Op != ir.OpPhi {
					break
				}
				for i, pb := range in.PhiPreds {
					if pb == b {
						in.PhiPreds[i] = p
					}
				}
			}
			// Rewire edges manually: p -> s replaces p -> b -> s.
			pt := p.Term()
			for i, tgt := range pt.Targets {
				if tgt == b {
					pt.Targets[i] = s
				}
			}
			for i, q := range s.Preds {
				if q == b {
					s.Preds[i] = p
				}
			}
			b.Preds = nil
			t.Targets = nil // neutralize; b is now unreachable
			t.Op = ir.OpRet
			changed = true
			continue
		}
		// No phis in s: redirect every pred of b to s.
		for len(b.Preds) > 0 {
			p := b.Preds[0]
			ir.RedirectEdge(p, b, s)
			changed = true
		}
	}
	if changed {
		removeUnreachable(f)
	}
	return changed
}
