package opt

import (
	"fmt"

	"dcelens/internal/ir"
	"dcelens/internal/types"
)

// Mem2Reg promotes scalar stack slots to SSA registers: the classic
// SSA-construction pass (phi placement at dominance frontiers, then a
// rename walk over the dominator tree). Only allocas whose every use is a
// direct load or store qualify — arrays (accessed through GEP) and
// address-taken slots stay in memory.
//
// Almost everything the rest of the pipeline achieves depends on this pass:
// without promotion, SCCP and GVN see only opaque memory traffic. The
// ablation benchmark BenchmarkAblationNoMem2Reg quantifies exactly that.
var Mem2Reg = Pass{Name: "mem2reg", Fn: mem2regFunc}

func mem2regFunc(f *ir.Func, o Options) bool {
	var cands []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpAlloca || in.Count != 1 {
				continue
			}
			if promotable(f, in) {
				cands = append(cands, in)
			} else if o.RemarksOn() {
				o.missed(f, fmt.Sprintf("alloca v%d", in.ID), ReasonAddressTaken,
					"address used beyond direct loads and stores; slot stays in memory")
			}
		}
	}
	if len(cands) == 0 {
		return false
	}

	dt := ir.Dominators(f)
	df := dt.Frontiers()
	reach := f.Reachable()

	// All promotions share one relocation batch: dropped loads resolve
	// through it on read, and a single Apply sweep rewrites the survivors.
	var reloc ir.Relocator
	for _, a := range cands {
		promote(f, a, dt, df, reach, &reloc)
		if o.RemarksOn() {
			o.applied(f, fmt.Sprintf("alloca v%d", a.ID), "promoted to SSA registers")
		}
	}
	reloc.Apply(f)
	return true
}

// promotable reports whether every use of a is a direct load or a store
// *address* (not a stored value, argument, or address computation).
func promotable(f *ir.Func, a *ir.Instr) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, arg := range in.Args {
				if arg != a {
					continue
				}
				switch {
				case in.Op == ir.OpLoad:
					// address operand; fine
				case in.Op == ir.OpStore && i == 0:
					// address operand; fine (storing the alloca's address
					// itself is i == 1 and disqualifies)
				default:
					return false
				}
			}
		}
	}
	return true
}

// promote rewrites all loads/stores of alloca a into SSA values. Load
// replacements are batched into reloc; the caller applies them once.
func promote(f *ir.Func, a *ir.Instr, dt *ir.DomTree, df [][]*ir.Block, reach []bool, reloc *ir.Relocator) {
	elem := a.Typ.Elem
	nb := f.NumBlocks()

	// Phi placement: iterated dominance frontier of the store blocks. All
	// per-block state is dense by Block.ID (mem2reg creates no blocks).
	phiAt := make([]*ir.Instr, nb)
	inWork := make([]bool, nb)
	var work []*ir.Block
	for _, b := range f.Blocks { // seed in block order: deterministic
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore && in.Args[0] == a {
				if !inWork[b.ID] {
					inWork[b.ID] = true
					work = append(work, b)
				}
				break
			}
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, fb := range df[b.ID] {
			if !reach[fb.ID] {
				continue
			}
			if phiAt[fb.ID] != nil {
				continue
			}
			phi := fb.NewInstr(ir.OpPhi, elem)
			fb.Instrs = append([]*ir.Instr{phi}, fb.Instrs...)
			phiAt[fb.ID] = phi
			if !inWork[fb.ID] {
				inWork[fb.ID] = true
				work = append(work, fb)
			}
		}
	}

	// Default value for reads before any store: zero / null, materialized
	// in the entry block.
	var zero *ir.Instr
	mkZero := func() *ir.Instr {
		if zero != nil {
			return zero
		}
		entry := f.Entry()
		if elem.Kind == types.Pointer {
			zero = entry.NewInstr(ir.OpNull, elem)
		} else {
			zero = entry.NewInstr(ir.OpConst, elem)
		}
		entry.Instrs = append([]*ir.Instr{zero}, entry.Instrs...)
		return zero
	}

	// Rename walk over the dominator tree.
	var walk func(b *ir.Block, cur *ir.Instr)
	walk = func(b *ir.Block, cur *ir.Instr) {
		if phi := phiAt[b.ID]; phi != nil {
			cur = phi
		}
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			switch {
			case in.Op == ir.OpLoad && in.Args[0] == a:
				v := cur
				if v == nil {
					v = mkZero()
				}
				reloc.Add(in, v)
				continue // drop the load
			case in.Op == ir.OpStore && in.Args[0] == a:
				// The stored value may itself be a load this batch already
				// dropped (e.g. of a previously promoted alloca).
				cur = reloc.Resolve(in.Args[1])
				continue // drop the store
			}
			keep = append(keep, in)
		}
		b.Instrs = keep
		// Fill phi operands of successors.
		for _, s := range b.Succs() {
			phi := phiAt[s.ID]
			if phi == nil {
				continue
			}
			v := cur
			if v == nil {
				v = mkZero()
			}
			phi.Args = append(phi.Args, v)
			phi.PhiPreds = append(phi.PhiPreds, b)
		}
		for _, kid := range dt.Children(b) {
			walk(kid, cur)
		}
	}
	walk(f.Entry(), nil)

	// Unreachable blocks may still reference the alloca; replace those
	// accesses with the zero value so the alloca can be deleted.
	for _, b := range f.Blocks {
		if reach[b.ID] {
			continue
		}
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			switch {
			case in.Op == ir.OpLoad && in.Args[0] == a:
				reloc.Add(in, mkZero())
				continue
			case in.Op == ir.OpStore && in.Args[0] == a:
				continue
			}
			keep = append(keep, in)
		}
		b.Instrs = keep
	}

	// The rename walk only visits reachable blocks, but a reachable block
	// can have unreachable predecessors (e.g. the orphan blocks lowering
	// creates after a return). Their phi entries are arbitrary; use zero.
	for _, b := range f.Blocks {
		phi := phiAt[b.ID]
		if phi == nil {
			continue
		}
		for _, p := range b.Preds {
			covered := 0
			for _, pp := range phi.PhiPreds {
				if pp == p {
					covered++
				}
			}
			occurs := 0
			for _, q := range b.Preds {
				if q == p {
					occurs++
				}
			}
			for ; covered < occurs; covered++ {
				phi.Args = append(phi.Args, mkZero())
				phi.PhiPreds = append(phi.PhiPreds, p)
			}
		}
	}

	a.Remove()
}
