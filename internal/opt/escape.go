package opt

import (
	"dcelens/internal/ir"
)

// Escape is the interprocedural escape/exposure analysis. It computes, for
// every global, whether external code can observe or modify it (Escapes)
// and whether its address flows anywhere beyond direct loads/stores
// (AddrExposed). It is the analysis that justifies the paper's central
// setup: calls to bodyless marker functions cannot clobber a static global
// whose address never escapes, so constant propagation may look straight
// through them.
var Escape = Pass{Name: "escape", Run: func(m *ir.Module, o Options, inv *Invalidation) bool {
	if ComputeEscapesOpt(m, o) {
		inv.Facts()
	}
	if o.RemarksOn() {
		// Record the analysis verdicts the transforming passes act on: an
		// escaping global is the single most common root cause of a
		// conservative decision downstream.
		for _, g := range m.Globals {
			switch {
			case g.Escapes:
				o.analysisModule("global "+g.Name, "escapes: external code may read or write it")
			case g.AddrExposed:
				o.analysisModule("global "+g.Name, "address-exposed: pointers of unknown provenance may reach it")
			}
		}
	}
	return false // analysis only
}}

// ComputeEscapesOpt honours the PessimisticEscape ablation knob. It reports
// whether any global's flags changed — the signal the pass manager uses to
// re-visit otherwise-clean functions in passes that consume the facts.
func ComputeEscapesOpt(m *ir.Module, o Options) bool {
	if o.PessimisticEscape {
		changed := false
		for _, g := range m.Globals {
			if !g.Escapes || !g.AddrExposed {
				changed = true
			}
			g.Escapes = true
			g.AddrExposed = true
		}
		return changed
	}
	return ComputeEscapes(m)
}

// ComputeEscapes (re)computes Global.Escapes and Global.AddrExposed,
// reporting whether any flag changed.
func ComputeEscapes(m *ir.Module) bool {
	old := make([]bool, 0, 2*len(m.Globals))
	for _, g := range m.Globals {
		old = append(old, g.Escapes, g.AddrExposed)
	}
	computeEscapes(m)
	for i, g := range m.Globals {
		if g.Escapes != old[2*i] || g.AddrExposed != old[2*i+1] {
			return true
		}
	}
	return false
}

func computeEscapes(m *ir.Module) {
	// Step 1: per-function parameter escape summaries, to a fixpoint: does
	// the value passed for parameter i escape to external code (stored to
	// memory, passed to an external call, returned, or passed to an
	// internal parameter that itself escapes)?
	summaries := map[*ir.Func][]bool{}
	for _, f := range m.Funcs {
		if !f.External {
			summaries[f] = make([]bool, len(f.ParamTys))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			if f.External {
				continue
			}
			esc := escapingValues(f, summaries)
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == ir.OpParam && esc[in.ID] && !summaries[f][in.ParamIdx] {
						summaries[f][in.ParamIdx] = true
						changed = true
					}
				}
			}
		}
	}

	// Step 2: classify each global's address uses.
	for _, g := range m.Globals {
		g.Escapes = !g.Internal
		g.AddrExposed = false
	}
	// Addresses appearing in other globals' initializers are exposed (and
	// escape if the holder escapes — conservatively: exposed implies the
	// pointer can be loaded by anyone who can read the holder; treat as
	// exposed only, escape decided by the loads' provenance — we stay
	// conservative and mark escape when the holding global escapes).
	for _, holder := range m.Globals {
		for _, c := range holder.Init {
			if c.IsAddr && c.Global != nil {
				c.Global.AddrExposed = true
				if !holder.Internal {
					c.Global.Escapes = true
				}
			}
		}
	}
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		esc := escapingValues(f, summaries)
		exposed := exposedValues(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpGlobalAddr {
					continue
				}
				if esc[in.ID] {
					in.Global.Escapes = true
				}
				if exposed[in.ID] {
					in.Global.AddrExposed = true
				}
			}
		}
	}
	// Escaping implies exposed.
	for _, g := range m.Globals {
		if g.Escapes {
			g.AddrExposed = true
		}
	}
}

// escapingValues computes the set of SSA values in f whose pointee may be
// accessed by external code, dense by instruction ID.
func escapingValues(f *ir.Func, summaries map[*ir.Func][]bool) []bool {
	esc := make([]bool, f.NumValues())
	var mark func(v *ir.Instr)
	mark = func(v *ir.Instr) {
		if esc[v.ID] {
			return
		}
		esc[v.ID] = true
		// Derived pointers escape with their source: if v escapes and v is
		// a GEP/cast/phi/select, its inputs escape too.
		switch v.Op {
		case ir.OpGEP:
			mark(v.Args[0])
		case ir.OpPhi, ir.OpSelect:
			for _, a := range v.Args {
				if a.Typ != nil && a.Typ.IsPointer() {
					mark(a)
				}
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				// Storing a pointer publishes it.
				if in.Args[1].Typ != nil && in.Args[1].Typ.IsPointer() {
					mark(in.Args[1])
				}
			case ir.OpCall:
				for i, a := range in.Args {
					if a.Typ == nil || !a.Typ.IsPointer() {
						continue
					}
					if in.Callee.External {
						mark(a)
					} else if s := summaries[in.Callee]; s != nil && i < len(s) && s[i] {
						mark(a)
					}
				}
			case ir.OpRet:
				if len(in.Args) > 0 && in.Args[0].Typ != nil && in.Args[0].Typ.IsPointer() {
					mark(in.Args[0])
				}
			}
		}
	}
	return esc
}

// exposedValues computes values whose address identity leaks beyond direct
// memory accesses and comparisons, dense by instruction ID: such objects can
// be pointed at by pointers of unknown provenance.
func exposedValues(f *ir.Func) []bool {
	exp := make([]bool, f.NumValues())
	var mark func(v *ir.Instr)
	mark = func(v *ir.Instr) {
		if exp[v.ID] {
			return
		}
		exp[v.ID] = true
		switch v.Op {
		case ir.OpGEP:
			mark(v.Args[0])
		case ir.OpPhi, ir.OpSelect:
			for _, a := range v.Args {
				if a.Typ != nil && a.Typ.IsPointer() {
					mark(a)
				}
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a.Typ == nil || !a.Typ.IsPointer() {
					continue
				}
				switch in.Op {
				case ir.OpLoad:
					// direct load address: not exposing
				case ir.OpStore:
					if i == 1 {
						mark(a) // stored pointer value: exposed
					}
				case ir.OpBin:
					// comparisons don't expose
				case ir.OpGEP:
					// exposure decided by the GEP's own uses
				default:
					// calls, rets, phis, selects expose the pointer
					mark(a)
				}
			}
		}
	}
	// Phis/selects that are themselves exposed have marked their inputs.
	return exp
}
