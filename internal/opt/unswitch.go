package opt

import (
	"dcelens/internal/ir"
)

// Unswitch hoists loop-invariant conditional branches out of loops by
// duplicating the loop: the preheader branches on the invariant condition
// into a "true" copy (where the in-loop branch becomes an unconditional
// jump to its true target) and a "false" copy (symmetrically).
//
// With AggressiveUnswitch (the regressed behaviour bisected in paper
// Listings 7/8a to LLVM's new loop unswitching), the hoisted condition is
// wrapped in a freeze instruction — as LLVM's non-trivial unswitching does
// to sanitize potentially-poisonous conditions — and frozen values are
// opaque to all later constant propagation. Whether the unswitcher runs
// before or after the folding passes is a scheduling decision
// (internal/pipeline), which is exactly where the paper's regression lived.
var Unswitch = Pass{Name: "unswitch", Fn: unswitchFunc}

func unswitchFunc(f *ir.Func, o Options) bool {
	// Unreachable leftovers can carry edges into loop bodies, which
	// would corrupt loop cloning; sweep them first. (Natural-loop
	// reasoning in this file assumes all blocks are reachable.) The sweep
	// is not a reported change, but the dirty tracking must see it.
	if removeUnreachable(f) {
		f.MarkMutated()
	}
	// One unswitch per function per pass invocation keeps growth tame;
	// the pipeline iterates.
	return unswitchOne(f, o)
}

func unswitchOne(f *ir.Func, o Options) bool {
	dt := ir.Dominators(f)
	loops := ir.NaturalLoops(f, dt)
	for _, l := range loops {
		// Find an invariant conditional branch in a non-header block.
		// Iterate f.Blocks (not the loop's block set) for determinism.
		var cbr *ir.Instr
		for _, b := range f.Blocks {
			if !l.Blocks[b] {
				continue
			}
			t := b.Term()
			if t == nil || t.Op != ir.OpCondBr {
				continue
			}
			cond := t.Args[0]
			if l.Blocks[cond.Block] {
				continue // condition computed in the loop: not invariant
			}
			if _, isC := isConst(cond); isC {
				continue // constant branches are SimplifyCFG's job
			}
			// Both targets must stay within the loop (otherwise this is a
			// guarded exit; keep those for simplicity).
			if !l.Blocks[t.Targets[0]] || !l.Blocks[t.Targets[1]] {
				continue
			}
			cbr = t
			break
		}
		if cbr == nil {
			continue
		}
		if loopSize(l) > 200 {
			continue
		}
		// All exit edges must target one block, so LCSSA construction is a
		// single phi per escaping value.
		var exitBlock *ir.Block
		multi := false
		for _, e := range l.Exits() {
			if exitBlock == nil {
				exitBlock = e[1]
			} else if exitBlock != e[1] {
				multi = true
			}
		}
		if multi || exitBlock == nil {
			continue
		}
		// Every predecessor of the exit block must be a loop block;
		// otherwise loop values used past the exit cannot be LCSSA-ified
		// with a single phi (the value on the non-loop path is undefined).
		onlyLoopPreds := true
		for _, p := range exitBlock.Preds {
			if !l.Blocks[p] {
				onlyLoopPreds = false
				break
			}
		}
		if !onlyLoopPreds {
			continue
		}
		doUnswitch(f, l, cbr, exitBlock, o)
		return true
	}
	return false
}

// buildLCSSA gives every loop-defined value that is used outside the loop a
// dedicated phi in the (unique) exit block and reroutes the outside uses
// through it. After this, duplicating the loop only requires extending the
// exit block's phis.
func buildLCSSA(f *ir.Func, l *ir.Loop, exit *ir.Block) {
	inLoop := func(b *ir.Block) bool { return l.Blocks[b] }
	reach := f.Reachable()
	var loopVals []*ir.Instr
	for _, b := range f.Blocks { // deterministic order
		if !l.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			if in.Typ != nil {
				loopVals = append(loopVals, in)
			}
		}
	}
	for _, v := range loopVals {
		// Find outside uses (in reachable code: unreachable leftovers do
		// not constrain anything and may violate dominance trivially).
		hasOutside := false
		for _, b := range f.Blocks {
			if inLoop(b) || !reach[b.ID] {
				continue
			}
			for _, in := range b.Instrs {
				for i, a := range in.Args {
					if a != v {
						continue
					}
					if in.Op == ir.OpPhi && in.Block == exit && inLoop(in.PhiPreds[i]) {
						continue // already edge-correct
					}
					hasOutside = true
				}
			}
		}
		if !hasOutside {
			continue
		}
		phi := exit.NewInstr(ir.OpPhi, v.Typ)
		for _, p := range exit.Preds {
			if inLoop(p) {
				phi.Args = append(phi.Args, v)
				phi.PhiPreds = append(phi.PhiPreds, p)
			}
		}
		if len(phi.Args) != len(exit.Preds) {
			// The exit block merges loop and non-loop paths; the value
			// cannot be LCSSA-ified with a simple phi. Bail out by not
			// rewriting (callers skip such loops via exit-shape checks, so
			// this is defensive).
			continue
		}
		exit.Instrs = append([]*ir.Instr{phi}, exit.Instrs...)
		for _, b := range f.Blocks {
			if inLoop(b) || !reach[b.ID] {
				continue
			}
			for _, in := range b.Instrs {
				if in == phi {
					continue
				}
				for i, a := range in.Args {
					if a != v {
						continue
					}
					if in.Op == ir.OpPhi && in.Block == exit && inLoop(in.PhiPreds[i]) {
						continue
					}
					in.Args[i] = phi
				}
			}
		}
	}
}

func loopSize(l *ir.Loop) int {
	n := 0
	for b := range l.Blocks {
		n += len(b.Instrs)
	}
	return n
}

func doUnswitch(f *ir.Func, l *ir.Loop, cbr *ir.Instr, exit *ir.Block, o Options) {
	pre := preheader(f, l)
	if pre == nil {
		return
	}
	buildLCSSA(f, l, exit)
	cond := cbr.Args[0]

	// Clone the loop: the clone is the "false" version.
	bm, vm := cloneRegion(f, l)

	// Original: branch always goes to the true target.
	trueTgt := cbr.Targets[0]
	falseTgt := cbr.Targets[1]
	ir.RemoveEdge(cbr.Block, falseTgt)
	cbr.Op = ir.OpBr
	cbr.Args = nil
	cbr.Targets = []*ir.Block{trueTgt}

	// Clone: branch always goes to the (cloned) false target.
	cc := vm[cbr]
	ccTrue := cc.Targets[0]
	ir.RemoveEdge(cc.Block, ccTrue)
	cc.Op = ir.OpBr
	cc.Args = nil
	cc.Targets = []*ir.Block{cc.Targets[1]}

	// Exit edges of the clone: cloned blocks branching out of the loop go
	// to the same exit blocks; their phis gain entries for the new preds
	// with the same (necessarily loop-external) values... except values
	// defined in the loop, which map through vm.
	for _, b := range f.Blocks {
		if !l.Blocks[b] {
			continue
		}
		for _, s := range b.Succs() {
			if l.Blocks[s] {
				continue
			}
			nb := bm[b]
			for _, in := range s.Instrs {
				if in.Op != ir.OpPhi {
					break
				}
				for j, pb := range in.PhiPreds {
					if pb == b {
						v := in.Args[j]
						if nv, ok := vm[v]; ok {
							v = nv
						}
						in.Args = append(in.Args, v)
						in.PhiPreds = append(in.PhiPreds, nb)
						break
					}
				}
			}
		}
	}

	// Branch condition the preheader will test. Aggressive mode freezes
	// it — LLVM's non-trivial unswitching inserts freeze to sanitize
	// potentially-poisonous conditions, and the frozen value is opaque to
	// all later constant propagation (the Listing 7/8a blockage).
	testCond := cond
	if o.AggressiveUnswitch {
		fr := pre.NewInstr(ir.OpFreeze, cond.Typ, cond)
		pre.InsertBefore(fr, pre.Term())
		testCond = fr
	}

	// Preheader now branches on the condition into one of the two copies.
	pt := pre.Term()
	pt.Op = ir.OpCondBr
	pt.Args = []*ir.Instr{testCond}
	pt.Targets = []*ir.Block{l.Header, bm[l.Header]}
	ir.AddEdge(pre, bm[l.Header])

	// The cloned header's phis already reference pre for their outside
	// entries (cloneRegion maps outside preds to themselves).
	f.RecomputePreds()
	removeUnreachable(f)
}

// cloneRegion duplicates the blocks of a loop within f, mapping internal
// edges and values; references to values and blocks outside the region are
// shared. Returns the block and value maps.
func cloneRegion(f *ir.Func, l *ir.Loop) (map[*ir.Block]*ir.Block, map[*ir.Instr]*ir.Instr) {
	bm := map[*ir.Block]*ir.Block{}
	vm := map[*ir.Instr]*ir.Instr{}
	// Deterministic iteration order: walk f.Blocks.
	var order []*ir.Block
	for _, b := range f.Blocks {
		if l.Blocks[b] {
			order = append(order, b)
		}
	}
	for _, b := range order {
		bm[b] = f.NewBlock()
	}
	for _, b := range order {
		nb := bm[b]
		for _, in := range b.Instrs {
			ni := nb.NewInstr(in.Op, in.Typ)
			ni.IntVal = in.IntVal
			ni.Global = in.Global
			ni.Callee = in.Callee
			ni.ParamIdx = in.ParamIdx
			ni.Count = in.Count
			ni.BinOp = in.BinOp
			ni.Widened = in.Widened
			ni.Args = append(ni.Args, in.Args...)
			for _, t := range in.Targets {
				if nt, ok := bm[t]; ok {
					ni.Targets = append(ni.Targets, nt)
				} else {
					ni.Targets = append(ni.Targets, t)
				}
			}
			for _, pp := range in.PhiPreds {
				if np, ok := bm[pp]; ok {
					ni.PhiPreds = append(ni.PhiPreds, np)
				} else {
					ni.PhiPreds = append(ni.PhiPreds, pp)
				}
			}
			vm[in] = ni
			nb.Instrs = append(nb.Instrs, ni)
		}
	}
	// Second pass: remap operand references to cloned values, and mirror
	// predecessor lists (outside preds stay shared; the caller rewires
	// them and finishes with RecomputePreds).
	for _, b := range order {
		nb := bm[b]
		for _, in := range nb.Instrs {
			for i, a := range in.Args {
				if na, ok := vm[a]; ok {
					in.Args[i] = na
				}
			}
		}
		for _, p := range b.Preds {
			if np, ok := bm[p]; ok {
				nb.Preds = append(nb.Preds, np)
			} else {
				nb.Preds = append(nb.Preds, p)
			}
		}
	}
	return bm, vm
}
