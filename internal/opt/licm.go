package opt

import (
	"fmt"

	"dcelens/internal/ir"
)

// LICM hoists loop-invariant computations into a preheader: pure
// instructions whose operands are defined outside the loop, and invariant
// loads when nothing in the loop can write the location (no may-aliasing
// stores, no internal calls, and — for escaping storage — no external
// calls).
var LICM = Pass{Name: "licm", Pre: ComputeEscapesOpt, Fn: licmFunc}

func licmFunc(f *ir.Func, o Options) bool {
	changed := false
	if removeUnreachable(f) { // preheader creation assumes reachable preds
		f.MarkMutated() // unreported mutation; dirty tracking must see it
	}
	dt := ir.Dominators(f)
	loops := ir.NaturalLoops(f, dt)
	ac := NewAliasCtx(f, o.Alias)
	for _, l := range loops {
		if licmLoop(f, l, ac, o) {
			changed = true
		}
	}
	return changed
}

// loadSubject names the location a load reads, for remarks.
func loadSubject(in *ir.Instr) string {
	loc := ResolveLoc(in.Args[0])
	switch {
	case loc.G != nil:
		return "load " + loc.G.Name
	case loc.A != nil:
		return fmt.Sprintf("load alloca v%d", loc.A.ID)
	default:
		return fmt.Sprintf("load v%d", in.ID)
	}
}

// preheader finds or creates the unique out-of-loop predecessor block of
// the loop header. Returns nil when the header is the function entry (no
// outside edge to redirect) or the CFG shape is unsupported.
func preheader(f *ir.Func, l *ir.Loop) *ir.Block {
	var outside []*ir.Block
	for _, p := range l.Header.Preds {
		if !l.Blocks[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 0 {
		return nil
	}
	if len(outside) == 1 {
		p := outside[0]
		// Usable directly when the header is its only successor target.
		if t := p.Term(); t != nil && t.Op == ir.OpBr {
			return p
		}
	}
	// Create a dedicated preheader: outside preds -> pre -> header.
	pre := f.NewBlock()
	br := pre.NewInstr(ir.OpBr, nil)
	br.Targets = []*ir.Block{l.Header}
	pre.Instrs = []*ir.Instr{br}

	// Move phi entries for outside preds into a phi in pre (or reuse the
	// single value).
	for _, in := range l.Header.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		var vals []*ir.Instr
		var preds []*ir.Block
		var keptVals []*ir.Instr
		var keptPreds []*ir.Block
		for i, pb := range in.PhiPreds {
			if l.Blocks[pb] {
				keptVals = append(keptVals, in.Args[i])
				keptPreds = append(keptPreds, pb)
			} else {
				vals = append(vals, in.Args[i])
				preds = append(preds, pb)
			}
		}
		var fromPre *ir.Instr
		if allSame(vals) {
			fromPre = vals[0]
		} else {
			phi := pre.NewInstr(ir.OpPhi, in.Typ)
			phi.Args = vals
			phi.PhiPreds = preds
			pre.Instrs = append([]*ir.Instr{phi}, pre.Instrs...)
			fromPre = phi
		}
		in.Args = append(keptVals, fromPre)
		in.PhiPreds = append(keptPreds, pre)
	}
	// Redirect outside edges to pre.
	for _, p := range outside {
		t := p.Term()
		for i, tgt := range t.Targets {
			if tgt == l.Header {
				t.Targets[i] = pre
			}
		}
		for i, q := range l.Header.Preds {
			if q == p {
				l.Header.Preds = append(l.Header.Preds[:i], l.Header.Preds[i+1:]...)
				break
			}
		}
		pre.Preds = append(pre.Preds, p)
	}
	l.Header.Preds = append(l.Header.Preds, pre)
	return pre
}

func allSame(vals []*ir.Instr) bool {
	for _, v := range vals[1:] {
		if v != vals[0] {
			return false
		}
	}
	return true
}

func licmLoop(f *ir.Func, l *ir.Loop, ac *AliasCtx, o Options) bool {
	// Collect loop memory behaviour. Iterate f.Blocks for determinism.
	var loopStores []Loc
	hasInternalCall, hasExternalCall := false, false
	for _, b := range f.Blocks {
		if !l.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				loopStores = append(loopStores, ResolveLoc(in.Args[0]))
			case ir.OpCall:
				if in.Callee != nil && in.Callee.External {
					hasExternalCall = true
				} else {
					hasInternalCall = true
				}
			}
		}
	}

	// Dense by instruction ID; values created later (preheader branch/phis)
	// are out of range and correctly read as defined outside the loop.
	definedInLoop := make([]bool, f.NumValues())
	for _, b := range f.Blocks {
		if !l.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			definedInLoop[in.ID] = true
		}
	}

	invariant := func(in *ir.Instr) bool {
		for _, a := range in.Args {
			if a.ID < len(definedInLoop) && definedInLoop[a.ID] {
				return false
			}
		}
		return true
	}
	// loadReject returns the reason a loop-invariant load cannot be
	// hoisted, or "" when it can — the reason string doubles as the
	// Missed remark code, so the check and the explanation cannot drift.
	loadReject := func(in *ir.Instr) (Reason, string) {
		if hasInternalCall {
			return ReasonCallClobber, "an internal call in the loop has no mod/ref summary"
		}
		loc := ResolveLoc(in.Args[0])
		// Speculation safety: the load may run on iterations (or paths)
		// where it originally did not, so the access must be provably
		// in-bounds — a known offset into known storage.
		switch {
		case loc.G != nil && loc.OffKnown && loc.Off >= 0 && loc.Off < int64(loc.G.Len):
		case loc.A != nil && loc.OffKnown && loc.Off >= 0 && loc.Off < int64(loc.A.Count):
		default:
			return ReasonBoundsUnknown, "access not provably in bounds, so speculation is unsafe"
		}
		if hasExternalCall {
			clobbered := (loc.G != nil && loc.G.Escapes) ||
				(loc.A != nil && ac.isExposed(loc.A)) ||
				(loc.G == nil && loc.A == nil)
			if clobbered {
				return ReasonEscape, "an external call in the loop may write the escaping location"
			}
		}
		for _, s := range loopStores {
			if ac.MayAlias(s, loc) {
				return ReasonAliasUnknown, "a store in the loop may alias the loaded location"
			}
		}
		return "", ""
	}

	var pre *ir.Block
	var scratch []*ir.Instr // reused snapshot: hoisting mutates b.Instrs mid-walk
	changed := false
	for {
		moved := false
		for _, b := range f.Blocks {
			if !l.Blocks[b] {
				continue
			}
			scratch = append(scratch[:0], b.Instrs...)
			for _, in := range scratch {
				hoist := false
				switch {
				case in.Op == ir.OpPhi || in.Op.IsTerminator():
				case in.Op == ir.OpAlloca:
					// Allocas create a fresh object per execution; hoisting
					// would change object lifetimes. Leave them.
				case in.IsPure() && invariant(in):
					hoist = true
				case in.Op == ir.OpLoad && invariant(in):
					reason, detail := loadReject(in)
					if reason == "" {
						hoist = true
					} else if o.RemarksOn() {
						o.missed(f, loadSubject(in), reason, detail)
					}
				}
				if !hoist {
					continue
				}
				if pre == nil {
					pre = preheader(f, l)
					if pre == nil {
						return changed
					}
				}
				in.Remove()
				pre.InsertBefore(in, pre.Term())
				definedInLoop[in.ID] = false
				moved = true
				changed = true
				if o.RemarksOn() {
					o.applied(f, fmt.Sprintf("hoist v%d (%s)", in.ID, in.Op), "loop-invariant; moved to preheader")
				}
			}
		}
		if !moved {
			return changed
		}
	}
}
